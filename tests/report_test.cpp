// The report builders must render every figure/table without crashing
// and carry the paper-vs-measured annotations the benchmarks print.
#include "report/experiments.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/csv.hpp"

namespace easyc::report {
namespace {

const analysis::PipelineResult& pipeline() {
  static const analysis::PipelineResult kResult = analysis::run_pipeline();
  return kResult;
}

TEST(Reports, EveryFigureRendersNonEmpty) {
  const auto& r = pipeline();
  for (const auto& text :
       {fig02_missingness(r), fig03_carbon_vs_rank_baseline(r),
        fig04_coverage_bars(r), fig05_op_coverage_ranges(r),
        fig06_emb_coverage_ranges(r), fig07_totals(r),
        fig08_full_assessment(r), fig09_sensitivity_diff(r),
        fig10_projection(r), fig11_perf_per_carbon(r), table1_data_gaps(r),
        table2_per_system(r, 20), headline_numbers(r)}) {
    EXPECT_GT(text.size(), 100u);
  }
}

TEST(Reports, PaperVsMeasuredAnnotationsPresent) {
  const auto& r = pipeline();
  EXPECT_NE(fig04_coverage_bars(r).find("[paper-vs-measured]"),
            std::string::npos);
  EXPECT_NE(fig07_totals(r).find("paper=1390000"), std::string::npos);
  EXPECT_NE(table1_data_gaps(r).find("paper=209"), std::string::npos);
}

TEST(Reports, Table2RowLimitRespected) {
  const auto& r = pipeline();
  const auto small = table2_per_system(r, 5);
  const auto full = table2_per_system(r, 0);
  EXPECT_LT(small.size(), full.size());
  EXPECT_NE(full.find("El Capitan"), std::string::npos);
  EXPECT_NE(full.find("Supercomputer Fugaku"), std::string::npos);
}

TEST(Reports, Fig05ListsAllRankRanges) {
  const auto text = fig05_op_coverage_ranges(pipeline());
  for (const char* label : {"1-10", "26-50", "451-500", "1-500"}) {
    EXPECT_NE(text.find(label), std::string::npos) << label;
  }
}

TEST(Reports, CsvDumpWritesParseableFiles) {
  const std::string dir = ::testing::TempDir() + "/easyc_report_csvs";
  std::filesystem::create_directories(dir);
  const auto files = write_figure_csvs(pipeline(), dir);
  EXPECT_GE(files.size(), 3u);
  for (const auto& f : files) {
    auto t = util::CsvTable::read_file(f);
    EXPECT_GT(t.num_rows(), 0u) << f;
    std::remove(f.c_str());
  }
  std::filesystem::remove_all(dir);
}

TEST(Reports, Table2CsvHasAllRanks) {
  const std::string dir = ::testing::TempDir() + "/easyc_report_csvs2";
  std::filesystem::create_directories(dir);
  const auto files = write_figure_csvs(pipeline(), dir);
  bool found = false;
  for (const auto& f : files) {
    if (f.find("table2") != std::string::npos) {
      auto t = util::CsvTable::read_file(f);
      EXPECT_EQ(t.num_rows(), 500u);
      found = true;
    }
    std::remove(f.c_str());
  }
  EXPECT_TRUE(found);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace easyc::report
