#include "top500/history.hpp"

#include <gtest/gtest.h>

#include <set>

#include "analysis/turnover.hpp"

namespace easyc::top500 {
namespace {

const std::vector<ListEdition>& history() {
  static const std::vector<ListEdition> kHistory = [] {
    HistoryConfig cfg;
    cfg.editions = 5;
    return generate_history(cfg);
  }();
  return kHistory;
}

TEST(History, EditionCountAndLabels) {
  const auto& h = history();
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[0].label, "Nov 2024");
  EXPECT_EQ(h[1].label, "Jun 2025");
  EXPECT_EQ(h[2].label, "Nov 2025");
  EXPECT_EQ(h[3].label, "Jun 2026");
  EXPECT_EQ(h[4].label, "Nov 2026");
}

TEST(History, FirstEditionIsTheBaseList) {
  const auto& h = history();
  const auto base = generate_list();
  ASSERT_EQ(h[0].records.size(), base.records.size());
  EXPECT_EQ(h[0].num_new, 0);
  EXPECT_EQ(h[0].records[0].name, base.records[0].name);
  EXPECT_DOUBLE_EQ(h[0].records[499].rmax_tflops,
                   base.records[499].rmax_tflops);
}

TEST(History, EveryEditionIsARanked500List) {
  for (const auto& e : history()) {
    ASSERT_EQ(e.records.size(), 500u) << e.label;
    ASSERT_EQ(e.categories.size(), 500u) << e.label;
    for (int i = 0; i < 500; ++i) {
      EXPECT_EQ(e.records[i].rank, i + 1);
      if (i > 0) {
        EXPECT_LE(e.records[i].rmax_tflops, e.records[i - 1].rmax_tflops)
            << e.label << " rank " << i + 1;
      }
    }
  }
}

TEST(History, ExactlyConfiguredEntrantsPerCycle) {
  const auto& h = history();
  for (size_t i = 1; i < h.size(); ++i) {
    // A flagship entrant can displace only other systems, so every
    // entrant either survives or was pushed out by a *larger* entrant;
    // with 48 entrants all above the threshold, all survive.
    EXPECT_EQ(h[i].num_new, 48) << h[i].label;
  }
}

TEST(History, TurnoverDisplacesTheBottom) {
  const auto& h = history();
  // The Nov-2024 bottom systems fall off by Nov 2026.
  std::set<std::string> last_names;
  for (const auto& r : h.back().records) last_names.insert(r.name);
  int survivors_of_bottom = 0;
  for (int i = 400; i < 500; ++i) {
    if (last_names.count(h[0].records[i].name)) ++survivors_of_bottom;
  }
  EXPECT_LT(survivors_of_bottom, 40);
  // The flagships survive.
  EXPECT_TRUE(last_names.count("El Capitan"));
  EXPECT_TRUE(last_names.count("Frontier"));
}

TEST(History, EntryThresholdRises) {
  const auto& h = history();
  EXPECT_GT(h.back().records[499].rmax_tflops,
            h.front().records[499].rmax_tflops);
}

TEST(History, Deterministic) {
  HistoryConfig cfg;
  cfg.editions = 3;
  auto a = generate_history(cfg);
  auto b = generate_history(cfg);
  for (size_t e = 0; e < a.size(); ++e) {
    for (size_t i = 0; i < 500; ++i) {
      ASSERT_EQ(a[e].records[i].name, b[e].records[i].name);
      ASSERT_DOUBLE_EQ(a[e].records[i].truth.power_kw,
                       b[e].records[i].truth.power_kw);
    }
  }
}

TEST(History, InvalidConfigAborts) {
  HistoryConfig cfg;
  cfg.editions = 0;
  EXPECT_DEATH(generate_history(cfg), "at least one");
  cfg.editions = 2;
  cfg.entrants_per_cycle = 500;
  EXPECT_DEATH(generate_history(cfg), "survivors");
}

// --- turnover analysis (the paper's growth-rate derivation) ---

TEST(Turnover, MeasuredGrowthMatchesPaperShape) {
  const auto report = analysis::analyze_turnover(history());
  EXPECT_DOUBLE_EQ(report.avg_new_per_cycle, 48.0);
  // Paper: +5%/cycle operational, +1%/cycle embodied. Shape claims:
  // operational growth is positive, embodied growth much smaller.
  EXPECT_GT(report.op_growth_per_cycle, 0.02);
  EXPECT_LT(report.op_growth_per_cycle, 0.08);
  EXPECT_GT(report.emb_growth_per_cycle, -0.005);
  EXPECT_LT(report.emb_growth_per_cycle, 0.03);
  EXPECT_GT(report.op_growth_per_cycle,
            3.0 * std::max(report.emb_growth_per_cycle, 0.0));
}

TEST(Turnover, AnnualizationConsistent) {
  const auto report = analysis::analyze_turnover(history());
  EXPECT_NEAR(report.op_growth_annualized,
              (1 + report.op_growth_per_cycle) *
                      (1 + report.op_growth_per_cycle) -
                  1,
              1e-12);
}

TEST(Turnover, EditionFootprintsPopulated) {
  const auto report = analysis::analyze_turnover(history());
  ASSERT_EQ(report.editions.size(), history().size());
  for (const auto& e : report.editions) {
    EXPECT_GT(e.op_total_mt, 1e5) << e.label;
    EXPECT_GT(e.emb_total_mt, 1e5) << e.label;
    EXPECT_GT(e.perf_pflops, 1000) << e.label;
  }
  // Aggregate performance grows with turnover.
  EXPECT_GT(report.editions.back().perf_pflops,
            report.editions.front().perf_pflops);
}

TEST(Turnover, NeedsTwoEditions) {
  std::vector<ListEdition> single(history().begin(),
                                  history().begin() + 1);
  EXPECT_DEATH(analysis::analyze_turnover(single), "two editions");
}

}  // namespace
}  // namespace easyc::top500
