#include "grid/temporal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace easyc::grid {
namespace {

TEST(HourlyProfile, CoversTheYearAndPreservesTheMean) {
  HourlyAciProfile p(400.0);
  EXPECT_EQ(p.hours().size(), 8760u);
  EXPECT_NEAR(p.annual_mean(), 400.0, 1e-9);
  for (double v : p.hours()) EXPECT_GE(v, 0.0);
}

TEST(HourlyProfile, HasRealVariation) {
  HourlyAciProfile p(400.0);
  EXPECT_LT(p.min(), 380.0);
  EXPECT_GT(p.max(), 420.0);
}

TEST(HourlyProfile, FlatShapeIsConstant) {
  ProfileShape flat;
  flat.solar_depth = 0;
  flat.evening_peak = 0;
  flat.seasonal_amp = 0;
  flat.weekend_drop = 0;
  HourlyAciProfile p(300.0, flat);
  EXPECT_NEAR(p.min(), 300.0, 1e-9);
  EXPECT_NEAR(p.max(), 300.0, 1e-9);
}

TEST(HourlyProfile, SolarDipAtMidday) {
  ProfileShape shape;
  shape.evening_peak = 0;
  shape.seasonal_amp = 0;
  shape.weekend_drop = 0;
  HourlyAciProfile p(400.0, shape);
  // Hour 13 of a weekday is below hour 3.
  EXPECT_LT(p.hours()[13], p.hours()[3]);
}

TEST(HourlyProfile, FlatLoadMatchesAnnualAverageMethod) {
  HourlyAciProfile p(450.0);
  // 1000 kW flat for a year: 8.76 GWh at 450 g/kWh = 3942 MT.
  EXPECT_NEAR(p.carbon_mt_flat(1000.0), 3942.0, 0.5);
  std::vector<double> flat_series(24, 1000.0);
  EXPECT_NEAR(p.average_method_error(flat_series), 0.0, 1e-9);
}

TEST(HourlyProfile, DaytimeLoadIsCleanerThanAverageSaysOnSolarGrids) {
  // A solar-heavy grid is cleanest at midday; a daytime-peaking load
  // therefore emits LESS than the annual-average method claims, i.e.
  // the average method overestimates (positive error).
  ProfileShape solar;
  solar.solar_depth = 0.3;
  solar.evening_peak = 0.0;
  solar.seasonal_amp = 0.0;
  solar.weekend_drop = 0.0;
  HourlyAciProfile p(350.0, solar);
  const auto day_load = diurnal_load(1000.0, 0.5);
  EXPECT_GT(p.average_method_error(day_load), 0.005);
}

TEST(HourlyProfile, EveningLoadFlipsTheErrorSign) {
  ProfileShape evening;
  evening.solar_depth = 0.0;
  evening.evening_peak = 0.3;
  evening.seasonal_amp = 0.0;
  evening.weekend_drop = 0.0;
  HourlyAciProfile p(350.0, evening);
  // Load peaking at 15:00-19:00 coincides with dirty evening hours ->
  // the average method underestimates (negative error).
  const auto day_load = diurnal_load(1000.0, 0.5);
  EXPECT_LT(p.average_method_error(day_load), -0.002);
}

TEST(HourlyProfile, ShiftingSavingsBounds) {
  HourlyAciProfile p(400.0);
  const double s = p.shifting_savings(0.3, 8);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 0.3);  // cannot save more than the deferrable share
  // More deferrable work saves more; a tighter window saves more per
  // shifted kWh.
  EXPECT_GT(p.shifting_savings(0.6, 8), s);
  EXPECT_GT(p.shifting_savings(0.3, 4), p.shifting_savings(0.3, 12));
  // No deferrable work, no savings; full-day window, no savings.
  EXPECT_NEAR(p.shifting_savings(0.0, 8), 0.0, 1e-12);
  EXPECT_NEAR(p.shifting_savings(1.0, 24), 0.0, 1e-9);
}

TEST(HourlyProfile, InvalidArgumentsAbort) {
  HourlyAciProfile p(400.0);
  EXPECT_DEATH(p.shifting_savings(-0.1, 8), "share");
  EXPECT_DEATH(p.shifting_savings(0.5, 0), "window");
  EXPECT_DEATH(p.carbon_mt({}), "empty");
  EXPECT_DEATH(p.carbon_mt({-5.0}), "non-negative");
}

TEST(DiurnalLoad, MeanAndShape) {
  const auto load = diurnal_load(800.0, 0.4);
  ASSERT_EQ(load.size(), 24u);
  double mean = 0;
  for (double v : load) mean += v;
  mean /= 24.0;
  EXPECT_NEAR(mean, 800.0, 1e-9);
  // Peak afternoon, trough small hours.
  EXPECT_GT(load[15], load[3]);
  EXPECT_DEATH(diurnal_load(0.0, 0.4), "positive");
}

}  // namespace
}  // namespace easyc::grid
