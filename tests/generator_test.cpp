#include "top500/generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "top500/catalog.hpp"

namespace easyc::top500 {
namespace {

const GeneratedList& list() {
  static const GeneratedList kList = generate_list();
  return kList;
}

TEST(Catalog, NamedSystemsAreWellFormed) {
  std::set<int> ranks;
  for (const auto& n : named_systems()) {
    EXPECT_TRUE(ranks.insert(n.record.rank).second)
        << "duplicate rank " << n.record.rank;
    EXPECT_GE(n.record.rank, 1);
    EXPECT_LE(n.record.rank, 500);
    EXPECT_FALSE(n.record.name.empty());
    EXPECT_GE(n.record.rpeak_tflops, n.record.rmax_tflops);
    EXPECT_GT(n.record.truth.power_kw, 0);
    EXPECT_GT(n.record.truth.nodes, 0);
    EXPECT_EQ(category_is_accelerated(n.category),
              n.record.is_accelerated())
        << n.record.name;
  }
  EXPECT_GE(named_systems().size(), 30u);
}

TEST(Catalog, FlagshipsPresent) {
  std::map<int, std::string> by_rank;
  for (const auto& n : named_systems()) by_rank[n.record.rank] = n.record.name;
  EXPECT_EQ(by_rank[1], "El Capitan");
  EXPECT_EQ(by_rank[2], "Frontier");
  EXPECT_EQ(by_rank[3], "Aurora");
  EXPECT_EQ(by_rank[6], "Supercomputer Fugaku");
  EXPECT_EQ(by_rank[8], "LUMI");
  EXPECT_EQ(by_rank[15], "Sunway TaihuLight");
}

TEST(Generator, ProducesExactly500RankedRecords) {
  const auto& l = list();
  ASSERT_EQ(l.records.size(), 500u);
  ASSERT_EQ(l.categories.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(l.records[i].rank, i + 1);
}

TEST(Generator, RmaxNonIncreasing) {
  const auto& r = list().records;
  for (size_t i = 1; i < r.size(); ++i) {
    EXPECT_LE(r[i].rmax_tflops, r[i - 1].rmax_tflops) << "rank " << i + 1;
  }
  EXPECT_GT(r.front().rmax_tflops, 1.0e6);  // exascale top
  EXPECT_GT(r.back().rmax_tflops, 1000.0);  // petaflop floor
}

TEST(Generator, DeterministicForSeed) {
  auto a = generate_list();
  auto b = generate_list();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].name, b.records[i].name);
    EXPECT_DOUBLE_EQ(a.records[i].rmax_tflops, b.records[i].rmax_tflops);
    EXPECT_DOUBLE_EQ(a.records[i].truth.power_kw,
                     b.records[i].truth.power_kw);
    EXPECT_EQ(a.categories[i], b.categories[i]);
  }
  EXPECT_EQ(to_csv(a.records).to_string(), to_csv(b.records).to_string());
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig other;
  other.seed = 0xdeadbeef;
  auto a = generate_list();
  auto b = generate_list(other);
  int diff = 0;
  for (size_t i = 0; i < 500; ++i) {
    if (a.records[i].truth.power_kw != b.records[i].truth.power_kw) ++diff;
  }
  EXPECT_GT(diff, 300);  // synthetic records resampled
}

TEST(Generator, CategoryQuotasExact) {
  std::map<AccessCategory, int> counts;
  for (auto c : list().categories) ++counts[c];
  for (auto c : {AccessCategory::kAccOpen, AccessCategory::kAccOpenVague,
                 AccessCategory::kAccPublicCountsPower,
                 AccessCategory::kAccPublicCountsDark,
                 AccessCategory::kAccPowerOnly,
                 AccessCategory::kAccEnergyPublic, AccessCategory::kAccDark,
                 AccessCategory::kCpuOpen,
                 AccessCategory::kCpuExoticRevealed,
                 AccessCategory::kCpuExoticDark}) {
    EXPECT_EQ(counts[c], category_quota(c)) << category_name(c);
  }
}

TEST(Generator, QuotasSumTo500) {
  int total = 0;
  for (auto c : {AccessCategory::kAccOpen, AccessCategory::kAccOpenVague,
                 AccessCategory::kAccPublicCountsPower,
                 AccessCategory::kAccPublicCountsDark,
                 AccessCategory::kAccPowerOnly,
                 AccessCategory::kAccEnergyPublic, AccessCategory::kAccDark,
                 AccessCategory::kCpuOpen,
                 AccessCategory::kCpuExoticRevealed,
                 AccessCategory::kCpuExoticDark}) {
    total += category_quota(c);
  }
  EXPECT_EQ(total, 500);
}

// Table I missingness counts, exact (the paper's headline data table).
struct GapCase {
  int metric_index;  // in model::all_metrics() order
  int top500_missing;
  int public_missing;
};

class TableOneQuota : public ::testing::TestWithParam<GapCase> {};

TEST_P(TableOneQuota, MatchesPaperExactly) {
  const auto& recs = list().records;
  const auto& c = GetParam();
  int t500 = 0, pub = 0;
  for (const auto& r : recs) {
    auto count = [&](const Disclosure& d, int* out) {
      bool present = true;
      switch (c.metric_index) {
        case 1: present = d.nodes; break;
        case 2: present = d.gpus; break;
        case 4: present = d.memory; break;
        case 5: present = d.memory_type; break;
        case 6: present = d.ssd; break;
        case 7: present = d.utilization; break;
        case 8: present = d.annual_energy; break;
        default: present = true;
      }
      if (!present) ++*out;
    };
    count(r.top500, &t500);
    count(r.with_public, &pub);
  }
  EXPECT_EQ(t500, c.top500_missing);
  EXPECT_EQ(pub, c.public_missing);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable1, TableOneQuota,
    ::testing::Values(GapCase{0, 0, 0},       // operation year
                      GapCase{1, 209, 86},    // nodes
                      GapCase{2, 209, 86},    // gpus
                      GapCase{3, 0, 0},       // cpus
                      GapCase{4, 499, 292},   // memory capacity
                      GapCase{5, 500, 292},   // memory type
                      GapCase{6, 500, 450},   // ssd
                      GapCase{7, 500, 497},   // utilization
                      GapCase{8, 500, 492})); // annual energy

TEST(Generator, PublicMaskIsSupersetOfTop500Mask) {
  for (const auto& r : list().records) {
    auto implies = [](bool t, bool p) { return !t || p; };
    EXPECT_TRUE(implies(r.top500.power, r.with_public.power)) << r.rank;
    EXPECT_TRUE(implies(r.top500.nodes, r.with_public.nodes)) << r.rank;
    EXPECT_TRUE(implies(r.top500.gpus, r.with_public.gpus)) << r.rank;
    EXPECT_TRUE(implies(r.top500.memory, r.with_public.memory)) << r.rank;
    EXPECT_TRUE(implies(r.top500.ssd, r.with_public.ssd)) << r.rank;
  }
}

TEST(Generator, GroundTruthPhysicallyPlausible) {
  for (const auto& r : list().records) {
    EXPECT_GT(r.truth.power_kw, 10) << r.rank;
    EXPECT_LT(r.truth.power_kw, 60000) << r.rank;
    EXPECT_GT(r.truth.nodes, 0) << r.rank;
    EXPECT_GT(r.truth.cpus, 0) << r.rank;
    EXPECT_GT(r.total_cores, 1000) << r.rank;
    EXPECT_GT(r.truth.memory_gb, 0) << r.rank;
    EXPECT_GT(r.truth.ssd_tb, 0) << r.rank;
    EXPECT_GE(r.truth.utilization, 0.5) << r.rank;
    EXPECT_LE(r.truth.utilization, 1.0) << r.rank;
    if (r.is_accelerated()) {
      EXPECT_GT(r.truth.gpus, 0) << r.rank;
      EXPECT_EQ(r.truth.gpus % r.truth.nodes, 0) << r.rank;
    } else {
      EXPECT_EQ(r.truth.gpus, 0) << r.rank;
    }
    EXPECT_GE(r.year, 2014);
    EXPECT_LE(r.year, 2024);
  }
}

TEST(Generator, EfficiencyWithinHardwareEnvelope) {
  // GFlops/W sanity. The upper bound is loose: the calibrated
  // power_scale (annual-average draw vs HPL-peak priors) pushes the
  // nominal efficiency of the newest synthetic systems past the
  // HPL-measured record (~65 GF/W in 2024) by design.
  for (const auto& r : list().records) {
    const double gfw = r.rmax_tflops / r.truth.power_kw;
    EXPECT_GT(gfw, 1.8) << r.rank << " " << r.name;
    EXPECT_LT(gfw, 100.0) << r.rank << " " << r.name;
  }
}

TEST(Generator, EnergyPublicSystemsHaveMeteredEnergy) {
  const auto& l = list();
  for (size_t i = 0; i < 500; ++i) {
    if (l.categories[i] == AccessCategory::kAccEnergyPublic) {
      EXPECT_GT(l.records[i].truth.annual_energy_kwh, 0) << i;
      EXPECT_TRUE(l.records[i].with_public.annual_energy) << i;
      EXPECT_FALSE(l.records[i].top500.annual_energy) << i;
    }
  }
}

TEST(Generator, Fig2ItemFlagsConsistentWithDisclosure) {
  for (const auto& r : list().records) {
    EXPECT_EQ(r.item_reported[12], r.top500.power) << r.rank;   // HPL Power
    EXPECT_EQ(r.item_reported[14], r.top500.memory) << r.rank;  // Memory
    if (r.is_accelerated()) {
      EXPECT_EQ(r.item_reported[7], r.top500.gpus) << r.rank;
    }
  }
}

TEST(Generator, RejectsUnsupportedListSize) {
  GeneratorConfig cfg;
  cfg.list_size = 100;
  EXPECT_DEATH(generate_list(cfg), "quotas");
}

TEST(Generator, PowerScaleOnlyAffectsSynthetic) {
  GeneratorConfig scaled;
  scaled.power_scale = 0.35;
  auto a = generate_list();
  auto b = generate_list(scaled);
  // Named rank 1 (El Capitan) unchanged; synthetic systems scaled.
  EXPECT_DOUBLE_EQ(a.records[0].truth.power_kw,
                   b.records[0].truth.power_kw);
  double ratio_sum = 0;
  int n = 0;
  for (size_t i = 0; i < 500; ++i) {
    if (a.records[i].name.rfind("Synth", 0) == 0 &&
        a.records[i].name == b.records[i].name) {
      ratio_sum += b.records[i].truth.power_kw / a.records[i].truth.power_kw;
      ++n;
    }
  }
  ASSERT_GT(n, 100);
  EXPECT_NEAR(ratio_sum / n, 0.5, 0.02);  // 0.35 / default 0.70
}


// Property: the quota machinery is seed-independent — Table I counts and
// the coverage-critical disclosure structure hold for ANY seed.
class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, QuotasHoldForEverySeed) {
  GeneratorConfig cfg;
  cfg.seed = GetParam();
  const auto l = generate_list(cfg);
  int nodes_t500 = 0, nodes_pub = 0, gpus_pub = 0, mem_pub = 0, ssd_pub = 0,
      util_pub = 0, energy_pub = 0;
  for (const auto& r : l.records) {
    if (!r.top500.nodes) ++nodes_t500;
    if (!r.with_public.nodes) ++nodes_pub;
    if (!r.with_public.gpus) ++gpus_pub;
    if (!r.with_public.memory) ++mem_pub;
    if (!r.with_public.ssd) ++ssd_pub;
    if (!r.with_public.utilization) ++util_pub;
    if (!r.with_public.annual_energy) ++energy_pub;
  }
  EXPECT_EQ(nodes_t500, 209);
  EXPECT_EQ(nodes_pub, 86);
  EXPECT_EQ(gpus_pub, 86);
  EXPECT_EQ(mem_pub, 292);
  EXPECT_EQ(ssd_pub, 450);
  EXPECT_EQ(util_pub, 497);
  EXPECT_EQ(energy_pub, 492);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 42ull, 0xdeadbeefull,
                                           0x123456789abcdefull,
                                           987654321ull));

}  // namespace
}  // namespace easyc::top500
