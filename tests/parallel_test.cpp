#include "parallel/algorithms.hpp"
#include "parallel/sharded_cache.hpp"
#include "parallel/thread_pool.hpp"
#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace easyc::par {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor must finish all queued work
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(pool, 0, hits.size(), [&](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoops) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [&](size_t i) {
                     if (i == 57) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

TEST(ParallelMap, PreservesIndexOrder) {
  ThreadPool pool(4);
  auto out = parallel_map(pool, 0, 1000,
                          [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelReduce, MatchesSerialSum) {
  ThreadPool pool(4);
  const size_t n = 100000;
  const long long expected = static_cast<long long>(n) * (n - 1) / 2;
  const long long got = parallel_reduce<long long>(
      pool, 0, n, 0LL, [](size_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(got, expected);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const int got = parallel_reduce<int>(
      pool, 10, 10, 123, [](size_t) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(got, 123);
}

// Property sweep: results must be independent of pool size.
class PoolSizeSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PoolSizeSweep, ReduceIsDeterministicAcrossPoolSizes) {
  ThreadPool pool(GetParam());
  const long long got = parallel_reduce<long long>(
      pool, 0, 9999, 0LL, [](size_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(got, 9999LL * 9998 / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolSizeSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

TEST(ShardedCache, LookupInsertRoundTripAndStats) {
  ShardedCache<int, std::string> cache(4);
  std::string out;
  EXPECT_FALSE(cache.lookup(1, out));
  cache.insert(1, "one");
  ASSERT_TRUE(cache.lookup(1, out));
  EXPECT_EQ(out, "one");

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ShardedCache, FirstWriterWins) {
  ShardedCache<int, int> cache(2);
  cache.insert(7, 70);
  cache.insert(7, 71);  // duplicate for an immutable key: dropped
  int out = 0;
  ASSERT_TRUE(cache.lookup(7, out));
  EXPECT_EQ(out, 70);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedCache, CapacityBoundEvicts) {
  ShardedCache<int, int> cache(1, 4);
  for (int i = 0; i < 100; ++i) cache.insert(i, i);
  const auto stats = cache.stats();
  EXPECT_LE(stats.entries, 4u);
  EXPECT_EQ(stats.evictions, 96u);
}

TEST(ShardedCache, EvictsLeastRecentlyUsedFirst) {
  // Single shard, capacity 3: the victim must be the entry touched
  // longest ago, with lookup hits counting as touches.
  ShardedCache<int, int> cache(1, 3);
  cache.insert(1, 10);
  cache.insert(2, 20);
  cache.insert(3, 30);
  int out = 0;
  ASSERT_TRUE(cache.lookup(1, out));  // refresh 1; LRU order is now 2,3,1

  cache.insert(4, 40);  // evicts 2
  EXPECT_FALSE(cache.lookup(2, out));
  EXPECT_TRUE(cache.lookup(1, out));
  EXPECT_TRUE(cache.lookup(3, out));
  EXPECT_TRUE(cache.lookup(4, out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedCache, EvictionFollowsInsertionOrderWithoutTouches) {
  ShardedCache<int, int> cache(1, 3);
  for (int i = 0; i < 6; ++i) cache.insert(i, i);
  // 0,1,2 inserted then evicted in that order as 3,4,5 arrived.
  int out = 0;
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(cache.lookup(i, out)) << i;
  for (int i = 3; i < 6; ++i) EXPECT_TRUE(cache.lookup(i, out)) << i;
  EXPECT_EQ(cache.stats().evictions, 3u);
}

TEST(ShardedCache, DuplicateInsertDoesNotEvictOrRefresh) {
  ShardedCache<int, int> cache(1, 2);
  cache.insert(1, 10);
  cache.insert(2, 20);
  cache.insert(1, 11);  // dropped duplicate: no eviction, no refresh
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.insert(3, 30);  // 1 is still the least recently used
  int out = 0;
  EXPECT_FALSE(cache.lookup(1, out));
  ASSERT_TRUE(cache.lookup(2, out));
  EXPECT_EQ(out, 20);
}

TEST(ShardedCache, SnapshotRestoreRoundTripPreservesEntriesAndOrder) {
  ShardedCache<int, std::string> cache(1, 3);
  cache.insert(1, "one");
  cache.insert(2, "two");
  cache.insert(3, "three");
  std::string s;
  ASSERT_TRUE(cache.lookup(1, s));  // LRU order: 2,3,1

  const auto encode_key = [](util::BinaryWriter& w, int k) {
    w.u64(static_cast<uint64_t>(k));
  };
  const auto encode_value = [](util::BinaryWriter& w, const std::string& v) {
    w.str(v);
  };
  const auto decode_key = [](util::BinaryReader& r) {
    return static_cast<int>(r.u64());
  };
  const auto decode_value = [](util::BinaryReader& r) { return r.str(); };

  const std::string bytes = cache.snapshot(77, encode_key, encode_value);
  ShardedCache<int, std::string> back(1, 3);
  EXPECT_EQ(back.restore(bytes, 77, decode_key, decode_value), 3u);
  EXPECT_EQ(back.size(), 3u);

  // Recency order survived the round trip: under pressure the restored
  // cache evicts the same victim (2) the original would. Probe only
  // after the eviction — lookups themselves refresh recency.
  back.insert(4, "four");
  EXPECT_FALSE(back.lookup(2, s));
  ASSERT_TRUE(back.lookup(1, s));
  EXPECT_EQ(s, "one");
  ASSERT_TRUE(back.lookup(3, s));
  EXPECT_EQ(s, "three");
  EXPECT_TRUE(back.lookup(4, s));

  // A scheme-tag mismatch is a stale snapshot: rejected untouched.
  ShardedCache<int, std::string> other(1, 3);
  EXPECT_THROW(other.restore(bytes, 78, decode_key, decode_value),
               util::CodecError);
  EXPECT_EQ(other.size(), 0u);
  // And arbitrary bytes are not a snapshot.
  EXPECT_THROW(other.restore("not a snapshot at all", 77, decode_key,
                             decode_value),
               util::CodecError);
}

TEST(ShardedCache, GetOrComputeMemoizes) {
  ShardedCache<int, int> cache(4);
  std::atomic<int> computed{0};
  auto square = [&](int k) {
    return cache.get_or_compute(k, [&] {
      ++computed;
      return k * k;
    });
  };
  EXPECT_EQ(square(6), 36);
  EXPECT_EQ(square(6), 36);
  EXPECT_EQ(computed.load(), 1);
}

TEST(ShardedCache, SnapshotWhileWorkersMutateIsRaceFreeAndCoherent) {
  // The TSan acceptance case: snapshot() drains the stripes while
  // workers keep memoizing. Every snapshot taken mid-flight must be a
  // coherent prefix of the key space (each entry internally intact),
  // and restoring it must reproduce only correct values.
  ThreadPool pool(4);
  ShardedCache<size_t, size_t> cache(8);
  const auto encode_key = [](util::BinaryWriter& w, size_t k) { w.u64(k); };
  const auto encode_value = [](util::BinaryWriter& w, size_t v) { w.u64(v); };
  const auto decode_key = [](util::BinaryReader& r) {
    return static_cast<size_t>(r.u64());
  };
  const auto decode_value = [](util::BinaryReader& r) {
    return static_cast<size_t>(r.u64());
  };

  std::atomic<bool> done{false};
  auto snapshotter = pool.submit([&] {
    std::vector<std::string> taken;
    while (!done.load()) {
      taken.push_back(cache.snapshot(5, encode_key, encode_value));
    }
    taken.push_back(cache.snapshot(5, encode_key, encode_value));
    return taken;
  });

  parallel_for(pool, 0, 20000, [&](size_t i) {
    const size_t key = i % 509;
    const size_t v = cache.get_or_compute(key, [&] { return key * 7 + 1; });
    ASSERT_EQ(v, key * 7 + 1);
  });
  done.store(true);

  const auto snapshots = snapshotter.get();
  ASSERT_FALSE(snapshots.empty());
  for (const std::string& bytes : snapshots) {
    ShardedCache<size_t, size_t> restored(8);
    restored.restore(bytes, 5, decode_key, decode_value);
    for (size_t key = 0; key < 509; ++key) {
      size_t v = 0;
      if (restored.lookup(key, v)) {
        EXPECT_EQ(v, key * 7 + 1);
      }
    }
  }
  // The final snapshot (after all workers finished) carries everything.
  ShardedCache<size_t, size_t> full(8);
  EXPECT_EQ(full.restore(snapshots.back(), 5, decode_key, decode_value),
            509u);
}

TEST(ShardedCache, ConcurrentMixedUseIsConsistent) {
  ThreadPool pool(4);
  ShardedCache<size_t, size_t> cache(8);
  // Many workers memoizing an overlapping key space: every returned
  // value must be the pure function of its key.
  parallel_for(pool, 0, 10000, [&](size_t i) {
    const size_t key = i % 257;
    const size_t v = cache.get_or_compute(key, [&] { return key * 3; });
    ASSERT_EQ(v, key * 3);
  });
  EXPECT_EQ(cache.size(), 257u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups(), 10000u);
  EXPECT_GE(stats.hits, 10000u - 257u * 4u);  // racing first computes allowed
}

TEST(ShardedCache, ClearDropsEntriesKeepsCounters) {
  ShardedCache<int, int> cache(2);
  cache.insert(1, 1);
  int out;
  cache.lookup(1, out);
  const auto before = cache.stats();
  cache.clear();
  const auto after = cache.stats();
  EXPECT_EQ(after.entries, 0u);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_FALSE(cache.lookup(1, out));
  EXPECT_EQ(after.since(before).hits, 0u);
}

TEST(GlobalPool, IsUsable) {
  std::atomic<int> n{0};
  parallel_for(0, 100, [&](size_t) { ++n; });
  EXPECT_EQ(n.load(), 100);
}

}  // namespace
}  // namespace easyc::par
