// Sweep engine: axis-spec grammar, grid expansion counts and naming,
// axis-override correctness against hand-built specs, Monte-Carlo seed
// determinism, and the engine guarantees (1-vs-N-thread and batch-size
// bit-identity, cache amortization across aliased cells).
#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"
#include "top500/generator.hpp"
#include "util/error.hpp"

namespace easyc::analysis {
namespace {

namespace sc = scenarios;

// A 60-record slice of the generated list: plenty of coverage variety,
// fast enough to sweep many times in one test binary.
const std::vector<top500::SystemRecord>& records60() {
  static const auto kRecords = [] {
    auto all = top500::generate_records();
    all.resize(60);
    return all;
  }();
  return kRecords;
}

// --- grammar --------------------------------------------------------

TEST(SweepSpec, AxisNamesRoundTripAndAliases) {
  for (const SweepAxis a :
       {SweepAxis::kAci, SweepAxis::kPue, SweepAxis::kFab,
        SweepAxis::kUtilization, SweepAxis::kLifetime}) {
    EXPECT_EQ(axis_from_name(axis_name(a)), a);
  }
  EXPECT_EQ(axis_from_name("utilization"), SweepAxis::kUtilization);
  EXPECT_EQ(axis_from_name("lifetime"), SweepAxis::kLifetime);
  EXPECT_FALSE(axis_from_name("watts").has_value());
}

TEST(SweepSpec, ParsesListsRangesAndMonteCarlo) {
  const auto spec =
      SweepSpec::parse("aci=25,100; pue=1.1:1.5:3 ;life=4,8;mc=16@7");
  ASSERT_EQ(spec.axes.size(), 3u);
  EXPECT_EQ(spec.axes[0].axis, SweepAxis::kAci);
  EXPECT_EQ(spec.axes[0].values, (std::vector<double>{25.0, 100.0}));
  EXPECT_EQ(spec.axes[1].axis, SweepAxis::kPue);
  ASSERT_EQ(spec.axes[1].values.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.axes[1].values[0], 1.1);
  EXPECT_NEAR(spec.axes[1].values[1], 1.3, 1e-12);
  EXPECT_DOUBLE_EQ(spec.axes[1].values[2], 1.5);
  EXPECT_EQ(spec.axes[2].axis, SweepAxis::kLifetime);
  ASSERT_TRUE(spec.monte_carlo.has_value());
  EXPECT_EQ(spec.monte_carlo->draws, 16u);
  EXPECT_EQ(spec.monte_carlo->seed, 7u);

  EXPECT_EQ(spec.grid_cells(), 12u);
  // 1 base + 2 endpoints per multi-valued axis + grid + draws.
  EXPECT_EQ(spec.total_cells(), 1u + 6u + 12u + 16u);
}

TEST(SweepSpec, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(SweepSpec::parse(""), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("watts=1,2"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("aci=25;aci=50"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("aci=25,banana"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("aci=1:2:1"), util::ParseError);   // n < 2
  EXPECT_THROW(SweepSpec::parse("aci=5:5:3"), util::ParseError);   // lo == hi
  EXPECT_THROW(SweepSpec::parse("aci=1:2"), util::ParseError);     // not lo:hi:n
  EXPECT_THROW(SweepSpec::parse("aci=25,25"), util::ParseError);   // duplicate
  EXPECT_THROW(SweepSpec::parse("aci=25;;pue=1.2"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("mc=16"), util::ParseError);       // no seed
  EXPECT_THROW(SweepSpec::parse("mc=0@7"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("mc=2@-1"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("mc=4@1;mc=4@2"), util::ParseError);
  // Semantic validation happens at expansion, via ScenarioSet::add.
  EXPECT_THROW(expand_sweep(SweepSpec::parse("pue=0.5,1.2")), util::Error);
}

// --- expansion ------------------------------------------------------

TEST(SweepSpec, ApplyAxisMatchesHandBuiltSpecs) {
  // The stock renewables-grid what-if *is* enhanced + aci=25: deriving
  // it through the axis machinery must land on the same assessment
  // identity (equal fingerprints => the memo cache serves either).
  EXPECT_EQ(apply_axis(sc::enhanced(), SweepAxis::kAci, 25.0).fingerprint(),
            sc::renewables_grid().fingerprint());

  // The lifetime axis only reaches annualization: same fingerprint as
  // its base (the cache win behind cheap lifetime sweeps), new
  // service_years — exactly the stock extended-lifetime what-if.
  const ScenarioSpec life8 = apply_axis(sc::enhanced(), SweepAxis::kLifetime,
                                        8.0);
  EXPECT_EQ(life8.fingerprint(), sc::enhanced().fingerprint());
  EXPECT_DOUBLE_EQ(life8.service_years,
                   sc::extended_lifetime().service_years);

  const auto opt = apply_axis(sc::baseline(), SweepAxis::kPue, 1.25)
                       .to_options();
  EXPECT_EQ(opt.operational.pue_override, 1.25);
  const auto fab = apply_axis(sc::baseline(), SweepAxis::kFab, 0.2);
  EXPECT_EQ(fab.fab_aci_kg_kwh, 0.2);
  const auto util = apply_axis(sc::baseline(), SweepAxis::kUtilization, 0.6);
  EXPECT_EQ(util.default_utilization, 0.6);
}

TEST(SweepExpansion, NamesAreOrderedUniqueAndCorrect) {
  const auto spec = SweepSpec::parse("aci=25,100;life=4,8;mc=3@9");
  const ScenarioSet set = expand_sweep(spec);
  ASSERT_EQ(set.size(), spec.total_cells());

  EXPECT_EQ(set.specs().front().name, "sweep/base");
  EXPECT_EQ(set.specs().front().fingerprint(), sc::enhanced().fingerprint());
  EXPECT_TRUE(set.contains("sweep/axis/aci=25"));
  EXPECT_TRUE(set.contains("sweep/axis/aci=100"));
  EXPECT_TRUE(set.contains("sweep/axis/life=4"));
  EXPECT_TRUE(set.contains("sweep/mc/0002"));
  EXPECT_FALSE(set.contains("sweep/mc/0003"));

  // A grid cell carries exactly the overrides its name declares —
  // identical to deriving the same cell by hand.
  const ScenarioSpec& cell = set.at("sweep/grid/aci=25/life=4");
  const ScenarioSpec by_hand = apply_axis(
      apply_axis(sc::enhanced(), SweepAxis::kAci, 25.0),
      SweepAxis::kLifetime, 4.0);
  EXPECT_EQ(cell.fingerprint(), by_hand.fingerprint());
  EXPECT_DOUBLE_EQ(cell.service_years, 4.0);
  EXPECT_EQ(cell.aci_override_g_kwh, 25.0);
  // ...and the single-axis endpoint aliases the stock what-if.
  EXPECT_EQ(set.at("sweep/axis/aci=25").fingerprint(),
            sc::renewables_grid().fingerprint());
}

TEST(SweepExpansion, MonteCarloDrawsAreSeededAndSpecExpressible) {
  const auto a = expand_sweep(SweepSpec::parse("mc=6@42"));
  const auto b = expand_sweep(SweepSpec::parse("mc=6@42"));
  const auto c = expand_sweep(SweepSpec::parse("mc=6@43"));
  ASSERT_EQ(a.size(), 7u);  // base + draws
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.specs()[i].fingerprint(), b.specs()[i].fingerprint());
    any_differs |= a.specs()[i].fingerprint() != c.specs()[i].fingerprint();
  }
  EXPECT_TRUE(any_differs);

  // Draws perturb the spec-expressible priors around the base values.
  const ScenarioSpec& draw = a.at("sweep/mc/0000");
  ASSERT_TRUE(draw.default_utilization.has_value());
  ASSERT_TRUE(draw.fab_aci_kg_kwh.has_value());
  const model::PriorRanges ranges;
  const model::EasyCOptions base = sc::enhanced().to_options();
  EXPECT_NEAR(*draw.default_utilization, base.operational.default_utilization,
              base.operational.default_utilization * ranges.utilization_rel +
                  1e-12);
  EXPECT_NEAR(*draw.fab_aci_kg_kwh, base.embodied.fab_aci_kg_kwh,
              base.embodied.fab_aci_kg_kwh * ranges.fab_aci_rel + 1e-12);
  // No absolute ACI override on the base scenario => none on the draw.
  EXPECT_FALSE(draw.aci_override_g_kwh.has_value());
}

// --- engine ---------------------------------------------------------

TEST(SweepEngine, ReportIsBitIdenticalForAnyThreadCountAndBatchSize) {
  const auto spec = SweepSpec::parse("aci=25,300;util=0.6:0.9:3;mc=8@3");

  par::ThreadPool serial(1);
  SweepEngine::Options one;
  one.pool = &serial;
  one.batch_size = 5;
  const SweepReport a = SweepEngine(one).run(records60(), spec);

  par::ThreadPool wide(4);
  SweepEngine::Options many;
  many.pool = &wide;
  many.batch_size = 1000;  // everything in one block
  const SweepReport b = SweepEngine(many).run(records60(), spec);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].name, b.cells[i].name);
    EXPECT_EQ(a.cells[i].op_total_mt, b.cells[i].op_total_mt) << i;
    EXPECT_EQ(a.cells[i].emb_total_mt, b.cells[i].emb_total_mt) << i;
    EXPECT_EQ(a.cells[i].annualized_mt, b.cells[i].annualized_mt) << i;
  }
  EXPECT_EQ(render_sweep_report(a), render_sweep_report(b));
  EXPECT_NE(a.batches, b.batches);  // the runs really differed in shape
}

TEST(SweepEngine, SeedDeterminismReachesTheReport) {
  const SweepReport a =
      SweepEngine().run(records60(), SweepSpec::parse("mc=12@7"));
  const SweepReport b =
      SweepEngine().run(records60(), SweepSpec::parse("mc=12@7"));
  const SweepReport c =
      SweepEngine().run(records60(), SweepSpec::parse("mc=12@8"));
  EXPECT_EQ(render_sweep_report(a), render_sweep_report(b));
  EXPECT_NE(render_sweep_report(a), render_sweep_report(c));
}

TEST(SweepEngine, LifetimeAxisCellsAliasTheirBaseAssessments) {
  // life is excluded from the assessment fingerprint, so a pure
  // lifetime sweep computes each record exactly once — every other
  // cell is lookups. 5 cells (base + 2 endpoints + 2 grid) x 60
  // records = 300 lookups, 60 misses.
  AssessmentEngine engine;
  SweepEngine::Options opt;
  opt.engine = &engine;
  const SweepReport r =
      SweepEngine(opt).run(records60(), SweepSpec::parse("life=4,8"));
  EXPECT_EQ(r.cells.size(), 5u);
  EXPECT_EQ(r.cache.lookups(), 300u);
  EXPECT_EQ(r.cache.misses, 60u);
  EXPECT_EQ(r.cache.hits, 240u);

  // Same engine, same sweep: pure lookups, byte-identical report.
  const SweepReport warm =
      SweepEngine(opt).run(records60(), SweepSpec::parse("life=4,8"));
  EXPECT_DOUBLE_EQ(warm.cache.hit_rate(), 1.0);
  EXPECT_EQ(render_sweep_report(r), render_sweep_report(warm));
}

TEST(SweepEngine, TornadoSwingsPointTheRightWay) {
  const SweepReport r = SweepEngine().run(
      records60(), SweepSpec::parse("aci=25,600;life=4,8"));
  ASSERT_EQ(r.tornado.size(), 2u);

  const TornadoRow& aci = r.tornado[0];
  EXPECT_EQ(aci.axis, SweepAxis::kAci);
  EXPECT_DOUBLE_EQ(aci.low, 25.0);
  EXPECT_DOUBLE_EQ(aci.high, 600.0);
  // A dirtier grid means more operational carbon.
  EXPECT_GT(aci.swing_mt, 0.0);
  EXPECT_GT(aci.op_max_abs_pct, 100.0);   // 25 -> 600 is a 24x ACI
  EXPECT_DOUBLE_EQ(aci.emb_max_abs_pct, 0.0);  // embodied ignores the grid

  const TornadoRow& life = r.tornado[1];
  EXPECT_EQ(life.axis, SweepAxis::kLifetime);
  // Longer amortization lowers the annualized total...
  EXPECT_LT(life.swing_mt, 0.0);
  // ...without touching any per-record assessment.
  EXPECT_DOUBLE_EQ(life.op_max_abs_pct, 0.0);
  EXPECT_DOUBLE_EQ(life.emb_max_abs_pct, 0.0);

  // An endpoint cell and a grid cell that share every model-reaching
  // override are the same assessment under different names (the
  // endpoint keeps life at base 6, the grid cell sets life=4 — but
  // the operational total never depends on life); their per-record
  // aggregates must agree exactly.
  const auto cell = [&](const std::string& name) -> const SweepCell& {
    for (const auto& c : r.cells) {
      if (c.name == name) return c;
    }
    throw util::Error("no cell named " + name);
  };
  EXPECT_DOUBLE_EQ(cell("sweep/axis/aci=25").op_total_mt,
                   cell("sweep/grid/aci=25/life=4").op_total_mt);
}

}  // namespace
}  // namespace easyc::analysis
