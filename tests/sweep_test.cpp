// Sweep engine: axis-spec grammar, grid expansion counts and naming,
// axis-override correctness against hand-built specs, Monte-Carlo seed
// determinism, and the engine guarantees (1-vs-N-thread and batch-size
// bit-identity, cache amortization across aliased cells).
#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "parallel/thread_pool.hpp"
#include "top500/generator.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace easyc::analysis {
namespace {

namespace sc = scenarios;

// A 60-record slice of the generated list: plenty of coverage variety,
// fast enough to sweep many times in one test binary.
const std::vector<top500::SystemRecord>& records60() {
  static const auto kRecords = [] {
    auto all = top500::generate_records();
    all.resize(60);
    return all;
  }();
  return kRecords;
}

// --- grammar --------------------------------------------------------

TEST(SweepSpec, AxisNamesRoundTripAndAliases) {
  for (const SweepAxis a :
       {SweepAxis::kAci, SweepAxis::kPue, SweepAxis::kFab,
        SweepAxis::kUtilization, SweepAxis::kLifetime}) {
    EXPECT_EQ(axis_from_name(axis_name(a)), a);
  }
  EXPECT_EQ(axis_from_name("utilization"), SweepAxis::kUtilization);
  EXPECT_EQ(axis_from_name("lifetime"), SweepAxis::kLifetime);
  EXPECT_FALSE(axis_from_name("watts").has_value());
}

TEST(SweepSpec, ParsesListsRangesAndMonteCarlo) {
  const auto spec =
      SweepSpec::parse("aci=25,100; pue=1.1:1.5:3 ;life=4,8;mc=16@7");
  ASSERT_EQ(spec.axes.size(), 3u);
  EXPECT_EQ(spec.axes[0].axis, SweepAxis::kAci);
  EXPECT_EQ(spec.axes[0].values, (std::vector<double>{25.0, 100.0}));
  EXPECT_EQ(spec.axes[1].axis, SweepAxis::kPue);
  ASSERT_EQ(spec.axes[1].values.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.axes[1].values[0], 1.1);
  EXPECT_NEAR(spec.axes[1].values[1], 1.3, 1e-12);
  EXPECT_DOUBLE_EQ(spec.axes[1].values[2], 1.5);
  EXPECT_EQ(spec.axes[2].axis, SweepAxis::kLifetime);
  ASSERT_TRUE(spec.monte_carlo.has_value());
  EXPECT_EQ(spec.monte_carlo->draws, 16u);
  EXPECT_EQ(spec.monte_carlo->seed, 7u);

  EXPECT_EQ(spec.grid_cells(), 12u);
  // 1 base + 2 endpoints per multi-valued axis + grid + draws.
  EXPECT_EQ(spec.total_cells(), 1u + 6u + 12u + 16u);
}

TEST(SweepSpec, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(SweepSpec::parse(""), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("watts=1,2"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("aci=25;aci=50"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("aci=25,banana"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("aci=1:2:1"), util::ParseError);   // n < 2
  EXPECT_THROW(SweepSpec::parse("aci=5:5:3"), util::ParseError);   // lo == hi
  EXPECT_THROW(SweepSpec::parse("aci=1:2"), util::ParseError);     // not lo:hi:n
  EXPECT_THROW(SweepSpec::parse("aci=25,25"), util::ParseError);   // duplicate
  EXPECT_THROW(SweepSpec::parse("aci=25;;pue=1.2"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("mc=16"), util::ParseError);       // no seed
  EXPECT_THROW(SweepSpec::parse("mc=0@7"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("mc=2@-1"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("mc=4@1;mc=4@2"), util::ParseError);
}

TEST(SweepSpec, ParseRejectsPhysicallyMeaninglessValues) {
  EXPECT_THROW(SweepSpec::parse("pue=-1"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("pue=0.5,1.2"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("util=0,0.5"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("util=0.5,1.5"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("life=0:8:5"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("life=-4,6"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("aci=-5,100"), util::ParseError);
  EXPECT_THROW(SweepSpec::parse("fab=-0.1,0.2"), util::ParseError);

  // Boundary values are legal: a carbon-free grid, a perfect facility,
  // full utilization.
  EXPECT_NO_THROW(SweepSpec::parse("aci=0,100;pue=1,1.2;util=0.5,1"));

  // The message names the axis, the value, and the violated range.
  try {
    SweepSpec::parse("util=0.5,0");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("util"), std::string::npos) << what;
    EXPECT_NE(what.find("value 0"), std::string::npos) << what;
    EXPECT_NE(what.find("(0,1]"), std::string::npos) << what;
  }

  // ScenarioSet::add stays as the backstop for hand-built SweepSpecs
  // that never went through the grammar.
  SweepSpec bad;
  bad.base = sc::enhanced();
  bad.axes.push_back({SweepAxis::kPue, {0.5, 1.2}});
  EXPECT_THROW(expand_sweep(bad), util::Error);
}

// --- expansion ------------------------------------------------------

TEST(SweepSpec, ApplyAxisMatchesHandBuiltSpecs) {
  // The stock renewables-grid what-if *is* enhanced + aci=25: deriving
  // it through the axis machinery must land on the same assessment
  // identity (equal fingerprints => the memo cache serves either).
  EXPECT_EQ(apply_axis(sc::enhanced(), SweepAxis::kAci, 25.0).fingerprint(),
            sc::renewables_grid().fingerprint());

  // The lifetime axis only reaches annualization: same fingerprint as
  // its base (the cache win behind cheap lifetime sweeps), new
  // service_years — exactly the stock extended-lifetime what-if.
  const ScenarioSpec life8 = apply_axis(sc::enhanced(), SweepAxis::kLifetime,
                                        8.0);
  EXPECT_EQ(life8.fingerprint(), sc::enhanced().fingerprint());
  EXPECT_DOUBLE_EQ(life8.service_years,
                   sc::extended_lifetime().service_years);

  const auto opt = apply_axis(sc::baseline(), SweepAxis::kPue, 1.25)
                       .to_options();
  EXPECT_EQ(opt.operational.pue_override, 1.25);
  const auto fab = apply_axis(sc::baseline(), SweepAxis::kFab, 0.2);
  EXPECT_EQ(fab.fab_aci_kg_kwh, 0.2);
  const auto util = apply_axis(sc::baseline(), SweepAxis::kUtilization, 0.6);
  EXPECT_EQ(util.default_utilization, 0.6);
}

TEST(SweepExpansion, NamesAreOrderedUniqueAndCorrect) {
  const auto spec = SweepSpec::parse("aci=25,100;life=4,8;mc=3@9");
  const ScenarioSet set = expand_sweep(spec);
  ASSERT_EQ(set.size(), spec.total_cells());

  EXPECT_EQ(set.specs().front().name, "sweep/base");
  EXPECT_EQ(set.specs().front().fingerprint(), sc::enhanced().fingerprint());
  EXPECT_TRUE(set.contains("sweep/axis/aci=25"));
  EXPECT_TRUE(set.contains("sweep/axis/aci=100"));
  EXPECT_TRUE(set.contains("sweep/axis/life=4"));
  EXPECT_TRUE(set.contains("sweep/mc/0002"));
  EXPECT_FALSE(set.contains("sweep/mc/0003"));

  // A grid cell carries exactly the overrides its name declares —
  // identical to deriving the same cell by hand.
  const ScenarioSpec& cell = set.at("sweep/grid/aci=25/life=4");
  const ScenarioSpec by_hand = apply_axis(
      apply_axis(sc::enhanced(), SweepAxis::kAci, 25.0),
      SweepAxis::kLifetime, 4.0);
  EXPECT_EQ(cell.fingerprint(), by_hand.fingerprint());
  EXPECT_DOUBLE_EQ(cell.service_years, 4.0);
  EXPECT_EQ(cell.aci_override_g_kwh, 25.0);
  // ...and the single-axis endpoint aliases the stock what-if.
  EXPECT_EQ(set.at("sweep/axis/aci=25").fingerprint(),
            sc::renewables_grid().fingerprint());
}

TEST(SweepExpansion, MonteCarloDrawsAreSeededAndSpecExpressible) {
  const auto a = expand_sweep(SweepSpec::parse("mc=6@42"));
  const auto b = expand_sweep(SweepSpec::parse("mc=6@42"));
  const auto c = expand_sweep(SweepSpec::parse("mc=6@43"));
  ASSERT_EQ(a.size(), 7u);  // base + draws
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.specs()[i].fingerprint(), b.specs()[i].fingerprint());
    any_differs |= a.specs()[i].fingerprint() != c.specs()[i].fingerprint();
  }
  EXPECT_TRUE(any_differs);

  // Draws perturb the spec-expressible priors around the base values.
  const ScenarioSpec& draw = a.at("sweep/mc/0000");
  ASSERT_TRUE(draw.default_utilization.has_value());
  ASSERT_TRUE(draw.fab_aci_kg_kwh.has_value());
  const model::PriorRanges ranges;
  const model::EasyCOptions base = sc::enhanced().to_options();
  EXPECT_NEAR(*draw.default_utilization, base.operational.default_utilization,
              base.operational.default_utilization * ranges.utilization_rel +
                  1e-12);
  EXPECT_NEAR(*draw.fab_aci_kg_kwh, base.embodied.fab_aci_kg_kwh,
              base.embodied.fab_aci_kg_kwh * ranges.fab_aci_rel + 1e-12);
  // No absolute ACI override on the base scenario => none on the draw.
  EXPECT_FALSE(draw.aci_override_g_kwh.has_value());
}

// --- engine ---------------------------------------------------------

TEST(SweepEngine, ReportIsBitIdenticalForAnyThreadCountAndBatchSize) {
  const auto spec = SweepSpec::parse("aci=25,300;util=0.6:0.9:3;mc=8@3");

  par::ThreadPool serial(1);
  SweepEngine::Options one;
  one.pool = &serial;
  one.batch_size = 5;
  const SweepReport a = SweepEngine(one).run(records60(), spec);

  par::ThreadPool wide(4);
  SweepEngine::Options many;
  many.pool = &wide;
  many.batch_size = 1000;  // everything in one block
  const SweepReport b = SweepEngine(many).run(records60(), spec);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].name, b.cells[i].name);
    EXPECT_EQ(a.cells[i].op_total_mt, b.cells[i].op_total_mt) << i;
    EXPECT_EQ(a.cells[i].emb_total_mt, b.cells[i].emb_total_mt) << i;
    EXPECT_EQ(a.cells[i].annualized_mt, b.cells[i].annualized_mt) << i;
  }
  EXPECT_EQ(render_sweep_report(a), render_sweep_report(b));
  EXPECT_NE(a.batches, b.batches);  // the runs really differed in shape
}

TEST(SweepEngine, SeedDeterminismReachesTheReport) {
  const SweepReport a =
      SweepEngine().run(records60(), SweepSpec::parse("mc=12@7"));
  const SweepReport b =
      SweepEngine().run(records60(), SweepSpec::parse("mc=12@7"));
  const SweepReport c =
      SweepEngine().run(records60(), SweepSpec::parse("mc=12@8"));
  EXPECT_EQ(render_sweep_report(a), render_sweep_report(b));
  EXPECT_NE(render_sweep_report(a), render_sweep_report(c));
}

TEST(SweepEngine, LifetimeAxisCellsAliasTheirBaseAssessments) {
  // life is excluded from the assessment fingerprint, so a pure
  // lifetime sweep computes each record exactly once — every other
  // cell is lookups. 5 cells (base + 2 endpoints + 2 grid) x 60
  // records = 300 lookups, 60 misses.
  AssessmentEngine engine;
  SweepEngine::Options opt;
  opt.engine = &engine;
  const SweepReport r =
      SweepEngine(opt).run(records60(), SweepSpec::parse("life=4,8"));
  EXPECT_EQ(r.cells.size(), 5u);
  EXPECT_EQ(r.cache.lookups(), 300u);
  EXPECT_EQ(r.cache.misses, 60u);
  EXPECT_EQ(r.cache.hits, 240u);

  // Same engine, same sweep: pure lookups, byte-identical report.
  const SweepReport warm =
      SweepEngine(opt).run(records60(), SweepSpec::parse("life=4,8"));
  EXPECT_DOUBLE_EQ(warm.cache.hit_rate(), 1.0);
  EXPECT_EQ(render_sweep_report(r), render_sweep_report(warm));
}

TEST(SweepEngine, TornadoSwingsPointTheRightWay) {
  const SweepReport r = SweepEngine().run(
      records60(), SweepSpec::parse("aci=25,600;life=4,8"));
  ASSERT_EQ(r.tornado.size(), 2u);

  const TornadoRow& aci = r.tornado[0];
  EXPECT_EQ(aci.axis, SweepAxis::kAci);
  EXPECT_DOUBLE_EQ(aci.low, 25.0);
  EXPECT_DOUBLE_EQ(aci.high, 600.0);
  // A dirtier grid means more operational carbon.
  EXPECT_GT(aci.swing_mt, 0.0);
  EXPECT_GT(aci.op_max_abs_pct, 100.0);   // 25 -> 600 is a 24x ACI
  EXPECT_DOUBLE_EQ(aci.emb_max_abs_pct, 0.0);  // embodied ignores the grid

  const TornadoRow& life = r.tornado[1];
  EXPECT_EQ(life.axis, SweepAxis::kLifetime);
  // Longer amortization lowers the annualized total...
  EXPECT_LT(life.swing_mt, 0.0);
  // ...without touching any per-record assessment.
  EXPECT_DOUBLE_EQ(life.op_max_abs_pct, 0.0);
  EXPECT_DOUBLE_EQ(life.emb_max_abs_pct, 0.0);

  // An endpoint cell and a grid cell that share every model-reaching
  // override are the same assessment under different names (the
  // endpoint keeps life at base 6, the grid cell sets life=4 — but
  // the operational total never depends on life); their per-record
  // aggregates must agree exactly.
  const auto cell = [&](const std::string& name) -> const SweepCell& {
    for (const auto& c : r.cells) {
      if (c.name == name) return c;
    }
    throw util::Error("no cell named " + name);
  };
  EXPECT_DOUBLE_EQ(cell("sweep/axis/aci=25").op_total_mt,
                   cell("sweep/grid/aci=25/life=4").op_total_mt);
}

// --- stats modes ----------------------------------------------------

TEST(SweepStatsMode, NamesRoundTrip) {
  for (const SweepStatsMode m :
       {SweepStatsMode::kAuto, SweepStatsMode::kExact,
        SweepStatsMode::kStreaming}) {
    EXPECT_EQ(sweep_stats_mode_from_name(sweep_stats_mode_name(m)), m);
  }
  EXPECT_FALSE(sweep_stats_mode_from_name("approximate").has_value());
}

TEST(SweepStatsMode, AutoStaysExactBelowTheThreshold) {
  // Every sweep in this suite is far below kStreamingStatsThreshold,
  // so kAuto (the default) must keep the historical exact reduction —
  // the byte-identity guarantee against pre-streaming reports.
  const auto spec = SweepSpec::parse("aci=25,300;life=4,8");
  const SweepReport r = SweepEngine().run(records60(), spec);
  EXPECT_FALSE(r.streaming_stats);
  EXPECT_EQ(r.total_cells, spec.total_cells());

  SweepEngine::Options opt;
  opt.stats = SweepStatsMode::kStreaming;
  EXPECT_TRUE(SweepEngine(opt).run(records60(), spec).streaming_stats);
}

TEST(SweepStatsMode, StreamingMatchesExactOnEverythingButOrderStats) {
  const auto spec = SweepSpec::parse("aci=25:600:4;util=0.6:0.9:3;mc=16@5");

  SweepEngine::Options exact_opt;
  exact_opt.stats = SweepStatsMode::kExact;
  const SweepReport exact = SweepEngine(exact_opt).run(records60(), spec);

  SweepEngine::Options stream_opt;
  stream_opt.stats = SweepStatsMode::kStreaming;
  const SweepReport stream = SweepEngine(stream_opt).run(records60(), spec);

  // Cells, tornado, base: reduction mode never touches them.
  ASSERT_EQ(stream.cells.size(), exact.cells.size());
  for (size_t i = 0; i < exact.cells.size(); ++i) {
    EXPECT_EQ(stream.cells[i].annualized_mt, exact.cells[i].annualized_mt);
  }
  ASSERT_EQ(stream.tornado.size(), exact.tornado.size());
  for (size_t i = 0; i < exact.tornado.size(); ++i) {
    EXPECT_EQ(stream.tornado[i].swing_mt, exact.tornado[i].swing_mt);
  }

  // The moment statistics are bit-equal (Kahan total / exact min-max);
  // the P² order statistics track the sorted ones within tolerance.
  for (const auto& [s, e] :
       {std::pair(stream.annualized_mt, exact.annualized_mt),
        std::pair(stream.op_total_mt, exact.op_total_mt),
        std::pair(stream.emb_total_mt, exact.emb_total_mt)}) {
    EXPECT_EQ(s.count, e.count);
    EXPECT_EQ(s.total, e.total);
    EXPECT_EQ(s.mean, e.mean);
    EXPECT_EQ(s.min, e.min);
    EXPECT_EQ(s.max, e.max);
    const double spread = std::max(e.max - e.min, 1e-12);
    EXPECT_NEAR(s.median, e.median, 0.15 * spread);
    EXPECT_NEAR(s.p05, e.p05, 0.15 * spread);
    EXPECT_NEAR(s.p95, e.p95, 0.15 * spread);
  }
}

TEST(SweepStatsMode, StreamingReportIsBitIdenticalAcrossThreadsAndBatches) {
  // The streaming reduction runs in expansion order no matter how the
  // batches land on the pool, so its approximation is the *same*
  // approximation everywhere — the byte-identity guarantee holds in
  // streaming mode too.
  const auto spec = SweepSpec::parse("aci=25:600:4;util=0.6,0.9;mc=8@3");

  par::ThreadPool serial(1);
  SweepEngine::Options one;
  one.pool = &serial;
  one.batch_size = 5;
  one.stats = SweepStatsMode::kStreaming;
  one.retain_cells = false;

  par::ThreadPool wide(4);
  SweepEngine::Options many;
  many.pool = &wide;
  many.batch_size = 1000;
  many.stats = SweepStatsMode::kStreaming;

  const SweepReport a = SweepEngine(one).run(records60(), spec);
  const SweepReport b = SweepEngine(many).run(records60(), spec);
  EXPECT_EQ(render_sweep_report(a), render_sweep_report(b));
}

// --- per-cell export ------------------------------------------------

TEST(SweepCellExport, CsvRoundTripsAndMatchesTheReport) {
  const auto spec = SweepSpec::parse("aci=25,300;life=4,8;mc=4@9");
  std::ostringstream csv;
  CsvCellSink sink(csv);
  const SweepReport r = SweepEngine().run(records60(), spec, &sink);

  const util::CsvTable t = util::CsvTable::parse(csv.str());
  EXPECT_EQ(t.header(), CsvCellSink::columns());
  ASSERT_EQ(t.num_rows(), r.cells.size());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(t.cell(i, "round"), "0");
    EXPECT_EQ(t.cell_int(i, "index"), static_cast<long long>(i));
    EXPECT_EQ(t.cell(i, "scenario"), r.cells[i].name);
    EXPECT_EQ(t.cell(i, "kind"), cell_kind_name(r.cells[i].kind));
    // Aggregates are written as %.17g, which round-trips doubles
    // exactly.
    EXPECT_EQ(t.cell_double(i, "op_total_mt"), r.cells[i].op_total_mt);
    EXPECT_EQ(t.cell_double(i, "emb_total_mt"), r.cells[i].emb_total_mt);
    EXPECT_EQ(t.cell_double(i, "annualized_mt"), r.cells[i].annualized_mt);
    EXPECT_EQ(t.cell_int(i, "op_covered"), r.cells[i].op_covered);
    EXPECT_EQ(t.cell_int(i, "emb_covered"), r.cells[i].emb_covered);
  }

  // A grid cell's coordinate columns carry exactly its name's declared
  // values; axes the cell leaves at the model default stay empty.
  bool found = false;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (t.cell(i, "scenario") != "sweep/grid/aci=25/life=4") continue;
    found = true;
    EXPECT_EQ(t.cell(i, "kind"), "grid");
    EXPECT_EQ(t.cell_double(i, "aci_g_kwh"), 25.0);
    EXPECT_EQ(t.cell_double(i, "service_years"), 4.0);
    EXPECT_TRUE(t.cell(i, "pue").empty());
    EXPECT_TRUE(t.cell(i, "fab_kg_kwh").empty());
  }
  EXPECT_TRUE(found);
}

TEST(SweepCellExport, QuotesFieldsEmbeddingDelimiters) {
  // A base scenario whose label embeds commas, quotes, and a newline:
  // the cell descriptions inherit it, so an unquoted writer would
  // shear every row. The export must round-trip it through a strict
  // RFC-4180 reader.
  ScenarioSpec base = sc::enhanced();
  base.name = "procurement, 2025 \"winter\"\nrevision";
  const SweepSpec spec = SweepSpec::parse("life=4,8", base);

  std::ostringstream csv;
  CsvCellSink sink(csv);
  SweepEngine().run(records60(), spec, &sink);

  const util::CsvTable t = util::CsvTable::parse(csv.str());
  EXPECT_EQ(t.cell(0, "scenario"), "sweep/base");
  EXPECT_EQ(t.cell(0, "description"),
            "sweep base (procurement, 2025 \"winter\"\nrevision)");
}

TEST(SweepCellExport, FileIsByteIdenticalForThreadsBatchesAndCacheState) {
  const auto spec = SweepSpec::parse("aci=25,300;util=0.6:0.9:3");

  par::ThreadPool serial(1);
  std::ostringstream a;
  {
    SweepEngine::Options opt;
    opt.pool = &serial;
    opt.batch_size = 3;
    CsvCellSink sink(a);
    SweepEngine(opt).run(records60(), spec, &sink);
  }

  par::ThreadPool wide(4);
  AssessmentEngine shared({.pool = &wide});
  std::ostringstream b, c;
  {
    SweepEngine::Options opt;
    opt.engine = &shared;
    opt.batch_size = 1000;  // everything in one block
    CsvCellSink sink(b);
    SweepEngine(opt).run(records60(), spec, &sink);
  }
  {
    SweepEngine::Options opt;  // same engine again: warm cache
    opt.engine = &shared;
    CsvCellSink sink(c);
    SweepEngine(opt).run(records60(), spec, &sink);
  }
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.str(), c.str());
}

// --- adaptive refinement --------------------------------------------

TEST(SweepAdaptive, RefinesTheSteepestAxisAndHitsTheCacheHarder) {
  const auto spec = SweepSpec::parse("aci=25:600:4;pue=1.1:1.6:3");
  AssessmentEngine engine;
  SweepEngine::Options opt;
  opt.engine = &engine;
  RefineOptions refine;
  refine.top_axes = 1;
  refine.rounds = 2;
  refine.points = 3;
  const SweepReport r =
      SweepEngine(opt).run_adaptive(records60(), spec, refine);

  ASSERT_EQ(r.refinement.size(), 3u);  // coarse + 2 refinement rounds
  EXPECT_EQ(r.refinement[0].round, 0u);
  EXPECT_TRUE(r.refinement[0].refined.empty());
  size_t grid_values = 4;
  for (size_t i = 1; i < r.refinement.size(); ++i) {
    const auto& round = r.refinement[i];
    EXPECT_EQ(round.round, i);
    ASSERT_EQ(round.refined.size(), 1u);
    const RefinedAxis& ax = round.refined[0];
    // A 24x ACI range dwarfs the PUE swing, so ACI is the axis picked.
    EXPECT_EQ(ax.axis, SweepAxis::kAci);
    EXPECT_EQ(ax.added, 3u);
    EXPECT_LT(ax.seg_lo, ax.seg_hi);
    EXPECT_GE(ax.seg_lo, 25.0);
    EXPECT_LE(ax.seg_hi, 600.0);
    grid_values += ax.added;
    // Every previous value is kept, so a refinement round re-runs the
    // old grid from cache and out-hits the coarse round.
    EXPECT_GT(round.cache.hit_rate(), r.refinement[0].cache.hit_rate());
  }
  // The final report describes the final (densified) grid...
  EXPECT_EQ(r.grid_cells, grid_values * 3);
  EXPECT_EQ(r.refinement.back().cells, r.cells.size());
  // ...and its cache stats are cumulative over all rounds.
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (const auto& round : r.refinement) {
    hits += round.cache.hits;
    misses += round.cache.misses;
  }
  EXPECT_EQ(r.cache.hits, hits);
  EXPECT_EQ(r.cache.misses, misses);
}

TEST(SweepAdaptive, StopsWhenNothingCanBeRefined) {
  // A single two-point axis refines once... and then keeps finding new
  // in-segment values, so cap by rounds; mc-only sweeps have no
  // multi-valued axes at all and stop immediately.
  AssessmentEngine engine;
  SweepEngine::Options opt;
  opt.engine = &engine;
  RefineOptions refine;
  refine.rounds = 3;
  const SweepReport mc_only =
      SweepEngine(opt).run_adaptive(records60(), SweepSpec::parse("mc=4@1"),
                                    refine);
  ASSERT_EQ(mc_only.refinement.size(), 1u);  // coarse only
  EXPECT_TRUE(mc_only.refinement[0].refined.empty());
}

TEST(SweepAdaptive, ReportAndExportAreIdenticalAcrossThreadsAndCacheState) {
  const auto spec = SweepSpec::parse("aci=25:600:4;util=0.6,0.9");
  RefineOptions refine;
  refine.top_axes = 2;
  refine.rounds = 2;

  struct Run {
    std::string report;
    std::string csv;
    double hit_rate = 0.0;
  };
  auto run_with = [&](par::ThreadPool& pool, bool prewarm) {
    AssessmentEngine engine({.pool = &pool});
    SweepEngine::Options opt;
    opt.engine = &engine;
    if (prewarm) {
      SweepEngine(opt).run_adaptive(records60(), spec, refine);
    }
    std::ostringstream csv;
    CsvCellSink sink(csv);
    const SweepReport r =
        SweepEngine(opt).run_adaptive(records60(), spec, refine, &sink);
    return Run{render_sweep_report(r), csv.str(), r.cache.hit_rate()};
  };

  par::ThreadPool one(1);
  par::ThreadPool four(4);
  const Run a = run_with(one, false);
  const Run b = run_with(four, false);
  const Run c = run_with(four, true);

  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.report, c.report);  // warm == cold, byte for byte
  EXPECT_EQ(a.csv, c.csv);
  EXPECT_DOUBLE_EQ(c.hit_rate, 1.0);  // the warm rerun is pure lookups
  EXPECT_NE(a.report.find("Adaptive refinement"), std::string::npos);
}

}  // namespace
}  // namespace easyc::analysis
