// Cell-export sinks: EZCELLS binary round trips byte-identically to
// the direct CSV export, the decoder rejects corrupt/truncated/foreign
// bytes instead of trusting them, TeeCellSink fans out in attachment
// order, sinks fail fast on stream failure, and switching cell
// retention off changes report memory — never report content.
#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "top500/generator.hpp"
#include "util/error.hpp"

namespace easyc::analysis {
namespace {

namespace sc = scenarios;

// A 24-record slice: enough coverage variety to exercise every cell
// kind, fast enough to sweep repeatedly in one test binary.
const std::vector<top500::SystemRecord>& records24() {
  static const auto kRecords = [] {
    auto all = top500::generate_records();
    all.resize(24);
    return all;
  }();
  return kRecords;
}

// Discards every cell; used when a test only cares whether decoding
// throws.
class NullSink : public SweepCellSink {
 public:
  void cell(size_t, size_t, const SweepCell&) override {}
};

// One sweep, exported as CSV and EZCELLS simultaneously through a tee.
// `block_cells` is deliberately tiny so even a small sweep spans
// several binary blocks plus a partial tail block.
struct Exports {
  std::string csv;
  std::string bin;
};

Exports export_both(const std::string& axes, size_t block_cells = 3) {
  std::ostringstream csv, bin;
  CsvCellSink csv_sink(csv);
  BinaryCellSink bin_sink(bin, block_cells);
  TeeCellSink tee({&csv_sink, &bin_sink});
  SweepEngine().run(records24(), SweepSpec::parse(axes), &tee);
  bin_sink.finish();
  return Exports{csv.str(), bin.str()};
}

std::string decode_to_csv(const std::string& bytes) {
  std::istringstream in(bytes);
  std::ostringstream out;
  CsvCellSink sink(out);
  read_binary_cells(in, sink);
  return out.str();
}

// --- binary round trip ----------------------------------------------

TEST(BinaryCellExport, RoundTripsByteIdenticalToDirectCsv) {
  // aci x life grid + mc draws: every cell kind, present and absent
  // axis coordinates, and (with 3-cell blocks) full and partial blocks.
  const Exports e = export_both("aci=25,300;life=4,8;mc=4@9");

  EXPECT_EQ(e.bin.substr(0, BinaryCellSink::kMagic.size()),
            BinaryCellSink::kMagic);
  EXPECT_EQ(decode_to_csv(e.bin), e.csv);

  // The decoder reports the cell count it replayed.
  std::istringstream in(e.bin);
  NullSink null;
  EXPECT_EQ(read_binary_cells(in, null),
            SweepSpec::parse("aci=25,300;life=4,8;mc=4@9").total_cells());
}

TEST(BinaryCellExport, BlockSizeNeverChangesTheDecodedBytes) {
  // Block size is a buffering knob, not a semantic one: 1-cell blocks,
  // tiny blocks, and one huge block must all decode to the same CSV.
  const Exports one = export_both("aci=25,300;util=0.6,0.9", 1);
  const Exports small = export_both("aci=25,300;util=0.6,0.9", 4);
  const Exports big = export_both("aci=25,300;util=0.6,0.9", 1 << 20);
  ASSERT_EQ(one.csv, small.csv);
  ASSERT_EQ(one.csv, big.csv);
  EXPECT_EQ(decode_to_csv(one.bin), one.csv);
  EXPECT_EQ(decode_to_csv(small.bin), one.csv);
  EXPECT_EQ(decode_to_csv(big.bin), one.csv);
  // More blocks really were written in the 1-cell case.
  EXPECT_GT(one.bin.size(), big.bin.size());
}

TEST(BinaryCellExport, QuotedCsvFieldsSurviveTheBinaryDetour) {
  // Descriptions embedding CSV metacharacters exercise the str columns:
  // binary stores them raw, and the replaying CsvCellSink re-escapes
  // them exactly as the direct export did.
  ScenarioSpec base = sc::enhanced();
  base.name = "procurement, 2025 \"winter\"\nrevision";
  std::ostringstream csv, bin;
  CsvCellSink csv_sink(csv);
  BinaryCellSink bin_sink(bin, 2);
  TeeCellSink tee({&csv_sink, &bin_sink});
  SweepEngine().run(records24(), SweepSpec::parse("life=4,8", base), &tee);
  bin_sink.finish();
  EXPECT_NE(csv.str().find("procurement, 2025 \"\"winter\"\""),
            std::string::npos);
  EXPECT_EQ(decode_to_csv(bin.str()), csv.str());
}

TEST(BinaryCellExport, FinishIsIdempotentAndDestructorFlushes) {
  std::ostringstream explicit_finish, dtor_finish;
  SweepCell cell;
  cell.name = "sweep/base";
  cell.description = "d";
  {
    BinaryCellSink sink(explicit_finish, 8);
    sink.cell(0, 0, cell);
    sink.finish();
    sink.finish();  // idempotent: no second footer
  }
  {
    BinaryCellSink sink(dtor_finish, 8);
    sink.cell(0, 0, cell);
    // No finish(): the destructor must still flush the tail + footer.
  }
  EXPECT_EQ(explicit_finish.str(), dtor_finish.str());
  NullSink null;
  std::istringstream in(explicit_finish.str());
  EXPECT_EQ(read_binary_cells(in, null), 1u);
}

// --- corruption and truncation rejection ----------------------------

TEST(BinaryCellExport, EveryTruncationIsRejected) {
  const Exports e = export_both("aci=25,300;life=4,8");
  NullSink null;
  // A file cut off anywhere — mid-header, mid-block, after the last
  // block but before the footer, mid-footer — must throw, never return.
  std::vector<size_t> cuts;
  for (size_t n = 0; n < e.bin.size(); n += 97) cuts.push_back(n);
  for (size_t back = 1; back <= 18 && back <= e.bin.size(); ++back) {
    cuts.push_back(e.bin.size() - back);
  }
  for (const size_t n : cuts) {
    std::istringstream in(e.bin.substr(0, n));
    EXPECT_THROW(read_binary_cells(in, null), util::CodecError) << n;
  }
}

TEST(BinaryCellExport, EverySingleByteFlipIsRejected) {
  // Payload bytes are covered by the per-block checksum, header bytes
  // by the magic/version/schema validation, the footer by its own
  // checksum and cell count — so no single-bit corruption anywhere in
  // the file may decode successfully.
  const Exports e = export_both("aci=25,300");
  NullSink null;
  for (size_t i = 0; i < e.bin.size(); ++i) {
    std::string bytes = e.bin;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x01);
    std::istringstream in(bytes);
    EXPECT_THROW(read_binary_cells(in, null), util::CodecError) << i;
  }
}

TEST(BinaryCellExport, RejectsForeignAndTamperedHeaders) {
  const Exports e = export_both("aci=25,300");
  NullSink null;

  auto expect_rejected = [&null](const std::string& bytes,
                                 const char* label) {
    std::istringstream in(bytes);
    EXPECT_THROW(read_binary_cells(in, null), util::CodecError) << label;
  };

  expect_rejected("", "empty file");
  expect_rejected("not a cell export at all, clearly", "foreign bytes");
  expect_rejected(std::string(BinaryCellSink::kMagic) + "junk",
                  "magic-only prefix");

  // A version we never wrote.
  {
    std::string bytes = e.bin;
    bytes[BinaryCellSink::kMagic.size()] =
        static_cast<char>(BinaryCellSink::kFormatVersion + 1);
    expect_rejected(bytes, "future version");
  }

  // Trailing garbage after a valid footer.
  expect_rejected(e.bin + "x", "trailing bytes");
}

// --- fail-fast sinks ------------------------------------------------

SweepCell dummy_cell() {
  SweepCell cell;
  cell.name = "sweep/base";
  cell.description = "dummy";
  return cell;
}

TEST(SinkFailFast, CsvSinkThrowsTheMomentTheStreamFails) {
  std::ostringstream out;
  CsvCellSink sink(out);
  sink.cell(0, 0, dummy_cell());  // healthy stream: fine
  out.setstate(std::ios::failbit);
  EXPECT_THROW(sink.cell(0, 1, dummy_cell()), util::Error);
}

TEST(SinkFailFast, CsvSinkRejectsAnAlreadyFailedStreamAtConstruction) {
  std::ostringstream out;
  out.setstate(std::ios::failbit);
  EXPECT_THROW(CsvCellSink{out}, util::Error);
}

TEST(SinkFailFast, BinarySinkThrowsOnBlockFlushAndOnFinish) {
  {
    std::ostringstream out;
    out.setstate(std::ios::failbit);
    EXPECT_THROW(BinaryCellSink(out, 4), util::Error);  // header write
  }
  {
    std::ostringstream out;
    BinaryCellSink sink(out, 2);
    sink.cell(0, 0, dummy_cell());
    out.setstate(std::ios::failbit);
    // The second cell fills the block and triggers the failing flush.
    EXPECT_THROW(sink.cell(0, 1, dummy_cell()), util::Error);
  }
  {
    std::ostringstream out;
    BinaryCellSink sink(out, 1024);
    sink.cell(0, 0, dummy_cell());  // buffered, no write yet
    out.setstate(std::ios::failbit);
    EXPECT_THROW(sink.finish(), util::Error);
    // The destructor must swallow the repeated failure, not terminate.
  }
}

TEST(SinkFailFast, TeeStopsAtTheFirstFailingSink) {
  std::ostringstream ok, broken;
  CsvCellSink ok_sink(ok);
  CsvCellSink broken_sink(broken);
  broken.setstate(std::ios::failbit);
  TeeCellSink tee({&broken_sink, &ok_sink});
  const std::string header = ok.str();
  EXPECT_THROW(tee.cell(0, 0, dummy_cell()), util::Error);
  // Fan-out is in attachment order, so the healthy sink never saw the
  // cell the broken one rejected.
  EXPECT_EQ(ok.str(), header);
}

// --- cell retention -------------------------------------------------

TEST(SweepRetention, TurningRetentionOffChangesMemoryNotResults) {
  const auto spec = SweepSpec::parse("aci=25:300:3;life=4,8;mc=4@7");

  SweepEngine::Options keep;
  keep.retain_cells = true;
  std::ostringstream keep_csv;
  CsvCellSink keep_sink(keep_csv);
  const SweepReport retained =
      SweepEngine(keep).run(records24(), spec, &keep_sink);

  SweepEngine::Options drop;
  drop.retain_cells = false;
  std::ostringstream drop_csv;
  CsvCellSink drop_sink(drop_csv);
  const SweepReport streamed =
      SweepEngine(drop).run(records24(), spec, &drop_sink);

  // The only difference: the retained cell vector.
  EXPECT_EQ(retained.cells.size(), spec.total_cells());
  EXPECT_TRUE(streamed.cells.empty());

  // Everything else — rendered report, sink bytes, the base cell, the
  // marginals that drive refinement — is captured from the stream and
  // must match bit for bit.
  EXPECT_EQ(render_sweep_report(streamed), render_sweep_report(retained));
  EXPECT_EQ(drop_csv.str(), keep_csv.str());
  EXPECT_EQ(streamed.total_cells, retained.total_cells);
  EXPECT_EQ(streamed.base.name, retained.base.name);
  EXPECT_EQ(streamed.base.annualized_mt, retained.base.annualized_mt);
  ASSERT_EQ(streamed.grid_marginals.size(), retained.grid_marginals.size());
  for (size_t a = 0; a < streamed.grid_marginals.size(); ++a) {
    EXPECT_EQ(streamed.grid_marginals[a].values,
              retained.grid_marginals[a].values);
    EXPECT_EQ(streamed.grid_marginals[a].mean_annualized,
              retained.grid_marginals[a].mean_annualized);
  }
}

TEST(SweepRetention, AdaptiveRefinementDecisionsSurviveRetentionOff) {
  // refine_spec used to re-derive marginals from report.cells; it now
  // reads grid_marginals, so the refinement path (which axes, which
  // segments, how many added values) must be identical with retention
  // off — and the streamed export with it.
  const auto spec = SweepSpec::parse("aci=25:600:4;pue=1.1:1.6:3");
  RefineOptions refine;
  refine.top_axes = 1;
  refine.rounds = 2;

  auto run_with = [&](bool retain) {
    SweepEngine::Options opt;
    opt.retain_cells = retain;
    std::ostringstream csv;
    CsvCellSink sink(csv);
    const SweepReport r =
        SweepEngine(opt).run_adaptive(records24(), spec, refine, &sink);
    return std::pair<std::string, std::string>(render_sweep_report(r),
                                               csv.str());
  };

  const auto [keep_report, keep_csv] = run_with(true);
  const auto [drop_report, drop_csv] = run_with(false);
  EXPECT_EQ(drop_report, keep_report);
  EXPECT_EQ(drop_csv, keep_csv);
}

}  // namespace
}  // namespace easyc::analysis
