#include "easyc/amortization.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace easyc::model {
namespace {

OperationalResult op_result(double mt) {
  OperationalResult r;
  r.mt_co2e = mt;
  return r;
}

EmbodiedBreakdown emb_result(double mt) {
  EmbodiedBreakdown b;
  b.total_mt = mt;
  return b;
}

TEST(Annualize, SpreadsEmbodiedOverServiceLife) {
  const auto f = annualize(op_result(6000), emb_result(12000), {6.0});
  EXPECT_DOUBLE_EQ(f.operational_mt, 6000);
  EXPECT_DOUBLE_EQ(f.embodied_amortized_mt, 2000);
  EXPECT_DOUBLE_EQ(f.total_mt, 8000);
  EXPECT_DOUBLE_EQ(f.embodied_share, 0.25);
}

TEST(Annualize, ShortLifeRaisesEmbodiedShare) {
  const auto long_life = annualize(op_result(1000), emb_result(6000), {6.0});
  const auto short_life = annualize(op_result(1000), emb_result(6000), {3.0});
  EXPECT_GT(short_life.embodied_share, long_life.embodied_share);
}

TEST(Annualize, ZeroTotalsYieldZeroShare) {
  const auto f = annualize(op_result(0), emb_result(0));
  EXPECT_DOUBLE_EQ(f.embodied_share, 0.0);
}

TEST(Annualize, InvalidServiceLifeAborts) {
  EXPECT_DEATH(annualize(op_result(1), emb_result(1), {0.0}), "positive");
}

TEST(Payback, BasicRatio) {
  // New machine saves 500 MT/yr at 2000 MT embodied: 4-year payback.
  EXPECT_DOUBLE_EQ(replacement_payback_years(1500, 1000, 2000), 4.0);
}

TEST(Payback, NoSavingsNeverPaysBack) {
  EXPECT_TRUE(std::isinf(replacement_payback_years(1000, 1000, 500)));
  EXPECT_TRUE(std::isinf(replacement_payback_years(1000, 1200, 500)));
}

TEST(Payback, FreeEmbodiedPaysBackImmediately) {
  EXPECT_DOUBLE_EQ(replacement_payback_years(1000, 500, 0), 0.0);
}

TEST(Payback, NegativeInputsAbort) {
  EXPECT_DEATH(replacement_payback_years(-1, 0, 0), "non-negative");
}

// Property: payback is monotone in embodied cost and anti-monotone in
// savings.
class PaybackSweep : public ::testing::TestWithParam<double> {};

TEST_P(PaybackSweep, MonotoneInEmbodied) {
  const double emb = GetParam();
  EXPECT_LE(replacement_payback_years(1000, 600, emb),
            replacement_payback_years(1000, 600, emb + 100));
  EXPECT_GE(replacement_payback_years(1000, 600, emb),
            replacement_payback_years(1000, 500, emb));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PaybackSweep,
                         ::testing::Values(0.0, 100.0, 1000.0, 10000.0));

}  // namespace
}  // namespace easyc::model
