// Multi-process sweep sharding: the i/N partitioner covers the grid
// exactly, EZPART partials from N shards (including empty tail shards)
// merge into a report byte-identical to the single-process run, and the
// merge rejects — never blends — partials from a different spec, record
// list, shard layout, stats mode, or codec version, as well as
// truncated or bit-flipped files.
#include "analysis/sweep_shard.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/assessment_engine.hpp"
#include "analysis/sweep.hpp"
#include "service/server.hpp"
#include "top500/generator.hpp"
#include "util/error.hpp"

namespace easyc::analysis {
namespace {

namespace sc = scenarios;

// A 24-record slice: every cell kind covered, fast enough to sweep
// many times in one test binary.
const std::vector<top500::SystemRecord>& records24() {
  static const auto kRecords = [] {
    auto all = top500::generate_records();
    all.resize(24);
    return all;
  }();
  return kRecords;
}

// 1 base + 6 endpoints + (4*3) grid + 20 draws = 39 cells.
constexpr char kAxes[] =
    "aci=25:600:4;pue=1.1,1.3,1.6;util=0.5:0.95:4;mc=20@42";
// 1 base + 2 endpoints + 2 grid = 5 cells (for the N > cells case).
constexpr char kTinyAxes[] = "pue=1.1,1.3";

std::string run_partial(const SweepSpec& spec, ShardRef ref,
                        const std::vector<top500::SystemRecord>& records,
                        SweepStatsMode stats = SweepStatsMode::kAuto) {
  SweepEngine::Options opt;
  opt.stats = stats;
  SweepEngine engine(opt);
  std::ostringstream out;
  run_sweep_shard(engine, records, spec, ref, out);
  return out.str();
}

std::string write_temp(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
  return path;
}

// N partials for `spec`, written to temp files, in shard order.
std::vector<std::string> shard_files(
    const SweepSpec& spec, uint32_t n, const std::string& tag,
    const std::vector<top500::SystemRecord>& records,
    SweepStatsMode stats = SweepStatsMode::kAuto) {
  std::vector<std::string> paths;
  for (uint32_t i = 1; i <= n; ++i) {
    paths.push_back(write_temp(
        tag + "_" + std::to_string(i) + "of" + std::to_string(n) + ".ezpart",
        run_partial(spec, ShardRef{i, n}, records, stats)));
  }
  return paths;
}

// What the single-process run produces: rendered report + CSV + EZCELLS
// bytes, the three streams the merge must reproduce exactly.
struct Baseline {
  std::string report;
  std::string csv;
  std::string bin;
};

Baseline single_process(const SweepSpec& spec,
                        const std::vector<top500::SystemRecord>& records) {
  std::ostringstream csv, bin;
  CsvCellSink csv_sink(csv);
  BinaryCellSink bin_sink(bin, /*block_cells=*/3);
  TeeCellSink tee({&csv_sink, &bin_sink});
  const SweepReport report = SweepEngine().run(records, spec, &tee);
  bin_sink.finish();
  return Baseline{render_sweep_report(report), csv.str(), bin.str()};
}

Baseline merged(const std::vector<std::string>& paths, const SweepSpec& spec,
                const std::vector<top500::SystemRecord>& records) {
  std::ostringstream csv, bin;
  CsvCellSink csv_sink(csv);
  BinaryCellSink bin_sink(bin, /*block_cells=*/3);
  TeeCellSink tee({&csv_sink, &bin_sink});
  MergeOptions opt;
  opt.sink = &tee;
  const SweepReport report = merge_sweep_partials(paths, records, spec, opt);
  bin_sink.finish();
  return Baseline{render_sweep_report(report), csv.str(), bin.str()};
}

TEST(ShardRef, ParsesAndRoundTrips) {
  EXPECT_EQ(ShardRef::parse("1/1"), (ShardRef{1, 1}));
  EXPECT_EQ(ShardRef::parse("2/7"), (ShardRef{2, 7}));
  // N/N is the valid last shard, not an off-by-one.
  EXPECT_EQ(ShardRef::parse("4/4"), (ShardRef{4, 4}));
  EXPECT_EQ(ShardRef::parse(" 3 / 8 "), (ShardRef{3, 8}));
  EXPECT_EQ(ShardRef::parse("12/12").to_string(), "12/12");
}

TEST(ShardRef, RejectsMalformedReferences) {
  for (const char* bad : {"0/4", "3/0", "5/4", "0/0", "-1/4", "1/-4", "x/4",
                          "3/y", "3", "3/", "/4", "", "1/2/3", "1.5/4"}) {
    EXPECT_THROW(ShardRef::parse(bad), util::ParseError) << bad;
  }
}

TEST(ShardRef, RangesPartitionEveryTotal) {
  for (const size_t total : {size_t{0}, size_t{1}, size_t{5}, size_t{39},
                             size_t{1025}}) {
    for (const uint32_t n : {1u, 2u, 3u, 4u, 7u, 64u}) {
      size_t covered = 0, expect_begin = 0;
      size_t min_len = total + 1, max_len = 0;
      for (uint32_t i = 1; i <= n; ++i) {
        const ShardRef ref{i, n};
        const size_t b = ref.begin(total), e = ref.end(total);
        ASSERT_EQ(b, expect_begin) << total << " " << ref.to_string();
        ASSERT_LE(b, e);
        expect_begin = e;
        covered += e - b;
        min_len = std::min(min_len, e - b);
        max_len = std::max(max_len, e - b);
      }
      EXPECT_EQ(expect_begin, total);
      EXPECT_EQ(covered, total);
      // Balanced: no shard is more than one cell longer than another.
      EXPECT_LE(max_len - min_len, size_t{1}) << total << "/" << n;
    }
  }
}

TEST(SweepShard, FourShardsMergeByteIdentically) {
  const SweepSpec spec = SweepSpec::parse(kAxes);
  const Baseline one = single_process(spec, records24());
  const auto paths = shard_files(spec, 4, "ident", records24());
  // Path order must not matter — the merge orders by shard index.
  const std::vector<std::string> shuffled = {paths[2], paths[0], paths[3],
                                             paths[1]};
  const Baseline four = merged(shuffled, spec, records24());
  EXPECT_EQ(one.report, four.report);
  EXPECT_EQ(one.csv, four.csv);
  EXPECT_EQ(one.bin, four.bin);
}

TEST(SweepShard, EmptyTailShardsAreValidAndMergeable) {
  const SweepSpec spec = SweepSpec::parse(kTinyAxes);
  ASSERT_EQ(spec.total_cells(), 5u);
  const Baseline one = single_process(spec, records24());
  // 9 shards of a 5-cell grid: shards 6..9 own zero cells and must
  // still emit valid partials the merge accepts.
  const auto paths = shard_files(spec, 9, "empty", records24());
  const Baseline nine = merged(paths, spec, records24());
  EXPECT_EQ(one.report, nine.report);
  EXPECT_EQ(one.csv, nine.csv);
  EXPECT_EQ(one.bin, nine.bin);
}

TEST(SweepShardMerge, RejectsForeignAndCorruptPartials) {
  const SweepSpec spec = SweepSpec::parse(kTinyAxes);
  const auto good = shard_files(spec, 2, "rej", records24());

  // Wrong spec: same shape, different axis values.
  const SweepSpec other = SweepSpec::parse("pue=1.2,1.4");
  {
    auto paths = good;
    paths[1] = write_temp("rej_otherspec.ezpart",
                          run_partial(other, ShardRef{2, 2}, records24()));
    EXPECT_THROW(merge_sweep_partials(paths, records24(), spec),
                 util::CodecError);
    // ...and the merge's own spec must match the partials, too.
    EXPECT_THROW(merge_sweep_partials(good, records24(), other),
                 util::CodecError);
  }

  // Wrong record list: one shard assessed a truncated fleet.
  {
    auto fewer = records24();
    fewer.resize(12);
    auto paths = good;
    paths[0] = write_temp("rej_records.ezpart",
                          run_partial(spec, ShardRef{1, 2}, fewer));
    EXPECT_THROW(merge_sweep_partials(paths, records24(), spec),
                 util::CodecError);
  }

  // Wrong shard layout: a 1/3 partial among 1/2's siblings, a missing
  // shard, a duplicated shard.
  {
    auto paths = good;
    paths[0] = write_temp("rej_layout.ezpart",
                          run_partial(spec, ShardRef{1, 3}, records24()));
    EXPECT_THROW(merge_sweep_partials(paths, records24(), spec),
                 util::CodecError);
    EXPECT_THROW(merge_sweep_partials({good[0]}, records24(), spec),
                 util::CodecError);
    EXPECT_THROW(
        merge_sweep_partials({good[0], good[0]}, records24(), spec),
        util::CodecError);
  }

  // Mixed stats modes never blend.
  {
    auto paths = good;
    paths[1] = write_temp("rej_stats.ezpart",
                          run_partial(spec, ShardRef{2, 2}, records24(),
                                      SweepStatsMode::kStreaming));
    EXPECT_THROW(merge_sweep_partials(paths, records24(), spec),
                 util::CodecError);
  }

  // Not an EZPART file at all.
  {
    const std::string junk = write_temp("rej_junk.ezpart", "EZCELLS\njunk");
    EXPECT_THROW(merge_sweep_partials({junk, good[1]}, records24(), spec),
                 util::CodecError);
    EXPECT_THROW(
        merge_sweep_partials({"/nonexistent/none.ezpart", good[1]},
                             records24(), spec),
        util::Error);
  }
}

TEST(SweepShardMerge, RejectsEveryTruncation) {
  const SweepSpec spec = SweepSpec::parse(kTinyAxes);
  const std::string whole = run_partial(spec, ShardRef{1, 2}, records24());
  const std::string other =
      write_temp("trunc_2of2.ezpart", run_partial(spec, ShardRef{2, 2},
                                                  records24()));
  for (size_t len = 0; len < whole.size(); ++len) {
    const std::string path =
        write_temp("trunc_cut.ezpart", whole.substr(0, len));
    EXPECT_THROW(merge_sweep_partials({path, other}, records24(), spec),
                 util::CodecError)
        << "accepted a partial truncated to " << len << " bytes";
  }
  // Trailing garbage after a complete partial is corruption too.
  const std::string padded = write_temp("trunc_pad.ezpart", whole + "x");
  EXPECT_THROW(merge_sweep_partials({padded, other}, records24(), spec),
               util::CodecError);
}

TEST(SweepShardMerge, RejectsEveryBitFlip) {
  const SweepSpec spec = SweepSpec::parse(kTinyAxes);
  const std::string whole = run_partial(spec, ShardRef{1, 2}, records24());
  const std::string other =
      write_temp("flip_2of2.ezpart", run_partial(spec, ShardRef{2, 2},
                                                 records24()));
  const Baseline one = single_process(spec, records24());
  size_t rejected = 0;
  for (size_t pos = 0; pos < whole.size(); ++pos) {
    std::string flipped = whole;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    const std::string path = write_temp("flip_cut.ezpart", flipped);
    try {
      const Baseline out = merged({path, other}, spec, records24());
      // A flip the checksums cannot see (e.g. flipping a bit back to
      // itself is excluded by ^0x40, but a flip inside ignored padding
      // would land here) must at least not change the merged output.
      EXPECT_EQ(one.report, out.report) << "silent corruption at " << pos;
    } catch (const util::Error&) {
      ++rejected;
    }
  }
  // Nearly every byte is load-bearing; demand the checksums catch
  // corruption essentially everywhere.
  EXPECT_GE(rejected, whole.size() - whole.size() / 64);
}

TEST(SweepShardMerge, StreamingModeMergesDeterministically) {
  const SweepSpec spec = SweepSpec::parse(kAxes);
  const auto paths =
      shard_files(spec, 3, "stream", records24(), SweepStatsMode::kStreaming);
  const Baseline a = merged(paths, spec, records24());
  const Baseline b = merged(paths, spec, records24());
  // The P² merge is approximate vs a single process but exact between
  // re-merges of the same partials.
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.bin, b.bin);

  // And the cell streams (not the estimator summaries) are still
  // byte-identical to the single-process streaming run.
  SweepEngine::Options opt;
  opt.stats = SweepStatsMode::kStreaming;
  std::ostringstream csv;
  CsvCellSink csv_sink(csv);
  SweepEngine(opt).run(records24(), spec, &csv_sink);
  EXPECT_EQ(csv.str(), a.csv);
}

TEST(SweepShard, SnapshotShipsCacheState) {
  const SweepSpec spec = SweepSpec::parse(kAxes);
  AssessmentEngine worker;
  {
    SweepEngine::Options opt;
    opt.engine = &worker;
    SweepEngine sweep(opt);
    std::ostringstream out;
    run_sweep_shard(sweep, records24(), spec, ShardRef{1, 2}, out);
  }
  const std::string snap = ::testing::TempDir() + "shard_ship.snap";
  worker.save_cache(snap);

  AssessmentEngine merged_engine;
  ASSERT_GT(merged_engine.load_cache(snap), 0u);
  SweepEngine::Options opt;
  opt.engine = &merged_engine;
  SweepEngine sweep(opt);
  std::ostringstream out;
  run_sweep_shard(sweep, records24(), spec, ShardRef{1, 2}, out);
  const auto stats = merged_engine.cache_stats();
  EXPECT_GE(stats.hit_rate(), 0.99) << stats.hits << "/" << stats.misses;
}

TEST(SweepShard, FingerprintsSeeEveryArm) {
  const auto recs = records24();
  const uint64_t base = sweep_spec_fingerprint(SweepSpec::parse(kAxes));
  for (const char* variant :
       {"aci=25:600:4;pue=1.1,1.3,1.6;util=0.5:0.95:4;mc=20@43",
        "aci=25:600:4;pue=1.1,1.3,1.6;util=0.5:0.95:4;mc=21@42",
        "aci=25:600:4;pue=1.1,1.3,1.6;util=0.5:0.95:4",
        "aci=25:600:5;pue=1.1,1.3,1.6;util=0.5:0.95:4;mc=20@42",
        "aci=25:600:4;pue=1.1,1.3,1.7;util=0.5:0.95:4;mc=20@42"}) {
    EXPECT_NE(base, sweep_spec_fingerprint(SweepSpec::parse(variant)))
        << variant;
  }
  auto fewer = recs;
  fewer.resize(23);
  EXPECT_NE(records_fingerprint(recs), records_fingerprint(fewer));
}

// The serve wiring: oversized sweeps fan out when the sharded backend
// is configured (a broken worker binary surfaces as a clean error
// reply), keep the historical refusal when it is not, and refuse to
// shard adaptive refinement.
TEST(SweepShardServe, FanOutWiring) {
  using service::AssessmentServer;
  using service::Request;
  using service::ServerOptions;
  using service::Verb;

  Request request;
  request.verb = Verb::kSweep;
  request.id = "t";
  request.axes = kTinyAxes;
  request.records = 4;

  {
    ServerOptions options;
    options.admission = 1;
    options.max_sweep_cells = 2;
    AssessmentServer server(options);
    const auto reply = server.execute(request);
    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.payload.find("--shard-workers"), std::string::npos)
        << reply.payload;
  }
  {
    ServerOptions options;
    options.admission = 1;
    options.max_sweep_cells = 2;
    options.shard_workers = 2;
    options.shard_exec = "/nonexistent/easyc_cli";
    AssessmentServer server(options);
    const auto reply = server.execute(request);
    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.payload.find("shard worker"), std::string::npos)
        << reply.payload;

    Request refine = request;
    refine.refine = service::parse_refine("1@1");
    const auto refused = server.execute(refine);
    EXPECT_FALSE(refused.ok);
    EXPECT_NE(refused.payload.find("refine"), std::string::npos)
        << refused.payload;
  }
}

}  // namespace
}  // namespace easyc::analysis
