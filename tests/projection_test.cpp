#include "analysis/projection.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace easyc::analysis {
namespace {

TEST(Projection, SevenPointsFor2024To2030) {
  auto p = project(1390, 1880, 9500);
  ASSERT_EQ(p.size(), 7u);
  EXPECT_EQ(p.front().year, 2024);
  EXPECT_EQ(p.back().year, 2030);
}

TEST(Projection, BaselineYearUnchanged) {
  auto p = project(1390, 1880, 9500);
  EXPECT_DOUBLE_EQ(p[0].operational_kmt, 1390);
  EXPECT_DOUBLE_EQ(p[0].embodied_kmt, 1880);
  EXPECT_DOUBLE_EQ(p[0].perf_pflops, 9500);
  EXPECT_DOUBLE_EQ(p[0].ideal_ratio, 9500.0 / 1390.0);
}

TEST(Projection, PaperGrowthFactorsBy2030) {
  // Paper: operational ~1.8x 2024 by 2030, embodied ~1.1x.
  auto p = project(1390, 1880, 9500);
  EXPECT_NEAR(p.back().operational_kmt / p.front().operational_kmt,
              std::pow(1.103, 6), 1e-9);
  EXPECT_NEAR(p.back().operational_kmt / p.front().operational_kmt, 1.8,
              0.05);
  EXPECT_NEAR(p.back().embodied_kmt / p.front().embodied_kmt, 1.127, 0.01);
}

TEST(Projection, RatiosAreConsistent) {
  auto p = project(1000, 2000, 8000);
  for (const auto& pt : p) {
    EXPECT_NEAR(pt.op_ratio, pt.perf_pflops / pt.operational_kmt, 1e-12);
    EXPECT_NEAR(pt.emb_ratio, pt.perf_pflops / pt.embodied_kmt, 1e-12);
  }
}

TEST(Projection, IdealCurveDoublesEvery18Months) {
  auto p = project(1000, 2000, 8000);
  // After 3 years: 2 doublings.
  EXPECT_NEAR(p[3].ideal_ratio / p[0].ideal_ratio, 4.0, 1e-9);
  EXPECT_NEAR(p[6].ideal_ratio / p[0].ideal_ratio, 16.0, 1e-9);
}

TEST(Projection, IdealOutpacesProjectedDramatically) {
  // The paper's Fig. 11 point: actual perf-per-carbon improvement is
  // far below the Dennard-era 2x/18mo expectation.
  auto p = project(1390, 1880, 9500);
  EXPECT_GT(p.back().ideal_ratio / p.back().op_ratio, 5.0);
  // But the projected ratio does still improve.
  EXPECT_GT(p.back().op_ratio, p.front().op_ratio);
}

TEST(Projection, PerfPerCarbonSlopeNearPaperValue) {
  // ~0.2 PFlop/s per thousand MT per year with the default config.
  auto p = project(1390, 1880, 9500);
  const double slope = p[1].op_ratio - p[0].op_ratio;
  EXPECT_NEAR(slope, 0.2, 0.06);
}

TEST(Projection, CustomConfigRespected) {
  ProjectionConfig cfg;
  cfg.start_year = 2025;
  cfg.end_year = 2027;
  cfg.op_growth = 0.5;
  auto p = project(100, 100, 100, cfg);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[2].operational_kmt, 225.0);
}

TEST(Projection, InvalidBaselinesAbort) {
  EXPECT_DEATH(project(0, 1, 1), "positive");
  EXPECT_DEATH(project(1, -2, 1), "positive");
}

TEST(Annualize, TwoCyclesPerYear) {
  // Paper: 5% per list cycle -> 10.25% ~ 10.3%/yr.
  EXPECT_NEAR(annualize_per_cycle_growth(0.05), 0.1025, 1e-10);
  EXPECT_NEAR(annualize_per_cycle_growth(0.01), 0.0201, 1e-10);
  EXPECT_DOUBLE_EQ(annualize_per_cycle_growth(0.0), 0.0);
}

}  // namespace
}  // namespace easyc::analysis
