// End-to-end integration tests: run the paper's full pipeline once and
// verify every headline claim's *shape* plus exact coverage quotas.
#include "analysis/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/coverage.hpp"
#include "analysis/equivalence.hpp"
#include "analysis/sensitivity.hpp"
#include "report/paper_reference.hpp"

namespace easyc::analysis {
namespace {

using P = report::PaperReference;

const PipelineResult& pipeline() {
  static const PipelineResult kResult = run_pipeline();
  return kResult;
}

TEST(Coverage, MatchesPaperExactly) {
  const auto& r = pipeline();
  EXPECT_EQ(r.baseline().coverage.operational, P::kOpCoveredTop500);   // 391
  EXPECT_EQ(r.baseline().coverage.embodied, P::kEmbCoveredTop500);     // 283
  EXPECT_EQ(r.enhanced().coverage.operational, P::kOpCoveredPublic);   // 490
  EXPECT_EQ(r.enhanced().coverage.embodied, P::kEmbCoveredPublic);     // 404
}

TEST(Coverage, BothSidesFromTop500AloneIs56Point6Percent) {
  const auto& r = pipeline();
  int both = 0;
  for (const auto& a : r.baseline().assessments) {
    if (a.operational.ok() && a.embodied.ok()) ++both;
  }
  EXPECT_NEAR(both / 5.0, P::kBothCoveredTop500Pct, 0.11);
}

TEST(Coverage, AddingDataNeverRemovesCoverage) {
  const auto& r = pipeline();
  for (size_t i = 0; i < 500; ++i) {
    if (r.baseline().assessments[i].operational.ok()) {
      EXPECT_TRUE(r.enhanced().assessments[i].operational.ok()) << i;
    }
    if (r.baseline().assessments[i].embodied.ok()) {
      EXPECT_TRUE(r.enhanced().assessments[i].embodied.ok()) << i;
    }
  }
}

TEST(Coverage, GhgProtocolNearZero) {
  const auto g = ghg_protocol_coverage(pipeline().records);
  EXPECT_LE(g.operational, 10);  // paper: "few"
  EXPECT_EQ(g.embodied, 0);      // paper: "NONE report embodied"
}

TEST(Coverage, OperationalGapsConcentrateInRanks26To100) {
  // Paper Fig. 5a: gaps emerge "surprisingly high" at ranks 26-100.
  const auto ranges =
      coverage_by_range(pipeline().records, pipeline().baseline().assessments,
                        /*operational_side=*/true);
  // ranges: 0:1-10, 2:26-50, 3:51-75, 4:76-100, 12:451-500, 13:1-500
  EXPECT_LT(ranges[2].covered_pct, 75.0);
  EXPECT_LT(ranges[3].covered_pct, 80.0);
  EXPECT_GT(ranges[12].covered_pct, 90.0);  // tail CPU systems covered
  EXPECT_NEAR(ranges[13].covered_pct, 391 / 5.0, 0.1);
}

TEST(Coverage, EmbodiedWorstInTop150) {
  // Paper Fig. 6a: the top 150 lack embodied coverage (accelerator
  // diversity); 151-500 CPU systems are assessable from core counts.
  const auto ranges =
      coverage_by_range(pipeline().records, pipeline().baseline().assessments,
                        /*operational_side=*/false);
  double top_avg = 0.0;
  for (int i = 0; i <= 5; ++i) top_avg += ranges[i].covered_pct;
  top_avg /= 6.0;
  double tail_avg = 0.0;
  for (int i = 6; i <= 12; ++i) tail_avg += ranges[i].covered_pct;
  tail_avg /= 7.0;
  EXPECT_LT(top_avg, 45.0);
  EXPECT_GT(tail_avg, 65.0);
}

TEST(Coverage, PublicInfoFillsEmbodiedTop150) {
  const auto base =
      coverage_by_range(pipeline().records, pipeline().baseline().assessments,
                        false);
  const auto enh =
      coverage_by_range(pipeline().records, pipeline().enhanced().assessments,
                        false);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_GE(enh[i].covered_pct, base[i].covered_pct) << i;
  }
  // 1-10 specifically jumps (El Capitan, Frontier, Aurora documented).
  EXPECT_GT(enh[0].covered_pct - base[0].covered_pct, 30.0);
}

TEST(Interpolation, FillsExactly10And96Systems) {
  const auto& r = pipeline();
  EXPECT_EQ(r.op_interpolated.interpolated_indices.size(), 10u);
  EXPECT_EQ(r.emb_interpolated.interpolated_indices.size(), 96u);
}

TEST(Totals, HeadlineMagnitudesMatchPaperShape) {
  const auto& r = pipeline();
  // Same order of magnitude, within 25% of the paper's absolute values
  // (our substrate is a calibrated synthetic list).
  EXPECT_NEAR(r.op_total_full_mt, P::kOpTotalFullMt,
              0.25 * P::kOpTotalFullMt);
  EXPECT_NEAR(r.emb_total_full_mt, P::kEmbTotalFullMt,
              0.25 * P::kEmbTotalFullMt);
  // Embodied exceeds operational for the full list (paper: 1.88 vs 1.39).
  EXPECT_GT(r.emb_total_full_mt, r.op_total_full_mt);
}

TEST(Totals, InterpolationDeltasMatchPaperShape) {
  const auto& r = pipeline();
  const double op_pct = (r.op_total_full_mt - r.op_total_covered_mt) /
                        r.op_total_covered_mt * 100.0;
  const double emb_pct = (r.emb_total_full_mt - r.emb_total_covered_mt) /
                         r.emb_total_covered_mt * 100.0;
  // Paper: +1.74% op (10 systems), +23.18% embodied (96 systems). The
  // shape claim: op interpolation is a small correction, embodied a
  // large one.
  EXPECT_GT(op_pct, 0.5);
  EXPECT_LT(op_pct, 5.0);
  EXPECT_GT(emb_pct, 10.0);
  EXPECT_LT(emb_pct, 35.0);
  EXPECT_GT(emb_pct, 5.0 * op_pct);
}

TEST(Totals, FullSeriesConsistentWithCoveredPlusInterpolated) {
  const auto& r = pipeline();
  double interpolated_sum = 0.0;
  for (size_t i : r.op_interpolated.interpolated_indices) {
    interpolated_sum += r.op_interpolated.values[i];
  }
  EXPECT_NEAR(r.op_total_full_mt, r.op_total_covered_mt + interpolated_sum,
              1e-6);
}

TEST(NamedContrasts, LumiVsLeonardo) {
  // Paper: 4.3x operational difference driven by grid intensity.
  const auto& r = pipeline();
  const auto& lumi = r.enhanced().operational[7];   // rank 8
  const auto& leo = r.enhanced().operational[8];    // rank 9
  ASSERT_TRUE(lumi && leo);
  EXPECT_NEAR(*leo / *lumi, P::kLumiVsLeonardoOpFactor, 1.0);
}

TEST(NamedContrasts, FrontierVsElCapitanEmbodied) {
  // Paper: 2.6x embodied difference (accelerators + storage).
  const auto& r = pipeline();
  const auto& frontier = r.enhanced().embodied[1];  // rank 2
  const auto& elcap = r.enhanced().embodied[0];     // rank 1
  ASSERT_TRUE(frontier && elcap);
  EXPECT_NEAR(*frontier / *elcap, P::kFrontierVsElCapitanEmbFactor, 0.6);
}

TEST(Sensitivity, AggregateShapeMatchesPaper) {
  const auto s = sensitivity(pipeline());
  // Operational total barely moves (paper: +2.85%); embodied moves a
  // lot (paper: +78%, mostly newly covered large systems).
  EXPECT_LT(std::fabs(s.op_total_pct), 12.0);
  EXPECT_GT(s.emb_total_pct, 40.0);
  // Per-system op refinements can be large (paper: up to +/-77.5%).
  EXPECT_GT(s.op_max_abs_pct, 25.0);
  EXPECT_LT(s.op_max_abs_pct, 120.0);
}

TEST(Sensitivity, DeltasOnlyForSystemsCoveredInBothScenarios) {
  const auto s = sensitivity(pipeline());
  const auto& r = pipeline();
  EXPECT_EQ(s.operational.size(),
            static_cast<size_t>(std::min(r.baseline().coverage.operational,
                                         r.enhanced().coverage.operational)));
  EXPECT_LE(s.embodied.size(),
            static_cast<size_t>(r.baseline().coverage.embodied));
}

TEST(Projection, StartsFromMeasured2024Totals) {
  const auto& r = pipeline();
  ASSERT_FALSE(r.projection.empty());
  EXPECT_NEAR(r.projection.front().operational_kmt,
              r.op_total_full_mt / 1000.0, 1e-9);
  EXPECT_NEAR(r.projection.front().embodied_kmt,
              r.emb_total_full_mt / 1000.0, 1e-9);
}

TEST(Fig2, HistogramSumsTo500AndMemoryGapDominates) {
  const auto hist = fig2_histogram(pipeline().records);
  int total = 0;
  for (int h : hist) total += h;
  EXPECT_EQ(total, 500);
  // Table I: memory is missing for 499 systems, so at most 1 system can
  // be complete ("None" bucket).
  EXPECT_LE(hist[0], 1);
}

TEST(Equivalence, VehicleNumbersScale) {
  const auto& r = pipeline();
  const auto e = equivalences(r.op_total_full_mt);
  // Paper: 325k vehicles for 1.39M MT -> ~0.234 vehicles per MT.
  EXPECT_NEAR(e.vehicles / r.op_total_full_mt, 1.0 / 4.28, 1e-6);
  EXPECT_GT(e.vehicle_miles, 1e9);  // billions of miles
  const auto desc = describe_equivalence(r.op_total_full_mt);
  EXPECT_NE(desc.find("vehicles"), std::string::npos);
  EXPECT_NE(desc.find("homes"), std::string::npos);
}

TEST(Determinism, PipelineIsReproducible) {
  auto again = run_pipeline();
  EXPECT_DOUBLE_EQ(again.op_total_full_mt, pipeline().op_total_full_mt);
  EXPECT_DOUBLE_EQ(again.emb_total_full_mt, pipeline().emb_total_full_mt);
}


// Coverage numbers are quota-exact for any generator seed: the paper's
// 391/283/490/404 are structural properties of the dataset, not luck.
class CoverageSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverageSeedSweep, ExactForEverySeed) {
  PipelineConfig cfg;
  cfg.generator.seed = GetParam();
  const auto r = run_pipeline(cfg);
  EXPECT_EQ(r.baseline().coverage.operational, P::kOpCoveredTop500);
  EXPECT_EQ(r.baseline().coverage.embodied, P::kEmbCoveredTop500);
  EXPECT_EQ(r.enhanced().coverage.operational, P::kOpCoveredPublic);
  EXPECT_EQ(r.enhanced().coverage.embodied, P::kEmbCoveredPublic);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageSeedSweep,
                         ::testing::Values(7ull, 1234ull, 0xabcdefull));

}  // namespace
}  // namespace easyc::analysis
