// Binary serialization primitives: little-endian byte layout (the
// on-disk contract, pinned byte by byte), bit-exact double round trips,
// bounds-checked reads that reject truncation instead of trusting it,
// and the FNV-1a payload checksum.
#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace easyc::util {
namespace {

TEST(BinaryWriter, LittleEndianByteLayoutIsPinned) {
  // The snapshot format must be stable across machines: pin the exact
  // bytes, not just a round trip through the same process.
  BinaryWriter w;
  w.u32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  const std::string& b = w.bytes();
  EXPECT_EQ(static_cast<uint8_t>(b[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(b[1]), 0x03);
  EXPECT_EQ(static_cast<uint8_t>(b[2]), 0x02);
  EXPECT_EQ(static_cast<uint8_t>(b[3]), 0x01);

  BinaryWriter w64;
  w64.u64(0x1122334455667788ULL);
  EXPECT_EQ(static_cast<uint8_t>(w64.bytes()[0]), 0x88);
  EXPECT_EQ(static_cast<uint8_t>(w64.bytes()[7]), 0x11);
}

TEST(BinaryWriter, StringIsLengthPrefixedRawBytes) {
  BinaryWriter w;
  w.str("ab");
  ASSERT_EQ(w.size(), 8u + 2u);
  EXPECT_EQ(static_cast<uint8_t>(w.bytes()[0]), 2);  // u64 length, LE
  EXPECT_EQ(w.bytes().substr(8), "ab");
}

TEST(BinaryRoundTrip, AllScalarTypes) {
  BinaryWriter w;
  w.u8(0xfe)
      .u32(0xdeadbeefu)
      .u64(0xfeedfacecafef00dULL)
      .f64(3.14159)
      .boolean(true)
      .boolean(false)
      .str("hello")
      .str("");
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xfe);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0xfeedfacecafef00dULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(BinaryRoundTrip, DoublesAreBitExact) {
  // The cache's contract is bit-identity: -0.0, infinities, NaN
  // payloads, and denormals must all survive.
  const double values[] = {0.0, -0.0, std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           -123456.789};
  for (double v : values) {
    BinaryWriter w;
    w.f64(v);
    BinaryReader r(w.bytes());
    EXPECT_EQ(std::bit_cast<uint64_t>(r.f64()), std::bit_cast<uint64_t>(v));
  }
}

TEST(BinaryRoundTrip, StringsWithEmbeddedNulsSurvive) {
  const std::string s("a\0b\0", 4);
  BinaryWriter w;
  w.str(s);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.str(), s);
}

TEST(BinaryReader, TruncationThrowsInsteadOfReadingPast) {
  BinaryWriter w;
  w.u64(42);
  const std::string& b = w.bytes();
  BinaryReader short_r(std::string_view(b).substr(0, 5));
  EXPECT_THROW(short_r.u64(), CodecError);

  BinaryReader empty(std::string_view{});
  EXPECT_THROW(empty.u8(), CodecError);
  EXPECT_THROW(empty.u32(), CodecError);
  EXPECT_TRUE(empty.exhausted());
}

TEST(BinaryReader, OversizedStringLengthIsRejected) {
  // A corrupt length prefix must not be trusted: claim 2^40 bytes with
  // only 3 present.
  BinaryWriter w;
  w.u64(1ULL << 40);
  w.raw("abc");
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.str(), CodecError);
}

TEST(BinaryReader, BadBooleanByteIsRejected) {
  BinaryWriter w;
  w.u8(2);
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.boolean(), CodecError);
}

TEST(BinaryReader, RemainingAndRestTrackTheCursor) {
  BinaryWriter w;
  w.u32(7).u32(9);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_EQ(r.rest().size(), 4u);
}

TEST(Checksum64, SensitiveToEveryByteAndStable) {
  const std::string base = "the quick brown fox";
  const uint64_t sum = checksum64(base);
  EXPECT_EQ(checksum64(base), sum);  // deterministic
  for (size_t i = 0; i < base.size(); ++i) {
    std::string flipped = base;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(checksum64(flipped), sum) << "byte " << i;
  }
  EXPECT_NE(checksum64(""), checksum64(std::string(1, '\0')));
}

}  // namespace
}  // namespace easyc::util
