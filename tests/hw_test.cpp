#include <gtest/gtest.h>

#include "hw/accelerator.hpp"
#include "hw/cpu.hpp"
#include "hw/memory.hpp"
#include "hw/process.hpp"

namespace easyc::hw {
namespace {

// ---------------------------------------------------------------- process

TEST(ProcessNode, CarbonPerAreaIncreasesAtNewerNodes) {
  // EUV-era nodes burn more fab energy per area (ACT trend).
  double prev = 0.0;
  for (int nm : {65, 28, 14, 7, 5, 3}) {
    const double cpa = find_process_node(nm).carbon_per_cm2();
    EXPECT_GT(cpa, prev) << nm;
    prev = cpa;
  }
}

TEST(ProcessNode, FabIntensityScalesEnergyTerm) {
  const auto node = find_process_node(7);
  const double clean = node.carbon_per_cm2(0.0);
  const double dirty = node.carbon_per_cm2(1.0);
  EXPECT_GT(dirty, clean);
  // The zero-electricity case still carries gas + materials terms.
  EXPECT_GT(clean, 0.0);
}

TEST(ProcessNode, YieldDividesCarbon) {
  ProcessNode n = find_process_node(5);
  const double base = n.carbon_per_cm2();
  n.yield /= 2.0;
  EXPECT_NEAR(n.carbon_per_cm2(), base * 2.0, 1e-9);
}

TEST(ProcessNode, NearestLookup) {
  EXPECT_EQ(find_process_node(6).nm, 7);   // 6nm -> 7nm coefficients
  EXPECT_EQ(find_process_node(90).nm, 65); // beyond table -> oldest
  EXPECT_EQ(find_process_node(4).nm, 4);
}

// ---------------------------------------------------------------- cpu

struct CpuMatchCase {
  const char* listed;
  const char* expected_model;
};

class CpuMatch : public ::testing::TestWithParam<CpuMatchCase> {};

TEST_P(CpuMatch, ResolvesTop500Strings) {
  auto spec = find_cpu(GetParam().listed);
  ASSERT_TRUE(spec.has_value()) << GetParam().listed;
  EXPECT_EQ(spec->model, GetParam().expected_model);
}

INSTANTIATE_TEST_SUITE_P(
    Strings, CpuMatch,
    ::testing::Values(
        CpuMatchCase{"AMD EPYC 9654 96C 2.4GHz", "EPYC 9654"},
        CpuMatchCase{"AMD EPYC 7763 64C 2.45GHz", "EPYC 7763"},
        CpuMatchCase{"Xeon Platinum 8480+ 56C 2GHz", "Xeon Platinum 8480+"},
        CpuMatchCase{"Intel Xeon Platinum 8280 28C", "Xeon Platinum 8280"},
        CpuMatchCase{"A64FX 48C 2.2GHz", "A64FX"},
        CpuMatchCase{"NVIDIA Grace 72C 3.1GHz", "Grace CPU 72C"},
        CpuMatchCase{"IBM POWER9 22C 3.07GHz", "POWER9 22C"},
        CpuMatchCase{"AMD Optimized 3rd Gen EPYC 64C 2GHz",
                     "EPYC (Trento) 7A53"},
        CpuMatchCase{"Hygon Dhyana 7185 32C", "Hygon Dhyana 7185"},
        CpuMatchCase{"Xeon Phi 7250 68C 1.4GHz", "Xeon Phi 7250"}));

TEST(CpuCatalog, UnknownAndExoticStringsDoNotResolve) {
  EXPECT_FALSE(find_cpu("Sunway SW26010 260C 1.45GHz").has_value());
  EXPECT_FALSE(find_cpu("Custom Manycore DSP 512C").has_value());
  EXPECT_FALSE(find_cpu("").has_value());
  EXPECT_FALSE(find_cpu("   ").has_value());
}

TEST(CpuCatalog, SpecificEntriesPrecedeGenericFallback) {
  // "epyc 9654" must match the exact part, not the "epyc" catch-all.
  auto spec = find_cpu("amd epyc 9654");
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->cores, 96);
}

TEST(CpuCatalog, AllEntriesPhysicallySane) {
  for (const auto& c : cpu_catalog()) {
    EXPECT_GT(c.die_area_cm2, 0.5) << c.model;
    EXPECT_LT(c.die_area_cm2, 20.0) << c.model;
    EXPECT_GT(c.tdp_w, 50) << c.model;
    EXPECT_LT(c.tdp_w, 600) << c.model;
    EXPECT_GT(c.cores, 0) << c.model;
    EXPECT_FALSE(c.match_keys.empty()) << c.model;
  }
}

TEST(GenericCpu, NewerErasAreDenser) {
  const auto old_part = generic_server_cpu(2015, 16);
  const auto new_part = generic_server_cpu(2024, 16);
  EXPECT_LT(new_part.die_area_cm2, old_part.die_area_cm2);
  EXPECT_LT(new_part.tdp_w, old_part.tdp_w);
}

TEST(GenericCpu, AreaAndTdpCapped) {
  const auto monster = generic_server_cpu(2015, 512);
  EXPECT_LE(monster.die_area_cm2, 14.0);
  EXPECT_LE(monster.tdp_w, 400.0);
}

TEST(MainstreamDetection, ClassifiesFamilies) {
  EXPECT_TRUE(is_mainstream_server_cpu("AMD EPYC 9654"));
  EXPECT_TRUE(is_mainstream_server_cpu("Xeon Gold 6148"));
  EXPECT_TRUE(is_mainstream_server_cpu("IBM POWER10"));
  EXPECT_TRUE(is_mainstream_server_cpu("Fujitsu A64FX"));
  EXPECT_FALSE(is_mainstream_server_cpu("Sunway SW26010 260C"));
  EXPECT_FALSE(is_mainstream_server_cpu("Custom Manycore DSP 512C"));
}

// ---------------------------------------------------------------- accel

struct AccelMatchCase {
  const char* listed;
  const char* expected_model;
};

class AccelMatch : public ::testing::TestWithParam<AccelMatchCase> {};

TEST_P(AccelMatch, ResolvesTop500Strings) {
  auto spec = find_accelerator(GetParam().listed);
  ASSERT_TRUE(spec.has_value()) << GetParam().listed;
  EXPECT_EQ(spec->model, GetParam().expected_model);
}

INSTANTIATE_TEST_SUITE_P(
    Strings, AccelMatch,
    ::testing::Values(
        AccelMatchCase{"NVIDIA H100 SXM5 80GB", "H100 SXM"},
        AccelMatchCase{"NVIDIA A100 SXM4 80 GB", "A100 80GB"},
        AccelMatchCase{"NVIDIA A100", "A100 40GB"},
        AccelMatchCase{"NVIDIA GH200 Superchip", "GH200 (H100 die)"},
        AccelMatchCase{"AMD Instinct MI300A", "MI300A"},
        AccelMatchCase{"AMD Instinct MI250X", "MI250X"},
        AccelMatchCase{"Intel Data Center GPU Max 1550",
                       "Data Center GPU Max 1550"},
        AccelMatchCase{"NVIDIA Volta GV100", "V100"},
        AccelMatchCase{"Matrix-3000", "Matrix-3000"},
        AccelMatchCase{"PEZY-SC3", "PEZY-SC3"}));

TEST(AccelCatalog, VagueOrNoneStringsDoNotResolve) {
  EXPECT_FALSE(find_accelerator("NVIDIA GPU").has_value());
  EXPECT_FALSE(find_accelerator("None").has_value());
  EXPECT_FALSE(find_accelerator("N/A").has_value());
  EXPECT_FALSE(find_accelerator("").has_value());
}

TEST(AccelCatalog, EntriesPhysicallySane) {
  for (const auto& a : accelerator_catalog()) {
    EXPECT_GT(a.die_area_cm2, 3.0) << a.model;
    EXPECT_LT(a.die_area_cm2, 20.0) << a.model;
    EXPECT_GT(a.tdp_w, 50) << a.model;  // T4 is a 70 W inference part
    EXPECT_LE(a.tdp_w, 1500) << a.model;
  }
}

TEST(MainstreamProxy, TracksEra) {
  EXPECT_EQ(mainstream_gpu_proxy(2024).model, "proxy-H100");
  EXPECT_EQ(mainstream_gpu_proxy(2021).model, "proxy-A100");
  EXPECT_EQ(mainstream_gpu_proxy(2018).model, "proxy-V100");
}

TEST(MainstreamProxy, SmallerThanBespokeHpcParts) {
  // The paper: proxying novel accelerators with mainstream GPUs
  // systematically underestimates silicon.
  const auto proxy = mainstream_gpu_proxy(2023);
  const auto mi300a = *find_accelerator("AMD Instinct MI300A");
  const auto max1550 = *find_accelerator("Intel GPU Max 1550");
  EXPECT_LT(proxy.die_area_cm2, mi300a.die_area_cm2);
  EXPECT_LT(proxy.die_area_cm2, max1550.die_area_cm2);
}

// ---------------------------------------------------------------- memory

TEST(Memory, ParseTypes) {
  EXPECT_EQ(parse_memory_type("DDR4"), MemoryType::kDdr4);
  EXPECT_EQ(parse_memory_type("ddr5 "), MemoryType::kDdr5);
  EXPECT_EQ(parse_memory_type("HBM2e"), MemoryType::kHbm2e);
  EXPECT_EQ(parse_memory_type("HBM3E"), MemoryType::kHbm3);
  EXPECT_EQ(parse_memory_type("optane"), MemoryType::kUnknown);
}

TEST(Memory, NameRoundTrip) {
  for (auto t : {MemoryType::kDdr3, MemoryType::kDdr4, MemoryType::kDdr5,
                 MemoryType::kHbm2, MemoryType::kHbm2e, MemoryType::kHbm3}) {
    EXPECT_EQ(parse_memory_type(memory_type_name(t)), t);
  }
}

TEST(Memory, HbmCarriesStackingPenalty) {
  EXPECT_GT(memory_spec(MemoryType::kHbm3).embodied_kg_per_gb,
            memory_spec(MemoryType::kDdr5).embodied_kg_per_gb);
  EXPECT_GT(memory_spec(MemoryType::kHbm2).embodied_kg_per_gb,
            memory_spec(MemoryType::kHbm3).embodied_kg_per_gb);
}

TEST(Memory, NewerDdrGenerationsImprove) {
  EXPECT_LT(memory_spec(MemoryType::kDdr5).embodied_kg_per_gb,
            memory_spec(MemoryType::kDdr4).embodied_kg_per_gb);
  EXPECT_LT(memory_spec(MemoryType::kDdr4).embodied_kg_per_gb,
            memory_spec(MemoryType::kDdr3).embodied_kg_per_gb);
}

TEST(Storage, FlashFarHeavierThanDiskPerTb) {
  const double ssd = storage_spec(StorageClass::kNvmeSsd).embodied_kg_per_tb;
  const double hdd = storage_spec(StorageClass::kHdd).embodied_kg_per_tb;
  EXPECT_GT(ssd / hdd, 5.0);
}

}  // namespace
}  // namespace easyc::hw
