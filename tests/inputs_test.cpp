#include "easyc/inputs.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace easyc::model {
namespace {

Inputs minimal() {
  Inputs in;
  in.name = "testsys";
  in.country = "Germany";
  in.rmax_tflops = 5000;
  in.rpeak_tflops = 7000;
  in.total_cores = 100000;
  in.processor = "AMD EPYC 7763 64C 2.45GHz";
  return in;
}

TEST(Metrics, SevenKeyPlusTwoOptional) {
  // The paper's central claim: 7 key metrics + 2 optional = 9 tracked.
  EXPECT_EQ(all_metrics().size(), 9u);
  int optional = 0;
  for (auto m : all_metrics()) {
    if (metric_is_optional(m)) ++optional;
  }
  EXPECT_EQ(optional, 2);
}

TEST(Metrics, NamesMatchPaperTable1Rows) {
  EXPECT_EQ(metric_name(Metric::kNumComputeNodes), "# of Compute Nodes");
  EXPECT_EQ(metric_name(Metric::kAnnualPowerConsumed),
            "Annual Power Consumed (opt.)");
}

TEST(MissingMetrics, AllMissingOnEmptyInputs) {
  Inputs in = minimal();
  EXPECT_EQ(in.num_missing(true), 9);
  EXPECT_EQ(in.num_missing(false), 7);
}

TEST(MissingMetrics, FillingFieldsShrinksList) {
  Inputs in = minimal();
  in.operation_year = 2022;
  in.num_nodes = 100;
  EXPECT_EQ(in.num_missing(true), 7);
  auto missing = in.missing_metrics(true);
  for (auto m : missing) {
    EXPECT_NE(m, Metric::kOperationYear);
    EXPECT_NE(m, Metric::kNumComputeNodes);
  }
}

TEST(Validation, AcceptsReasonableInputs) {
  Inputs in = minimal();
  in.operation_year = 2024;
  in.num_nodes = 1000;
  in.num_gpus = 4000;
  in.num_cpus = 2000;
  in.memory_gb = 512000;
  in.ssd_tb = 10000;
  in.utilization = 0.8;
  in.annual_energy_kwh = 1e7;
  EXPECT_NO_THROW(in.validate());
}

struct InvalidCase {
  const char* label;
  void (*mutate)(Inputs&);
};

class ValidationRejects : public ::testing::TestWithParam<InvalidCase> {};

TEST_P(ValidationRejects, Throws) {
  Inputs in = minimal();
  GetParam().mutate(in);
  EXPECT_THROW(in.validate(), util::ValidationError) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ValidationRejects,
    ::testing::Values(
        InvalidCase{"negative rmax", [](Inputs& i) { i.rmax_tflops = -1; }},
        InvalidCase{"zero power", [](Inputs& i) { i.power_kw = 0.0; }},
        InvalidCase{"negative cores", [](Inputs& i) { i.total_cores = -5; }},
        InvalidCase{"year before top500",
                    [](Inputs& i) { i.operation_year = 1980; }},
        InvalidCase{"year absurd future",
                    [](Inputs& i) { i.operation_year = 2100; }},
        InvalidCase{"zero nodes", [](Inputs& i) { i.num_nodes = 0; }},
        InvalidCase{"negative gpus", [](Inputs& i) { i.num_gpus = -1; }},
        InvalidCase{"zero memory", [](Inputs& i) { i.memory_gb = 0.0; }},
        InvalidCase{"zero ssd", [](Inputs& i) { i.ssd_tb = 0.0; }},
        InvalidCase{"util zero", [](Inputs& i) { i.utilization = 0.0; }},
        InvalidCase{"util above one",
                    [](Inputs& i) { i.utilization = 1.2; }},
        InvalidCase{"zero energy",
                    [](Inputs& i) { i.annual_energy_kwh = 0.0; }}),
    [](const auto& param_info) {
      std::string n = param_info.param.label;
      for (auto& c : n) {
        if (c == ' ') c = '_';
      }
      return n;
    });

TEST(HasAccelerator, RecognizesNoneMarkers) {
  Inputs in = minimal();
  EXPECT_FALSE(in.has_accelerator());
  in.accelerator = "None";
  EXPECT_FALSE(in.has_accelerator());
  in.accelerator = " n/a ";
  EXPECT_FALSE(in.has_accelerator());
  in.accelerator = "NVIDIA H100";
  EXPECT_TRUE(in.has_accelerator());
}

}  // namespace
}  // namespace easyc::model
