// The multi-edition assessment engine: fingerprint stability and
// sensitivity, warm-vs-cold bit-identity of the memo cache, cache
// invalidation on record/spec changes, 1-vs-N-thread determinism of
// the sharded run, and the >80% hit-rate acceptance bar on an
// 8-edition history.
#include "analysis/assessment_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/pipeline.hpp"
#include "analysis/turnover.hpp"
#include "parallel/thread_pool.hpp"
#include "top500/generator.hpp"
#include "top500/history.hpp"
#include "util/stats.hpp"

namespace easyc::analysis {
namespace {

namespace sc = scenarios;

const std::vector<top500::ListEdition>& history8() {
  static const auto kHistory = [] {
    top500::HistoryConfig cfg;
    cfg.editions = 8;
    return top500::generate_history(cfg);
  }();
  return kHistory;
}

ScenarioSet enhanced_only() {
  ScenarioSet set;
  set.add(sc::enhanced());
  return set;
}

void expect_identical(const ScenarioResults& a, const ScenarioResults& b) {
  EXPECT_EQ(a.spec.name, b.spec.name);
  EXPECT_EQ(a.coverage.operational, b.coverage.operational);
  EXPECT_EQ(a.coverage.embodied, b.coverage.embodied);
  ASSERT_EQ(a.operational.size(), b.operational.size());
  for (size_t i = 0; i < a.operational.size(); ++i) {
    ASSERT_EQ(a.operational[i].has_value(), b.operational[i].has_value());
    if (a.operational[i]) {
      EXPECT_DOUBLE_EQ(*a.operational[i], *b.operational[i]);
    }
    ASSERT_EQ(a.embodied[i].has_value(), b.embodied[i].has_value());
    if (a.embodied[i]) {
      EXPECT_DOUBLE_EQ(*a.embodied[i], *b.embodied[i]);
    }
  }
}

void expect_identical(const std::vector<EditionAssessment>& a,
                      const std::vector<EditionAssessment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a[e].label, b[e].label);
    EXPECT_DOUBLE_EQ(a[e].perf_pflops, b[e].perf_pflops);
    ASSERT_EQ(a[e].scenarios.size(), b[e].scenarios.size());
    for (size_t s = 0; s < a[e].scenarios.size(); ++s) {
      expect_identical(a[e].scenarios[s], b[e].scenarios[s]);
    }
  }
}

// --- fingerprints ---------------------------------------------------

TEST(RecordFingerprint, IgnoresRankOnly) {
  const auto records = top500::generate_records();
  top500::SystemRecord r = records[7];
  const uint64_t fp = r.content_fingerprint();

  top500::SystemRecord reranked = r;
  reranked.rank = 499;  // survivors are re-ranked each edition
  EXPECT_EQ(reranked.content_fingerprint(), fp);

  top500::SystemRecord repowered = r;
  repowered.truth.power_kw += 1.0;
  EXPECT_NE(repowered.content_fingerprint(), fp);

  top500::SystemRecord renamed = r;
  renamed.name += "-x";
  EXPECT_NE(renamed.content_fingerprint(), fp);

  top500::SystemRecord redisclosed = r;
  redisclosed.with_public.power = !redisclosed.with_public.power;
  EXPECT_NE(redisclosed.content_fingerprint(), fp);

  top500::SystemRecord reidentified = r;
  reidentified.accelerator_public = "NVIDIA H200";
  EXPECT_NE(reidentified.content_fingerprint(), fp);
}

TEST(RecordFingerprint, StableAcrossCopies) {
  const auto records = top500::generate_records();
  for (size_t i = 0; i < 10; ++i) {
    const top500::SystemRecord copy = records[i];
    EXPECT_EQ(copy.content_fingerprint(), records[i].content_fingerprint());
  }
}

TEST(SpecFingerprint, TracksAssessmentIdentityNotPresentation) {
  const uint64_t fp = sc::enhanced().fingerprint();
  EXPECT_EQ(sc::enhanced().fingerprint(), fp);

  // Presentation fields and post-assessment amortization do not change
  // per-record assessments, so they are excluded from the key.
  ScenarioSpec renamed = sc::enhanced();
  renamed.name = "whatif/alias";
  renamed.description = "same assessments under another name";
  renamed.service_years = 8.0;
  EXPECT_EQ(renamed.fingerprint(), fp);

  // Every assessment-relevant knob must invalidate.
  ScenarioSpec vis = sc::enhanced();
  vis.visibility = top500::DataVisibility::kFullKnowledge;
  EXPECT_NE(vis.fingerprint(), fp);
  ScenarioSpec pol = sc::enhanced();
  pol.accelerator_policy = model::AcceleratorPolicy::kStrict;
  EXPECT_NE(pol.fingerprint(), fp);
  ScenarioSpec aci = sc::enhanced();
  aci.aci_override_g_kwh = 25.0;
  EXPECT_NE(aci.fingerprint(), fp);
  ScenarioSpec pue = sc::enhanced();
  pue.pue_override = 1.1;
  EXPECT_NE(pue.fingerprint(), fp);
  ScenarioSpec fab = sc::enhanced();
  fab.fab_aci_kg_kwh = 0.2;
  EXPECT_NE(fab.fingerprint(), fp);
  ScenarioSpec util_prior = sc::enhanced();
  util_prior.default_utilization = 0.5;
  EXPECT_NE(util_prior.fingerprint(), fp);

  // A present-but-zero override differs from an absent one.
  ScenarioSpec zero_aci = sc::enhanced();
  zero_aci.aci_override_g_kwh = 0.0;
  EXPECT_NE(zero_aci.fingerprint(), fp);

  EXPECT_NE(sc::baseline().fingerprint(), sc::enhanced().fingerprint());
}

// --- cache correctness ----------------------------------------------

TEST(AssessmentEngine, WarmAndColdRunsAreBitIdentical) {
  par::ThreadPool one(1);
  AssessmentEngine engine({.pool = &one});
  const auto cold = engine.run(history8(), enhanced_only());
  const auto after_cold = engine.cache_stats();
  const auto warm = engine.run(history8(), enhanced_only());
  const auto warm_delta = engine.cache_stats().since(after_cold);

  expect_identical(cold, warm);
  // The warm run is pure lookups: every cell hits.
  EXPECT_EQ(warm_delta.misses, 0u);
  EXPECT_EQ(warm_delta.hits, 8u * 500u);
}

TEST(AssessmentEngine, CacheMatchesNoCacheResults) {
  par::ThreadPool one(1);
  AssessmentEngine cached({.pool = &one});
  AssessmentEngine uncached({.pool = &one, .cache_enabled = false});
  expect_identical(cached.run(history8(), enhanced_only()),
                   uncached.run(history8(), enhanced_only()));
  EXPECT_EQ(uncached.cache_stats().lookups(), 0u);
}

TEST(AssessmentEngine, SurvivorsAssessedExactlyOnceAcrossHistory) {
  par::ThreadPool one(1);
  AssessmentEngine engine({.pool = &one});
  engine.run(history8(), enhanced_only());
  const auto stats = engine.cache_stats();

  // Unique content across the history: the 500 systems of edition 0
  // plus the entrants of each later cycle. Everything else must be a
  // memo hit.
  uint64_t unique = 500;
  for (size_t e = 1; e < history8().size(); ++e) {
    unique += static_cast<uint64_t>(history8()[e].num_new);
  }
  EXPECT_EQ(stats.misses, unique);
  EXPECT_EQ(stats.hits, 8u * 500u - unique);
  EXPECT_EQ(stats.entries, unique);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(AssessmentEngine, AcceptanceHitRateOver80PercentOn8Editions) {
  // The acceptance bar: warm-cache multi-edition turnover reports >80%
  // hits on an 8-edition history. The cold pass alone lands at ~79%
  // (836 unique systems / 4000 cells); with the cache warm the rate is
  // 100%, and the cumulative engine rate clears 80% comfortably.
  par::ThreadPool one(1);
  AssessmentEngine engine({.pool = &one});
  TurnoverOptions opts;
  opts.engine = &engine;

  const auto cold = analyze_turnover(history8(), opts);
  EXPECT_GT(cold.cache.hit_rate(), 0.75);
  const auto warm = analyze_turnover(history8(), opts);
  EXPECT_DOUBLE_EQ(warm.cache.hit_rate(), 1.0);
  EXPECT_GT(engine.cache_stats().hit_rate(), 0.80);
}

TEST(AssessmentEngine, RecordChangeInvalidatesOnlyThatCell) {
  par::ThreadPool one(1);
  auto records = top500::generate_records();
  records.resize(40);
  AssessmentEngine engine({.pool = &one});
  engine.assess(records, enhanced_only());
  const auto before = engine.cache_stats();

  records[3].truth.power_kw *= 1.5;  // content change -> new fingerprint
  const auto redone = engine.assess(records, enhanced_only());
  const auto delta = engine.cache_stats().since(before);
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(delta.hits, 39u);

  // And the recomputed cell reflects the change (more power -> more
  // operational carbon) rather than serving the stale entry.
  AssessmentEngine fresh({.pool = &one, .cache_enabled = false});
  expect_identical(redone.scenarios[0],
                   fresh.assess(records, enhanced_only()).scenarios[0]);
}

TEST(AssessmentEngine, SpecOverrideChangeInvalidatesAllCells) {
  par::ThreadPool one(1);
  auto records = top500::generate_records();
  records.resize(40);
  AssessmentEngine engine({.pool = &one});
  engine.assess(records, enhanced_only());
  const auto before = engine.cache_stats();

  ScenarioSpec tweaked = sc::enhanced();
  tweaked.name = "whatif/tweaked";
  tweaked.pue_override = 1.05;
  ScenarioSet set;
  set.add(tweaked);
  engine.assess(records, set);
  const auto delta = engine.cache_stats().since(before);
  EXPECT_EQ(delta.misses, 40u);
  EXPECT_EQ(delta.hits, 0u);
}

TEST(AssessmentEngine, CapacityBoundEvictsButStaysCorrect) {
  par::ThreadPool one(1);
  AssessmentEngine bounded(
      {.pool = &one, .cache_capacity = 100, .cache_shards = 4});
  AssessmentEngine unbounded({.pool = &one});
  expect_identical(bounded.run(history8(), enhanced_only()),
                   unbounded.run(history8(), enhanced_only()));
  const auto stats = bounded.cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 100u);
}

TEST(AssessmentEngine, FingerprintAliasScenariosShareOneAssessment) {
  // enhanced and whatif/extended-lifetime differ only in presentation
  // and amortization, so their fingerprints coincide; the alias runs
  // after its primary and is served from the memo — 60 records cost 60
  // computes + 60 hits, on any pool size.
  auto records = top500::generate_records();
  records.resize(60);
  ScenarioSet set;
  set.add(sc::enhanced()).add(sc::extended_lifetime());

  par::ThreadPool one(1);
  par::ThreadPool wide(4);
  AssessmentEngine a({.pool = &one});
  AssessmentEngine b({.pool = &wide});
  const auto ra = a.assess(records, set);
  const auto rb = b.assess(records, set);
  for (const AssessmentEngine* engine : {&a, &b}) {
    EXPECT_EQ(engine->cache_stats().misses, 60u);
    EXPECT_EQ(engine->cache_stats().hits, 60u);
    EXPECT_EQ(engine->cache_stats().entries, 60u);
  }
  // Identical per-record carbon under both names; only the annualized
  // view (spec.service_years) differs.
  ASSERT_EQ(ra.scenarios.size(), 2u);
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(ra.scenarios[0].operational[i], ra.scenarios[1].operational[i]);
    EXPECT_EQ(ra.scenarios[0].embodied[i], ra.scenarios[1].embodied[i]);
    EXPECT_EQ(ra.scenarios[0].operational[i], rb.scenarios[0].operational[i]);
  }
}

// --- sharded determinism --------------------------------------------

TEST(AssessmentEngine, OneVsManyThreadsBitIdentical) {
  par::ThreadPool one(1);
  par::ThreadPool wide(4);
  AssessmentEngine a({.pool = &one});
  AssessmentEngine b({.pool = &wide});
  expect_identical(a.run(history8(), enhanced_only()),
                   b.run(history8(), enhanced_only()));
  // The per-edition wavefront keeps even the hit/miss split identical.
  EXPECT_EQ(a.cache_stats().misses, b.cache_stats().misses);
}

// --- turnover + projection on the engine ----------------------------

TEST(Turnover, EngineMatchesSerialReferenceBitIdentically) {
  TurnoverOptions opts;  // private engine, cache on
  const auto report = analyze_turnover(history8(), opts);
  ASSERT_EQ(report.editions.size(), history8().size());

  for (size_t e = 0; e < history8().size(); ++e) {
    // The seed's serial loop, inlined: off-engine scenario assessment
    // plus interpolation to the full list.
    const auto assessments =
        assess_scenario(history8()[e].records, sc::enhanced());
    const auto op = interpolate_gaps(operational_series(assessments));
    const auto emb = interpolate_gaps(embodied_series(assessments));
    EXPECT_DOUBLE_EQ(report.editions[e].op_total_mt, util::sum(op.values))
        << history8()[e].label;
    EXPECT_DOUBLE_EQ(report.editions[e].emb_total_mt, util::sum(emb.values))
        << history8()[e].label;
  }
  EXPECT_GT(report.cache.hits, 0u);
}

TEST(Turnover, ProjectionFromMeasuredHistory) {
  const auto report = analyze_turnover(history8());
  const auto series = project_from_turnover(report);
  ASSERT_FALSE(series.empty());
  EXPECT_DOUBLE_EQ(series.front().operational_kmt,
                   report.editions.front().op_total_mt / 1000.0);
  EXPECT_DOUBLE_EQ(series.front().perf_pflops,
                   report.editions.front().perf_pflops);
  // The measured growth compounds across the horizon.
  const double t =
      static_cast<double>(series.back().year - series.front().year);
  EXPECT_NEAR(series.back().operational_kmt,
              series.front().operational_kmt *
                  std::pow(1.0 + report.op_growth_annualized, t),
              1e-9 * series.back().operational_kmt);
}

TEST(Pipeline, SharedEngineServesRepeatRunsFromCache) {
  par::ThreadPool one(1);
  AssessmentEngine engine({.pool = &one});
  PipelineConfig cfg;
  cfg.engine = &engine;
  const auto a = run_pipeline(cfg);
  const auto after_first = engine.cache_stats();
  const auto b = run_pipeline(cfg);
  const auto delta = engine.cache_stats().since(after_first);

  EXPECT_EQ(delta.misses, 0u);  // unchanged config: pure lookups
  EXPECT_DOUBLE_EQ(a.op_total_full_mt, b.op_total_full_mt);
  EXPECT_DOUBLE_EQ(a.emb_total_full_mt, b.emb_total_full_mt);
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (size_t s = 0; s < a.scenarios.size(); ++s) {
    expect_identical(a.scenarios[s], b.scenarios[s]);
  }
}

}  // namespace
}  // namespace easyc::analysis
