#include "top500/record.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace easyc::top500 {
namespace {

SystemRecord sample_record() {
  SystemRecord r;
  r.rank = 42;
  r.name = "TestSys";
  r.site = "Test Lab";
  r.country = "United States";
  r.vendor = "HPE";
  r.segment = "Research";
  r.year = 2023;
  r.rmax_tflops = 30000;
  r.rpeak_tflops = 42000;
  r.total_cores = 500000;
  r.processor = "AMD EPYC 9654 96C 2.4GHz";
  r.processor_public = "";
  r.accelerator = "NVIDIA GPU";
  r.accelerator_public = "NVIDIA H100";
  r.truth.power_kw = 1500;
  r.truth.nodes = 700;
  r.truth.gpus = 2800;
  r.truth.cpus = 1400;
  r.truth.memory_gb = 537600;
  r.truth.memory_type = "DDR5";
  r.truth.ssd_tb = 9000;
  r.truth.utilization = 0.77;
  r.truth.annual_energy_kwh = 9.1e6;
  r.truth.region = "Texas";
  r.item_reported.fill(true);
  r.item_reported[14] = false;  // memory
  return r;
}

TEST(ToInputs, Top500ScenarioHidesUndisclosedFields) {
  SystemRecord r = sample_record();
  r.top500 = Disclosure{};  // nothing disclosed
  auto in = to_inputs(r, DataVisibility::kTop500Org);
  EXPECT_FALSE(in.power_kw.has_value());
  EXPECT_FALSE(in.num_nodes.has_value());
  EXPECT_FALSE(in.num_gpus.has_value());
  EXPECT_FALSE(in.memory_gb.has_value());
  EXPECT_FALSE(in.ssd_tb.has_value());
  EXPECT_FALSE(in.annual_energy_kwh.has_value());
  EXPECT_TRUE(in.region.empty());
  // Always-available context.
  EXPECT_EQ(in.name, "TestSys");
  EXPECT_EQ(*in.operation_year, 2023);
  EXPECT_EQ(*in.total_cores, 500000);
  EXPECT_EQ(*in.num_cpus, 1400);  // Table I: # CPUs never missing
  EXPECT_EQ(in.accelerator, "NVIDIA GPU");  // listed, not refined
}

TEST(ToInputs, DisclosureFlagsRevealFields) {
  SystemRecord r = sample_record();
  r.top500.power = true;
  r.top500.nodes = true;
  r.top500.gpus = true;
  auto in = to_inputs(r, DataVisibility::kTop500Org);
  EXPECT_DOUBLE_EQ(*in.power_kw, 1500);
  EXPECT_EQ(*in.num_nodes, 700);
  EXPECT_EQ(*in.num_gpus, 2800);
}

TEST(ToInputs, PublicScenarioAppliesRefinements) {
  SystemRecord r = sample_record();
  r.with_public.accelerator_identity = true;
  r.with_public.region = true;
  auto in = to_inputs(r, DataVisibility::kTop500PlusPublic);
  EXPECT_EQ(in.accelerator, "NVIDIA H100");  // refined identity
  EXPECT_EQ(in.region, "Texas");
  // Refinements never leak into the baseline scenario.
  auto base = to_inputs(r, DataVisibility::kTop500Org);
  EXPECT_EQ(base.accelerator, "NVIDIA GPU");
  EXPECT_TRUE(base.region.empty());
}

TEST(ToInputs, FullKnowledgeUsesEverything) {
  SystemRecord r = sample_record();  // masks all false
  auto in = to_inputs(r, DataVisibility::kFullKnowledge);
  EXPECT_DOUBLE_EQ(*in.power_kw, 1500);
  EXPECT_EQ(*in.num_nodes, 700);
  EXPECT_DOUBLE_EQ(*in.memory_gb, 537600);
  EXPECT_EQ(*in.memory_type, "DDR5");
  EXPECT_DOUBLE_EQ(*in.utilization, 0.77);
  EXPECT_DOUBLE_EQ(*in.annual_energy_kwh, 9.1e6);
  EXPECT_EQ(in.accelerator, "NVIDIA H100");
}

TEST(ToInputs, CpuOnlySystemNeverGetsGpuCount) {
  SystemRecord r = sample_record();
  r.accelerator = "";
  r.accelerator_public = "";
  r.truth.gpus = 0;
  r.top500.gpus = true;  // bookkeeping flag ("known to be none")
  auto in = to_inputs(r, DataVisibility::kTop500Org);
  EXPECT_FALSE(in.num_gpus.has_value());
  EXPECT_FALSE(in.has_accelerator());
}

TEST(ItemBookkeeping, CountsMissing) {
  SystemRecord r = sample_record();
  EXPECT_EQ(r.num_items_missing(), 1);
  r.item_reported[11] = false;
  r.item_reported[12] = false;
  EXPECT_EQ(r.num_items_missing(), 3);
}

TEST(ItemNames, NineteenItems) {
  EXPECT_EQ(top500_data_items().size(),
            static_cast<size_t>(kNumTop500DataItems));
  EXPECT_EQ(top500_data_items()[14], "Memory");
  EXPECT_EQ(top500_data_items()[12], "HPL Power");
}

TEST(CsvRoundTrip, PreservesEveryField) {
  SystemRecord r = sample_record();
  r.top500.power = true;
  r.with_public = r.top500;
  r.with_public.nodes = true;
  r.with_public.region = true;

  auto table = to_csv({r});
  auto back = from_csv(table);
  ASSERT_EQ(back.size(), 1u);
  const auto& b = back[0];
  EXPECT_EQ(b.rank, r.rank);
  EXPECT_EQ(b.name, r.name);
  EXPECT_EQ(b.country, r.country);
  EXPECT_EQ(b.segment, r.segment);
  EXPECT_EQ(b.year, r.year);
  EXPECT_DOUBLE_EQ(b.rmax_tflops, r.rmax_tflops);
  EXPECT_EQ(b.total_cores, r.total_cores);
  EXPECT_EQ(b.processor, r.processor);
  EXPECT_EQ(b.accelerator_public, r.accelerator_public);
  EXPECT_DOUBLE_EQ(b.truth.power_kw, r.truth.power_kw);
  EXPECT_EQ(b.truth.nodes, r.truth.nodes);
  EXPECT_EQ(b.truth.memory_type, r.truth.memory_type);
  EXPECT_DOUBLE_EQ(b.truth.utilization, r.truth.utilization);
  EXPECT_EQ(b.truth.region, r.truth.region);
  EXPECT_EQ(b.top500.power, true);
  EXPECT_EQ(b.top500.nodes, false);
  EXPECT_EQ(b.with_public.nodes, true);
  EXPECT_EQ(b.with_public.region, true);
  EXPECT_EQ(b.item_reported, r.item_reported);
}

TEST(CsvRoundTrip, BadMaskRejected) {
  auto table = to_csv({sample_record()});
  // Corrupt the disclosure mask length via a hand-built table.
  util::CsvTable bad(table.header());
  auto row = table.row(0);
  row[24] = "101";  // mask_top500 must be 11 bits
  bad.add_row(row);
  EXPECT_THROW(from_csv(bad), util::ParseError);
}

TEST(VisibilityNames, Stable) {
  EXPECT_EQ(visibility_name(DataVisibility::kTop500Org), "Top500.org");
  EXPECT_EQ(visibility_name(DataVisibility::kTop500PlusPublic),
            "Top500.org + public info");
  EXPECT_EQ(visibility_name(DataVisibility::kFullKnowledge),
            "full knowledge");
}

TEST(VisibilityNames, ScenarioAliasStillCompiles) {
  // Pre-engine spelling; kept as a compatibility shim.
  Scenario s = Scenario::kTop500Org;
  EXPECT_EQ(scenario_name(s), "Top500.org");
}

TEST(DisclosureFor, SelectsMaskByVisibility) {
  SystemRecord r = sample_record();
  r.top500.power = true;
  r.with_public.power = true;
  r.with_public.nodes = true;
  EXPECT_TRUE(disclosure_for(r, DataVisibility::kTop500Org).power);
  EXPECT_FALSE(disclosure_for(r, DataVisibility::kTop500Org).nodes);
  EXPECT_TRUE(disclosure_for(r, DataVisibility::kTop500PlusPublic).nodes);
  // Full knowledge discloses everything.
  const auto& full = disclosure_for(r, DataVisibility::kFullKnowledge);
  EXPECT_TRUE(full.memory && full.ssd && full.accelerator_identity);
}

}  // namespace
}  // namespace easyc::top500
