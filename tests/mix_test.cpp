#include "grid/mix.hpp"

#include <gtest/gtest.h>

#include "grid/aci.hpp"

namespace easyc::grid {
namespace {

TEST(EnergyMix, PureSourcesMatchIpccValues) {
  EnergyMix coal;
  coal.coal = 1.0;
  EXPECT_DOUBLE_EQ(coal.aci_g_kwh(), 820.0);
  EnergyMix wind;
  wind.wind = 1.0;
  EXPECT_DOUBLE_EQ(wind.aci_g_kwh(), 11.0);
}

TEST(EnergyMix, UnnormalizedSharesAbort) {
  EnergyMix half;
  half.coal = 0.5;
  EXPECT_DEATH(half.aci_g_kwh(), "sum to 1");
}

TEST(EnergyMix, NationalMixesAreNormalized) {
  for (const auto& country : mix_countries()) {
    const auto mix = national_mix(country);
    ASSERT_TRUE(mix) << country;
    EXPECT_NEAR(mix->total(), 1.0, 0.01) << country;
  }
  EXPECT_FALSE(national_mix("atlantis").has_value());
}

TEST(EnergyMix, LookupIsCaseInsensitive) {
  ASSERT_TRUE(national_mix("FRANCE"));
  EXPECT_DOUBLE_EQ(national_mix("FRANCE")->aci_g_kwh(),
                   national_mix("france")->aci_g_kwh());
}

// Property: the bottom-up mix intensity approximates the top-down ACI
// table (both describe the same 2024 grids). Lifecycle-vs-operational
// accounting and import/export flows justify a loose tolerance.
class MixVsTable : public ::testing::TestWithParam<const char*> {};

TEST_P(MixVsTable, Approximates) {
  const char* country = GetParam();
  const auto mix = national_mix(country);
  const auto table = AciDatabase::builtin().country_aci(country);
  ASSERT_TRUE(mix && table);
  const double computed = mix->aci_g_kwh();
  EXPECT_GT(computed, *table * 0.55) << country;
  EXPECT_LT(computed, *table * 1.8) << country;
}

INSTANTIATE_TEST_SUITE_P(Countries, MixVsTable,
                         ::testing::Values("United States", "China",
                                           "Germany", "France", "Japan",
                                           "Norway", "India", "Australia",
                                           "Canada", "Brazil"));

TEST(EnergyMix, OrderingMatchesIntuition) {
  EXPECT_GT(national_mix("india")->aci_g_kwh(),
            national_mix("germany")->aci_g_kwh());
  EXPECT_GT(national_mix("germany")->aci_g_kwh(),
            national_mix("france")->aci_g_kwh());
  EXPECT_GT(national_mix("france")->aci_g_kwh(),
            national_mix("norway")->aci_g_kwh());
}

TEST(EnergyMix, AddingSolarPpaCleansTheMix) {
  const auto base = *national_mix("united states");
  const auto with_ppa = base.with_added("solar", 0.30);
  EXPECT_NEAR(with_ppa.total(), 1.0, 1e-9);
  EXPECT_LT(with_ppa.aci_g_kwh(), base.aci_g_kwh());
  // Displacement is proportional: 70% of the old mix + 30% solar.
  EXPECT_NEAR(with_ppa.aci_g_kwh(),
              0.7 * base.aci_g_kwh() + 0.3 * SourceIntensities::kSolar,
              1e-9);
}

TEST(EnergyMix, AddingCoalDirtiesTheMix) {
  const auto base = *national_mix("france");
  EXPECT_GT(base.with_added("coal", 0.2).aci_g_kwh(), base.aci_g_kwh());
}

TEST(EnergyMix, WithAddedValidates) {
  const auto base = *national_mix("germany");
  EXPECT_DEATH(base.with_added("fusion", 0.2), "unknown generation source");
  EXPECT_DEATH(base.with_added("solar", 1.5), "share");
}

}  // namespace
}  // namespace easyc::grid
