// Fixture for lint_fixture_test.py — a diagnostic pragma with no
// allow(pragma-suppression) rationale.
// Expected findings (rule: line):
//   pragma-suppression: 5
#pragma GCC diagnostic ignored "-Wshadow"
