// Fixture for lint_fixture_test.py — planted nondeterminism sources.
// Expected findings (rule: line):
//   raw-random: 9
//   raw-random: 10
//   locale-dependent: 11
#include <cstdlib>

int planted_jitter() {
  int seed = rand();
  seed ^= static_cast<int>(std::chrono::system_clock::now().time_since_epoch().count());
  std::setlocale(LC_ALL, "");
  return seed;
}
