// Fixture for lint_fixture_test.py — raw byte access in a codec path
// (the src/easyc/codec* prefix routes decoding through BinaryReader).
// Expected findings (rule: line):
//   unchecked-codec-read: 9
//   unchecked-codec-read: 11
#include <cstring>

double planted_decode(const char* wire) {
  const double* raw = reinterpret_cast<const double*>(wire);
  double out;
  std::memcpy(&out, raw, sizeof(out));
  return out;
}
