// Fixture for lint_fixture_test.py — bare mutex locking, one
// violation allowlisted with a reason.
// Expected findings (rule: line):
//   bare-lock: 13
//   bare-lock: 14
// Expected allowed suppression:
//   bare-lock: 20
#include <mutex>

std::mutex planted_mu;

void planted_critical() {
  planted_mu.lock();
  planted_mu.unlock();
}

void planted_callback_handoff() {
  // easyc-lint: allow(bare-lock) ownership passes to a C callback that
  // releases on its own thread; no RAII scope can span the handoff.
  planted_mu.lock();
}
