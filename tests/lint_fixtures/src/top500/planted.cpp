// Fixture for lint_fixture_test.py — a stale allow comment (the
// violation it once covered is gone); the linter must report it.
// Expected allow problem at line 5.
int planted_clean_function() {
  // easyc-lint: allow(raw-random) left over from a removed rand() call
  return 4;
}
