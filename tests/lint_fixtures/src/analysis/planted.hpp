// Fixture for lint_fixture_test.py — NOT compiled, NOT scanned in the
// real tree (easyc_lint only scans tests/*.cpp, not subdirectories).
// Declares the unordered member the paired .cpp iterates, so the test
// proves declaration/iteration pairing works across the .hpp/.cpp
// boundary.
#pragma once
#include <string>
#include <unordered_map>

struct PlantedReport {
  std::unordered_map<std::string, double> totals_by_site_;
  double render() const;
};
