// Fixture for lint_fixture_test.py — planted payload-path violations.
// Expected findings (rule: line) are asserted exactly by the test:
//   unordered-iteration: 12   (member declared in the paired header)
//   accumulate-reduction: 16
//   pinned-float-format: 18   (setprecision in a payload path)
//   pinned-float-format: 19   (inline %.17g)
#include "analysis/planted.hpp"

double PlantedReport::render() const {
  double total = 0.0;
  // line 12: range-for over an unordered member
  for (const auto& kv : totals_by_site_) {
    total += kv.second;
  }
  std::vector<double> xs;
  total += std::accumulate(xs.begin(), xs.end(), 0.0);
  std::ostringstream out;
  out << std::setprecision(17) << total;
  std::printf("%.17g", total);
  return total;
}
