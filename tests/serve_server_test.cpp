// AssessmentServer: the long-lived engine lifecycle behind both
// easyc_serve and the CLI one-shots.
//
// The load-bearing pin is the determinism bar from the ROADMAP: a
// request's reply payload is byte-identical whether served cold,
// warm-started from a snapshot, or interleaved with concurrent
// requests on a shared engine. Robustness rides along in the same
// rejection-matrix style as cache_persistence_test: malformed lines,
// oversized specs, client disconnects, and shutdown mid-request all
// produce clean error replies or clean drains — never a crash, never
// a corrupt snapshot.
#include "service/server.hpp"

// easyc-lint: allow(pragma-suppression) GCC through 12 flags C++20
// designated initializers ({.threads = 2}) as missing-field-initializers
// even though every omitted ServerOptions member has a default member
// initializer (GCC PR96868, fixed in 13). The idiom is load-bearing for
// readability here, so the false positive is silenced file-wide.
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analysis/assessment_engine.hpp"
#include "util/strings.hpp"

namespace service = easyc::service;
namespace analysis = easyc::analysis;
namespace util = easyc::util;
namespace par = easyc::par;

namespace {

struct ParsedReply {
  std::string id;
  bool ok = false;
  std::string payload;
  std::vector<std::string> notes;
  std::map<std::string, uint64_t> stats;
};

// Parse a concatenation of reply frames (a whole session's output).
std::vector<ParsedReply> parse_frames(const std::string& data) {
  std::vector<ParsedReply> replies;
  size_t pos = 0;
  auto next_line = [&]() {
    const size_t nl = data.find('\n', pos);
    EXPECT_NE(nl, std::string::npos) << "truncated frame";
    std::string line = data.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };
  while (pos < data.size()) {
    const std::string header = next_line();
    const auto parts = util::split(header, ' ');
    EXPECT_EQ(parts.size(), 4u) << "bad header: " << header;
    EXPECT_EQ(parts[0], "reply");
    ParsedReply reply;
    reply.id = parts[1];
    reply.ok = (parts[2] == "ok");
    const size_t bytes = std::stoul(parts[3]);
    EXPECT_LE(pos + bytes, data.size()) << "payload truncated";
    if (pos + bytes > data.size()) return replies;
    reply.payload = data.substr(pos, bytes);
    pos += bytes;
    for (;;) {
      const std::string line = next_line();
      if (line.rfind("note " + reply.id + " ", 0) == 0) {
        reply.notes.push_back(line.substr(6 + reply.id.size()));
        continue;
      }
      EXPECT_EQ(line.rfind("stats " + reply.id + " ", 0), 0u)
          << "unexpected frame line: " << line;
      for (const auto& token :
           util::split(line.substr(7 + reply.id.size()), ' ')) {
        const auto eq = token.find('=');
        EXPECT_NE(eq, std::string::npos) << token;
        if (eq == std::string::npos) continue;
        reply.stats[std::string(token.substr(0, eq))] =
            std::stoull(std::string(token.substr(eq + 1)));
      }
      break;
    }
    replies.push_back(std::move(reply));
  }
  return replies;
}

// The scripted request mix the determinism pins replay: every verb,
// repeated lookups, per-request overrides, and a sweep — the same
// shape the CI serve leg drives end-to-end through easyc_serve.
const std::vector<std::string>& request_mix() {
  static const std::vector<std::string> mix = {
      "ping id=m0",
      "version id=m1",
      "assess id=m2",
      "assess scenario=baseline set=aci=150 id=m3",
      "turnover editions=3 id=m4",
      "sweep axes=aci=25,100,300;util=0.6,0.8 records=40 batch=16 id=m5",
      "assess id=m6",  // byte-identical to m2, served warm
  };
  return mix;
}

std::vector<std::string> reference_payloads(service::AssessmentServer& server) {
  std::vector<std::string> payloads;
  for (const std::string& line : request_mix()) {
    const service::Reply reply = server.execute_line(line, "?");
    EXPECT_TRUE(reply.ok) << line << " -> " << reply.payload;
    payloads.push_back(reply.payload);
  }
  return payloads;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(ServeExecute, ColdRunsAreByteIdentical) {
  service::AssessmentServer a({.threads = 2});
  service::AssessmentServer b({.threads = 4});
  EXPECT_EQ(reference_payloads(a), reference_payloads(b));
}

TEST(ServeExecute, RepeatedAssessIsPureLookups) {
  service::AssessmentServer server({.threads = 2});
  const service::Reply cold = server.execute_line("assess id=1", "1");
  const service::Reply warm = server.execute_line("assess id=2", "2");
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(cold.payload, warm.payload);
  EXPECT_GT(cold.stats.delta.misses, 0u);
  EXPECT_EQ(warm.stats.delta.misses, 0u);
  EXPECT_GT(warm.stats.delta.hits, 0u);
  EXPECT_EQ(warm.stats.served, 2u);
}

TEST(ServeExecute, WarmRestartFromSnapshotIsByteIdentical) {
  const std::string cache = temp_path("serve_warm_restart.snap");
  std::remove(cache.c_str());  // stale snapshot from an earlier run
  std::vector<std::string> cold;
  {
    service::AssessmentServer server(
        {.threads = 2, .cache_file = cache});
    EXPECT_EQ(server.warm_start().at(0),
              "cache file " + cache + " not found; starting cold");
    cold = reference_payloads(server);
    const auto notes = server.save_snapshot();
    ASSERT_EQ(notes.size(), 1u);
    EXPECT_EQ(notes[0].rfind("cache saved: ", 0), 0u) << notes[0];
  }
  service::AssessmentServer server({.threads = 2, .cache_file = cache});
  const auto notes = server.warm_start();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].rfind("cache warm-start: ", 0), 0u) << notes[0];
  EXPECT_EQ(reference_payloads(server), cold);
  // The second run against the snapshot is ~pure lookups.
  const par::CacheStats stats = server.engine().cache_stats();
  EXPECT_GE(stats.hit_rate(), 0.99);
}

TEST(ServeExecute, InterleavedConcurrentRequestsAreByteIdentical) {
  service::AssessmentServer reference({.threads = 2});
  const std::vector<std::string> expected = reference_payloads(reference);

  service::AssessmentServer server({.threads = 4});
  std::vector<std::string> payloads(request_mix().size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < request_mix().size(); ++i) {
    threads.emplace_back([&, i] {
      const service::Reply reply =
          server.execute_line(request_mix()[i], "?");
      payloads[i] = reply.ok ? reply.payload : "ERR: " + reply.payload;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(payloads, expected);
}

TEST(ServeSession, StreamsFramesForEveryRequest) {
  service::AssessmentServer reference({.threads = 2});
  const std::vector<std::string> expected = reference_payloads(reference);

  std::string script = "# scripted mix (comments and blanks are skipped)\n\n";
  for (const std::string& line : request_mix()) script += line + "\n";

  service::AssessmentServer server({.threads = 2, .admission = 4});
  service::StringSource in(script);
  service::StringSink out;
  server.serve(in, out);

  const auto replies = parse_frames(out.take());
  ASSERT_EQ(replies.size(), request_mix().size());
  std::map<std::string, ParsedReply> by_id;
  for (const auto& reply : replies) {
    EXPECT_TRUE(reply.ok) << reply.id << ": " << reply.payload;
    by_id[reply.id] = reply;
  }
  for (size_t i = 0; i < request_mix().size(); ++i) {
    // Two-step concat: GCC 12's -Wrestrict false-positives on the
    // temporary from "m" + to_string(i) (PR105651).
    std::string id = "m";
    id += std::to_string(i);
    EXPECT_EQ(by_id.at(id).payload, expected[i]);
  }
}

TEST(ServeSession, MalformedLinesGetErrRepliesAndSessionSurvives) {
  service::AssessmentServer server({.threads = 2});
  service::StringSource in(
      "frobnicate id=1\n"
      "assess scenario=no-such-scenario id=2\n"
      "assess set=aci=1,2,3 id=3\n"          // multi-valued set=
      "sweep axes=bogus id=4\n"              // axis grammar error
      "turnover editions=1 id=5\n"
      "ping id=6\n");
  service::StringSink out;
  server.serve(in, out);
  const auto replies = parse_frames(out.take());
  ASSERT_EQ(replies.size(), 6u);
  // Concurrent executors may interleave the frames, so match by id.
  std::map<std::string, ParsedReply> by_id;
  for (const auto& reply : replies) by_id[reply.id] = reply;
  for (int i = 1; i <= 5; ++i) {
    const ParsedReply& reply = by_id.at(std::to_string(i));
    EXPECT_FALSE(reply.ok) << reply.payload;
    EXPECT_FALSE(reply.payload.empty());
    EXPECT_EQ(reply.payload.back(), '\n');
  }
  // The session survives every rejection: the ping still lands.
  EXPECT_TRUE(by_id.at("6").ok);
  EXPECT_EQ(by_id.at("6").payload, "pong\n");
}

TEST(ServeSession, OverlongLineIsRejectedNotFatal) {
  service::AssessmentServer server({.threads = 2, .max_line_bytes = 128});
  service::StringSource in("assess set=" + std::string(4096, 'x') +
                           "\nping id=p\n");
  service::StringSink out;
  server.serve(in, out);
  const auto replies = parse_frames(out.take());
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_FALSE(replies[0].ok);
  EXPECT_NE(replies[0].payload.find("exceeds 128 bytes"), std::string::npos);
  EXPECT_TRUE(replies[1].ok);
  EXPECT_EQ(replies[1].payload, "pong\n");
}

TEST(ServeSession, OversizedSweepIsRejectedBeforeRunning) {
  service::AssessmentServer server({.threads = 2, .max_sweep_cells = 10});
  const service::Reply reply = server.execute_line(
      "sweep axes=aci=25:600:6;pue=1.1:1.6:6 id=big", "big");
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.payload.find("accepts at most 10"), std::string::npos);
  // No engine work was admitted...
  EXPECT_EQ(reply.stats.delta.lookups(), 0u);
  // ...and the server still serves.
  EXPECT_TRUE(server.execute_line("ping", "p").ok);
}

TEST(ServeSession, ShutdownVerbDrainsInflightAndSnapshotStaysValid) {
  const std::string cache = temp_path("serve_shutdown_inflight.snap");
  service::AssessmentServer server(
      {.threads = 2, .admission = 2, .cache_file = cache});
  // The shutdown request races a still-running sweep on the second
  // executor; both must reply before serve() returns.
  service::StringSource in(
      "sweep axes=aci=25:600:6;util=0.5,0.7,0.9 records=60 id=slow\n"
      "shutdown id=stop\n");
  service::StringSink out;
  server.serve(in, out);
  EXPECT_TRUE(server.shutdown_requested());

  const auto replies = parse_frames(out.take());
  ASSERT_EQ(replies.size(), 2u);
  std::map<std::string, ParsedReply> by_id;
  for (const auto& r : replies) by_id[r.id] = r;
  EXPECT_TRUE(by_id.at("slow").ok);
  EXPECT_TRUE(by_id.at("stop").ok);
  EXPECT_EQ(by_id.at("stop").payload, "shutting down\n");

  // Snapshot-after-drain round-trips: no partial state, no corruption.
  const auto notes = server.save_snapshot();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].rfind("cache saved: ", 0), 0u) << notes[0];
  analysis::AssessmentEngine probe;
  EXPECT_GT(probe.load_cache(cache), 0u);
}

TEST(ServeSession, RequestShutdownWakesABlockedReader) {
  service::AssessmentServer server({.threads = 2});
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  service::StringSink out;
  std::thread session([&] {
    service::FdSource in(fds[0], server.wake_fd());
    server.serve(in, out);
  });
  // No bytes ever arrive; the wake pipe alone must unblock the read —
  // the SIGTERM-while-idle path of easyc_serve.
  server.request_shutdown();
  session.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

int connect_loopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

void send_all(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
}

std::string recv_all(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) return out;
    out.append(buf, static_cast<size_t>(n));
  }
}

// One TCP exchange: send the lines, half-close, read to EOF.
std::vector<ParsedReply> tcp_exchange(uint16_t port,
                                      const std::string& lines) {
  const int fd = connect_loopback(port);
  send_all(fd, lines);
  ::shutdown(fd, SHUT_WR);
  const std::string data = recv_all(fd);
  ::close(fd);
  return parse_frames(data);
}

TEST(ServeTcp, SessionsShareOneHotEngine) {
  service::AssessmentServer server({.threads = 2, .admission = 2});
  const uint16_t port = server.listen_tcp(0);
  ASSERT_GT(port, 0);
  std::thread acceptor([&] { server.serve_tcp(); });

  const auto first = tcp_exchange(port, "assess id=a\n");
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].ok);
  EXPECT_GT(first[0].stats.at("misses"), 0u);

  // A later connection hits the same warm cache: zero misses, same
  // payload bytes.
  const auto second = tcp_exchange(port, "assess id=b\n");
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].ok);
  EXPECT_EQ(second[0].payload, first[0].payload);
  EXPECT_EQ(second[0].stats.at("misses"), 0u);
  EXPECT_GT(second[0].stats.at("hits"), 0u);

  const auto bye = tcp_exchange(port, "shutdown id=z\n");
  ASSERT_EQ(bye.size(), 1u);
  EXPECT_EQ(bye[0].payload, "shutting down\n");
  acceptor.join();
}

TEST(ServeTcp, MidRequestDisconnectDoesNotKillTheServer) {
  service::AssessmentServer server({.threads = 2, .admission = 2});
  const uint16_t port = server.listen_tcp(0);
  std::thread acceptor([&] { server.serve_tcp(); });

  // Hang up immediately after sending a request: the reply lands on a
  // dead socket and is dropped; the server must keep serving.
  const int fd = connect_loopback(port);
  send_all(fd, "sweep axes=aci=25,100,300 records=30 id=gone\n");
  ::close(fd);

  const auto alive = tcp_exchange(port, "ping id=p\n");
  ASSERT_EQ(alive.size(), 1u);
  EXPECT_EQ(alive[0].payload, "pong\n");

  tcp_exchange(port, "shutdown id=z\n");
  acceptor.join();
}

}  // namespace
