#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace easyc::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(r.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng r(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng r(19);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[2], 0);  // zero-weight bucket never chosen
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ForkStreamsAreIndependentAndStable) {
  Rng root(99);
  Rng a1 = root.fork(0);
  Rng a2 = root.fork(0);
  Rng b = root.fork(1);
  // Same fork id -> identical stream; different id -> different stream.
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  int same = 0;
  Rng a3 = root.fork(0);
  for (int i = 0; i < 100; ++i) {
    if (a3.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIndependentOfRootConsumption) {
  // Forking is based on seed state captured at construction of the
  // fork, so consuming the root stream must not change fork(k) results
  // only if forks are taken from identical root states.
  Rng root1(123);
  Rng root2(123);
  auto f1 = root1.fork(5);
  auto f2 = root2.fork(5);
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
}

TEST(Rng, LogNormalPositive) {
  Rng r(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.log_normal(0.0, 0.5), 0.0);
}

}  // namespace
}  // namespace easyc::util
