#include "analysis/audit.hpp"

#include <gtest/gtest.h>

#include "top500/generator.hpp"

namespace easyc::analysis {
namespace {

using top500::SystemRecord;

std::vector<SystemRecord> small_valid_list() {
  std::vector<SystemRecord> recs(3);
  for (int i = 0; i < 3; ++i) {
    auto& r = recs[i];
    r.rank = i + 1;
    r.name = "sys" + std::to_string(i);
    r.country = "Germany";
    r.year = 2022;
    r.rmax_tflops = 1000.0 * (3 - i);
    r.rpeak_tflops = r.rmax_tflops * 1.4;
    r.total_cores = 50000;
    r.processor = "AMD EPYC 7763 64C";
    r.truth.power_kw = r.rmax_tflops / 8.0;
    r.truth.nodes = 400;
    r.truth.cpus = 800;
  }
  return recs;
}

TEST(Audit, GeneratedListIsClean) {
  const auto list = top500::generate_list();
  const auto report = audit_records(list.records);
  EXPECT_EQ(report.errors, 0) << render_audit(report);
  EXPECT_EQ(report.warnings, 0) << render_audit(report);
}

TEST(Audit, CleanSmallList) {
  const auto report = audit_records(small_valid_list());
  EXPECT_TRUE(report.clean()) << render_audit(report);
  EXPECT_EQ(render_audit(report), "audit: clean\n");
}

TEST(Audit, EmptyListIsAnError) {
  const auto report = audit_records({});
  EXPECT_EQ(report.errors, 1);
}

TEST(Audit, DetectsUnsortedRmax) {
  auto recs = small_valid_list();
  recs[2].rmax_tflops = 5000;  // bigger than rank 1
  const auto report = audit_records(recs);
  EXPECT_GE(report.errors, 1);
  EXPECT_NE(render_audit(report).find("sorted"), std::string::npos);
}

TEST(Audit, DetectsDuplicateRank) {
  auto recs = small_valid_list();
  recs[1].rank = 1;
  EXPECT_GE(audit_records(recs).errors, 1);
}

TEST(Audit, DetectsRmaxAboveRpeak) {
  auto recs = small_valid_list();
  recs[0].rpeak_tflops = recs[0].rmax_tflops * 0.9;
  const auto report = audit_records(recs);
  EXPECT_NE(render_audit(report).find("Rpeak"), std::string::npos);
}

TEST(Audit, FlagsImplausibleEfficiency) {
  auto recs = small_valid_list();
  recs[0].truth.power_kw = recs[0].rmax_tflops / 500.0;  // 500 GF/W
  const auto report = audit_records(recs);
  EXPECT_GE(report.warnings, 1);
  EXPECT_NE(render_audit(report).find("envelope"), std::string::npos);
}

TEST(Audit, FlagsUnknownCountry) {
  auto recs = small_valid_list();
  recs[1].country = "Atlantis";
  const auto report = audit_records(recs);
  EXPECT_GE(report.warnings, 1);
  EXPECT_NE(render_audit(report).find("Atlantis"), std::string::npos);
}

TEST(Audit, FlagsCpuOnlyWithGpus) {
  auto recs = small_valid_list();
  recs[0].truth.gpus = 100;  // accelerator string empty
  EXPECT_GE(audit_records(recs).errors, 1);
}

TEST(Audit, FlagsNonDivisibleGpuCount) {
  auto recs = small_valid_list();
  recs[0].accelerator = "NVIDIA H100";
  recs[0].truth.gpus = 1001;
  recs[0].truth.nodes = 400;
  EXPECT_GE(audit_records(recs).warnings, 1);
}

TEST(Audit, FlagsMorePackagesThanCores) {
  auto recs = small_valid_list();
  recs[0].truth.cpus = recs[0].total_cores + 1;
  EXPECT_GE(audit_records(recs).errors, 1);
}

TEST(Audit, YearRangeConfigurable) {
  auto recs = small_valid_list();
  recs[0].year = 2031;
  AuditOptions opt;
  EXPECT_GE(audit_records(recs, opt).warnings, 1);
  opt.max_year = 2035;
  EXPECT_TRUE(audit_records(recs, opt).clean());
}

}  // namespace
}  // namespace easyc::analysis
