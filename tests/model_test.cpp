#include "easyc/model.hpp"

#include <gtest/gtest.h>

#include "easyc/uncertainty.hpp"

namespace easyc::model {
namespace {

Inputs make_system(int i) {
  Inputs in;
  in.name = "sys" + std::to_string(i);
  in.country = i % 2 == 0 ? "Germany" : "Japan";
  in.rmax_tflops = 1000.0 + i * 10;
  in.rpeak_tflops = in.rmax_tflops * 1.4;
  in.total_cores = 50000 + i * 100;
  in.processor = "AMD EPYC 7763 64C 2.45GHz";
  in.operation_year = 2021;
  in.power_kw = 500.0 + i;
  in.num_nodes = 400;
  in.num_cpus = 800;
  return in;
}

TEST(EasyCModel, AssessFillsBothSides) {
  EasyCModel model;
  auto a = model.assess(make_system(1));
  EXPECT_EQ(a.name, "sys1");
  EXPECT_TRUE(a.operational.ok());
  EXPECT_TRUE(a.embodied.ok());
}

TEST(EasyCModel, DefaultAssessmentIsFailure) {
  SystemAssessment a;
  EXPECT_FALSE(a.operational.ok());
  EXPECT_FALSE(a.embodied.ok());
}

TEST(EasyCModel, AssessAllMatchesSerialAssess) {
  EasyCModel model;
  std::vector<Inputs> inputs;
  for (int i = 0; i < 200; ++i) inputs.push_back(make_system(i));
  auto batch = model.assess_all(inputs);
  ASSERT_EQ(batch.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto one = model.assess(inputs[i]);
    ASSERT_EQ(batch[i].operational.ok(), one.operational.ok());
    EXPECT_DOUBLE_EQ(batch[i].operational.value().mt_co2e,
                     one.operational.value().mt_co2e);
    EXPECT_DOUBLE_EQ(batch[i].embodied.value().total_mt,
                     one.embodied.value().total_mt);
  }
}

TEST(Outcome, FailureAccessorsBehave) {
  auto f = Outcome<int>::failure("nope");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.reasons().size(), 1u);
  EXPECT_EQ(f.reasons_joined(), "nope");
  auto f2 = Outcome<int>::failure(std::vector<std::string>{"a", "b"});
  EXPECT_EQ(f2.reasons_joined(), "a; b");
  auto s = Outcome<int>::success(7);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.value(), 7);
  EXPECT_TRUE(s.reasons().empty());
}

TEST(Uncertainty, DeterministicForSeed) {
  std::vector<Inputs> fleet;
  for (int i = 0; i < 20; ++i) fleet.push_back(make_system(i));
  EasyCOptions opt;
  PriorRanges ranges;
  auto a = run_uncertainty(fleet, opt, ranges, 64, 7);
  auto b = run_uncertainty(fleet, opt, ranges, 64, 7);
  EXPECT_DOUBLE_EQ(a.operational_mt.mean, b.operational_mt.mean);
  EXPECT_DOUBLE_EQ(a.embodied_mt.stddev, b.embodied_mt.stddev);
}

TEST(Uncertainty, ThreadCountDoesNotChangeResults) {
  std::vector<Inputs> fleet;
  for (int i = 0; i < 20; ++i) fleet.push_back(make_system(i));
  EasyCOptions opt;
  PriorRanges ranges;
  par::ThreadPool pool2(2);
  par::ThreadPool pool8(8);
  auto serial = run_uncertainty(fleet, opt, ranges, 64, 11, nullptr);
  auto p2 = run_uncertainty(fleet, opt, ranges, 64, 11, &pool2);
  auto p8 = run_uncertainty(fleet, opt, ranges, 64, 11, &pool8);
  EXPECT_DOUBLE_EQ(serial.operational_mt.mean, p2.operational_mt.mean);
  EXPECT_DOUBLE_EQ(serial.operational_mt.mean, p8.operational_mt.mean);
  EXPECT_DOUBLE_EQ(serial.embodied_mt.p95, p8.embodied_mt.p95);
}

TEST(Uncertainty, DistributionBracketsPointEstimate) {
  std::vector<Inputs> fleet;
  for (int i = 0; i < 20; ++i) fleet.push_back(make_system(i));
  EasyCOptions opt;
  EasyCModel model(opt);
  double point_op = 0.0;
  for (const auto& in : fleet) {
    point_op += model.assess(in).operational.value().mt_co2e;
  }
  auto u = run_uncertainty(fleet, opt, PriorRanges{}, 256, 3);
  EXPECT_EQ(u.trials, 256u);
  EXPECT_LT(u.operational_mt.p05, point_op);
  EXPECT_GT(u.operational_mt.p95, point_op);
  EXPECT_NEAR(u.operational_mt.mean, point_op, 0.1 * point_op);
}

TEST(Uncertainty, WiderPriorsWidenTheDistribution) {
  std::vector<Inputs> fleet;
  for (int i = 0; i < 10; ++i) fleet.push_back(make_system(i));
  EasyCOptions opt;
  PriorRanges narrow;
  narrow.utilization_rel = 0.02;
  narrow.aci_rel = 0.02;
  PriorRanges wide;
  wide.utilization_rel = 0.3;
  wide.aci_rel = 0.3;
  auto n = run_uncertainty(fleet, opt, narrow, 256, 5);
  auto w = run_uncertainty(fleet, opt, wide, 256, 5);
  EXPECT_LT(n.operational_mt.stddev, w.operational_mt.stddev);
}

}  // namespace
}  // namespace easyc::model
