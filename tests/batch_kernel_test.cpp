// Scalar-vs-SoA bit-identity of the batch assessment kernel: the
// catalog under every stock scenario, a ~1k-cell sweep slice, mixed
// valid/invalid/missing-input lanes, ValidationError parity, and
// 1-vs-N-thread determinism. The scalar path (EasyCModel::assess) is
// the oracle; the SoA kernel must reproduce it byte-for-byte — same
// doubles, same failure reasons in the same order, same coverage —
// which this test checks through the assessment codec's bytes.
#include "easyc/batch.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/assessment_engine.hpp"
#include "analysis/sweep.hpp"
#include "easyc/codec.hpp"
#include "parallel/thread_pool.hpp"
#include "top500/generator.hpp"
#include "top500/history.hpp"
#include "top500/record.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace easyc::analysis {
namespace {

namespace sc = scenarios;
using analysis::AssessmentEngine;
using BatchKernel = AssessmentEngine::BatchKernel;

// Byte-identity is asserted through the codec: if two assessments
// encode to the same bytes, every double is bit-equal and every
// failure-reason list matches in content and order.
std::string bytes_of(const model::SystemAssessment& a) {
  util::BinaryWriter w;
  model::encode_assessment(w, a);
  return w.bytes();
}

void expect_bytes_identical(const std::vector<EditionAssessment>& a,
                            const std::vector<EditionAssessment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t e = 0; e < a.size(); ++e) {
    ASSERT_EQ(a[e].scenarios.size(), b[e].scenarios.size());
    for (size_t s = 0; s < a[e].scenarios.size(); ++s) {
      const auto& sa = a[e].scenarios[s].assessments;
      const auto& sb = b[e].scenarios[s].assessments;
      ASSERT_EQ(sa.size(), sb.size());
      for (size_t i = 0; i < sa.size(); ++i) {
        ASSERT_EQ(bytes_of(sa[i]), bytes_of(sb[i]))
            << a[e].label << " scenario " << a[e].scenarios[s].spec.name
            << " record " << i;
      }
    }
  }
}

// Every stock scenario: the paper pair, the what-if trio, and the
// ground-truth bound — three visibilities, overrides, both policies.
ScenarioSet all_stock_scenarios() {
  ScenarioSet set = ScenarioSet::paper_with_whatifs();
  set.add(sc::full_knowledge());
  return set;
}

// --- exhaustive catalog x stock scenarios ---------------------------

TEST(BatchKernel, CatalogAllStockScenariosByteIdentical) {
  const auto records = top500::generate_records();
  const auto set = all_stock_scenarios();
  par::ThreadPool one(1);

  // No-cache engines exercise the kernels directly (every cell is a
  // fill); the direct model is the per-cell oracle underneath both.
  AssessmentEngine soa({.pool = &one,
                        .cache_enabled = false,
                        .batch_kernel = BatchKernel::kSoa});
  AssessmentEngine scalar({.pool = &one,
                           .cache_enabled = false,
                           .batch_kernel = BatchKernel::kScalar});
  const auto rs = soa.assess(records, set);
  const auto rr = scalar.assess(records, set);

  ASSERT_EQ(rs.scenarios.size(), rr.scenarios.size());
  for (size_t s = 0; s < rs.scenarios.size(); ++s) {
    const ScenarioSpec& spec = rs.scenarios[s].spec;
    model::EasyCModel oracle(spec.to_options());
    ASSERT_EQ(rs.scenarios[s].assessments.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      const std::string want =
          bytes_of(oracle.assess(to_inputs(records[i], spec.visibility)));
      ASSERT_EQ(bytes_of(rs.scenarios[s].assessments[i]), want)
          << spec.name << " record " << i << " (soa vs oracle)";
      ASSERT_EQ(bytes_of(rr.scenarios[s].assessments[i]), want)
          << spec.name << " record " << i << " (scalar vs oracle)";
    }
  }

  // The SoA engine resolved each distinct (visibility, record) profile
  // and validated it exactly once; the scalar engine batched nothing.
  const auto& stats = soa.batch_stats();
  EXPECT_GT(stats.lanes, 0u);
  EXPECT_GT(stats.profiles, 0u);
  EXPECT_EQ(stats.validations, stats.profiles);
  EXPECT_EQ(scalar.batch_stats().lanes, 0u);
}

TEST(BatchKernel, CachedEngineMatchesScalarColdAndWarm) {
  top500::HistoryConfig cfg;
  cfg.editions = 3;
  const auto history = top500::generate_history(cfg);
  par::ThreadPool one(1);

  AssessmentEngine soa({.pool = &one, .batch_kernel = BatchKernel::kSoa});
  AssessmentEngine scalar(
      {.pool = &one, .batch_kernel = BatchKernel::kScalar});
  const auto set = all_stock_scenarios();

  const auto cold_soa = soa.run(history, set);
  const auto cold_scalar = scalar.run(history, set);
  expect_bytes_identical(cold_soa, cold_scalar);
  // The miss-fill batching must not change what lands in the memo:
  // hit/miss accounting stays identical to the scalar wavefront.
  EXPECT_EQ(soa.cache_stats().misses, scalar.cache_stats().misses);
  EXPECT_EQ(soa.cache_stats().hits, scalar.cache_stats().hits);
  EXPECT_EQ(soa.cache_stats().entries, scalar.cache_stats().entries);

  const auto warm_soa = soa.run(history, set);
  expect_bytes_identical(cold_soa, warm_soa);
}

// --- sweep slice ----------------------------------------------------

TEST(BatchKernel, SweepSliceByteIdentical) {
  // A 4-axis slice: 5 x 5 x 5 x 8 = 1000 grid cells plus the base and
  // per-axis endpoint cells. Lifetime cells alias on the assessment
  // fingerprint, so the distinct-work set stays test-sized while the
  // cell set crosses 1k.
  const SweepSpec spec = SweepSpec::parse(
      "aci=25:600:5;pue=1.1:1.9:5;util=0.5:0.95:5;life=4:8:8");
  auto records = top500::generate_records();
  records.resize(30);

  par::ThreadPool one(1);
  AssessmentEngine soa({.pool = &one, .batch_kernel = BatchKernel::kSoa});
  AssessmentEngine scalar(
      {.pool = &one, .batch_kernel = BatchKernel::kScalar});

  std::ostringstream soa_csv, scalar_csv;
  CsvCellSink soa_sink(soa_csv), scalar_sink(scalar_csv);
  SweepEngine se({.engine = &soa});
  SweepEngine sse({.engine = &scalar});
  const auto rs = se.run(records, spec, &soa_sink);
  const auto rr = sse.run(records, spec, &scalar_sink);

  ASSERT_GE(rs.cells.size(), 1000u);
  EXPECT_EQ(render_sweep_report(rs), render_sweep_report(rr));
  EXPECT_EQ(soa_csv.str(), scalar_csv.str());
}

// --- mixed valid / failing / missing-input lanes --------------------

// Lanes covering every resolution path and failure reason the kernel
// masks: metered, reported, roll-up, core-count, no-path, unknown
// country, in-catalog accelerator, unknown accelerator (strict fail /
// approx proxy), missing GPU count, unknown processor.
std::vector<model::Inputs> mixed_lanes() {
  std::vector<model::Inputs> lanes;

  model::Inputs full;  // every metric present, accelerated, in catalog
  full.name = "full";
  full.country = "United States";
  full.region = "Tennessee";
  full.rmax_tflops = 1.2e6;
  full.rpeak_tflops = 1.7e6;
  full.power_kw = 22000.0;
  full.total_cores = 8'000'000;
  full.processor = "AMD EPYC 7763 64C 2.45GHz";
  full.accelerator = "MI250X";
  full.operation_year = 2022;
  full.num_nodes = 9400;
  full.num_gpus = 37600;
  full.num_cpus = 9400;
  full.memory_gb = 4'800'000.0;
  full.memory_type = "DDR4";
  full.ssd_tb = 11000.0;
  full.utilization = 0.8;
  lanes.push_back(full);

  model::Inputs metered = full;  // metered path beats reported power
  metered.name = "metered";
  metered.annual_energy_kwh = 1.5e8;
  lanes.push_back(metered);

  model::Inputs rollup = full;  // no reported power: component roll-up
  rollup.name = "rollup";
  rollup.power_kw.reset();
  lanes.push_back(rollup);

  model::Inputs cores_only;  // nothing but cores: era-prior W/core path
  cores_only.name = "cores-only";
  cores_only.country = "Germany";
  cores_only.rmax_tflops = 5000.0;
  cores_only.rpeak_tflops = 7000.0;
  cores_only.total_cores = 150000;
  cores_only.processor = "Xeon Platinum 8280 28C 2.7GHz";
  cores_only.operation_year = 2020;
  lanes.push_back(cores_only);

  model::Inputs no_path;  // no power, no counts: operational failure
  no_path.name = "no-path";
  no_path.country = "Japan";
  no_path.rmax_tflops = 3000.0;
  no_path.rpeak_tflops = 4000.0;
  no_path.processor = "mystery chip";
  lanes.push_back(no_path);

  model::Inputs no_aci = full;  // country outside the ACI database
  no_aci.name = "no-aci";
  no_aci.country = "Atlantis";
  no_aci.region.clear();
  lanes.push_back(no_aci);

  model::Inputs unknown_acc = full;  // strict declines, approx proxies
  unknown_acc.name = "unknown-acc";
  unknown_acc.accelerator = "FutureChip Z9";
  lanes.push_back(unknown_acc);

  model::Inputs no_gpu_count = full;  // accelerated but count unknown
  no_gpu_count.name = "no-gpu-count";
  no_gpu_count.num_gpus.reset();
  lanes.push_back(no_gpu_count);

  model::Inputs unknown_cpu = full;  // embodied CPU failure
  unknown_cpu.name = "unknown-cpu";
  unknown_cpu.processor = "mystery chip";
  unknown_cpu.accelerator.clear();
  unknown_cpu.num_gpus.reset();
  lanes.push_back(unknown_cpu);

  model::Inputs sparse;  // power only, defaults everywhere else
  sparse.name = "sparse";
  sparse.country = "France";
  sparse.rmax_tflops = 9000.0;
  sparse.rpeak_tflops = 12000.0;
  sparse.power_kw = 900.0;
  sparse.processor = "AMD EPYC 7763 64C 2.45GHz";
  sparse.total_cores = 200000;
  sparse.num_nodes = 1500;
  lanes.push_back(sparse);

  return lanes;
}

// Option sets spanning both policies and every override the kernel
// blends: stock scenarios plus targeted overrides.
std::vector<model::EasyCOptions> option_sets() {
  std::vector<model::EasyCOptions> sets;
  sets.push_back(sc::enhanced().to_options());
  sets.push_back(sc::baseline().to_options());  // strict policy
  sets.push_back(sc::renewables_grid().to_options());  // ACI override
  sets.push_back(sc::full_knowledge().to_options());

  model::EasyCOptions pue = sc::enhanced().to_options();
  pue.operational.pue_override = 1.08;
  sets.push_back(pue);

  model::EasyCOptions knobs = sc::enhanced().to_options();
  knobs.operational.default_utilization = 0.6;
  knobs.embodied.fab_aci_kg_kwh = 0.2;
  knobs.embodied.accelerator_policy =
      model::AcceleratorPolicy::kApproximateWithMainstreamGpu;
  sets.push_back(knobs);
  return sets;
}

TEST(BatchKernel, MixedLanesMatchScalarUnderEveryOptionSet) {
  const auto lanes = mixed_lanes();
  par::ThreadPool one(1);

  model::BatchAssessor batch;
  for (const auto& in : lanes) batch.add_profile(in);
  batch.resolve_profiles(&one);

  for (const auto& options : option_sets()) {
    std::vector<model::SystemAssessment> got(lanes.size());
    std::vector<model::BatchAssessor::Cell> cells(lanes.size());
    for (size_t i = 0; i < lanes.size(); ++i) cells[i] = {i, &got[i]};
    batch.assess(options, cells.data(), cells.size(), &one);

    model::EasyCModel oracle(options);
    for (size_t i = 0; i < lanes.size(); ++i) {
      EXPECT_EQ(bytes_of(got[i]), bytes_of(oracle.assess(lanes[i])))
          << lanes[i].name;
    }
  }
}

TEST(BatchKernel, InvalidInputsThrowValidationErrorLikeScalar) {
  model::Inputs bad = mixed_lanes()[0];
  bad.name = "bad";
  bad.rmax_tflops = -1.0;  // performance must be non-negative

  model::EasyCModel oracle;
  EXPECT_THROW(oracle.assess(bad), util::ValidationError);

  model::BatchAssessor batch;
  batch.add_profile(bad);
  EXPECT_THROW(batch.resolve_profiles(), util::ValidationError);
}

// --- thread-count determinism ---------------------------------------

TEST(BatchKernel, OneVsManyThreadsBitIdentical) {
  top500::HistoryConfig cfg;
  cfg.editions = 3;
  const auto history = top500::generate_history(cfg);
  par::ThreadPool one(1);
  par::ThreadPool wide(8);

  AssessmentEngine a({.pool = &one, .batch_kernel = BatchKernel::kSoa});
  AssessmentEngine b({.pool = &wide, .batch_kernel = BatchKernel::kSoa});
  const auto set = all_stock_scenarios();
  expect_bytes_identical(a.run(history, set), b.run(history, set));
  EXPECT_EQ(a.cache_stats().misses, b.cache_stats().misses);
  EXPECT_EQ(a.batch_stats().lanes, b.batch_stats().lanes);
  EXPECT_EQ(a.batch_stats().profiles, b.batch_stats().profiles);
}

// --- stats accounting -----------------------------------------------

TEST(BatchKernel, AciHoistStatsAccounting) {
  const auto records = top500::generate_records();
  ScenarioSet set;
  set.add(sc::enhanced());
  par::ThreadPool one(1);

  AssessmentEngine hoisted({.pool = &one,
                            .cache_enabled = false,
                            .batch_kernel = BatchKernel::kSoa});
  hoisted.assess(records, set);
  const auto& hs = hoisted.batch_stats();
  EXPECT_EQ(hs.lanes, records.size());
  EXPECT_EQ(hs.profiles, records.size());
  EXPECT_EQ(hs.validations, records.size());
  // Every lane's ACI came from the per-batch table; the database saw
  // two probes (country + region) per distinct pair, not per lane.
  EXPECT_EQ(hs.aci_hoisted, hs.lanes);
  EXPECT_GT(hs.aci_keys, 0u);
  EXPECT_LT(hs.aci_keys, hs.lanes);
  EXPECT_EQ(hs.aci_db_queries, 2 * hs.aci_keys);

  AssessmentEngine direct({.pool = &one,
                           .cache_enabled = false,
                           .batch_kernel = BatchKernel::kSoa,
                           .batch_hoist_aci = false});
  direct.assess(records, set);
  const auto& ds = direct.batch_stats();
  EXPECT_EQ(ds.aci_hoisted, 0u);
  EXPECT_EQ(ds.aci_db_queries, 2 * ds.lanes);

  // And the A/B knob moves only time, never bytes.
  model::EasyCModel oracle(sc::enhanced().to_options());
  const auto ra = hoisted.assess(records, set);
  const auto rb = direct.assess(records, set);
  for (size_t i = 0; i < records.size(); ++i) {
    const std::string want = bytes_of(
        oracle.assess(to_inputs(records[i], sc::enhanced().visibility)));
    EXPECT_EQ(bytes_of(ra.scenarios[0].assessments[i]), want);
    EXPECT_EQ(bytes_of(rb.scenarios[0].assessments[i]), want);
  }
}

}  // namespace
}  // namespace easyc::analysis
