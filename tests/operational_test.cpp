#include "easyc/operational.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace easyc::model {
namespace {

Inputs base_system() {
  Inputs in;
  in.name = "opsys";
  in.country = "Germany";
  in.rmax_tflops = 10000;
  in.rpeak_tflops = 14000;
  in.total_cores = 200000;
  in.processor = "AMD EPYC 7763 64C 2.45GHz";
  in.operation_year = 2022;
  return in;
}

TEST(EnergyPath, MeteredEnergyWins) {
  Inputs in = base_system();
  in.annual_energy_kwh = 5.0e7;
  in.power_kw = 9999;  // must be ignored
  auto r = assess_operational(in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().path, EnergyPath::kMeteredAnnualEnergy);
  EXPECT_DOUBLE_EQ(r.value().annual_kwh, 5.0e7);
  EXPECT_DOUBLE_EQ(r.value().pue, 1.0);  // metered is facility-side
  // 5e7 kWh x 344 g/kWh (Germany) = 17200 MT
  EXPECT_NEAR(r.value().mt_co2e, 17200, 1);
}

TEST(EnergyPath, ReportedPowerSecond) {
  Inputs in = base_system();
  in.power_kw = 2000;
  auto r = assess_operational(in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().path, EnergyPath::kReportedPower);
  EXPECT_DOUBLE_EQ(r.value().it_kw, 2000);
  EXPECT_GT(r.value().pue, 1.0);
  // energy = power x util x 8760 x PUE
  const auto& v = r.value();
  EXPECT_NEAR(v.annual_kwh,
              2000 * v.utilization * util::kHoursPerYear * v.pue, 1e-6);
}

TEST(EnergyPath, ComponentRollupThird) {
  Inputs in = base_system();
  in.num_nodes = 1000;
  in.num_cpus = 2000;
  auto r = assess_operational(in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().path, EnergyPath::kComponentRollup);
  // 2000 x 280W EPYC-7763 packages plus memory and overhead: order MW.
  EXPECT_GT(r.value().it_kw, 500);
  EXPECT_LT(r.value().it_kw, 2000);
}

TEST(EnergyPath, CoreEstimateLast) {
  Inputs in = base_system();  // only cores available
  auto r = assess_operational(in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().path, EnergyPath::kCoreCountEstimate);
  EXPECT_GT(r.value().it_kw, 100);
}

TEST(Coverage, AcceleratedWithoutPowerOrCountsFails) {
  Inputs in = base_system();
  in.accelerator = "NVIDIA H100";
  auto r = assess_operational(in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.reasons_joined().find("no energy path"), std::string::npos);
}

TEST(Coverage, AcceleratedWithCountsUsesRollup) {
  Inputs in = base_system();
  in.accelerator = "NVIDIA H100";
  in.num_nodes = 500;
  in.num_cpus = 500;
  in.num_gpus = 2000;
  auto r = assess_operational(in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().path, EnergyPath::kComponentRollup);
  // 2000 H100s at 700W dominate: > 1.4 MW IT power.
  EXPECT_GT(r.value().it_kw, 1400);
}

TEST(Coverage, AcceleratedRollupNeedsGpuCount) {
  Inputs in = base_system();
  in.accelerator = "NVIDIA H100";
  in.num_nodes = 500;
  in.num_cpus = 500;
  auto r = assess_operational(in);
  EXPECT_FALSE(r.ok());
}

TEST(Coverage, UnknownCountryFails) {
  Inputs in = base_system();
  in.power_kw = 2000;
  in.country = "Atlantis";
  auto r = assess_operational(in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.reasons_joined().find("grid carbon intensity"),
            std::string::npos);
}

TEST(Aci, RegionRefinementApplied) {
  Inputs in = base_system();
  in.country = "United States";
  in.power_kw = 2000;
  auto national = assess_operational(in);
  in.region = "California";
  auto regional = assess_operational(in);
  ASSERT_TRUE(national.ok() && regional.ok());
  EXPECT_TRUE(regional.value().aci_region_refined);
  EXPECT_FALSE(national.value().aci_region_refined);
  EXPECT_LT(regional.value().mt_co2e, national.value().mt_co2e);
}

TEST(Options, UtilizationMetricOverridesPrior) {
  Inputs in = base_system();
  in.power_kw = 1000;
  in.utilization = 0.5;
  auto r = assess_operational(in);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().utilization, 0.5);
}

TEST(Options, InvalidUtilizationPriorAborts) {
  OperationalOptions opt;
  opt.default_utilization = 0.0;
  Inputs in = base_system();
  in.power_kw = 1000;
  EXPECT_DEATH(assess_operational(in, opt), "utilization");
}

// Property: carbon is monotone in each continuous driver.
class PowerSweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerSweep, CarbonIncreasesWithPower) {
  Inputs in = base_system();
  in.power_kw = GetParam();
  auto lo = assess_operational(in);
  in.power_kw = GetParam() * 1.5;
  auto hi = assess_operational(in);
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_GT(hi.value().mt_co2e, lo.value().mt_co2e);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PowerSweep,
                         ::testing::Values(50.0, 200.0, 1000.0, 5000.0,
                                           20000.0));

class UtilSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilSweep, CarbonIncreasesWithUtilization) {
  Inputs in = base_system();
  in.power_kw = 3000;
  in.utilization = GetParam();
  auto lo = assess_operational(in);
  in.utilization = std::min(1.0, GetParam() + 0.1);
  auto hi = assess_operational(in);
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_GT(hi.value().mt_co2e, lo.value().mt_co2e);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UtilSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.85));

TEST(Consistency, CarbonScalesLinearlyWithAci) {
  // Two countries, same system: carbon ratio == ACI ratio.
  Inputs in = base_system();
  in.power_kw = 4000;
  in.country = "Norway";  // 29
  auto clean = assess_operational(in);
  in.country = "India";  // 713
  auto dirty = assess_operational(in);
  ASSERT_TRUE(clean.ok() && dirty.ok());
  EXPECT_NEAR(dirty.value().mt_co2e / clean.value().mt_co2e, 713.0 / 29.0,
              1e-9);
}

TEST(Validation, InvalidInputsThrowRatherThanFail) {
  Inputs in = base_system();
  in.power_kw = -5;
  EXPECT_THROW(assess_operational(in), util::ValidationError);
}

}  // namespace
}  // namespace easyc::model
