#include "top500/import.hpp"

#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "util/error.hpp"

namespace easyc::top500 {
namespace {

// A fragment in the official export's header style.
const char* kExport =
    "Rank,Name,Site,Manufacturer,Country,Year,Segment,Total Cores,"
    "Accelerator/Co-Processor Cores,Rmax [TFlop/s],Rpeak [TFlop/s],"
    "Power (kW),Processor,Cores per Socket,Accelerator/Co-Processor\n"
    "1,BigIron,Nat Lab,HPE,United States,2023,Research,1000000,800000,"
    "500000,700000,15000,AMD EPYC 9654 96C 2.4GHz,96,AMD Instinct MI250X\n"
    "2,MidBox,Uni,Lenovo,Germany,2021,Academic,250000,,90000,120000,,"
    "AMD EPYC 7763 64C 2.45GHz,64,None\n"
    "3,Mystery,,,Japan,2020,Industry,100000,,40000,52000,2200,"
    "Xeon Platinum 8380 40C,40,NVIDIA GPU\n";

ImportResult import_sample() {
  return import_top500_csv(util::CsvTable::parse(kExport));
}

TEST(Import, HeaderMatchingIsForgiving) {
  auto t = util::CsvTable::parse(kExport);
  EXPECT_TRUE(find_column(t, "rmax").has_value());
  EXPECT_TRUE(find_column(t, "power").has_value());
  EXPECT_TRUE(find_column(t, "accelerator").has_value());
  EXPECT_TRUE(find_column(t, "cores_per_socket").has_value());
  EXPECT_FALSE(find_column(t, "memory").has_value());
}

TEST(Import, RecordsCarryStructuralFields) {
  const auto r = import_sample();
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.stats.systems, 3);
  const auto& big = r.records[0];
  EXPECT_EQ(big.rank, 1);
  EXPECT_EQ(big.name, "BigIron");
  EXPECT_EQ(big.country, "United States");
  EXPECT_DOUBLE_EQ(big.rmax_tflops, 500000);
  EXPECT_DOUBLE_EQ(big.rpeak_tflops, 700000);
  EXPECT_EQ(big.total_cores, 1000000);
  EXPECT_EQ(big.accelerator, "AMD Instinct MI250X");
}

TEST(Import, DisclosureReflectsPresentCells) {
  const auto r = import_sample();
  EXPECT_TRUE(r.records[0].top500.power);
  EXPECT_FALSE(r.records[1].top500.power);  // empty power cell
  EXPECT_TRUE(r.records[2].top500.power);
  EXPECT_EQ(r.stats.with_power, 2);
  // Node/GPU counts are never in the export — the paper's gap.
  for (const auto& rec : r.records) {
    EXPECT_FALSE(rec.top500.nodes);
    EXPECT_FALSE(rec.top500.gpus);
    EXPECT_FALSE(rec.top500.ssd);
  }
}

TEST(Import, CpuPackagesDerivedFromCoresPerSocket) {
  const auto r = import_sample();
  EXPECT_EQ(r.records[0].truth.cpus, 1000000 / 96);
  EXPECT_EQ(r.records[1].truth.cpus, 250000 / 64);
  EXPECT_EQ(r.stats.with_cores_per_socket, 3);
}

TEST(Import, NoneAcceleratorBecomesCpuOnly) {
  const auto r = import_sample();
  EXPECT_FALSE(r.records[1].is_accelerated());
  EXPECT_TRUE(r.records[2].is_accelerated());
  EXPECT_EQ(r.stats.with_accelerator, 2);
}

TEST(Import, ImportedRecordsRunThroughTheBaselineScenario) {
  const auto r = import_sample();
  const auto assessments =
      analysis::assess_scenario(r.records, DataVisibility::kTop500Org);
  // BigIron: power reported -> operational works; no GPU count ->
  // embodied declines (exactly the paper's coverage behaviour).
  EXPECT_TRUE(assessments[0].operational.ok());
  EXPECT_FALSE(assessments[0].embodied.ok());
  // MidBox: CPU-only, catalog CPU + cores -> both sides work.
  EXPECT_TRUE(assessments[1].operational.ok());
  EXPECT_TRUE(assessments[1].embodied.ok());
  // Mystery: vague accelerator + power -> operational only.
  EXPECT_TRUE(assessments[2].operational.ok());
  EXPECT_FALSE(assessments[2].embodied.ok());
}

TEST(Import, BadRowsAreSkippedWithWarnings) {
  const char* text =
      "Rank,Country,Total Cores,Rmax,Processor\n"
      "abc,Germany,1000,50,Xeon\n"
      "2,Germany,,50,Xeon\n"
      "3,Germany,1000,75,Xeon\n";
  const auto r = import_top500_csv(util::CsvTable::parse(text));
  EXPECT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].rank, 3);
  EXPECT_EQ(r.stats.warnings.size(), 2u);
}

TEST(Import, MissingMandatoryColumnThrows) {
  const char* no_rmax = "Rank,Country,Total Cores,Processor\n";
  EXPECT_THROW(import_top500_csv(util::CsvTable::parse(no_rmax)),
               util::ParseError);
}

TEST(Import, RecordsSortedByRank) {
  const char* shuffled =
      "Rank,Country,Total Cores,Rmax,Processor\n"
      "3,Germany,1000,40,Xeon\n"
      "1,Germany,3000,100,Xeon\n"
      "2,Germany,2000,70,Xeon\n";
  const auto r = import_top500_csv(util::CsvTable::parse(shuffled));
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].rank, 1);
  EXPECT_EQ(r.records[2].rank, 3);
}

}  // namespace
}  // namespace easyc::top500
