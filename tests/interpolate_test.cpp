#include "analysis/interpolate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace easyc::analysis {
namespace {

using OptSeries = std::vector<std::optional<double>>;

TEST(Interpolate, PassThroughWhenComplete) {
  OptSeries s = {1.0, 2.0, 3.0};
  auto r = interpolate_gaps(s);
  EXPECT_TRUE(r.interpolated_indices.empty());
  EXPECT_EQ(r.values, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Interpolate, SingleGapUsesNearestPeers) {
  OptSeries s = {10.0, std::nullopt, 20.0};
  auto r = interpolate_gaps(s);
  ASSERT_EQ(r.interpolated_indices, (std::vector<size_t>{1}));
  EXPECT_DOUBLE_EQ(r.values[1], 15.0);
}

TEST(Interpolate, NearestTenPeersFiveEachSide) {
  // 5 below are 1..5, 5 above are 100..104 -> mean 53.
  OptSeries s;
  for (int i = 1; i <= 5; ++i) s.push_back(static_cast<double>(i));
  s.push_back(std::nullopt);
  for (int i = 100; i <= 104; ++i) s.push_back(static_cast<double>(i));
  // Add more entries beyond the window; they must not participate.
  s.push_back(1e9);
  auto r = interpolate_gaps(s);
  EXPECT_DOUBLE_EQ(r.values[5], (1 + 2 + 3 + 4 + 5 + 100 + 101 + 102 + 103 +
                                 104) / 10.0);
}

TEST(Interpolate, SkipsIncompletePeers) {
  // "If the peers are also incomplete, we use the next closest peers."
  OptSeries s = {7.0, std::nullopt, std::nullopt, std::nullopt, 9.0};
  InterpolationOptions opt;
  opt.peers_per_side = 1;
  auto r = interpolate_gaps(s, opt);
  for (size_t i : {1, 2, 3}) EXPECT_DOUBLE_EQ(r.values[i], 8.0) << i;
}

TEST(Interpolate, EdgesUseOneSidedPeers) {
  OptSeries s = {std::nullopt, 4.0, 6.0, std::nullopt};
  InterpolationOptions opt;
  opt.peers_per_side = 2;
  auto r = interpolate_gaps(s, opt);
  EXPECT_DOUBLE_EQ(r.values[0], 5.0);  // only above peers
  EXPECT_DOUBLE_EQ(r.values[3], 5.0);  // only below peers
}

TEST(Interpolate, AllEmptyAborts) {
  OptSeries s = {std::nullopt, std::nullopt};
  EXPECT_DEATH(interpolate_gaps(s), "empty series");
}

TEST(Interpolate, MedianStrategyRobustToOutlierPeer) {
  OptSeries s = {1.0, 1.0, std::nullopt, 1.0, 1000.0};
  InterpolationOptions mean_opt;
  InterpolationOptions med_opt;
  med_opt.strategy = InterpolationStrategy::kMedian;
  const double mean_v = interpolate_gaps(s, mean_opt).values[2];
  const double med_v = interpolate_gaps(s, med_opt).values[2];
  EXPECT_GT(mean_v, 200.0);
  EXPECT_DOUBLE_EQ(med_v, 1.0);
}

TEST(Interpolate, RankWeightedFavoursCloserPeers) {
  OptSeries s = {100.0, std::nullopt, 0.0, 0.0, 0.0};
  InterpolationOptions opt;
  opt.strategy = InterpolationStrategy::kRankWeighted;
  opt.peers_per_side = 3;
  auto r = interpolate_gaps(s, opt);
  // Closest peer (100 at distance 1) outweighs the three zeros:
  // 100 / (1 + 1 + 1/2 + 1/3) = 35.3 vs the plain mean's 25.
  EXPECT_GT(r.values[1], 30.0);
  InterpolationOptions mean_opt;
  mean_opt.peers_per_side = 3;
  EXPECT_GT(r.values[1], interpolate_gaps(s, mean_opt).values[1]);
}

// Property: interpolated values are bounded by peer extremes for every
// strategy and window.
struct BoundCase {
  InterpolationStrategy strategy;
  int peers;
};

class BoundedInterp : public ::testing::TestWithParam<BoundCase> {};

TEST_P(BoundedInterp, WithinGlobalMinMax) {
  OptSeries s;
  double lo = 1e18, hi = -1e18;
  for (int i = 0; i < 100; ++i) {
    if (i % 7 == 3 || (i > 40 && i < 52)) {
      s.push_back(std::nullopt);
    } else {
      const double v = 50.0 + 40.0 * std::sin(i * 0.7);
      s.push_back(v);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  InterpolationOptions opt;
  opt.strategy = GetParam().strategy;
  opt.peers_per_side = GetParam().peers;
  auto r = interpolate_gaps(s, opt);
  for (size_t i : r.interpolated_indices) {
    EXPECT_GE(r.values[i], lo - 1e-9);
    EXPECT_LE(r.values[i], hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundedInterp,
    ::testing::Values(BoundCase{InterpolationStrategy::kMean, 1},
                      BoundCase{InterpolationStrategy::kMean, 5},
                      BoundCase{InterpolationStrategy::kMean, 25},
                      BoundCase{InterpolationStrategy::kMedian, 5},
                      BoundCase{InterpolationStrategy::kMedian, 10},
                      BoundCase{InterpolationStrategy::kRankWeighted, 5},
                      BoundCase{InterpolationStrategy::kRankWeighted, 10}));

}  // namespace
}  // namespace easyc::analysis
