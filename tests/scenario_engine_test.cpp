// Scenario engine: ScenarioSet registry semantics, parallel-vs-serial
// determinism of run_pipeline, and the directional effect of what-if
// overrides.
#include "analysis/scenario.hpp"

#include <gtest/gtest.h>

#include "analysis/pipeline.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace easyc::analysis {
namespace {

namespace sc = scenarios;

// --- registry -------------------------------------------------------

TEST(ScenarioSet, PaperShipsBaselineAndEnhancedInOrder) {
  const auto set = ScenarioSet::paper();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.specs()[0].name, sc::kBaselineName);
  EXPECT_EQ(set.specs()[1].name, sc::kEnhancedName);
  EXPECT_EQ(set.specs()[0].visibility, top500::DataVisibility::kTop500Org);
  EXPECT_EQ(set.specs()[1].visibility,
            top500::DataVisibility::kTop500PlusPublic);
  EXPECT_EQ(set.specs()[1].accelerator_policy,
            model::AcceleratorPolicy::kApproximateWithMainstreamGpu);
}

TEST(ScenarioSet, RegisterListFindRoundTrip) {
  ScenarioSet set;
  ScenarioSpec what_if = sc::enhanced();
  what_if.name = "whatif/custom";
  what_if.pue_override = 1.08;
  set.add(sc::baseline()).add(what_if);

  EXPECT_EQ(set.names(),
            (std::vector<std::string>{"baseline", "whatif/custom"}));
  ASSERT_TRUE(set.contains("whatif/custom"));
  const ScenarioSpec* found = set.find("whatif/custom");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->pue_override, 1.08);
  EXPECT_EQ(&set.at("whatif/custom"), found);
  EXPECT_EQ(set.find("no-such"), nullptr);
  EXPECT_THROW(set.at("no-such"), util::Error);
}

TEST(ScenarioSet, RejectsDuplicateAndEmptyNamesAndBadLifetimes) {
  ScenarioSet set;
  set.add(sc::baseline());
  EXPECT_THROW(set.add(sc::baseline()), util::Error);
  ScenarioSpec unnamed;
  EXPECT_THROW(set.add(unnamed), util::Error);
  ScenarioSpec no_life = sc::enhanced();
  no_life.name = "whatif/zero-life";
  no_life.service_years = 0.0;
  EXPECT_THROW(set.add(no_life), util::Error);
}

TEST(ScenarioSpec, ToOptionsAppliesOverrides) {
  ScenarioSpec s = sc::enhanced();
  s.fab_aci_kg_kwh = 0.1;
  s.default_utilization = 0.5;
  s.aci_override_g_kwh = 30.0;
  s.pue_override = 1.2;
  const auto opt = s.to_options();
  EXPECT_EQ(opt.embodied.accelerator_policy,
            model::AcceleratorPolicy::kApproximateWithMainstreamGpu);
  EXPECT_DOUBLE_EQ(opt.embodied.fab_aci_kg_kwh, 0.1);
  EXPECT_DOUBLE_EQ(opt.operational.default_utilization, 0.5);
  EXPECT_EQ(opt.operational.aci_override_g_kwh, 30.0);
  EXPECT_EQ(opt.operational.pue_override, 1.2);
  // Defaults stay untouched when no override is set.
  const auto plain = sc::enhanced().to_options();
  EXPECT_DOUBLE_EQ(plain.embodied.fab_aci_kg_kwh,
                   model::EmbodiedOptions{}.fab_aci_kg_kwh);
  EXPECT_FALSE(plain.operational.aci_override_g_kwh.has_value());
}

// --- engine ---------------------------------------------------------

TEST(ScenarioEngine, RegisteredScenariosRunAndAreKeyed) {
  PipelineConfig cfg;
  cfg.scenarios = ScenarioSet::paper();
  cfg.scenarios.add(sc::renewables_grid())
      .add(sc::extended_lifetime())
      .add(sc::strict_accelerators());
  const auto r = run_pipeline(cfg);

  ASSERT_EQ(r.scenarios.size(), 5u);
  for (const auto& s : r.scenarios) {
    EXPECT_EQ(s.assessments.size(), r.records.size()) << s.spec.name;
    EXPECT_EQ(s.operational.size(), r.records.size()) << s.spec.name;
  }
  EXPECT_EQ(&r.scenario("whatif/renewables-grid"),
            r.find_scenario("whatif/renewables-grid"));
  EXPECT_EQ(r.find_scenario("no-such"), nullptr);
  EXPECT_THROW(r.scenario("no-such"), util::Error);
  EXPECT_EQ(r.baseline().spec.name, sc::kBaselineName);
  EXPECT_EQ(r.enhanced().spec.name, sc::kEnhancedName);
}

TEST(ScenarioEngine, RejectsImpostorPaperScenarios) {
  // An "enhanced"-named spec with non-paper settings would silently
  // corrupt every figure stage; the engine refuses the reserved name.
  PipelineConfig cfg;
  ScenarioSpec impostor = sc::enhanced();
  impostor.visibility = top500::DataVisibility::kTop500Org;
  cfg.scenarios.add(impostor);
  EXPECT_THROW(run_pipeline(cfg), util::Error);
  // Override-only impostors are rejected too (any field difference).
  PipelineConfig cfg2;
  ScenarioSpec sneaky = sc::renewables_grid();
  sneaky.name = std::string(sc::kEnhancedName);
  sneaky.description = sc::enhanced().description;
  cfg2.scenarios.add(sneaky);
  EXPECT_THROW(run_pipeline(cfg2), util::Error);
  // Re-registering the genuine paper specs is fine.
  PipelineConfig cfg3;
  cfg3.scenarios = ScenarioSet::paper();
  EXPECT_NO_THROW(run_pipeline(cfg3));
}

TEST(ScenarioEngine, PaperPairAlwaysPresent) {
  PipelineConfig cfg;
  cfg.scenarios.add(sc::renewables_grid());  // no baseline/enhanced
  const auto r = run_pipeline(cfg);
  EXPECT_EQ(r.scenarios.size(), 3u);
  EXPECT_NO_THROW(r.baseline());
  EXPECT_NO_THROW(r.enhanced());
}

TEST(ScenarioEngine, ParallelAndSerialResultsAreBitIdentical) {
  PipelineConfig cfg;
  cfg.scenarios = ScenarioSet::paper();
  cfg.scenarios.add(sc::renewables_grid()).add(sc::strict_accelerators());

  par::ThreadPool serial(1);
  par::ThreadPool wide(0);  // hardware concurrency
  PipelineConfig serial_cfg = cfg;
  serial_cfg.pool = &serial;
  PipelineConfig wide_cfg = cfg;
  wide_cfg.pool = &wide;

  const auto a = run_pipeline(serial_cfg);
  const auto b = run_pipeline(wide_cfg);

  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (size_t s = 0; s < a.scenarios.size(); ++s) {
    const auto& sa = a.scenarios[s];
    const auto& sb = b.scenarios[s];
    EXPECT_EQ(sa.spec.name, sb.spec.name);
    EXPECT_EQ(sa.coverage.operational, sb.coverage.operational);
    EXPECT_EQ(sa.coverage.embodied, sb.coverage.embodied);
    ASSERT_EQ(sa.operational.size(), sb.operational.size());
    for (size_t i = 0; i < sa.operational.size(); ++i) {
      EXPECT_EQ(sa.operational[i].has_value(), sb.operational[i].has_value());
      if (sa.operational[i]) {
        EXPECT_DOUBLE_EQ(*sa.operational[i], *sb.operational[i]);
      }
      EXPECT_EQ(sa.embodied[i].has_value(), sb.embodied[i].has_value());
      if (sa.embodied[i]) {
        EXPECT_DOUBLE_EQ(*sa.embodied[i], *sb.embodied[i]);
      }
    }
  }
  EXPECT_DOUBLE_EQ(a.op_total_full_mt, b.op_total_full_mt);
  EXPECT_DOUBLE_EQ(a.emb_total_full_mt, b.emb_total_full_mt);
}

// --- what-if direction ---------------------------------------------

class WhatIfPipeline : public ::testing::Test {
 protected:
  static const PipelineResult& result() {
    static const PipelineResult kResult = [] {
      PipelineConfig cfg;
      cfg.scenarios = ScenarioSet::paper();
      cfg.scenarios.add(sc::renewables_grid())
          .add(sc::extended_lifetime())
          .add(sc::strict_accelerators());
      return run_pipeline(cfg);
    }();
    return kResult;
  }
};

TEST_F(WhatIfPipeline, RenewablesGridSlashesOperationalCarbon) {
  const auto& enh = result().enhanced();
  const auto& green = result().scenario("whatif/renewables-grid");
  // Same data — the override can only rescue systems that previously
  // lacked a grid-intensity entry, never lose one.
  EXPECT_GE(green.coverage.operational, enh.coverage.operational);
  EXPECT_EQ(green.coverage.embodied, enh.coverage.embodied);
  // A ~25 g/kWh grid must cut the fleet operational total several-fold
  // (the covered-world average is hundreds of g/kWh).
  EXPECT_LT(green.total(true), enh.total(true) / 4.0);
  // Embodied carbon is untouched by siting.
  EXPECT_DOUBLE_EQ(green.total(false), enh.total(false));
}

TEST_F(WhatIfPipeline, ExtendedLifetimeLowersAnnualizedTotal) {
  const auto& enh = result().enhanced();
  const auto& ext = result().scenario("whatif/extended-lifetime");
  // Identical per-year and embodied totals; only amortization differs.
  EXPECT_DOUBLE_EQ(ext.total(true), enh.total(true));
  EXPECT_DOUBLE_EQ(ext.total(false), enh.total(false));
  EXPECT_LT(ext.annualized_total_mt(), enh.annualized_total_mt());
}

TEST_F(WhatIfPipeline, StrictAcceleratorsGiveUpEmbodiedCoverage) {
  const auto& enh = result().enhanced();
  const auto& strict = result().scenario("whatif/no-accelerator-approximation");
  // Declining to proxy unknown accelerators loses embodied estimates
  // (the paper's baseline-coverage behaviour) without touching the
  // operational side.
  EXPECT_LT(strict.coverage.embodied, enh.coverage.embodied);
  EXPECT_EQ(strict.coverage.operational, enh.coverage.operational);
}

}  // namespace
}  // namespace easyc::analysis
