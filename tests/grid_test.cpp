#include <gtest/gtest.h>

#include "grid/aci.hpp"
#include "grid/pue.hpp"

namespace easyc::grid {
namespace {

TEST(AciDatabase, CountryLookupIsCaseInsensitive) {
  const auto& db = AciDatabase::builtin();
  ASSERT_TRUE(db.country_aci("United States"));
  EXPECT_EQ(*db.country_aci("united states"), *db.country_aci("UNITED STATES"));
}

TEST(AciDatabase, UnknownCountryReturnsNullopt) {
  EXPECT_FALSE(AciDatabase::builtin().country_aci("Atlantis").has_value());
  EXPECT_FALSE(AciDatabase::builtin().country_aci("").has_value());
}

TEST(AciDatabase, KnownValuesMatchEmbeddedTable) {
  const auto& db = AciDatabase::builtin();
  EXPECT_DOUBLE_EQ(*db.country_aci("Finland"), 79);
  EXPECT_DOUBLE_EQ(*db.country_aci("Italy"), 331);
  EXPECT_DOUBLE_EQ(*db.country_aci("Norway"), 29);
  EXPECT_DOUBLE_EQ(*db.country_aci("India"), 713);
}

TEST(AciDatabase, CleanVsDirtyGridSpreadIsLarge) {
  // The LUMI-vs-Leonardo contrast (4.3x operational carbon at similar
  // power) depends on this spread existing.
  const auto& db = AciDatabase::builtin();
  EXPECT_GT(*db.country_aci("India") / *db.country_aci("Norway"), 20.0);
}

TEST(AciDatabase, RegionRefinementLookup) {
  const auto& db = AciDatabase::builtin();
  auto refined = db.region_aci("United States", "California");
  ASSERT_TRUE(refined);
  EXPECT_LT(*refined, *db.country_aci("United States"));
  EXPECT_FALSE(db.region_aci("United States", "Narnia").has_value());
  EXPECT_FALSE(db.region_aci("United States", "").has_value());
}

TEST(AciDatabase, BestAciPrefersRegion) {
  const auto& db = AciDatabase::builtin();
  EXPECT_EQ(*db.best_aci("United States", "California"),
            *db.region_aci("United States", "California"));
  EXPECT_EQ(*db.best_aci("United States", "Narnia"),
            *db.country_aci("United States"));
  EXPECT_FALSE(db.best_aci("Atlantis", "").has_value());
}

TEST(AciDatabase, CustomDatabase) {
  AciDatabase db;
  EXPECT_EQ(db.size(), 0u);
  db.add({"Testland", 100.0, false});
  db.add({"Testland/North", 10.0, true});
  EXPECT_DOUBLE_EQ(*db.best_aci("Testland", "North"), 10.0);
  EXPECT_DOUBLE_EQ(*db.best_aci("Testland", "South"), 100.0);
}

TEST(Pue, FacilityClassOrdering) {
  EXPECT_LT(default_pue(FacilityClass::kLeadershipLiquidCooled, 2024),
            default_pue(FacilityClass::kModernDataCenter, 2024));
  EXPECT_LT(default_pue(FacilityClass::kModernDataCenter, 2024),
            default_pue(FacilityClass::kLegacyMachineRoom, 2024));
}

TEST(Pue, ImprovesOverYearsAndClamps) {
  EXPECT_LE(default_pue(FacilityClass::kLegacyMachineRoom, 2024),
            default_pue(FacilityClass::kLegacyMachineRoom, 2016));
  for (int year : {2000, 2015, 2024, 2040}) {
    for (auto cls : {FacilityClass::kLeadershipLiquidCooled,
                     FacilityClass::kModernDataCenter,
                     FacilityClass::kLegacyMachineRoom}) {
      const double p = default_pue(cls, year);
      EXPECT_GE(p, 1.03);
      EXPECT_LE(p, 2.0);
    }
  }
}

TEST(Pue, InferenceBySize) {
  EXPECT_EQ(infer_facility_class(20000, 2022),
            FacilityClass::kLeadershipLiquidCooled);
  EXPECT_EQ(infer_facility_class(1500, 2018),
            FacilityClass::kModernDataCenter);
  EXPECT_EQ(infer_facility_class(300, 2016),
            FacilityClass::kLegacyMachineRoom);
  // Recent installs are modern even when small.
  EXPECT_EQ(infer_facility_class(300, 2023),
            FacilityClass::kModernDataCenter);
}

}  // namespace
}  // namespace easyc::grid
