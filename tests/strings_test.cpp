#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace easyc::util {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-op"), "no-op");
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(Case, LowerUpper) {
  EXPECT_EQ(to_lower("AMD EPYC 9654"), "amd epyc 9654");
  EXPECT_EQ(to_upper("hbm2e"), "HBM2E");
}

TEST(Case, IequalsAndContains) {
  EXPECT_TRUE(iequals("LUMI", "lumi"));
  EXPECT_FALSE(iequals("LUMI", "LUMI-C"));
  EXPECT_TRUE(icontains("NVIDIA H100 SXM", "h100"));
  EXPECT_FALSE(icontains("NVIDIA A100", "h100"));
  EXPECT_TRUE(icontains("anything", ""));
  EXPECT_FALSE(icontains("", "x"));
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("s3.cpu.count", "s3."));
  EXPECT_FALSE(starts_with("s2.x", "s3."));
  EXPECT_FALSE(starts_with("s", "s3."));
}

struct ParseCase {
  const char* text;
  bool ok;
  double value;
};

class ParseDoubleTest : public ::testing::TestWithParam<ParseCase> {};

TEST_P(ParseDoubleTest, ParsesOrRejects) {
  const auto& c = GetParam();
  auto v = parse_double(c.text);
  EXPECT_EQ(v.has_value(), c.ok) << c.text;
  if (c.ok) {
    EXPECT_DOUBLE_EQ(*v, c.value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseDoubleTest,
    ::testing::Values(ParseCase{"1.5", true, 1.5},
                      ParseCase{"  42 ", true, 42.0},
                      ParseCase{"-3.25", true, -3.25},
                      ParseCase{"1e3", true, 1000.0},
                      ParseCase{"", false, 0},
                      ParseCase{"  ", false, 0},
                      ParseCase{"abc", false, 0},
                      ParseCase{"1.5x", false, 0},
                      ParseCase{"nan", false, 0},
                      ParseCase{"inf", false, 0}));

TEST(ParseInt, Basic) {
  EXPECT_EQ(parse_int("123"), 123);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_FALSE(parse_int("1.5"));
  EXPECT_FALSE(parse_int(""));
  EXPECT_FALSE(parse_int("12a"));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(12.50, 2), "12.5");
  EXPECT_EQ(format_double(12.0, 2), "12");
  EXPECT_EQ(format_double(0.125, 2), "0.12");  // round-half-even
  EXPECT_EQ(format_double(0.126, 2), "0.13");
  EXPECT_EQ(format_double(-0.0001, 2), "0");   // -0 normalized
  EXPECT_EQ(format_double(3.14159, 4), "3.1416");
}

TEST(WithCommas, GroupsThousands) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace easyc::util
