#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/error.hpp"

namespace easyc::util {
namespace {

TEST(CsvParse, SimpleTable) {
  auto t = CsvTable::parse("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.cell(0, "a"), "1");
  EXPECT_EQ(t.cell(1, "c"), "6");
}

TEST(CsvParse, QuotedFieldsWithSeparatorsAndNewlines) {
  auto t = CsvTable::parse("name,notes\n\"Doe, Jane\",\"line1\nline2\"\n");
  EXPECT_EQ(t.cell(0, "name"), "Doe, Jane");
  EXPECT_EQ(t.cell(0, "notes"), "line1\nline2");
}

TEST(CsvParse, DoubledQuoteEscape) {
  auto t = CsvTable::parse("x\n\"he said \"\"hi\"\"\"\n");
  EXPECT_EQ(t.cell(0, 0), "he said \"hi\"");
}

TEST(CsvParse, CrLfLineEndings) {
  auto t = CsvTable::parse("a,b\r\n1,2\r\n");
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.cell(0, "b"), "2");
}

TEST(CsvParse, MissingTrailingNewline) {
  auto t = CsvTable::parse("a,b\n1,2");
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.cell(0, "b"), "2");
}

TEST(CsvParse, StrictArityMismatchThrows) {
  EXPECT_THROW(CsvTable::parse("a,b\n1\n"), ParseError);
}

TEST(CsvParse, LenientArityPads) {
  auto t = CsvTable::parse("a,b\n1\n", /*strict=*/false);
  EXPECT_EQ(t.cell(0, "b"), "");
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(CsvTable::parse("a\n\"oops\n"), ParseError);
}

TEST(CsvParse, EmptyInputThrows) {
  EXPECT_THROW(CsvTable::parse(""), ParseError);
}

TEST(CsvColumns, LookupAndThrow) {
  auto t = CsvTable::parse("x,y\n1,2\n");
  EXPECT_EQ(t.column("y"), 1u);
  EXPECT_FALSE(t.column("z").has_value());
  EXPECT_THROW(t.column_or_throw("z"), LookupError);
}

TEST(CsvTyped, DoubleAndIntAccessors) {
  auto t = CsvTable::parse("v,w\n1.5,\nx,7\n");
  EXPECT_DOUBLE_EQ(*t.cell_double(0, "v"), 1.5);
  EXPECT_FALSE(t.cell_double(0, "w").has_value());  // empty
  EXPECT_FALSE(t.cell_double(1, "v").has_value());  // malformed
  EXPECT_EQ(*t.cell_int(1, "w"), 7);
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvRoundTrip, ParseSerializeParseIsIdentity) {
  CsvTable t({"name", "value", "notes"});
  t.add_row({"plain", "1", ""});
  t.add_row({"with,comma", "2", "quote\"inside"});
  t.add_row({"multi\nline", "3", "  spaces kept  "});
  auto again = CsvTable::parse(t.to_string());
  ASSERT_EQ(again.num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_cols(); ++c) {
      EXPECT_EQ(again.cell(r, c), t.cell(r, c)) << r << "," << c;
    }
  }
}

TEST(CsvFile, WriteAndReadBack) {
  CsvTable t({"a", "b"});
  t.add_row({"1", "x,y"});
  const std::string path = ::testing::TempDir() + "/easyc_csv_test.csv";
  t.write_file(path);
  auto back = CsvTable::read_file(path);
  EXPECT_EQ(back.cell(0, "b"), "x,y");
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(CsvTable::read_file("/nonexistent/easyc.csv"), ParseError);
}

}  // namespace
}  // namespace easyc::util
