#include "easyc/embodied.hpp"

#include <gtest/gtest.h>

namespace easyc::model {
namespace {

Inputs cpu_system() {
  Inputs in;
  in.name = "cpusys";
  in.country = "France";
  in.rmax_tflops = 5000;
  in.rpeak_tflops = 7000;
  in.total_cores = 128000;
  in.processor = "AMD EPYC 7763 64C 2.45GHz";
  in.operation_year = 2021;
  return in;
}

Inputs gpu_system() {
  Inputs in = cpu_system();
  in.name = "gpusys";
  in.accelerator = "NVIDIA A100 SXM4 80 GB";
  in.num_nodes = 500;
  in.num_cpus = 1000;
  in.num_gpus = 2000;
  return in;
}

TEST(Breakdown, ComponentsSumToTotal) {
  auto r = assess_embodied(gpu_system());
  ASSERT_TRUE(r.ok());
  const auto& b = r.value();
  EXPECT_NEAR(b.total_mt,
              b.cpu_mt + b.gpu_mt + b.memory_mt + b.storage_mt +
                  b.platform_mt + b.interconnect_mt,
              1e-9);
  EXPECT_GT(b.cpu_mt, 0);
  EXPECT_GT(b.gpu_mt, 0);
  EXPECT_GT(b.memory_mt, 0);
  EXPECT_GT(b.storage_mt, 0);
  EXPECT_GT(b.platform_mt, 0);
  EXPECT_GT(b.interconnect_mt, 0);
}

TEST(CpuOnly, AssessableFromCoresAndCatalogCpu) {
  // The paper's ranks-151-500 finding: CPU-only systems need only the
  // Top500.org core counts.
  auto r = assess_embodied(cpu_system());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().gpu_mt, 0.0);
  EXPECT_TRUE(r.value().used_memory_default);
  EXPECT_TRUE(r.value().used_storage_default);
}

TEST(CpuOnly, ExoticDeviceDeclines) {
  Inputs in = cpu_system();
  in.processor = "Sunway SW26010 260C 1.45GHz";
  auto r = assess_embodied(in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.reasons_joined().find("not in catalog"), std::string::npos);
}

TEST(CpuOnly, UnknownButMainstreamUsesGenericSilicon) {
  Inputs in = cpu_system();
  in.processor = "Intel Xeon Platinum 9993 48C";  // not a catalog part
  in.num_cpus = 2000;
  auto r = assess_embodied(in);
  EXPECT_TRUE(r.ok());
}

TEST(Accelerated, NeedsGpuCount) {
  Inputs in = gpu_system();
  in.num_gpus.reset();
  auto r = assess_embodied(in);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.reasons_joined().find("GPU count"), std::string::npos);
}

TEST(Accelerated, StrictPolicyDeclinesUnknownAccelerator) {
  Inputs in = gpu_system();
  in.accelerator = "NVIDIA GPU";  // vague string
  EmbodiedOptions strict;
  strict.accelerator_policy = AcceleratorPolicy::kStrict;
  EXPECT_FALSE(assess_embodied(in, strict).ok());
}

TEST(Accelerated, ApproximatePolicyUsesProxyAndFlagsIt) {
  Inputs in = gpu_system();
  in.accelerator = "NVIDIA GPU";
  EmbodiedOptions approx;
  approx.accelerator_policy =
      AcceleratorPolicy::kApproximateWithMainstreamGpu;
  auto r = assess_embodied(in, approx);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().used_gpu_proxy);
}

TEST(Accelerated, ProxyUnderestimatesBespokeSilicon) {
  // The paper: approximating novel accelerators with mainstream GPUs
  // produces systematic underestimates. MI300A (9.2 cm2 + HBM3) vs the
  // A100-class proxy of its era.
  Inputs real = gpu_system();
  real.operation_year = 2021;
  real.accelerator = "AMD Instinct MI250X";
  auto exact = assess_embodied(real);
  Inputs hidden = real;
  hidden.accelerator = "Unknown Accelerator X";
  EmbodiedOptions approx;
  approx.accelerator_policy =
      AcceleratorPolicy::kApproximateWithMainstreamGpu;
  auto proxied = assess_embodied(hidden, approx);
  ASSERT_TRUE(exact.ok() && proxied.ok());
  EXPECT_LT(proxied.value().gpu_mt, exact.value().gpu_mt);
}

TEST(Memory, ReportedCapacityOverridesDefault) {
  Inputs in = gpu_system();
  in.memory_gb = 1.0e6;
  in.memory_type = "HBM3";
  auto with_data = assess_embodied(in);
  ASSERT_TRUE(with_data.ok());
  EXPECT_FALSE(with_data.value().used_memory_default);
  // HBM3 at 0.88 kg/GB: 1e6 GB -> 880 MT.
  EXPECT_NEAR(with_data.value().memory_mt, 880.0, 1.0);
}

TEST(Storage, ReportedCapacityOverridesDefault) {
  Inputs in = gpu_system();
  in.ssd_tb = 10000;
  auto r = assess_embodied(in);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().used_storage_default);
  EXPECT_NEAR(r.value().storage_mt, 10000 * 130.0 / 1000.0, 1e-6);
}

TEST(Storage, DefaultIsCappedForHugeNodeCounts) {
  Inputs in = cpu_system();
  in.num_nodes = 150000;
  in.num_cpus = 150000;
  EmbodiedOptions opt;
  auto r = assess_embodied(in, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value().storage_mt,
            opt.default_ssd_cap_tb * 130.0 / 1000.0 + 1e-9);
}

TEST(Counts, DualSocketPriorWhenOnlyNodesKnown) {
  Inputs in = cpu_system();
  in.num_nodes = 1000;  // no num_cpus
  auto with_nodes = assess_embodied(in);
  Inputs in2 = cpu_system();
  in2.num_nodes = 1000;
  in2.num_cpus = 2000;
  auto with_both = assess_embodied(in2);
  ASSERT_TRUE(with_nodes.ok() && with_both.ok());
  EXPECT_NEAR(with_nodes.value().cpu_mt, with_both.value().cpu_mt, 1e-9);
}

// Property: embodied carbon is monotone in system size.
class ScaleSweep : public ::testing::TestWithParam<long long> {};

TEST_P(ScaleSweep, CarbonGrowsWithNodeCount) {
  Inputs small = gpu_system();
  small.num_nodes = GetParam();
  small.num_cpus = 2 * GetParam();
  small.num_gpus = 4 * GetParam();
  Inputs big = gpu_system();
  big.num_nodes = 2 * GetParam();
  big.num_cpus = 4 * GetParam();
  big.num_gpus = 8 * GetParam();
  auto s = assess_embodied(small);
  auto b = assess_embodied(big);
  ASSERT_TRUE(s.ok() && b.ok());
  EXPECT_GT(b.value().total_mt, s.value().total_mt);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScaleSweep,
                         ::testing::Values(10LL, 100LL, 1000LL, 5000LL));

TEST(FabSiting, CleanFabReducesSiliconCarbon) {
  EmbodiedOptions clean;
  clean.fab_aci_kg_kwh = 0.05;
  EmbodiedOptions dirty;
  dirty.fab_aci_kg_kwh = 0.8;
  auto c = assess_embodied(gpu_system(), clean);
  auto d = assess_embodied(gpu_system(), dirty);
  ASSERT_TRUE(c.ok() && d.ok());
  EXPECT_LT(c.value().gpu_mt, d.value().gpu_mt);
  EXPECT_LT(c.value().cpu_mt, d.value().cpu_mt);
  // Memory/storage coefficients are independent of the logic fab knob.
  EXPECT_DOUBLE_EQ(c.value().memory_mt, d.value().memory_mt);
}

TEST(Platform, DenseBladesLighterThanGpuChassis) {
  // Per-node platform carbon must scale with node composition.
  Inputs blade = cpu_system();
  blade.processor = "A64FX 48C 2.2GHz";
  blade.total_cores = 48 * 10000;
  blade.num_nodes = 10000;
  blade.num_cpus = 10000;
  Inputs chassis = gpu_system();
  chassis.num_nodes = 10000;
  chassis.num_cpus = 20000;
  chassis.num_gpus = 80000;
  auto b = assess_embodied(blade);
  auto c = assess_embodied(chassis);
  ASSERT_TRUE(b.ok() && c.ok());
  EXPECT_LT(b.value().platform_mt, c.value().platform_mt);
}

}  // namespace
}  // namespace easyc::model
