#include "ghg/protocol.hpp"

#include <gtest/gtest.h>

namespace easyc::ghg {
namespace {

TEST(Requirements, ManifestIsDataHungry) {
  // The paper contrasts EasyC's 7 metrics with the GHG protocol's
  // "hundreds of metrics"; the manifest must be genuinely large.
  EXPECT_GT(requirements().size(), 150u);
  EXPECT_GT(num_required_items(), 50u);
  // And far more than EasyC's nine.
  EXPECT_GT(num_required_items(), 9u * 5u);
}

TEST(Requirements, CoverAllThreeScopes) {
  bool s1 = false, s2 = false, s3 = false;
  for (const auto& item : requirements()) {
    if (item.scope == Scope::kScope1) s1 = true;
    if (item.scope == Scope::kScope2) s2 = true;
    if (item.scope == Scope::kScope3) s3 = true;
  }
  EXPECT_TRUE(s1 && s2 && s3);
}

Inventory full_inventory() {
  Inventory inv;
  for (const auto& item : requirements()) inv[item.key] = 0.0;
  // A present market-based factor overrides the location factor, so the
  // baseline inventory must not carry one.
  inv.erase("s2.grid_aci_market");
  inv["s1.diesel_litres"] = 10000;          // 26.8 MT
  inv["s1.refrigerant_kg_leaked"] = 100;    // 143 MT
  inv["s2.metered_kwh"] = 5.0e7;
  inv["s2.grid_aci_location"] = 400;        // 20000 MT
  inv["s3.cpu.count"] = 10000;
  inv["s3.cpu.mfg_kgco2e"] = 30;            // 300 MT
  inv["s3.construction_amortized_kgco2e"] = 5.0e5;  // 500 MT
  return inv;
}

TEST(Calculator, EmptyInventoryCannotAssess) {
  ProtocolCalculator calc;
  Inventory empty;
  EXPECT_FALSE(calc.can_assess(empty));
  auto r = calc.assess(empty);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.reasons_joined().find("required data items missing"),
            std::string::npos);
}

TEST(Calculator, MissingItemsListShrinksAsDataAdded) {
  ProtocolCalculator calc;
  Inventory inv;
  const size_t all = calc.missing_items(inv).size();
  inv["s2.metered_kwh"] = 1e6;
  inv["s2.grid_aci_location"] = 400;
  EXPECT_EQ(calc.missing_items(inv).size(), all - 2);
}

TEST(Calculator, FullInventoryComputesScopes) {
  ProtocolCalculator calc;
  auto r = calc.assess(full_inventory());
  ASSERT_TRUE(r.ok());
  const auto& v = r.value();
  EXPECT_NEAR(v.scope1_mt, 26.8 + 143.0, 0.5);
  EXPECT_NEAR(v.scope2_mt, 20000.0, 1.0);
  EXPECT_NEAR(v.scope3_mt, 800.0, 1.0);
  EXPECT_NEAR(v.total_mt(), v.scope1_mt + v.scope2_mt + v.scope3_mt, 1e-9);
}

TEST(Calculator, MarketBasedFactorOverridesLocation) {
  ProtocolCalculator calc;
  auto inv = full_inventory();
  inv["s2.grid_aci_market"] = 0.0;  // 100% renewable contract
  auto r = calc.assess(inv);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().scope2_mt, 0.0, 1e-9);
}

TEST(Calculator, OnsiteGenerationOffsetsAndClamps) {
  ProtocolCalculator calc;
  auto inv = full_inventory();
  inv["s2.onsite_solar_kwh"] = 1.0e8;  // more than consumption
  auto r = calc.assess(inv);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().scope2_mt, 0.0);  // never negative
}

TEST(Calculator, OptionalItemsDoNotGate) {
  ProtocolCalculator calc;
  auto inv = full_inventory();
  // Remove an optional item: assessment must still proceed.
  inv.erase("s3.staff_commuting_km");
  EXPECT_TRUE(calc.assess(inv).ok());
  // Remove a required one: it must not.
  inv.erase("s3.gpu.count");
  EXPECT_FALSE(calc.assess(inv).ok());
}


TEST(InventoryOverlap, EasyCMetricsBarelyDentTheProtocol) {
  // Even a fully-populated EasyC input covers only a small fraction of
  // the protocol's required items — the paper's Fig.-1 contrast.
  model::Inputs in;
  in.name = "overlap";
  in.country = "Germany";
  in.total_cores = 100000;
  in.processor = "AMD EPYC 7763 64C";
  in.operation_year = 2022;
  in.num_nodes = 1000;
  in.num_gpus = 4000;
  in.num_cpus = 2000;
  in.memory_gb = 512000;
  in.memory_type = "DDR4";
  in.ssd_tb = 9000;
  in.utilization = 0.8;
  in.annual_energy_kwh = 1.0e7;
  const auto overlap = inventory_from_easyc(in);
  EXPECT_GT(overlap.derivable, 5u);
  EXPECT_LT(overlap.fraction(), 0.35);
  EXPECT_EQ(overlap.required_total, num_required_items());
  // And the partial inventory still cannot drive a full assessment.
  ProtocolCalculator calc;
  EXPECT_FALSE(calc.can_assess(overlap.partial));
}

TEST(InventoryOverlap, EmptyInputsDeriveAlmostNothing) {
  model::Inputs in;
  in.name = "bare";
  const auto overlap = inventory_from_easyc(in);
  EXPECT_LE(overlap.derivable, 1u);
}

}  // namespace
}  // namespace easyc::ghg
