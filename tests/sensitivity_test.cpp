// Sensitivity kernel edge cases (the Fig.-9 machinery the sweep engine
// reuses as its tornado inner loop): populations with no overlap
// between the two scenarios, newly covered systems that must only
// reach the aggregates, and the zero-baseline percent guard.
#include "analysis/sensitivity.hpp"

#include <gtest/gtest.h>

#include "analysis/assessment_engine.hpp"

namespace easyc::analysis {
namespace {

std::vector<top500::SystemRecord> ranked_records(int n) {
  std::vector<top500::SystemRecord> records(n);
  for (int i = 0; i < n; ++i) {
    records[i].rank = i + 1;
    records[i].name = "sys-" + std::to_string(i + 1);
  }
  return records;
}

// A hand-built scenario result: the kernel only reads the carbon
// series (and the spec's service life through total()).
ScenarioResults results_with(std::string name, CarbonSeries operational,
                             CarbonSeries embodied) {
  ScenarioResults r;
  r.spec.name = std::move(name);
  r.operational = std::move(operational);
  r.embodied = std::move(embodied);
  return r;
}

TEST(Sensitivity, EmptyOverlapPopulationYieldsNoDeltas) {
  // The two scenarios cover disjoint systems: the per-system Fig.-9
  // population is empty, but the aggregate comparison still holds —
  // each side's total is its own covered sum.
  const auto records = ranked_records(2);
  const auto base =
      results_with("base", {10.0, std::nullopt}, {4.0, std::nullopt});
  const auto enh =
      results_with("enh", {std::nullopt, 30.0}, {std::nullopt, 9.0});

  const SensitivityReport s = sensitivity(records, base, enh);
  EXPECT_TRUE(s.operational.empty());
  EXPECT_TRUE(s.embodied.empty());
  EXPECT_DOUBLE_EQ(s.op_max_abs_pct, 0.0);
  EXPECT_DOUBLE_EQ(s.emb_max_abs_pct, 0.0);
  EXPECT_DOUBLE_EQ(s.op_total_baseline_mt, 10.0);
  EXPECT_DOUBLE_EQ(s.op_total_enhanced_mt, 30.0);
  EXPECT_DOUBLE_EQ(s.emb_total_baseline_mt, 4.0);
  EXPECT_DOUBLE_EQ(s.emb_total_enhanced_mt, 9.0);
  EXPECT_DOUBLE_EQ(s.op_total_pct, 200.0);
  EXPECT_DOUBLE_EQ(s.emb_total_pct, 125.0);
}

TEST(Sensitivity, NewlyCoveredSystemsCountOnlyInAggregates) {
  // System 2 gains coverage under the enhanced scenario. The paper
  // excludes it from the per-system Fig.-9 deltas (there is no
  // baseline value to compare against) and reports it through the
  // aggregate change instead.
  const auto records = ranked_records(2);
  const auto base = results_with("base", {10.0, std::nullopt},
                                 {4.0, std::nullopt});
  const auto enh = results_with("enh", {12.0, 30.0}, {5.0, 9.0});

  const SensitivityReport s = sensitivity(records, base, enh);
  ASSERT_EQ(s.operational.size(), 1u);
  EXPECT_EQ(s.operational[0].rank, 1);
  EXPECT_DOUBLE_EQ(s.operational[0].delta_mt, 2.0);
  EXPECT_DOUBLE_EQ(s.operational[0].pct, 20.0);
  EXPECT_DOUBLE_EQ(s.op_max_abs_pct, 20.0);  // system 2 not consulted

  ASSERT_EQ(s.embodied.size(), 1u);
  EXPECT_DOUBLE_EQ(s.embodied[0].delta_mt, 1.0);

  // Aggregates include the newly covered system on the enhanced side.
  EXPECT_DOUBLE_EQ(s.op_total_baseline_mt, 10.0);
  EXPECT_DOUBLE_EQ(s.op_total_enhanced_mt, 42.0);
  EXPECT_DOUBLE_EQ(s.op_total_pct, 320.0);
  EXPECT_DOUBLE_EQ(s.emb_total_enhanced_mt, 14.0);
}

TEST(Sensitivity, ZeroBaselineDeltaReportsZeroPercent) {
  // A covered-but-zero baseline value cannot anchor a percent change;
  // the kernel reports the absolute delta and a 0% (not inf/NaN).
  const auto records = ranked_records(1);
  const auto base = results_with("base", {0.0}, {0.0});
  const auto enh = results_with("enh", {5.0}, {2.0});

  const SensitivityReport s = sensitivity(records, base, enh);
  ASSERT_EQ(s.operational.size(), 1u);
  EXPECT_DOUBLE_EQ(s.operational[0].delta_mt, 5.0);
  EXPECT_DOUBLE_EQ(s.operational[0].pct, 0.0);
  EXPECT_DOUBLE_EQ(s.op_max_abs_pct, 0.0);
  // The aggregate guard matches: pct_change(0, x) is defined as 0.
  EXPECT_DOUBLE_EQ(s.op_total_pct, 0.0);
}

}  // namespace
}  // namespace easyc::analysis
