#include "util/ascii.hpp"

#include <gtest/gtest.h>

namespace easyc::util {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "20"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric column right-aligned: " 1" appears under "20"-width column.
  EXPECT_NE(out.find(" 1\n"), std::string::npos);
}

TEST(TextTable, MixedColumnNotNumericAligned) {
  TextTable t({"c"});
  t.add_row({"12"});
  t.add_row({"abc"});
  const std::string out = t.render();
  // "12 " (left aligned) rather than " 12".
  EXPECT_NE(out.find("12\n"), std::string::npos);
}

TEST(BarChart, ScalesToWidth) {
  const std::string out = bar_chart({{"a", 10.0}, {"b", 5.0}}, 10, "title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("##########"), std::string::npos);  // max bar full
  EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(BarChart, NegativeValuesUseDashes) {
  const std::string out = bar_chart({{"down", -4.0}, {"up", 4.0}}, 8);
  EXPECT_NE(out.find("--------"), std::string::npos);
}

TEST(BarChart, EmptyAndZero) {
  EXPECT_NE(bar_chart({}, 10).find("(no data)"), std::string::npos);
  // All-zero values must not divide by zero.
  const std::string out = bar_chart({{"z", 0.0}}, 10);
  EXPECT_NE(out.find("z"), std::string::npos);
}

TEST(SeriesPlot, ContainsAxesAndGlyphs) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {10, 20, 15, 40, 5};
  const std::string out = series_plot(xs, ys, 20, 8, "plot");
  EXPECT_NE(out.find("plot"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("x: 1 .. 5"), std::string::npos);
}

TEST(SeriesPlot, EmptyInput) {
  EXPECT_NE(series_plot({}, {}, 20, 8).find("(no data)"),
            std::string::npos);
}

TEST(DualSeriesPlot, BothGlyphsPresent) {
  std::vector<double> xs = {1, 2, 3};
  const std::string out =
      dual_series_plot(xs, {1, 2, 3}, {3, 2, 1}, 20, 8);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(SeriesPlot, ConstantSeriesDoesNotCrash) {
  std::vector<double> xs = {1, 2, 3};
  std::vector<double> ys = {5, 5, 5};
  EXPECT_FALSE(series_plot(xs, ys, 20, 8).empty());
}

}  // namespace
}  // namespace easyc::util
