// Protocol layer of the assessment server: request parsing (including
// the rejection matrix for malformed lines — same posture as the cache
// codec's corruption matrix), reply framing, and the line reader's
// bounded-buffer behavior.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace service = easyc::service;
namespace analysis = easyc::analysis;

namespace {

TEST(ParseRequest, VerbsAndDefaults) {
  EXPECT_EQ(service::parse_request("ping").verb, service::Verb::kPing);
  EXPECT_EQ(service::parse_request("version").verb, service::Verb::kVersion);
  EXPECT_EQ(service::parse_request("shutdown").verb,
            service::Verb::kShutdown);

  const service::Request assess = service::parse_request("assess");
  EXPECT_EQ(assess.verb, service::Verb::kAssess);
  EXPECT_TRUE(assess.scenario.empty());
  EXPECT_TRUE(assess.id.empty());

  const service::Request turnover = service::parse_request("turnover");
  EXPECT_EQ(turnover.verb, service::Verb::kTurnover);
  EXPECT_EQ(turnover.editions, 8);
}

TEST(ParseRequest, AllKeys) {
  const service::Request assess = service::parse_request(
      "assess scenario=baseline set=aci=100;life=4 id=a-7");
  EXPECT_EQ(assess.scenario, "baseline");
  EXPECT_EQ(assess.overrides, "aci=100;life=4");
  EXPECT_EQ(assess.id, "a-7");

  const service::Request turnover =
      service::parse_request("turnover editions=12");
  EXPECT_EQ(turnover.editions, 12);

  const service::Request sweep = service::parse_request(
      "sweep axes=aci=25:600:6;pue=1.1,1.3 base=baseline batch=32 "
      "stats=streaming records=100 refine=2@2");
  EXPECT_EQ(sweep.axes, "aci=25:600:6;pue=1.1,1.3");
  EXPECT_EQ(sweep.base, "baseline");
  EXPECT_EQ(sweep.batch, 32u);
  EXPECT_EQ(sweep.stats, analysis::SweepStatsMode::kStreaming);
  EXPECT_EQ(sweep.records, 100u);
  ASSERT_TRUE(sweep.refine.has_value());
  EXPECT_EQ(sweep.refine->top_axes, 2u);
  EXPECT_EQ(sweep.refine->rounds, 2u);
}

TEST(ParseRequest, WhitespaceIsFlexible) {
  const service::Request req =
      service::parse_request("  turnover \t editions=4  ");
  EXPECT_EQ(req.verb, service::Verb::kTurnover);
  EXPECT_EQ(req.editions, 4);
}

// The rejection matrix: every malformed line raises a clean
// ProtocolError (caught by the session loop and turned into an err
// reply) — never a crash, never a silently-ignored key.
TEST(ParseRequest, RejectionMatrix) {
  const std::vector<std::string> bad = {
      "",                                // empty
      "   ",                             // whitespace only
      "frobnicate",                      // unknown verb
      "PING",                            // verbs are case-sensitive
      "ping extra",                      // token without '='
      "ping =value",                     // empty key
      "ping id=",                        // empty value
      "ping color=red",                  // key the verb does not take
      "assess axes=aci=1,2",             // sweep key on assess
      "assess scenario=a scenario=b",    // duplicate key
      "turnover editions=abc",           // not a number
      "turnover editions=1",             // below minimum
      "turnover editions=0",
      "turnover editions=-3",
      "turnover editions=9999",          // above kMaxTurnoverEditions
      "sweep",                           // missing axes=
      "sweep base=baseline",             // still missing axes=
      "sweep axes=aci=1,2 batch=0",      // batch must be positive
      "sweep axes=aci=1,2 records=0",
      "sweep axes=aci=1,2 stats=bogus",
      "sweep axes=aci=1,2 refine=2",     // refine wants K@R
      "sweep axes=aci=1,2 refine=0@1",
      "sweep axes=aci=1,2 refine=1@0",
      "ping id=" + std::string(service::kMaxRequestIdBytes + 1, 'x'),
      "ping id=\x01"
      "bad",                             // non-printable id
  };
  for (const std::string& line : bad) {
    EXPECT_THROW(service::parse_request(line), easyc::util::Error)
        << "accepted: '" << line << "'";
  }
}

TEST(ParseRefine, RoundTripAndRejects) {
  const analysis::RefineOptions r = service::parse_refine("3@2");
  EXPECT_EQ(r.top_axes, 3u);
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_THROW(service::parse_refine("3"), easyc::util::ParseError);
  EXPECT_THROW(service::parse_refine("@2"), easyc::util::ParseError);
  EXPECT_THROW(service::parse_refine("a@b"), easyc::util::ParseError);
}

TEST(FrameReply, GoldenBytes) {
  service::Reply reply;
  reply.id = "7";
  reply.ok = true;
  reply.payload = "pong\n";
  reply.notes = {"warmed up", "multi\nline note"};
  reply.stats.delta = {.hits = 3, .misses = 1, .evictions = 0, .entries = 9};
  reply.stats.cumulative = {
      .hits = 30, .misses = 10, .evictions = 2, .entries = 9};
  reply.stats.served = 5;
  EXPECT_EQ(service::frame_reply(reply),
            "reply 7 ok 5\n"
            "pong\n"
            "note 7 warmed up\n"
            "note 7 multi line note\n"  // newline flattened
            "stats 7 hits=3 misses=1 evictions=0 entries=9 cum-hits=30 "
            "cum-misses=10 served=5\n");

  service::Reply err;
  err.id = "9";
  err.ok = false;
  err.payload = "protocol error: nope\n";
  EXPECT_EQ(service::frame_reply(err),
            "reply 9 err 21\n"
            "protocol error: nope\n"
            "stats 9 hits=0 misses=0 evictions=0 entries=0 cum-hits=0 "
            "cum-misses=0 served=0\n");
}

std::vector<std::pair<service::LineReader::Event, std::string>> drain(
    service::ByteSource& source, size_t max_line) {
  service::LineReader reader(source, max_line);
  std::vector<std::pair<service::LineReader::Event, std::string>> events;
  std::string line;
  for (;;) {
    const auto event = reader.next(line);
    events.emplace_back(event, event == service::LineReader::Event::kLine
                                   ? line
                                   : std::string());
    if (event == service::LineReader::Event::kEof) return events;
  }
}

TEST(LineReader, SplitsAndStripsCr) {
  service::StringSource source("ping\r\nversion\nlast-no-newline");
  const auto events = drain(source, 1024);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].second, "ping");
  EXPECT_EQ(events[1].second, "version");
  EXPECT_EQ(events[2].second, "last-no-newline");
  EXPECT_EQ(events[3].first, service::LineReader::Event::kEof);
}

TEST(LineReader, OverlongLineIsSkippedNotFatal) {
  // An oversized line yields exactly one kOverlong and the stream
  // resumes at the next request — one bad request, one error reply.
  const std::string big(5000, 'x');
  service::StringSource source("ping\n" + big + "\nversion\n");
  const auto events = drain(source, 64);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].second, "ping");
  EXPECT_EQ(events[1].first, service::LineReader::Event::kOverlong);
  EXPECT_EQ(events[2].second, "version");
  EXPECT_EQ(events[3].first, service::LineReader::Event::kEof);
}

TEST(LineReader, OverlongFinalLineWithoutNewline) {
  service::StringSource source(std::string(5000, 'y'));
  const auto events = drain(source, 64);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].first, service::LineReader::Event::kOverlong);
  EXPECT_EQ(events[1].first, service::LineReader::Event::kEof);
}

TEST(LineReader, EmptyStream) {
  service::StringSource source("");
  const auto events = drain(source, 64);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, service::LineReader::Event::kEof);
}

}  // namespace
