#include "util/args.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace easyc::util {
namespace {

ArgParser make_parser() {
  ArgParser p("test tool");
  p.add_flag("name", "a string flag");
  p.add_flag("count", "an integer flag");
  p.add_flag("rate", "a double flag");
  p.add_flag("verbose", "a boolean flag", /*takes_value=*/false);
  return p;
}

TEST(Args, EqualsAndSpaceForms) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--name=alpha", "--count", "42"};
  p.parse(4, argv);
  EXPECT_EQ(*p.get("name"), "alpha");
  EXPECT_EQ(*p.get_int("count"), 42);
  EXPECT_FALSE(p.get("rate").has_value());
}

TEST(Args, BooleanFlag) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--verbose"};
  p.parse(2, argv);
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_FALSE(p.has("name"));
}

TEST(Args, PositionalArguments) {
  auto p = make_parser();
  const char* argv[] = {"tool", "input.csv", "--name=x", "more"};
  p.parse(4, argv);
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"input.csv", "more"}));
}

TEST(Args, UnknownFlagThrows) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--nmae=typo"};
  EXPECT_THROW(p.parse(2, argv), ParseError);
}

TEST(Args, SingleDashFlagLookalikeThrows) {
  // Regression: "-verbose" used to be collected as a positional and
  // silently ignored, so a forgotten dash flipped the tool into a
  // different mode without a word.
  auto p = make_parser();
  const char* argv[] = {"tool", "-verbose"};
  EXPECT_THROW(p.parse(2, argv), ParseError);
  const char* argv2[] = {"tool", "-name=x"};
  EXPECT_THROW(p.parse(2, argv2), ParseError);
}

TEST(Args, NegativeNumbersAndBareDashStayPositional) {
  auto p = make_parser();
  const char* argv[] = {"tool", "-3.5", "-.5", "-"};
  p.parse(4, argv);
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"-3.5", "-.5", "-"}));
}

TEST(Args, DisallowedPositionalThrows) {
  // Tools whose every input is a named flag opt out of positionals so
  // a stray argument can never be dropped on the floor.
  auto p = make_parser();
  p.allow_positional(false);
  const char* stray[] = {"tool", "--name=x", "oops"};
  EXPECT_THROW(p.parse(3, stray), ParseError);
  const char* clean[] = {"tool", "--name=x"};
  p.parse(2, clean);
  EXPECT_EQ(*p.get("name"), "x");
}

TEST(Args, MissingValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--name"};
  EXPECT_THROW(p.parse(2, argv), ParseError);
}

TEST(Args, BooleanWithValueThrows) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--verbose=yes"};
  EXPECT_THROW(p.parse(2, argv), ParseError);
}

TEST(Args, TypedAccessorsValidate) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--rate=1.5", "--count=abc"};
  p.parse(3, argv);
  EXPECT_DOUBLE_EQ(*p.get_double("rate"), 1.5);
  EXPECT_THROW(p.get_int("count"), ParseError);
}

TEST(Args, ReparseResetsState) {
  auto p = make_parser();
  const char* argv1[] = {"tool", "--name=a", "pos"};
  p.parse(3, argv1);
  const char* argv2[] = {"tool", "--count=1"};
  p.parse(2, argv2);
  EXPECT_FALSE(p.has("name"));
  EXPECT_TRUE(p.positional().empty());
}

TEST(Args, UsageListsFlags) {
  auto p = make_parser();
  const auto u = p.usage("tool");
  EXPECT_NE(u.find("--name <value>"), std::string::npos);
  EXPECT_NE(u.find("--verbose\n"), std::string::npos);
  EXPECT_NE(u.find("test tool"), std::string::npos);
}

TEST(Args, DeclaringDashedFlagAborts) {
  ArgParser p("x");
  EXPECT_DEATH(p.add_flag("--bad", "nope"), "without leading dashes");
}

}  // namespace
}  // namespace easyc::util
