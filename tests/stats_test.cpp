#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace easyc::util {
namespace {

TEST(Sum, EmptyAndBasic) {
  EXPECT_DOUBLE_EQ(sum({}), 0.0);
  std::vector<double> xs = {1, 2, 3.5};
  EXPECT_DOUBLE_EQ(sum(xs), 6.5);
}

TEST(Sum, KahanHandlesMagnitudeSpread) {
  // 1e16 + 1.0 repeated: naive summation drops the small terms.
  std::vector<double> xs;
  xs.push_back(1e16);
  for (int i = 0; i < 1000; ++i) xs.push_back(1.0);
  xs.push_back(-1e16);
  EXPECT_DOUBLE_EQ(sum(xs), 1000.0);
}

TEST(Mean, Basic) {
  std::vector<double> xs = {2, 4, 6};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stddev, SampleFormula) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(sample_stddev(xs), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(sample_stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
  // Order independence.
  std::vector<double> shuffled = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 0.5), 25.0);
}

TEST(Summary, AllFieldsConsistent) {
  std::vector<double> xs = {1, 2, 3, 4, 100};
  auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.total, 110.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_LE(s.p05, s.median);
  EXPECT_LE(s.median, s.p95);
}

TEST(PercentileSorted, MatchesPercentileOnSortedInput) {
  // summarize() now reads every order statistic from one sorted copy;
  // percentile_sorted over that copy must agree exactly with the
  // copy-and-sort percentile() it replaced.
  std::vector<double> xs = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, q), percentile(xs, q)) << q;
  }
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
}

TEST(Summary, SingleSortMatchesIndependentOrderStatistics) {
  // An unsorted, duplicate-heavy sample with a magnitude spread like
  // the sweep reductions: every summarize field must equal the
  // independently computed statistic, bit for bit.
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) {
    xs.push_back(((i * 7919) % 1000) * 1e3 + ((i * 104729) % 97) * 0.25);
  }
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_EQ(s.min, *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(s.max, *std::max_element(xs.begin(), xs.end()));
  EXPECT_EQ(s.median, percentile(xs, 0.5));
  EXPECT_EQ(s.p05, percentile(xs, 0.05));
  EXPECT_EQ(s.p95, percentile(xs, 0.95));
  EXPECT_EQ(s.total, sum(xs));
  EXPECT_EQ(s.stddev, sample_stddev(xs));
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs = {0, 1, 2, 3};
  std::vector<double> ys = {5, 7, 9, 11};  // y = 5 + 2x
  auto f = linear_fit(xs, ys);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, R2ForNoisyData) {
  std::vector<double> xs = {0, 1, 2, 3, 4, 5};
  std::vector<double> ys = {0.1, 0.9, 2.2, 2.8, 4.1, 4.9};
  auto f = linear_fit(xs, ys);
  EXPECT_GT(f.r2, 0.98);
  EXPECT_NEAR(f.slope, 1.0, 0.1);
}

TEST(Cagr, MatchesClosedForm) {
  std::vector<double> series = {100, 0, 0, 0, 146.41};  // 10%/yr over 4
  EXPECT_NEAR(cagr(series), 0.10, 1e-10);
}

TEST(IntegerHistogram, ClampsAndCounts) {
  std::vector<int> v = {0, 1, 1, 2, 5, -3, 99};
  auto h = integer_histogram(v, 4);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 2u);  // 0 and clamped -3
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[2], 1u);
  EXPECT_EQ(h[3], 2u);  // 5 and 99 clamp into top bin
}

TEST(PctChange, Basic) {
  EXPECT_DOUBLE_EQ(pct_change(100, 110), 10.0);
  EXPECT_DOUBLE_EQ(pct_change(100, 90), -10.0);
  EXPECT_DOUBLE_EQ(pct_change(0, 5), 0.0);
}

// --- streaming moments (Welford + Kahan) ----------------------------

// The duplicate-heavy, magnitude-spread sample the Summary tests use —
// representative of sweep reduction inputs.
std::vector<double> sweep_like_sample(size_t n) {
  std::vector<double> xs;
  xs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    xs.push_back(((i * 7919) % 1000) * 1e3 + ((i * 104729) % 97) * 0.25);
  }
  return xs;
}

TEST(RunningStat, EmptyMatchesEmptySummary) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.total(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, SequentialFeedBitMatchesTheBatchStatistics) {
  // The streaming sweep reduction must agree with the store-all one on
  // everything that isn't an order statistic: count, min, max, and the
  // Kahan-compensated total (and therefore the mean) are exact, bit
  // for bit, because RunningStat runs the same compensated loop body
  // util::sum does.
  const auto xs = sweep_like_sample(257);
  RunningStat s;
  for (const double x : xs) s.add(x);
  const Summary batch = summarize(xs);
  EXPECT_EQ(s.count(), batch.count);
  EXPECT_EQ(s.min(), batch.min);
  EXPECT_EQ(s.max(), batch.max);
  EXPECT_EQ(s.total(), batch.total);
  EXPECT_EQ(s.mean(), batch.mean);
  // Welford variance is a different (more stable) recurrence than the
  // two-pass formula; near-equal, not bit-equal.
  EXPECT_NEAR(s.stddev(), batch.stddev, 1e-9 * batch.stddev);
  EXPECT_DOUBLE_EQ(RunningStat().stddev(), 0.0);
}

TEST(RunningStat, SingleObservation) {
  RunningStat s;
  s.add(42.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.min(), 42.5);
  EXPECT_DOUBLE_EQ(s.max(), 42.5);
  EXPECT_DOUBLE_EQ(s.mean(), 42.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);  // sample stddev undefined at n=1
}

TEST(RunningStat, MergeMatchesSequentialForAnyPartition) {
  const auto xs = sweep_like_sample(300);
  RunningStat whole;
  for (const double x : xs) whole.add(x);

  for (const size_t split : {size_t{0}, size_t{1}, size_t{150},
                             size_t{299}, size_t{300}}) {
    RunningStat lo, hi;
    for (size_t i = 0; i < split; ++i) lo.add(xs[i]);
    for (size_t i = split; i < xs.size(); ++i) hi.add(xs[i]);
    lo.merge(hi);
    EXPECT_EQ(lo.count(), whole.count()) << split;
    EXPECT_EQ(lo.min(), whole.min()) << split;
    EXPECT_EQ(lo.max(), whole.max()) << split;
    // Chan's combine reassociates the sums, so totals/means/variances
    // are near-equal across partitions, not bit-equal.
    EXPECT_NEAR(lo.total(), whole.total(),
                1e-12 * std::abs(whole.total())) << split;
    EXPECT_NEAR(lo.mean(), whole.mean(),
                1e-12 * std::abs(whole.mean())) << split;
    EXPECT_NEAR(lo.variance(), whole.variance(),
                1e-9 * whole.variance()) << split;
  }
}

TEST(RunningStat, MergeIsBitStableForAFixedPartition) {
  // Determinism contract: the same partition merged twice yields the
  // same bits — merge() is a pure function of its operands.
  const auto xs = sweep_like_sample(128);
  auto merged_half = [&] {
    RunningStat lo, hi;
    for (size_t i = 0; i < 64; ++i) lo.add(xs[i]);
    for (size_t i = 64; i < xs.size(); ++i) hi.add(xs[i]);
    lo.merge(hi);
    return lo;
  };
  const RunningStat a = merged_half();
  const RunningStat b = merged_half();
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
}

TEST(RunningStat, MergingAnEmptySideIsIdentity) {
  RunningStat s;
  for (const double x : {3.0, 1.0, 4.0}) s.add(x);
  const double total = s.total();
  const double var = s.variance();
  s.merge(RunningStat());  // empty right side: bits unchanged
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.total(), total);
  EXPECT_EQ(s.variance(), var);

  RunningStat empty;
  empty.merge(s);  // empty left side: adopts the right side wholesale
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_EQ(empty.total(), total);
  EXPECT_EQ(empty.variance(), var);
}

// --- streaming quantiles (P²) ---------------------------------------

TEST(P2Quantile, ExactUntilFiveObservations) {
  // The warm-up buffer defers to percentile_sorted, so small streams
  // are exact — the sweep's base-plus-endpoints prefix never sees an
  // approximation.
  P2Quantile q(0.5);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);  // empty
  std::vector<double> seen;
  for (const double x : {9.0, 1.0, 5.0, 3.0, 7.0}) {
    q.add(x);
    seen.push_back(x);
    EXPECT_DOUBLE_EQ(q.value(), percentile(seen, 0.5)) << seen.size();
  }
}

TEST(P2Quantile, TracksExactQuantilesWithinTolerance) {
  // A deterministic LCG sample (no library RNG: the test must be
  // reproducible byte-for-byte). P² is an approximation; for a smooth
  // unimodal-ish distribution over [0, 1e4) the 5-marker estimate
  // stays within a few percent of the population spread.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) /
           static_cast<double>(1ull << 53) * 1e4;
  };
  std::vector<double> xs;
  P2Quantile p05(0.05), p50(0.5), p95(0.95);
  for (int i = 0; i < 20000; ++i) {
    const double x = next();
    xs.push_back(x);
    p05.add(x);
    p50.add(x);
    p95.add(x);
  }
  const double spread = percentile(xs, 0.95) - percentile(xs, 0.05);
  EXPECT_NEAR(p05.value(), percentile(xs, 0.05), 0.02 * spread);
  EXPECT_NEAR(p50.value(), percentile(xs, 0.5), 0.02 * spread);
  EXPECT_NEAR(p95.value(), percentile(xs, 0.95), 0.02 * spread);
  // Markers never escape the observed range, and quantile order holds.
  EXPECT_GE(p05.value(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_LE(p95.value(), *std::max_element(xs.begin(), xs.end()));
  EXPECT_LE(p05.value(), p50.value());
  EXPECT_LE(p50.value(), p95.value());
}

TEST(P2Quantile, IsDeterministicForAFixedStream) {
  const auto xs = sweep_like_sample(1000);
  auto run = [&xs] {
    P2Quantile q(0.9);
    for (const double x : xs) q.add(x);
    return q.value();
  };
  EXPECT_EQ(run(), run());
}

TEST(StreamingSummary, FillsEverySummaryField) {
  const auto xs = sweep_like_sample(4096);
  StreamingSummary s;
  for (const double x : xs) s.add(x);
  const Summary stream = s.summary();
  const Summary batch = summarize(xs);
  // Exact fields are bit-equal...
  EXPECT_EQ(stream.count, batch.count);
  EXPECT_EQ(stream.min, batch.min);
  EXPECT_EQ(stream.max, batch.max);
  EXPECT_EQ(stream.total, batch.total);
  EXPECT_EQ(stream.mean, batch.mean);
  EXPECT_NEAR(stream.stddev, batch.stddev, 1e-9 * batch.stddev);
  // ...and the P² order statistics track the sorted ones.
  const double spread = batch.p95 - batch.p05;
  EXPECT_NEAR(stream.median, batch.median, 0.05 * spread);
  EXPECT_NEAR(stream.p05, batch.p05, 0.05 * spread);
  EXPECT_NEAR(stream.p95, batch.p95, 0.05 * spread);
}

TEST(StreamingSummary, EmptyMatchesEmptySummarize) {
  const Summary stream = StreamingSummary().summary();
  const Summary batch = summarize({});
  EXPECT_EQ(stream.count, batch.count);
  EXPECT_EQ(stream.total, batch.total);
  EXPECT_EQ(stream.mean, batch.mean);
  EXPECT_EQ(stream.median, batch.median);
}

// Property: percentile is monotone in q.
class PercentileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotone, NonDecreasingInQ) {
  std::vector<double> xs = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  const double q = GetParam();
  EXPECT_LE(percentile(xs, q), percentile(xs, std::min(1.0, q + 0.1)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileMonotone,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace easyc::util
