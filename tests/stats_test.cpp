#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace easyc::util {
namespace {

TEST(Sum, EmptyAndBasic) {
  EXPECT_DOUBLE_EQ(sum({}), 0.0);
  std::vector<double> xs = {1, 2, 3.5};
  EXPECT_DOUBLE_EQ(sum(xs), 6.5);
}

TEST(Sum, KahanHandlesMagnitudeSpread) {
  // 1e16 + 1.0 repeated: naive summation drops the small terms.
  std::vector<double> xs;
  xs.push_back(1e16);
  for (int i = 0; i < 1000; ++i) xs.push_back(1.0);
  xs.push_back(-1e16);
  EXPECT_DOUBLE_EQ(sum(xs), 1000.0);
}

TEST(Mean, Basic) {
  std::vector<double> xs = {2, 4, 6};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stddev, SampleFormula) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(sample_stddev(xs), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(sample_stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
  // Order independence.
  std::vector<double> shuffled = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 0.5), 25.0);
}

TEST(Summary, AllFieldsConsistent) {
  std::vector<double> xs = {1, 2, 3, 4, 100};
  auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.total, 110.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_LE(s.p05, s.median);
  EXPECT_LE(s.median, s.p95);
}

TEST(PercentileSorted, MatchesPercentileOnSortedInput) {
  // summarize() now reads every order statistic from one sorted copy;
  // percentile_sorted over that copy must agree exactly with the
  // copy-and-sort percentile() it replaced.
  std::vector<double> xs = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, q), percentile(xs, q)) << q;
  }
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
}

TEST(Summary, SingleSortMatchesIndependentOrderStatistics) {
  // An unsorted, duplicate-heavy sample with a magnitude spread like
  // the sweep reductions: every summarize field must equal the
  // independently computed statistic, bit for bit.
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) {
    xs.push_back(((i * 7919) % 1000) * 1e3 + ((i * 104729) % 97) * 0.25);
  }
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_EQ(s.min, *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(s.max, *std::max_element(xs.begin(), xs.end()));
  EXPECT_EQ(s.median, percentile(xs, 0.5));
  EXPECT_EQ(s.p05, percentile(xs, 0.05));
  EXPECT_EQ(s.p95, percentile(xs, 0.95));
  EXPECT_EQ(s.total, sum(xs));
  EXPECT_EQ(s.stddev, sample_stddev(xs));
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs = {0, 1, 2, 3};
  std::vector<double> ys = {5, 7, 9, 11};  // y = 5 + 2x
  auto f = linear_fit(xs, ys);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, R2ForNoisyData) {
  std::vector<double> xs = {0, 1, 2, 3, 4, 5};
  std::vector<double> ys = {0.1, 0.9, 2.2, 2.8, 4.1, 4.9};
  auto f = linear_fit(xs, ys);
  EXPECT_GT(f.r2, 0.98);
  EXPECT_NEAR(f.slope, 1.0, 0.1);
}

TEST(Cagr, MatchesClosedForm) {
  std::vector<double> series = {100, 0, 0, 0, 146.41};  // 10%/yr over 4
  EXPECT_NEAR(cagr(series), 0.10, 1e-10);
}

TEST(IntegerHistogram, ClampsAndCounts) {
  std::vector<int> v = {0, 1, 1, 2, 5, -3, 99};
  auto h = integer_histogram(v, 4);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 2u);  // 0 and clamped -3
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[2], 1u);
  EXPECT_EQ(h[3], 2u);  // 5 and 99 clamp into top bin
}

TEST(PctChange, Basic) {
  EXPECT_DOUBLE_EQ(pct_change(100, 110), 10.0);
  EXPECT_DOUBLE_EQ(pct_change(100, 90), -10.0);
  EXPECT_DOUBLE_EQ(pct_change(0, 5), 0.0);
}

// Property: percentile is monotone in q.
class PercentileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotone, NonDecreasingInQ) {
  std::vector<double> xs = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  const double q = GetParam();
  EXPECT_LE(percentile(xs, q), percentile(xs, std::min(1.0, q + 0.1)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileMonotone,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace easyc::util
