// Cache persistence: the assessment codec round trip, engine snapshot
// save -> load -> bit-identical warm-started results, rejection of
// corrupt / truncated / version- or scheme-mismatched snapshot files,
// and LRU eviction interplay with restored entries.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/assessment_engine.hpp"
#include "analysis/turnover.hpp"
#include "easyc/codec.hpp"
#include "parallel/thread_pool.hpp"
#include "top500/generator.hpp"
#include "top500/history.hpp"
#include "util/serialize.hpp"

namespace easyc::analysis {
namespace {

namespace sc = scenarios;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "easyc_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

const std::vector<top500::ListEdition>& history4() {
  static const auto kHistory = [] {
    top500::HistoryConfig cfg;
    cfg.editions = 4;
    return top500::generate_history(cfg);
  }();
  return kHistory;
}

ScenarioSet enhanced_only() {
  ScenarioSet set;
  set.add(sc::enhanced());
  return set;
}

void expect_identical(const std::vector<EditionAssessment>& a,
                      const std::vector<EditionAssessment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t e = 0; e < a.size(); ++e) {
    ASSERT_EQ(a[e].scenarios.size(), b[e].scenarios.size());
    for (size_t s = 0; s < a[e].scenarios.size(); ++s) {
      const ScenarioResults& ra = a[e].scenarios[s];
      const ScenarioResults& rb = b[e].scenarios[s];
      ASSERT_EQ(ra.operational.size(), rb.operational.size());
      for (size_t i = 0; i < ra.operational.size(); ++i) {
        // Bit-identity, not tolerance: persisted doubles must match
        // the recomputed ones exactly.
        ASSERT_EQ(ra.operational[i].has_value(),
                  rb.operational[i].has_value());
        if (ra.operational[i]) {
          EXPECT_EQ(std::bit_cast<uint64_t>(*ra.operational[i]),
                    std::bit_cast<uint64_t>(*rb.operational[i]));
        }
        ASSERT_EQ(ra.embodied[i].has_value(), rb.embodied[i].has_value());
        if (ra.embodied[i]) {
          EXPECT_EQ(std::bit_cast<uint64_t>(*ra.embodied[i]),
                    std::bit_cast<uint64_t>(*rb.embodied[i]));
        }
      }
    }
  }
}

// --- assessment codec ------------------------------------------------

TEST(AssessmentCodec, SuccessAndFailureOutcomesRoundTrip) {
  const auto records = top500::generate_records();
  const model::EasyCModel model(sc::enhanced().to_options());
  // Sweep enough records to hit both covered and uncovered systems on
  // both the operational and embodied side.
  int ok_seen = 0;
  int fail_seen = 0;
  for (size_t i = 0; i < 80; ++i) {
    const auto a = model.assess(
        to_inputs(records[i], top500::DataVisibility::kTop500PlusPublic));
    util::BinaryWriter w;
    model::encode_assessment(w, a);
    util::BinaryReader r(w.bytes());
    const auto back = model::decode_assessment(r);
    EXPECT_TRUE(r.exhausted());

    EXPECT_EQ(back.name, a.name);
    ASSERT_EQ(back.operational.ok(), a.operational.ok());
    if (a.operational.ok()) {
      ++ok_seen;
      EXPECT_EQ(std::bit_cast<uint64_t>(back.operational.value().mt_co2e),
                std::bit_cast<uint64_t>(a.operational.value().mt_co2e));
      EXPECT_EQ(back.operational.value().path, a.operational.value().path);
      EXPECT_EQ(back.operational.value().aci_region_refined,
                a.operational.value().aci_region_refined);
    } else {
      ++fail_seen;
      EXPECT_EQ(back.operational.reasons(), a.operational.reasons());
    }
    ASSERT_EQ(back.embodied.ok(), a.embodied.ok());
    if (a.embodied.ok()) {
      EXPECT_EQ(std::bit_cast<uint64_t>(back.embodied.value().total_mt),
                std::bit_cast<uint64_t>(a.embodied.value().total_mt));
      EXPECT_EQ(back.embodied.value().used_gpu_proxy,
                a.embodied.value().used_gpu_proxy);
    } else {
      EXPECT_EQ(back.embodied.reasons(), a.embodied.reasons());
    }
  }
  EXPECT_GT(ok_seen, 0);
  EXPECT_GT(fail_seen, 0);
}

TEST(AssessmentCodec, AbsurdReasonCountIsCodecErrorNotBadAlloc) {
  // A corrupt failure-Outcome count must raise CodecError (caught by
  // the CLI's advisory-cache handling), not length_error/bad_alloc
  // from an unbounded reserve.
  util::BinaryWriter bad;
  bad.str("x").boolean(false).u64(1ULL << 60);
  util::BinaryReader r(bad.bytes());
  EXPECT_THROW(model::decode_assessment(r), util::CodecError);
}

TEST(AssessmentCodec, BadEnergyPathByteIsRejected) {
  // Craft a success outcome with an out-of-enum path byte: name, ok=1,
  // five doubles, the refinement bool, then the path.
  util::BinaryWriter bad;
  bad.str("x").boolean(true);
  for (int i = 0; i < 5; ++i) bad.f64(0.0);
  bad.boolean(false).u8(99).f64(0.0);
  util::BinaryReader r(bad.bytes());
  EXPECT_THROW(model::decode_assessment(r), util::CodecError);
}

// --- engine snapshot round trip --------------------------------------

TEST(CachePersistence, WarmStartedEngineIsBitIdenticalAndPureLookups) {
  par::ThreadPool one(1);
  AssessmentEngine first({.pool = &one});
  const auto cold = first.run(history4(), enhanced_only());
  const auto path = temp_path("roundtrip.bin");
  first.save_cache(path);

  AssessmentEngine second({.pool = &one});
  const size_t loaded = second.load_cache(path);
  EXPECT_EQ(loaded, first.cache_stats().entries);
  EXPECT_EQ(second.cache_stats().entries, loaded);

  const auto warm = second.run(history4(), enhanced_only());
  expect_identical(cold, warm);
  // The whole run is served from the restored snapshot.
  EXPECT_EQ(second.cache_stats().misses, 0u);
  EXPECT_EQ(second.cache_stats().hits,
            static_cast<uint64_t>(history4().size()) * 500u);
}

TEST(CachePersistence, WarmStartMatchesTurnoverAnalysis) {
  par::ThreadPool one(1);
  AssessmentEngine first({.pool = &one});
  TurnoverOptions opts;
  opts.engine = &first;
  const auto cold_report = analyze_turnover(history4(), opts);
  const auto path = temp_path("turnover.bin");
  first.save_cache(path);

  AssessmentEngine second({.pool = &one});
  second.load_cache(path);
  TurnoverOptions warm_opts;
  warm_opts.engine = &second;
  const auto warm_report = analyze_turnover(history4(), warm_opts);

  EXPECT_DOUBLE_EQ(warm_report.cache.hit_rate(), 1.0);
  ASSERT_EQ(warm_report.editions.size(), cold_report.editions.size());
  for (size_t e = 0; e < warm_report.editions.size(); ++e) {
    EXPECT_EQ(std::bit_cast<uint64_t>(warm_report.editions[e].op_total_mt),
              std::bit_cast<uint64_t>(cold_report.editions[e].op_total_mt));
    EXPECT_EQ(std::bit_cast<uint64_t>(warm_report.editions[e].emb_total_mt),
              std::bit_cast<uint64_t>(cold_report.editions[e].emb_total_mt));
  }
}

TEST(CachePersistence, SnapshotOfColdCacheIsEmptyButValid) {
  AssessmentEngine engine;
  const auto path = temp_path("empty.bin");
  engine.save_cache(path);
  AssessmentEngine other;
  EXPECT_EQ(other.load_cache(path), 0u);
  EXPECT_EQ(other.cache_stats().entries, 0u);
}

TEST(CachePersistence, RestoreIntoWarmCacheKeepsResidentEntries) {
  par::ThreadPool one(1);
  auto records = top500::generate_records();
  records.resize(50);
  AssessmentEngine a({.pool = &one});
  a.assess(records, enhanced_only());
  const auto path = temp_path("merge.bin");
  a.save_cache(path);

  // b already assessed the same records: restore inserts nothing new
  // (first writer wins) and the next run still misses nothing.
  AssessmentEngine b({.pool = &one});
  b.assess(records, enhanced_only());
  const auto before = b.cache_stats();
  b.load_cache(path);
  EXPECT_EQ(b.cache_stats().entries, before.entries);
  b.assess(records, enhanced_only());
  EXPECT_EQ(b.cache_stats().since(before).misses, 0u);
}

// --- rejection of bad files -----------------------------------------

class CachePersistenceRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    par::ThreadPool one(1);
    AssessmentEngine engine({.pool = &one});
    auto records = top500::generate_records();
    records.resize(30);
    engine.assess(records, enhanced_only());
    path_ = temp_path("reject.bin");
    engine.save_cache(path_);
    bytes_ = read_file(path_);
    ASSERT_GT(bytes_.size(), 36u);  // header + some payload
  }

  /// Write a mutated copy and expect load_cache to reject it.
  void expect_rejected(const std::string& mutated) {
    write_file(path_, mutated);
    AssessmentEngine fresh;
    EXPECT_THROW(fresh.load_cache(path_), util::CodecError);
    EXPECT_EQ(fresh.cache_stats().entries, 0u);
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(CachePersistenceRejection, BadMagic) {
  std::string b = bytes_;
  b[0] = 'X';
  expect_rejected(b);
}

TEST_F(CachePersistenceRejection, FormatVersionMismatch) {
  std::string b = bytes_;
  b[8] = static_cast<char>(0x7f);  // u32 format version, little-endian
  expect_rejected(b);
}

TEST_F(CachePersistenceRejection, SchemeTagMismatch) {
  std::string b = bytes_;
  b[12] = static_cast<char>(b[12] ^ 0x01);  // u64 scheme tag
  expect_rejected(b);
}

TEST_F(CachePersistenceRejection, CorruptPayloadFailsChecksum) {
  std::string b = bytes_;
  b[b.size() - 1] = static_cast<char>(b[b.size() - 1] ^ 0x40);
  expect_rejected(b);
}

TEST_F(CachePersistenceRejection, TruncatedFile) {
  expect_rejected(bytes_.substr(0, bytes_.size() / 2));
  expect_rejected(bytes_.substr(0, 10));  // mid-header
  expect_rejected("");
}

TEST_F(CachePersistenceRejection, TrailingBytesAfterPayload) {
  // Appended garbage changes the checksum -> rejected before decode.
  expect_rejected(bytes_ + "extra");
}

TEST(CachePersistence, MissingFileThrowsPlainError) {
  AssessmentEngine engine;
  EXPECT_THROW(engine.load_cache(temp_path("does_not_exist.bin")),
               util::Error);
}

// --- capacity interplay ----------------------------------------------

TEST(CachePersistence, BoundedEngineRestoresWithinCapacityAndStaysExact) {
  par::ThreadPool one(1);
  AssessmentEngine unbounded({.pool = &one});
  const auto reference = unbounded.run(history4(), enhanced_only());
  const auto path = temp_path("bounded.bin");
  unbounded.save_cache(path);
  const uint64_t total = unbounded.cache_stats().entries;

  AssessmentEngine bounded(
      {.pool = &one, .cache_capacity = 64, .cache_shards = 4});
  const size_t carried = bounded.load_cache(path);
  EXPECT_EQ(carried, total);  // snapshot size is reported...
  const auto after_load = bounded.cache_stats();
  EXPECT_LE(after_load.entries, 64u);  // ...but residency honors the cap
  // Every entry dropped on the way in is accounted as an eviction.
  EXPECT_EQ(after_load.evictions, total - after_load.entries);

  // And a capacity-pressured warm start still computes correct results.
  expect_identical(reference, bounded.run(history4(), enhanced_only()));
}

}  // namespace
}  // namespace easyc::analysis
