#!/usr/bin/env python3
"""Fixture test for tools/easyc_lint.py, beyond its --self-test.

Copies tests/lint_fixtures/ (planted violations for every lint rule,
one allowlisted, one stale allow) into a scratch tree, runs the linter
over it, and asserts the report matches the fixtures' own headers
EXACTLY — rule names, line numbers, allowed suppressions, and the
stale-allow problem; no extra findings, none missing. Each fixture
declares its expectations in its leading comment, so adding a fixture
is one file, not two edits.

Registered as the `lint_fixture_test` ctest (label: lint). Runs the
linter exactly as CI does: a subprocess over a --root tree.
"""
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures"
LINT = REPO / "tools" / "easyc_lint.py"

EXPECT_RE = re.compile(r"//\s+([a-z][a-z-]+): (\d+)")
PROBLEM_RE = re.compile(r"Expected allow problem at line (\d+)")

FINDING_LINE_RE = re.compile(r"^([\w./-]+):(\d+): ([a-z-]+): ")
ALLOWED_LINE_RE = re.compile(r"^  ([\w./-]+):(\d+): ([a-z-]+) — ")
STALE_LINE_RE = re.compile(r"^([\w./-]+):(\d+): stale easyc-lint allow")


def parse_expectations():
    findings, allowed, problems = set(), set(), set()
    for path in sorted(FIXTURES.rglob("*")):
        if path.is_dir():
            continue
        rel = path.relative_to(FIXTURES).as_posix()
        mode = None
        for line in path.read_text().splitlines():
            if not line.startswith("//"):
                break  # expectations live in the leading comment only
            if "Expected findings" in line:
                mode = "find"
            elif "Expected allowed" in line:
                mode = "allow"
            pm = PROBLEM_RE.search(line)
            if pm:
                problems.add((rel, int(pm.group(1))))
                continue
            em = EXPECT_RE.search(line)
            if em and mode:
                target = findings if mode == "find" else allowed
                target.add((rel, int(em.group(2)), em.group(1)))
    if not findings:
        raise SystemExit("error: no expectations parsed from fixtures — "
                         "did the fixture comment format change?")
    return findings, allowed, problems


def diff_sets(label, want, got):
    ok = True
    for item in sorted(want - got):
        print(f"FAILED: expected {label} {item} was not reported",
              file=sys.stderr)
        ok = False
    for item in sorted(got - want):
        print(f"FAILED: unexpected {label} {item}", file=sys.stderr)
        ok = False
    return ok


def main() -> int:
    want_findings, want_allowed, want_problems = parse_expectations()

    with tempfile.TemporaryDirectory(prefix="easyc_lint_fixture") as tmp:
        root = Path(tmp)
        shutil.copytree(FIXTURES, root, dirs_exist_ok=True)
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", str(root)],
            capture_output=True, text=True)

    if proc.returncode != 1:
        print(f"FAILED: expected exit 1 on the planted tree, got "
              f"{proc.returncode}\nstdout:\n{proc.stdout}\n"
              f"stderr:\n{proc.stderr}", file=sys.stderr)
        return 1

    got_findings, got_problems = set(), set()
    for line in proc.stderr.splitlines():
        sm = STALE_LINE_RE.match(line)
        if sm:
            got_problems.add((sm.group(1), int(sm.group(2))))
            continue
        fm = FINDING_LINE_RE.match(line)
        if fm:
            got_findings.add((fm.group(1), int(fm.group(2)), fm.group(3)))
    got_allowed = set()
    for line in proc.stdout.splitlines():
        am = ALLOWED_LINE_RE.match(line)
        if am:
            got_allowed.add((am.group(1), int(am.group(2)), am.group(3)))

    ok = diff_sets("finding", want_findings, got_findings)
    ok &= diff_sets("allowed suppression", want_allowed, got_allowed)
    ok &= diff_sets("stale-allow problem", want_problems, got_problems)
    if not ok:
        print(f"\nlinter stderr was:\n{proc.stderr}", file=sys.stderr)
        return 1

    # A clean tree must pass: the fixtures prove rules fire, this
    # proves they don't fire on nothing.
    with tempfile.TemporaryDirectory(prefix="easyc_lint_clean") as tmp:
        clean = Path(tmp) / "src" / "util"
        clean.mkdir(parents=True)
        (clean / "clean.cpp").write_text("int clean() { return 0; }\n")
        proc = subprocess.run(
            [sys.executable, str(LINT), "--root", tmp],
            capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"FAILED: clean tree reported findings:\n{proc.stderr}",
              file=sys.stderr)
        return 1

    print(f"lint_fixture_test ok: {len(got_findings)} findings, "
          f"{len(got_allowed)} allowed, {len(got_problems)} stale allows "
          "matched the fixture expectations exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
