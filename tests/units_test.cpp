#include "util/units.hpp"

#include <gtest/gtest.h>

#include "analysis/equivalence.hpp"

namespace easyc::util {
namespace {

TEST(Units, GramToMetricTon) {
  EXPECT_DOUBLE_EQ(g_to_mt(1.0e6), 1.0);
  EXPECT_DOUBLE_EQ(kg_to_mt(1000.0), 1.0);
}

TEST(Units, PowerToAnnualEnergy) {
  EXPECT_DOUBLE_EQ(kw_year_to_kwh(1.0), 8760.0);
  EXPECT_DOUBLE_EQ(kw_year_to_kwh(1000.0), 8.76e6);
}

TEST(Units, EnergyToCarbon) {
  // 1 GWh at 500 g/kWh = 500 MT.
  EXPECT_DOUBLE_EQ(kwh_to_mtco2e(1.0e6, 500.0), 500.0);
  EXPECT_DOUBLE_EQ(kwh_to_mtco2e(0.0, 500.0), 0.0);
  EXPECT_DOUBLE_EQ(kwh_to_mtco2e(1.0e6, 0.0), 0.0);
}

TEST(Units, PaperEquivalenceArithmetic) {
  // The constants must reproduce the paper's rounding: 1.39M MT ->
  // ~325k vehicles and ~3.5B miles; 1.88M MT -> ~439k vehicles.
  EXPECT_NEAR(mtco2e_to_vehicle_years(1.39e6), 325000, 2000);
  EXPECT_NEAR(mtco2e_to_vehicle_miles(1.39e6) / 1e9, 3.5, 0.1);
  EXPECT_NEAR(mtco2e_to_vehicle_years(1.88e6), 439000, 2000);
  EXPECT_NEAR(mtco2e_to_vehicle_miles(1.88e6) / 1e9, 4.8, 0.1);
}

TEST(Equivalence, StructMatchesUnitHelpers) {
  const auto e = easyc::analysis::equivalences(1.0e6);
  EXPECT_DOUBLE_EQ(e.vehicles, mtco2e_to_vehicle_years(1.0e6));
  EXPECT_DOUBLE_EQ(e.vehicle_miles, mtco2e_to_vehicle_miles(1.0e6));
  EXPECT_DOUBLE_EQ(e.homes, mtco2e_to_home_years(1.0e6));
}

TEST(Equivalence, DescriptionFormatsLargeNumbers) {
  const auto d = easyc::analysis::describe_equivalence(1.39e6);
  EXPECT_NE(d.find("324,"), std::string::npos);  // ~324-325k with commas
  EXPECT_NE(d.find("billion vehicle miles"), std::string::npos);
}

}  // namespace
}  // namespace easyc::util
