// Procurement what-if: compare the carbon footprint of candidate
// system designs before buying.
//
// The paper argues that widespread, low-effort carbon modeling enables
// decisions, not just reporting. This example compares four candidate
// 20-PFlop/s procurement configurations — GPU vs CPU, sited on a clean
// vs carbon-intensive grid — over a 6-year service life.
//
//   ./procurement_whatif
#include <cstdio>
#include <string>
#include <vector>

#include "easyc/model.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

namespace model = easyc::model;

model::Inputs gpu_design(const std::string& country,
                         const std::string& region) {
  model::Inputs in;
  in.name = "gpu-design/" + country;
  in.country = country;
  in.region = region;
  in.rmax_tflops = 20000;
  in.rpeak_tflops = 27000;
  in.processor = "NVIDIA Grace 72C 3.1GHz";
  in.accelerator = "NVIDIA GH200 Superchip";
  in.operation_year = 2025;
  in.num_nodes = 160;
  in.num_cpus = 640;
  in.num_gpus = 640;
  in.total_cores = 640 * 72 + 640 * 104;
  in.memory_gb = 640 * 96;
  in.memory_type = "HBM3";
  in.ssd_tb = 2400;
  return in;
}

model::Inputs cpu_design(const std::string& country,
                         const std::string& region) {
  model::Inputs in;
  in.name = "cpu-design/" + country;
  in.country = country;
  in.region = region;
  in.rmax_tflops = 20000;
  in.rpeak_tflops = 26000;
  in.processor = "AMD EPYC 9654 96C 2.4GHz";
  in.operation_year = 2025;
  in.num_nodes = 3472;
  in.num_cpus = 6944;
  in.total_cores = 6944 * 96;
  in.memory_gb = 3472.0 * 768;
  in.memory_type = "DDR5";
  in.ssd_tb = 28000;
  return in;
}

}  // namespace

int main() {
  using easyc::util::format_double;
  const int kServiceYears = 6;

  std::vector<model::Inputs> candidates = {
      gpu_design("Norway", ""),
      gpu_design("United States", "Ohio"),
      cpu_design("Norway", ""),
      cpu_design("United States", "Ohio"),
  };

  const model::EasyCModel easyc;
  easyc::util::TextTable t({"Candidate", "Op MT/yr", "Embodied MT",
                            "6-yr total MT", "Embodied share (%)"});
  double best_total = 1e18;
  std::string best;
  for (const auto& in : candidates) {
    const auto a = easyc.assess(in);
    if (!a.operational.ok() || !a.embodied.ok()) {
      std::printf("%s: insufficient data (%s%s)\n", in.name.c_str(),
                  a.operational.reasons_joined().c_str(),
                  a.embodied.reasons_joined().c_str());
      continue;
    }
    const double op = a.operational.value().mt_co2e;
    const double emb = a.embodied.value().total_mt;
    const double total = op * kServiceYears + emb;
    if (total < best_total) {
      best_total = total;
      best = in.name;
    }
    t.add_row({in.name, format_double(op, 0), format_double(emb, 0),
               format_double(total, 0),
               format_double(emb / total * 100, 1)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Lowest 6-year footprint: %s (%s MT CO2e)\n", best.c_str(),
              format_double(best_total, 0).c_str());
  std::printf(
      "\nReading: grid siting dominates operational carbon (Norway vs "
      "Ohio is a\n~18x grid-intensity difference), while the CPU design "
      "carries more embodied\ncarbon per delivered FLOP (more nodes, "
      "boards, and DRAM for the same Rmax).\nOn a clean grid the embodied "
      "share becomes the decision variable —\nexactly the paper's argument "
      "for reporting both sides.\n");
  return 0;
}
