// The paper's full pipeline: assess the Top500's carbon footprint.
//
// Generates the November-2024-calibrated list, runs EasyC under the
// paper's two data scenarios plus three registered what-if scenarios
// (renewables-heavy grid, 8-year amortization, no accelerator
// approximation), interpolates the remainder, prints the headline
// assessment, and writes the dataset + per-figure CSVs for downstream
// analysis.
//
//   ./top500_assessment [output_dir]
#include <cstdio>
#include <filesystem>
#include <string>

#include "analysis/pipeline.hpp"
#include "analysis/scenario.hpp"
#include "analysis/sensitivity.hpp"
#include "report/experiments.hpp"
#include "top500/record.hpp"

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "top500_out";
  std::filesystem::create_directories(out_dir);

  std::printf("Running the Top500 carbon assessment pipeline...\n\n");
  easyc::analysis::PipelineConfig cfg;
  cfg.scenarios = easyc::analysis::ScenarioSet::paper_with_whatifs();
  const auto result = easyc::analysis::run_pipeline(cfg);

  std::printf("%s\n", easyc::report::headline_numbers(result).c_str());
  std::printf("%s\n", easyc::report::scenario_summary(result).c_str());
  std::printf("%s\n", easyc::report::fig04_coverage_bars(result).c_str());
  std::printf("%s\n", easyc::report::fig07_totals(result).c_str());
  std::printf("%s\n",
              easyc::report::table2_per_system(result, 25).c_str());

  // Persist the dataset (ground truth + disclosure masks) and the
  // machine-readable figure series.
  const std::string dataset = out_dir + "/top500_nov2024_synthetic.csv";
  easyc::top500::to_csv(result.records).write_file(dataset);
  auto files = easyc::report::write_figure_csvs(result, out_dir);
  files.push_back(dataset);

  std::printf("Wrote %zu files under %s/:\n", files.size(), out_dir.c_str());
  for (const auto& f : files) std::printf("  %s\n", f.c_str());
  return 0;
}
