// Lifecycle and scheduling: two analyses the EasyC assessment enables.
//
// 1. Retire-or-keep: the paper notes embodied carbon is one-time and
//    "smaller if annualized" — this example annualizes it and computes
//    the carbon payback time of replacing an ageing system with a more
//    efficient one.
// 2. Time-granularity: the paper flags coarse carbon-intensity data as
//    a systematic accounting error; this example quantifies the error
//    for this machine's load shape and the savings available from
//    carbon-aware job scheduling.
//
//   ./lifecycle_and_scheduling
#include <cstdio>

#include "easyc/amortization.hpp"
#include "easyc/model.hpp"
#include "grid/temporal.hpp"
#include "util/strings.hpp"

namespace {

namespace model = easyc::model;
using easyc::util::format_double;

model::Inputs old_system() {
  model::Inputs in;
  in.name = "veteran-2018";
  in.country = "Germany";
  in.rmax_tflops = 2400;
  in.rpeak_tflops = 4000;
  in.total_cores = 72000;
  in.processor = "Xeon Gold 6148 20C 2.4GHz";
  in.operation_year = 2018;
  in.num_nodes = 1800;
  in.num_cpus = 3600;
  in.power_kw = 1450;
  return in;
}

model::Inputs replacement() {
  model::Inputs in;
  in.name = "replacement-2025";
  in.country = "Germany";
  in.rmax_tflops = 2400;  // same delivered performance
  in.rpeak_tflops = 3100;
  in.total_cores = 26880;
  in.processor = "AMD EPYC 9654 96C 2.4GHz";
  in.operation_year = 2025;
  in.num_nodes = 140;
  in.num_cpus = 280;
  in.memory_gb = 107520;
  in.memory_type = "DDR5";
  in.ssd_tb = 1700;
  in.power_kw = 290;
  return in;
}

}  // namespace

int main() {
  const model::EasyCModel easyc;
  const auto old_a = easyc.assess(old_system());
  const auto new_a = easyc.assess(replacement());
  if (!old_a.operational.ok() || !new_a.operational.ok() ||
      !new_a.embodied.ok()) {
    std::printf("insufficient data for the comparison\n");
    return 1;
  }

  const double old_op = old_a.operational.value().mt_co2e;
  const double new_op = new_a.operational.value().mt_co2e;
  const double new_emb = new_a.embodied.value().total_mt;

  std::printf("== Retire-or-keep ==\n");
  std::printf("%-18s %s MT CO2e/yr operational\n", "veteran-2018:",
              format_double(old_op, 0).c_str());
  std::printf("%-18s %s MT CO2e/yr operational, %s MT embodied to build\n",
              "replacement-2025:", format_double(new_op, 0).c_str(),
              format_double(new_emb, 0).c_str());

  const double payback =
      model::replacement_payback_years(old_op, new_op, new_emb);
  std::printf("carbon payback: %s years of operation recover the "
              "replacement's embodied carbon\n",
              format_double(payback, 1).c_str());

  const auto annual =
      model::annualize(new_a.operational.value(), new_a.embodied.value());
  std::printf("replacement annualized over 6 years: %s MT/yr "
              "(embodied share %.0f%%)\n\n",
              format_double(annual.total_mt, 0).c_str(),
              annual.embodied_share * 100);

  std::printf("== Time granularity and carbon-aware scheduling ==\n");
  easyc::grid::ProfileShape german_grid;
  german_grid.solar_depth = 0.20;
  german_grid.evening_peak = 0.12;
  german_grid.seasonal_amp = 0.15;
  const easyc::grid::HourlyAciProfile profile(344.0, german_grid);
  std::printf("hourly grid intensity: %s..%s g/kWh around a %s mean\n",
              format_double(profile.min(), 0).c_str(),
              format_double(profile.max(), 0).c_str(),
              format_double(profile.annual_mean(), 0).c_str());

  const auto load = easyc::grid::diurnal_load(290.0, 0.35);
  std::printf("annual-average-method error for this load shape: %s%%\n",
              format_double(profile.average_method_error(load) * 100, 2)
                  .c_str());
  for (double share : {0.2, 0.4}) {
    std::printf("shifting %.0f%% of load into the 8 cleanest hours/day "
                "saves %s%% of operational carbon (%s MT/yr)\n",
                share * 100,
                format_double(profile.shifting_savings(share, 8) * 100, 2)
                    .c_str(),
                format_double(
                    profile.shifting_savings(share, 8) * new_op, 1)
                    .c_str());
  }
  return 0;
}
