// Projection explorer: how does the Top500's carbon trajectory respond
// to growth assumptions?
//
// Reproduces the paper's 2025-2030 projection (Figs. 10-11) from the
// measured 2024 baseline, then sweeps the growth-rate assumptions:
// what if efficiency gains accelerate, or list turnover doubles?
//
//   ./projection_explorer
#include <cstdio>

#include "analysis/pipeline.hpp"
#include "analysis/projection.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

int main() {
  namespace analysis = easyc::analysis;
  using easyc::util::format_double;

  std::printf("Measuring the 2024 baseline (full pipeline)...\n");
  const auto result = analysis::run_pipeline();
  const double op0 = result.op_total_full_mt / 1000.0;   // kMT
  const double emb0 = result.emb_total_full_mt / 1000.0;
  double perf0 = 0.0;
  for (const auto& r : result.records) perf0 += r.rmax_tflops / 1000.0;
  std::printf("  2024: %s kMT operational, %s kMT embodied, %s PFlop/s\n\n",
              format_double(op0, 0).c_str(), format_double(emb0, 0).c_str(),
              format_double(perf0, 0).c_str());

  struct ScenarioDef {
    const char* label;
    analysis::ProjectionConfig cfg;
  };
  ScenarioDef scenarios[] = {
      {"paper (10.3%/yr op, 2%/yr emb)", {}},
      {"efficiency breakthrough (4%/yr op)",
       {2024, 2030, 0.04, 0.02, 0.135, 18.0}},
      {"AI boom (20%/yr op, 8%/yr emb)",
       {2024, 2030, 0.20, 0.08, 0.25, 18.0}},
      {"flat lists (0%/yr both)", {2024, 2030, 0.0, 0.0, 0.06, 18.0}},
  };

  for (const auto& s : scenarios) {
    const auto series = analysis::project(op0, emb0, perf0, s.cfg);
    easyc::util::TextTable t({"Year", "Op kMT", "Emb kMT",
                              "PF per kMT (op)", "Ideal"});
    for (const auto& p : series) {
      t.add_row({std::to_string(p.year),
                 format_double(p.operational_kmt, 0),
                 format_double(p.embodied_kmt, 0),
                 format_double(p.op_ratio, 2),
                 format_double(p.ideal_ratio, 1)});
    }
    std::printf("Scenario: %s\n%s", s.label, t.render().c_str());
    std::printf("  2030 vs 2024: operational x%s, embodied x%s\n\n",
                format_double(series.back().operational_kmt /
                                  series.front().operational_kmt,
                              2)
                    .c_str(),
                format_double(series.back().embodied_kmt /
                                  series.front().embodied_kmt,
                              2)
                    .c_str());
  }

  std::printf(
      "Note how even the efficiency-breakthrough scenario stays far below "
      "the\nDennard-era ideal column: performance per unit carbon no "
      "longer doubles\nevery 18 months (the paper's Fig. 11 point).\n");
  return 0;
}
