// Site report: a research-computing facility models its whole fleet.
//
// The paper's motivating user is a staffing-limited research facility
// that cannot afford GHG-protocol accounting. This example models a
// realistic mixed fleet (a flagship cluster, a GPU partition, a legacy
// machine, storage-heavy bioinformatics nodes), prints a per-system and
// fleet summary, and contrasts the data EasyC needed against the GHG
// protocol's requirement manifest.
//
//   ./site_report
#include <cstdio>
#include <vector>

#include "analysis/equivalence.hpp"
#include "easyc/model.hpp"
#include "easyc/uncertainty.hpp"
#include "ghg/protocol.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

namespace model = easyc::model;

std::vector<model::Inputs> fleet() {
  std::vector<model::Inputs> systems;

  model::Inputs flagship;
  flagship.name = "helios (flagship CPU cluster)";
  flagship.country = "United States";
  flagship.region = "Colorado";
  flagship.rmax_tflops = 8200;
  flagship.rpeak_tflops = 11800;
  flagship.total_cores = 174080;
  flagship.processor = "AMD EPYC 7763 64C 2.45GHz";
  flagship.operation_year = 2021;
  flagship.num_nodes = 1360;
  flagship.num_cpus = 2720;
  flagship.num_gpus.reset();
  flagship.memory_gb = 696320;
  flagship.memory_type = "DDR4";
  flagship.ssd_tb = 12000;
  flagship.power_kw = 1650;
  flagship.utilization = 0.83;
  systems.push_back(flagship);

  model::Inputs gpu;
  gpu.name = "aurora-borealis (AI partition)";
  gpu.country = "United States";
  gpu.region = "Colorado";
  gpu.rmax_tflops = 11500;
  gpu.rpeak_tflops = 15400;
  gpu.total_cores = 46080;
  gpu.processor = "Xeon Platinum 8480+ 56C 2GHz";
  gpu.accelerator = "NVIDIA H100";
  gpu.operation_year = 2023;
  gpu.num_nodes = 120;
  gpu.num_cpus = 240;
  gpu.num_gpus = 480;
  gpu.memory_gb = 122880;
  gpu.memory_type = "DDR5";
  gpu.ssd_tb = 1800;
  systems.push_back(gpu);  // no metered power: component roll-up path

  model::Inputs legacy;
  legacy.name = "old-faithful (legacy cluster)";
  legacy.country = "United States";
  legacy.region = "Colorado";
  legacy.rmax_tflops = 950;
  legacy.rpeak_tflops = 1600;
  legacy.total_cores = 28800;
  legacy.processor = "Xeon Gold 6148 20C 2.4GHz";
  legacy.operation_year = 2018;
  legacy.num_nodes = 720;
  legacy.num_cpus = 1440;
  systems.push_back(legacy);  // minimal data: core-estimate path

  model::Inputs bio;
  bio.name = "genome-scratch (storage-heavy)";
  bio.country = "United States";
  bio.region = "Colorado";
  bio.rmax_tflops = 400;
  bio.rpeak_tflops = 700;
  bio.total_cores = 8192;
  bio.processor = "AMD EPYC 9554 64C 3.1GHz";
  bio.operation_year = 2024;
  bio.num_nodes = 64;
  bio.num_cpus = 128;
  bio.memory_gb = 98304;
  bio.memory_type = "DDR5";
  bio.ssd_tb = 38000;  // the parallel filesystem dominates embodied
  bio.annual_energy_kwh = 1.4e6;
  systems.push_back(bio);

  return systems;
}

}  // namespace

int main() {
  using easyc::util::format_double;
  const auto systems = fleet();
  const model::EasyCModel easyc;
  const auto assessments = easyc.assess_all(systems);

  easyc::util::TextTable table({"System", "Op MT/yr", "Energy path",
                                "Embodied MT", "Biggest embodied term"});
  double fleet_op = 0.0;
  double fleet_emb = 0.0;
  for (size_t i = 0; i < assessments.size(); ++i) {
    const auto& a = assessments[i];
    std::string op = "-", path = "-", emb = "-", biggest = "-";
    if (a.operational.ok()) {
      op = format_double(a.operational.value().mt_co2e, 0);
      path = model::energy_path_name(a.operational.value().path);
      fleet_op += a.operational.value().mt_co2e;
    }
    if (a.embodied.ok()) {
      const auto& b = a.embodied.value();
      emb = format_double(b.total_mt, 0);
      fleet_emb += b.total_mt;
      biggest = "platform";
      double top = b.platform_mt;
      if (b.gpu_mt > top) { top = b.gpu_mt; biggest = "GPUs"; }
      if (b.cpu_mt > top) { top = b.cpu_mt; biggest = "CPUs"; }
      if (b.memory_mt > top) { top = b.memory_mt; biggest = "DRAM"; }
      if (b.storage_mt > top) { top = b.storage_mt; biggest = "flash"; }
    }
    table.add_row({a.name, op, path, emb, biggest});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Fleet: %s MT CO2e/yr operational, %s MT embodied\n",
              format_double(fleet_op, 0).c_str(),
              format_double(fleet_emb, 0).c_str());
  std::printf("  = %s\n\n",
              easyc::analysis::describe_equivalence(fleet_op).c_str());

  // Uncertainty from EasyC's priors, quantified.
  const auto u = model::run_uncertainty(systems, {}, {}, 512, 42,
                                        &easyc::par::ThreadPool::global());
  std::printf("Monte-Carlo prior uncertainty (512 trials): operational "
              "%s..%s MT (p05..p95)\n",
              format_double(u.operational_mt.p05, 0).c_str(),
              format_double(u.operational_mt.p95, 0).c_str());

  // Effort comparison against the GHG protocol.
  easyc::ghg::ProtocolCalculator ghg;
  const auto missing = ghg.missing_items({});
  std::printf("\nData needed: EasyC used <= 9 metrics per system; a GHG "
              "protocol computation\nwould still need %zu required line "
              "items (e.g. %s) before producing a number.\n",
              missing.size(), missing.front().c_str());
  return 0;
}
