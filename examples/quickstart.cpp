// Quickstart: model one HPC system's carbon footprint with EasyC.
//
// This is the paper's core workflow: supply the seven key metrics (plus
// anything extra you have) and get operational + embodied carbon with a
// full breakdown — in well under the "one person-hour per year" budget
// the paper sets for practicable reporting.
//
//   ./quickstart
#include <cstdio>

#include "analysis/equivalence.hpp"
#include "easyc/model.hpp"
#include "util/strings.hpp"

int main() {
  namespace model = easyc::model;
  using easyc::util::format_double;

  // A mid-sized university GPU cluster, described by what the operators
  // actually know about it.
  model::Inputs in;
  in.name = "campus-gpu-cluster";
  in.country = "Germany";
  in.region = "Bavaria";               // refines the grid intensity
  in.rmax_tflops = 18000;              // 18 PFlop/s HPL
  in.rpeak_tflops = 26000;
  in.total_cores = 98304;
  in.processor = "AMD EPYC 9654 96C 2.4GHz";
  in.accelerator = "NVIDIA H100";

  // The seven key metrics (Fig. 1 of the paper).
  in.operation_year = 2024;            // 1. operation year
  in.num_nodes = 256;                  // 2. # compute nodes
  in.num_gpus = 1024;                  // 3. # GPUs
  in.num_cpus = 512;                   // 4. # CPUs
  in.memory_gb = 196608;               // 5. memory capacity
  in.memory_type = "DDR5";             // 6. memory type
  in.ssd_tb = 3500;                    // 7. SSD capacity
  // Optional extras ("gentle slope"): metered figures, when available.
  in.utilization = 0.72;

  const model::EasyCModel easyc;
  const auto assessment = easyc.assess(in);

  std::printf("EasyC assessment: %s\n", in.name.c_str());
  std::printf("  metrics provided: %d of 9 (missing %d)\n\n",
              9 - in.num_missing(), in.num_missing());

  if (assessment.operational.ok()) {
    const auto& op = assessment.operational.value();
    std::printf("Operational carbon: %s MT CO2e / year\n",
                format_double(op.mt_co2e, 1).c_str());
    std::printf("  energy path:   %s\n",
                model::energy_path_name(op.path).c_str());
    std::printf("  IT power:      %s kW (utilization %.0f%%)\n",
                format_double(op.it_kw, 1).c_str(), op.utilization * 100);
    std::printf("  facility:      PUE %.2f -> %s kWh / year\n", op.pue,
                format_double(op.annual_kwh, 0).c_str());
    std::printf("  grid:          %s gCO2e/kWh (%s)\n",
                format_double(op.aci_g_kwh, 0).c_str(),
                op.aci_region_refined ? "regional value" : "country average");
  } else {
    std::printf("Operational carbon: no estimate (%s)\n",
                assessment.operational.reasons_joined().c_str());
  }

  if (assessment.embodied.ok()) {
    const auto& emb = assessment.embodied.value();
    std::printf("\nEmbodied carbon: %s MT CO2e (one-time, manufacturing)\n",
                format_double(emb.total_mt, 1).c_str());
    std::printf("  CPUs %s | GPUs %s | DRAM %s | flash %s | platform %s | "
                "fabric %s\n",
                format_double(emb.cpu_mt, 1).c_str(),
                format_double(emb.gpu_mt, 1).c_str(),
                format_double(emb.memory_mt, 1).c_str(),
                format_double(emb.storage_mt, 1).c_str(),
                format_double(emb.platform_mt, 1).c_str(),
                format_double(emb.interconnect_mt, 1).c_str());
  } else {
    std::printf("\nEmbodied carbon: no estimate (%s)\n",
                assessment.embodied.reasons_joined().c_str());
  }

  if (assessment.operational.ok()) {
    std::printf("\nFor scale, the annual operational carbon equals %s.\n",
                easyc::analysis::describe_equivalence(
                    assessment.operational.value().mt_co2e)
                    .c_str());
  }
  return 0;
}
