#!/usr/bin/env python3
"""Doc-drift linter: every user-facing surface must be documented.

Checks that
  * every flag `easyc_cli --help` and `easyc_serve --help` advertise,
  * every flag `tools/easyc_sweep_shard.py --help` advertises,
  * the `easyc_cells_decode` usage surface (tool name + any flags), and
  * every protocol verb declared in src/service/protocol.hpp
appears somewhere in README.md or docs/ARCHITECTURE.md. A flag you can
type but cannot read about is drift; this runs in CI so drift fails the
build instead of accumulating.

Usage:
    tools/check_docs.py --cli build/easyc_cli --serve build/easyc_serve \
        --decode build/easyc_cells_decode
    tools/check_docs.py --self-test --cli ... --serve ...

--self-test plants a fake undocumented flag into the scanned flag set
and exits non-zero unless the checker reports it — proof the linter can
actually fail.
"""
import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = [REPO / "README.md", REPO / "docs" / "ARCHITECTURE.md"]
PROTOCOL_HPP = REPO / "src" / "service" / "protocol.hpp"

FLAG_RE = re.compile(r"^\s*(--[a-z][a-z0-9-]*)", re.MULTILINE)
VERB_RE = re.compile(r"enum\s+class\s+Verb\s*\{([^}]*)\}", re.DOTALL)


def help_flags(binary: str) -> set:
    out = subprocess.run([binary, "--help"], capture_output=True, text=True,
                         check=True).stdout
    flags = set(FLAG_RE.findall(out))
    if not flags:
        raise SystemExit(f"error: no flags parsed from `{binary} --help` — "
                         "did the usage format change?")
    return flags


def script_flags(script: str) -> set:
    """Flags an argparse-based Python tool advertises. argparse wraps
    long usage lines, so flags are read from the options section (one
    `  --flag ...` line each), same shape FLAG_RE already parses."""
    out = subprocess.run([sys.executable, script, "--help"],
                         capture_output=True, text=True, check=True).stdout
    flags = set(FLAG_RE.findall(out))
    if not flags:
        raise SystemExit(f"error: no flags parsed from `{script} --help` — "
                         "did the argparse usage format change?")
    return flags


def decode_surface(binary: str) -> set:
    """The easyc_cells_decode surface: the tool is positional-only
    (usage on stderr, no long options today), so the documented surface
    is its name plus whatever `--flags` its usage ever grows."""
    proc = subprocess.run([binary, "--help"], capture_output=True, text=True,
                          check=True)
    return {Path(binary).name} | set(FLAG_RE.findall(proc.stdout + proc.stderr))


def protocol_verbs() -> set:
    text = PROTOCOL_HPP.read_text()
    m = VERB_RE.search(text)
    if not m:
        raise SystemExit(f"error: no `enum class Verb` in {PROTOCOL_HPP}")
    verbs = set()
    for token in m.group(1).split(","):
        token = token.strip()
        if token.startswith("k"):
            # kPing -> ping (the wire spelling, which is what docs show).
            verbs.add(token[1:].lower())
    if not verbs:
        raise SystemExit("error: Verb enum parsed to zero verbs")
    return verbs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cli", default=str(REPO / "build" / "easyc_cli"),
                        help="path to the easyc_cli binary")
    parser.add_argument("--serve", default=str(REPO / "build" / "easyc_serve"),
                        help="path to the easyc_serve binary")
    parser.add_argument("--shard",
                        default=str(REPO / "tools" / "easyc_sweep_shard.py"),
                        help="path to the easyc_sweep_shard.py orchestrator")
    parser.add_argument("--decode",
                        default=str(REPO / "build" / "easyc_cells_decode"),
                        help="path to the easyc_cells_decode binary")
    parser.add_argument("--self-test", action="store_true",
                        help="plant a fake undocumented flag; succeed only "
                             "if the checker flags it")
    args = parser.parse_args()

    doc_text = ""
    for doc in DOCS:
        if not doc.exists():
            print(f"error: missing documentation file {doc}", file=sys.stderr)
            return 1
        doc_text += doc.read_text()

    surfaces = {}  # name -> origin
    for flag in help_flags(args.cli):
        surfaces[flag] = "easyc_cli --help"
    for flag in help_flags(args.serve):
        surfaces.setdefault(flag, "easyc_serve --help")
    for flag in script_flags(args.shard):
        surfaces.setdefault(flag, "easyc_sweep_shard.py --help")
    for name in decode_surface(args.decode):
        surfaces.setdefault(name, "easyc_cells_decode usage")
    for verb in protocol_verbs():
        surfaces[f"verb `{verb}`"] = "service/protocol.hpp"

    if args.self_test:
        surfaces["--planted-undocumented-flag"] = "self-test"

    missing = []
    for name, origin in sorted(surfaces.items()):
        needle = name.split("`")[1] if "`" in name else name
        if needle not in doc_text:
            missing.append((name, origin))

    if args.self_test:
        planted = [m for m in missing if m[0] == "--planted-undocumented-flag"]
        real = [m for m in missing if m[0] != "--planted-undocumented-flag"]
        if not planted:
            print("self-test FAILED: the planted undocumented flag was not "
                  "detected", file=sys.stderr)
            return 1
        if real:
            for name, origin in real:
                print(f"undocumented: {name} (from {origin})", file=sys.stderr)
            print("self-test ok, but real drift found above", file=sys.stderr)
            return 1
        print("self-test ok: planted flag detected, no real drift")
        return 0

    if missing:
        for name, origin in missing:
            print(f"undocumented: {name} (from {origin}) — add it to "
                  "README.md or docs/ARCHITECTURE.md", file=sys.stderr)
        return 1
    print(f"check_docs: {len(surfaces)} flags/verbs all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
