#!/usr/bin/env python3
"""Benchmark-regression gate for the engine/sweep benches.

Compares one or more google-benchmark ``--benchmark_format=json`` (or
``--benchmark_out=<file> --benchmark_out_format=json``) result files
against a committed baseline and fails when any benchmark's real time
regressed by more than the threshold.

User counters gate too: counters recorded in the baseline (e.g. the
streaming sweep's ``cells_per_s`` throughput and ``peak_rss_mb``
footprint) are compared direction-aware — a higher-is-better counter
fails when it drops past the threshold, a lower-is-better one when it
grows past it.

Usage:
  check_bench_regression.py --baseline bench/baseline.json \
      --current engine.json [--current sweep.json ...] [--threshold 20]

  # refresh the committed baseline from the current run(s)
  check_bench_regression.py --baseline bench/baseline.json \
      --current engine.json --current sweep.json --update-baseline

  # prove the gate works (no files needed): passes an unchanged run,
  # fails an injected +25% regression, round-trips --update-baseline
  check_bench_regression.py --self-test

Gate rules:
  * a benchmark slower than baseline by > threshold %  -> FAIL
  * a baseline benchmark missing from the current runs -> FAIL
    (silently dropping a benchmark is how a gate rots)
  * a baseline counter that worsened past the threshold
    (direction-aware) or went unmeasured               -> FAIL
  * a baseline ``ratios`` entry whose measured counter ratio falls
    below its ``min_ratio`` (or whose operands went unmeasured) -> FAIL
  * a new benchmark or counter absent from the baseline -> note only;
    commit a refreshed baseline to start gating it
  * aggregate rows (mean/median/stddev/cv) are ignored; only
    per-iteration measurements gate.

Ratio gates express speedup floors between two benchmarks of the same
run rather than drift against history — e.g. the SoA batch kernel must
stay >= 1.5x the scalar oracle's cells_per_s no matter how both move
with the host. Baseline format:

  "ratios": [{"name": "batch_soa_vs_scalar",
              "numerator":   {"benchmark": "BM_BatchAssessSoA/real_time",
                              "counter": "cells_per_s"},
              "denominator": {"benchmark": "BM_BatchAssessScalar/real_time",
                              "counter": "cells_per_s"},
              "min_ratio": 1.5}]

``--update-baseline`` preserves the ratios section verbatim (floors are
policy, not measurements).

Times are normalized to nanoseconds before comparing, so a baseline
written in ms gates a run reported in ns. ``--update-baseline`` guesses
counter direction from the name (``*_per_s``/``*_per_second`` and
friends are higher-is-better, everything else lower-is-better); edit
the ``higher_is_better`` field in the baseline when the guess is wrong.
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Keys of a google-benchmark result row that are bookkeeping, not user
# counters. items/bytes_per_second are derived from the gated real time
# (SetItemsProcessed), so gating them separately would double-count.
_NON_COUNTER_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "items_per_second", "bytes_per_second", "aggregate_name", "label",
    "family_index", "per_family_instance_index", "error_occurred",
    "error_message", "aggregate_unit",
}


def _to_ns(value, unit):
    try:
        return float(value) * _NS_PER_UNIT[unit]
    except KeyError:
        raise SystemExit(f"error: unknown time_unit '{unit}'")


def counter_higher_is_better(counter_name):
    """Direction heuristic for --update-baseline."""
    lowered = counter_name.lower()
    return lowered.endswith(("_per_s", "_per_sec", "_per_second", "/s")) or \
        lowered.endswith(("throughput", "hit_rate"))


def load_benchmarks(path_or_obj):
    """Return ({name: real_time_ns}, {(name, counter): value})."""
    if isinstance(path_or_obj, dict):
        doc = path_or_obj
    else:
        try:
            doc = json.loads(Path(path_or_obj).read_text())
        except FileNotFoundError:
            raise SystemExit(f"error: no such file: {path_or_obj}")
        except json.JSONDecodeError as e:
            raise SystemExit(f"error: {path_or_obj} is not JSON: {e}")
    times = {}
    counters = {}
    for b in doc.get("benchmarks", []):
        # google-benchmark marks mean/median/stddev rows as aggregates
        # three different ways depending on version and reporting flags:
        # run_type == "aggregate", an aggregate_name field (present even
        # when run_type is omitted or left "iteration", e.g. under
        # --benchmark_report_aggregates_only), or only a name suffix.
        # Treat any of them as an aggregate: they must never gate, and
        # must never overwrite the per-iteration row of the same name.
        if b.get("run_type", "iteration") != "iteration":
            continue
        if "aggregate_name" in b:
            continue
        name = b["name"]
        if any(name.endswith(s) for s in ("_mean", "_median", "_stddev", "_cv")):
            continue
        times[name] = _to_ns(b["real_time"], b.get("time_unit", "ns"))
        for key, value in b.items():
            if key in _NON_COUNTER_KEYS:
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                counters[(name, key)] = float(value)
    # The committed baseline format stores gated counters explicitly
    # (with their direction); pick those up too.
    for c in doc.get("counters", []):
        counters[(c["benchmark"], c["counter"])] = float(c["value"])
    return times, counters


def load_baseline_directions(path_or_obj):
    """Return {(benchmark, counter): higher_is_better} from a baseline."""
    if isinstance(path_or_obj, dict):
        doc = path_or_obj
    else:
        doc = json.loads(Path(path_or_obj).read_text())
    return {
        (c["benchmark"], c["counter"]):
            bool(c.get("higher_is_better",
                       counter_higher_is_better(c["counter"])))
        for c in doc.get("counters", [])
    }


def load_baseline_ratios(path_or_obj):
    """Return the baseline's ratio-gate list (possibly empty)."""
    if isinstance(path_or_obj, dict):
        doc = path_or_obj
    else:
        doc = json.loads(Path(path_or_obj).read_text())
    ratios = doc.get("ratios", [])
    for r in ratios:
        for side in ("numerator", "denominator"):
            if side not in r or "benchmark" not in r[side] \
                    or "counter" not in r[side]:
                raise SystemExit(
                    f"error: ratio '{r.get('name', '?')}' needs "
                    f"{side}.benchmark and {side}.counter")
        if "min_ratio" not in r:
            raise SystemExit(
                f"error: ratio '{r.get('name', '?')}' needs min_ratio")
    return ratios


def merge_currents(paths):
    times = {}
    counters = {}
    for p in paths:
        t, c = load_benchmarks(p)
        for name, ns in t.items():
            if name in times:
                raise SystemExit(
                    f"error: benchmark '{name}' appears in more than one "
                    "--current file")
            times[name] = ns
        counters.update(c)
    return times, counters


def write_baseline(path, benchmarks, counters=None, directions=None,
                   ratios=None):
    counters = counters or {}
    directions = directions or {}
    doc = {
        "comment": [
            "Committed benchmark baseline for tools/check_bench_regression.py.",
            "Refresh with: check_bench_regression.py --baseline <this file>",
            "  --current <run.json> [--current ...] --update-baseline",
        ],
        "benchmarks": [
            {"name": name, "real_time": ns, "time_unit": "ns",
             "run_type": "iteration"}
            for name, ns in sorted(benchmarks.items())
        ],
        "counters": [
            {"benchmark": bench, "counter": counter, "value": value,
             "higher_is_better": directions.get(
                 (bench, counter), counter_higher_is_better(counter))}
            for (bench, counter), value in sorted(counters.items())
        ],
    }
    if ratios:
        doc["ratios"] = ratios
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")


def compare(baseline, current, threshold_pct):
    """Return (failures, lines): gate verdict plus a printable table."""
    failures = []
    lines = []
    for name in sorted(baseline):
        base_ns = baseline[name]
        if name not in current:
            failures.append(f"{name}: present in baseline but not measured")
            lines.append(f"  MISSING {name}")
            continue
        cur_ns = current[name]
        delta_pct = (cur_ns - base_ns) / base_ns * 100.0 if base_ns else 0.0
        verdict = "ok"
        if delta_pct > threshold_pct:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: {base_ns:.0f} ns -> {cur_ns:.0f} ns "
                f"({delta_pct:+.1f}% > +{threshold_pct:.0f}%)")
        lines.append(
            f"  {verdict:>9} {name}: {base_ns:.0f} ns -> {cur_ns:.0f} ns "
            f"({delta_pct:+.1f}%)")
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"      NEW {name}: {current[name]:.0f} ns "
                     "(not gated; refresh the baseline to gate it)")
    return failures, lines


def compare_counters(baseline, current, directions, threshold_pct):
    """Direction-aware counter gate. Same return shape as compare()."""
    failures = []
    lines = []
    for key in sorted(baseline):
        bench, counter = key
        base = baseline[key]
        label = f"{bench} [{counter}]"
        if key not in current:
            failures.append(f"{label}: present in baseline but not measured")
            lines.append(f"  MISSING {label}")
            continue
        cur = current[key]
        higher_better = directions.get(key, counter_higher_is_better(counter))
        delta_pct = (cur - base) / base * 100.0 if base else 0.0
        # The regression direction: a drop for higher-is-better
        # counters, growth for lower-is-better ones.
        worsened_pct = -delta_pct if higher_better else delta_pct
        verdict = "ok"
        if worsened_pct > threshold_pct:
            verdict = "REGRESSED"
            arrow = "dropped" if higher_better else "grew"
            failures.append(
                f"{label}: {base:.6g} -> {cur:.6g} ({arrow} "
                f"{worsened_pct:.1f}% > {threshold_pct:.0f}%)")
        lines.append(
            f"  {verdict:>9} {label}: {base:.6g} -> {cur:.6g} "
            f"({delta_pct:+.1f}%, "
            f"{'higher' if higher_better else 'lower'} is better)")
    for key in sorted(set(current) - set(baseline)):
        bench, counter = key
        lines.append(f"      NEW {bench} [{counter}]: {current[key]:.6g} "
                     "(not gated; refresh the baseline to gate it)")
    return failures, lines


def compare_ratios(ratios, counters):
    """Ratio floors between two counters of the current run. Same
    return shape as compare()."""
    failures = []
    lines = []
    for r in ratios:
        name = r.get("name", "?")
        num_key = (r["numerator"]["benchmark"], r["numerator"]["counter"])
        den_key = (r["denominator"]["benchmark"], r["denominator"]["counter"])
        floor = float(r["min_ratio"])
        missing = [f"{b} [{c}]" for b, c in (num_key, den_key)
                   if (b, c) not in counters]
        if missing:
            failures.append(
                f"ratio {name}: operand(s) not measured: "
                + ", ".join(missing))
            lines.append(f"  MISSING ratio {name}")
            continue
        den = counters[den_key]
        if den == 0:
            failures.append(f"ratio {name}: denominator is zero")
            lines.append(f"  REGRESSED ratio {name}: denominator is zero")
            continue
        ratio = counters[num_key] / den
        verdict = "ok"
        if ratio < floor:
            verdict = "REGRESSED"
            failures.append(
                f"ratio {name}: {ratio:.2f}x < required {floor:.2f}x "
                f"({num_key[0]} [{num_key[1]}] = {counters[num_key]:.6g} vs "
                f"{den_key[0]} [{den_key[1]}] = {den:.6g})")
        lines.append(
            f"  {verdict:>9} ratio {name}: {ratio:.2f}x "
            f"(floor {floor:.2f}x)")
    return failures, lines


def self_test():
    """Exercise the gate end to end with synthetic results."""
    def doc(scale, cells=110000.0, rss=18.0):
        return {
            "benchmarks": [
                {"name": "BM_Fast", "real_time": 100.0 * scale,
                 "time_unit": "ns", "run_type": "iteration"},
                {"name": "BM_Slow/8", "real_time": 2.0 * scale,
                 "time_unit": "ms", "run_type": "iteration",
                 # items_per_second is derived bookkeeping, never a
                 # gated counter.
                 "items_per_second": 4.0e6 / scale},
                {"name": "BM_Stream", "real_time": 10.0 * scale,
                 "time_unit": "s", "run_type": "iteration",
                 "cells_per_s": cells, "peak_rss_mb": rss},
                # aggregates must never gate
                {"name": "BM_Slow/8_mean", "real_time": 99.0,
                 "time_unit": "ms", "run_type": "aggregate"},
                # ...including aggregate_name rows that omit run_type
                # (or call it an iteration): without the aggregate_name
                # check this row would overwrite BM_Slow/8's measurement
                # with a 99 ms "regression".
                {"name": "BM_Slow/8", "real_time": 99.0,
                 "time_unit": "ms", "aggregate_name": "mean"},
            ]
        }

    baseline, base_counters = load_benchmarks(doc(1.0))
    assert set(baseline) == {"BM_Fast", "BM_Slow/8", "BM_Stream"}, baseline
    assert baseline["BM_Slow/8"] == 2.0e6, baseline
    assert set(base_counters) == {("BM_Stream", "cells_per_s"),
                                  ("BM_Stream", "peak_rss_mb")}, base_counters

    # Direction heuristic: throughput up, footprint down.
    assert counter_higher_is_better("cells_per_s")
    assert not counter_higher_is_better("peak_rss_mb")
    directions = {key: counter_higher_is_better(key[1])
                  for key in base_counters}

    # Unchanged run: passes.
    cur_t, cur_c = load_benchmarks(doc(1.0))
    failures, _ = compare(baseline, cur_t, 20.0)
    assert not failures, failures
    failures, _ = compare_counters(base_counters, cur_c, directions, 20.0)
    assert not failures, failures

    # A +10% drift stays under a 20% gate.
    failures, _ = compare(baseline, load_benchmarks(doc(1.10))[0], 20.0)
    assert not failures, failures

    # An injected +25% regression fails it, naming every benchmark.
    failures, _ = compare(baseline, load_benchmarks(doc(1.25))[0], 20.0)
    assert len(failures) == 3, failures

    # A benchmark that vanishes from the run fails the gate.
    shrunk = load_benchmarks(doc(1.0))[0]
    del shrunk["BM_Fast"]
    failures, _ = compare(baseline, shrunk, 20.0)
    assert failures and "not measured" in failures[0], failures

    # A new benchmark is reported but does not gate.
    grown = dict(load_benchmarks(doc(1.0))[0], BM_New=5.0)
    failures, lines = compare(baseline, grown, 20.0)
    assert not failures, failures
    assert any("NEW BM_New" in l for l in lines), lines

    # Counter gates are direction-aware: a 30% throughput drop fails...
    _, dropped = load_benchmarks(doc(1.0, cells=110000.0 * 0.7))
    failures, _ = compare_counters(base_counters, dropped, directions, 20.0)
    assert len(failures) == 1 and "cells_per_s" in failures[0], failures
    # ...a 30% throughput *gain* passes...
    _, gained = load_benchmarks(doc(1.0, cells=110000.0 * 1.3))
    failures, _ = compare_counters(base_counters, gained, directions, 20.0)
    assert not failures, failures
    # ...a 30% RSS growth fails...
    _, fat = load_benchmarks(doc(1.0, rss=18.0 * 1.3))
    failures, _ = compare_counters(base_counters, fat, directions, 20.0)
    assert len(failures) == 1 and "peak_rss_mb" in failures[0], failures
    # ...a 30% RSS reduction passes...
    _, lean = load_benchmarks(doc(1.0, rss=18.0 * 0.7))
    failures, _ = compare_counters(base_counters, lean, directions, 20.0)
    assert not failures, failures
    # ...and a counter that vanishes from the run fails.
    _, partial = load_benchmarks(doc(1.0))
    del partial[("BM_Stream", "peak_rss_mb")]
    failures, _ = compare_counters(base_counters, partial, directions, 20.0)
    assert failures and "not measured" in failures[0], failures

    # Ratio gates: a floor between two counters of the same run.
    ratios = [{"name": "stream_vs_fast",
               "numerator": {"benchmark": "BM_Stream",
                             "counter": "cells_per_s"},
               "denominator": {"benchmark": "BM_Stream",
                               "counter": "peak_rss_mb"},
               "min_ratio": 5000.0}]
    # 110000 / 18 = 6111x: clears the 5000x floor.
    failures, _ = compare_ratios(ratios, base_counters)
    assert not failures, failures
    # A throughput drop to 80000 (4444x) violates it.
    _, degraded = load_benchmarks(doc(1.0, cells=80000.0))
    failures, _ = compare_ratios(ratios, degraded)
    assert len(failures) == 1 and "required 5000.00x" in failures[0], failures
    # A vanished operand fails rather than silently passing.
    _, partial = load_benchmarks(doc(1.0))
    del partial[("BM_Stream", "cells_per_s")]
    failures, _ = compare_ratios(ratios, partial)
    assert failures and "not measured" in failures[0], failures
    # A zero denominator is an explicit failure, not a crash.
    _, zeroed = load_benchmarks(doc(1.0, rss=0.0))
    failures, _ = compare_ratios(ratios, zeroed)
    assert failures and "zero" in failures[0], failures

    # --update-baseline round-trips benchmarks, counters, directions,
    # and preserves the ratio policy verbatim.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "baseline.json"
        write_baseline(path, baseline, base_counters, directions, ratios)
        rt_times, rt_counters = load_benchmarks(path)
        assert rt_times == baseline
        assert rt_counters == base_counters, rt_counters
        assert load_baseline_directions(path) == directions
        assert load_baseline_ratios(path) == ratios
        # A refresh from new measurements keeps the floors.
        write_baseline(path, rt_times, rt_counters, directions,
                       load_baseline_ratios(path))
        assert load_baseline_ratios(path) == ratios
    print("self-test: all gate behaviours verified")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Fail CI when a benchmark regresses past a threshold.")
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--current", action="append", default=[],
                        help="google-benchmark JSON result (repeatable)")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="max tolerated real-time regression, %% "
                             "(default: 20)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline from the --current runs "
                             "instead of gating")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate logic on synthetic data")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and at least one --current are required "
                     "(or --self-test)")

    current, current_counters = merge_currents(args.current)
    if args.update_baseline:
        # Keep manually-set directions and the ratio policy from the
        # previous baseline (floors are policy, not measurements).
        directions = {}
        ratios = []
        if Path(args.baseline).exists():
            directions = load_baseline_directions(args.baseline)
            ratios = load_baseline_ratios(args.baseline)
        write_baseline(args.baseline, current, current_counters, directions,
                       ratios)
        print(f"baseline updated: {len(current)} benchmarks, "
              f"{len(current_counters)} counters, {len(ratios)} ratio "
              f"floors -> {args.baseline}")
        return 0

    baseline, baseline_counters = load_benchmarks(args.baseline)
    if not baseline:
        raise SystemExit(f"error: baseline {args.baseline} has no benchmarks")
    directions = load_baseline_directions(args.baseline)
    ratios = load_baseline_ratios(args.baseline)
    failures, lines = compare(baseline, current, args.threshold)
    counter_failures, counter_lines = compare_counters(
        baseline_counters, current_counters, directions, args.threshold)
    failures += counter_failures
    ratio_failures, ratio_lines = compare_ratios(ratios, current_counters)
    failures += ratio_failures
    print(f"benchmark regression gate: {len(baseline)} gated, "
          f"{len(baseline_counters)} counters, {len(ratios)} ratio floors, "
          f"threshold +{args.threshold:.0f}% real time")
    print("\n".join(lines + counter_lines + ratio_lines))
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("PASS: no benchmark or counter regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
