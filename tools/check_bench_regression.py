#!/usr/bin/env python3
"""Benchmark-regression gate for the engine/sweep benches.

Compares one or more google-benchmark ``--benchmark_format=json`` (or
``--benchmark_out=<file> --benchmark_out_format=json``) result files
against a committed baseline and fails when any benchmark's real time
regressed by more than the threshold.

Usage:
  check_bench_regression.py --baseline bench/baseline.json \
      --current engine.json [--current sweep.json ...] [--threshold 20]

  # refresh the committed baseline from the current run(s)
  check_bench_regression.py --baseline bench/baseline.json \
      --current engine.json --current sweep.json --update-baseline

  # prove the gate works (no files needed): passes an unchanged run,
  # fails an injected +25% regression, round-trips --update-baseline
  check_bench_regression.py --self-test

Gate rules:
  * a benchmark slower than baseline by > threshold %  -> FAIL
  * a baseline benchmark missing from the current runs -> FAIL
    (silently dropping a benchmark is how a gate rots)
  * a new benchmark absent from the baseline           -> note only;
    commit a refreshed baseline to start gating it
  * aggregate rows (mean/median/stddev/cv) are ignored; only
    per-iteration measurements gate.

Times are normalized to nanoseconds before comparing, so a baseline
written in ms gates a run reported in ns.
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def _to_ns(value, unit):
    try:
        return float(value) * _NS_PER_UNIT[unit]
    except KeyError:
        raise SystemExit(f"error: unknown time_unit '{unit}'")


def load_benchmarks(path_or_obj):
    """Return {name: real_time_ns} for one result file (or parsed dict)."""
    if isinstance(path_or_obj, dict):
        doc = path_or_obj
    else:
        try:
            doc = json.loads(Path(path_or_obj).read_text())
        except FileNotFoundError:
            raise SystemExit(f"error: no such file: {path_or_obj}")
        except json.JSONDecodeError as e:
            raise SystemExit(f"error: {path_or_obj} is not JSON: {e}")
    out = {}
    for b in doc.get("benchmarks", []):
        # google-benchmark marks mean/median/stddev rows as aggregates
        # three different ways depending on version and reporting flags:
        # run_type == "aggregate", an aggregate_name field (present even
        # when run_type is omitted or left "iteration", e.g. under
        # --benchmark_report_aggregates_only), or only a name suffix.
        # Treat any of them as an aggregate: they must never gate, and
        # must never overwrite the per-iteration row of the same name.
        if b.get("run_type", "iteration") != "iteration":
            continue
        if "aggregate_name" in b:
            continue
        name = b["name"]
        if any(name.endswith(s) for s in ("_mean", "_median", "_stddev", "_cv")):
            continue
        out[name] = _to_ns(b["real_time"], b.get("time_unit", "ns"))
    return out


def merge_currents(paths):
    merged = {}
    for p in paths:
        for name, ns in load_benchmarks(p).items():
            if name in merged:
                raise SystemExit(
                    f"error: benchmark '{name}' appears in more than one "
                    "--current file")
            merged[name] = ns
    return merged


def write_baseline(path, benchmarks):
    doc = {
        "comment": [
            "Committed benchmark baseline for tools/check_bench_regression.py.",
            "Refresh with: check_bench_regression.py --baseline <this file>",
            "  --current <run.json> [--current ...] --update-baseline",
        ],
        "benchmarks": [
            {"name": name, "real_time": ns, "time_unit": "ns",
             "run_type": "iteration"}
            for name, ns in sorted(benchmarks.items())
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")


def compare(baseline, current, threshold_pct):
    """Return (failures, lines): gate verdict plus a printable table."""
    failures = []
    lines = []
    for name in sorted(baseline):
        base_ns = baseline[name]
        if name not in current:
            failures.append(f"{name}: present in baseline but not measured")
            lines.append(f"  MISSING {name}")
            continue
        cur_ns = current[name]
        delta_pct = (cur_ns - base_ns) / base_ns * 100.0 if base_ns else 0.0
        verdict = "ok"
        if delta_pct > threshold_pct:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: {base_ns:.0f} ns -> {cur_ns:.0f} ns "
                f"({delta_pct:+.1f}% > +{threshold_pct:.0f}%)")
        lines.append(
            f"  {verdict:>9} {name}: {base_ns:.0f} ns -> {cur_ns:.0f} ns "
            f"({delta_pct:+.1f}%)")
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"      NEW {name}: {current[name]:.0f} ns "
                     "(not gated; refresh the baseline to gate it)")
    return failures, lines


def self_test():
    """Exercise the gate end to end with synthetic results."""
    def doc(scale):
        return {
            "benchmarks": [
                {"name": "BM_Fast", "real_time": 100.0 * scale,
                 "time_unit": "ns", "run_type": "iteration"},
                {"name": "BM_Slow/8", "real_time": 2.0 * scale,
                 "time_unit": "ms", "run_type": "iteration"},
                # aggregates must never gate
                {"name": "BM_Slow/8_mean", "real_time": 99.0,
                 "time_unit": "ms", "run_type": "aggregate"},
                # ...including aggregate_name rows that omit run_type
                # (or call it an iteration): without the aggregate_name
                # check this row would overwrite BM_Slow/8's measurement
                # with a 99 ms "regression".
                {"name": "BM_Slow/8", "real_time": 99.0,
                 "time_unit": "ms", "aggregate_name": "mean"},
            ]
        }

    baseline = load_benchmarks(doc(1.0))
    assert set(baseline) == {"BM_Fast", "BM_Slow/8"}, baseline
    assert baseline["BM_Slow/8"] == 2.0e6, baseline

    # Unchanged run: passes.
    failures, _ = compare(baseline, load_benchmarks(doc(1.0)), 20.0)
    assert not failures, failures

    # A +10% drift stays under a 20% gate.
    failures, _ = compare(baseline, load_benchmarks(doc(1.10)), 20.0)
    assert not failures, failures

    # An injected +25% regression fails it, naming every benchmark.
    failures, _ = compare(baseline, load_benchmarks(doc(1.25)), 20.0)
    assert len(failures) == 2, failures

    # A benchmark that vanishes from the run fails the gate.
    shrunk = load_benchmarks(doc(1.0))
    del shrunk["BM_Fast"]
    failures, _ = compare(baseline, shrunk, 20.0)
    assert failures and "not measured" in failures[0], failures

    # A new benchmark is reported but does not gate.
    grown = dict(load_benchmarks(doc(1.0)), BM_New=5.0)
    failures, lines = compare(baseline, grown, 20.0)
    assert not failures, failures
    assert any("NEW BM_New" in l for l in lines), lines

    # --update-baseline round-trips through the file format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "baseline.json"
        write_baseline(path, baseline)
        assert load_benchmarks(path) == baseline
    print("self-test: all gate behaviours verified")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Fail CI when a benchmark regresses past a threshold.")
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--current", action="append", default=[],
                        help="google-benchmark JSON result (repeatable)")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="max tolerated real-time regression, %% "
                             "(default: 20)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline from the --current runs "
                             "instead of gating")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate logic on synthetic data")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and at least one --current are required "
                     "(or --self-test)")

    current = merge_currents(args.current)
    if args.update_baseline:
        write_baseline(args.baseline, current)
        print(f"baseline updated: {len(current)} benchmarks -> "
              f"{args.baseline}")
        return 0

    baseline = load_benchmarks(args.baseline)
    if not baseline:
        raise SystemExit(f"error: baseline {args.baseline} has no benchmarks")
    failures, lines = compare(baseline, current, args.threshold)
    print(f"benchmark regression gate: {len(baseline)} gated, "
          f"threshold +{args.threshold:.0f}% real time")
    print("\n".join(lines))
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("PASS: no benchmark regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
