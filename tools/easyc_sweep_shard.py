#!/usr/bin/env python3
"""Run a sharded easyc sweep: N `--sweep-shard i/N` worker processes in
parallel, then one `--sweep-merge` step, printing the merged report (which
is byte-identical to a single-process `--sweep` run in exact stats mode).

Standard library only. Example:

    tools/easyc_sweep_shard.py --cli build/easyc_cli --workers 4 \
        --sweep 'aci=25:600:6;pue=1.1,1.3,1.6;util=0.5:0.95:4;mc=800@42' \
        --sweep-records 40 --cells-out cells.csv

Worker partials (part<i>.ezpart) and cache snapshots (shard<i>.snap) land
in --dir (default: a fresh temp directory, removed afterwards unless
--keep). The snapshots are what a later run loads with easyc_serve's
--cache-load to start warm.
"""
import argparse
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(
        description="shard an easyc sweep over worker processes and merge")
    parser.add_argument("--cli", required=True,
                        help="path to the easyc_cli binary")
    parser.add_argument("--sweep", required=True,
                        help="axis spec, exactly as for easyc_cli --sweep")
    parser.add_argument("--sweep-base",
                        help="base scenario (default: the CLI's default)")
    parser.add_argument("--workers", type=int, default=4,
                        help="number of shard worker processes (default 4)")
    parser.add_argument("--dir",
                        help="working directory for partials/snapshots "
                             "(default: fresh temp dir, removed afterwards)")
    parser.add_argument("--keep", action="store_true",
                        help="keep partials and snapshots in --dir")
    parser.add_argument("--sweep-records", type=int,
                        help="forwarded to every worker and the merge")
    parser.add_argument("--sweep-batch", type=int,
                        help="forwarded to every worker")
    parser.add_argument("--sweep-stats", choices=["exact", "streaming", "auto"],
                        help="forwarded to every worker")
    parser.add_argument("--threads", type=int,
                        help="worker threads per shard process")
    parser.add_argument("--cells-out",
                        help="forwarded to the merge step")
    parser.add_argument("--cells-format",
                        help="forwarded to the merge step (csv, bin, csv,bin)")
    args = parser.parse_args()

    if args.workers < 1:
        parser.error("--workers must be at least 1")
    # Resolve so a relative "./easyc_cli" survives str() (Path drops
    # the "./", which would send Popen off to $PATH).
    cli = Path(args.cli).resolve()
    if not cli.exists():
        parser.error(f"--cli binary not found: {cli}")

    if args.dir:
        workdir = Path(args.dir)
        workdir.mkdir(parents=True, exist_ok=True)
        made_temp = False
    else:
        workdir = Path(tempfile.mkdtemp(prefix="easyc-shard-"))
        made_temp = True

    common = [str(cli), f"--sweep={args.sweep}"]
    if args.sweep_base:
        common.append(f"--sweep-base={args.sweep_base}")
    if args.sweep_records is not None:
        common.append(f"--sweep-records={args.sweep_records}")

    try:
        procs = []
        partials = []
        for i in range(1, args.workers + 1):
            part = workdir / f"part{i}.ezpart"
            snap = workdir / f"shard{i}.snap"
            partials.append(part)
            cmd = common + [
                f"--sweep-shard={i}/{args.workers}",
                f"--shard-out={part}",
                f"--cache-file={snap}",
            ]
            if args.sweep_batch is not None:
                cmd.append(f"--sweep-batch={args.sweep_batch}")
            if args.sweep_stats:
                cmd.append(f"--sweep-stats={args.sweep_stats}")
            if args.threads is not None:
                cmd.append(f"--threads={args.threads}")
            procs.append((i, subprocess.Popen(cmd)))

        failed = [i for i, p in procs if p.wait() != 0]
        if failed:
            shards = ", ".join(f"{i}/{args.workers}" for i in failed)
            print(f"error: shard worker(s) {shards} failed", file=sys.stderr)
            return 1

        merge = common + ["--sweep-merge=" + ",".join(str(p) for p in partials)]
        if args.cells_out:
            merge.append(f"--cells-out={args.cells_out}")
        if args.cells_format:
            merge.append(f"--cells-format={args.cells_format}")
        rc = subprocess.call(merge)
        if rc != 0:
            return rc
        if args.keep or args.dir:
            print(f"partials and snapshots kept in {workdir}", file=sys.stderr)
        return 0
    finally:
        if made_temp and not args.keep:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
