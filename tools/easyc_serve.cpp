// easyc_serve — the long-lived assessment daemon.
//
// Pipe mode (default): answers the line protocol on stdin/stdout,
// one session, until EOF or a `shutdown` request.
//
//   easyc_serve --cache-file=warm.snap < requests.txt
//
// TCP mode: a loopback listener, one session per connection, all
// sharing the hot engine. --tcp=0 binds an ephemeral port; the bound
// port goes to stderr and (for scripts) to --port-file.
//
//   easyc_serve --tcp=0 --port-file=port.txt --cache-file=warm.snap
//
// Diagnostics go to stderr; reply payloads are byte-identical cold,
// warm-started, or interleaved with concurrent requests (CI diffs
// them). SIGTERM/SIGINT drain in-flight requests, snapshot the cache,
// and exit 0 — a supervisor restart never loses the warm state.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <optional>
#include <string>

#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

namespace service = easyc::service;
namespace util = easyc::util;

// The signal handler's entire world: request_shutdown() is
// async-signal-safe (atomic store + one pipe write), so SIGTERM during
// a blocking read or mid-request needs no self-pipe bookkeeping here.
std::atomic<service::AssessmentServer*> g_server{nullptr};

void handle_signal(int) {
  if (service::AssessmentServer* server = g_server.load()) {
    server->request_shutdown();
  }
}

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must wake
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  // Replies to a vanished pipe client must surface as EPIPE (the sink
  // marks itself failed), not kill the process. Socket sends already
  // use MSG_NOSIGNAL.
  signal(SIGPIPE, SIG_IGN);
}

easyc::analysis::AssessmentEngine::BatchKernel parse_batch_kernel(
    const std::optional<std::string>& text) {
  using BatchKernel = easyc::analysis::AssessmentEngine::BatchKernel;
  if (!text || *text == "auto") return BatchKernel::kAuto;
  if (*text == "scalar") return BatchKernel::kScalar;
  if (*text == "soa") return BatchKernel::kSoa;
  throw util::Error("--batch-kernel wants scalar, soa, or auto; got '" +
                    *text + "'");
}

void print_notes(const std::vector<std::string>& notes) {
  for (const std::string& note : notes) {
    std::fprintf(stderr, "%s\n", note.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "easyc_serve — long-lived assessment server answering the "
      "line-delimited request protocol (see README.md, \"Server mode\")");
  args.add_flag("tcp",
                "listen on a loopback TCP port instead of stdin/stdout "
                "(0 = ephemeral; the bound port is reported on stderr)");
  args.add_flag("port-file",
                "write the bound TCP port to this file (for scripts that "
                "start the server with --tcp=0)");
  args.add_flag("threads",
                "worker threads of the shared pool (default: hardware "
                "concurrency); results are bit-identical for every value");
  args.add_flag("admission",
                "concurrent request executors (default 2); 1 serializes "
                "requests, more lets cheap requests overtake a long sweep");
  args.add_flag("cache-file",
                "warm-start the assessment cache from this snapshot when it "
                "exists and save it back on shutdown/SIGTERM");
  args.add_flag("batch-kernel",
                "cache-miss fill path: soa, scalar, or auto (default)");
  args.add_flag("cache-capacity",
                "resident assessment bound (default 0 = unbounded)");
  args.add_flag("max-sweep-cells",
                "reject sweep requests expanding past this many cells "
                "(default 1048576) — unless --shard-workers fans them out");
  args.add_flag("shard-workers",
                "fan sweep requests above --max-sweep-cells out to this "
                "many easyc --sweep-shard worker subprocesses and merge "
                "their EZPART partials (default 0 = refuse oversized "
                "sweeps); needs --shard-exec");
  args.add_flag("shard-exec",
                "path to the easyc CLI binary --shard-workers launches");
  args.add_flag("shard-dir",
                "directory for per-request shard working subdirectories "
                "(default: $TMPDIR or /tmp)");
  args.add_flag("cache-load",
                "comma-separated extra snapshot files loaded additively "
                "after --cache-file at startup (resident entries win) — "
                "e.g. the snapshots a sharded run's workers shipped");
  args.add_flag("help", "show usage", /*takes_value=*/false);
  args.allow_positional(false);

  try {
    args.parse(argc, argv);
    if (args.has("help")) {
      std::fputs(args.usage(argv[0]).c_str(), stdout);
      return 0;
    }

    service::ServerOptions options;
    if (auto threads = args.get_int("threads")) {
      if (*threads < 1) throw util::Error("--threads must be at least 1");
      options.threads = static_cast<unsigned>(*threads);
    }
    if (auto admission = args.get_int("admission")) {
      if (*admission < 1) throw util::Error("--admission must be at least 1");
      options.admission = static_cast<unsigned>(*admission);
    }
    options.cache_file = args.get("cache-file");
    options.batch_kernel = parse_batch_kernel(args.get("batch-kernel"));
    if (auto capacity = args.get_int("cache-capacity")) {
      if (*capacity < 0) {
        throw util::Error("--cache-capacity must be non-negative");
      }
      options.cache_capacity = static_cast<size_t>(*capacity);
    }
    if (auto cells = args.get_int("max-sweep-cells")) {
      if (*cells < 1) {
        throw util::Error("--max-sweep-cells must be at least 1");
      }
      options.max_sweep_cells = static_cast<size_t>(*cells);
    }
    if (auto workers = args.get_int("shard-workers")) {
      if (*workers < 0) {
        throw util::Error("--shard-workers must be non-negative");
      }
      if (*workers == 1) {
        throw util::Error(
            "--shard-workers wants 0 (refuse oversized sweeps) or >= 2 "
            "(fan out); a 1-worker fan-out is just a slower refusal of "
            "--max-sweep-cells");
      }
      options.shard_workers = static_cast<unsigned>(*workers);
    }
    if (auto exec = args.get("shard-exec")) options.shard_exec = *exec;
    if (options.shard_workers >= 2 && options.shard_exec.empty()) {
      throw util::Error("--shard-workers needs --shard-exec=<easyc binary>");
    }
    if (!options.shard_exec.empty() && options.shard_workers < 2) {
      throw util::Error("--shard-exec applies only with --shard-workers");
    }
    if (auto dir = args.get("shard-dir")) options.shard_dir = *dir;
    if (args.has("shard-dir") && options.shard_workers < 2) {
      throw util::Error("--shard-dir applies only with --shard-workers");
    }
    if (auto loads = args.get("cache-load")) {
      for (const auto& raw : util::split(*loads, ',')) {
        const std::string path(util::trim(raw));
        if (!path.empty()) options.cache_load.push_back(path);
      }
    }
    std::optional<long long> tcp_port = args.get_int("tcp");
    if (args.has("tcp") && !tcp_port) {
      throw util::Error("--tcp wants a port number (0 = ephemeral)");
    }
    if (tcp_port && (*tcp_port < 0 || *tcp_port > 65535)) {
      throw util::Error("--tcp wants a port in 0..65535");
    }
    if (args.has("port-file") && !tcp_port) {
      throw util::Error("--port-file applies only to --tcp servers");
    }

    service::AssessmentServer server(options);
    print_notes(server.warm_start());
    g_server.store(&server);
    install_signal_handlers();

    if (tcp_port) {
      const uint16_t port =
          server.listen_tcp(static_cast<uint16_t>(*tcp_port));
      std::fprintf(stderr, "easyc_serve: listening on 127.0.0.1:%u\n", port);
      if (auto port_file = args.get("port-file")) {
        if (FILE* f = std::fopen(port_file->c_str(), "w")) {
          std::fprintf(f, "%u\n", port);
          std::fclose(f);
        } else {
          throw util::Error("cannot write --port-file: " + *port_file);
        }
      }
      server.serve_tcp();
    } else {
      service::FdSource in(STDIN_FILENO, server.wake_fd());
      service::FdSink out(STDOUT_FILENO, /*is_socket=*/false);
      server.serve(in, out);
    }

    // Snapshot after every in-flight request has replied — the same
    // atomic temp+rename path the CLI uses, so a SIGTERM mid-request
    // can truncate a session, never the snapshot file.
    g_server.store(nullptr);
    print_notes(server.save_snapshot());
    std::fprintf(stderr, "easyc_serve: served %llu requests\n",
                 static_cast<unsigned long long>(server.served()));
    return 0;
  } catch (const util::ParseError& e) {
    std::fprintf(stderr, "error: %s\nrun %s --help for usage\n", e.what(),
                 argv[0]);
    return 1;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
