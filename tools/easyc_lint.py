#!/usr/bin/env python3
"""Project lint: the determinism and memory-safety invariants generic
tools cannot know.

The repo's headline guarantee is byte-identical output across thread
counts, cache states, warm restarts, and shard merges. Several of the
rules that guarantee rests on live in ARCHITECTURE.md prose — hash-map
iteration order must never reach a payload, floats print through the
pinned %.17g helper, reductions fold through RunningStat/Kahan, wire
decoding goes through checked BinaryReader primitives, locks are
RAII-held. This linter turns each of those rules into a machine check,
the same way check_docs.py enforces doc drift.

Usage:
    tools/easyc_lint.py                 # lint the repo, exit 1 on findings
    tools/easyc_lint.py --root DIR      # lint a different tree (tests)
    tools/easyc_lint.py --list-rules    # print the rule table
    tools/easyc_lint.py --self-test     # prove every rule fires

Escape hatch: a violation that is genuinely fine carries
    // easyc-lint: allow(<rule>) <reason>
on the same line or in the comment block directly above it. The reason
is mandatory; allowed findings are counted and listed in the summary,
and an allow comment that suppresses nothing is itself an error (stale
allows rot).

Standard library only; modeled on tools/check_docs.py.
"""
import argparse
import re
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# ----------------------------------------------------------------------
# Scopes. Paths are repo-relative POSIX strings.
#
# LIBRARY: everything linked into downstream binaries — determinism
# rules apply unconditionally (a "debug" rand() in a model file is one
# refactor away from a payload).
# PAYLOAD: code that renders or serializes bytes the acceptance legs
# diff (reports, CSV/EZCELLS exports, protocol frames, snapshots).
# REDUCTION: code that folds per-cell doubles into aggregates; ordinary
# left-fold accumulation there reorders under batching and breaks the
# bit-identity oracle.
# CODEC: code that decodes untrusted wire/snapshot bytes; every read
# must bounds-check through util::BinaryReader, never raw pointer
# reinterpretation.
# ----------------------------------------------------------------------
LIBRARY_PREFIXES = ("src/",)
PAYLOAD_PREFIXES = ("src/analysis/", "src/report/", "src/service/",
                    "src/easyc/codec", "src/util/ascii", "src/util/csv",
                    "src/util/stats", "src/util/serialize")
REDUCTION_PREFIXES = ("src/analysis/", "src/util/stats")
CODEC_PREFIXES = ("src/easyc/codec", "src/analysis/sweep_shard",
                  "src/util/stats", "src/parallel/sharded_cache")
# The one place the exact-precision format string may live: the pinned
# helper every float-aggregate print routes through.
PINNED_HELPER = "src/util/strings.cpp"
# The checked-reader primitive layer itself (the only file allowed to
# touch raw bytes / bit_cast).
CODEC_PRIMITIVES = "src/util/serialize.hpp"

ALLOW_RE = re.compile(r"easyc-lint:\s*allow\(([\w,\s-]+)\)\s*(.*)")
COMMENT_ONLY_RE = re.compile(r"^\s*(//|\*|/\*)")


def starts_with_any(relpath, prefixes):
    return any(relpath.startswith(p) for p in prefixes)


def mask_text(text, keep_strings):
    """Blank out comments (and optionally string/char literals) with
    spaces, preserving newlines so line numbers survive."""
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE, BLOCK, STR, CHR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = STR
                if not keep_strings:
                    out[i] = " "
                i += 1
                continue
            if c == "'":
                state = CHR
                if not keep_strings:
                    out[i] = " "
                i += 1
                continue
            i += 1
        elif state == LINE:
            if c == "\n":
                state = NORMAL
            else:
                out[i] = " "
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        else:  # STR or CHR
            quote = '"' if state == STR else "'"
            if c == "\\" and nxt:
                if not keep_strings:
                    out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = NORMAL
                if not keep_strings:
                    out[i] = " "
                i += 1
                continue
            if c != "\n" and not keep_strings:
                out[i] = " "
            i += 1
    return "".join(out)


def collect_unordered_names(code):
    """Names declared (variables, members, parameters) with an
    unordered_map/unordered_set type in comment-stripped code."""
    names = set()
    for m in re.finditer(r"\bunordered_(?:map|set)\s*<", code):
        i = m.end() - 1
        depth = 0
        while i < len(code):
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        tail = code[i + 1:i + 200]
        dm = re.match(r"\s*[&*]?\s*(\w+)\s*[;{=,)(]", tail)
        if dm:
            names.add(dm.group(1))
    return names


class FileCtx:
    def __init__(self, relpath, text):
        self.relpath = relpath
        self.text = text
        self.raw_lines = text.splitlines()
        # Comments stripped, strings blanked: for identifier matching.
        self.code_lines = mask_text(text, keep_strings=False).splitlines()
        # Comments stripped, strings kept: for format-string rules.
        self.fmt_lines = mask_text(text, keep_strings=True).splitlines()
        self.unordered_names = set()  # filled by the scanner (pairs .hpp/.cpp)


Finding = None  # (relpath, line_no 1-based, rule, message) tuples


def _grep_rule(ctx, pattern, message, lines=None):
    for idx, line in enumerate(lines if lines is not None else ctx.code_lines):
        if pattern.search(line):
            yield idx + 1, message


# --- rule implementations ---------------------------------------------

UNORDERED_ITER_FMT = ("iteration over unordered container '%s' — hash order "
                      "leaks into the output bytes; use an ordered container "
                      "or collect-and-sort first")


def rule_unordered_iteration(ctx):
    for name in sorted(ctx.unordered_names):
        esc = re.escape(name)
        # Range-for over the container, or an explicit begin() walk.
        # A bare .end() is NOT flagged: `it != map.end()` is the
        # find-compare idiom, and no iteration starts from end().
        pat = re.compile(
            r"(?:for\s*\([^;()]*:\s*(?:[\w>.\-]+\.)?" + esc + r"\s*\))"
            r"|(?:\b" + esc + r"\s*\.\s*c?r?begin\s*\(\s*\))")
        for idx, line in enumerate(ctx.code_lines):
            if pat.search(line):
                yield idx + 1, UNORDERED_ITER_FMT % name


RAW_RANDOM_PAT = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|random_device|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|gettimeofday|\bclock\s*\(\s*\)|system_clock|high_resolution_clock")


def rule_raw_random(ctx):
    yield from _grep_rule(
        ctx, RAW_RANDOM_PAT,
        "nondeterministic source (rand/time/random_device/wall clock) in "
        "library code — derive randomness from util::rng seeds and never "
        "let wall-clock values near a payload")


LOCALE_PAT = re.compile(
    r"setlocale|std::locale|\bstrftime\s*\(|\blocaltime|\bgmtime|\basctime"
    r"|\bctime\s*\(|put_time|\bimbue\s*\(")


def rule_locale(ctx):
    yield from _grep_rule(
        ctx, LOCALE_PAT,
        "locale-dependent formatting — output bytes would vary with the "
        "host locale; use the fixed-format util::strings helpers")


BARE_LOCK_PAT = re.compile(r"(\w+)\s*(?:\.|->)\s*((?:try_)?(?:un)?lock)\s*\(\s*\)")
RAII_RECEIVER_RE = re.compile(r"^(lock|lk|guard)$|(_lock|_lk|_guard)$")


def rule_bare_lock(ctx):
    for idx, line in enumerate(ctx.code_lines):
        for m in BARE_LOCK_PAT.finditer(line):
            if not RAII_RECEIVER_RE.search(m.group(1)):
                yield idx + 1, (
                    "bare %s.%s() — mutexes are RAII-held only "
                    "(lock_guard/unique_lock/scoped_lock), so an exception "
                    "or early return cannot leak a held lock"
                    % (m.group(1), m.group(2)))


PRECISION_PAT = re.compile(r"setprecision|std::fixed\b|std::scientific\b")
G17_PAT = re.compile(r"%\.17g")


def rule_pinned_float(ctx):
    if ctx.relpath != PINNED_HELPER:
        yield from _grep_rule(
            ctx, G17_PAT,
            "inline %.17g format — route exact-precision prints through "
            "util::format_exact so one helper pins the byte contract",
            lines=ctx.fmt_lines)
    if starts_with_any(ctx.relpath, PAYLOAD_PREFIXES):
        yield from _grep_rule(
            ctx, PRECISION_PAT,
            "stream-state float formatting in a payload path — "
            "setprecision/fixed/scientific leak sticky stream state; use "
            "util::format_exact / util::format_double")


ACCUMULATE_PAT = re.compile(r"\baccumulate\s*\(|\breduce\s*\(")


def rule_accumulate(ctx):
    yield from _grep_rule(
        ctx, ACCUMULATE_PAT,
        "std::accumulate/reduce in a reduction path — per-cell doubles "
        "fold through RunningStat (Kahan) so batching cannot reorder the "
        "sum; a bare left fold breaks merge identities")


CODEC_RAW_PAT = re.compile(r"reinterpret_cast\s*<|\bmemcpy\s*\(|\bbit_cast\s*<")


def rule_codec_read(ctx):
    yield from _grep_rule(
        ctx, CODEC_RAW_PAT,
        "raw byte access in a codec path — decode only through the "
        "checked util::BinaryReader primitives (bounds-checked, "
        "endian-stable); raw reinterpretation trusts the wire")


PRAGMA_PAT = re.compile(r"#\s*pragma\s+(?:GCC|clang)\s+diagnostic\s+ignored")


def rule_pragma(ctx):
    yield from _grep_rule(
        ctx, PRAGMA_PAT,
        "warning suppressed by pragma — every suppression needs an "
        "allow(pragma-suppression) comment stating why the warning is a "
        "false positive here")


RULES = [
    # (name, applies-to predicate, implementation, one-line rationale)
    ("unordered-iteration",
     lambda p: starts_with_any(p, LIBRARY_PREFIXES),
     rule_unordered_iteration,
     "hash-map iteration order must never reach rendered/serialized bytes"),
    ("raw-random",
     lambda p: starts_with_any(p, LIBRARY_PREFIXES),
     rule_raw_random,
     "library code draws randomness from seeded util::rng only"),
    ("locale-dependent",
     lambda p: starts_with_any(p, LIBRARY_PREFIXES) or p.startswith("tools/"),
     rule_locale,
     "output bytes must not vary with the host locale"),
    ("bare-lock",
     lambda p: starts_with_any(p, LIBRARY_PREFIXES),
     rule_bare_lock,
     "locks are RAII-held; manual lock()/unlock() leaks on exceptions"),
    ("pinned-float-format",
     lambda p: starts_with_any(p, LIBRARY_PREFIXES) or p.startswith("tools/"),
     rule_pinned_float,
     "exact-precision float prints route through util::format_exact"),
    ("accumulate-reduction",
     lambda p: starts_with_any(p, REDUCTION_PREFIXES),
     rule_accumulate,
     "reductions fold through RunningStat/Kahan in expansion order"),
    ("unchecked-codec-read",
     lambda p: starts_with_any(p, CODEC_PREFIXES) and p != CODEC_PRIMITIVES,
     rule_codec_read,
     "wire decoding goes through checked BinaryReader primitives"),
    ("pragma-suppression",
     lambda p: True,
     rule_pragma,
     "diagnostic pragmas carry a written false-positive rationale"),
]

SCAN_GLOBS = ["src/**/*.cpp", "src/**/*.hpp", "tools/*.cpp",
              "tests/*.cpp", "bench/*.cpp", "bench/*.hpp",
              "examples/*.cpp"]


def allows_for_line(ctx, line_no):
    """Allow tags reachable from a finding at line_no (1-based): the
    line itself, then the contiguous comment block directly above."""
    tags = []  # (rule, reason, line_no of the allow comment)
    idx = line_no - 1
    m = ALLOW_RE.search(ctx.raw_lines[idx])
    if m:
        tags.append((m, line_no))
    j = idx - 1
    while j >= 0 and COMMENT_ONLY_RE.match(ctx.raw_lines[j]):
        m = ALLOW_RE.search(ctx.raw_lines[j])
        if m:
            tags.append((m, j + 1))
        j -= 1
    out = []
    for m, at in tags:
        rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
        out.append((rules, m.group(2).strip(), at))
    return out


def scan_tree(root):
    """Returns (findings, allowed, problems). findings/allowed are
    (relpath, line, rule, message) lists; problems are strings (bad or
    stale allow comments)."""
    root = Path(root)
    files = {}
    for pattern in SCAN_GLOBS:
        for path in sorted(root.glob(pattern)):
            rel = path.relative_to(root).as_posix()
            if rel not in files:
                files[rel] = FileCtx(rel, path.read_text(errors="replace"))

    # Pair .cpp with its .hpp (and vice versa) so members declared in
    # the header are known when the source file iterates them.
    for rel, ctx in files.items():
        code = mask_text(ctx.text, keep_strings=False)
        names = collect_unordered_names(code)
        stem = rel.rsplit(".", 1)[0]
        for other_ext in (".hpp", ".cpp"):
            other = files.get(stem + other_ext)
            if other is not None and other is not ctx:
                names |= collect_unordered_names(
                    mask_text(other.text, keep_strings=False))
        ctx.unordered_names = names

    findings, allowed, problems = [], [], []
    used_allows = set()  # (relpath, allow line_no)
    for rel in sorted(files):
        ctx = files[rel]
        for rule_name, applies, impl, _ in RULES:
            if not applies(rel):
                continue
            for line_no, message in impl(ctx):
                hit = None
                for rules, reason, at in allows_for_line(ctx, line_no):
                    if rule_name in rules:
                        if not reason:
                            problems.append(
                                f"{rel}:{at}: allow({rule_name}) has no "
                                "reason — say why this is a false positive")
                        hit = (at, reason)
                        break
                if hit:
                    used_allows.add((rel, hit[0]))
                    allowed.append((rel, line_no, rule_name, hit[1]))
                else:
                    findings.append((rel, line_no, rule_name, message))
        # Stale allows: an allow comment that suppressed nothing.
        for idx, line in enumerate(ctx.raw_lines):
            m = ALLOW_RE.search(line)
            if m and (rel, idx + 1) not in used_allows:
                # The tag may sit above the violation; count it as used
                # if any allowed finding within the next few lines
                # consumed it (allows_for_line walks up, so a used tag
                # is always registered under its own line number).
                problems.append(
                    f"{rel}:{idx + 1}: stale easyc-lint allow({m.group(1)}) "
                    "— it suppresses nothing; delete it")
    return findings, allowed, problems, len(files)


# --- self test --------------------------------------------------------

SELF_TEST_FILES = {
    # path -> (content, {rule: expected_line})
    "src/analysis/planted_render.cpp": (
        "#include <unordered_map>\n"
        "#include <numeric>\n"
        "#include <iomanip>\n"
        "std::unordered_map<int, double> totals_by_rank;\n"
        "double render() {\n"
        "  double t = 0;\n"
        "  for (const auto& kv : totals_by_rank) t += kv.second;\n"
        "  std::vector<double> xs;\n"
        "  t += std::accumulate(xs.begin(), xs.end(), 0.0);\n"
        "  std::cout << std::setprecision(17) << t;\n"
        '  std::printf("%.17g", t);\n'
        "  return t;\n"
        "}\n",
        {"unordered-iteration": 7, "accumulate-reduction": 9,
         "pinned-float-format": (10, 11)}),
    "src/grid/planted_model.cpp": (
        "#include <cstdlib>\n"
        "int jitter() {\n"
        "  return rand();\n"  # raw-random
        "}\n"
        "#include <locale>\n"
        "std::locale loc;\n",  # locale-dependent
        {"raw-random": 3, "locale-dependent": 6}),
    "src/parallel/planted_lock.cpp": (
        "#include <mutex>\n"
        "std::mutex mu_;\n"
        "void f() {\n"
        "  mu_.lock();\n"  # bare-lock
        "  mu_.unlock();\n"
        "}\n",
        {"bare-lock": (4, 5)}),
    "src/easyc/codec_planted.cpp": (
        "#include <cstring>\n"
        "double f(const char* p) {\n"
        "  return *reinterpret_cast<const double*>(p);\n"  # codec read
        "}\n",
        {"unchecked-codec-read": 3}),
    "tests/planted_pragma.cpp": (
        '#pragma GCC diagnostic ignored "-Wshadow"\n',
        {"pragma-suppression": 1}),
    # An allowlisted violation: must land in `allowed`, not findings.
    "src/hw/planted_allowed.cpp": (
        "#include <mutex>\n"
        "std::mutex init_mu;\n"
        "void g() {\n"
        "  // easyc-lint: allow(bare-lock) handed to a C callback that\n"
        "  // unlocks on its own thread; RAII cannot span the callback.\n"
        "  init_mu.lock();\n"
        "}\n",
        {}),
    # A stale allow: must be reported as a problem.
    "src/top500/planted_stale.cpp": (
        "// easyc-lint: allow(raw-random) left over from a removed call\n"
        "int clean() { return 4; }\n",
        {}),
    # A clean file: must produce nothing.
    "src/report/planted_clean.cpp": (
        "#include <map>\n"
        "std::map<int, double> totals;\n"
        "double sum() {\n"
        "  double t = 0;\n"
        "  for (const auto& kv : totals) t += kv.second;\n"
        "  return t;\n"
        "}\n",
        {}),
}


def self_test():
    with tempfile.TemporaryDirectory(prefix="easyc_lint_selftest") as tmp:
        root = Path(tmp)
        expected = set()
        for rel, (content, rules) in SELF_TEST_FILES.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
            for rule, lines in rules.items():
                for line in (lines if isinstance(lines, tuple) else (lines,)):
                    expected.add((rel, line, rule))
        findings, allowed, problems, _ = scan_tree(root)

        got = {(f[0], f[1], f[2]) for f in findings}
        ok = True
        for want in sorted(expected):
            if want not in got:
                print(f"self-test FAILED: expected finding {want[2]} at "
                      f"{want[0]}:{want[1]} did not fire", file=sys.stderr)
                ok = False
        for extra in sorted(got - expected):
            print(f"self-test FAILED: unexpected finding {extra[2]} at "
                  f"{extra[0]}:{extra[1]}", file=sys.stderr)
            ok = False
        if not any(f[0] == "src/hw/planted_allowed.cpp" and f[2] == "bare-lock"
                   for f in allowed):
            print("self-test FAILED: the allowlisted bare-lock was not "
                  "counted as an allowed suppression", file=sys.stderr)
            ok = False
        if not any("planted_stale" in p and "stale" in p for p in problems):
            print("self-test FAILED: the stale allow comment was not "
                  "reported", file=sys.stderr)
            ok = False
        fired = {f[2] for f in findings} | {a[2] for a in allowed}
        for rule_name, _, _, _ in RULES:
            if rule_name not in fired:
                print(f"self-test FAILED: rule {rule_name} never fired on "
                      "its planted violation", file=sys.stderr)
                ok = False
        if not ok:
            return 1
        print(f"self-test ok: all {len(RULES)} rules fired on planted "
              f"violations ({len(findings)} findings, {len(allowed)} allowed, "
              f"{len(problems)} allow problems as expected)")
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=str(REPO),
                        help="tree to lint (default: the repo)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="prove every rule fires on a planted violation")
    args = parser.parse_args()

    if args.list_rules:
        width = max(len(r[0]) for r in RULES)
        for name, _, _, rationale in RULES:
            print(f"{name.ljust(width)}  {rationale}")
        return 0
    if args.self_test:
        return self_test()

    findings, allowed, problems, nfiles = scan_tree(args.root)
    for rel, line, rule, message in findings:
        print(f"{rel}:{line}: {rule}: {message}", file=sys.stderr)
    for problem in problems:
        print(problem, file=sys.stderr)
    if allowed:
        print(f"{len(allowed)} finding(s) suppressed by allow comments:")
        for rel, line, rule, reason in allowed:
            print(f"  {rel}:{line}: {rule} — {reason}")
    if findings or problems:
        print(f"easyc_lint: {len(findings)} finding(s), "
              f"{len(problems)} allow problem(s) across {nfiles} files",
              file=sys.stderr)
        return 1
    print(f"easyc_lint: OK — {nfiles} files clean, "
          f"{len(allowed)} allowed suppression(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
