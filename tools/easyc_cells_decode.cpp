// easyc_cells_decode — decode an EZCELLS binary cell export (easyc_cli
// --cells-format bin) back to the canonical CSV schema.
//
//   easyc_cells_decode sweep.bin [cells.csv]
//
// Output defaults to stdout. The decoder replays the stored cells
// through the same CsvCellSink the CLI's direct CSV export uses, so
// its output is byte-identical to `--cells-format csv` of the same
// sweep. Corrupt, truncated (no footer), or schema-drifted files are
// rejected with a nonzero exit, never partially trusted — every block
// is checksummed (format spec in README.md).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/sweep.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3 || std::string(argv[1]) == "--help") {
    std::fprintf(stderr,
                 "usage: %s <cells.bin> [out.csv]\n"
                 "decode an EZCELLS binary sweep cell export to CSV "
                 "(stdout when out.csv is omitted)\n",
                 argv[0]);
    return argc == 2 ? 0 : 1;
  }

  try {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      throw easyc::util::Error(std::string("cannot open ") + argv[1]);
    }

    std::ofstream out_file;
    if (argc == 3) {
      out_file.open(argv[2], std::ios::binary);
      if (!out_file) {
        throw easyc::util::Error(std::string("cannot open ") + argv[2]);
      }
    }
    std::ostream& out = argc == 3 ? out_file : std::cout;

    easyc::analysis::CsvCellSink csv(out);
    const size_t cells = easyc::analysis::read_binary_cells(in, csv);

    out.flush();
    if (!out) {
      throw easyc::util::Error("write failed for decoded CSV output");
    }
    std::fprintf(stderr, "decoded %zu cells from %s\n", cells, argv[1]);
    return 0;
  } catch (const easyc::util::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
