#!/usr/bin/env python3
"""Scripted client for easyc_serve — drives the line protocol and
re-serializes replies deterministically for CI diffing.

The server interleaves reply frames from concurrent executors, so raw
session output is not diffable across runs. This client parses the
frames and writes payloads sorted by request id, which *is* byte-stable
— cold, warm-restarted, or interleaved runs of the same request mix
must produce identical --out files (the CI serve leg diffs exactly
that). Notes and the stats trailers go to --stats-out, which is allowed
to differ run to run.

Pipe mode (spawns the server, one session on its stdin/stdout):

  tools/serve_client.py --mix tools/serve_mix.txt --out cold.txt \
      -- ./build/easyc_serve --cache-file warm.snap

TCP mode (server already listening; round-robins the mix over
--concurrency connections so requests genuinely interleave):

  tools/serve_client.py --mix tools/serve_mix.txt --tcp 7070 \
      --concurrency 4 --out tcp.txt

Exits non-zero on any err reply, a missing reply, or an aggregate
cache hit rate below --min-hit-rate.
"""

import argparse
import socket
import subprocess
import sys
import threading


def load_mix(path):
    """Request lines from a mix file; blanks and '#' comments dropped.

    Every request gets a deterministic id (its mix-file position) unless
    the line already carries one — ids are the sort key that makes the
    output diffable, so they must not depend on serving order.
    """
    requests = []
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if not any(tok.startswith("id=") for tok in line.split()):
                line += f" id=q{len(requests):03d}"
            requests.append(line)
    return requests


class FrameParser:
    """Incremental parser for reply frames on one session's byte stream."""

    def __init__(self):
        self.buf = b""
        self.replies = []

    def feed(self, data):
        self.buf += data
        while self._parse_one():
            pass

    def _parse_one(self):
        nl = self.buf.find(b"\n")
        if nl < 0:
            return False
        header = self.buf[:nl].decode("utf-8", "replace").split(" ")
        if len(header) != 4 or header[0] != "reply":
            raise SystemExit(f"bad frame header: {header}")
        rid, ok, nbytes = header[1], header[2] == "ok", int(header[3])
        rest = self.buf[nl + 1:]
        if len(rest) < nbytes:
            return False
        payload, rest = rest[:nbytes], rest[nbytes:]
        # Trailer: zero or more "note <id> ..." lines, then one
        # "stats <id> ..." line closes the frame.
        notes, stats = [], None
        scan = rest
        while True:
            nl = scan.find(b"\n")
            if nl < 0:
                return False  # trailer incomplete; wait for more bytes
            line = scan[:nl].decode("utf-8", "replace")
            scan = scan[nl + 1:]
            if line.startswith(f"note {rid} "):
                notes.append(line[len(f"note {rid} "):])
                continue
            if not line.startswith(f"stats {rid} "):
                raise SystemExit(f"bad frame trailer: {line!r}")
            stats = dict(
                kv.split("=", 1) for kv in line[len(f"stats {rid} "):].split(" ")
            )
            break
        self.buf = scan
        self.replies.append({
            "id": rid,
            "ok": ok,
            "payload": payload.decode("utf-8", "replace"),
            "notes": notes,
            "stats": stats,
        })
        return True


def run_pipe(server_cmd, requests):
    proc = subprocess.Popen(
        server_cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE
    )
    out, _ = proc.communicate(
        ("\n".join(requests) + "\n").encode("utf-8")
    )
    if proc.returncode != 0:
        raise SystemExit(f"server exited with {proc.returncode}")
    parser = FrameParser()
    parser.feed(out)
    if parser.buf:
        raise SystemExit(f"trailing bytes after last frame: {parser.buf!r}")
    return parser.replies


def run_tcp(port, requests, concurrency):
    lanes = [requests[i::concurrency] for i in range(concurrency)]
    lanes = [lane for lane in lanes if lane]
    parsers = [FrameParser() for _ in lanes]
    errors = []

    def drive(lane, parser):
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=60) as s:
                s.sendall(("\n".join(lane) + "\n").encode("utf-8"))
                s.shutdown(socket.SHUT_WR)  # EOF ends the session cleanly
                while True:
                    data = s.recv(65536)
                    if not data:
                        break
                    parser.feed(data)
            if parser.buf:
                raise SystemExit(
                    f"trailing bytes after last frame: {parser.buf!r}"
                )
        except Exception as e:  # surfaced after join
            errors.append(f"connection failed: {e}")

    threads = [
        threading.Thread(target=drive, args=(lane, parser))
        for lane, parser in zip(lanes, parsers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise SystemExit("; ".join(errors))
    return [reply for parser in parsers for reply in parser.replies]


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("--mix", required=True, help="request mix file")
    ap.add_argument("--out", required=True,
                    help="deterministic payload transcript (sorted by id)")
    ap.add_argument("--stats-out",
                    help="notes + stats transcript (may differ run to run)")
    ap.add_argument("--tcp", type=int, metavar="PORT",
                    help="connect to a listening server instead of spawning")
    ap.add_argument("--concurrency", type=int, default=1,
                    help="TCP connections to round-robin the mix over")
    ap.add_argument("--min-hit-rate", type=float, metavar="PCT",
                    help="fail unless aggregate cache hit rate >= PCT")
    ap.add_argument("--allow-errors", action="store_true",
                    help="err replies are expected (robustness mixes)")
    ap.add_argument("server_cmd", nargs="*", metavar="-- SERVER ARGS...",
                    help="server command for pipe mode")
    args = ap.parse_args()
    if bool(args.tcp) == bool(args.server_cmd):
        ap.error("exactly one of --tcp PORT or '-- server command' required")

    requests = load_mix(args.mix)
    if args.tcp:
        replies = run_tcp(args.tcp, requests, max(1, args.concurrency))
    else:
        replies = run_pipe(args.server_cmd, requests)

    if len(replies) != len(requests):
        raise SystemExit(f"sent {len(requests)} requests, "
                         f"got {len(replies)} replies")
    replies.sort(key=lambda r: r["id"])

    with open(args.out, "w", encoding="utf-8") as f:
        for r in replies:
            f.write(f"== {r['id']} {'ok' if r['ok'] else 'err'}\n")
            f.write(r["payload"])
    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as f:
            for r in replies:
                for note in r["notes"]:
                    f.write(f"{r['id']} note {note}\n")
                stats = " ".join(f"{k}={v}" for k, v in r["stats"].items())
                f.write(f"{r['id']} stats {stats}\n")

    failures = [r["id"] for r in replies if not r["ok"]]
    if failures and not args.allow_errors:
        raise SystemExit(f"err replies for: {', '.join(failures)}")

    hits = sum(int(r["stats"]["hits"]) for r in replies)
    misses = sum(int(r["stats"]["misses"]) for r in replies)
    rate = 100.0 * hits / (hits + misses) if hits + misses else 0.0
    print(f"{len(replies)} replies, cache {hits} hits / {misses} misses "
          f"({rate:.1f}% hit rate)")
    if args.min_hit_rate is not None and rate < args.min_hit_rate:
        raise SystemExit(
            f"aggregate hit rate {rate:.1f}% is below {args.min_hit_rate}%"
        )


if __name__ == "__main__":
    main()
