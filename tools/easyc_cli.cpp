// easyc — command-line carbon assessment for one system or a CSV fleet.
//
// Single system (the paper's <1 person-hour workflow):
//   easyc --name=mysystem --country=Germany --year=2024
//         --processor="AMD EPYC 9654 96C 2.4GHz" --accelerator="NVIDIA H100"
//         --nodes=256 --gpus=1024 --cpus=512 --memory-gb=196608
//         --memory-type=DDR5 --ssd-tb=3500 --cores=98304
//
// Fleet mode: --fleet=systems.csv with one system per row (columns match
// the flag names); emits a per-system CSV report to stdout.
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/audit.hpp"
#include "analysis/coverage.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/scenario.hpp"
#include "analysis/sweep.hpp"
#include "analysis/sweep_shard.hpp"
#include "easyc/amortization.hpp"
#include "easyc/model.hpp"
#include "service/server.hpp"
#include "top500/generator.hpp"
#include "top500/import.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

namespace model = easyc::model;
namespace util = easyc::util;

void declare_flags(util::ArgParser& args) {
  args.add_flag("name", "system name");
  args.add_flag("country", "country (grid intensity lookup)");
  args.add_flag("region", "sub-national grid region (optional refinement)");
  args.add_flag("year", "operation year (EasyC metric 1)");
  args.add_flag("processor", "CPU model string as on Top500.org");
  args.add_flag("accelerator", "accelerator model string (omit if none)");
  args.add_flag("cores", "total cores");
  args.add_flag("rmax", "Rmax in TFlop/s");
  args.add_flag("power-kw", "measured HPL/system power in kW");
  args.add_flag("nodes", "# compute nodes (metric 2)");
  args.add_flag("gpus", "# GPUs (metric 3)");
  args.add_flag("cpus", "# CPU packages (metric 4)");
  args.add_flag("memory-gb", "total memory capacity, GB (metric 5)");
  args.add_flag("memory-type", "DDR3/DDR4/DDR5/HBM2/HBM2e/HBM3 (metric 6)");
  args.add_flag("ssd-tb", "flash capacity, TB (metric 7)");
  args.add_flag("utilization", "average utilization in (0,1] (optional)");
  args.add_flag("annual-kwh", "metered annual energy, kWh (optional)");
  args.add_flag("service-years", "service life for amortization (default 6)");
  args.add_flag("approximate-accelerators",
                "substitute mainstream GPUs for unknown accelerators",
                /*takes_value=*/false);
  args.add_flag("fleet", "CSV file of systems (columns = flag names)");
  args.add_flag("top500",
                "official Top500.org CSV export: audit it, then report "
                "EasyC coverage and totals over the list");
  args.add_flag("scenario",
                "registered scenario to assess a --top500 list under "
                "(see --list-scenarios; default: baseline)");
  args.add_flag("list-scenarios", "list registered scenarios and exit",
                /*takes_value=*/false);
  args.add_flag("turnover",
                "run the multi-edition assessment engine over a simulated "
                "list history and report measured growth + cache stats",
                /*takes_value=*/false);
  args.add_flag("editions",
                "list editions for --turnover (default 8, minimum 2)");
  args.add_flag("cache-file",
                "persist the assessment memo cache across --turnover and "
                "--sweep runs: warm-start from this snapshot file when it "
                "exists and save it back after the run");
  args.add_flag("batch-kernel",
                "cache-miss fill path for --turnover/--sweep: soa "
                "(structure-of-arrays batch kernel), scalar (per-cell "
                "oracle), or auto (default: soa when the scenario set "
                "averages >=2 lanes per resolved profile, else scalar); "
                "results are byte-identical either way");
  args.add_flag("sweep",
                "expand an axis spec into a scenario grid and assess every "
                "derived scenario over the Nov-2024 list; e.g. "
                "\"aci=25:600:6;pue=1.1,1.3,1.6;util=0.5:0.95:4;life=4,6,8;"
                "mc=100@42\" (axes: aci, pue, fab, util, life)");
  args.add_flag("sweep-base",
                "registered scenario the sweep derives from "
                "(default: enhanced; see --list-scenarios)");
  args.add_flag("threads",
                "worker threads for --sweep (default: hardware concurrency); "
                "results are bit-identical for every value");
  args.add_flag("sweep-batch",
                "derived scenarios per engine block for --sweep (default "
                "64; bounds memory, never changes results)");
  args.add_flag("cells-out",
                "write one row per sweep cell to this file (byte-identical "
                "for any --threads/--sweep-batch/cache state; column schema "
                "in README.md)");
  args.add_flag("cells-format",
                "cell export format(s) for --cells-out: csv (default), bin "
                "(EZCELLS columnar binary; decode with easyc_cells_decode), "
                "or csv,bin to write <file>.csv and <file>.bin");
  args.add_flag("sweep-stats",
                "cross-cell distribution reduction: exact (store-all sort), "
                "streaming (O(1)-memory Welford+P² estimators), or auto "
                "(default: exact below 65536 cells, streaming above)");
  args.add_flag("sweep-records",
                "assess only the first N generated systems (default: the "
                "full simulated list); makes million-cell grids cheap to "
                "exercise");
  args.add_flag("sweep-refine",
                "adaptive refinement K@R: after the coarse grid, densify "
                "the K axes with the largest tornado swings around their "
                "steepest segments, for R rounds (e.g. 2@2); per-round "
                "cache stats go to stderr");
  args.add_flag("sweep-shard",
                "worker mode i/N (1-based): assess only this shard of the "
                "expanded grid and write an EZPART partial to --shard-out "
                "instead of a report; N workers plus --sweep-merge "
                "reproduce the single-process report byte-for-byte");
  args.add_flag("shard-out",
                "EZPART partial output file for --sweep-shard (format in "
                "README.md)");
  args.add_flag("sweep-merge",
                "merge a comma-separated list of EZPART partials (one per "
                "shard, any order) into the sweep report; the --sweep/"
                "--sweep-base/--sweep-records flags must repeat the "
                "workers' spec, and mismatched partials are rejected");
  args.add_flag("help", "show usage", /*takes_value=*/false);
}

/// Scenarios the CLI knows about: the same registry the server serves
/// from (paper + what-ifs + the full-knowledge bound), so a scenario
/// name means the same thing in a one-shot and in a daemon request.
easyc::analysis::ScenarioSet cli_scenarios() {
  return easyc::service::default_scenarios();
}

model::Inputs inputs_from_getter(
    const std::function<std::optional<std::string>(const std::string&)>&
        get) {
  model::Inputs in;
  auto str = [&](const char* key) { return get(key).value_or(""); };
  auto num = [&](const char* key) -> std::optional<double> {
    auto v = get(key);
    if (!v || util::trim(*v).empty()) return std::nullopt;
    auto d = util::parse_double(*v);
    if (!d) throw util::ParseError(std::string(key) + ": not a number");
    return d;
  };
  in.name = str("name").empty() ? "unnamed-system" : str("name");
  in.country = str("country");
  in.region = str("region");
  in.processor = str("processor");
  in.accelerator = str("accelerator");
  if (auto v = num("year")) in.operation_year = static_cast<int>(*v);
  if (auto v = num("cores")) in.total_cores = static_cast<long long>(*v);
  if (auto v = num("rmax")) in.rmax_tflops = *v;
  if (auto v = num("power-kw")) in.power_kw = *v;
  if (auto v = num("nodes")) in.num_nodes = static_cast<long long>(*v);
  if (auto v = num("gpus")) in.num_gpus = static_cast<long long>(*v);
  if (auto v = num("cpus")) in.num_cpus = static_cast<long long>(*v);
  if (auto v = num("memory-gb")) in.memory_gb = *v;
  if (auto s = get("memory-type"); s && !util::trim(*s).empty()) {
    in.memory_type = *s;
  }
  if (auto v = num("ssd-tb")) in.ssd_tb = *v;
  if (auto v = num("utilization")) in.utilization = *v;
  if (auto v = num("annual-kwh")) in.annual_energy_kwh = *v;
  return in;
}

int assess_single(const model::Inputs& in, const model::EasyCOptions& opt,
                  double service_years) {
  const model::EasyCModel easyc(opt);
  const auto a = easyc.assess(in);

  std::printf("system: %s  (%d of 9 EasyC metrics provided)\n",
              in.name.c_str(), 9 - in.num_missing());
  if (a.operational.ok()) {
    const auto& op = a.operational.value();
    std::printf("operational: %s MT CO2e/yr  [%s, PUE %.2f, %s g/kWh]\n",
                util::format_double(op.mt_co2e, 1).c_str(),
                model::energy_path_name(op.path).c_str(), op.pue,
                util::format_double(op.aci_g_kwh, 0).c_str());
  } else {
    std::printf("operational: no estimate — %s\n",
                a.operational.reasons_joined().c_str());
  }
  if (a.embodied.ok()) {
    const auto& b = a.embodied.value();
    std::printf("embodied:    %s MT CO2e  [cpu %s, gpu %s, dram %s, flash "
                "%s, platform %s, fabric %s]\n",
                util::format_double(b.total_mt, 1).c_str(),
                util::format_double(b.cpu_mt, 1).c_str(),
                util::format_double(b.gpu_mt, 1).c_str(),
                util::format_double(b.memory_mt, 1).c_str(),
                util::format_double(b.storage_mt, 1).c_str(),
                util::format_double(b.platform_mt, 1).c_str(),
                util::format_double(b.interconnect_mt, 1).c_str());
  } else {
    std::printf("embodied:    no estimate — %s\n",
                a.embodied.reasons_joined().c_str());
  }
  if (a.operational.ok() && a.embodied.ok()) {
    const auto f = model::annualize(a.operational.value(),
                                    a.embodied.value(), {service_years});
    std::printf("annualized:  %s MT CO2e/yr over %.0f-year life "
                "(embodied share %.0f%%)\n",
                util::format_double(f.total_mt, 1).c_str(), service_years,
                f.embodied_share * 100);
  }
  return (a.operational.ok() || a.embodied.ok()) ? 0 : 2;
}

int assess_fleet(const std::string& path, const model::EasyCOptions& opt) {
  const auto table = util::CsvTable::read_file(path);
  const model::EasyCModel easyc(opt);

  util::CsvTable out({"name", "operational_mt_per_yr", "energy_path",
                      "embodied_mt", "notes"});
  for (size_t row = 0; row < table.num_rows(); ++row) {
    auto get = [&](const std::string& key) -> std::optional<std::string> {
      auto col = table.column(key);
      if (!col) return std::nullopt;
      return table.cell(row, *col);
    };
    const auto in = inputs_from_getter(get);
    const auto a = easyc.assess(in);
    out.add_row(
        {in.name,
         a.operational.ok()
             ? util::format_double(a.operational.value().mt_co2e, 2)
             : "",
         a.operational.ok()
             ? model::energy_path_name(a.operational.value().path)
             : "",
         a.embodied.ok()
             ? util::format_double(a.embodied.value().total_mt, 2)
             : "",
         a.operational.ok() && a.embodied.ok()
             ? ""
             : (a.operational.reasons_joined() + " " +
                a.embodied.reasons_joined())});
  }
  std::fputs(out.to_string().c_str(), stdout);
  return 0;
}

int assess_top500_export(const std::string& path,
                         const easyc::analysis::ScenarioSpec& spec) {
  const auto imported = easyc::top500::import_top500_file(path);
  std::printf("imported %d systems (%d with power, %d accelerated)\n",
              imported.stats.systems, imported.stats.with_power,
              imported.stats.with_accelerator);
  for (const auto& w : imported.stats.warnings) {
    std::printf("  warn: %s\n", w.c_str());
  }

  const auto audit = easyc::analysis::audit_records(imported.records);
  std::fputs(easyc::analysis::render_audit(audit).c_str(), stdout);
  if (audit.errors > 0) {
    std::fprintf(stderr, "refusing to assess a structurally broken list\n");
    return 2;
  }

  std::printf("scenario: %s — %s\n", spec.name.c_str(),
              spec.description.c_str());
  const auto results =
      easyc::analysis::assess_one_scenario(imported.records, spec);
  std::printf("coverage: operational %d/%d, embodied %d/%d\n",
              results.coverage.operational, results.coverage.total,
              results.coverage.embodied, results.coverage.total);
  std::printf("totals over covered systems: %s MT CO2e/yr operational, "
              "%s MT embodied\n",
              util::format_double(results.total(true), 0).c_str(),
              util::format_double(results.total(false), 0).c_str());
  std::printf("annualized over a %.0f-year service life: %s MT CO2e/yr\n",
              spec.service_years,
              util::format_double(results.annualized_total_mt(), 0).c_str());
  return 0;
}

// Cache/warm-start diagnostics go to stderr so the report on stdout
// stays byte-identical between cold and warm-started runs (CI diffs
// it). The server produces the same lines the CLI historically
// printed; this just routes them.
void print_notes(const std::vector<std::string>& notes) {
  for (const std::string& note : notes) {
    std::fprintf(stderr, "%s\n", note.c_str());
  }
}

// A --turnover/--sweep run is the degenerate server session: one
// request, executed on a just-constructed AssessmentServer, payload to
// stdout and notes to stderr, snapshot, exit. Daemon and one-shot
// share every line of engine lifecycle (warm-start, scenario
// registry, request execution, snapshot-on-exit) by construction.
int run_one_shot(easyc::service::AssessmentServer& server,
                 const easyc::service::Request& request,
                 easyc::analysis::SweepCellSink* sink = nullptr) {
  const easyc::service::Reply reply = server.execute(request, sink);
  if (!reply.ok) {
    std::fprintf(stderr, "error: %s", reply.payload.c_str());
    return 1;
  }
  std::fputs(reply.payload.c_str(), stdout);
  print_notes(reply.notes);
  return 0;
}

// "scalar" | "soa" | "auto" for --batch-kernel.
easyc::analysis::AssessmentEngine::BatchKernel parse_batch_kernel(
    const std::optional<std::string>& text) {
  using BatchKernel = easyc::analysis::AssessmentEngine::BatchKernel;
  if (!text || *text == "auto") return BatchKernel::kAuto;
  if (*text == "scalar") return BatchKernel::kScalar;
  if (*text == "soa") return BatchKernel::kSoa;
  throw util::Error("--batch-kernel wants scalar, soa, or auto; got '" +
                    *text + "'");
}

int run_turnover(int editions, const std::optional<std::string>& cache_file,
                 const std::optional<std::string>& kernel_text) {
  if (editions < 2) {
    throw util::Error("--editions must be at least 2 (growth needs a cycle)");
  }
  if (editions > easyc::service::kMaxTurnoverEditions) {
    throw util::Error(
        "--editions must be at most " +
        std::to_string(easyc::service::kMaxTurnoverEditions));
  }
  easyc::service::ServerOptions options;
  options.admission = 1;
  options.cache_file = cache_file;
  options.batch_kernel = parse_batch_kernel(kernel_text);
  easyc::service::AssessmentServer server(options);
  print_notes(server.warm_start());

  easyc::service::Request request;
  request.verb = easyc::service::Verb::kTurnover;
  request.id = "cli";
  request.editions = editions;
  const int rc = run_one_shot(server, request);
  print_notes(server.save_snapshot());
  return rc;
}

// One --cells-out export file: its stream, its sink, and enough to
// report/close it. bin sinks need finish() before the close check.
struct CellExport {
  std::string path;
  bool binary = false;
  std::ofstream stream;
  std::unique_ptr<easyc::analysis::SweepCellSink> sink;
};

// Counts the cells a sweep streams (the exported row count) while
// forwarding them to the real export sink, if any.
struct CountingSink : easyc::analysis::SweepCellSink {
  easyc::analysis::SweepCellSink* inner = nullptr;
  size_t rows = 0;
  void cell(size_t round, size_t index,
            const easyc::analysis::SweepCell& c) override {
    ++rows;
    if (inner) inner->cell(round, index, c);
  }
};

// Validated --cells-format list ("csv" default when --cells-out is
// set); empty when there is no export.
std::vector<std::string> parse_cell_formats(
    const std::optional<std::string>& cells_out,
    const std::optional<std::string>& cells_format) {
  std::vector<std::string> formats;
  if (cells_format) {
    if (!cells_out) {
      throw util::Error("--cells-format requires --cells-out");
    }
    for (const auto& raw : util::split(*cells_format, ',')) {
      const std::string f(util::trim(raw));
      if (f != "csv" && f != "bin") {
        throw util::Error("--cells-format wants csv, bin, or csv,bin; "
                          "got '" + f + "'");
      }
      for (const auto& seen : formats) {
        if (seen == f) {
          throw util::Error("--cells-format lists '" + f + "' twice");
        }
      }
      formats.push_back(f);
    }
  } else if (cells_out) {
    formats.push_back("csv");
  }
  return formats;
}

// The open --cells-out files plus the single sink the sweep/merge
// feeds. sink() is computed on demand so the struct stays movable.
struct CellExportSet {
  std::vector<std::unique_ptr<CellExport>> exports;
  std::optional<easyc::analysis::TeeCellSink> tee;

  easyc::analysis::SweepCellSink* sink() {
    if (tee) return &*tee;
    return exports.size() == 1 ? exports.front()->sink.get() : nullptr;
  }
};

CellExportSet open_cell_exports(const std::optional<std::string>& cells_out,
                                const std::vector<std::string>& formats) {
  CellExportSet set;
  for (const auto& f : formats) {
    auto ex = std::make_unique<CellExport>();
    ex->binary = (f == "bin");
    // One format writes exactly --cells-out; two write <file>.csv and
    // <file>.bin alongside each other.
    ex->path = formats.size() == 1 ? *cells_out : *cells_out + "." + f;
    ex->stream.open(ex->path, std::ios::binary);
    if (!ex->stream) {
      throw util::Error("cannot open --cells-out file: " + ex->path);
    }
    if (ex->binary) {
      ex->sink = std::make_unique<easyc::analysis::BinaryCellSink>(ex->stream);
    } else {
      ex->sink = std::make_unique<easyc::analysis::CsvCellSink>(ex->stream);
    }
    set.exports.push_back(std::move(ex));
  }
  if (set.exports.size() > 1) {
    std::vector<easyc::analysis::SweepCellSink*> sinks;
    for (const auto& ex : set.exports) sinks.push_back(ex->sink.get());
    set.tee.emplace(sinks);
  }
  return set;
}

void finish_cell_exports(CellExportSet& set, size_t rows) {
  for (const auto& ex : set.exports) {
    if (auto* bin =
            dynamic_cast<easyc::analysis::BinaryCellSink*>(ex->sink.get())) {
      bin->finish();
    }
    ex->stream.close();
    if (!ex->stream) {
      throw util::Error("write failed for --cells-out file: " + ex->path);
    }
    std::fprintf(stderr, "wrote %zu cell rows to %s\n", rows,
                 ex->path.c_str());
  }
}

int run_sweep(const std::string& axis_text, const std::string& base_name,
              std::optional<long long> threads,
              std::optional<long long> batch,
              const std::optional<std::string>& cache_file,
              const std::optional<std::string>& cells_out,
              const std::optional<std::string>& cells_format,
              const std::optional<std::string>& stats_text,
              std::optional<long long> sweep_records,
              const std::optional<std::string>& refine_text,
              const std::optional<std::string>& kernel_text) {
  easyc::service::ServerOptions options;
  if (threads) {
    if (*threads < 1) throw util::Error("--threads must be at least 1");
    options.threads = static_cast<unsigned>(*threads);
  }
  options.admission = 1;
  options.cache_file = cache_file;
  options.batch_kernel = parse_batch_kernel(kernel_text);

  easyc::service::Request request;
  request.verb = easyc::service::Verb::kSweep;
  request.id = "cli";
  request.axes = axis_text;
  request.base = base_name;
  // Validate every flag before touching --cells-out: opening that file
  // truncates it, and a typo'd --sweep-refine must not cost the user a
  // previous run's export.
  if (refine_text) request.refine = easyc::service::parse_refine(*refine_text);
  if (stats_text) {
    const auto parsed =
        easyc::analysis::sweep_stats_mode_from_name(*stats_text);
    if (!parsed) {
      throw util::Error("--sweep-stats wants exact, streaming, or auto; "
                        "got '" + *stats_text + "'");
    }
    request.stats = *parsed;
  }

  const std::vector<std::string> formats =
      parse_cell_formats(cells_out, cells_format);

  if (sweep_records) {
    if (*sweep_records < 1) {
      throw util::Error("--sweep-records must be at least 1");
    }
    request.records = static_cast<size_t>(*sweep_records);
  }
  if (batch) {
    if (*batch < 1) throw util::Error("--sweep-batch must be at least 1");
    request.batch = static_cast<size_t>(*batch);
  }

  easyc::service::AssessmentServer server(options);
  // Re-parse the axis spec up front (the server would reject it too,
  // but only after --cells-out is already truncated).
  easyc::analysis::SweepSpec::parse(axis_text,
                                    server.scenarios().at(base_name));
  print_notes(server.warm_start());

  CellExportSet exports = open_cell_exports(cells_out, formats);

  // The server streams every cell through the counter (and on to the
  // export sinks); its reply payload is the deterministic report and
  // its notes carry the cache-state-dependent diagnostics (per-round
  // hit rates, the cumulative cache line) that belong on stderr.
  CountingSink counter;
  counter.inner = exports.sink();
  const easyc::service::Reply reply = server.execute(request, &counter);
  if (!reply.ok) {
    std::fprintf(stderr, "error: %s", reply.payload.c_str());
    return 1;
  }

  finish_cell_exports(exports, counter.rows);

  std::fputs(reply.payload.c_str(), stdout);
  print_notes(reply.notes);
  print_notes(server.save_snapshot());
  return 0;
}

// --sweep-shard worker: assess one contiguous shard of the expanded
// grid and ship an EZPART partial (plus, with --cache-file, a cache
// snapshot the merge process can re-absorb). No report on stdout —
// the partial IS the output.
int run_shard_worker(const std::string& axis_text,
                     const std::string& base_name,
                     const std::string& shard_text,
                     const std::string& out_path,
                     std::optional<long long> threads,
                     std::optional<long long> batch,
                     const std::optional<std::string>& cache_file,
                     const std::optional<std::string>& stats_text,
                     std::optional<long long> sweep_records,
                     const std::optional<std::string>& kernel_text) {
  const auto ref = easyc::analysis::ShardRef::parse(shard_text);

  easyc::service::ServerOptions options;
  if (threads) {
    if (*threads < 1) throw util::Error("--threads must be at least 1");
    options.threads = static_cast<unsigned>(*threads);
  }
  options.admission = 1;
  options.cache_file = cache_file;
  options.batch_kernel = parse_batch_kernel(kernel_text);

  easyc::analysis::SweepEngine::Options opt;
  if (batch) {
    if (*batch < 1) throw util::Error("--sweep-batch must be at least 1");
    opt.batch_size = static_cast<size_t>(*batch);
  }
  if (stats_text) {
    const auto parsed =
        easyc::analysis::sweep_stats_mode_from_name(*stats_text);
    if (!parsed) {
      throw util::Error("--sweep-stats wants exact, streaming, or auto; "
                        "got '" + *stats_text + "'");
    }
    opt.stats = *parsed;
  }
  opt.retain_cells = false;

  easyc::service::AssessmentServer server(options);
  const easyc::analysis::SweepSpec spec = easyc::analysis::SweepSpec::parse(
      axis_text, server.scenarios().at(base_name));
  print_notes(server.warm_start());

  // Same truncation rule as the server's sweep path: the merge rejects
  // partials whose records fingerprint disagrees, so every worker must
  // apply --sweep-records identically.
  const std::vector<easyc::top500::SystemRecord>* records = &server.records();
  std::vector<easyc::top500::SystemRecord> limited;
  if (sweep_records) {
    if (*sweep_records < 1) {
      throw util::Error("--sweep-records must be at least 1");
    }
    if (static_cast<size_t>(*sweep_records) < records->size()) {
      limited.assign(records->begin(),
                     records->begin() + static_cast<long>(*sweep_records));
      records = &limited;
    }
  }

  opt.engine = &server.engine();
  easyc::analysis::SweepEngine sweep(opt);

  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw util::Error("cannot open --shard-out file: " + out_path);
  const size_t n =
      easyc::analysis::run_sweep_shard(sweep, *records, spec, ref, out);
  out.close();
  if (!out) {
    throw util::Error("write failed for --shard-out file: " + out_path);
  }
  std::fprintf(stderr, "shard %s: %zu of %zu cells -> %s\n",
               ref.to_string().c_str(), n, spec.total_cells(),
               out_path.c_str());
  print_notes(server.save_snapshot());
  return 0;
}

// --sweep-merge: combine one complete set of EZPART partials into the
// report (and optional --cells-out streams) the single-process run
// produces. Pure file work — no engine, no assessment.
int run_sweep_merge(const std::string& axis_text,
                    const std::string& base_name,
                    const std::string& merge_text,
                    std::optional<long long> sweep_records,
                    const std::optional<std::string>& cells_out,
                    const std::optional<std::string>& cells_format) {
  std::vector<std::string> paths;
  for (const auto& raw : util::split(merge_text, ',')) {
    const std::string p(util::trim(raw));
    if (!p.empty()) paths.push_back(p);
  }
  if (paths.empty()) {
    throw util::Error(
        "--sweep-merge wants a comma-separated list of EZPART partials");
  }

  const auto set = cli_scenarios();
  const easyc::analysis::SweepSpec spec =
      easyc::analysis::SweepSpec::parse(axis_text, set.at(base_name));

  // The same simulated list every AssessmentServer constructs — the
  // partials' records fingerprint is checked against exactly this.
  std::vector<easyc::top500::SystemRecord> records =
      easyc::top500::generate_records();
  if (sweep_records) {
    if (*sweep_records < 1) {
      throw util::Error("--sweep-records must be at least 1");
    }
    if (static_cast<size_t>(*sweep_records) < records.size()) {
      records.resize(static_cast<size_t>(*sweep_records));
    }
  }

  const std::vector<std::string> formats =
      parse_cell_formats(cells_out, cells_format);
  CellExportSet exports = open_cell_exports(cells_out, formats);
  CountingSink counter;
  counter.inner = exports.sink();

  easyc::analysis::MergeOptions merge_opt;
  merge_opt.sink = &counter;
  const easyc::analysis::SweepReport report =
      easyc::analysis::merge_sweep_partials(paths, records, spec, merge_opt);

  finish_cell_exports(exports, counter.rows);
  std::fprintf(stderr, "merged %zu partials covering %zu cells\n",
               paths.size(), report.total_cells);
  std::fputs(easyc::analysis::render_sweep_report(report).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "easyc — carbon-footprint assessment from a few key metrics "
      "(EasyC model)");
  declare_flags(args);
  // Every input is a named flag; a bare argument is always a mistake
  // (e.g. a missing "--" or an unquoted value) and must not be
  // silently dropped.
  args.allow_positional(false);
  try {
    args.parse(argc, argv);
    if (args.has("help") || argc == 1) {
      std::fputs(args.usage(argv[0]).c_str(), stdout);
      return 0;
    }
    if (args.has("list-scenarios")) {
      const auto set = cli_scenarios();
      for (const auto& s : set.specs()) {
        std::printf("%-36s %s\n", s.name.c_str(), s.description.c_str());
      }
      return 0;
    }
    // The simulated-history modes take a closed flag set; any other
    // flag on their command line would otherwise be silently ignored
    // (e.g. --sweep ... --service-years 4 running with the base
    // scenario's lifetime), which is exactly the failure mode strict
    // parsing exists to prevent.
    auto require_only = [&](const char* mode,
                            std::initializer_list<const char*> allowed) {
      for (const auto& name : args.given()) {
        bool ok = false;
        for (const char* a : allowed) ok = ok || name == a;
        if (!ok) {
          throw util::Error("--" + name + " does not apply to --" + mode +
                            " runs");
        }
      }
    };
    if (auto sweep_spec = args.get("sweep")) {
      const std::string base = args.get("sweep-base").value_or(
          std::string(easyc::analysis::scenarios::kEnhancedName));
      if (args.has("sweep-shard") && args.has("sweep-merge")) {
        throw util::Error(
            "--sweep-shard (produce a partial) conflicts with --sweep-merge "
            "(combine partials); run them as separate steps");
      }
      if (auto shard = args.get("sweep-shard")) {
        require_only("sweep-shard",
                     {"sweep", "sweep-base", "sweep-shard", "shard-out",
                      "threads", "sweep-batch", "cache-file", "sweep-stats",
                      "sweep-records", "batch-kernel"});
        auto out = args.get("shard-out");
        if (!out) {
          throw util::Error("--sweep-shard needs --shard-out=<partial file>");
        }
        return run_shard_worker(*sweep_spec, base, *shard, *out,
                                args.get_int("threads"),
                                args.get_int("sweep-batch"),
                                args.get("cache-file"),
                                args.get("sweep-stats"),
                                args.get_int("sweep-records"),
                                args.get("batch-kernel"));
      }
      if (auto merge = args.get("sweep-merge")) {
        require_only("sweep-merge",
                     {"sweep", "sweep-base", "sweep-merge", "sweep-records",
                      "cells-out", "cells-format"});
        return run_sweep_merge(*sweep_spec, base, *merge,
                               args.get_int("sweep-records"),
                               args.get("cells-out"),
                               args.get("cells-format"));
      }
      require_only("sweep",
                   {"sweep", "sweep-base", "threads", "sweep-batch",
                    "cache-file", "cells-out", "cells-format", "sweep-stats",
                    "sweep-records", "sweep-refine", "batch-kernel"});
      return run_sweep(*sweep_spec, base,
                       args.get_int("threads"), args.get_int("sweep-batch"),
                       args.get("cache-file"), args.get("cells-out"),
                       args.get("cells-format"), args.get("sweep-stats"),
                       args.get_int("sweep-records"),
                       args.get("sweep-refine"), args.get("batch-kernel"));
    }
    for (const char* sweep_only : {"sweep-base", "threads", "sweep-batch",
                                   "cells-out", "cells-format", "sweep-stats",
                                   "sweep-records", "sweep-refine",
                                   "sweep-shard", "shard-out",
                                   "sweep-merge"}) {
      if (args.has(sweep_only)) {
        throw util::Error(std::string("--") + sweep_only +
                          " applies only to --sweep runs");
      }
    }
    if (args.has("turnover")) {
      require_only("turnover",
                   {"turnover", "editions", "cache-file", "batch-kernel"});
      return run_turnover(
          static_cast<int>(args.get_double("editions").value_or(8.0)),
          args.get("cache-file"), args.get("batch-kernel"));
    }
    if (args.has("editions")) {
      throw util::Error("--editions applies only to --turnover runs");
    }
    if (args.has("cache-file")) {
      throw util::Error(
          "--cache-file applies only to --turnover and --sweep runs");
    }
    if (args.has("batch-kernel")) {
      throw util::Error(
          "--batch-kernel applies only to --turnover and --sweep runs");
    }
    model::EasyCOptions opt;
    if (args.has("approximate-accelerators")) {
      opt.embodied.accelerator_policy =
          model::AcceleratorPolicy::kApproximateWithMainstreamGpu;
    }
    if (auto export_path = args.get("top500")) {
      // --approximate-accelerators is shorthand for tweaking the default
      // scenario; combined with an explicit --scenario it would silently
      // contradict the scenario's declared policy.
      if (args.has("scenario") && args.has("approximate-accelerators")) {
        throw util::Error(
            "--approximate-accelerators conflicts with --scenario; pick a "
            "scenario whose policy matches (see --list-scenarios)");
      }
      const auto set = cli_scenarios();
      auto spec = set.at(args.get("scenario").value_or(
          std::string(easyc::analysis::scenarios::kBaselineName)));
      if (args.has("approximate-accelerators")) {
        spec.accelerator_policy =
            model::AcceleratorPolicy::kApproximateWithMainstreamGpu;
        spec.description +=
            " (accelerator approximation forced by "
            "--approximate-accelerators)";
      }
      return assess_top500_export(*export_path, spec);
    }
    if (args.has("scenario")) {
      throw util::Error(
          "--scenario applies only to --top500 lists; fleet/single-system "
          "modes take explicit flags instead");
    }
    if (auto fleet = args.get("fleet")) {
      return assess_fleet(*fleet, opt);
    }
    const auto in = inputs_from_getter(
        [&](const std::string& key) { return args.get(key); });
    return assess_single(in, opt,
                         args.get_double("service-years").value_or(6.0));
  } catch (const util::ParseError& e) {
    std::fprintf(stderr, "error: %s\nrun %s --help for usage\n", e.what(),
                 argv[0]);
    return 1;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
