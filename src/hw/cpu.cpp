#include "hw/cpu.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace easyc::hw {

const std::vector<CpuSpec>& cpu_catalog() {
  // Die areas are total compute silicon per package (sum of chiplets
  // for MCM parts), from die-shot analyses and vendor disclosures.
  static const std::vector<CpuSpec> kCatalog = {
      // --- AMD EPYC (chiplet sums: CCDs + IOD) ---
      {"EPYC 9754", "AMD", 5, 11.5, 360, 128, 2023, {"epyc 9754"}},
      {"EPYC 9684X", "AMD", 5, 13.0, 400, 96, 2023, {"epyc 9684"}},
      {"EPYC 9654", "AMD", 5, 10.8, 360, 96, 2022, {"epyc 9654"}},
      {"EPYC 9554", "AMD", 5, 9.2, 360, 64, 2022, {"epyc 9554"}},
      {"EPYC 9534", "AMD", 5, 9.2, 280, 64, 2022, {"epyc 9534"}},
      {"EPYC 9454", "AMD", 5, 8.0, 290, 48, 2022, {"epyc 9454"}},
      {"EPYC 9374F", "AMD", 5, 8.0, 320, 32, 2022, {"epyc 9374"}},
      {"EPYC 9274F", "AMD", 5, 6.6, 320, 24, 2022, {"epyc 9274"}},
      {"EPYC 7763", "AMD", 7, 10.3, 280, 64, 2021, {"epyc 7763"}},
      {"EPYC 7742", "AMD", 7, 10.3, 225, 64, 2019, {"epyc 7742"}},
      {"EPYC 7713", "AMD", 7, 10.3, 225, 64, 2021, {"epyc 7713"}},
      {"EPYC 7662", "AMD", 7, 10.3, 225, 64, 2020, {"epyc 7662"}},
      {"EPYC 7601", "AMD", 14, 8.5, 180, 32, 2017, {"epyc 7601"}},
      {"EPYC 7543", "AMD", 7, 8.2, 225, 32, 2021, {"epyc 7543"}},
      {"EPYC 7532", "AMD", 7, 8.2, 200, 32, 2020, {"epyc 7532"}},
      {"EPYC 7502", "AMD", 7, 8.2, 180, 32, 2019, {"epyc 7502"}},
      {"EPYC 7452", "AMD", 7, 8.2, 155, 32, 2019, {"epyc 7452"}},
      {"EPYC 7402", "AMD", 7, 7.0, 180, 24, 2019, {"epyc 7402"}},
      {"EPYC (Trento) 7A53", "AMD", 7, 10.3, 280, 64, 2021,
       {"7a53", "trento", "optimized 3rd gen epyc"}},
      {"EPYC 9V84 (Genoa custom)", "AMD", 5, 10.8, 360, 96, 2023,
       {"9v84"}},
      {"EPYC 7573X", "AMD", 7, 11.0, 280, 32, 2022, {"7573x", "7373x"}},
      {"EPYC 7H12", "AMD", 7, 10.3, 280, 64, 2019, {"7h12"}},
      {"EPYC 7551", "AMD", 14, 8.5, 180, 32, 2017, {"7551"}},
      {"EPYC 7371", "AMD", 14, 8.5, 200, 16, 2018, {"7371"}},
      {"EPYC generic", "AMD", 7, 9.0, 225, 48, 2020, {"epyc"}},
      // --- Intel Xeon ---
      {"Xeon Max 9470", "Intel", 10, 15.5, 350, 52, 2023,
       {"xeon max 9470", "max 9470", "xeon cpu max"}},
      {"Xeon Platinum 8592+", "Intel", 7, 12.6, 350, 64, 2023,
       {"platinum 8592"}},
      {"Xeon Platinum 8480+", "Intel", 10, 15.0, 350, 56, 2023,
       {"platinum 8480", "platinum 8470", "platinum 8460"}},
      {"Xeon Platinum 8380", "Intel", 10, 6.6, 270, 40, 2021,
       {"platinum 8380", "platinum 8368", "platinum 8358"}},
      {"Xeon Platinum 8280", "Intel", 14, 6.9, 205, 28, 2019,
       {"platinum 8280", "platinum 8276", "platinum 8268"}},
      {"Xeon Platinum 8174", "Intel", 14, 6.9, 240, 24, 2017,
       {"platinum 8174", "platinum 8168", "platinum 8160"}},
      {"Xeon Gold 6348", "Intel", 10, 6.6, 235, 28, 2021,
       {"gold 6348", "gold 6338", "gold 6330"}},
      {"Xeon Gold 6248", "Intel", 14, 6.9, 150, 20, 2019,
       {"gold 6248", "gold 6252", "gold 6240", "gold 6230"}},
      {"Xeon Gold 6148", "Intel", 14, 6.9, 150, 20, 2017,
       {"gold 6148", "gold 6154", "gold 6140"}},
      {"Xeon E5-2690v3", "Intel", 22, 6.6, 135, 12, 2014,
       {"e5-2690", "e5-2680", "e5-2695", "e5-2697"}},
      {"Xeon Phi 7250", "Intel", 14, 6.8, 215, 68, 2016,
       {"xeon phi", "7250 68c"}},
      {"Xeon 6980P (Granite Rapids)", "Intel", 3, 11.6, 500, 128, 2024,
       {"xeon 6980", "granite rapids"}},
      {"Xeon Platinum 9242", "Intel", 14, 13.8, 350, 48, 2019,
       {"platinum 9242", "platinum 9282"}},
      {"Xeon Silver 4216", "Intel", 14, 4.0, 100, 16, 2019,
       {"silver 42", "silver 41"}},
      {"Xeon E5-2650v4", "Intel", 14, 4.6, 105, 12, 2016,
       {"e5-2650", "e5-2640", "e5-2630"}},
      {"Xeon generic", "Intel", 10, 7.0, 225, 32, 2020, {"xeon", "platinum",
                                                         "intel gold"}},
      // --- Arm server parts ---
      {"A64FX", "Fujitsu", 7, 4.0, 160, 48, 2019, {"a64fx"}},
      {"Grace CPU 72C", "NVIDIA", 4, 5.5, 250, 72, 2023, {"grace"}},
      {"Ampere Altra Max", "Ampere", 7, 6.5, 250, 128, 2021, {"altra"}},
      {"AWS Graviton3", "Amazon", 5, 4.5, 100, 64, 2022, {"graviton3"}},
      {"Fujitsu MONAKA", "Fujitsu", 3, 6.0, 270, 144, 2027, {"monaka"}},
      {"Marvell ThunderX2", "Marvell", 16, 6.4, 180, 32, 2018,
       {"thunderx2"}},
      {"Fujitsu SPARC64 XIfx", "Fujitsu", 20, 6.0, 200, 32, 2015,
       {"sparc64"}},
      // --- Chinese parts ---
      // Note: SW26010 (Sunway) is deliberately NOT in the catalog. The
      // paper identifies such "early or unique compute devices" as
      // unmodelable for embodied carbon (Sunway TaihuLight's embodied
      // value exists only by interpolation in its Table II).
      {"Hygon Dhyana 7185", "Hygon", 14, 8.5, 180, 32, 2018, {"hygon"}},
      {"Phytium 2000+", "Phytium", 16, 4.0, 150, 64, 2019, {"phytium", "ft-2000"}},
      // --- IBM ---
      {"POWER9 22C", "IBM", 14, 6.9, 250, 22, 2017, {"power9"}},
      {"POWER10", "IBM", 7, 6.0, 300, 15, 2021, {"power10"}},
      // --- NEC vector host ---
      {"NEC SX-Aurora VH", "NEC", 16, 5.0, 200, 24, 2018,
       {"sx-aurora", "vector host"}},
  };
  return kCatalog;
}

std::optional<CpuSpec> find_cpu(std::string_view processor_string) {
  if (util::trim(processor_string).empty()) return std::nullopt;
  const std::string needle = util::to_lower(processor_string);
  for (const auto& spec : cpu_catalog()) {
    for (const auto& key : spec.match_keys) {
      if (needle.find(key) != std::string::npos) return spec;
    }
  }
  return std::nullopt;
}

CpuSpec generic_server_cpu(int year, int cores) {
  EASYC_REQUIRE(cores > 0, "generic CPU needs a positive core count");
  CpuSpec spec;
  spec.model = "generic-server";
  spec.vendor = "generic";
  spec.cores = cores;
  spec.year = year;
  // Era-typical node and per-core silicon. Older processes spend more
  // area per core; newer parts add L3 and IO that offset density gains.
  if (year >= 2023) {
    spec.process_nm = 5;
    spec.die_area_cm2 = 0.105 * cores;
    spec.tdp_w = 4.0 * cores;
  } else if (year >= 2020) {
    spec.process_nm = 7;
    spec.die_area_cm2 = 0.14 * cores;
    spec.tdp_w = 3.8 * cores;
  } else if (year >= 2017) {
    spec.process_nm = 14;
    spec.die_area_cm2 = 0.25 * cores;
    spec.tdp_w = 6.0 * cores;
  } else {
    spec.process_nm = 22;
    spec.die_area_cm2 = 0.45 * cores;
    spec.tdp_w = 9.0 * cores;
  }
  spec.die_area_cm2 = std::min(spec.die_area_cm2, 14.0);
  spec.tdp_w = std::min(spec.tdp_w, 400.0);
  return spec;
}

bool is_mainstream_server_cpu(std::string_view processor_string) {
  static const char* kMarkers[] = {
      "xeon",  "epyc",    "opteron",  "power",   "sparc",   "arm",
      "altra", "grace",   "graviton", "a64fx",   "neoverse", "intel",
      "amd",   "itanium", "core i",   "threadripper",
  };
  const std::string n = util::to_lower(processor_string);
  for (const char* m : kMarkers) {
    if (n.find(m) != std::string::npos) return true;
  }
  return false;
}

}  // namespace easyc::hw
