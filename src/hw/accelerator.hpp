// Accelerator (GPU/co-processor) catalog.
//
// The paper identifies accelerator diversity as the main obstacle to
// embodied-carbon coverage: "top systems today make heavy use of an
// increasingly diverse set of accelerators ... Top500.org does not
// capture adequate accelerator information." This catalog covers every
// accelerator family on the November-2024 list, including the early or
// unique devices it names (MI300A, A64FX handled as CPU, SW26010).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hw/memory.hpp"

namespace easyc::hw {

struct AcceleratorSpec {
  std::string model;
  std::string vendor;
  int process_nm = 7;
  double die_area_cm2 = 0;   ///< logic silicon per package (sum of dies)
  double tdp_w = 0;
  double hbm_gb = 0;         ///< on-package memory capacity
  MemoryType hbm_type = MemoryType::kHbm2e;
  int year = 2020;
  std::vector<std::string> match_keys;  ///< lower-case substrings
};

const std::vector<AcceleratorSpec>& accelerator_catalog();

/// Match a Top500 accelerator string; nullopt if unknown.
std::optional<AcceleratorSpec> find_accelerator(
    std::string_view accelerator_string);

/// The "approximate with a mainstream GPU" fallback the paper describes
/// (and warns systematically underestimates silicon for novel parts).
AcceleratorSpec mainstream_gpu_proxy(int year);

}  // namespace easyc::hw
