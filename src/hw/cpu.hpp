// CPU catalog: per-model die area, process node, TDP, and core count.
//
// Top500.org reports processor strings like "AMD EPYC 9654 64C 2.4GHz"
// or "Xeon Platinum 8480+"; lookup is by case-insensitive substring so
// catalog entries match the reported strings directly. The catalog
// covers every processor family appearing in the November-2024 list,
// including the unusual parts the paper calls out (A64FX, SW26010).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace easyc::hw {

struct CpuSpec {
  std::string model;        ///< canonical name
  std::string vendor;       ///< AMD / Intel / Fujitsu / ...
  int process_nm = 7;       ///< logic process node
  double die_area_cm2 = 0;  ///< total compute silicon per package
  double tdp_w = 0;         ///< package TDP
  int cores = 0;            ///< physical cores per package
  int year = 2020;          ///< introduction year

  /// Lower-cased substrings that identify this part in Top500 strings;
  /// checked in catalog order, so more specific entries come first.
  std::vector<std::string> match_keys;
};

/// Full catalog, most-specific entries first.
const std::vector<CpuSpec>& cpu_catalog();

/// Match a Top500 processor string; nullopt if no entry matches.
std::optional<CpuSpec> find_cpu(std::string_view processor_string);

/// Family-average fallback: per-core die area and TDP for generic
/// server CPUs of a given year, used when the exact part is unknown but
/// core counts are reported (the CPU-only ranks 151-500 case in the
/// paper, where Top500 core counts suffice for embodied carbon).
CpuSpec generic_server_cpu(int year, int cores);

/// True when the processor string names a mainstream server-CPU family
/// (x86/Arm/POWER lineages) for which the era-generic silicon model is a
/// sound stand-in. Exotic/unique devices (Sunway SW26010, ShenWei,
/// custom manycore parts) return false: the paper treats them as
/// unmodelable for embodied carbon without additional disclosure.
bool is_mainstream_server_cpu(std::string_view processor_string);

}  // namespace easyc::hw
