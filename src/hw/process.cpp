#include "hw/process.hpp"

#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace easyc::hw {

double ProcessNode::carbon_per_cm2(double fab_aci_kg_kwh) const {
  EASYC_REQUIRE(fab_aci_kg_kwh >= 0.0, "fab ACI must be non-negative");
  EASYC_REQUIRE(yield > 0.0 && yield <= 1.0, "yield must be in (0,1]");
  return carbon_per_cm2_unchecked(epa_kwh_cm2, gpa_kg_cm2, mpa_kg_cm2, yield,
                                  fab_aci_kg_kwh);
}

const std::vector<ProcessNode>& process_nodes() {
  // EPA/GPA/MPA trajectories follow ACT Table 2 (interpolated where a
  // node is between published points). Energy per area grows steeply
  // below 10nm due to EUV multi-patterning; yields drop for the largest
  // reticle-limited dies but are modeled per-node here (die-size yield
  // effects are folded into the catalog areas).
  static const std::vector<ProcessNode> kNodes = {
      {3, 3.00, 0.33, 0.58, 0.85},
      {4, 2.70, 0.31, 0.56, 0.87},
      {5, 2.45, 0.30, 0.55, 0.875},
      {7, 2.15, 0.28, 0.52, 0.88},
      {10, 1.80, 0.27, 0.50, 0.89},
      {12, 1.65, 0.26, 0.49, 0.90},
      {14, 1.50, 0.25, 0.49, 0.90},
      {16, 1.40, 0.25, 0.48, 0.91},
      {22, 1.20, 0.24, 0.46, 0.92},
      {28, 1.05, 0.23, 0.45, 0.93},
      {40, 0.90, 0.22, 0.44, 0.94},
      {65, 0.75, 0.21, 0.43, 0.95},
  };
  return kNodes;
}

ProcessNode find_process_node(int nm) {
  EASYC_REQUIRE(nm > 0, "process node must be positive");
  const auto& nodes = process_nodes();
  const ProcessNode* best = &nodes.front();
  int best_dist = std::abs(best->nm - nm);
  for (const auto& n : nodes) {
    const int d = std::abs(n.nm - nm);
    // Ties break toward the older node: half-generation names ("6nm",
    // "12nm") are optical shrinks of the older full node.
    if (d < best_dist || (d == best_dist && n.nm > best->nm)) {
      best = &n;
      best_dist = d;
    }
  }
  return *best;
}

}  // namespace easyc::hw
