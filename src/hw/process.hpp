// Semiconductor process-node manufacturing-carbon model.
//
// Follows the structure of ACT (Gupta et al., ISCA'22): the embodied
// carbon of a logic die is
//
//   C_die = area_cm2 * CPA(node)
//   CPA   = (EPA * fab_aci + GPA + MPA) / yield
//
// where EPA is fab energy per wafer area (kWh/cm2), GPA direct gas
// emissions per area (kgCO2e/cm2), MPA materials per area, and yield the
// fraction of good dies. Coefficients are embedded per node from the
// ACT paper's published tables (industry-average scenario); callers can
// override the fab grid intensity to study fab-siting sensitivity.
#pragma once

#include <optional>
#include <vector>

namespace easyc::hw {

/// The raw CPA arithmetic, shared by ProcessNode::carbon_per_cm2 and
/// the SoA batch kernel's vector loops (which must be bit-identical to
/// the scalar path). Preconditions (fab ACI >= 0, yield in (0,1]) are
/// the caller's responsibility; the member function checks them.
constexpr double carbon_per_cm2_unchecked(double epa_kwh_cm2,
                                          double gpa_kg_cm2,
                                          double mpa_kg_cm2, double yield,
                                          double fab_aci_kg_kwh) {
  return (epa_kwh_cm2 * fab_aci_kg_kwh + gpa_kg_cm2 + mpa_kg_cm2) / yield;
}

/// One manufacturing process generation.
struct ProcessNode {
  int nm = 0;            ///< marketing node, e.g. 7 for "7nm"
  double epa_kwh_cm2;    ///< fab energy per die area, kWh/cm2
  double gpa_kg_cm2;     ///< direct GHG (PFC etc.) per area, kgCO2e/cm2
  double mpa_kg_cm2;     ///< upstream materials per area, kgCO2e/cm2
  double yield;          ///< good-die fraction in (0,1]

  /// Carbon per good die area (kgCO2e/cm2) at a fab grid intensity of
  /// `fab_aci_kg_kwh` (kgCO2e/kWh). Default 0.475 kg/kWh is ACT's
  /// world-average fab electricity scenario.
  double carbon_per_cm2(double fab_aci_kg_kwh = 0.475) const;
};

/// All modeled nodes, newest first. Covers every node appearing in the
/// CPU/accelerator catalogs.
const std::vector<ProcessNode>& process_nodes();

/// Find a node by nm value; falls back to the nearest modeled node if
/// the exact one is absent (e.g. "6nm" -> 7nm coefficients).
ProcessNode find_process_node(int nm);

}  // namespace easyc::hw
