#include "hw/accelerator.hpp"

#include "util/strings.hpp"

namespace easyc::hw {

const std::vector<AcceleratorSpec>& accelerator_catalog() {
  // Die areas sum all logic dies in the package (e.g. MI250X = 2 GCDs,
  // MI300A = 6 XCD + 3 CCD + 4 IOD chiplets, GH200 counts only the GPU
  // die — its Grace die is modeled by the CPU catalog).
  static const std::vector<AcceleratorSpec> kCatalog = {
      // --- NVIDIA ---
      {"GB200", "NVIDIA", 4, 16.6, 1200, 192, MemoryType::kHbm3, 2024,
       {"gb200"}},
      {"GH200 (H100 die)", "NVIDIA", 4, 8.14, 700, 96, MemoryType::kHbm3,
       2023, {"gh200"}},
      {"H200", "NVIDIA", 4, 8.14, 700, 141, MemoryType::kHbm3, 2024,
       {"h200"}},
      {"H100 SXM", "NVIDIA", 4, 8.14, 700, 80, MemoryType::kHbm3, 2022,
       {"h100"}},
      {"A100 80GB", "NVIDIA", 7, 8.26, 400, 80, MemoryType::kHbm2e, 2021,
       {"a100 80", "a100-80", "a100 sxm4 80", "a100 sxm4 64"}},
      {"A100 40GB", "NVIDIA", 7, 8.26, 400, 40, MemoryType::kHbm2, 2020,
       {"a100"}},
      {"V100", "NVIDIA", 12, 8.15, 300, 16, MemoryType::kHbm2, 2017,
       {"v100", "volta"}},
      {"P100", "NVIDIA", 16, 6.10, 300, 16, MemoryType::kHbm2, 2016,
       {"p100"}},
      {"L40S", "NVIDIA", 4, 6.09, 350, 48, MemoryType::kDdr5, 2023,
       {"l40s", "l40"}},
      {"A40", "NVIDIA", 7, 6.28, 300, 48, MemoryType::kDdr5, 2020,
       {"a40 ", "rtx a6000"}},
      {"A30", "NVIDIA", 7, 8.26, 165, 24, MemoryType::kHbm2, 2021,
       {"a30 ", "a30,"}},
      {"A800 80GB", "NVIDIA", 7, 8.26, 400, 80, MemoryType::kHbm2e, 2022,
       {"a800"}},
      {"H800", "NVIDIA", 4, 8.14, 700, 80, MemoryType::kHbm3, 2023,
       {"h800"}},
      {"T4", "NVIDIA", 12, 5.45, 70, 16, MemoryType::kDdr5, 2018,
       {"tesla t4", "t4 "}},
      {"K20x", "NVIDIA", 28, 5.61, 235, 6, MemoryType::kDdr3, 2012,
       {"k20x", "k40", "k80"}},
      // --- AMD Instinct ---
      {"MI300A", "AMD", 5, 9.2, 760, 128, MemoryType::kHbm3, 2023,
       {"mi300a", "instinct mi300a"}},
      {"MI300X", "AMD", 5, 10.5, 750, 192, MemoryType::kHbm3, 2023,
       {"mi300x"}},
      {"MI325X", "AMD", 5, 10.5, 1000, 256, MemoryType::kHbm3, 2024,
       {"mi325x"}},
      {"MI250X", "AMD", 6, 14.5, 560, 128, MemoryType::kHbm2e, 2021,
       {"mi250x", "mi250"}},
      {"MI210", "AMD", 6, 7.2, 300, 64, MemoryType::kHbm2e, 2022,
       {"mi210"}},
      {"MI100", "AMD", 7, 7.5, 300, 32, MemoryType::kHbm2, 2020, {"mi100"}},
      // --- Intel ---
      {"Data Center GPU Max 1550", "Intel", 5, 12.8, 600, 128,
       MemoryType::kHbm2e, 2023, {"max 1550", "ponte vecchio", "gpu max"}},
      {"Gaudi 2", "Intel/Habana", 7, 8.5, 600, 96, MemoryType::kHbm2e,
       2022, {"gaudi2", "gaudi 2"}},
      {"Xeon Phi 7120P (KNC)", "Intel", 22, 7.2, 300, 16,
       MemoryType::kDdr3, 2013, {"xeon phi 7120", "5110p", "31s1p"}},
      // --- NEC vector engines ---
      {"SX-Aurora VE 30A", "NEC", 7, 5.4, 250, 96, MemoryType::kHbm3, 2023,
       {"ve 30", "vector engine type 30"}},
      {"SX-Aurora VE 20B", "NEC", 16, 5.0, 300, 48, MemoryType::kHbm2, 2020,
       {"sx-aurora", "vector engine"}},
      // --- Chinese accelerators (approximations; the paper flags these
      //     as the hardest to document) ---
      {"Sunway SW26010-Pro accel cluster", "Sunway", 14, 6.0, 350, 16,
       MemoryType::kDdr4, 2021, {"sw26010-pro", "sw26010pro"}},
      {"Matrix-3000", "NUDT", 12, 6.4, 400, 32, MemoryType::kHbm2, 2021,
       {"matrix-3000"}},
      {"Deep Computing Processor", "Biren-class", 7, 7.7, 450, 64,
       MemoryType::kHbm2e, 2022, {"dcu", "deep computing"}},
      // --- PEZY ---
      {"PEZY-SC3", "PEZY", 7, 7.86, 470, 32, MemoryType::kDdr4, 2021,
       {"pezy-sc3", "pezy"}},
  };
  return kCatalog;
}

std::optional<AcceleratorSpec> find_accelerator(
    std::string_view accelerator_string) {
  if (util::trim(accelerator_string).empty()) return std::nullopt;
  const std::string needle = util::to_lower(accelerator_string);
  if (needle == "none" || needle == "n/a") return std::nullopt;
  for (const auto& spec : accelerator_catalog()) {
    for (const auto& key : spec.match_keys) {
      if (needle.find(key) != std::string::npos) return spec;
    }
  }
  return std::nullopt;
}

AcceleratorSpec mainstream_gpu_proxy(int year) {
  // "Approximating these accelerators with mainstream GPUs produces
  // systematic underestimates of silicon size" — the proxy is the
  // volume datacenter GPU of the era, which is smaller than the bespoke
  // HPC parts it stands in for.
  if (year >= 2023) {
    return {"proxy-H100", "proxy", 4, 8.14, 700, 80, MemoryType::kHbm3,
            year, {}};
  }
  if (year >= 2020) {
    return {"proxy-A100", "proxy", 7, 8.26, 400, 40, MemoryType::kHbm2,
            year, {}};
  }
  return {"proxy-V100", "proxy", 12, 8.15, 300, 16, MemoryType::kHbm2, year,
          {}};
}

}  // namespace easyc::hw
