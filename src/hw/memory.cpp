#include "hw/memory.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace easyc::hw {

MemorySpec memory_spec(MemoryType type) {
  // Embodied kgCO2e/GB: DDR generations improve slowly with density;
  // HBM carries a stacking/TSV penalty (roughly 1.5-2x planar DRAM at
  // equal capacity). Power: active W/GB from vendor datasheets.
  switch (type) {
    case MemoryType::kDdr3:
      return {type, 0.63, 0.045};
    case MemoryType::kDdr4:
      return {type, 0.50, 0.038};
    case MemoryType::kDdr5:
      return {type, 0.42, 0.030};
    case MemoryType::kHbm2:
      return {type, 1.05, 0.025};
    case MemoryType::kHbm2e:
      return {type, 0.95, 0.024};
    case MemoryType::kHbm3:
      return {type, 0.88, 0.022};
    case MemoryType::kUnknown:
      // Conservative planar-DRAM default used when the memory type is
      // one of the metrics missing from public sources (Table I shows
      // it is missing for every system on Top500.org).
      return {type, 0.50, 0.035};
  }
  EASYC_REQUIRE(false, "unreachable memory type");
  return {};
}

MemoryType parse_memory_type(std::string_view name) {
  const std::string n = util::to_lower(util::trim(name));
  if (n == "ddr3") return MemoryType::kDdr3;
  if (n == "ddr4") return MemoryType::kDdr4;
  if (n == "ddr5") return MemoryType::kDdr5;
  if (n == "hbm2") return MemoryType::kHbm2;
  if (n == "hbm2e") return MemoryType::kHbm2e;
  if (n == "hbm3" || n == "hbm3e") return MemoryType::kHbm3;
  return MemoryType::kUnknown;
}

std::string memory_type_name(MemoryType type) {
  switch (type) {
    case MemoryType::kDdr3: return "DDR3";
    case MemoryType::kDdr4: return "DDR4";
    case MemoryType::kDdr5: return "DDR5";
    case MemoryType::kHbm2: return "HBM2";
    case MemoryType::kHbm2e: return "HBM2e";
    case MemoryType::kHbm3: return "HBM3";
    case MemoryType::kUnknown: return "unknown";
  }
  return "unknown";
}

StorageSpec storage_spec(StorageClass cls) {
  // kgCO2e/TB from SSD/HDD vendor LCAs: NAND flash is manufacturing-
  // intensive (~100 kg/TB for current TLC), spinning disk is an order
  // of magnitude lighter per TB. The paper notes embodied carbon is
  // "heavily influenced by storage" — these coefficients are why: a
  // 700 PB parallel filesystem contributes tens of thousands of MT.
  switch (cls) {
    case StorageClass::kNvmeSsd:
      return {cls, 130.0, 0.9};
    case StorageClass::kSataSsd:
      return {cls, 118.0, 1.1};
    case StorageClass::kHdd:
      return {cls, 9.5, 0.55};
  }
  EASYC_REQUIRE(false, "unreachable storage class");
  return {};
}

std::string storage_class_name(StorageClass cls) {
  switch (cls) {
    case StorageClass::kNvmeSsd: return "NVMe SSD";
    case StorageClass::kSataSsd: return "SATA SSD";
    case StorageClass::kHdd: return "HDD";
  }
  return "unknown";
}

}  // namespace easyc::hw
