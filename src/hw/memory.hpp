// Memory and storage manufacturing-carbon and power coefficients.
//
// DRAM embodied carbon is modeled per GB by memory generation (denser
// processes amortize wafer carbon over more bits, but HBM stacking and
// TSV yield loss push the other way). Values are industry-average
// kgCO2e/GB consistent with the ACT paper and DRAM-vendor LCA reports.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace easyc::hw {

enum class MemoryType {
  kDdr3,
  kDdr4,
  kDdr5,
  kHbm2,
  kHbm2e,
  kHbm3,
  kUnknown,
};

struct MemorySpec {
  MemoryType type = MemoryType::kUnknown;
  double embodied_kg_per_gb = 0.0;  ///< manufacturing carbon, kgCO2e/GB
  double power_w_per_gb = 0.0;      ///< active power draw, W/GB
};

/// Coefficients for a memory generation.
MemorySpec memory_spec(MemoryType type);

/// Parse names like "DDR4", "ddr5", "HBM2e". Unrecognized -> kUnknown.
MemoryType parse_memory_type(std::string_view name);

std::string memory_type_name(MemoryType type);

enum class StorageClass {
  kNvmeSsd,
  kSataSsd,
  kHdd,
};

struct StorageSpec {
  StorageClass cls = StorageClass::kNvmeSsd;
  double embodied_kg_per_tb = 0.0;  ///< manufacturing carbon, kgCO2e/TB
  double power_w_per_tb = 0.0;      ///< operating power, W/TB
};

StorageSpec storage_spec(StorageClass cls);

std::string storage_class_name(StorageClass cls);

}  // namespace easyc::hw
