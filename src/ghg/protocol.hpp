// GHG-Protocol-style carbon accounting comparator.
//
// The paper contrasts EasyC's 7 metrics with the GHG Protocol's
// "hundreds of metrics" and finds that *no* Top500 system publishes the
// data a protocol computation needs (Fig. 4 left bars). This module
// implements a faithful, deliberately data-hungry line-item calculator:
//
//   Scope 1  direct emissions (backup generators, refrigerant leakage)
//   Scope 2  purchased electricity (location- and market-based)
//   Scope 3  upstream embodied: per-component manufacturing line items
//
// `requirements()` enumerates every data item a diligent computation
// needs; `can_assess()` checks an availability set against it. Running
// it over the Top500 dataset yields the near-zero coverage the paper
// reports.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "easyc/inputs.hpp"
#include "easyc/outcome.hpp"

namespace easyc::ghg {

enum class Scope { kScope1, kScope2, kScope3 };

struct DataItem {
  std::string key;        ///< stable identifier, e.g. "s2.metered_kwh"
  std::string description;
  Scope scope = Scope::kScope2;
  bool required = true;   ///< optional items refine but do not gate
};

/// The full data-requirement manifest (hundreds of items: per-component
/// LCA entries, fuel logs, refrigerant inventories, energy contracts).
const std::vector<DataItem>& requirements();

/// Count of required (gating) items.
size_t num_required_items();

/// A filled-in inventory: item key -> value in the item's natural unit
/// (kWh, kg, litres, count). Missing keys are missing data.
using Inventory = std::map<std::string, double>;

struct GhgResult {
  double scope1_mt = 0.0;
  double scope2_mt = 0.0;
  double scope3_mt = 0.0;
  double total_mt() const { return scope1_mt + scope2_mt + scope3_mt; }
};

struct GhgOptions {
  /// Location-based grid factor, gCO2e/kWh, for scope 2.
  double grid_aci_g_kwh = 473.0;
  /// Diesel emission factor, kgCO2e per litre.
  double diesel_kg_per_litre = 2.68;
  /// Refrigerant GWP (R-134a class), kgCO2e per kg leaked.
  double refrigerant_gwp = 1430.0;
};

/// How far EasyC's nine metrics go toward a GHG-protocol inventory:
/// builds the partial inventory those metrics can populate and reports
/// the coverage fraction. This is the quantitative form of the paper's
/// "7 metrics vs hundreds" contrast (Fig. 1).
struct InventoryOverlap {
  Inventory partial;         ///< items derivable from EasyC inputs
  size_t derivable = 0;      ///< required items populated
  size_t required_total = 0;
  double fraction() const {
    return required_total == 0
               ? 0.0
               : static_cast<double>(derivable) / required_total;
  }
};
InventoryOverlap inventory_from_easyc(const model::Inputs& inputs);

class ProtocolCalculator {
 public:
  explicit ProtocolCalculator(GhgOptions options = {})
      : options_(options) {}

  /// Which required items are absent from `inventory`.
  std::vector<std::string> missing_items(const Inventory& inventory) const;

  /// True when every gating item is present.
  bool can_assess(const Inventory& inventory) const;

  /// Full computation; fails (with the missing-item list) unless every
  /// required item is present — the protocol's all-or-nothing nature is
  /// exactly what the paper critiques.
  model::Outcome<GhgResult> assess(const Inventory& inventory) const;

 private:
  GhgOptions options_;
};

}  // namespace easyc::ghg
