#include "ghg/protocol.hpp"

#include "util/strings.hpp"

namespace easyc::ghg {

namespace {

std::vector<DataItem> build_requirements() {
  std::vector<DataItem> items;
  auto add = [&](std::string key, std::string desc, Scope scope,
                 bool required = true) {
    items.push_back({std::move(key), std::move(desc), scope, required});
  };

  // --- Scope 1: direct emissions ---
  add("s1.diesel_litres", "backup generator diesel burned (L/yr)",
      Scope::kScope1);
  add("s1.generator_test_hours", "generator test-run hours", Scope::kScope1,
      false);
  add("s1.refrigerant_kg_leaked", "refrigerant leakage (kg/yr)",
      Scope::kScope1);
  add("s1.natural_gas_m3", "site natural-gas use (m3/yr)", Scope::kScope1);

  // --- Scope 2: purchased energy ---
  add("s2.metered_kwh", "metered facility electricity (kWh/yr)",
      Scope::kScope2);
  add("s2.grid_aci_location", "location-based grid factor (g/kWh)",
      Scope::kScope2);
  add("s2.grid_aci_market", "market-based contract factor (g/kWh)",
      Scope::kScope2, false);
  add("s2.district_heating_kwh", "purchased district heat (kWh/yr)",
      Scope::kScope2, false);
  add("s2.onsite_solar_kwh", "on-site generation offset (kWh/yr)",
      Scope::kScope2, false);

  // --- Scope 3: embodied, per-component line items ---
  // A diligent protocol computation inventories every hardware SKU. We
  // model 24 component classes x 7 LCA data points each, mirroring the
  // "hundreds of metrics" the paper describes.
  const char* kComponents[] = {
      "cpu",        "gpu",           "dimm",        "hbm_stack",
      "mainboard",  "riser_pcb",     "psu",         "vrm",
      "nic",        "dpu",           "tor_switch",  "core_switch",
      "optic_module", "cable_copper", "cable_fiber", "nvme_drive",
      "sata_drive", "hdd",           "jbod_chassis", "node_chassis",
      "rack",       "cdu",           "pdu",          "ups_battery",
  };
  const std::pair<const char*, const char*> kPerComponent[] = {
      {"count", "unit count in system"},
      {"unit_mass_kg", "unit mass (kg)"},
      {"mfg_kgco2e", "manufacturing carbon per unit (kgCO2e)"},
      {"mfg_site", "manufacturing site / fab region"},
      {"transport_km", "upstream transport distance (km)"},
      {"transport_mode", "transport mode factor"},
      {"eol_kgco2e", "end-of-life treatment carbon (kgCO2e)"},
  };
  for (const char* comp : kComponents) {
    for (const auto& [suffix, desc] : kPerComponent) {
      // Count and manufacturing carbon gate the computation; the rest
      // refine it.
      const bool required = std::string_view(suffix) == "count" ||
                            std::string_view(suffix) == "mfg_kgco2e";
      add(std::string("s3.") + comp + "." + suffix,
          std::string(comp) + ": " + desc, Scope::kScope3, required);
    }
  }
  // Scope 3 services & logistics.
  add("s3.construction_amortized_kgco2e",
      "amortized facility construction (kgCO2e/yr)", Scope::kScope3);
  add("s3.staff_commuting_km", "staff commuting (person-km/yr)",
      Scope::kScope3, false);
  add("s3.business_travel_km", "business travel (person-km/yr)",
      Scope::kScope3, false);
  add("s3.water_m3", "water consumption (m3/yr)", Scope::kScope3, false);
  return items;
}

}  // namespace

const std::vector<DataItem>& requirements() {
  static const std::vector<DataItem> kItems = build_requirements();
  return kItems;
}

size_t num_required_items() {
  size_t n = 0;
  for (const auto& item : requirements()) {
    if (item.required) ++n;
  }
  return n;
}

InventoryOverlap inventory_from_easyc(const model::Inputs& in) {
  InventoryOverlap overlap;
  overlap.required_total = num_required_items();
  Inventory& inv = overlap.partial;

  // Scope 2: only a metered annual energy figure qualifies; grid factor
  // follows from the country.
  if (in.annual_energy_kwh) inv["s2.metered_kwh"] = *in.annual_energy_kwh;
  if (!in.country.empty()) inv["s2.grid_aci_location"] = 1.0;  // look-up-able

  // Scope 3: EasyC's counts populate a handful of component-count line
  // items; all per-unit LCA data (mfg carbon, transport, EOL) and the
  // remaining ~20 component classes stay open.
  if (in.num_cpus) inv["s3.cpu.count"] = static_cast<double>(*in.num_cpus);
  if (in.num_gpus) inv["s3.gpu.count"] = static_cast<double>(*in.num_gpus);
  if (in.memory_gb) inv["s3.dimm.count"] = *in.memory_gb / 64.0;  // 64GB DIMMs
  if (in.ssd_tb) inv["s3.nvme_drive.count"] = *in.ssd_tb / 7.68;
  if (in.num_nodes) {
    inv["s3.node_chassis.count"] = static_cast<double>(*in.num_nodes);
    inv["s3.mainboard.count"] = static_cast<double>(*in.num_nodes);
    inv["s3.psu.count"] = static_cast<double>(*in.num_nodes) * 2;
    inv["s3.nic.count"] = static_cast<double>(*in.num_nodes);
  }

  // Count how many of the populated keys are actually *required* items.
  for (const auto& item : requirements()) {
    if (item.required && inv.count(item.key)) ++overlap.derivable;
  }
  return overlap;
}

std::vector<std::string> ProtocolCalculator::missing_items(
    const Inventory& inventory) const {
  std::vector<std::string> missing;
  for (const auto& item : requirements()) {
    if (!item.required) continue;
    // Non-numeric descriptors (sites, modes) are carried as coded
    // numeric values; presence is what matters here.
    if (inventory.find(item.key) == inventory.end()) {
      missing.push_back(item.key);
    }
  }
  return missing;
}

bool ProtocolCalculator::can_assess(const Inventory& inventory) const {
  return missing_items(inventory).empty();
}

model::Outcome<GhgResult> ProtocolCalculator::assess(
    const Inventory& inventory) const {
  auto missing = missing_items(inventory);
  if (!missing.empty()) {
    std::vector<std::string> reasons;
    reasons.push_back("GHG protocol computation blocked: " +
                      std::to_string(missing.size()) +
                      " required data items missing (first: " + missing[0] +
                      ")");
    return model::Outcome<GhgResult>::failure(std::move(reasons));
  }

  auto get = [&](const std::string& key) {
    auto it = inventory.find(key);
    return it == inventory.end() ? 0.0 : it->second;
  };

  GhgResult r;
  // Scope 1.
  r.scope1_mt += get("s1.diesel_litres") * options_.diesel_kg_per_litre / 1000.0;
  r.scope1_mt +=
      get("s1.refrigerant_kg_leaked") * options_.refrigerant_gwp / 1000.0;
  r.scope1_mt += get("s1.natural_gas_m3") * 1.9 / 1000.0;  // kg/m3 factor

  // Scope 2: location-based; market-based contract factor, when present,
  // replaces the location factor (GHG protocol dual reporting).
  double aci = get("s2.grid_aci_location");
  if (inventory.count("s2.grid_aci_market")) {
    aci = get("s2.grid_aci_market");
  }
  double net_kwh = get("s2.metered_kwh") - get("s2.onsite_solar_kwh");
  if (net_kwh < 0) net_kwh = 0;
  r.scope2_mt += net_kwh * aci / 1.0e6;
  r.scope2_mt += get("s2.district_heating_kwh") * 0.15 / 1000.0;

  // Scope 3: per-component count x unit manufacturing carbon (+ EOL),
  // plus transport when reported.
  for (const auto& item : requirements()) {
    if (item.scope != Scope::kScope3) continue;
    if (!util::starts_with(item.key, "s3.") ||
        item.key.find(".count") == std::string::npos) {
      continue;
    }
    const std::string comp =
        item.key.substr(3, item.key.size() - 3 - 6);  // strip s3. / .count
    const double count = get(item.key);
    const double unit = get("s3." + comp + ".mfg_kgco2e");
    const double eol = get("s3." + comp + ".eol_kgco2e");
    const double transport =
        get("s3." + comp + ".transport_km") * 0.0001;  // kg per unit-km
    r.scope3_mt += count * (unit + eol + transport) / 1000.0;
  }
  r.scope3_mt += get("s3.construction_amortized_kgco2e") / 1000.0;
  r.scope3_mt += get("s3.staff_commuting_km") * 0.17 / 1000.0;
  r.scope3_mt += get("s3.business_travel_km") * 0.19 / 1000.0;
  return model::Outcome<GhgResult>::success(r);
}

}  // namespace easyc::ghg
