#include "top500/record.hpp"

#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/strings.hpp"

namespace easyc::top500 {

std::string visibility_name(DataVisibility v) {
  switch (v) {
    case DataVisibility::kTop500Org: return "Top500.org";
    case DataVisibility::kTop500PlusPublic: return "Top500.org + public info";
    case DataVisibility::kFullKnowledge: return "full knowledge";
  }
  return "unknown";
}

const std::array<std::string, kNumTop500DataItems>& top500_data_items() {
  static const std::array<std::string, kNumTop500DataItems> kItems = {
      "Site",          "Manufacturer",   "Country",
      "Year",          "Segment",        "Application Area",
      "Total Cores",   "Accelerator Cores", "Rmax",
      "Rpeak",         "Nmax",           "Nhalf",
      "HPL Power",     "Power Source",   "Memory",
      "Processor",     "Interconnect",   "Operating System",
      "Compiler",
  };
  return kItems;
}

int SystemRecord::num_items_missing() const {
  int n = 0;
  for (bool b : item_reported) {
    if (!b) ++n;
  }
  return n;
}

namespace {

// One word per disclosure mask: 11 flags packed as bits.
uint64_t pack_disclosure(const Disclosure& d) {
  uint64_t bits = 0;
  for (bool b : {d.power, d.nodes, d.gpus, d.memory, d.memory_type, d.ssd,
                 d.utilization, d.annual_energy, d.region,
                 d.processor_identity, d.accelerator_identity}) {
    bits = (bits << 1) | (b ? 1u : 0u);
  }
  return bits;
}

}  // namespace

uint64_t SystemRecord::content_fingerprint() const {
  util::Fingerprint fp;
  // Everything but `rank`, in declaration order. Fields the model does
  // not read today (site, vendor, ...) are included anyway: they are
  // invariant for surviving systems, and hashing the full content keeps
  // the key correct if a future model revision starts reading them.
  fp.mix(name)
      .mix(site)
      .mix(country)
      .mix(vendor)
      .mix(segment)
      .mix(year)
      .mix(rmax_tflops)
      .mix(rpeak_tflops)
      .mix(static_cast<int64_t>(total_cores))
      .mix(processor)
      .mix(processor_public)
      .mix(accelerator)
      .mix(accelerator_public);
  fp.mix(truth.power_kw)
      .mix(static_cast<int64_t>(truth.nodes))
      .mix(static_cast<int64_t>(truth.gpus))
      .mix(static_cast<int64_t>(truth.cpus))
      .mix(truth.memory_gb)
      .mix(truth.memory_type)
      .mix(truth.ssd_tb)
      .mix(truth.utilization)
      .mix(truth.annual_energy_kwh)
      .mix(truth.region);
  fp.mix_u64(pack_disclosure(top500)).mix_u64(pack_disclosure(with_public));
  uint64_t items = 0;
  for (bool b : item_reported) items = (items << 1) | (b ? 1u : 0u);
  fp.mix_u64(items);
  return fp.value();
}

const Disclosure& disclosure_for(const SystemRecord& r,
                                 DataVisibility visibility) {
  switch (visibility) {
    case DataVisibility::kTop500Org: return r.top500;
    case DataVisibility::kTop500PlusPublic: return r.with_public;
    case DataVisibility::kFullKnowledge: break;
  }
  static const Disclosure kEverything = [] {
    Disclosure d;
    d.power = d.nodes = d.gpus = d.memory = d.memory_type = d.ssd = true;
    d.utilization = d.annual_energy = d.region = true;
    d.processor_identity = d.accelerator_identity = true;
    return d;
  }();
  return kEverything;
}

model::Inputs to_inputs(const SystemRecord& r, DataVisibility visibility) {
  model::Inputs in;
  in.name = r.name;
  in.country = r.country;
  in.rmax_tflops = r.rmax_tflops;
  in.rpeak_tflops = r.rpeak_tflops;
  in.total_cores = r.total_cores;
  in.processor = r.processor;
  in.accelerator = r.accelerator;
  in.operation_year = r.year;  // Table I: operation year never missing

  const Disclosure& d = disclosure_for(r, visibility);

  if (visibility != DataVisibility::kTop500Org) {
    if (d.processor_identity && !r.processor_public.empty()) {
      in.processor = r.processor_public;
    }
    if (d.accelerator_identity && !r.accelerator_public.empty()) {
      in.accelerator = r.accelerator_public;
    }
    if (d.region) in.region = r.truth.region;
  }

  // Disclosed-but-unset ground truth (e.g. imported real-world exports,
  // which carry no truth at all) stays missing rather than feeding
  // validate()-rejected zeros into the model.
  if (d.power && r.truth.power_kw > 0) in.power_kw = r.truth.power_kw;
  if (d.nodes && r.truth.nodes > 0) in.num_nodes = r.truth.nodes;
  if (d.gpus && r.is_accelerated() && r.truth.gpus > 0) {
    in.num_gpus = r.truth.gpus;
  }
  // "# of CPUs" is never missing (paper Table I): package counts are
  // derivable from total cores + sockets for every listed system.
  if (r.truth.cpus > 0) in.num_cpus = r.truth.cpus;
  if (d.memory && r.truth.memory_gb > 0) in.memory_gb = r.truth.memory_gb;
  if (d.memory_type && !r.truth.memory_type.empty()) {
    in.memory_type = r.truth.memory_type;
  }
  if (d.ssd && r.truth.ssd_tb > 0) in.ssd_tb = r.truth.ssd_tb;
  if (d.utilization && r.truth.utilization > 0) {
    in.utilization = r.truth.utilization;
  }
  if (d.annual_energy && r.truth.annual_energy_kwh > 0) {
    in.annual_energy_kwh = r.truth.annual_energy_kwh;
  }
  return in;
}

namespace {

std::string flags_to_string(const Disclosure& d) {
  std::string s;
  auto put = [&s](bool b) { s.push_back(b ? '1' : '0'); };
  put(d.power);
  put(d.nodes);
  put(d.gpus);
  put(d.memory);
  put(d.memory_type);
  put(d.ssd);
  put(d.utilization);
  put(d.annual_energy);
  put(d.region);
  put(d.processor_identity);
  put(d.accelerator_identity);
  return s;
}

Disclosure flags_from_string(const std::string& s) {
  if (s.size() != 11) {
    throw util::ParseError("disclosure mask must have 11 bits, got '" + s +
                           "'");
  }
  Disclosure d;
  size_t i = 0;
  auto get = [&]() { return s[i++] == '1'; };
  d.power = get();
  d.nodes = get();
  d.gpus = get();
  d.memory = get();
  d.memory_type = get();
  d.ssd = get();
  d.utilization = get();
  d.annual_energy = get();
  d.region = get();
  d.processor_identity = get();
  d.accelerator_identity = get();
  return d;
}

std::string items_to_string(
    const std::array<bool, kNumTop500DataItems>& items) {
  std::string s;
  for (bool b : items) s.push_back(b ? '1' : '0');
  return s;
}

std::array<bool, kNumTop500DataItems> items_from_string(
    const std::string& s) {
  if (s.size() != kNumTop500DataItems) {
    throw util::ParseError("item mask must have 19 bits");
  }
  std::array<bool, kNumTop500DataItems> out{};
  for (int i = 0; i < kNumTop500DataItems; ++i) out[i] = s[i] == '1';
  return out;
}

const std::vector<std::string>& csv_header() {
  static const std::vector<std::string> kHeader = {
      "rank",        "name",         "site",        "country",
      "vendor",      "segment",      "year",        "rmax_tflops",
      "rpeak_tflops","total_cores",  "processor",   "processor_public",
      "accelerator", "accelerator_public",
      "power_kw",    "nodes",        "gpus",        "cpus",
      "memory_gb",   "memory_type",  "ssd_tb",      "utilization",
      "annual_energy_kwh",           "region",
      "mask_top500", "mask_public",  "items_reported",
  };
  return kHeader;
}

}  // namespace

util::CsvTable to_csv(const std::vector<SystemRecord>& records) {
  util::CsvTable t(csv_header());
  for (const auto& r : records) {
    t.add_row({
        std::to_string(r.rank),
        r.name,
        r.site,
        r.country,
        r.vendor,
        r.segment,
        std::to_string(r.year),
        util::format_double(r.rmax_tflops, 4),
        util::format_double(r.rpeak_tflops, 4),
        std::to_string(r.total_cores),
        r.processor,
        r.processor_public,
        r.accelerator,
        r.accelerator_public,
        util::format_double(r.truth.power_kw, 3),
        std::to_string(r.truth.nodes),
        std::to_string(r.truth.gpus),
        std::to_string(r.truth.cpus),
        util::format_double(r.truth.memory_gb, 1),
        r.truth.memory_type,
        util::format_double(r.truth.ssd_tb, 2),
        util::format_double(r.truth.utilization, 4),
        util::format_double(r.truth.annual_energy_kwh, 1),
        r.truth.region,
        flags_to_string(r.top500),
        flags_to_string(r.with_public),
        items_to_string(r.item_reported),
    });
  }
  return t;
}

std::vector<SystemRecord> from_csv(const util::CsvTable& t) {
  std::vector<SystemRecord> out;
  out.reserve(t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    SystemRecord r;
    auto num = [&](const char* col) {
      auto v = t.cell_double(i, col);
      if (!v) throw util::ParseError(std::string("bad numeric field ") + col);
      return *v;
    };
    r.rank = static_cast<int>(num("rank"));
    r.name = t.cell(i, "name");
    r.site = t.cell(i, "site");
    r.country = t.cell(i, "country");
    r.vendor = t.cell(i, "vendor");
    r.segment = t.cell(i, "segment");
    r.year = static_cast<int>(num("year"));
    r.rmax_tflops = num("rmax_tflops");
    r.rpeak_tflops = num("rpeak_tflops");
    r.total_cores = static_cast<long long>(num("total_cores"));
    r.processor = t.cell(i, "processor");
    r.processor_public = t.cell(i, "processor_public");
    r.accelerator = t.cell(i, "accelerator");
    r.accelerator_public = t.cell(i, "accelerator_public");
    r.truth.power_kw = num("power_kw");
    r.truth.nodes = static_cast<long long>(num("nodes"));
    r.truth.gpus = static_cast<long long>(num("gpus"));
    r.truth.cpus = static_cast<long long>(num("cpus"));
    r.truth.memory_gb = num("memory_gb");
    r.truth.memory_type = t.cell(i, "memory_type");
    r.truth.ssd_tb = num("ssd_tb");
    r.truth.utilization = num("utilization");
    r.truth.annual_energy_kwh = num("annual_energy_kwh");
    r.truth.region = t.cell(i, "region");
    r.top500 = flags_from_string(t.cell(i, "mask_top500"));
    r.with_public = flags_from_string(t.cell(i, "mask_public"));
    r.item_reported = items_from_string(t.cell(i, "items_reported"));
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace easyc::top500
