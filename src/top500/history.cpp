#include "top500/history.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace easyc::top500 {

namespace {

std::string edition_label(int index) {
  // Editions alternate June/November starting from November 2024.
  const int year = 2024 + (index + 1) / 2;
  const bool november = (index % 2) == 0;
  return (november ? "Nov " : "Jun ") + std::to_string(year);
}

// Entrant category mix: matches the accelerated/CPU split of the base
// quotas, with industry AI clusters (the main growth driver) overweight.
AccessCategory sample_entrant_category(util::Rng& rng) {
  static const AccessCategory kCats[] = {
      AccessCategory::kAccOpen,
      AccessCategory::kAccPublicCountsPower,
      AccessCategory::kAccPublicCountsDark,
      AccessCategory::kAccPowerOnly,
      AccessCategory::kAccDark,
      AccessCategory::kCpuOpen,
  };
  static const std::vector<double> kWeights = {0.10, 0.08, 0.25,
                                               0.12, 0.05, 0.40};
  return kCats[rng.weighted_index(kWeights)];
}

}  // namespace

std::vector<ListEdition> generate_history(const HistoryConfig& cfg) {
  EASYC_REQUIRE(cfg.editions >= 1, "history needs at least one edition");
  EASYC_REQUIRE(cfg.entrants_per_cycle >= 0 &&
                    cfg.entrants_per_cycle < cfg.base.list_size,
                "entrants per cycle must leave survivors");

  std::vector<ListEdition> history;
  util::Rng rng(cfg.base.seed ^ 0x815701133ULL);

  // Edition 0: the calibrated November-2024 list.
  {
    auto base = generate_list(cfg.base);
    ListEdition e;
    e.label = edition_label(0);
    e.records = std::move(base.records);
    e.categories = std::move(base.categories);
    e.num_new = 0;
    history.push_back(std::move(e));
  }

  struct Entry {
    SystemRecord record;
    AccessCategory category;
  };

  for (int cycle = 1; cycle < cfg.editions; ++cycle) {
    const auto& prev = history.back();

    std::vector<Entry> pool;
    pool.reserve(prev.records.size() + cfg.entrants_per_cycle);
    for (size_t i = 0; i < prev.records.size(); ++i) {
      pool.push_back({prev.records[i], prev.categories[i]});
    }

    const double perf_scale =
        std::pow(1.0 + cfg.entrant_perf_growth, cycle);
    const double power_discount =
        std::pow(1.0 + cfg.entrant_efficiency_gain, cycle);
    for (int k = 0; k < cfg.entrants_per_cycle; ++k) {
      const auto cat = sample_entrant_category(rng);
      // Entrants land mostly in the lower half of the list (they enter
      // just above the displacement threshold); a rare flagship appears.
      const int nominal_rank = static_cast<int>(
          rng.bernoulli(0.04) ? rng.uniform_int(4, 30)
                              : rng.uniform_int(100, 460));
      SystemRecord rec = synthesize_entrant(
          rng, nominal_rank, cat, /*year_offset=*/(cycle + 1) / 2,
          perf_scale, cfg.base);
      rec.year = std::min(rec.year, 2024 + (cycle + 1) / 2);
      rec.truth.power_kw /= power_discount;
      rec.name = "Entrant-" + std::to_string(cycle) + "-" +
                 std::to_string(k);
      pool.push_back({std::move(rec), cat});
    }

    // Re-rank by Rmax and keep the top list_size.
    std::stable_sort(pool.begin(), pool.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.record.rmax_tflops > b.record.rmax_tflops;
                     });
    pool.resize(static_cast<size_t>(cfg.base.list_size));

    ListEdition e;
    e.label = edition_label(cycle);
    e.records.reserve(pool.size());
    e.categories.reserve(pool.size());
    const std::string cycle_prefix =
        "Entrant-" + std::to_string(cycle) + "-";
    int num_new = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
      pool[i].record.rank = static_cast<int>(i) + 1;
      if (pool[i].record.name.rfind(cycle_prefix, 0) == 0) ++num_new;
      e.records.push_back(std::move(pool[i].record));
      e.categories.push_back(pool[i].category);
    }
    e.num_new = num_new;
    history.push_back(std::move(e));
  }
  return history;
}

}  // namespace easyc::top500
