// Synthetic Top500 list generator.
//
// Substitution for the live Top500.org November-2024 dataset (see
// DESIGN.md): named flagship systems carry their published specs; the
// remaining ranks are synthesized with calibrated distributions of
// performance, architecture, power efficiency, geography, and age. The
// data-access categories (categories.hpp) are then distributed over the
// list with rank-dependent weights so that coverage gaps concentrate
// where the paper finds them (ranks 26-100 for operational carbon, the
// top 150 for embodied), while the global Table-I missingness counts
// are met exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "top500/categories.hpp"
#include "top500/record.hpp"
#include "util/rng.hpp"

namespace easyc::top500 {

struct GeneratorConfig {
  uint64_t seed = 0x70b500u;
  int list_size = 500;
  /// Scale factor on synthetic ground-truth power draw. The default
  /// reflects that annual-average HPL-class efficiency runs above the
  /// conservative per-era GF/W priors (calibrated against the paper's
  /// headline operational total).
  double power_scale = 0.70;
  /// Scale factor on ground-truth storage capacity (calibration knob
  /// for the headline embodied total).
  double storage_scale = 1.0;
};

struct GeneratedList {
  std::vector<SystemRecord> records;       ///< ascending rank
  std::vector<AccessCategory> categories;  ///< parallel to records
};

/// Build the full list. Deterministic for a given config.
GeneratedList generate_list(const GeneratorConfig& config = {});

/// Convenience: records only.
std::vector<SystemRecord> generate_records(const GeneratorConfig& config = {});

/// Synthesize one system of the given category at a nominal rank, with
/// `year_offset` added to the sampled installation year and performance
/// scaled by `perf_scale`. Used by the list-history generator to create
/// the ~48 systems that enter the list each cycle. Disclosure masks are
/// assigned per the category's pattern (quota sub-assignments like the
/// memory-208 set apply only to full-list generation).
SystemRecord synthesize_entrant(util::Rng& rng, int rank,
                                AccessCategory category, int year_offset,
                                double perf_scale,
                                const GeneratorConfig& config = {});

}  // namespace easyc::top500
