// Multi-edition list history with turnover.
//
// The paper derives its projection growth rates from list dynamics: "An
// average of 48 systems was added to each new list in each cycle, over
// the past two years. With this turnover comes a 5% increase in
// operational carbon, and 1% increase in embodied." This module
// simulates that process: starting from the November-2024 list, each
// subsequent edition admits ~48 new systems (newer hardware, higher
// performance at better efficiency), displacing the bottom of the list.
// `analysis::turnover` then *measures* the per-cycle carbon growth from
// the simulated editions — the reproduction of how the paper obtained
// 10.3%/yr operational and 2%/yr embodied.
#pragma once

#include <string>
#include <vector>

#include "top500/generator.hpp"

namespace easyc::top500 {

struct HistoryConfig {
  GeneratorConfig base;          ///< the first edition (Nov 2024)
  int editions = 5;              ///< total editions including the first
  int entrants_per_cycle = 48;   ///< paper: ~48 new systems per list
  /// Performance growth of the typical entrant per cycle (half-year):
  /// newcomers at a given rank outperform the systems they displace.
  double entrant_perf_growth = 0.10;
  /// Efficiency improvement of entrants per cycle (GFlops/W trend);
  /// applied as a power discount on top of the era efficiency.
  double entrant_efficiency_gain = 0.05;
};

struct ListEdition {
  std::string label;             ///< "Nov 2024", "Jun 2025", ...
  std::vector<SystemRecord> records;      ///< re-ranked, 500 entries
  std::vector<AccessCategory> categories; ///< parallel to records
  int num_new = 0;               ///< systems that entered this cycle
};

/// Simulate `editions` successive lists. Deterministic per config.
std::vector<ListEdition> generate_history(const HistoryConfig& config = {});

}  // namespace easyc::top500
