#include "top500/catalog.hpp"

namespace easyc::top500 {

namespace {

struct Spec {
  int rank;
  const char* name;
  const char* site;
  const char* country;
  const char* region;  // "" when no sub-national refinement applies
  const char* vendor;
  const char* segment;
  int year;
  double rmax_tf;
  double rpeak_tf;
  long long cores;
  const char* processor;
  const char* accelerator;        // "" = CPU-only
  const char* accelerator_public; // refined identity ("" = same as listed)
  double power_kw;                // ground-truth HPL power
  long long nodes;
  long long gpus;
  long long cpus;
  double memory_gb;
  const char* memtype;
  double ssd_tb;
  double annual_energy_kwh;       // >0 only for metered (cloud) systems
  AccessCategory cat;
};

NamedSystem make(const Spec& s) {
  NamedSystem n;
  SystemRecord& r = n.record;
  r.rank = s.rank;
  r.name = s.name;
  r.site = s.site;
  r.country = s.country;
  r.vendor = s.vendor;
  r.segment = s.segment;
  r.year = s.year;
  r.rmax_tflops = s.rmax_tf;
  r.rpeak_tflops = s.rpeak_tf;
  r.total_cores = s.cores;
  r.processor = s.processor;
  r.accelerator = s.accelerator;
  r.accelerator_public = s.accelerator_public;
  r.truth.power_kw = s.power_kw;
  r.truth.nodes = s.nodes;
  r.truth.gpus = s.gpus;
  r.truth.cpus = s.cpus;
  r.truth.memory_gb = s.memory_gb;
  r.truth.memory_type = s.memtype;
  r.truth.ssd_tb = s.ssd_tb;
  r.truth.utilization = 0.8;
  r.truth.annual_energy_kwh = s.annual_energy_kwh;
  r.truth.region = s.region;
  n.category = s.cat;
  return n;
}

using AC = AccessCategory;

std::vector<NamedSystem> build() {
  // Specs follow the November-2024 list; configuration details come
  // from vendor/site disclosures, storage capacities calibrated so the
  // per-system contrasts the paper reports (Frontier vs El Capitan
  // embodied ~2.6x) emerge from the embodied model.
  const Spec specs[] = {
      {1, "El Capitan", "LLNL", "United States", "California", "HPE",
       "Research", 2024, 1742000, 2746380, 11039616,
       "AMD 4th Gen EPYC 24C 1.8GHz", "AMD Instinct MI300A", "",
       29581, 11136, 44544, 11136, 5737000, "HBM3", 200000, 0,
       AC::kAccPublicCountsPower},
      {2, "Frontier", "DOE/SC/ORNL", "United States", "Tennessee", "HPE",
       "Research", 2022, 1353000, 2055720, 9066176,
       "AMD Optimized 3rd Gen EPYC 64C 2GHz", "AMD Instinct MI250X", "",
       24607, 9472, 37888, 9472, 4850000, "DDR4", 740000, 0,
       AC::kAccPublicCountsPower},
      {3, "Aurora", "DOE/SC/Argonne", "United States", "Illinois", "Intel",
       "Research", 2023, 1012000, 1980010, 9264128,
       "Xeon CPU Max 9470 52C 2.4GHz", "Intel Data Center GPU Max", "",
       38698, 10624, 63744, 21248, 10522000, "DDR5", 230000, 0,
       AC::kAccPublicCountsPower},
      {4, "Eagle", "Microsoft Azure", "United States", "Iowa", "Microsoft",
       "Industry", 2023, 561200, 846840, 2073600,
       "Xeon Platinum 8480C 48C 2GHz", "NVIDIA H100", "",
       11500, 1800, 14400, 3600, 1382400, "DDR5", 28000, 25.0e6,
       AC::kAccEnergyPublic},
      {5, "HPC6", "Eni S.p.A.", "Italy", "", "HPE", "Industry", 2024,
       477900, 606970, 3143520, "AMD Optimized 3rd Gen EPYC 64C 2GHz",
       "AMD Instinct MI250X", "", 8461, 3472, 13888, 3472, 1778000,
       "DDR4", 60000, 0, AC::kAccPublicCountsPower},
      {6, "Supercomputer Fugaku", "RIKEN R-CCS", "Japan", "Kansai", "Fujitsu",
       "Research", 2020, 442010, 537212, 7630848, "A64FX 48C 2.2GHz",
       "", "", 29899, 158976, 0, 158976, 5087232, "HBM2", 150000, 0,
       AC::kCpuOpen},
      {7, "Alps", "CSCS", "Switzerland", "Lugano", "HPE", "Research", 2024,
       434900, 574840, 2121600, "NVIDIA Grace 72C 3.1GHz",
       "NVIDIA GH200 Superchip", "", 7124, 2688, 10752, 10752, 1376000,
       "HBM3", 75000, 0, AC::kAccPublicCountsPower},
      {8, "LUMI", "EuroHPC/CSC", "Finland", "Kajaani", "HPE", "Research",
       2022, 379700, 531510, 2752704, "AMD Optimized 3rd Gen EPYC 64C",
       "AMD Instinct MI250X", "", 7107, 2978, 11912, 2978, 1525000,
       "DDR4", 117000, 0, AC::kAccPublicCountsPower},
      {9, "Leonardo", "EuroHPC/CINECA", "Italy", "Bologna", "EVIDEN",
       "Research", 2022, 241200, 306310, 1824768,
       "Xeon Platinum 8358 32C 2.6GHz", "NVIDIA A100 SXM4 64 GB", "",
       7494, 3456, 13824, 3456, 1769000, "DDR4", 106000, 0,
       AC::kAccPublicCountsPower},
      {10, "Tuolumne", "LLNL", "United States", "California", "HPE",
       "Research", 2024, 208100, 288880, 1161216,
       "AMD 4th Gen EPYC 24C 1.8GHz", "AMD Instinct MI300A", "",
       3387, 1152, 4608, 1152, 589824, "HBM3", 21000, 0,
       AC::kAccPublicCountsPower},
      {11, "MareNostrum 5 ACC", "EuroHPC/BSC", "Spain", "", "EVIDEN",
       "Research", 2023, 175300, 249440, 663040,
       "Xeon Platinum 8460Y+ 40C 2.3GHz", "NVIDIA H100 64GB", "",
       4159, 1120, 4480, 2240, 573440, "DDR5", 26000, 0,
       AC::kAccPublicCountsPower},
      {12, "Eos NVIDIA DGX SuperPOD", "NVIDIA Corporation",
       "United States", "California", "Nvidia", "Industry", 2023,
       121400, 188650, 485888, "Xeon Platinum 8480C 56C 3.8GHz",
       "NVIDIA H100", "", 3100, 576, 4608, 1152, 1179648, "DDR5",
       18000, 0, AC::kAccPublicCountsDark},
      {13, "Venado", "DOE/NNSA/LANL", "United States", "New Mexico", "HPE",
       "Research", 2024, 98510, 130440, 481440, "NVIDIA Grace 72C 3.4GHz",
       "NVIDIA GH200 Superchip", "", 1662, 640, 2560, 2560, 460000,
       "HBM3", 9000, 0, AC::kAccPowerOnly},
      {14, "Sierra", "DOE/NNSA/LLNL", "United States", "California", "IBM",
       "Research", 2018, 94640, 125712, 1572480, "IBM POWER9 22C 3.1GHz",
       "NVIDIA Volta GV100", "NVIDIA V100", 7438, 4320, 17280, 8640,
       1382400, "DDR4", 154000, 0, AC::kAccPublicCountsPower},
      {15, "Sunway TaihuLight", "NSCC in Wuxi", "China", "Wuxi", "NRCPC",
       "Research", 2016, 93015, 125436, 10649600,
       "Sunway SW26010 260C 1.45GHz", "", "", 15371, 40960, 0, 40960,
       1310720, "DDR3", 20000, 0, AC::kCpuExoticDark},
      {16, "CHIE-3", "SoftBank Corp.", "Japan", "", "Nvidia", "Industry",
       2024, 91940, 129720, 328320, "Xeon Platinum 8480C 56C 2GHz",
       "NVIDIA H100", "", 2800, 510, 4080, 1020, 522240, "DDR5", 8200,
       17.5e6, AC::kAccEnergyPublic},
      {17, "CHIE-2", "SoftBank Corp.", "Japan", "", "Nvidia", "Industry",
       2024, 84986, 118190, 302064, "Xeon Platinum 8480C 56C 2GHz",
       "NVIDIA H100", "", 2610, 470, 3760, 940, 481280, "DDR5", 7500,
       16.0e6, AC::kAccEnergyPublic},
      {18, "JETI - JUPITER Exascale Transition Instrument",
       "EuroHPC/FZJ", "Germany", "", "EVIDEN", "Research", 2024,
       83140, 94000, 391680, "NVIDIA Grace 72C 3.1GHz",
       "NVIDIA GH200 Superchip", "", 1311, 480, 1920, 1920, 276480,
       "HBM3", 11000, 0, AC::kAccPublicCountsPower},
      {19, "Perlmutter", "DOE/SC/LBNL/NERSC", "United States",
       "California", "HPE", "Research", 2021, 79230, 113000, 888832,
       "AMD EPYC 7763 64C 2.45GHz", "NVIDIA A100 SXM4 40 GB", "",
       2589, 3072, 6144, 4608, 2100000, "DDR4", 44000, 0, AC::kAccOpen},
      {20, "El Dorado", "Sandia National Laboratories", "United States",
       "New Mexico", "HPE", "Research", 2024, 67100, 92540, 383040,
       "AMD 4th Gen EPYC 24C 1.8GHz", "AMD Instinct MI300A", "",
       1202, 384, 1536, 384, 196608, "HBM3", 7000, 0, AC::kAccOpen},
      {23, "Selene", "NVIDIA Corporation", "United States", "California",
       "Nvidia", "Industry", 2020, 63460, 79215, 555520,
       "AMD EPYC 7742 64C 2.25GHz", "NVIDIA A100", "", 2646, 560, 4480,
       1120, 1146880, "DDR4", 14000, 0, AC::kAccOpen},
      {24, "Tianhe-2A", "NSCC Guangzhou", "China", "Guangdong", "NUDT",
       "Research", 2018, 61445, 100679, 4981760,
       "Intel Xeon E5-2692v2 12C 2.2GHz", "Matrix-2000", "Matrix-2000",
       18482, 17792, 35584, 35584, 2277376, "DDR3", 19000, 0,
       AC::kAccPublicCountsPower},
      {26, "Explorer-WUS3", "Microsoft Azure", "United States",
       "Washington", "Microsoft", "Industry", 2024, 46080, 60130,
       175680, "Xeon Platinum 8480C 48C 2GHz", "NVIDIA H100", "",
       1450, 270, 2160, 540, 207360, "DDR5", 3400, 21.0e6,
       AC::kAccEnergyPublic},
      {33, "JUWELS Booster Module", "FZJ", "Germany", "", "EVIDEN",
       "Research", 2020, 44120, 70980, 449280,
       "AMD EPYC 7402 24C 2.8GHz", "NVIDIA A100", "", 1764, 936, 3744,
       1872, 479232, "DDR4", 14000, 0, AC::kAccOpen},
      {38, "Shaheen III - CPU", "KAUST", "Saudi Arabia", "", "HPE",
       "Research", 2023, 35660, 45250, 876544,
       "AMD EPYC 9654 96C 2.4GHz", "", "", 5271, 4565, 0, 9130,
       3505152, "DDR5", 40000, 0, AC::kCpuOpen},
      {47, "Polaris", "DOE/SC/Argonne", "United States", "Illinois",
       "HPE", "Research", 2021, 25810, 34160, 259520,
       "AMD EPYC 7543P 32C 2.8GHz", "NVIDIA A100", "", 1640, 560, 2240,
       560, 286720, "DDR4", 8000, 0, AC::kAccOpen},
      {52, "Frontera", "TACC/Univ. of Texas", "United States", "Texas",
       "Dell EMC", "Academic", 2019, 23516, 38746, 448448,
       "Xeon Platinum 8280 28C 2.7GHz", "", "", 5100, 8008, 0, 16016,
       1537536, "DDR4", 66000, 0, AC::kCpuOpen},
      {62, "ARCHER2", "EPSRC/EPCC", "United Kingdom", "", "HPE",
       "Academic", 2020, 19540, 25800, 750080,
       "AMD EPYC 7742 64C 2.25GHz", "", "", 3050, 5860, 0, 11720,
       1500160, "DDR4", 45000, 0, AC::kCpuOpen},
      {64, "SuperMUC-NG", "Leibniz Rechenzentrum", "Germany", "Bavaria",
       "Lenovo", "Academic", 2018, 19477, 26874, 305856,
       "Xeon Platinum 8174 24C 3.1GHz", "", "", 2900, 6372, 0, 12744,
       719232, "DDR4", 52000, 0, AC::kCpuOpen},
      {81, "Pioneer-WUS2", "Microsoft Azure", "United States",
       "Washington", "Microsoft", "Industry", 2024, 14820, 19660,
       54000, "Xeon Platinum 8480C 48C 2GHz", "NVIDIA H100", "",
       480, 84, 672, 168, 64512, "DDR5", 1100, 7.6e6,
       AC::kAccEnergyPublic},
      {82, "Pioneer-WEU", "Microsoft Azure", "Netherlands", "",
       "Microsoft", "Industry", 2024, 14720, 19530, 53640,
       "Xeon Platinum 8480C 48C 2GHz", "NVIDIA H100", "", 477, 84, 672,
       168, 64512, "DDR5", 1100, 7.5e6, AC::kAccEnergyPublic},
      {83, "Pioneer-EUS", "Microsoft Azure", "United States", "Virginia",
       "Microsoft", "Industry", 2024, 14640, 19400, 53280,
       "Xeon Platinum 8480C 48C 2GHz", "NVIDIA H100", "", 474, 84, 672,
       168, 64512, "DDR5", 1100, 7.4e6, AC::kAccEnergyPublic},
      {84, "Pioneer-SCUS", "Microsoft Azure", "United States", "Texas",
       "Microsoft", "Industry", 2024, 14560, 19300, 53040,
       "Xeon Platinum 8480C 48C 2GHz", "NVIDIA H100", "", 472, 84, 672,
       168, 64512, "DDR5", 1100, 7.3e6, AC::kAccEnergyPublic},
      {101, "Tera-1000-2", "CEA", "France", "", "EVIDEN", "Government",
       2017, 11965, 23396, 561408, "Xeon Phi 7250 68C 1.4GHz", "", "",
       3178, 8256, 0, 8256, 792576, "DDR4", 24000, 0, AC::kCpuOpen},
      {110, "Stampede2", "TACC/Univ. of Texas", "United States", "Texas",
       "Dell EMC", "Academic", 2017, 10680, 18309, 367024,
       "Xeon Phi 7250 68C 1.4GHz", "", "", 3300, 5397, 0, 5397,
       518112, "DDR4", 20000, 0, AC::kCpuOpen},
  };
  std::vector<NamedSystem> out;
  out.reserve(std::size(specs));
  for (const auto& s : specs) out.push_back(make(s));
  return out;
}

}  // namespace

const std::vector<NamedSystem>& named_systems() {
  static const std::vector<NamedSystem> kSystems = build();
  return kSystems;
}

}  // namespace easyc::top500
