// Named flagship systems of the November-2024 Top500 list.
//
// The top of the list is dominated by individually well-documented
// machines; embedding them (with published specs) anchors the synthetic
// dataset to reality and lets the per-system contrasts the paper calls
// out emerge from the model itself:
//   * LUMI vs Leonardo: 4.3x operational difference (grid intensity),
//   * Frontier vs El Capitan: 2.6x embodied difference (accelerators
//     and storage capacity).
#pragma once

#include <vector>

#include "top500/categories.hpp"
#include "top500/record.hpp"

namespace easyc::top500 {

struct NamedSystem {
  SystemRecord record;        ///< masks unset; generator derives them
  AccessCategory category;
};

/// All named systems, ascending by rank.
const std::vector<NamedSystem>& named_systems();

}  // namespace easyc::top500
