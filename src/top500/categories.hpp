// Data-access categories.
//
// Every Top500 entry falls into one of ten empirical data-availability
// patterns; the category fixes its disclosure masks. Quotas per
// category are derived so the dataset reproduces, *exactly*, the
// paper's Table I missingness counts and the coverage results:
//
//   operational coverage:  391/500 (Top500.org),  490/500 (+public)
//   embodied coverage:     283/500 (Top500.org),  404/500 (+public)
//
// Derivation (A = accelerated, C = CPU-only; see DESIGN.md):
//   op uncovered (Top500.org)  = b + d + e            = 91+8+10 = 109
//   op uncovered (+public)     = e                    = 10
//   emb covered  (Top500.org)  = (C - X_t) + a1       = 260+23  = 283
//   emb covered  (+public)     = (C - X_p) + a1+a2+bp+b
//                              = 270 + 23+8+12+91     = 404
//   nodes missing (Top500.org) = (A - a1 - a2) + X_t  = 179+30  = 209
//   nodes missing (+public)    = (c-10) + d + e + X_p = 66+20   = 86
//   gpus  missing (+public)    = c + d + e + g_c      = 76+10   = 86
#pragma once

#include <string>

namespace easyc::top500 {

enum class AccessCategory {
  /// Accelerated; node/GPU counts on Top500.org; accelerator string
  /// resolves against the hardware catalog. (a1 = 23)
  kAccOpen,
  /// Accelerated; counts on Top500.org but only a vague accelerator
  /// string ("NVIDIA GPU"); strict policy declines, the +public
  /// approximate policy covers it. (a2 = 8)
  kAccOpenVague,
  /// Accelerated; HPL power on Top500.org; counts appear only in public
  /// sources (El Capitan pattern: op from the list, embodied only with
  /// public info). (bp = 12)
  kAccPublicCountsPower,
  /// Accelerated; dark on Top500.org; public sources reveal counts
  /// (Eos pattern). (b = 91)
  kAccPublicCountsDark,
  /// Accelerated; power on Top500.org; counts never public (Venado
  /// pattern: operational always, embodied never). (c = 58, of which 10
  /// get node counts — but not GPU counts — from public sources)
  kAccPowerOnly,
  /// Accelerated; dark on Top500.org; public sources reveal annual
  /// energy (Azure Eagle pattern: op only with public info, embodied
  /// never). (d = 8)
  kAccEnergyPublic,
  /// Accelerated; nothing beyond the structural row, ever. These are
  /// the 10 systems interpolated for operational carbon. (e = 10)
  kAccDark,
  /// CPU-only, mainstream processor: both models work from Top500.org
  /// data alone (the ranks-151-500 population). (260)
  kCpuOpen,
  /// CPU-only, exotic device; public sources reveal the device identity
  /// and node count. (10)
  kCpuExoticRevealed,
  /// CPU-only, exotic device, never documented (Sunway TaihuLight
  /// pattern: embodied only by interpolation). (20)
  kCpuExoticDark,
};

std::string category_name(AccessCategory c);

/// Quota of systems per category (sums to 500).
int category_quota(AccessCategory c);

/// True for categories describing accelerated systems.
bool category_is_accelerated(AccessCategory c);

}  // namespace easyc::top500
