// Top500 system records with per-field data-availability modeling.
//
// The paper's central experimental variable is *which data is available
// from which source*. Each record therefore carries:
//   * the structural/performance fields every Top500 entry has,
//   * ground truth for the EasyC metrics (what the machine really is),
//   * two disclosure masks — what Top500.org discloses, and what
//     Top500.org plus other public sources disclose (a superset),
//   * the Fig.-2 bookkeeping of which of the 19 Top500.org data items
//     the entry reports.
//
// `to_inputs(record, scenario)` projects a record onto `model::Inputs`,
// hiding everything the scenario's sources do not disclose. The same
// record yields different model coverage under different scenarios —
// exactly the paper's Figs. 4-6.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "easyc/inputs.hpp"
#include "util/csv.hpp"

namespace easyc::top500 {

/// Which data sources a scenario may read. This is the record-layer half
/// of a scenario: it selects a disclosure mask (or the ground truth).
/// Model-side policy (accelerator fallback, grid/PUE/lifetime overrides)
/// lives in analysis::ScenarioSpec, which composes with a visibility.
enum class DataVisibility {
  kTop500Org,        ///< Baseline: Top500.org fields only
  kTop500PlusPublic, ///< Baseline + other public web sources
  kFullKnowledge,    ///< everything (ground truth; upper bound, not in paper)
};

/// Number of visibility levels; keep in sync with the enum (per-level
/// caches size their storage from this).
inline constexpr size_t kNumDataVisibilities =
    static_cast<size_t>(DataVisibility::kFullKnowledge) + 1;

std::string visibility_name(DataVisibility v);

/// Compatibility shim for the pre-engine API, where the closed enum was
/// the whole scenario concept. New code should name DataVisibility (and
/// build scenarios as analysis::ScenarioSpec).
using Scenario = DataVisibility;
inline std::string scenario_name(DataVisibility v) {
  return visibility_name(v);
}

/// Per-source availability of each EasyC-relevant field.
struct Disclosure {
  bool power = false;        ///< HPL power figure
  bool nodes = false;        ///< # compute nodes
  bool gpus = false;         ///< # accelerators
  bool memory = false;       ///< total memory capacity
  bool memory_type = false;
  bool ssd = false;          ///< flash capacity
  bool utilization = false;
  bool annual_energy = false;
  bool region = false;           ///< sub-national grid region known
  bool processor_identity = false;   ///< refined CPU identity published
  bool accelerator_identity = false; ///< refined accelerator identity
};

/// The 19 Top500.org data items tracked by the paper's Fig. 2.
inline constexpr int kNumTop500DataItems = 19;
const std::array<std::string, kNumTop500DataItems>& top500_data_items();

/// What the machine actually is — the generator's ground truth. Real
/// deployments would not have this struct; it exists so the missingness
/// model can hide known values per scenario.
struct GroundTruth {
  double power_kw = 0.0;          ///< average HPL power
  long long nodes = 0;
  long long gpus = 0;             ///< 0 for CPU-only systems
  long long cpus = 0;             ///< CPU packages
  double memory_gb = 0.0;
  std::string memory_type;        ///< "DDR4", "HBM3", ...
  double ssd_tb = 0.0;
  double utilization = 0.8;
  double annual_energy_kwh = 0.0; ///< metered facility energy
  std::string region;             ///< sub-national region, "" if n/a
};

struct SystemRecord {
  int rank = 0;
  std::string name;
  std::string site;
  std::string country;
  std::string vendor;
  std::string segment;            ///< Research / Industry / Government...
  int year = 2020;                ///< installation year
  double rmax_tflops = 0.0;
  double rpeak_tflops = 0.0;
  long long total_cores = 0;
  std::string processor;          ///< string as listed on Top500.org
  std::string processor_public;   ///< refined identity from public sources
  std::string accelerator;        ///< "" = CPU-only
  std::string accelerator_public;

  GroundTruth truth;
  Disclosure top500;              ///< what Top500.org discloses
  Disclosure with_public;         ///< superset: + other public sources

  /// Fig.-2 bookkeeping: item i reported on Top500.org?
  std::array<bool, kNumTop500DataItems> item_reported{};

  bool is_accelerated() const { return !accelerator.empty(); }

  /// Count of unreported Top500.org items (Fig. 2 x-axis).
  int num_items_missing() const;

  /// Stable 64-bit hash of the record's *content*: every field except
  /// `rank`. Rank is reassigned each list edition while the system
  /// itself is unchanged (and `to_inputs` never reads it), so excluding
  /// it lets the assessment cache recognize the ~452 survivors per
  /// cycle. Any other field change — truth values, disclosure masks,
  /// identities — changes the fingerprint.
  uint64_t content_fingerprint() const;
};

/// The disclosure mask a visibility level reads. kFullKnowledge maps to
/// an all-true mask so callers can treat the three levels uniformly.
const Disclosure& disclosure_for(const SystemRecord& record,
                                 DataVisibility visibility);

/// Project a record onto EasyC model inputs under a data visibility.
model::Inputs to_inputs(const SystemRecord& record,
                        DataVisibility visibility);

/// CSV round trip for the full dataset (all fields incl. truth + masks).
util::CsvTable to_csv(const std::vector<SystemRecord>& records);
std::vector<SystemRecord> from_csv(const util::CsvTable& table);

}  // namespace easyc::top500
