#include "top500/import.hpp"

#include <algorithm>
#include <map>

#include "hw/cpu.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace easyc::top500 {

namespace {

// Normalize a header cell: lower-case, strip bracketed units and
// parenthesized units, collapse punctuation to single spaces.
std::string normalize_header(std::string_view raw) {
  std::string out;
  bool in_bracket = false;
  for (char c : raw) {
    if (c == '[' || c == '(') in_bracket = true;
    else if (c == ']' || c == ')') in_bracket = false;
    else if (!in_bracket) {
      if (c == '-' || c == '_' || c == '/' || c == '.') c = ' ';
      out.push_back(static_cast<char>(std::tolower(
          static_cast<unsigned char>(c))));
    }
  }
  // Collapse runs of spaces and trim.
  std::string collapsed;
  bool prev_space = true;
  for (char c : out) {
    if (c == ' ') {
      if (!prev_space) collapsed.push_back(' ');
      prev_space = true;
    } else {
      collapsed.push_back(c);
      prev_space = false;
    }
  }
  while (!collapsed.empty() && collapsed.back() == ' ') collapsed.pop_back();
  return collapsed;
}

// Aliases per logical column, normalized form.
const std::map<std::string, std::vector<std::string>>& alias_table() {
  static const std::map<std::string, std::vector<std::string>> kAliases = {
      {"rank", {"rank"}},
      {"name", {"name", "computer", "system"}},
      {"site", {"site"}},
      {"manufacturer", {"manufacturer", "vendor"}},
      {"country", {"country"}},
      {"year", {"year"}},
      {"segment", {"segment"}},
      {"total_cores", {"total cores", "cores"}},
      {"accel_cores",
       {"accelerator co processor cores", "accelerator cores"}},
      {"rmax", {"rmax", "hpl rmax"}},
      {"rpeak", {"rpeak"}},
      {"power", {"power", "power kw"}},
      {"processor", {"processor"}},
      {"cores_per_socket", {"cores per socket"}},
      {"accelerator", {"accelerator co processor", "accelerator"}},
      {"memory", {"memory"}},
  };
  return kAliases;
}

}  // namespace

std::optional<size_t> find_column(const util::CsvTable& table,
                                  std::string_view logical_name) {
  auto it = alias_table().find(std::string(logical_name));
  EASYC_REQUIRE(it != alias_table().end(), "unknown logical column name");
  for (size_t c = 0; c < table.header().size(); ++c) {
    const std::string norm = normalize_header(table.header()[c]);
    for (const auto& alias : it->second) {
      if (norm == alias) return c;
    }
  }
  return std::nullopt;
}

ImportResult import_top500_csv(const util::CsvTable& table) {
  auto require = [&](const char* name) {
    auto c = find_column(table, name);
    if (!c) {
      throw util::ParseError(std::string("Top500 export lacks a '") + name +
                             "' column");
    }
    return *c;
  };
  const size_t col_rank = require("rank");
  const size_t col_country = require("country");
  const size_t col_cores = require("total_cores");
  const size_t col_rmax = require("rmax");
  const size_t col_processor = require("processor");
  const auto col_name = find_column(table, "name");
  const auto col_site = find_column(table, "site");
  const auto col_manufacturer = find_column(table, "manufacturer");
  const auto col_year = find_column(table, "year");
  const auto col_segment = find_column(table, "segment");
  const auto col_rpeak = find_column(table, "rpeak");
  const auto col_power = find_column(table, "power");
  const auto col_accel = find_column(table, "accelerator");
  const auto col_accel_cores = find_column(table, "accel_cores");
  const auto col_cps = find_column(table, "cores_per_socket");
  const auto col_memory = find_column(table, "memory");

  ImportResult out;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    auto cell = [&](std::optional<size_t> c) -> std::string {
      return c ? std::string(util::trim(table.cell(row, *c))) : std::string();
    };
    auto num = [&](std::optional<size_t> c) {
      return c ? util::parse_double(table.cell(row, *c)) : std::nullopt;
    };
    SystemRecord r;
    const auto rank = util::parse_int(table.cell(row, col_rank));
    if (!rank || *rank <= 0) {
      out.stats.warnings.push_back("row " + std::to_string(row + 1) +
                                   ": unparseable rank, skipped");
      continue;
    }
    r.rank = static_cast<int>(*rank);
    r.name = cell(col_name);
    r.site = cell(col_site);
    r.vendor = cell(col_manufacturer);
    r.country = table.cell(row, col_country);
    r.segment = cell(col_segment);
    const auto year = num(col_year);
    r.year = year ? static_cast<int>(*year) : 2020;
    const auto rmax = util::parse_double(table.cell(row, col_rmax));
    const auto cores = util::parse_int(table.cell(row, col_cores));
    if (!rmax || !cores) {
      out.stats.warnings.push_back("row " + std::to_string(row + 1) +
                                   ": missing rmax or cores, skipped");
      continue;
    }
    r.rmax_tflops = *rmax;
    r.rpeak_tflops = num(col_rpeak).value_or(*rmax);
    r.total_cores = *cores;
    r.processor = table.cell(row, col_processor);
    r.accelerator = cell(col_accel);
    if (util::iequals(r.accelerator, "none")) r.accelerator.clear();

    // Disclosure: what this export actually carries.
    if (auto power = num(col_power); power && *power > 0) {
      r.truth.power_kw = *power;
      r.top500.power = true;
      ++out.stats.with_power;
    }
    // Package counts from cores-per-socket (the Table-I "# of CPUs
    // incomplete: 0" derivation).
    if (auto cps = num(col_cps); cps && *cps > 0) {
      r.truth.cpus = std::max<long long>(
          1, static_cast<long long>(*cores / *cps));
      ++out.stats.with_cores_per_socket;
    } else if (auto spec = hw::find_cpu(r.processor);
               spec && spec->cores > 0) {
      r.truth.cpus =
          std::max<long long>(1, *cores / spec->cores);
    } else {
      r.truth.cpus = std::max<long long>(1, *cores / 64);  // era prior
    }
    if (auto mem = num(col_memory); mem && *mem > 0) {
      r.truth.memory_gb = *mem;  // export lists GB
      r.top500.memory = true;
    }
    if (!r.accelerator.empty()) ++out.stats.with_accelerator;
    (void)col_accel_cores;  // accelerator *device* counts are not
                            // derivable from accelerator cores alone —
                            // the paper's central embodied-carbon gap.

    r.with_public = r.top500;
    r.item_reported.fill(false);
    r.item_reported[2] = true;                       // country
    r.item_reported[6] = true;                       // total cores
    r.item_reported[8] = true;                       // rmax
    r.item_reported[12] = r.top500.power;
    r.item_reported[14] = r.top500.memory;
    r.item_reported[15] = true;                      // processor

    out.records.push_back(std::move(r));
    ++out.stats.systems;
  }

  std::stable_sort(out.records.begin(), out.records.end(),
                   [](const SystemRecord& a, const SystemRecord& b) {
                     return a.rank < b.rank;
                   });
  return out;
}

ImportResult import_top500_file(const std::string& path) {
  return import_top500_csv(util::CsvTable::read_file(path));
}

}  // namespace easyc::top500
