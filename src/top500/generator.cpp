#include "top500/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "top500/catalog.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace easyc::top500 {

namespace {

using util::Rng;

// ---------------------------------------------------------------------
// Performance curve: log-log interpolation through November-2024 anchor
// points (rank, Rmax TFlop/s).
// ---------------------------------------------------------------------

double rmax_curve(int rank) {
  static const std::pair<double, double> kAnchors[] = {
      {1, 1742000},  {2, 1353000}, {3, 1012000}, {4, 561200}, {6, 442010},
      {8, 379700},   {10, 208100}, {15, 93015},  {20, 67100}, {25, 52000},
      {30, 46000},   {40, 36000},  {50, 30000},  {75, 17500}, {100, 12000},
      {150, 7900},   {200, 5600},  {250, 4600},  {300, 3900}, {350, 3400},
      {400, 3000},   {450, 2650},  {500, 2310},
  };
  const double r = static_cast<double>(rank);
  if (r <= kAnchors[0].first) return kAnchors[0].second;
  for (size_t i = 1; i < std::size(kAnchors); ++i) {
    if (r <= kAnchors[i].first) {
      const auto& [x0, y0] = kAnchors[i - 1];
      const auto& [x1, y1] = kAnchors[i];
      const double t = (std::log(r) - std::log(x0)) /
                       (std::log(x1) - std::log(x0));
      return std::exp(std::log(y0) + t * (std::log(y1) - std::log(y0)));
    }
  }
  return kAnchors[std::size(kAnchors) - 1].second;
}

// ---------------------------------------------------------------------
// Hardware era tables.
// ---------------------------------------------------------------------

struct GpuChoice {
  const char* model;
  double hpl_tf_per_gpu;  ///< delivered HPL TFlop/s per accelerator
  double gflops_per_watt; ///< system-level HPL efficiency
};

GpuChoice pick_gpu(Rng& rng, int year) {
  if (year >= 2024) {
    static const GpuChoice c[] = {{"NVIDIA GH200 Superchip", 34, 60},
                                  {"NVIDIA H100", 26, 55},
                                  {"NVIDIA H200", 30, 58},
                                  {"AMD Instinct MI300A", 39, 50},
                                  {"AMD Instinct MI250X", 35, 42}};
    return c[rng.weighted_index(std::vector<double>{0.28, 0.38, 0.10,
                                                    0.12, 0.12})];
  }
  if (year >= 2022) {
    static const GpuChoice c[] = {{"NVIDIA H100", 26, 52},
                                  {"NVIDIA A100 SXM4 80 GB", 14.5, 26},
                                  {"AMD Instinct MI250X", 35, 40}};
    return c[rng.weighted_index(std::vector<double>{0.45, 0.35, 0.20})];
  }
  if (year >= 2020) {
    static const GpuChoice c[] = {{"NVIDIA A100", 14.0, 24},
                                  {"NVIDIA Tesla V100", 5.5, 12}};
    return c[rng.weighted_index(std::vector<double>{0.7, 0.3})];
  }
  static const GpuChoice c[] = {{"NVIDIA Tesla V100", 5.5, 11},
                                {"NVIDIA Tesla P100", 3.5, 7}};
  return c[rng.weighted_index(std::vector<double>{0.7, 0.3})];
}

struct CpuChoice {
  const char* model;
  int cores;
  double hpl_gf_per_core;
  double gflops_per_watt;  ///< CPU-only system efficiency
};

CpuChoice pick_cpu(Rng& rng, int year) {
  if (year >= 2023) {
    static const CpuChoice c[] = {
        {"AMD EPYC 9654 96C 2.4GHz", 96, 30, 9.0},
        {"Xeon Platinum 8480+ 56C 2GHz", 56, 32, 8.0},
        {"AMD EPYC 9554 64C 3.1GHz", 64, 33, 8.5}};
    return c[rng.weighted_index(std::vector<double>{0.4, 0.35, 0.25})];
  }
  if (year >= 2020) {
    static const CpuChoice c[] = {
        {"AMD EPYC 7763 64C 2.45GHz", 64, 24, 6.5},
        {"AMD EPYC 7742 64C 2.25GHz", 64, 22, 6.0},
        {"Xeon Platinum 8380 40C 2.3GHz", 40, 26, 5.5},
        {"Xeon Gold 6348 28C 2.6GHz", 28, 25, 5.0}};
    return c[rng.weighted_index(std::vector<double>{0.3, 0.25, 0.25, 0.2})];
  }
  if (year >= 2017) {
    static const CpuChoice c[] = {
        {"Xeon Platinum 8280 28C 2.7GHz", 28, 18, 5.2},
        {"Xeon Gold 6148 20C 2.4GHz", 20, 16, 4.8},
        {"AMD EPYC 7601 32C 2.2GHz", 32, 14, 4.6}};
    return c[rng.weighted_index(std::vector<double>{0.4, 0.4, 0.2})];
  }
  static const CpuChoice c[] = {
      {"Xeon E5-2690v3 12C 2.6GHz", 12, 12, 4.0},
      {"Xeon E5-2680v3 12C 2.5GHz", 12, 11, 3.8}};
  return c[rng.weighted_index(std::vector<double>{0.5, 0.5})];
}

const char* pick_exotic_cpu(Rng& rng) {
  static const char* kNames[] = {
      "Sunway SW26010-Pro 390C 2.25GHz",
      "ShenWei SW3232 32C 2.8GHz",
      "Custom Manycore DSP 512C 1.6GHz",
      "Vector Coprocessor VX-8 64C 2GHz",
  };
  return kNames[rng.uniform_int(0, std::size(kNames) - 1)];
}

// Geography tables: {country, region pool}.
struct GeoChoice {
  const char* country;
  std::vector<const char*> regions;  ///< may be empty
};

const std::vector<GeoChoice>& geo_table() {
  static const std::vector<GeoChoice> kGeo = {
      {"United States",
       {"California", "Tennessee", "Illinois", "New Mexico", "Washington",
        "Texas", "Iowa", "Virginia", "Ohio", "Colorado", "New York",
        "Massachusetts", "Florida", "Idaho", "Mississippi"}},
      {"China", {"Guangdong", "Wuxi"}},
      {"Germany", {"Bavaria"}},
      {"Japan", {"Kyushu", "Hokuriku"}},
      {"France", {}},
      {"United Kingdom", {}},
      {"South Korea", {}},
      {"Italy", {"Bologna"}},
      // Quebec (28 g) and Alberta (510 g) are omitted from the synthetic
      // pool: against Canada's 171 g average they would produce per-
      // system refinements of -84% / +198%, past the +/-77.5% extreme
      // the paper reports for ACI refinement.
      {"Canada", {"Ontario"}},
      {"Netherlands", {}},
      {"Spain", {}},
      {"Brazil", {}},
      {"Australia", {"Western Australia"}},
      {"Saudi Arabia", {}},
      {"Sweden", {}},
      {"Poland", {}},
      {"India", {}},
      {"Norway", {}},
      {"Finland", {"Kajaani"}},
      {"Ireland", {}},
      {"Singapore", {}},
      {"Taiwan", {}},
      {"Switzerland", {"Lugano"}},
      {"Russia", {}},
      {"Czech Republic", {}},
      {"Austria", {}},
      {"Luxembourg", {}},
      {"Morocco", {}},
      {"Thailand", {}},
      {"United Arab Emirates", {}},
  };
  return kGeo;
}

GeoChoice pick_geo(Rng& rng, AccessCategory cat) {
  const auto& geo = geo_table();
  std::vector<double> w(geo.size(), 0.0);
  if (cat == AccessCategory::kCpuExoticDark ||
      cat == AccessCategory::kCpuExoticRevealed) {
    // Exotic devices cluster in Chinese national centres.
    for (size_t i = 0; i < geo.size(); ++i) {
      if (std::string_view(geo[i].country) == "China") w[i] = 0.8;
      else if (std::string_view(geo[i].country) == "Japan") w[i] = 0.2;
    }
  } else if (cat == AccessCategory::kAccPublicCountsDark ||
             cat == AccessCategory::kAccEnergyPublic ||
             cat == AccessCategory::kAccDark) {
    // Cloud/industry AI clusters: US-heavy.
    static const std::map<std::string_view, double> kW = {
        {"United States", 0.45}, {"Japan", 0.10},  {"China", 0.08},
        {"South Korea", 0.07},   {"United Kingdom", 0.05},
        {"Germany", 0.05},       {"France", 0.04}, {"Saudi Arabia", 0.03},
        {"Singapore", 0.03},     {"Taiwan", 0.03}, {"Australia", 0.02},
        {"Netherlands", 0.02},   {"Sweden", 0.02}, {"India", 0.01},
    };
    for (size_t i = 0; i < geo.size(); ++i) {
      auto it = kW.find(geo[i].country);
      w[i] = it == kW.end() ? 0.002 : it->second;
    }
  } else {
    static const std::map<std::string_view, double> kW = {
        {"United States", 0.26}, {"China", 0.14},  {"Germany", 0.09},
        {"Japan", 0.09},         {"France", 0.06}, {"United Kingdom", 0.04},
        {"Italy", 0.04},         {"South Korea", 0.04}, {"Canada", 0.03},
        {"Netherlands", 0.03},   {"Spain", 0.02},  {"Brazil", 0.02},
        {"Australia", 0.02},     {"Saudi Arabia", 0.02}, {"Sweden", 0.02},
        {"Poland", 0.015},       {"India", 0.015}, {"Norway", 0.01},
        {"Finland", 0.01},       {"Ireland", 0.01},
    };
    for (size_t i = 0; i < geo.size(); ++i) {
      auto it = kW.find(geo[i].country);
      w[i] = it == kW.end() ? 0.005 : it->second;
    }
  }
  return geo[rng.weighted_index(w)];
}

int pick_year(Rng& rng, int rank, bool accelerated) {
  // Newer systems dominate the top of the list; a multi-petaflop rank
  // can only be held by hardware of a compatible era (an old V100 or
  // CPU-only machine physically cannot sit at rank 30 of this list).
  if (rank <= 100) {
    if (!accelerated && rank <= 80) return 2023 + (rng.bernoulli(0.5) ? 1 : 0);
    static const int y[] = {2022, 2023, 2024};
    return y[rng.weighted_index(std::vector<double>{0.25, 0.35, 0.4})];
  }
  if (rank <= 200) {
    static const int y[] = {2019, 2020, 2021, 2022, 2023, 2024};
    return y[rng.weighted_index(
        std::vector<double>{0.08, 0.12, 0.15, 0.2, 0.25, 0.2})];
  }
  static const int y[] = {2016, 2017, 2018, 2019, 2020, 2021, 2022, 2023};
  return y[rng.weighted_index(
      std::vector<double>{0.05, 0.08, 0.12, 0.15, 0.2, 0.15, 0.15, 0.1})];
}

const char* pick_vendor(Rng& rng) {
  static const char* kVendors[] = {"HPE",    "Lenovo", "EVIDEN", "Dell EMC",
                                   "Nvidia", "Inspur", "Sugon",  "Fujitsu",
                                   "NEC",    "IBM",    "Penguin", "MEGWARE"};
  static const std::vector<double> kW = {0.22, 0.2, 0.1, 0.12, 0.07, 0.06,
                                         0.06, 0.05, 0.04, 0.03, 0.03, 0.02};
  return kVendors[rng.weighted_index(kW)];
}

// ---------------------------------------------------------------------
// Category placement over non-named ranks.
// ---------------------------------------------------------------------

double category_rank_weight(AccessCategory cat, int rank) {
  const double r = rank;
  switch (cat) {
    case AccessCategory::kAccDark:
      // Anonymous industry systems cluster surprisingly high — the
      // paper's Fig. 5 gap at ranks 26-100.
      return (r >= 26 && r <= 150) ? 8.0 : (r <= 350 ? 0.4 : 0.1);
    case AccessCategory::kAccPublicCountsDark:
      return (r <= 150) ? 8.0 : (r <= 350 ? 0.6 : 0.15);
    case AccessCategory::kAccEnergyPublic:
      return (r >= 26 && r <= 120) ? 1.0 : 0.1;
    case AccessCategory::kAccPowerOnly:
      return (r <= 150) ? 4.0 : 0.8;
    case AccessCategory::kAccOpen:
    case AccessCategory::kAccOpenVague:
      return (r <= 150) ? 2.0 : (r <= 320 ? 0.8 : 0.25);
    case AccessCategory::kAccPublicCountsPower:
      return r <= 60 ? 1.0 : 0.2;
    case AccessCategory::kCpuExoticRevealed:
    case AccessCategory::kCpuExoticDark:
      return (r >= 100) ? 1.0 : 0.02;
    case AccessCategory::kCpuOpen:
      // The ranks-151-500 population; nearly absent from the top where
      // multi-petaflop performance requires accelerators.
      return r <= 50 ? 0.01 : (r <= 150 ? 0.15 : 1.0);
  }
  return 1.0;
}

// ---------------------------------------------------------------------
// Synthesis of one synthetic record.
// ---------------------------------------------------------------------

SystemRecord synthesize(Rng& rng, int rank, AccessCategory cat,
                        const GeneratorConfig& cfg) {
  SystemRecord r;
  r.rank = rank;
  r.year = pick_year(rng, rank, category_is_accelerated(cat));
  const auto geo = pick_geo(rng, cat);
  r.country = geo.country;
  if (!geo.regions.empty() && rng.bernoulli(0.6)) {
    r.truth.region =
        geo.regions[rng.uniform_int(0, geo.regions.size() - 1)];
  }
  r.vendor = pick_vendor(rng);

  const bool accelerated = category_is_accelerated(cat);
  const bool industry = cat == AccessCategory::kAccPublicCountsDark ||
                        cat == AccessCategory::kAccEnergyPublic ||
                        cat == AccessCategory::kAccDark;
  r.segment = industry
                  ? (rng.bernoulli(0.7) ? "Industry" : "Government")
                  : (rng.bernoulli(0.5) ? "Research" : "Academic");
  if (industry && rng.bernoulli(0.45)) {
    r.name = "";  // anonymous listing, common in the real list's tail
    r.site = r.segment;
  } else {
    r.name = (accelerated ? "SynthAccel-" : "SynthHPC-") +
             std::to_string(rank);
    r.site = r.segment + " site " + std::to_string(rank);
  }

  r.rmax_tflops = rmax_curve(rank) * rng.uniform(0.97, 1.03);

  if (accelerated) {
    const GpuChoice gpu = pick_gpu(rng, r.year);
    const CpuChoice host = pick_cpu(rng, std::max(r.year, 2020));
    const bool vague = cat == AccessCategory::kAccOpenVague;
    r.processor = host.model;
    r.accelerator = vague ? "NVIDIA GPU" : gpu.model;
    r.accelerator_public = gpu.model;
    r.rpeak_tflops = r.rmax_tflops / rng.uniform(0.60, 0.75);

    const long long gpn = rng.bernoulli(0.6) ? 4 : 8;
    long long gpus = std::max<long long>(
        8, std::llround(r.rmax_tflops / gpu.hpl_tf_per_gpu));
    gpus = (gpus / gpn + 1) * gpn;  // whole nodes
    r.truth.gpus = gpus;
    r.truth.nodes = gpus / gpn;
    const long long sockets = rng.bernoulli(0.55) ? 1 : 2;
    r.truth.cpus = r.truth.nodes * sockets;
    r.total_cores = r.truth.cpus * host.cores + r.truth.gpus * 104;

    const double gfw = gpu.gflops_per_watt * rng.log_normal(0.0, 0.08);
    r.truth.power_kw = cfg.power_scale * r.rmax_tflops / gfw * 1000.0 /
                       1000.0;  // TF / (GF/W) = kW
  } else {
    const bool exotic = cat == AccessCategory::kCpuExoticDark ||
                        cat == AccessCategory::kCpuExoticRevealed;
    if (exotic) {
      r.processor = pick_exotic_cpu(rng);
      r.processor_public = rng.bernoulli(0.5)
                               ? "Hygon Dhyana 7185 32C 2GHz"
                               : "Phytium FT-2000+ 64C 2.2GHz";
      r.rpeak_tflops = r.rmax_tflops / rng.uniform(0.55, 0.7);
      const double gf_per_core = rng.uniform(8.0, 14.0);
      r.total_cores =
          std::llround(r.rmax_tflops * 1000.0 / gf_per_core);
      const long long cores_per_pkg = 256;
      r.truth.cpus =
          std::max<long long>(1, r.total_cores / cores_per_pkg);
      r.truth.nodes = r.truth.cpus;
      const double gfw = rng.uniform(4.0, 7.0);
      r.truth.power_kw = cfg.power_scale * r.rmax_tflops / gfw;
    } else {
      const CpuChoice cpu = pick_cpu(rng, r.year);
      r.processor = cpu.model;
      r.rpeak_tflops = r.rmax_tflops / rng.uniform(0.65, 0.8);
      r.total_cores = std::llround(r.rmax_tflops * 1000.0 /
                                   (cpu.hpl_gf_per_core *
                                    rng.uniform(0.9, 1.1)));
      r.truth.cpus =
          std::max<long long>(2, r.total_cores / cpu.cores);
      r.truth.nodes = std::max<long long>(1, r.truth.cpus / 2);
      const double gfw = cpu.gflops_per_watt * rng.log_normal(0.0, 0.12);
      r.truth.power_kw = cfg.power_scale * r.rmax_tflops / gfw;
    }
  }

  // Memory, flash, utilization ground truth.
  double mem_per_node = r.year >= 2023 ? 768 : (r.year >= 2019 ? 512 : 256);
  mem_per_node *= rng.bernoulli(0.3) ? 2.0 : 1.0;
  r.truth.memory_gb = mem_per_node * static_cast<double>(r.truth.nodes);
  r.truth.memory_type =
      r.year >= 2023 ? "DDR5" : (r.year >= 2016 ? "DDR4" : "DDR3");
  r.truth.ssd_tb = cfg.storage_scale * rng.uniform(6.0, 20.0) *
                   static_cast<double>(r.truth.nodes);
  r.truth.utilization = rng.uniform(0.62, 0.92);
  r.truth.annual_energy_kwh = 0.0;
  return r;
}

// ---------------------------------------------------------------------
// Disclosure assignment (quota-exact).
// ---------------------------------------------------------------------

// Deterministically pick k indices from `pool` with weights; removes
// picked entries from the pool.
std::vector<size_t> pick_k(Rng& rng, std::vector<size_t>& pool, size_t k,
                           const std::vector<double>& weights_by_index) {
  EASYC_REQUIRE(k <= pool.size(), "quota exceeds candidate pool");
  std::vector<size_t> picked;
  picked.reserve(k);
  for (size_t n = 0; n < k; ++n) {
    std::vector<double> w;
    w.reserve(pool.size());
    for (size_t idx : pool) w.push_back(weights_by_index[idx]);
    const size_t j = rng.weighted_index(w);
    picked.push_back(pool[j]);
    pool.erase(pool.begin() + static_cast<long>(j));
  }
  return picked;
}

void assign_base_disclosure(Rng& rng, SystemRecord& r, AccessCategory cat) {
  Disclosure& t = r.top500;
  Disclosure& p = r.with_public;
  t = Disclosure{};
  p = Disclosure{};

  switch (cat) {
    case AccessCategory::kAccOpen:
    case AccessCategory::kAccOpenVague:
      t.power = rng.bernoulli(0.7);
      t.nodes = t.gpus = true;
      break;
    case AccessCategory::kAccPublicCountsPower:
      t.power = true;
      break;
    case AccessCategory::kAccPublicCountsDark:
    case AccessCategory::kAccEnergyPublic:
    case AccessCategory::kAccDark:
      break;  // dark on Top500.org
    case AccessCategory::kAccPowerOnly:
      t.power = true;
      break;
    case AccessCategory::kCpuOpen:
      t.power = rng.bernoulli(0.65);
      t.nodes = t.gpus = true;  // gpus = "known to be none"
      break;
    case AccessCategory::kCpuExoticRevealed:
    case AccessCategory::kCpuExoticDark:
      t.power = rng.bernoulli(0.8);
      break;
  }

  // Public mask starts as a superset of the Top500 mask.
  p = t;
  p.region = !r.truth.region.empty();
  switch (cat) {
    case AccessCategory::kAccOpen:
      p.accelerator_identity = true;
      break;
    case AccessCategory::kAccOpenVague:
      p.accelerator_identity = rng.bernoulli(0.6);
      break;
    case AccessCategory::kAccPublicCountsPower:
    case AccessCategory::kAccPublicCountsDark:
      p.nodes = p.gpus = true;
      p.accelerator_identity = rng.bernoulli(0.8);
      break;
    case AccessCategory::kAccPowerOnly:
      break;  // node-count reveal handled by sub-quota
    case AccessCategory::kAccEnergyPublic:
      p.annual_energy = true;
      break;
    case AccessCategory::kAccDark:
      p.region = false;  // nothing public at all
      break;
    case AccessCategory::kCpuOpen:
      break;
    case AccessCategory::kCpuExoticRevealed:
      p.nodes = p.gpus = true;
      p.processor_identity = true;
      break;
    case AccessCategory::kCpuExoticDark:
      break;  // gpus bookkeeping reveal handled by sub-quota
  }
}

void assign_item_flags(Rng& rng, SystemRecord& r) {
  auto& it = r.item_reported;
  it.fill(true);
  // Indices follow top500_data_items() order.
  it[0] = !r.name.empty() || rng.bernoulli(0.5);   // Site
  it[1] = rng.bernoulli(0.99);                     // Manufacturer
  it[4] = rng.bernoulli(0.97);                     // Segment
  it[5] = rng.bernoulli(0.45);                     // Application Area
  it[7] = r.is_accelerated() ? r.top500.gpus : true;  // Accelerator Cores
  it[10] = rng.bernoulli(0.88);                    // Nmax
  it[11] = rng.bernoulli(0.45);                    // Nhalf
  it[12] = r.top500.power;                         // HPL Power
  it[13] = rng.bernoulli(0.15);                    // Power Source
  it[14] = r.top500.memory;                        // Memory
  it[16] = rng.bernoulli(0.96);                    // Interconnect
  it[18] = rng.bernoulli(0.4);                     // Compiler
}

}  // namespace

GeneratedList generate_list(const GeneratorConfig& cfg) {
  EASYC_REQUIRE(cfg.list_size == 500,
                "the access-category quotas are defined for a 500-entry "
                "list; resize quotas before changing list_size");
  Rng rng(cfg.seed);

  // --- 1. place named systems ---
  std::vector<SystemRecord> records(500);
  std::vector<AccessCategory> cats(500, AccessCategory::kCpuOpen);
  std::vector<bool> taken(501, false);
  std::map<AccessCategory, int> remaining;
  for (auto c : {AccessCategory::kAccOpen, AccessCategory::kAccOpenVague,
                 AccessCategory::kAccPublicCountsPower,
                 AccessCategory::kAccPublicCountsDark,
                 AccessCategory::kAccPowerOnly,
                 AccessCategory::kAccEnergyPublic, AccessCategory::kAccDark,
                 AccessCategory::kCpuOpen,
                 AccessCategory::kCpuExoticRevealed,
                 AccessCategory::kCpuExoticDark}) {
    remaining[c] = category_quota(c);
  }

  for (const auto& named : named_systems()) {
    const int rank = named.record.rank;
    EASYC_REQUIRE(rank >= 1 && rank <= 500, "named rank out of range");
    EASYC_REQUIRE(!taken[rank], "duplicate named rank");
    taken[rank] = true;
    records[rank - 1] = named.record;
    cats[rank - 1] = named.category;
    remaining[named.category] -= 1;
    EASYC_REQUIRE(remaining[named.category] >= 0,
                  "named systems exceed category quota");
  }

  // --- 2. distribute categories over open ranks ---
  std::vector<size_t> open;  // 0-based indices of unoccupied ranks
  for (int i = 0; i < 500; ++i) {
    if (!taken[i + 1]) open.push_back(static_cast<size_t>(i));
  }
  // Weight table per index for each category (computed on demand).
  auto weights_for = [&](AccessCategory c) {
    std::vector<double> w(500, 0.0);
    for (size_t idx : open) {
      w[idx] = category_rank_weight(c, static_cast<int>(idx) + 1);
    }
    return w;
  };
  // Assign scarce categories first so their rank preferences are
  // honored; kCpuOpen absorbs the remainder.
  for (auto c : {AccessCategory::kAccEnergyPublic, AccessCategory::kAccDark,
                 AccessCategory::kAccPublicCountsPower,
                 AccessCategory::kAccPublicCountsDark,
                 AccessCategory::kAccPowerOnly, AccessCategory::kAccOpen,
                 AccessCategory::kAccOpenVague,
                 AccessCategory::kCpuExoticRevealed,
                 AccessCategory::kCpuExoticDark}) {
    const auto w = weights_for(c);
    const auto chosen = pick_k(rng, open, remaining[c], w);
    for (size_t idx : chosen) cats[idx] = c;
    remaining[c] = 0;
  }
  for (size_t idx : open) cats[idx] = AccessCategory::kCpuOpen;

  // --- 3. synthesize the non-named records ---
  for (int i = 0; i < 500; ++i) {
    if (!taken[i + 1]) {
      records[i] = synthesize(rng, i + 1, cats[i], cfg);
    }
  }

  // Enforce the list ordering invariant (Rmax non-increasing). Clamp to
  // exactly the previous value (ties are legal on the real list); a
  // multiplicative clamp would decay below the natural curve and then
  // drag every following rank down with it.
  for (int i = 1; i < 500; ++i) {
    if (records[i].rmax_tflops > records[i - 1].rmax_tflops) {
      records[i].rmax_tflops = records[i - 1].rmax_tflops;
      records[i].rpeak_tflops =
          std::max(records[i].rpeak_tflops, records[i].rmax_tflops);
    }
  }

  // --- 4. disclosure masks ---
  for (int i = 0; i < 500; ++i) {
    assign_base_disclosure(rng, records[i], cats[i]);
  }
  // Named flagship systems all publish HPL power on the list (their
  // Table-II operational values exist in the Top500.org column), except
  // those whose category is defined by *not* reporting power.
  for (const auto& named : named_systems()) {
    const auto c = named.category;
    if (c == AccessCategory::kAccPublicCountsDark ||
        c == AccessCategory::kAccEnergyPublic ||
        c == AccessCategory::kAccDark) {
      continue;
    }
    records[named.record.rank - 1].top500.power = true;
    records[named.record.rank - 1].with_public.power = true;
  }

  // Sub-quota: 10 kAccPowerOnly systems get node counts (but not GPU
  // counts) from public sources.
  {
    std::vector<size_t> pool;
    std::vector<double> w(500, 1.0);
    for (size_t i = 0; i < 500; ++i) {
      if (cats[i] == AccessCategory::kAccPowerOnly) pool.push_back(i);
    }
    for (size_t idx : pick_k(rng, pool, 10, w)) {
      records[idx].with_public.nodes = true;
    }
  }
  // Sub-quota: 10 kCpuExoticDark systems are publicly confirmed
  // CPU-only ("# GPUs" becomes known) without any node-count reveal.
  {
    std::vector<size_t> pool;
    std::vector<double> w(500, 1.0);
    for (size_t i = 0; i < 500; ++i) {
      if (cats[i] == AccessCategory::kCpuExoticDark) pool.push_back(i);
    }
    for (size_t idx : pick_k(rng, pool, 10, w)) {
      records[idx].with_public.gpus = true;
    }
  }

  // Quota: memory capacity on Top500.org for exactly 1 system (Table I:
  // 499 incomplete), and via public sources for 208 (292 incomplete).
  {
    std::vector<size_t> pool;
    std::vector<double> w(500, 0.0);
    for (size_t i = 0; i < 500; ++i) {
      if (cats[i] == AccessCategory::kCpuOpen) pool.push_back(i);
      w[i] = 1.0;
    }
    const auto one = pick_k(rng, pool, 1, w);
    records[one[0]].top500.memory = true;
    records[one[0]].with_public.memory = true;
    // Public sources document its memory type too, keeping the Table I
    // "Memory Type" public count identical to "Memory Capacity" (292).
    records[one[0]].with_public.memory_type = true;
  }
  {
    // Public memory reveals favour open research systems; the famous
    // top of the list is always documented (vendor press releases,
    // site pages), so ranks <= 30 are included deterministically.
    std::vector<size_t> pool;
    std::vector<double> w(500, 0.0);
    int already = 0;
    for (size_t i = 0; i < 500; ++i) {
      if (records[i].with_public.memory) {
        ++already;
        continue;
      }
      const bool openish = cats[i] != AccessCategory::kAccDark &&
                           cats[i] != AccessCategory::kAccEnergyPublic &&
                           cats[i] != AccessCategory::kCpuExoticDark;
      if (!openish) continue;
      if (records[i].rank <= 30) {
        records[i].with_public.memory = true;
        records[i].with_public.memory_type = true;
        ++already;
        continue;
      }
      pool.push_back(i);
      w[i] = (records[i].segment == "Research" ||
              records[i].segment == "Academic")
                 ? 2.0
                 : 0.5;
    }
    for (size_t idx : pick_k(rng, pool, 208 - already, w)) {
      records[idx].with_public.memory = true;
      records[idx].with_public.memory_type = true;
    }
  }
  // Memory *type* is public for the 208-memory set except the single
  // Top500.org-memory system (Table I: 292 incomplete for both).
  // (Handled above: the Top500.org-memory system keeps memory_type
  // false unless it was also picked into the public set.)

  // Quota: SSD capacity public for 50 systems (450 incomplete). The
  // leadership systems' parallel filesystems are well documented
  // (Frontier's Orion, El Capitan's Rabbit), so ranks <= 30 among the
  // memory-documented set are included deterministically.
  {
    std::vector<size_t> pool;
    std::vector<double> w(500, 1.0);
    int already = 0;
    for (size_t i = 0; i < 500; ++i) {
      if (!records[i].with_public.memory) continue;  // subset of documented
      if (records[i].rank <= 30) {
        records[i].with_public.ssd = true;
        ++already;
        continue;
      }
      pool.push_back(i);
    }
    for (size_t idx : pick_k(rng, pool, 50 - already, w)) {
      records[idx].with_public.ssd = true;
    }
  }
  // Quota: utilization public for 3 systems (497 incomplete).
  {
    std::vector<size_t> pool;
    std::vector<double> w(500, 1.0);
    for (size_t i = 0; i < 500; ++i) {
      if (cats[i] == AccessCategory::kCpuOpen &&
          records[i].segment == "Academic") {
        pool.push_back(i);
      }
    }
    for (size_t idx : pick_k(rng, pool, 3, w)) {
      records[idx].with_public.utilization = true;
    }
  }

  // --- 5. Fig.-2 item bookkeeping ---
  for (auto& r : records) assign_item_flags(rng, r);

  return {std::move(records), std::move(cats)};
}

std::vector<SystemRecord> generate_records(const GeneratorConfig& cfg) {
  return generate_list(cfg).records;
}

SystemRecord synthesize_entrant(Rng& rng, int rank, AccessCategory category,
                                int year_offset, double perf_scale,
                                const GeneratorConfig& cfg) {
  SystemRecord r = synthesize(rng, rank, category, cfg);
  r.year += year_offset;
  r.rmax_tflops *= perf_scale;
  r.rpeak_tflops *= perf_scale;
  // Performance scaling carries through to size and power: the same
  // efficiency point delivers more FLOPS with proportionally more
  // hardware.
  r.truth.power_kw *= perf_scale;
  r.total_cores = static_cast<long long>(r.total_cores * perf_scale);
  const long long node_scale_base = r.truth.nodes;
  r.truth.nodes = std::max<long long>(
      1, static_cast<long long>(node_scale_base * perf_scale));
  const double node_ratio =
      static_cast<double>(r.truth.nodes) / node_scale_base;
  r.truth.cpus = std::max<long long>(
      1, static_cast<long long>(r.truth.cpus * node_ratio));
  if (r.truth.gpus > 0) {
    r.truth.gpus = std::max<long long>(
        1, static_cast<long long>(r.truth.gpus * node_ratio));
  }
  r.truth.memory_gb *= node_ratio;
  r.truth.ssd_tb *= node_ratio;
  assign_base_disclosure(rng, r, category);
  assign_item_flags(rng, r);
  return r;
}

}  // namespace easyc::top500
