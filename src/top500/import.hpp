// Importer for the official Top500.org list export format.
//
// The real assessment workflow starts from the XLSX/CSV export that
// top500.org offers, whose columns look like
//
//   Rank, Name, Computer, Site, Manufacturer, Country, Year, Segment,
//   Total Cores, Accelerator/Co-Processor Cores, Rmax [TFlop/s],
//   Rpeak [TFlop/s], Power (kW), Processor, Cores per Socket,
//   Accelerator/Co-Processor, Interconnect, ...
//
// This module maps such a file onto `SystemRecord`s: structural fields
// are copied, the Top500.org disclosure mask is set from which cells are
// non-empty, and derivable quantities (CPU package counts from cores per
// socket) are filled the way EasyC's Table I assumes. Ground-truth
// fields that the export cannot know stay zero and undisclosed — the
// resulting records run through the Baseline scenario exactly like the
// synthetic ones.
//
// Header matching is forgiving: case-insensitive, ignores bracketed
// units ("Rmax [TFlop/s]" == "rmax"), and accepts the common aliases
// across list editions.
#pragma once

#include <string>
#include <vector>

#include "top500/record.hpp"
#include "util/csv.hpp"

namespace easyc::top500 {

struct ImportStats {
  int systems = 0;
  int with_power = 0;
  int with_accelerator = 0;
  int with_cores_per_socket = 0;
  std::vector<std::string> warnings;  ///< per-row recoverable problems
};

struct ImportResult {
  std::vector<SystemRecord> records;
  ImportStats stats;
};

/// Import from a parsed CSV table. Throws ParseError when mandatory
/// columns (rank, country, total cores, rmax, processor) are absent;
/// malformed optional cells produce warnings, not failures.
ImportResult import_top500_csv(const util::CsvTable& table);

/// Convenience: read + import a file.
ImportResult import_top500_file(const std::string& path);

/// Locate a column by fuzzy name ("Rmax [TFlop/s]" matches "rmax");
/// returns npos-equivalent nullopt when absent. Exposed for tests.
std::optional<size_t> find_column(const util::CsvTable& table,
                                  std::string_view logical_name);

}  // namespace easyc::top500
