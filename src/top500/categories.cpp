#include "top500/categories.hpp"

#include "util/error.hpp"

namespace easyc::top500 {

std::string category_name(AccessCategory c) {
  switch (c) {
    case AccessCategory::kAccOpen: return "acc-open";
    case AccessCategory::kAccOpenVague: return "acc-open-vague";
    case AccessCategory::kAccPublicCountsPower: return "acc-public-counts+power";
    case AccessCategory::kAccPublicCountsDark: return "acc-public-counts-dark";
    case AccessCategory::kAccPowerOnly: return "acc-power-only";
    case AccessCategory::kAccEnergyPublic: return "acc-energy-public";
    case AccessCategory::kAccDark: return "acc-dark";
    case AccessCategory::kCpuOpen: return "cpu-open";
    case AccessCategory::kCpuExoticRevealed: return "cpu-exotic-revealed";
    case AccessCategory::kCpuExoticDark: return "cpu-exotic-dark";
  }
  return "unknown";
}

int category_quota(AccessCategory c) {
  switch (c) {
    case AccessCategory::kAccOpen: return 23;
    case AccessCategory::kAccOpenVague: return 8;
    case AccessCategory::kAccPublicCountsPower: return 12;
    case AccessCategory::kAccPublicCountsDark: return 91;
    case AccessCategory::kAccPowerOnly: return 58;
    case AccessCategory::kAccEnergyPublic: return 8;
    case AccessCategory::kAccDark: return 10;
    case AccessCategory::kCpuOpen: return 260;
    case AccessCategory::kCpuExoticRevealed: return 10;
    case AccessCategory::kCpuExoticDark: return 20;
  }
  EASYC_REQUIRE(false, "unreachable category");
  return 0;
}

bool category_is_accelerated(AccessCategory c) {
  switch (c) {
    case AccessCategory::kAccOpen:
    case AccessCategory::kAccOpenVague:
    case AccessCategory::kAccPublicCountsPower:
    case AccessCategory::kAccPublicCountsDark:
    case AccessCategory::kAccPowerOnly:
    case AccessCategory::kAccEnergyPublic:
    case AccessCategory::kAccDark:
      return true;
    case AccessCategory::kCpuOpen:
    case AccessCategory::kCpuExoticRevealed:
    case AccessCategory::kCpuExoticDark:
      return false;
  }
  return false;
}

}  // namespace easyc::top500
