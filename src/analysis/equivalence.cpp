#include "analysis/equivalence.hpp"

#include "util/strings.hpp"
#include "util/units.hpp"

namespace easyc::analysis {

Equivalence equivalences(double mt_co2e) {
  Equivalence e;
  e.vehicles = util::mtco2e_to_vehicle_years(mt_co2e);
  e.vehicle_miles = util::mtco2e_to_vehicle_miles(mt_co2e);
  e.homes = util::mtco2e_to_home_years(mt_co2e);
  return e;
}

std::string describe_equivalence(double mt_co2e) {
  const Equivalence e = equivalences(mt_co2e);
  const std::string miles =
      e.vehicle_miles >= 1.0e9
          ? util::format_double(e.vehicle_miles / 1.0e9, 1) +
                " billion vehicle miles"
          : util::format_double(e.vehicle_miles / 1.0e6, 1) +
                " million vehicle miles";
  return util::with_commas(static_cast<long long>(e.vehicles)) +
         " gasoline-powered vehicles for one year (" + miles +
         "), or the electricity of " +
         util::with_commas(static_cast<long long>(e.homes)) + " homes";
}

}  // namespace easyc::analysis
