// Sensitivity of the assessment to the added public information (paper
// Fig. 9 and the accompanying text): per-system deltas between the
// Baseline and Baseline+PublicInfo scenarios, and the aggregate change.
#pragma once

#include <vector>

#include "analysis/pipeline.hpp"

namespace easyc::analysis {

struct SystemDelta {
  int rank = 0;
  double delta_mt = 0.0;  ///< enhanced - baseline (MT CO2e)
  double pct = 0.0;       ///< percent change vs baseline
};

struct SensitivityReport {
  /// Per-rank deltas over systems covered in *both* scenarios (the
  /// paper's Fig. 9 population; newly covered systems are excluded
  /// there and reported via the aggregate instead).
  std::vector<SystemDelta> operational;
  std::vector<SystemDelta> embodied;

  /// Largest relative per-system change (paper: ACI refinement moves
  /// operational carbon by as much as +/-77.5%).
  double op_max_abs_pct = 0.0;
  double emb_max_abs_pct = 0.0;

  /// Aggregate totals change, including newly covered systems (paper:
  /// +2.85% operational (+38k MT), +670.48k MT / ~78% embodied).
  double op_total_baseline_mt = 0.0;
  double op_total_enhanced_mt = 0.0;
  double emb_total_baseline_mt = 0.0;
  double emb_total_enhanced_mt = 0.0;
  double op_total_pct = 0.0;
  double emb_total_pct = 0.0;
};

/// Compare any two scenarios assessed over the same record list (the
/// generalized Fig.-9 machinery; `base` plays Baseline, `enh` plays
/// Baseline+PublicInfo).
SensitivityReport sensitivity(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioResults& base, const ScenarioResults& enh);

/// The paper's Fig. 9: baseline vs enhanced.
SensitivityReport sensitivity(const PipelineResult& result);

}  // namespace easyc::analysis
