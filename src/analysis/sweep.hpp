// Scenario-grid sweep engine: expand axis specifications into thousands
// of derived scenarios and drive them through the shared
// AssessmentEngine in batched cell blocks.
//
// The paper probes how much EasyC's priors matter with exactly two
// hand-picked scenarios (Fig. 9, the +/-77.5% ACI swing); the ROADMAP's
// north star asks for "as many scenarios as you can imagine". Since
// per-(record, scenario) assessment became memoized, persistent, and
// sharded, the marginal cost of a derived scenario is near zero — this
// module supplies the generator. A SweepSpec declares value lists or
// linspace ranges over the model's what-if axes (grid ACI, PUE, fab
// electricity intensity, utilization prior, amortization lifetime) plus
// optional seeded Monte-Carlo draws from model::PriorRanges; the
// SweepEngine expands the cartesian grid into derived ScenarioSpecs,
// runs them in batched blocks over one AssessmentEngine (so the LRU
// memo cache and thread pool amortize across the whole grid), and
// reduces the per-cell results into a SweepReport: per-axis tornado
// swings (reusing analysis::sensitivity's two-scenario compare as the
// inner kernel), total-footprint percentiles across every cell, and
// the engine CacheStats that make the memoization win measurable.
//
// Scale: expansion is lazy (SweepExpansion derives cell i on demand)
// and the reduction is single-pass (SweepReduction, streaming
// RunningStat/P² statistics above kStreamingStatsThreshold cells), so
// with cell retention off a million-cell sweep runs at the memory
// footprint of one batch — cells stream to sinks (CSV, columnar
// binary, or a fan-out tee) instead of accumulating in the report.
//
// Determinism: each cell is a pure function of (record content, derived
// spec), batches are ordered engine calls, and every reduction iterates
// in registration order, so the rendered report is byte-identical for
// any thread count, any batch size, and any cache state (cold, warm,
// or restored from a snapshot file). The lifetime axis is deliberately
// cheap: service_years is excluded from ScenarioSpec::fingerprint(),
// so lifetime-derived cells alias their siblings' assessments and cost
// only cache lookups.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/assessment_engine.hpp"
#include "analysis/scenario.hpp"
#include "easyc/uncertainty.hpp"
#include "util/stats.hpp"

namespace easyc::analysis {

/// The sweepable what-if axes — exactly the ScenarioSpec override knobs
/// (lifetime reaches annualized totals only; the rest reach the model).
enum class SweepAxis {
  kAci,          ///< aci_override_g_kwh (gCO2e/kWh, fleet-wide)
  kPue,          ///< pue_override
  kFab,          ///< fab_aci_kg_kwh (kgCO2e/kWh)
  kUtilization,  ///< default_utilization prior, (0,1]
  kLifetime,     ///< service_years for amortization
};

inline constexpr size_t kNumSweepAxes =
    static_cast<size_t>(SweepAxis::kLifetime) + 1;

/// Canonical grammar name ("aci", "pue", "fab", "util", "life").
std::string_view axis_name(SweepAxis axis);

/// Parse a grammar name; accepts the canonical short form plus the
/// spelled-out aliases "utilization" and "lifetime". nullopt = unknown.
std::optional<SweepAxis> axis_from_name(std::string_view name);

/// Set the one override an axis controls, leaving the rest of the spec
/// (and its name) untouched.
ScenarioSpec apply_axis(ScenarioSpec spec, SweepAxis axis, double value);

/// One axis of the grid: the values it takes, in declaration order.
struct AxisValues {
  SweepAxis axis = SweepAxis::kAci;
  std::vector<double> values;
};

/// Optional seeded Monte-Carlo arm: `draws` derived scenarios sampled
/// from model::PriorRanges via model::perturb_options (the same prior
/// model the uncertainty module uses). Only the spec-expressible subset
/// of a draw reaches a derived scenario: the utilization and fab
/// intensity perturbations always, the ACI scale only when the base
/// scenario pins an absolute aci_override_g_kwh to scale.
struct MonteCarloSpec {
  size_t draws = 0;
  uint64_t seed = 0;
  model::PriorRanges ranges;
};

/// A declarative sweep: a base scenario, the axes to vary, and an
/// optional Monte-Carlo arm. Expansion derives (in this order) the base
/// cell, two single-axis tornado endpoints per multi-valued axis, the
/// full cartesian grid, and the Monte-Carlo draws.
struct SweepSpec {
  ScenarioSpec base;             ///< derived cells start from this spec
  std::vector<AxisValues> axes;  ///< each axis at most once
  std::optional<MonteCarloSpec> monte_carlo;

  /// Parse the axis-spec grammar:
  ///
  ///   spec  := part (';' part)*
  ///   part  := axis '=' values | 'mc=' draws '@' seed
  ///   axis  := 'aci' | 'pue' | 'fab' | 'util' | 'life'
  ///   values:= v (',' v)*            -- explicit list
  ///          | lo ':' hi ':' n       -- n-point linspace, n >= 2
  ///
  /// e.g. "aci=25,229,600;pue=1.1:1.6:6;life=4,6,8;mc=200@42".
  /// Throws util::ParseError on unknown axes, malformed values,
  /// duplicate axes, or duplicate values within one axis.
  static SweepSpec parse(std::string_view text,
                         ScenarioSpec base = scenarios::enhanced());

  size_t grid_cells() const;   ///< product of axis sizes (0 without axes)
  size_t total_cells() const;  ///< base + endpoints + grid + Monte-Carlo
};

/// Lazy view of a sweep's expansion: derives the i-th ScenarioSpec on
/// demand instead of materializing all of them, so a million-cell grid
/// costs index arithmetic plus one spec construction per visited cell —
/// the SweepEngine's peak memory stays at one batch regardless of cell
/// count. cell(i) is a pure function of (spec, i) and enumerates the
/// expansion order documented on SweepSpec: base, tornado endpoints
/// (low/high per multi-valued axis), the cartesian grid in odometer
/// order (last declared axis fastest), then Monte-Carlo draws.
///
/// The constructor validates axis values (physical ranges, plus
/// duplicate detection at cell-naming precision) and throws util::Error
/// — the same failures ScenarioSet registration used to surface, moved
/// ahead of the first engine call. Per-cell spec validation still runs
/// when a cell joins a batch ScenarioSet.
class SweepExpansion {
 public:
  explicit SweepExpansion(SweepSpec spec);

  size_t size() const { return total_; }
  const SweepSpec& spec() const { return spec_; }

  /// The index-th derived scenario, expansion order. index < size().
  ScenarioSpec cell(size_t index) const;

  /// Grid cells occupy expansion indices [grid_begin, grid_begin +
  /// grid_cells). grid_value_index recovers, for grid cell
  /// `grid_index` (zero-based within the grid), which of
  /// spec().axes[axis].values it is pinned at — O(1) odometer
  /// arithmetic, so streaming reductions bucket a cell without
  /// comparing coordinate doubles.
  size_t grid_begin() const { return 1 + endpoints_.size(); }
  size_t grid_cells() const { return grid_; }
  size_t grid_value_index(size_t grid_index, size_t axis) const {
    return (grid_index / strides_[axis]) % spec_.axes[axis].values.size();
  }

 private:
  struct Endpoint {
    SweepAxis axis = SweepAxis::kAci;
    double value = 0.0;
    std::string name;
  };

  SweepSpec spec_;
  std::string base_label_;
  std::vector<Endpoint> endpoints_;  ///< low, high per multi-valued axis
  std::vector<size_t> strides_;      ///< odometer stride per axis
  size_t grid_ = 0;
  size_t total_ = 0;
};

/// Materialize every derived scenario of a sweep as a ScenarioSet, in
/// the expansion order documented on SweepSpec. Cell names are
/// deterministic: "sweep/base", "sweep/axis/<axis>=<value>",
/// "sweep/grid/<axis>=<v>/...", "sweep/mc/<index>". Throws util::Error
/// when a derived spec fails validation (e.g. a pue axis value below
/// 1). Convenience for tests and small sweeps; the engine streams
/// through SweepExpansion and never materializes the full set.
ScenarioSet expand_sweep(const SweepSpec& spec);

/// Which expansion arm produced a cell. Recoverable from the cell's
/// deterministic name (see cell_kind_from_name), tracked explicitly so
/// reductions and exports never re-parse names.
enum class SweepCellKind { kBase, kAxisEndpoint, kGrid, kMonteCarlo };

/// Export label ("base", "axis", "grid", "mc").
std::string_view cell_kind_name(SweepCellKind kind);

/// Inverse of the expansion naming scheme ("sweep/base",
/// "sweep/axis/...", "sweep/grid/...", "sweep/mc/..."). Throws
/// util::Error for a name this module never generates.
SweepCellKind cell_kind_from_name(std::string_view cell_name);

/// The one override value `axis` holds in a derived spec: the optional
/// override knob for aci/pue/fab/util (nullopt = model default), the
/// always-present service_years for life.
std::optional<double> axis_value(const ScenarioSpec& spec, SweepAxis axis);

/// One derived scenario's aggregate footprint (full per-record series
/// are reduced batch by batch; only the tornado endpoints retain them).
struct SweepCell {
  std::string name;
  std::string description;
  SweepCellKind kind = SweepCellKind::kBase;
  uint64_t fingerprint = 0;      ///< the spec's assessment identity
  /// Effective axis coordinates of the derived spec, indexed by
  /// SweepAxis (axis_value over every axis).
  std::array<std::optional<double>, kNumSweepAxes> coords;
  double op_total_mt = 0.0;      ///< covered operational total, MT/yr
  double emb_total_mt = 0.0;     ///< covered embodied total, MT
  double annualized_mt = 0.0;    ///< op + emb / service_years, MT/yr
  int op_covered = 0;
  int emb_covered = 0;
};

/// Reduce one assessed scenario to its SweepCell aggregates — the one
/// projection both the in-process sweep loop and the shard worker
/// (sweep_shard.hpp) apply, so a sharded run cannot drift from a
/// single-process one cell field by cell field.
SweepCell make_sweep_cell(const ScenarioResults& results);

/// Streaming consumer of per-cell sweep results. `cell` is invoked once
/// per assessed cell, always in deterministic order — rounds ascending,
/// cells in expansion order within a round — regardless of thread
/// count, batch size, or cache state: the bit-identity guarantee of the
/// rendered report extends to anything a sink writes. `round` is 0 for
/// the coarse grid (and for every SweepEngine::run cell); adaptive
/// refinement re-emits each round's cells with its round number.
class SweepCellSink {
 public:
  virtual ~SweepCellSink() = default;
  virtual void cell(size_t round, size_t index, const SweepCell& cell) = 0;
};

/// RFC-4180 CSV sink: a header row on construction, then one row per
/// cell — round, index, kind, scenario name, assessment fingerprint
/// (hex), the five axis coordinates (empty = model default), footprint
/// aggregates, coverage counts, and the cell description. Every field
/// is routed through util::csv_escape, so scenario names/descriptions
/// embedding ',', '"', or newlines round-trip through any CSV reader.
/// Fails fast: throws util::Error the moment the output stream reports
/// failure (construction or any row), so a full disk at cell 10 of a
/// million aborts the sweep instead of silently burning the rest.
class CsvCellSink : public SweepCellSink {
 public:
  explicit CsvCellSink(std::ostream& out);
  void cell(size_t round, size_t index, const SweepCell& cell) override;

  /// The column schema, in emission order (documented in README.md).
  static const std::vector<std::string>& columns();

 private:
  std::ostream& out_;
};

/// Fan-out splitter: forwards every cell to each attached sink, in
/// attachment order (e.g. a CSV file and a binary export from one
/// sweep). Sinks are borrowed, not owned; an exception from any sink
/// propagates, preserving the fail-fast contract.
class TeeCellSink : public SweepCellSink {
 public:
  /// All sinks must be non-null.
  explicit TeeCellSink(std::vector<SweepCellSink*> sinks);
  void cell(size_t round, size_t index, const SweepCell& cell) override;

 private:
  std::vector<SweepCellSink*> sinks_;
};

/// Columnar little-endian binary cell export (the "EZCELLS" format,
/// specified in README.md). Same integrity policy as the cache
/// snapshot format: magic + version header, and every cell block
/// carries an FNV-1a checksum over its payload, so truncated or
/// corrupt files are rejected by the reader, never trusted. Cells are
/// buffered and written as columnar blocks of `block_cells` rows;
/// call finish() (or let the destructor) to flush the tail block and
/// the footer — a file without its footer is detectably truncated.
/// Fails fast: throws util::Error when the stream reports failure at
/// any flushed block. The destructor swallows flush errors; call
/// finish() explicitly to observe them.
class BinaryCellSink : public SweepCellSink {
 public:
  static constexpr std::string_view kMagic = "EZCELLS\n";
  static constexpr uint32_t kFormatVersion = 1;

  explicit BinaryCellSink(std::ostream& out, size_t block_cells = 4096);
  ~BinaryCellSink() override;

  void cell(size_t round, size_t index, const SweepCell& cell) override;

  /// Flush buffered cells and write the footer. Idempotent; no cells
  /// may be appended afterwards. Throws util::Error on stream failure.
  void finish();

 private:
  struct Row {
    size_t round = 0;
    size_t index = 0;
    SweepCell cell;
  };

  void flush_block();

  std::ostream& out_;
  size_t block_cells_;
  std::vector<Row> buffer_;
  size_t total_ = 0;
  bool finished_ = false;
};

/// Decode an EZCELLS stream block by block (bounded memory), replaying
/// every cell into `sink` in stored order. Returns the cell count.
/// Throws util::CodecError on a bad magic/version, checksum mismatch,
/// schema drift, truncation (including a missing footer), or trailing
/// garbage. `read_binary_cells(in, CsvCellSink(out))` reproduces the
/// direct CSV export of the same sweep byte for byte.
///
/// `expect_eof` (default) rejects trailing bytes after the footer — a
/// standalone export file must end there. The EZPART partial codec
/// embeds an EZCELLS stream mid-file and passes false: the stream is
/// self-delimiting (the checksummed footer), so the reader stops
/// exactly at its end and leaves the stream positioned on whatever
/// follows.
size_t read_binary_cells(std::istream& in, SweepCellSink& sink,
                         bool expect_eof = true);

/// One multi-valued axis's tornado endpoints: the extreme values and
/// the deterministic cell names the expansion gives them. Expansion,
/// the engine's retained-results map, the tornado reduction, and the
/// shard partial codec all derive from this one helper, so their cell
/// names are structurally incapable of diverging. Endpoints occupy
/// expansion indices [1, 1 + 2*size()): low then high, spec axis order.
struct TornadoEndpoint {
  SweepAxis axis = SweepAxis::kAci;
  double low = 0.0;
  double high = 0.0;
  std::string low_name;
  std::string high_name;
};

std::vector<TornadoEndpoint> tornado_endpoints(const SweepSpec& spec);

/// One axis's tornado bar: the base-anchored swing between the axis's
/// extreme values with every other knob at the base scenario's value.
/// The low/high comparison is analysis::sensitivity's two-scenario
/// kernel, so the per-system extremes come along for free.
struct TornadoRow {
  SweepAxis axis = SweepAxis::kAci;
  double low = 0.0;               ///< smallest axis value
  double high = 0.0;              ///< largest axis value
  double low_annualized_mt = 0.0;
  double high_annualized_mt = 0.0;
  double swing_mt = 0.0;          ///< high - low, annualized MT/yr
  double swing_pct = 0.0;         ///< swing vs the base cell's annualized
  double op_total_pct = 0.0;      ///< aggregate op change low -> high
  double emb_total_pct = 0.0;
  double op_max_abs_pct = 0.0;    ///< largest per-system |op change|
  double emb_max_abs_pct = 0.0;
};

/// One axis's contribution to a refinement round: the steepest adjacent
/// value pair of its marginal response, densified with new points.
struct RefinedAxis {
  SweepAxis axis = SweepAxis::kAci;
  double seg_lo = 0.0;   ///< steepest segment, lower value
  double seg_hi = 0.0;   ///< steepest segment, upper value
  size_t added = 0;      ///< new values inserted (after precision dedup)
  double swing_mt = 0.0; ///< the tornado swing that ranked this axis
};

/// Per-round trace of an adaptive sweep. Round 0 is the coarse grid
/// (no refined axes); each later round re-runs the grid with the
/// refined axes. `cache` is the engine activity attributable to this
/// round — it legitimately differs between cold and warm-started runs
/// and is therefore never rendered; everything else is deterministic.
struct RefinementRound {
  size_t round = 0;
  size_t cells = 0;               ///< cells assessed this round
  std::vector<RefinedAxis> refined;
  par::CacheStats cache;
};

/// How SweepEngine reduces the cross-cell distributions.
enum class SweepStatsMode {
  kAuto,       ///< exact below kStreamingStatsThreshold cells, else streaming
  kExact,      ///< store-all + sort: byte-identical percentiles, O(cells) RAM
  kStreaming,  ///< RunningStat + P² estimators: O(1) RAM, approximate order
               ///< statistics (still bit-stable for a fixed expansion)
};

/// Cell count at which kAuto switches from exact to streaming.
inline constexpr size_t kStreamingStatsThreshold = 65536;

/// CLI-facing mode name ("auto", "exact", "streaming").
std::string_view sweep_stats_mode_name(SweepStatsMode mode);

/// Parse a mode name; nullopt = unknown.
std::optional<SweepStatsMode> sweep_stats_mode_from_name(
    std::string_view name);

/// Single-pass reduction of the three cross-cell footprint
/// distributions (annualized / operational / embodied). Exact mode
/// stores the three series and defers to util::summarize — bit-for-bit
/// the historical store-all reduction. Streaming mode keeps O(1) state
/// (util::StreamingSummary) per distribution. Either way the feed
/// order is the expansion order, so results are bit-stable for any
/// thread count, batch size, or cache state.
///
/// The reduction is also the unit a sharded sweep ships between
/// processes (the EZPART partial codec, sweep_shard.hpp): encode/decode
/// round-trip the full state bit for bit, and merge() folds the next
/// shard's partial in. Exact-mode partials merge by series
/// concatenation — shard order is expansion order, so the merged
/// summaries are byte-identical to a single process's. Streaming-mode
/// partials merge their moment cores exactly (count/min/max; total via
/// the Kahan fold) and their quantile estimators via the approximate
/// P² combine — deterministic for a fixed shard count, documented in
/// README.md.
class SweepReduction {
 public:
  explicit SweepReduction(bool streaming);

  void add(const SweepCell& cell);
  size_t count() const { return count_; }
  bool streaming() const { return streaming_; }

  /// Fold `other` — the reduction over the next contiguous shard of
  /// the same expansion — into this one. Throws util::Error when the
  /// modes disagree.
  void merge(const SweepReduction& other);

  /// Bit-exact state round trip (mode, count, and either the raw
  /// exact-mode series or the three streaming estimator states).
  void encode(util::BinaryWriter& w) const;
  static SweepReduction decode(util::BinaryReader& r);

  /// Finalized distributions (exact mode sorts here).
  util::Summary annualized_mt() const;
  util::Summary op_total_mt() const;
  util::Summary emb_total_mt() const;

 private:
  bool streaming_;
  size_t count_ = 0;
  util::StreamingSummary s_annualized_, s_op_, s_emb_;
  std::vector<double> v_annualized_, v_op_, v_emb_;  // exact mode only
};

/// One multi-valued axis's grid-marginal response: the mean annualized
/// total over the grid cells pinned at each axis value, every other
/// axis marginalized out. Accumulated from the cell stream in
/// expansion order (bit-identical to a store-all recomputation), so
/// adaptive refinement can rank segments without report.cells — the
/// decision inputs survive retention being switched off.
struct AxisMarginal {
  SweepAxis axis = SweepAxis::kAci;
  std::vector<double> values;           ///< axis values, ascending
  std::vector<double> mean_annualized;  ///< parallel to `values`
};

struct SweepReport {
  std::string base_name;          ///< the base scenario swept around
  size_t num_records = 0;
  size_t axis_cells = 0;          ///< tornado endpoint count
  size_t grid_cells = 0;
  size_t mc_cells = 0;
  size_t batches = 0;             ///< engine blocks the sweep ran as
  size_t total_cells = 0;         ///< cells assessed (this round)
  bool streaming_stats = false;   ///< which reduction produced the summaries

  SweepCell base;                 ///< the base cell's aggregates
  /// Every cell, registration order — only when Options::retain_cells
  /// (the default). A sink-driven big sweep runs with retention off and
  /// leaves this empty; everything else in the report is still filled,
  /// captured from the stream.
  std::vector<SweepCell> cells;
  std::vector<TornadoRow> tornado;  ///< spec axis order

  /// Distributions over all cells (base + endpoints + grid + draws).
  util::Summary annualized_mt;
  util::Summary op_total_mt;
  util::Summary emb_total_mt;

  /// Grid-marginal responses of the multi-valued axes, spec axis order.
  /// Not rendered; the refinement planner's input.
  std::vector<AxisMarginal> grid_marginals;

  /// Adaptive-refinement trace: empty for a plain run; round 0 (the
  /// coarse grid) plus one entry per executed refinement round for
  /// run_adaptive. Everything but each round's `cache` is rendered.
  std::vector<RefinementRound> refinement;

  /// Engine cache activity during this sweep — cumulative across every
  /// round for run_adaptive (`entries` is the resident count
  /// afterwards). Not part of the rendered report: hit counts
  /// legitimately differ between cold and warm-started runs while the
  /// report stays byte-identical.
  par::CacheStats cache;
};

/// Tornado-guided refinement: after the coarse grid, rank the
/// multi-valued axes by |tornado swing|, pick the top K, and densify
/// each around the steepest segment of its grid-marginal response for R
/// rounds. Every round keeps the previous round's values (the old grid
/// is a pure cache lookup) and inserts `points` new values strictly
/// inside the steepest adjacent pair, so refinement rounds hit the
/// shared AssessmentEngine cache at least as often as the coarse round
/// — strictly more often when the sweep starts cold.
struct RefineOptions {
  size_t top_axes = 2;  ///< K: axes refined per round, ranked by |swing|
  size_t rounds = 1;    ///< R: refinement rounds after the coarse grid
  size_t points = 4;    ///< new values per refined axis per round
};

/// Drives a SweepSpec through an AssessmentEngine in batched cell
/// blocks: every batch is one engine call over all records, so the
/// thread pool parallelizes within a block and the memo cache carries
/// aliases (lifetime cells, endpoint/grid coincidences) across blocks.
class SweepEngine {
 public:
  struct Options {
    /// Engine to run on; null = a private engine on `pool`. A shared
    /// engine keeps its memo cache warm across sweeps and lets callers
    /// persist it (AssessmentEngine::save_cache/load_cache).
    AssessmentEngine* engine = nullptr;
    /// Pool for the private engine (ignored when `engine` is set).
    par::ThreadPool* pool = nullptr;
    /// Derived scenarios per engine block. Bounds peak memory (one
    /// block's full per-record results are alive at a time) without
    /// affecting results: reports are identical for any batch size.
    size_t batch_size = 64;
    /// Reduction mode for the cross-cell distributions (see
    /// SweepStatsMode). kAuto keeps small sweeps byte-identical to the
    /// historical exact reduction and switches big ones to O(1)-memory
    /// streaming.
    SweepStatsMode stats = SweepStatsMode::kAuto;
    /// Keep every SweepCell in SweepReport::cells. Default on (the
    /// historical behaviour); switch off for sink-driven big sweeps so
    /// peak memory is one batch plus O(1) reduction state, independent
    /// of cell count. The rest of the report (base cell, tornado,
    /// summaries, marginals, counters) is unaffected.
    bool retain_cells = true;
  };

  SweepEngine();  // default options
  explicit SweepEngine(Options options);

  /// Expand `spec` and assess every derived scenario over `records`.
  /// Deterministic: byte-identical SweepCells and tornado rows for any
  /// pool size, batch size, or cache state. When `sink` is non-null it
  /// receives every cell, in expansion order, as its batch completes.
  SweepReport run(const std::vector<top500::SystemRecord>& records,
                  const SweepSpec& spec, SweepCellSink* sink = nullptr);

  /// Coarse grid plus tornado-guided refinement (see RefineOptions).
  /// Returns the final round's report with the full per-round trace in
  /// SweepReport::refinement and cumulative cache stats. Refinement
  /// decisions are pure functions of deterministic cell aggregates, so
  /// the report and everything `sink` receives stay byte-identical for
  /// any pool size, batch size, or cache state. Rounds stop early when
  /// no axis can be refined (no multi-valued axes, or the steepest
  /// segments are already denser than the naming precision).
  SweepReport run_adaptive(const std::vector<top500::SystemRecord>& records,
                           const SweepSpec& spec,
                           const RefineOptions& refine,
                           SweepCellSink* sink = nullptr);

  /// The engine the sweep runs on (the shared one, or the private one).
  AssessmentEngine& engine();

  /// The effective options (with `engine` filled in when a private one
  /// was constructed). The shard runner reads batch/stats knobs here.
  const Options& options() const { return options_; }

 private:
  SweepReport run_round(const std::vector<top500::SystemRecord>& records,
                        const SweepSpec& spec, size_t round,
                        SweepCellSink* sink);

  Options options_;
  std::unique_ptr<AssessmentEngine> owned_engine_;
};

/// Render the deterministic part of a report (everything but the cache
/// stats and batch shape) as the CLI's stdout block: header, tornado
/// table, the refinement trace (adaptive runs only), and the footprint
/// percentiles.
std::string render_sweep_report(const SweepReport& report);

}  // namespace easyc::analysis
