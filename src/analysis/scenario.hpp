// Scenario policy: how the EasyC model is configured per data scenario.
//
// The paper's Baseline run is conservative (an unidentifiable
// accelerator yields no estimate); the Baseline+PublicInfo run
// approximates unknown accelerators with mainstream GPUs — the source
// of the systematic silicon underestimate the paper reports.
#pragma once

#include <vector>

#include "easyc/model.hpp"
#include "top500/record.hpp"

namespace easyc::analysis {

/// Model options appropriate for a data scenario.
model::EasyCOptions options_for(top500::Scenario scenario);

/// Assess every record under a scenario (projection + model, parallel).
std::vector<model::SystemAssessment> assess_scenario(
    const std::vector<top500::SystemRecord>& records,
    top500::Scenario scenario);

}  // namespace easyc::analysis
