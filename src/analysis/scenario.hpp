// Declarative scenario engine: what-if configurations of the EasyC
// assessment, run side by side over one record list.
//
// The paper evaluates exactly two data scenarios — Top500.org-only
// ("baseline") and Baseline+PublicInfo ("enhanced") — which earlier
// revisions hardcoded as a closed enum. A scenario is now a ScenarioSpec
// value: a data-visibility policy (which disclosure mask the model may
// read) plus model-side policy knobs (accelerator fallback, grid/PUE/ACI
// overrides, fab intensity, utilization prior, amortization lifetime).
// A ScenarioSet registry carries the paper's pair as built-ins and lets
// examples, benches, and tools register arbitrary what-ifs; run_pipeline
// assesses every registered scenario concurrently.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "easyc/amortization.hpp"
#include "easyc/model.hpp"
#include "top500/record.hpp"

namespace easyc::par {
class ThreadPool;
}

namespace easyc::analysis {

/// One scenario, declaratively: everything run_pipeline needs to assess
/// the list under a data/policy configuration. Value type; copy freely.
struct ScenarioSpec {
  std::string name;         ///< registry key; must be unique and non-empty
  std::string description;  ///< one line for reports

  /// Which record fields the model may see (the paper's experimental
  /// variable).
  top500::DataVisibility visibility = top500::DataVisibility::kTop500Org;

  /// Fallback for accelerators the hardware catalog cannot identify.
  model::AcceleratorPolicy accelerator_policy =
      model::AcceleratorPolicy::kStrict;

  // --- what-if overrides; nullopt = model defaults ---
  std::optional<double> aci_override_g_kwh;  ///< force grid intensity
  std::optional<double> pue_override;        ///< force facility PUE
  std::optional<double> fab_aci_kg_kwh;      ///< fab electricity intensity
  std::optional<double> default_utilization; ///< utilization prior

  /// Amortization lifetime for annualized totals (defaults to the
  /// model-layer service-life prior).
  double service_years = model::AmortizationOptions{}.service_years;

  /// Materialize the model options this spec describes.
  model::EasyCOptions to_options() const;

  /// Stable cache key over the spec's *assessment identity*: the
  /// visibility plus every knob that reaches to_options(). Two specs
  /// with equal fingerprints produce bit-identical per-record
  /// SystemAssessments, so the engine's memo table may serve one's
  /// results to the other. name/description (presentation) and
  /// service_years (applied after assessment, in annualized totals)
  /// are deliberately excluded.
  uint64_t fingerprint() const;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Built-in specs. `baseline` and `enhanced` are the paper's two
/// scenarios; the rest are ready-made what-ifs for the knobs procurement
/// studies keep reaching for.
namespace scenarios {

inline constexpr std::string_view kBaselineName = "baseline";
inline constexpr std::string_view kEnhancedName = "enhanced";

ScenarioSpec baseline();             ///< Top500.org data, strict policy
ScenarioSpec enhanced();             ///< + public info, GPU approximation
ScenarioSpec full_knowledge();       ///< ground truth upper bound
ScenarioSpec renewables_grid();      ///< whole fleet on a ~25 g/kWh grid
ScenarioSpec extended_lifetime();    ///< 8-year service life amortization
ScenarioSpec strict_accelerators();  ///< enhanced data, no GPU proxying

}  // namespace scenarios

/// Ordered, name-keyed registry of scenarios. Registration order is
/// preserved and becomes the order of PipelineResult::scenarios.
class ScenarioSet {
 public:
  /// Empty set; add() scenarios or start from paper().
  ScenarioSet() = default;

  /// The paper's two scenarios, in figure order (baseline, enhanced).
  static ScenarioSet paper();

  /// paper() plus the stock what-if trio (renewables grid, extended
  /// lifetime, strict accelerators) — the default set the example,
  /// bench, and CLI share.
  static ScenarioSet paper_with_whatifs();

  /// Register a scenario. Throws util::Error on an empty or duplicate
  /// name. Returns *this for chaining.
  ScenarioSet& add(ScenarioSpec spec);

  bool contains(std::string_view name) const { return find(name) != nullptr; }
  /// nullptr when no scenario has this name.
  const ScenarioSpec* find(std::string_view name) const;
  /// Throws util::Error when no scenario has this name.
  const ScenarioSpec& at(std::string_view name) const;

  const std::vector<ScenarioSpec>& specs() const { return specs_; }
  std::vector<std::string> names() const;
  size_t size() const { return specs_.size(); }
  bool empty() const { return specs_.empty(); }

 private:
  std::vector<ScenarioSpec> specs_;
};

/// Compatibility shim for the pre-engine API: options for the paper
/// scenario that reads this visibility level (baseline for kTop500Org,
/// enhanced otherwise). New code uses ScenarioSpec::to_options().
model::EasyCOptions options_for(top500::DataVisibility visibility);

/// Assess every record under a scenario (visibility projection + model,
/// parallel over `pool`, or the process-global pool when null).
std::vector<model::SystemAssessment> assess_scenario(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioSpec& spec, par::ThreadPool* pool = nullptr);

/// Compatibility shim: assess under the paper scenario for a visibility.
std::vector<model::SystemAssessment> assess_scenario(
    const std::vector<top500::SystemRecord>& records,
    top500::DataVisibility visibility);

}  // namespace easyc::analysis
