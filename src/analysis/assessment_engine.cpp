#include "analysis/assessment_engine.hpp"

#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "easyc/codec.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/serialize.hpp"
#include "util/units.hpp"

namespace easyc::analysis {

namespace {

double covered_sum(const CarbonSeries& s) {
  double total = 0.0;
  for (const auto& v : s) {
    if (v) total += *v;
  }
  return total;
}

int covered_count(const CarbonSeries& s) {
  int n = 0;
  for (const auto& v : s) {
    if (v) ++n;
  }
  return n;
}

// Derive the series and coverage views from a scenario's assessments.
void finalize_scenario(ScenarioResults& r) {
  r.operational = operational_series(r.assessments);
  r.embodied = embodied_series(r.assessments);
  r.coverage = count_coverage(r.assessments);
}

}  // namespace

double ScenarioResults::total(bool operational_side) const {
  return covered_sum(operational_side ? operational : embodied);
}

double ScenarioResults::average(bool operational_side) const {
  const CarbonSeries& s = operational_side ? operational : embodied;
  const int n = covered_count(s);
  return n == 0 ? 0.0 : covered_sum(s) / n;
}

double ScenarioResults::annualized_total_mt() const {
  return total(true) + total(false) / spec.service_years;
}

CarbonSeries operational_series(
    const std::vector<model::SystemAssessment>& assessments) {
  CarbonSeries out;
  out.reserve(assessments.size());
  for (const auto& a : assessments) {
    out.push_back(a.operational.ok()
                      ? std::optional<double>(a.operational.value().mt_co2e)
                      : std::nullopt);
  }
  return out;
}

CarbonSeries embodied_series(
    const std::vector<model::SystemAssessment>& assessments) {
  CarbonSeries out;
  out.reserve(assessments.size());
  for (const auto& a : assessments) {
    out.push_back(a.embodied.ok()
                      ? std::optional<double>(a.embodied.value().total_mt)
                      : std::nullopt);
  }
  return out;
}

const ScenarioResults* find_scenario_in(
    const std::vector<ScenarioResults>& scenarios, std::string_view name) {
  for (const auto& s : scenarios) {
    if (s.spec.name == name) return &s;
  }
  return nullptr;
}

const ScenarioResults& scenario_in(
    const std::vector<ScenarioResults>& scenarios, std::string_view name,
    std::string_view owner) {
  if (const ScenarioResults* s = find_scenario_in(scenarios, name)) return *s;
  throw util::Error(std::string(owner) + " has no scenario named '" +
                    std::string(name) + "'");
}

const ScenarioResults* EditionAssessment::find_scenario(
    std::string_view name) const {
  return find_scenario_in(scenarios, name);
}

const ScenarioResults& EditionAssessment::scenario(
    std::string_view name) const {
  return scenario_in(scenarios, name, "edition");
}

AssessmentEngine::AssessmentEngine() : AssessmentEngine(Options{}) {}

AssessmentEngine::AssessmentEngine(Options options)
    : options_(options),
      cache_(options.cache_shards, options.cache_capacity) {}

model::BatchStats AssessmentEngine::batch_stats() const {
  std::lock_guard<std::mutex> lock(batch_stats_mu_);
  return batch_stats_;
}

void AssessmentEngine::add_batch_stats(const model::BatchStats& stats) {
  std::lock_guard<std::mutex> lock(batch_stats_mu_);
  batch_stats_ += stats;
}

bool AssessmentEngine::use_soa_kernel(const ScenarioSet& scenarios) const {
  switch (options_.batch_kernel) {
    case BatchKernel::kScalar:
      return false;
    case BatchKernel::kSoa:
      return true;
    case BatchKernel::kAuto:
      break;
  }
  bool seen[top500::kNumDataVisibilities] = {};
  size_t distinct = 0;
  for (const auto& spec : scenarios.specs()) {
    const auto vis = static_cast<size_t>(spec.visibility);
    if (!seen[vis]) {
      seen[vis] = true;
      ++distinct;
    }
  }
  return scenarios.size() >= 2 * distinct;
}

// One edition's wavefront: all (scenario, record) cells flattened into
// parallel grids. A cell first consults the memo table; only a miss
// pays for the visibility projection and the model. Each cell writes
// its own slot, so results are bit-identical for any pool size.
//
// Scenarios whose fingerprints coincide (aliases: same assessment
// identity under different names/service lives, like the stock
// enhanced / whatif/extended-lifetime pair) run as a second grid after
// the first completes — their cells then find the entry resident
// (barring capacity eviction, which only costs a recompute), which
// keeps the exactly-once guarantee and the hit accounting
// deterministic for every pool size.
void AssessmentEngine::assess_edition(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioSet& scenarios, const std::vector<model::EasyCModel>& models,
    const std::vector<uint64_t>& scenario_fps, EditionAssessment& out) {
  par::ThreadPool& pool =
      options_.pool ? *options_.pool : par::ThreadPool::global();
  const size_t num_scenarios = scenarios.size();
  const size_t num_records = records.size();

  out.scenarios.resize(num_scenarios);
  for (size_t s = 0; s < num_scenarios; ++s) {
    out.scenarios[s].spec = scenarios.specs()[s];
    out.scenarios[s].assessments.resize(num_records);
  }
  out.perf_pflops = 0.0;
  for (const auto& r : records) {
    out.perf_pflops += r.rmax_tflops / util::kTFlopsPerPFlop;
  }
  if (num_scenarios == 0 || num_records == 0) return;

  if (!options_.cache_enabled) {
    // No memo table: every cell computes. Scenarios sharing a data
    // visibility share one immutable input projection, computed once
    // per distinct visibility (the cached path cannot afford this —
    // projecting every record upfront would tax warm runs that need
    // no inputs at all — but here every cell reads its inputs).
    std::array<std::vector<model::Inputs>, top500::kNumDataVisibilities>
        projections;
    for (const auto& spec : scenarios.specs()) {
      auto& inputs = projections[static_cast<size_t>(spec.visibility)];
      if (!inputs.empty()) continue;
      inputs.resize(num_records);
      par::parallel_for(pool, 0, num_records, [&](size_t i) {
        inputs[i] = to_inputs(records[i], spec.visibility);
      });
    }
    if (use_soa_kernel(scenarios)) {
      // SoA kernel: one profile per distinct (visibility, record),
      // resolved once, then each scenario assessed as a batch of lanes.
      model::BatchAssessor batch({.hoist_aci = options_.batch_hoist_aci});
      std::array<std::vector<size_t>, top500::kNumDataVisibilities> pids;
      for (const auto& spec : scenarios.specs()) {
        auto& ids = pids[static_cast<size_t>(spec.visibility)];
        if (!ids.empty()) continue;
        // The projections are consumed here: the assessor owns the
        // inputs from registration on (lanes read profile state only).
        auto& inputs = projections[static_cast<size_t>(spec.visibility)];
        ids.reserve(num_records);
        for (size_t i = 0; i < num_records; ++i) {
          ids.push_back(batch.add_profile(std::move(inputs[i])));
        }
      }
      batch.resolve_profiles(&pool);
      std::vector<model::BatchAssessor::Cell> cells(num_records);
      for (size_t s = 0; s < num_scenarios; ++s) {
        const auto& ids =
            pids[static_cast<size_t>(scenarios.specs()[s].visibility)];
        for (size_t i = 0; i < num_records; ++i) {
          cells[i] = {ids[i], &out.scenarios[s].assessments[i]};
        }
        batch.assess(models[s].options(), cells.data(), cells.size(), &pool);
      }
      add_batch_stats(batch.stats());
    } else {
      par::parallel_for(
          pool, 0, num_scenarios * num_records, [&](size_t cell) {
            const size_t s = cell / num_records;
            const size_t i = cell % num_records;
            const auto& inputs = projections[static_cast<size_t>(
                scenarios.specs()[s].visibility)];
            out.scenarios[s].assessments[i] = models[s].assess(inputs[i]);
          });
    }
    for (auto& r : out.scenarios) finalize_scenario(r);
    return;
  }

  std::vector<uint64_t> record_fps(num_records);
  par::parallel_for(pool, 0, num_records, [&](size_t i) {
    record_fps[i] = records[i].content_fingerprint();
  });

  std::vector<size_t> primaries;
  std::vector<size_t> aliases;
  for (size_t s = 0; s < num_scenarios; ++s) {
    bool is_alias = false;
    for (size_t p = 0; p < s && !is_alias; ++p) {
      is_alias = scenario_fps[p] == scenario_fps[s];
    }
    (is_alias ? aliases : primaries).push_back(s);
  }

  auto run_grid = [&](const std::vector<size_t>& scenario_indices) {
    par::parallel_for(
        pool, 0, scenario_indices.size() * num_records, [&](size_t cell) {
          const size_t s = scenario_indices[cell / num_records];
          const size_t i = cell % num_records;
          model::SystemAssessment& slot = out.scenarios[s].assessments[i];
          const CellKey key{record_fps[i], scenario_fps[s]};
          if (!cache_.lookup(key, slot)) {
            slot = models[s].assess(
                to_inputs(records[i], scenarios.specs()[s].visibility));
            cache_.insert(key, slot);
          }
        });
  };

  // SoA fill path: a two-pass grid. Pass 1 runs every lookup against
  // the grid's starting cache state, which makes the miss set — and so
  // the hit accounting — deterministic for every pool size (the scalar
  // grid has the same property because its per-cell lookups also all
  // precede any insert it could hit: keys within a grid are unique).
  // The misses then batch through the kernel, one profile per distinct
  // (visibility, record), and publish to the cache afterwards.
  model::BatchAssessor batch({.hoist_aci = options_.batch_hoist_aci});
  std::array<std::vector<int64_t>, top500::kNumDataVisibilities> pid;
  auto run_grid_soa = [&](const std::vector<size_t>& scenario_indices) {
    const size_t ngrid = scenario_indices.size() * num_records;
    std::vector<uint8_t> hit(ngrid);
    par::parallel_for(pool, 0, ngrid, [&](size_t cell) {
      const size_t s = scenario_indices[cell / num_records];
      const size_t i = cell % num_records;
      model::SystemAssessment& slot = out.scenarios[s].assessments[i];
      hit[cell] =
          cache_.lookup({record_fps[i], scenario_fps[s]}, slot) ? 1 : 0;
    });
    // Serial scan keeps profile ids deterministic; projection of the
    // distinct misses is parallel.
    std::vector<std::pair<size_t, size_t>> need;  // (visibility, record)
    for (size_t cell = 0; cell < ngrid; ++cell) {
      if (hit[cell]) continue;
      const size_t s = scenario_indices[cell / num_records];
      const size_t i = cell % num_records;
      const auto vis = static_cast<size_t>(scenarios.specs()[s].visibility);
      if (pid[vis].empty()) pid[vis].assign(num_records, -1);
      if (pid[vis][i] < 0) {
        pid[vis][i] = static_cast<int64_t>(batch.num_profiles() + need.size());
        need.emplace_back(vis, i);
      }
    }
    if (!need.empty()) {
      std::vector<model::Inputs> projected(need.size());
      par::parallel_for(pool, 0, need.size(), [&](size_t k) {
        projected[k] =
            to_inputs(records[need[k].second],
                      static_cast<top500::DataVisibility>(need[k].first));
      });
      for (auto& in : projected) batch.add_profile(std::move(in));
      batch.resolve_profiles(&pool);
    }
    std::vector<model::BatchAssessor::Cell> cells;
    std::vector<size_t> cell_records;
    for (size_t g = 0; g < scenario_indices.size(); ++g) {
      const size_t s = scenario_indices[g];
      const auto vis = static_cast<size_t>(scenarios.specs()[s].visibility);
      cells.clear();
      cell_records.clear();
      for (size_t i = 0; i < num_records; ++i) {
        if (hit[g * num_records + i]) continue;
        cells.push_back({static_cast<size_t>(pid[vis][i]),
                         &out.scenarios[s].assessments[i]});
        cell_records.push_back(i);
      }
      if (cells.empty()) continue;
      batch.assess(models[s].options(), cells.data(), cells.size(), &pool);
      par::parallel_for(pool, 0, cells.size(), [&](size_t k) {
        const size_t i = cell_records[k];
        cache_.insert({record_fps[i], scenario_fps[s]},
                      out.scenarios[s].assessments[i]);
      });
    }
  };

  if (use_soa_kernel(scenarios)) {
    run_grid_soa(primaries);
    if (!aliases.empty()) run_grid_soa(aliases);
    add_batch_stats(batch.stats());
  } else {
    run_grid(primaries);
    if (!aliases.empty()) run_grid(aliases);
  }

  for (auto& r : out.scenarios) finalize_scenario(r);
}

std::vector<EditionAssessment> AssessmentEngine::run(
    const std::vector<top500::ListEdition>& editions,
    const ScenarioSet& scenarios) {
  std::vector<model::EasyCModel> models;
  std::vector<uint64_t> scenario_fps;
  models.reserve(scenarios.size());
  scenario_fps.reserve(scenarios.size());
  for (const auto& spec : scenarios.specs()) {
    models.emplace_back(spec.to_options());
    scenario_fps.push_back(spec.fingerprint());
  }

  // Editions run as ordered wavefronts (each internally parallel):
  // edition k's survivors then hit the entries edition k-1 inserted,
  // guaranteeing each surviving system is assessed exactly once and
  // making the hit-rate independent of the pool size.
  std::vector<EditionAssessment> out(editions.size());
  for (size_t e = 0; e < editions.size(); ++e) {
    out[e].label = editions[e].label;
    out[e].num_new = editions[e].num_new;
    assess_edition(editions[e].records, scenarios, models, scenario_fps,
                   out[e]);
  }
  return out;
}

uint64_t AssessmentEngine::cache_scheme_tag() {
  // Canaries exercise the two fingerprint schemes a cache key is built
  // from. Any change to util::Fingerprint, to the record field set
  // content_fingerprint() walks, or to the spec knobs fingerprint()
  // covers moves these values — the codec version covers the value
  // encoding and the semantics version covers the model's math — so a
  // snapshot from an older scheme fails the tag check instead of being
  // silently misinterpreted (or silently served stale).
  top500::SystemRecord canary_record;
  canary_record.name = "scheme-canary";
  canary_record.country = "Atlantis";
  canary_record.processor = "Canary 64C 2.0GHz";
  canary_record.truth.power_kw = 1234.5;
  canary_record.top500.power = true;
  return util::Fingerprint{}
      .mix_u64(canary_record.content_fingerprint())
      .mix_u64(scenarios::baseline().fingerprint())
      .mix_u64(model::kAssessmentCodecVersion)
      .mix_u64(model::kAssessmentSemanticsVersion)
      .value();
}

void AssessmentEngine::save_cache(const std::string& path) const {
  const std::string bytes = cache_.snapshot(
      cache_scheme_tag(),
      [](util::BinaryWriter& w, const CellKey& key) {
        w.u64(key.record_fp).u64(key.scenario_fp);
      },
      [](util::BinaryWriter& w, const model::SystemAssessment& a) {
        model::encode_assessment(w, a);
      });
  // Write-to-temp + rename, so a crash or full disk mid-write can only
  // lose the *update* — an existing good snapshot at `path` survives
  // any failed save, and concurrent savers cannot interleave into a
  // corrupt file (pid + counter make the temp unique across processes
  // *and* threads; the last rename wins whole).
  static std::atomic<uint64_t> save_seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(save_seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw util::Error("cannot open cache file for writing: " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw util::Error("short write to cache file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw util::Error("cannot move cache file into place: " + path);
  }
}

size_t AssessmentEngine::load_cache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::Error("cannot open cache file for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw util::Error("read failure on cache file: " + path);
  const std::string bytes = buf.str();
  return cache_.restore(
      bytes, cache_scheme_tag(),
      [](util::BinaryReader& r) {
        CellKey key;
        key.record_fp = r.u64();
        key.scenario_fp = r.u64();
        return key;
      },
      [](util::BinaryReader& r) { return model::decode_assessment(r); });
}

EditionAssessment AssessmentEngine::assess(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioSet& scenarios) {
  std::vector<model::EasyCModel> models;
  std::vector<uint64_t> scenario_fps;
  models.reserve(scenarios.size());
  scenario_fps.reserve(scenarios.size());
  for (const auto& spec : scenarios.specs()) {
    models.emplace_back(spec.to_options());
    scenario_fps.push_back(spec.fingerprint());
  }
  EditionAssessment out;
  assess_edition(records, scenarios, models, scenario_fps, out);
  return out;
}

}  // namespace easyc::analysis
