#include "analysis/pipeline.hpp"

#include "util/error.hpp"

namespace easyc::analysis {

const ScenarioResults* PipelineResult::find_scenario(
    std::string_view name) const {
  return find_scenario_in(scenarios, name);
}

const ScenarioResults& PipelineResult::scenario(std::string_view name) const {
  return scenario_in(scenarios, name, "pipeline");
}

const ScenarioResults& PipelineResult::baseline() const {
  return scenario(scenarios::kBaselineName);
}

const ScenarioResults& PipelineResult::enhanced() const {
  return scenario(scenarios::kEnhancedName);
}

ScenarioResults assess_one_scenario(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioSpec& spec, par::ThreadPool* pool) {
  // One-shot engine: the memo cache cannot pay for itself in a single
  // pass over one scenario, so skip the fingerprinting work.
  AssessmentEngine engine({.pool = pool, .cache_enabled = false});
  ScenarioSet one;
  one.add(spec);
  auto edition = engine.assess(records, one);
  return std::move(edition.scenarios.front());
}

PipelineResult run_pipeline(const PipelineConfig& cfg) {
  PipelineResult out;
  auto generated = top500::generate_list(cfg.generator);
  out.records = std::move(generated.records);
  out.categories = std::move(generated.categories);

  // The paper pair is always assessed: the interpolation, totals, and
  // projection stages below are defined over the enhanced scenario. The
  // two names are therefore reserved — a caller-registered spec wearing
  // one of them but carrying different data/policy settings would
  // silently corrupt every paper figure.
  ScenarioSet scenarios =
      cfg.scenarios.empty() ? ScenarioSet::paper() : cfg.scenarios;
  for (const ScenarioSpec& paper_spec :
       {scenarios::baseline(), scenarios::enhanced()}) {
    const ScenarioSpec* registered = scenarios.find(paper_spec.name);
    if (!registered) {
      scenarios.add(paper_spec);
    } else if (*registered != paper_spec) {
      throw util::Error("scenario name '" + paper_spec.name +
                        "' is reserved for the paper scenario; register "
                        "custom settings under a different name");
    }
  }

  // The one-shot fallback engine skips the memo cache like
  // assess_one_scenario does: a single pass cannot amortize the
  // fingerprinting and entry copies (cross-run reuse needs cfg.engine).
  AssessmentEngine local_engine({.pool = cfg.pool, .cache_enabled = false});
  AssessmentEngine& engine = cfg.engine ? *cfg.engine : local_engine;
  EditionAssessment edition = engine.assess(out.records, scenarios);
  out.scenarios = std::move(edition.scenarios);
  out.perf_pflops = edition.perf_pflops;

  const ScenarioResults& enhanced = out.enhanced();
  FullListSeries full = interpolate_full_list(
      enhanced.operational, enhanced.embodied, cfg.interpolation);
  out.op_interpolated = std::move(full.operational);
  out.emb_interpolated = std::move(full.embodied);

  out.op_total_covered_mt = enhanced.total(true);
  out.emb_total_covered_mt = enhanced.total(false);
  out.op_total_full_mt = full.op_total_mt;
  out.emb_total_full_mt = full.emb_total_mt;

  out.projection =
      project(out.op_total_full_mt / 1000.0, out.emb_total_full_mt / 1000.0,
              out.perf_pflops, cfg.projection);
  return out;
}

}  // namespace easyc::analysis
