#include "analysis/pipeline.hpp"

#include <array>

#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace easyc::analysis {

namespace {

double covered_sum(const CarbonSeries& s) {
  double total = 0.0;
  for (const auto& v : s) {
    if (v) total += *v;
  }
  return total;
}

int covered_count(const CarbonSeries& s) {
  int n = 0;
  for (const auto& v : s) {
    if (v) ++n;
  }
  return n;
}

}  // namespace

double ScenarioResults::total(bool operational_side) const {
  return covered_sum(operational_side ? operational : embodied);
}

double ScenarioResults::average(bool operational_side) const {
  const CarbonSeries& s = operational_side ? operational : embodied;
  const int n = covered_count(s);
  return n == 0 ? 0.0 : covered_sum(s) / n;
}

double ScenarioResults::annualized_total_mt() const {
  return total(true) + total(false) / spec.service_years;
}

const ScenarioResults* PipelineResult::find_scenario(
    std::string_view name) const {
  for (const auto& s : scenarios) {
    if (s.spec.name == name) return &s;
  }
  return nullptr;
}

const ScenarioResults& PipelineResult::scenario(std::string_view name) const {
  if (const ScenarioResults* s = find_scenario(name)) return *s;
  throw util::Error("pipeline has no scenario named '" + std::string(name) +
                    "'");
}

const ScenarioResults& PipelineResult::baseline() const {
  return scenario(scenarios::kBaselineName);
}

const ScenarioResults& PipelineResult::enhanced() const {
  return scenario(scenarios::kEnhancedName);
}

CarbonSeries operational_series(
    const std::vector<model::SystemAssessment>& assessments) {
  CarbonSeries out;
  out.reserve(assessments.size());
  for (const auto& a : assessments) {
    out.push_back(a.operational.ok()
                      ? std::optional<double>(a.operational.value().mt_co2e)
                      : std::nullopt);
  }
  return out;
}

CarbonSeries embodied_series(
    const std::vector<model::SystemAssessment>& assessments) {
  CarbonSeries out;
  out.reserve(assessments.size());
  for (const auto& a : assessments) {
    out.push_back(a.embodied.ok()
                      ? std::optional<double>(a.embodied.value().total_mt)
                      : std::nullopt);
  }
  return out;
}

namespace {

// Derive the series and coverage views from a scenario's assessments.
void finalize_scenario(ScenarioResults& r) {
  r.operational = operational_series(r.assessments);
  r.embodied = embodied_series(r.assessments);
  r.coverage = count_coverage(r.assessments);
}

// The engine core: assess every registered scenario over one pool.
// Scenarios sharing a data visibility share one immutable input
// projection, and all (scenario, system) cells are flattened into a
// single parallel_for grid so scenarios genuinely run concurrently —
// no nested pool blocking, and chunking amortizes the queue lock.
// Each cell writes its own slot, so results are bit-identical for any
// pool size.
std::vector<ScenarioResults> assess_scenarios(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioSet& scenarios, par::ThreadPool& pool) {
  const size_t num_scenarios = scenarios.size();
  const size_t num_records = records.size();

  // Shared immutable inputs, one projection per distinct visibility.
  std::array<std::vector<model::Inputs>, top500::kNumDataVisibilities>
      projections;
  auto projection_for =
      [&](top500::DataVisibility v) -> std::vector<model::Inputs>& {
    return projections[static_cast<size_t>(v)];
  };
  for (const auto& spec : scenarios.specs()) {
    auto& inputs = projection_for(spec.visibility);
    if (!inputs.empty() || num_records == 0) continue;
    inputs.resize(num_records);
    par::parallel_for(pool, 0, num_records, [&](size_t i) {
      inputs[i] = to_inputs(records[i], spec.visibility);
    });
  }

  std::vector<ScenarioResults> out(num_scenarios);
  std::vector<model::EasyCModel> models;
  models.reserve(num_scenarios);
  for (size_t s = 0; s < num_scenarios; ++s) {
    out[s].spec = scenarios.specs()[s];
    out[s].assessments.resize(num_records);
    models.emplace_back(out[s].spec.to_options());
  }

  par::parallel_for(pool, 0, num_scenarios * num_records, [&](size_t cell) {
    const size_t s = cell / num_records;
    const size_t i = cell % num_records;
    out[s].assessments[i] =
        models[s].assess(projection_for(out[s].spec.visibility)[i]);
  });

  for (auto& r : out) finalize_scenario(r);
  return out;
}

}  // namespace

ScenarioResults assess_one_scenario(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioSpec& spec, par::ThreadPool* pool) {
  ScenarioResults r;
  r.spec = spec;
  r.assessments = assess_scenario(records, spec, pool);
  finalize_scenario(r);
  return r;
}

PipelineResult run_pipeline(const PipelineConfig& cfg) {
  PipelineResult out;
  auto generated = top500::generate_list(cfg.generator);
  out.records = std::move(generated.records);
  out.categories = std::move(generated.categories);

  // The paper pair is always assessed: the interpolation, totals, and
  // projection stages below are defined over the enhanced scenario. The
  // two names are therefore reserved — a caller-registered spec wearing
  // one of them but carrying different data/policy settings would
  // silently corrupt every paper figure.
  ScenarioSet scenarios =
      cfg.scenarios.empty() ? ScenarioSet::paper() : cfg.scenarios;
  for (const ScenarioSpec& paper_spec :
       {scenarios::baseline(), scenarios::enhanced()}) {
    const ScenarioSpec* registered = scenarios.find(paper_spec.name);
    if (!registered) {
      scenarios.add(paper_spec);
    } else if (*registered != paper_spec) {
      throw util::Error("scenario name '" + paper_spec.name +
                        "' is reserved for the paper scenario; register "
                        "custom settings under a different name");
    }
  }

  par::ThreadPool& pool =
      cfg.pool ? *cfg.pool : par::ThreadPool::global();
  out.scenarios = assess_scenarios(out.records, scenarios, pool);

  const ScenarioResults& enhanced = out.enhanced();
  out.op_interpolated =
      interpolate_gaps(enhanced.operational, cfg.interpolation);
  out.emb_interpolated =
      interpolate_gaps(enhanced.embodied, cfg.interpolation);

  out.op_total_covered_mt = enhanced.total(true);
  out.emb_total_covered_mt = enhanced.total(false);
  out.op_total_full_mt = util::sum(out.op_interpolated.values);
  out.emb_total_full_mt = util::sum(out.emb_interpolated.values);

  double perf_pflops = 0.0;
  for (const auto& r : out.records) {
    perf_pflops += r.rmax_tflops / util::kTFlopsPerPFlop;
  }
  out.projection =
      project(out.op_total_full_mt / 1000.0, out.emb_total_full_mt / 1000.0,
              perf_pflops, cfg.projection);
  return out;
}

}  // namespace easyc::analysis
