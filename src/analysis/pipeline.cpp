#include "analysis/pipeline.hpp"

#include "analysis/scenario.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace easyc::analysis {

namespace {

double covered_sum(const CarbonSeries& s) {
  double total = 0.0;
  for (const auto& v : s) {
    if (v) total += *v;
  }
  return total;
}

int covered_count(const CarbonSeries& s) {
  int n = 0;
  for (const auto& v : s) {
    if (v) ++n;
  }
  return n;
}

}  // namespace

double ScenarioResults::total(bool operational_side) const {
  return covered_sum(operational_side ? operational : embodied);
}

double ScenarioResults::average(bool operational_side) const {
  const CarbonSeries& s = operational_side ? operational : embodied;
  const int n = covered_count(s);
  return n == 0 ? 0.0 : covered_sum(s) / n;
}

CarbonSeries operational_series(
    const std::vector<model::SystemAssessment>& assessments) {
  CarbonSeries out;
  out.reserve(assessments.size());
  for (const auto& a : assessments) {
    out.push_back(a.operational.ok()
                      ? std::optional<double>(a.operational.value().mt_co2e)
                      : std::nullopt);
  }
  return out;
}

CarbonSeries embodied_series(
    const std::vector<model::SystemAssessment>& assessments) {
  CarbonSeries out;
  out.reserve(assessments.size());
  for (const auto& a : assessments) {
    out.push_back(a.embodied.ok()
                      ? std::optional<double>(a.embodied.value().total_mt)
                      : std::nullopt);
  }
  return out;
}

PipelineResult run_pipeline(const PipelineConfig& cfg) {
  PipelineResult out;
  auto generated = top500::generate_list(cfg.generator);
  out.records = std::move(generated.records);
  out.categories = std::move(generated.categories);

  auto run_scenario = [&](top500::Scenario s) {
    ScenarioResults r;
    r.scenario = s;
    r.assessments = assess_scenario(out.records, s);
    r.operational = operational_series(r.assessments);
    r.embodied = embodied_series(r.assessments);
    r.coverage = count_coverage(r.assessments);
    return r;
  };
  out.baseline = run_scenario(top500::Scenario::kTop500Org);
  out.enhanced = run_scenario(top500::Scenario::kTop500PlusPublic);

  out.op_interpolated =
      interpolate_gaps(out.enhanced.operational, cfg.interpolation);
  out.emb_interpolated =
      interpolate_gaps(out.enhanced.embodied, cfg.interpolation);

  out.op_total_covered_mt = out.enhanced.total(true);
  out.emb_total_covered_mt = out.enhanced.total(false);
  out.op_total_full_mt = util::sum(out.op_interpolated.values);
  out.emb_total_full_mt = util::sum(out.emb_interpolated.values);

  double perf_pflops = 0.0;
  for (const auto& r : out.records) {
    perf_pflops += r.rmax_tflops / util::kTFlopsPerPFlop;
  }
  out.projection =
      project(out.op_total_full_mt / 1000.0, out.emb_total_full_mt / 1000.0,
              perf_pflops, cfg.projection);
  return out;
}

}  // namespace easyc::analysis
