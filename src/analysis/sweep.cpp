#include "analysis/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "analysis/sensitivity.hpp"
#include "util/ascii.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace easyc::analysis {

namespace {

// Cell names embed axis values; six significant decimals round-trips
// every value the grammar can express while keeping names stable (two
// values that collide at this precision are rejected as duplicates by
// ScenarioSet registration, never silently merged).
std::string format_axis_value(double v) { return util::format_double(v, 6); }

std::string endpoint_name(SweepAxis axis, double value) {
  return "sweep/axis/" + std::string(axis_name(axis)) + "=" +
         format_axis_value(value);
}

// One multi-valued axis's tornado endpoints. Deriving expansion, the
// retained-results map, and the tornado reduction from this single
// helper keeps their cell names structurally incapable of diverging.
struct AxisEndpoints {
  SweepAxis axis = SweepAxis::kAci;
  double low = 0.0;
  double high = 0.0;
  std::string low_name;
  std::string high_name;
};

std::vector<AxisEndpoints> tornado_endpoints(const SweepSpec& spec) {
  std::vector<AxisEndpoints> out;
  for (const auto& a : spec.axes) {
    if (a.values.size() < 2) continue;
    const auto [lo, hi] =
        std::minmax_element(a.values.begin(), a.values.end());
    out.push_back({a.axis, *lo, *hi, endpoint_name(a.axis, *lo),
                   endpoint_name(a.axis, *hi)});
  }
  return out;
}

constexpr std::string_view kBaseCellName = "sweep/base";

// Physical-range guard for axis values, applied at parse time so a
// meaningless spec fails with a grammar-level message naming the axis
// and value instead of surfacing later from ScenarioSet validation
// (which stays in place as the backstop for hand-built SweepSpecs).
const char* axis_range_complaint(SweepAxis axis, double v) {
  switch (axis) {
    case SweepAxis::kAci:
      if (!(v >= 0.0)) return "grid intensity (gCO2e/kWh) must be >= 0";
      break;
    case SweepAxis::kPue:
      if (!(v >= 1.0)) return "PUE must be >= 1 (facility draws at least IT power)";
      break;
    case SweepAxis::kFab:
      if (!(v >= 0.0)) return "fab intensity (kgCO2e/kWh) must be >= 0";
      break;
    case SweepAxis::kUtilization:
      if (!(v > 0.0 && v <= 1.0)) return "utilization must be in (0,1]";
      break;
    case SweepAxis::kLifetime:
      if (!(v > 0.0)) return "lifetime (years) must be > 0";
      break;
  }
  return nullptr;
}

}  // namespace

std::string_view axis_name(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kAci: return "aci";
    case SweepAxis::kPue: return "pue";
    case SweepAxis::kFab: return "fab";
    case SweepAxis::kUtilization: return "util";
    case SweepAxis::kLifetime: return "life";
  }
  return "?";
}

std::optional<SweepAxis> axis_from_name(std::string_view name) {
  if (name == "aci") return SweepAxis::kAci;
  if (name == "pue") return SweepAxis::kPue;
  if (name == "fab") return SweepAxis::kFab;
  if (name == "util" || name == "utilization") return SweepAxis::kUtilization;
  if (name == "life" || name == "lifetime") return SweepAxis::kLifetime;
  return std::nullopt;
}

ScenarioSpec apply_axis(ScenarioSpec spec, SweepAxis axis, double value) {
  switch (axis) {
    case SweepAxis::kAci: spec.aci_override_g_kwh = value; break;
    case SweepAxis::kPue: spec.pue_override = value; break;
    case SweepAxis::kFab: spec.fab_aci_kg_kwh = value; break;
    case SweepAxis::kUtilization: spec.default_utilization = value; break;
    case SweepAxis::kLifetime: spec.service_years = value; break;
  }
  return spec;
}

std::optional<double> axis_value(const ScenarioSpec& spec, SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kAci: return spec.aci_override_g_kwh;
    case SweepAxis::kPue: return spec.pue_override;
    case SweepAxis::kFab: return spec.fab_aci_kg_kwh;
    case SweepAxis::kUtilization: return spec.default_utilization;
    case SweepAxis::kLifetime: return spec.service_years;
  }
  return std::nullopt;
}

std::string_view cell_kind_name(SweepCellKind kind) {
  switch (kind) {
    case SweepCellKind::kBase: return "base";
    case SweepCellKind::kAxisEndpoint: return "axis";
    case SweepCellKind::kGrid: return "grid";
    case SweepCellKind::kMonteCarlo: return "mc";
  }
  return "?";
}

SweepCellKind cell_kind_from_name(std::string_view cell_name) {
  if (cell_name == kBaseCellName) return SweepCellKind::kBase;
  if (util::starts_with(cell_name, "sweep/axis/")) {
    return SweepCellKind::kAxisEndpoint;
  }
  if (util::starts_with(cell_name, "sweep/grid/")) return SweepCellKind::kGrid;
  if (util::starts_with(cell_name, "sweep/mc/")) {
    return SweepCellKind::kMonteCarlo;
  }
  throw util::Error("'" + std::string(cell_name) +
                    "' is not a sweep cell name");
}

SweepSpec SweepSpec::parse(std::string_view text, ScenarioSpec base) {
  SweepSpec spec;
  spec.base = std::move(base);

  auto fail = [&](const std::string& why) {
    throw util::ParseError("sweep spec: " + why);
  };

  for (const auto& raw_part : util::split(text, ';')) {
    const std::string part(util::trim(raw_part));
    if (part.empty()) fail("empty part (stray ';'?)");
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      fail("'" + part + "' is not of the form axis=values");
    }
    const std::string key(util::trim(part.substr(0, eq)));
    const std::string value(util::trim(part.substr(eq + 1)));
    if (value.empty()) fail("axis '" + key + "' has no values");

    if (key == "mc") {
      if (spec.monte_carlo) fail("mc given twice");
      const auto at = value.find('@');
      if (at == std::string::npos) {
        fail("mc wants draws@seed, got '" + value + "'");
      }
      const auto draws = util::parse_int(util::trim(value.substr(0, at)));
      const auto seed = util::parse_int(util::trim(value.substr(at + 1)));
      if (!draws || *draws <= 0) fail("mc draw count must be positive");
      if (!seed || *seed < 0) fail("mc seed must be a non-negative integer");
      MonteCarloSpec mc;
      mc.draws = static_cast<size_t>(*draws);
      mc.seed = static_cast<uint64_t>(*seed);
      spec.monte_carlo = mc;
      continue;
    }

    const auto axis = axis_from_name(key);
    if (!axis) {
      fail("unknown axis '" + key +
           "' (axes: aci, pue, fab, util, life; plus mc=draws@seed)");
    }
    for (const auto& existing : spec.axes) {
      if (existing.axis == *axis) fail("axis '" + key + "' given twice");
    }

    AxisValues av;
    av.axis = *axis;
    const auto colon_fields = util::split(value, ':');
    if (colon_fields.size() == 3) {
      // lo:hi:n linspace.
      const auto lo = util::parse_double(colon_fields[0]);
      const auto hi = util::parse_double(colon_fields[1]);
      const auto n = util::parse_int(colon_fields[2]);
      if (!lo || !hi || !n) {
        fail("axis '" + key + "': malformed range '" + value + "'");
      }
      if (*n < 2) fail("axis '" + key + "': linspace needs n >= 2");
      if (*lo == *hi) fail("axis '" + key + "': degenerate range lo == hi");
      for (long long i = 0; i < *n; ++i) {
        av.values.push_back(*lo + (*hi - *lo) * static_cast<double>(i) /
                                      static_cast<double>(*n - 1));
      }
    } else if (colon_fields.size() == 1) {
      for (const auto& field : util::split(value, ',')) {
        const auto v = util::parse_double(field);
        if (!v) {
          fail("axis '" + key + "': '" + std::string(util::trim(field)) +
               "' is not a number");
        }
        av.values.push_back(*v);
      }
    } else {
      fail("axis '" + key + "': values are v1,v2,... or lo:hi:n");
    }
    // Range-check the materialized values, so a meaningless list entry
    // and a linspace that strays out of range (e.g. "life=0:8:5", which
    // starts at a zero-year lifetime) fail identically.
    for (const double v : av.values) {
      if (const char* complaint = axis_range_complaint(*axis, v)) {
        fail("axis '" + key + "': value " + format_axis_value(v) + " — " +
             complaint);
      }
    }
    for (size_t i = 0; i < av.values.size(); ++i) {
      for (size_t j = i + 1; j < av.values.size(); ++j) {
        if (format_axis_value(av.values[i]) ==
            format_axis_value(av.values[j])) {
          fail("axis '" + key + "': duplicate value " +
               format_axis_value(av.values[i]));
        }
      }
    }
    spec.axes.push_back(std::move(av));
  }

  if (spec.axes.empty() && !spec.monte_carlo) {
    fail("no axes and no mc draws — nothing to sweep");
  }
  return spec;
}

size_t SweepSpec::grid_cells() const {
  if (axes.empty()) return 0;
  size_t n = 1;
  for (const auto& a : axes) n *= a.values.size();
  return n;
}

size_t SweepSpec::total_cells() const {
  return 1 + 2 * tornado_endpoints(*this).size() + grid_cells() +
         (monte_carlo ? monte_carlo->draws : 0);
}

ScenarioSet expand_sweep(const SweepSpec& spec) {
  ScenarioSet set;

  ScenarioSpec base = spec.base;
  const std::string base_label = base.name;
  base.name = std::string(kBaseCellName);
  base.description = "sweep base (" + base_label + ")";
  set.add(base);

  // Tornado endpoints: one axis at its extreme, everything else at base.
  for (const auto& e : tornado_endpoints(spec)) {
    for (const auto& [v, name] : {std::pair{e.low, e.low_name},
                                  std::pair{e.high, e.high_name}}) {
      ScenarioSpec s = apply_axis(spec.base, e.axis, v);
      s.name = name;
      s.description = "sweep endpoint: " + std::string(axis_name(e.axis)) +
                      "=" + format_axis_value(v) + " over " + base_label;
      set.add(std::move(s));
    }
  }

  // The cartesian grid, odometer order (last declared axis fastest).
  if (!spec.axes.empty()) {
    std::vector<size_t> idx(spec.axes.size(), 0);
    for (size_t cell = 0; cell < spec.grid_cells(); ++cell) {
      ScenarioSpec s = spec.base;
      std::string suffix;
      for (size_t a = 0; a < spec.axes.size(); ++a) {
        const double v = spec.axes[a].values[idx[a]];
        s = apply_axis(std::move(s), spec.axes[a].axis, v);
        suffix += (a == 0 ? "" : "/") + std::string(axis_name(spec.axes[a].axis)) +
                  "=" + format_axis_value(v);
      }
      s.name = "sweep/grid/" + suffix;
      s.description = "sweep grid cell over " + base_label;
      set.add(std::move(s));
      for (size_t a = spec.axes.size(); a-- > 0;) {
        if (++idx[a] < spec.axes[a].values.size()) break;
        idx[a] = 0;
      }
    }
  }

  // Seeded Monte-Carlo draws from the uncertainty module's prior model.
  // Each draw forks its own RNG stream, so draw k is the same scenario
  // for every thread count and independent of every other draw.
  if (spec.monte_carlo) {
    const auto& mc = *spec.monte_carlo;
    const util::Rng root(mc.seed);
    const model::EasyCOptions base_options = spec.base.to_options();
    for (size_t i = 0; i < mc.draws; ++i) {
      util::Rng rng = root.fork(i);
      double aci_scale = 1.0;
      const model::EasyCOptions drawn =
          model::perturb_options(base_options, mc.ranges, rng, &aci_scale);
      ScenarioSpec s = spec.base;
      s.default_utilization = drawn.operational.default_utilization;
      s.fab_aci_kg_kwh = drawn.embodied.fab_aci_kg_kwh;
      if (s.aci_override_g_kwh) {
        s.aci_override_g_kwh = *s.aci_override_g_kwh * aci_scale;
      }
      char tag[32];
      std::snprintf(tag, sizeof(tag), "%04zu", i);
      s.name = std::string("sweep/mc/") + tag;
      s.description = "prior draw " + std::string(tag) + " (seed " +
                      std::to_string(mc.seed) + ") over " + base_label;
      set.add(std::move(s));
    }
  }

  return set;
}

namespace {

// Aggregates are exported at full double precision (%.17g): the
// acceptance contract diffs exported files across thread counts and
// cache states byte for byte, and a lossless decimal form also lets
// downstream plotting recover the exact computed values.
std::string format_exact(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string format_fingerprint(uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

CsvCellSink::CsvCellSink(std::ostream& out) : out_(out) {
  out_ << util::csv_format_row(columns());
}

const std::vector<std::string>& CsvCellSink::columns() {
  static const std::vector<std::string> kColumns = {
      "round",       "index",       "kind",
      "scenario",    "fingerprint", "aci_g_kwh",
      "pue",         "fab_kg_kwh",  "utilization",
      "service_years", "op_total_mt", "emb_total_mt",
      "annualized_mt", "op_covered",  "emb_covered",
      "description"};
  return kColumns;
}

void CsvCellSink::cell(size_t round, size_t index, const SweepCell& c) {
  std::vector<std::string> fields;
  fields.reserve(columns().size());
  fields.push_back(std::to_string(round));
  fields.push_back(std::to_string(index));
  fields.push_back(std::string(cell_kind_name(c.kind)));
  fields.push_back(c.name);
  fields.push_back(format_fingerprint(c.fingerprint));
  for (size_t a = 0; a < kNumSweepAxes; ++a) {
    const auto& v = c.coords[a];
    fields.push_back(v ? format_exact(*v) : "");
  }
  fields.push_back(format_exact(c.op_total_mt));
  fields.push_back(format_exact(c.emb_total_mt));
  fields.push_back(format_exact(c.annualized_mt));
  fields.push_back(std::to_string(c.op_covered));
  fields.push_back(std::to_string(c.emb_covered));
  fields.push_back(c.description);

  out_ << util::csv_format_row(fields);
}

SweepEngine::SweepEngine() : SweepEngine(Options{}) {}

SweepEngine::SweepEngine(Options options) : options_(options) {
  if (options_.engine == nullptr) {
    AssessmentEngine::Options eopt;
    eopt.pool = options_.pool;
    owned_engine_ = std::make_unique<AssessmentEngine>(eopt);
    options_.engine = owned_engine_.get();
  }
}

AssessmentEngine& SweepEngine::engine() { return *options_.engine; }

SweepReport SweepEngine::run(
    const std::vector<top500::SystemRecord>& records, const SweepSpec& spec,
    SweepCellSink* sink) {
  return run_round(records, spec, /*round=*/0, sink);
}

SweepReport SweepEngine::run_round(
    const std::vector<top500::SystemRecord>& records, const SweepSpec& spec,
    size_t round, SweepCellSink* sink) {
  const ScenarioSet expanded = expand_sweep(spec);
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);

  SweepReport report;
  report.base_name = spec.base.name;
  report.num_records = records.size();
  report.grid_cells = spec.grid_cells();
  report.mc_cells = spec.monte_carlo ? spec.monte_carlo->draws : 0;
  report.axis_cells =
      expanded.size() - 1 - report.grid_cells - report.mc_cells;

  // The tornado reduction needs full per-record series for every
  // endpoint; everything else is reduced to aggregates as its batch
  // completes, keeping peak memory at one batch.
  const std::vector<AxisEndpoints> endpoints = tornado_endpoints(spec);
  std::map<std::string, ScenarioResults> retained;
  for (const auto& e : endpoints) {
    retained[e.low_name] = {};
    retained[e.high_name] = {};
  }

  const par::CacheStats before = options_.engine->cache_stats();

  report.cells.reserve(expanded.size());
  for (size_t start = 0; start < expanded.size(); start += batch_size) {
    ScenarioSet batch;
    const size_t end = std::min(start + batch_size, expanded.size());
    for (size_t i = start; i < end; ++i) batch.add(expanded.specs()[i]);

    EditionAssessment assessed = options_.engine->assess(records, batch);
    ++report.batches;
    for (auto& r : assessed.scenarios) {
      SweepCell cell;
      cell.name = r.spec.name;
      cell.description = r.spec.description;
      cell.kind = cell_kind_from_name(r.spec.name);
      cell.fingerprint = r.spec.fingerprint();
      for (size_t a = 0; a < kNumSweepAxes; ++a) {
        cell.coords[a] = axis_value(r.spec, static_cast<SweepAxis>(a));
      }
      cell.op_total_mt = r.total(true);
      cell.emb_total_mt = r.total(false);
      cell.annualized_mt = r.annualized_total_mt();
      cell.op_covered = r.coverage.operational;
      cell.emb_covered = r.coverage.embodied;
      report.cells.push_back(std::move(cell));
      // Batches are ordered engine calls, so emission order is the
      // expansion order for every thread count / batch size.
      if (sink != nullptr) {
        sink->cell(round, report.cells.size() - 1, report.cells.back());
      }
      if (auto it = retained.find(r.spec.name); it != retained.end()) {
        it->second = std::move(r);
      }
    }
  }

  report.base = report.cells.front();

  for (const auto& e : endpoints) {
    const ScenarioResults& low = retained.at(e.low_name);
    const ScenarioResults& high = retained.at(e.high_name);
    // The Fig.-9 kernel generalizes to any two scenarios over one list:
    // low plays Baseline, high plays Baseline+PublicInfo.
    const SensitivityReport s = sensitivity(records, low, high);

    TornadoRow row;
    row.axis = e.axis;
    row.low = e.low;
    row.high = e.high;
    row.low_annualized_mt = low.annualized_total_mt();
    row.high_annualized_mt = high.annualized_total_mt();
    row.swing_mt = row.high_annualized_mt - row.low_annualized_mt;
    row.swing_pct = report.base.annualized_mt == 0.0
                        ? 0.0
                        : row.swing_mt / report.base.annualized_mt * 100.0;
    row.op_total_pct = s.op_total_pct;
    row.emb_total_pct = s.emb_total_pct;
    row.op_max_abs_pct = s.op_max_abs_pct;
    row.emb_max_abs_pct = s.emb_max_abs_pct;
    report.tornado.push_back(row);
  }

  std::vector<double> annualized, op, emb;
  annualized.reserve(report.cells.size());
  op.reserve(report.cells.size());
  emb.reserve(report.cells.size());
  for (const auto& c : report.cells) {
    annualized.push_back(c.annualized_mt);
    op.push_back(c.op_total_mt);
    emb.push_back(c.emb_total_mt);
  }
  report.annualized_mt = util::summarize(annualized);
  report.op_total_mt = util::summarize(op);
  report.emb_total_mt = util::summarize(emb);

  report.cache = options_.engine->cache_stats().since(before);
  return report;
}

namespace {

// Pick and densify the top-K axes of `spec` (mutating it) from the last
// round's report. An axis's marginal response is the mean annualized
// total over the grid cells pinned at each of its values (every other
// axis marginalized out); the steepest adjacent pair gets `points` new
// values strictly inside it, keeping every old value so the previous
// grid re-runs as pure cache lookups. Returns the per-axis trace; empty
// when nothing could be refined. Deterministic: ranking is
// stable-sorted (spec order breaks |swing| ties), segment ties resolve
// to the lower pair, and inputs are deterministic cell aggregates.
std::vector<RefinedAxis> refine_spec(SweepSpec& spec, const SweepReport& last,
                                     const RefineOptions& opt) {
  std::vector<const TornadoRow*> ranked;
  ranked.reserve(last.tornado.size());
  for (const auto& row : last.tornado) ranked.push_back(&row);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const TornadoRow* a, const TornadoRow* b) {
                     return std::abs(a->swing_mt) > std::abs(b->swing_mt);
                   });

  std::vector<RefinedAxis> out;
  for (const TornadoRow* row : ranked) {
    if (out.size() >= opt.top_axes) break;
    const auto axis_it =
        std::find_if(spec.axes.begin(), spec.axes.end(),
                     [&](const AxisValues& a) { return a.axis == row->axis; });
    if (axis_it == spec.axes.end()) continue;

    std::vector<double> sorted = axis_it->values;
    std::sort(sorted.begin(), sorted.end());

    std::vector<double> marginal(sorted.size(), 0.0);
    std::vector<size_t> counts(sorted.size(), 0);
    for (const auto& cell : last.cells) {
      if (cell.kind != SweepCellKind::kGrid) continue;
      const auto v = cell.coords[static_cast<size_t>(row->axis)];
      if (!v) continue;
      for (size_t i = 0; i < sorted.size(); ++i) {
        // Exact compare is safe: the coordinate is the same double the
        // expansion applied, which came from this axis's value list.
        if (*v == sorted[i]) {
          marginal[i] += cell.annualized_mt;
          ++counts[i];
          break;
        }
      }
    }
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (counts[i] > 0) marginal[i] /= static_cast<double>(counts[i]);
    }

    size_t seg = 0;
    double steepest = -1.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double delta = std::abs(marginal[i + 1] - marginal[i]);
      if (delta > steepest) {
        steepest = delta;
        seg = i;
      }
    }

    RefinedAxis refined;
    refined.axis = row->axis;
    refined.seg_lo = sorted[seg];
    refined.seg_hi = sorted[seg + 1];
    refined.swing_mt = row->swing_mt;

    // New values that collide with an existing one at naming precision
    // are skipped: the axis is already as dense as names can express.
    std::set<std::string> existing;
    for (const double v : sorted) existing.insert(format_axis_value(v));
    std::vector<double> merged = sorted;
    for (size_t j = 1; j <= opt.points; ++j) {
      const double v = refined.seg_lo +
                       (refined.seg_hi - refined.seg_lo) *
                           static_cast<double>(j) /
                           static_cast<double>(opt.points + 1);
      if (existing.insert(format_axis_value(v)).second) {
        merged.push_back(v);
        ++refined.added;
      }
    }
    if (refined.added == 0) continue;
    std::sort(merged.begin(), merged.end());
    axis_it->values = std::move(merged);
    out.push_back(refined);
  }
  return out;
}

}  // namespace

SweepReport SweepEngine::run_adaptive(
    const std::vector<top500::SystemRecord>& records, const SweepSpec& spec,
    const RefineOptions& refine, SweepCellSink* sink) {
  const par::CacheStats before = options_.engine->cache_stats();

  SweepSpec current = spec;
  SweepReport report = run_round(records, current, 0, sink);
  report.refinement.push_back(
      RefinementRound{0, report.cells.size(), {}, report.cache});

  for (size_t round = 1; round <= refine.rounds; ++round) {
    std::vector<RefinedAxis> refined = refine_spec(current, report, refine);
    if (refined.empty()) break;  // nothing left to densify

    std::vector<RefinementRound> trace = std::move(report.refinement);
    report = run_round(records, current, round, sink);
    trace.push_back(RefinementRound{round, report.cells.size(),
                                    std::move(refined), report.cache});
    report.refinement = std::move(trace);
  }

  report.cache = options_.engine->cache_stats().since(before);
  return report;
}

std::string render_sweep_report(const SweepReport& r) {
  using util::format_double;
  std::string out = "Parameter sweep — " + std::to_string(r.cells.size()) +
                    " derived scenarios over " +
                    std::to_string(r.num_records) + " systems\n";
  out += "  base: " + r.base_name + " — annualized " +
         format_double(r.base.annualized_mt, 0) +
         " MT CO2e/yr (operational " + format_double(r.base.op_total_mt, 0) +
         " MT/yr, embodied " + format_double(r.base.emb_total_mt, 0) +
         " MT)\n";
  out += "  cells: 1 base + " + std::to_string(r.axis_cells) +
         " axis endpoints + " + std::to_string(r.grid_cells) + " grid + " +
         std::to_string(r.mc_cells) + " monte-carlo\n\n";

  out += "Tornado — one axis swept, all others at base:\n";
  if (r.tornado.empty()) {
    out += "  (no multi-valued axes)\n";
  } else {
    util::TextTable t({"Axis", "Low", "High", "Ann@low MT", "Ann@high MT",
                       "Swing MT", "Swing %", "Max |op| %", "Max |emb| %"});
    for (const auto& row : r.tornado) {
      t.add_row({std::string(axis_name(row.axis)),
                 format_axis_value(row.low), format_axis_value(row.high),
                 format_double(row.low_annualized_mt, 0),
                 format_double(row.high_annualized_mt, 0),
                 format_double(row.swing_mt, 0),
                 format_double(row.swing_pct, 1),
                 format_double(row.op_max_abs_pct, 1),
                 format_double(row.emb_max_abs_pct, 1)});
    }
    out += t.render();
  }

  // The refinement trace renders only its deterministic fields (each
  // round's cache stats stay off stdout, like the sweep-level stats).
  if (r.refinement.size() > 1) {
    out += "\nAdaptive refinement — " +
           std::to_string(r.refinement.size() - 1) +
           " round(s) after the coarse grid:\n";
    for (const auto& round : r.refinement) {
      if (round.round == 0) {
        out += "  round 0 (coarse): " + std::to_string(round.cells) +
               " cells\n";
        continue;
      }
      std::string axes;
      for (const auto& ax : round.refined) {
        if (!axes.empty()) axes += ", ";
        axes += std::string(axis_name(ax.axis)) + " in [" +
                format_axis_value(ax.seg_lo) + ", " +
                format_axis_value(ax.seg_hi) + "] +" +
                std::to_string(ax.added) + " values";
      }
      out += "  round " + std::to_string(round.round) + ": " + axes + " — " +
             std::to_string(round.cells) + " cells\n";
    }
  }

  auto dist_line = [](const util::Summary& s) {
    return "min " + format_double(s.min, 0) + " | p05 " +
           format_double(s.p05, 0) + " | median " +
           format_double(s.median, 0) + " | mean " +
           format_double(s.mean, 0) + " | p95 " + format_double(s.p95, 0) +
           " | max " + format_double(s.max, 0);
  };
  out += "\nFleet totals across all " + std::to_string(r.cells.size()) +
         " cells:\n";
  out += "  annualized (MT CO2e/yr):  " + dist_line(r.annualized_mt) + "\n";
  out += "  operational (MT CO2e/yr): " + dist_line(r.op_total_mt) + "\n";
  out += "  embodied (MT CO2e):       " + dist_line(r.emb_total_mt) + "\n";
  return out;
}

}  // namespace easyc::analysis
