#include "analysis/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "analysis/sensitivity.hpp"
#include "util/ascii.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/strings.hpp"

namespace easyc::analysis {

namespace {

// Cell names embed axis values; six significant decimals round-trips
// every value the grammar can express while keeping names stable (two
// values that collide at this precision are rejected as duplicates by
// ScenarioSet registration, never silently merged).
std::string format_axis_value(double v) { return util::format_double(v, 6); }

std::string endpoint_name(SweepAxis axis, double value) {
  return "sweep/axis/" + std::string(axis_name(axis)) + "=" +
         format_axis_value(value);
}

constexpr std::string_view kBaseCellName = "sweep/base";

// Physical-range guard for axis values, applied at parse time so a
// meaningless spec fails with a grammar-level message naming the axis
// and value instead of surfacing later from ScenarioSet validation
// (which stays in place as the backstop for hand-built SweepSpecs).
const char* axis_range_complaint(SweepAxis axis, double v) {
  switch (axis) {
    case SweepAxis::kAci:
      if (!(v >= 0.0)) return "grid intensity (gCO2e/kWh) must be >= 0";
      break;
    case SweepAxis::kPue:
      if (!(v >= 1.0)) return "PUE must be >= 1 (facility draws at least IT power)";
      break;
    case SweepAxis::kFab:
      if (!(v >= 0.0)) return "fab intensity (kgCO2e/kWh) must be >= 0";
      break;
    case SweepAxis::kUtilization:
      if (!(v > 0.0 && v <= 1.0)) return "utilization must be in (0,1]";
      break;
    case SweepAxis::kLifetime:
      if (!(v > 0.0)) return "lifetime (years) must be > 0";
      break;
  }
  return nullptr;
}

}  // namespace

std::vector<TornadoEndpoint> tornado_endpoints(const SweepSpec& spec) {
  std::vector<TornadoEndpoint> out;
  for (const auto& a : spec.axes) {
    if (a.values.size() < 2) continue;
    const auto [lo, hi] =
        std::minmax_element(a.values.begin(), a.values.end());
    out.push_back({a.axis, *lo, *hi, endpoint_name(a.axis, *lo),
                   endpoint_name(a.axis, *hi)});
  }
  return out;
}

std::string_view axis_name(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kAci: return "aci";
    case SweepAxis::kPue: return "pue";
    case SweepAxis::kFab: return "fab";
    case SweepAxis::kUtilization: return "util";
    case SweepAxis::kLifetime: return "life";
  }
  return "?";
}

std::optional<SweepAxis> axis_from_name(std::string_view name) {
  if (name == "aci") return SweepAxis::kAci;
  if (name == "pue") return SweepAxis::kPue;
  if (name == "fab") return SweepAxis::kFab;
  if (name == "util" || name == "utilization") return SweepAxis::kUtilization;
  if (name == "life" || name == "lifetime") return SweepAxis::kLifetime;
  return std::nullopt;
}

ScenarioSpec apply_axis(ScenarioSpec spec, SweepAxis axis, double value) {
  switch (axis) {
    case SweepAxis::kAci: spec.aci_override_g_kwh = value; break;
    case SweepAxis::kPue: spec.pue_override = value; break;
    case SweepAxis::kFab: spec.fab_aci_kg_kwh = value; break;
    case SweepAxis::kUtilization: spec.default_utilization = value; break;
    case SweepAxis::kLifetime: spec.service_years = value; break;
  }
  return spec;
}

std::optional<double> axis_value(const ScenarioSpec& spec, SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kAci: return spec.aci_override_g_kwh;
    case SweepAxis::kPue: return spec.pue_override;
    case SweepAxis::kFab: return spec.fab_aci_kg_kwh;
    case SweepAxis::kUtilization: return spec.default_utilization;
    case SweepAxis::kLifetime: return spec.service_years;
  }
  return std::nullopt;
}

std::string_view cell_kind_name(SweepCellKind kind) {
  switch (kind) {
    case SweepCellKind::kBase: return "base";
    case SweepCellKind::kAxisEndpoint: return "axis";
    case SweepCellKind::kGrid: return "grid";
    case SweepCellKind::kMonteCarlo: return "mc";
  }
  return "?";
}

SweepCellKind cell_kind_from_name(std::string_view cell_name) {
  if (cell_name == kBaseCellName) return SweepCellKind::kBase;
  if (util::starts_with(cell_name, "sweep/axis/")) {
    return SweepCellKind::kAxisEndpoint;
  }
  if (util::starts_with(cell_name, "sweep/grid/")) return SweepCellKind::kGrid;
  if (util::starts_with(cell_name, "sweep/mc/")) {
    return SweepCellKind::kMonteCarlo;
  }
  throw util::Error("'" + std::string(cell_name) +
                    "' is not a sweep cell name");
}

SweepSpec SweepSpec::parse(std::string_view text, ScenarioSpec base) {
  SweepSpec spec;
  spec.base = std::move(base);

  auto fail = [&](const std::string& why) {
    throw util::ParseError("sweep spec: " + why);
  };

  for (const auto& raw_part : util::split(text, ';')) {
    const std::string part(util::trim(raw_part));
    if (part.empty()) fail("empty part (stray ';'?)");
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      fail("'" + part + "' is not of the form axis=values");
    }
    const std::string key(util::trim(part.substr(0, eq)));
    const std::string value(util::trim(part.substr(eq + 1)));
    if (value.empty()) fail("axis '" + key + "' has no values");

    if (key == "mc") {
      if (spec.monte_carlo) fail("mc given twice");
      const auto at = value.find('@');
      if (at == std::string::npos) {
        fail("mc wants draws@seed, got '" + value + "'");
      }
      const auto draws = util::parse_int(util::trim(value.substr(0, at)));
      const auto seed = util::parse_int(util::trim(value.substr(at + 1)));
      if (!draws || *draws <= 0) fail("mc draw count must be positive");
      if (!seed || *seed < 0) fail("mc seed must be a non-negative integer");
      MonteCarloSpec mc;
      mc.draws = static_cast<size_t>(*draws);
      mc.seed = static_cast<uint64_t>(*seed);
      spec.monte_carlo = mc;
      continue;
    }

    const auto axis = axis_from_name(key);
    if (!axis) {
      fail("unknown axis '" + key +
           "' (axes: aci, pue, fab, util, life; plus mc=draws@seed)");
    }
    for (const auto& existing : spec.axes) {
      if (existing.axis == *axis) fail("axis '" + key + "' given twice");
    }

    AxisValues av;
    av.axis = *axis;
    const auto colon_fields = util::split(value, ':');
    if (colon_fields.size() == 3) {
      // lo:hi:n linspace.
      const auto lo = util::parse_double(colon_fields[0]);
      const auto hi = util::parse_double(colon_fields[1]);
      const auto n = util::parse_int(colon_fields[2]);
      if (!lo || !hi || !n) {
        fail("axis '" + key + "': malformed range '" + value + "'");
      }
      if (*n < 2) fail("axis '" + key + "': linspace needs n >= 2");
      if (*lo == *hi) fail("axis '" + key + "': degenerate range lo == hi");
      for (long long i = 0; i < *n; ++i) {
        av.values.push_back(*lo + (*hi - *lo) * static_cast<double>(i) /
                                      static_cast<double>(*n - 1));
      }
    } else if (colon_fields.size() == 1) {
      for (const auto& field : util::split(value, ',')) {
        const auto v = util::parse_double(field);
        if (!v) {
          fail("axis '" + key + "': '" + std::string(util::trim(field)) +
               "' is not a number");
        }
        av.values.push_back(*v);
      }
    } else {
      fail("axis '" + key + "': values are v1,v2,... or lo:hi:n");
    }
    // Range-check the materialized values, so a meaningless list entry
    // and a linspace that strays out of range (e.g. "life=0:8:5", which
    // starts at a zero-year lifetime) fail identically.
    for (const double v : av.values) {
      if (const char* complaint = axis_range_complaint(*axis, v)) {
        fail("axis '" + key + "': value " + format_axis_value(v) + " — " +
             complaint);
      }
    }
    for (size_t i = 0; i < av.values.size(); ++i) {
      for (size_t j = i + 1; j < av.values.size(); ++j) {
        if (format_axis_value(av.values[i]) ==
            format_axis_value(av.values[j])) {
          fail("axis '" + key + "': duplicate value " +
               format_axis_value(av.values[i]));
        }
      }
    }
    spec.axes.push_back(std::move(av));
  }

  if (spec.axes.empty() && !spec.monte_carlo) {
    fail("no axes and no mc draws — nothing to sweep");
  }
  return spec;
}

size_t SweepSpec::grid_cells() const {
  if (axes.empty()) return 0;
  size_t n = 1;
  for (const auto& a : axes) n *= a.values.size();
  return n;
}

size_t SweepSpec::total_cells() const {
  return 1 + 2 * tornado_endpoints(*this).size() + grid_cells() +
         (monte_carlo ? monte_carlo->draws : 0);
}

SweepExpansion::SweepExpansion(SweepSpec spec) : spec_(std::move(spec)) {
  base_label_ = spec_.base.name;

  // Fail before the first engine call: physical-range and
  // naming-precision violations used to surface from ScenarioSet
  // registration during materialization; the lazy expansion checks the
  // axis lists (the only unbounded input) upfront instead. Per-cell
  // spec validation still runs when a cell joins a batch ScenarioSet.
  for (const auto& a : spec_.axes) {
    for (const double v : a.values) {
      if (const char* complaint = axis_range_complaint(a.axis, v)) {
        throw util::Error("sweep axis '" + std::string(axis_name(a.axis)) +
                          "': value " + format_axis_value(v) + " — " +
                          complaint);
      }
    }
    for (size_t i = 0; i < a.values.size(); ++i) {
      for (size_t j = i + 1; j < a.values.size(); ++j) {
        if (format_axis_value(a.values[i]) ==
            format_axis_value(a.values[j])) {
          throw util::Error("sweep axis '" + std::string(axis_name(a.axis)) +
                            "': duplicate value " +
                            format_axis_value(a.values[i]) +
                            " at cell-naming precision");
        }
      }
    }
  }

  for (const auto& e : tornado_endpoints(spec_)) {
    endpoints_.push_back({e.axis, e.low, e.low_name});
    endpoints_.push_back({e.axis, e.high, e.high_name});
  }

  grid_ = spec_.grid_cells();
  strides_.assign(spec_.axes.size(), 1);
  for (size_t a = spec_.axes.size(); a-- > 1;) {
    strides_[a - 1] = strides_[a] * spec_.axes[a].values.size();
  }
  total_ = 1 + endpoints_.size() + grid_ +
           (spec_.monte_carlo ? spec_.monte_carlo->draws : 0);
}

ScenarioSpec SweepExpansion::cell(size_t index) const {
  EASYC_REQUIRE(index < total_, "sweep cell index out of range");
  if (index == 0) {
    ScenarioSpec base = spec_.base;
    base.name = std::string(kBaseCellName);
    base.description = "sweep base (" + base_label_ + ")";
    return base;
  }
  index -= 1;

  // Tornado endpoints: one axis at its extreme, everything else at base.
  if (index < endpoints_.size()) {
    const Endpoint& e = endpoints_[index];
    ScenarioSpec s = apply_axis(spec_.base, e.axis, e.value);
    s.name = e.name;
    s.description = "sweep endpoint: " + std::string(axis_name(e.axis)) +
                    "=" + format_axis_value(e.value) + " over " + base_label_;
    return s;
  }
  index -= endpoints_.size();

  // The cartesian grid, odometer order (last declared axis fastest).
  if (index < grid_) {
    ScenarioSpec s = spec_.base;
    std::string suffix;
    for (size_t a = 0; a < spec_.axes.size(); ++a) {
      const double v = spec_.axes[a].values[grid_value_index(index, a)];
      s = apply_axis(std::move(s), spec_.axes[a].axis, v);
      suffix += (a == 0 ? "" : "/") +
                std::string(axis_name(spec_.axes[a].axis)) + "=" +
                format_axis_value(v);
    }
    s.name = "sweep/grid/" + suffix;
    s.description = "sweep grid cell over " + base_label_;
    return s;
  }
  index -= grid_;

  // Seeded Monte-Carlo draw `index` from the uncertainty module's prior
  // model. Each draw forks its own RNG stream, so draw k is the same
  // scenario regardless of which other cells are ever derived.
  const auto& mc = *spec_.monte_carlo;
  util::Rng rng = util::Rng(mc.seed).fork(index);
  double aci_scale = 1.0;
  const model::EasyCOptions drawn = model::perturb_options(
      spec_.base.to_options(), mc.ranges, rng, &aci_scale);
  ScenarioSpec s = spec_.base;
  s.default_utilization = drawn.operational.default_utilization;
  s.fab_aci_kg_kwh = drawn.embodied.fab_aci_kg_kwh;
  if (s.aci_override_g_kwh) {
    s.aci_override_g_kwh = *s.aci_override_g_kwh * aci_scale;
  }
  char tag[32];
  std::snprintf(tag, sizeof(tag), "%04zu", index);
  s.name = std::string("sweep/mc/") + tag;
  s.description = "prior draw " + std::string(tag) + " (seed " +
                  std::to_string(mc.seed) + ") over " + base_label_;
  return s;
}

ScenarioSet expand_sweep(const SweepSpec& spec) {
  const SweepExpansion expansion(spec);
  ScenarioSet set;
  for (size_t i = 0; i < expansion.size(); ++i) set.add(expansion.cell(i));
  return set;
}

namespace {

// Aggregates are exported at full double precision via the pinned
// util::format_exact (%.17g) helper: the acceptance contract diffs
// exported files across thread counts and cache states byte for byte,
// and a lossless decimal form also lets downstream plotting recover
// the exact computed values.
using util::format_exact;

std::string format_fingerprint(uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

// Fail-fast contract of every cell sink: raise the moment the output
// stream reports failure, so a full disk at cell 10 of a million aborts
// the sweep instead of silently burning the remaining run.
void require_stream(const std::ostream& out, const char* what) {
  if (!out) {
    throw util::Error(std::string(what) +
                      ": output stream failed (disk full or closed?)");
  }
}

}  // namespace

std::string_view sweep_stats_mode_name(SweepStatsMode mode) {
  switch (mode) {
    case SweepStatsMode::kAuto: return "auto";
    case SweepStatsMode::kExact: return "exact";
    case SweepStatsMode::kStreaming: return "streaming";
  }
  return "?";
}

std::optional<SweepStatsMode> sweep_stats_mode_from_name(
    std::string_view name) {
  if (name == "auto") return SweepStatsMode::kAuto;
  if (name == "exact") return SweepStatsMode::kExact;
  if (name == "streaming") return SweepStatsMode::kStreaming;
  return std::nullopt;
}

SweepCell make_sweep_cell(const ScenarioResults& r) {
  SweepCell cell;
  cell.name = r.spec.name;
  cell.description = r.spec.description;
  cell.kind = cell_kind_from_name(r.spec.name);
  cell.fingerprint = r.spec.fingerprint();
  for (size_t a = 0; a < kNumSweepAxes; ++a) {
    cell.coords[a] = axis_value(r.spec, static_cast<SweepAxis>(a));
  }
  cell.op_total_mt = r.total(true);
  cell.emb_total_mt = r.total(false);
  cell.annualized_mt = r.annualized_total_mt();
  cell.op_covered = r.coverage.operational;
  cell.emb_covered = r.coverage.embodied;
  return cell;
}

SweepReduction::SweepReduction(bool streaming) : streaming_(streaming) {}

void SweepReduction::add(const SweepCell& cell) {
  ++count_;
  if (streaming_) {
    s_annualized_.add(cell.annualized_mt);
    s_op_.add(cell.op_total_mt);
    s_emb_.add(cell.emb_total_mt);
  } else {
    v_annualized_.push_back(cell.annualized_mt);
    v_op_.push_back(cell.op_total_mt);
    v_emb_.push_back(cell.emb_total_mt);
  }
}

void SweepReduction::merge(const SweepReduction& other) {
  if (streaming_ != other.streaming_) {
    throw util::Error(
        "SweepReduction::merge: cannot combine exact and streaming "
        "reductions");
  }
  count_ += other.count_;
  if (streaming_) {
    s_annualized_.merge(other.s_annualized_);
    s_op_.merge(other.s_op_);
    s_emb_.merge(other.s_emb_);
  } else {
    // Concatenation in shard order reproduces the single-process feed
    // order exactly, so the eventual summarize() is byte-identical.
    v_annualized_.insert(v_annualized_.end(), other.v_annualized_.begin(),
                         other.v_annualized_.end());
    v_op_.insert(v_op_.end(), other.v_op_.begin(), other.v_op_.end());
    v_emb_.insert(v_emb_.end(), other.v_emb_.begin(), other.v_emb_.end());
  }
}

void SweepReduction::encode(util::BinaryWriter& w) const {
  w.boolean(streaming_);
  w.u64(count_);
  if (streaming_) {
    s_annualized_.encode(w);
    s_op_.encode(w);
    s_emb_.encode(w);
  } else {
    for (const auto* v : {&v_annualized_, &v_op_, &v_emb_}) {
      w.u64(v->size());
      for (const double x : *v) w.f64(x);
    }
  }
}

SweepReduction SweepReduction::decode(util::BinaryReader& r) {
  SweepReduction out(r.boolean());
  out.count_ = static_cast<size_t>(r.u64());
  if (out.streaming_) {
    out.s_annualized_ = util::StreamingSummary::decode(r);
    out.s_op_ = util::StreamingSummary::decode(r);
    out.s_emb_ = util::StreamingSummary::decode(r);
  } else {
    for (auto* v : {&out.v_annualized_, &out.v_op_, &out.v_emb_}) {
      const uint64_t n = r.u64();
      if (n != out.count_) {
        throw util::CodecError(
            "sweep reduction series holds " + std::to_string(n) +
            " values for " + std::to_string(out.count_) + " cells");
      }
      v->reserve(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n; ++i) v->push_back(r.f64());
    }
  }
  return out;
}

util::Summary SweepReduction::annualized_mt() const {
  return streaming_ ? s_annualized_.summary() : util::summarize(v_annualized_);
}

util::Summary SweepReduction::op_total_mt() const {
  return streaming_ ? s_op_.summary() : util::summarize(v_op_);
}

util::Summary SweepReduction::emb_total_mt() const {
  return streaming_ ? s_emb_.summary() : util::summarize(v_emb_);
}

CsvCellSink::CsvCellSink(std::ostream& out) : out_(out) {
  out_ << util::csv_format_row(columns());
  require_stream(out_, "cell CSV export");
}

const std::vector<std::string>& CsvCellSink::columns() {
  static const std::vector<std::string> kColumns = {
      "round",       "index",       "kind",
      "scenario",    "fingerprint", "aci_g_kwh",
      "pue",         "fab_kg_kwh",  "utilization",
      "service_years", "op_total_mt", "emb_total_mt",
      "annualized_mt", "op_covered",  "emb_covered",
      "description"};
  return kColumns;
}

void CsvCellSink::cell(size_t round, size_t index, const SweepCell& c) {
  std::vector<std::string> fields;
  fields.reserve(columns().size());
  fields.push_back(std::to_string(round));
  fields.push_back(std::to_string(index));
  fields.push_back(std::string(cell_kind_name(c.kind)));
  fields.push_back(c.name);
  fields.push_back(format_fingerprint(c.fingerprint));
  for (size_t a = 0; a < kNumSweepAxes; ++a) {
    const auto& v = c.coords[a];
    fields.push_back(v ? format_exact(*v) : "");
  }
  fields.push_back(format_exact(c.op_total_mt));
  fields.push_back(format_exact(c.emb_total_mt));
  fields.push_back(format_exact(c.annualized_mt));
  fields.push_back(std::to_string(c.op_covered));
  fields.push_back(std::to_string(c.emb_covered));
  fields.push_back(c.description);

  out_ << util::csv_format_row(fields);
  require_stream(out_, "cell CSV export");
}

TeeCellSink::TeeCellSink(std::vector<SweepCellSink*> sinks)
    : sinks_(std::move(sinks)) {
  for (const auto* s : sinks_) {
    EASYC_REQUIRE(s != nullptr, "TeeCellSink: null sink");
  }
}

void TeeCellSink::cell(size_t round, size_t index, const SweepCell& c) {
  for (auto* s : sinks_) s->cell(round, index, c);
}

BinaryCellSink::BinaryCellSink(std::ostream& out, size_t block_cells)
    : out_(out), block_cells_(std::max<size_t>(1, block_cells)) {
  util::BinaryWriter header;
  header.raw(kMagic);
  header.u32(kFormatVersion);
  const auto& cols = CsvCellSink::columns();
  header.u32(static_cast<uint32_t>(cols.size()));
  for (const auto& c : cols) header.str(c);
  out_.write(header.bytes().data(),
             static_cast<std::streamsize>(header.size()));
  require_stream(out_, "binary cell export (header)");
}

BinaryCellSink::~BinaryCellSink() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; call finish() to observe flush errors.
  }
}

void BinaryCellSink::cell(size_t round, size_t index, const SweepCell& c) {
  EASYC_REQUIRE(!finished_, "BinaryCellSink: cell() after finish()");
  buffer_.push_back(Row{round, index, c});
  if (buffer_.size() >= block_cells_) flush_block();
}

void BinaryCellSink::flush_block() {
  if (buffer_.empty()) return;
  // Columnar payload: one contiguous run per column (README.md spec).
  util::BinaryWriter payload;
  for (const auto& r : buffer_) payload.u64(r.round);
  for (const auto& r : buffer_) payload.u64(r.index);
  for (const auto& r : buffer_) payload.u8(static_cast<uint8_t>(r.cell.kind));
  for (const auto& r : buffer_) payload.u64(r.cell.fingerprint);
  for (size_t a = 0; a < kNumSweepAxes; ++a) {
    for (const auto& r : buffer_) {
      payload.boolean(r.cell.coords[a].has_value());
    }
    for (const auto& r : buffer_) {
      if (r.cell.coords[a]) payload.f64(*r.cell.coords[a]);
    }
  }
  for (const auto& r : buffer_) payload.f64(r.cell.op_total_mt);
  for (const auto& r : buffer_) payload.f64(r.cell.emb_total_mt);
  for (const auto& r : buffer_) payload.f64(r.cell.annualized_mt);
  for (const auto& r : buffer_) {
    payload.u32(static_cast<uint32_t>(r.cell.op_covered));
  }
  for (const auto& r : buffer_) {
    payload.u32(static_cast<uint32_t>(r.cell.emb_covered));
  }
  for (const auto& r : buffer_) payload.str(r.cell.name);
  for (const auto& r : buffer_) payload.str(r.cell.description);

  util::BinaryWriter block;
  block.u8('B');
  block.u64(buffer_.size());
  block.u64(payload.size());
  block.u64(util::checksum64(payload.bytes()));
  out_.write(block.bytes().data(), static_cast<std::streamsize>(block.size()));
  out_.write(payload.bytes().data(),
             static_cast<std::streamsize>(payload.size()));
  require_stream(out_, "binary cell export (block)");
  total_ += buffer_.size();
  buffer_.clear();
}

void BinaryCellSink::finish() {
  if (finished_) return;
  flush_block();
  // Footer: 'E', the total cell count, and a checksum over that count —
  // a file cut off anywhere upstream fails decoding as truncated.
  util::BinaryWriter count;
  count.u64(total_);
  util::BinaryWriter footer;
  footer.u8('E');
  footer.raw(count.bytes());
  footer.u64(util::checksum64(count.bytes()));
  out_.write(footer.bytes().data(),
             static_cast<std::streamsize>(footer.size()));
  out_.flush();
  require_stream(out_, "binary cell export (footer)");
  finished_ = true;
}

size_t read_binary_cells(std::istream& in, SweepCellSink& sink,
                         bool expect_eof) {
  using util::read_stream_exact;
  if (read_stream_exact(in, BinaryCellSink::kMagic.size(), "magic") !=
      BinaryCellSink::kMagic) {
    throw util::CodecError("not an EZCELLS cell export (bad magic)");
  }
  {
    const std::string bytes = read_stream_exact(in, 4, "format version");
    const uint32_t version = util::BinaryReader(bytes).u32();
    if (version != BinaryCellSink::kFormatVersion) {
      throw util::CodecError(
          "cell export format version " + std::to_string(version) +
          ", expected " + std::to_string(BinaryCellSink::kFormatVersion));
    }
  }
  const auto& cols = CsvCellSink::columns();
  {
    const std::string bytes = read_stream_exact(in, 4, "column count");
    const uint32_t ncols = util::BinaryReader(bytes).u32();
    if (ncols != cols.size()) {
      throw util::CodecError("cell export has " + std::to_string(ncols) +
                             " columns, expected " +
                             std::to_string(cols.size()));
    }
  }
  for (const auto& expected : cols) {
    const std::string len_bytes = read_stream_exact(in, 8, "column name length");
    const uint64_t len = util::BinaryReader(len_bytes).u64();
    if (len > 4096) {
      throw util::CodecError("implausible column name length " +
                             std::to_string(len));
    }
    const std::string name =
        read_stream_exact(in, static_cast<size_t>(len), "column name");
    if (name != expected) {
      throw util::CodecError("cell export column '" + name +
                             "' where '" + expected + "' was expected");
    }
  }

  size_t cells = 0;
  for (;;) {
    const std::string tag = read_stream_exact(in, 1, "block tag");
    if (tag[0] == 'E') {
      const std::string body = read_stream_exact(in, 16, "footer");
      util::BinaryReader r(body);
      const uint64_t total = r.u64();
      const uint64_t sum = r.u64();
      if (sum != util::checksum64(std::string_view(body).substr(0, 8))) {
        throw util::CodecError("cell export footer checksum mismatch");
      }
      if (total != cells) {
        throw util::CodecError(
            "cell export footer claims " + std::to_string(total) +
            " cells, decoded " + std::to_string(cells));
      }
      if (expect_eof && in.peek() != std::char_traits<char>::eof()) {
        throw util::CodecError("trailing bytes after cell export footer");
      }
      return cells;
    }
    if (tag[0] != 'B') {
      throw util::CodecError("unknown cell export block tag " +
                             std::to_string(static_cast<int>(tag[0])));
    }
    const std::string head = read_stream_exact(in, 24, "block header");
    util::BinaryReader hr(head);
    const uint64_t n = hr.u64();
    const uint64_t payload_size = hr.u64();
    const uint64_t sum = hr.u64();
    if (n == 0) throw util::CodecError("empty cell export block");
    if (payload_size > (1ULL << 32)) {
      throw util::CodecError("implausible cell block size " +
                             std::to_string(payload_size));
    }
    // The round column alone is 8 bytes per cell, so a count the
    // payload cannot hold is corruption the checksum can't see (the
    // count lives in the block header) — reject before sizing any
    // decode buffers by it.
    if (n > payload_size / 8) {
      throw util::CodecError("cell block claims " + std::to_string(n) +
                             " cells in " + std::to_string(payload_size) +
                             " payload bytes");
    }
    const std::string payload =
        read_stream_exact(in, static_cast<size_t>(payload_size), "block payload");
    if (util::checksum64(payload) != sum) {
      throw util::CodecError("cell block checksum mismatch");
    }

    util::BinaryReader r(payload);
    const size_t count = static_cast<size_t>(n);
    std::vector<size_t> rounds(count), indices(count);
    std::vector<SweepCell> block(count);
    for (auto& v : rounds) v = static_cast<size_t>(r.u64());
    for (auto& v : indices) v = static_cast<size_t>(r.u64());
    for (auto& c : block) {
      const uint8_t k = r.u8();
      if (k > static_cast<uint8_t>(SweepCellKind::kMonteCarlo)) {
        throw util::CodecError("bad cell kind byte " + std::to_string(k));
      }
      c.kind = static_cast<SweepCellKind>(k);
    }
    for (auto& c : block) c.fingerprint = r.u64();
    for (size_t a = 0; a < kNumSweepAxes; ++a) {
      std::vector<bool> present(count);
      for (size_t i = 0; i < count; ++i) present[i] = r.boolean();
      for (size_t i = 0; i < count; ++i) {
        if (present[i]) block[i].coords[a] = r.f64();
      }
    }
    for (auto& c : block) c.op_total_mt = r.f64();
    for (auto& c : block) c.emb_total_mt = r.f64();
    for (auto& c : block) c.annualized_mt = r.f64();
    for (auto& c : block) c.op_covered = static_cast<int>(r.u32());
    for (auto& c : block) c.emb_covered = static_cast<int>(r.u32());
    for (auto& c : block) c.name = r.str();
    for (auto& c : block) c.description = r.str();
    if (!r.exhausted()) {
      throw util::CodecError("trailing bytes in cell export block");
    }
    for (size_t i = 0; i < count; ++i) {
      sink.cell(rounds[i], indices[i], block[i]);
    }
    cells += count;
  }
}

SweepEngine::SweepEngine() : SweepEngine(Options{}) {}

SweepEngine::SweepEngine(Options options) : options_(options) {
  if (options_.engine == nullptr) {
    AssessmentEngine::Options eopt;
    eopt.pool = options_.pool;
    owned_engine_ = std::make_unique<AssessmentEngine>(eopt);
    options_.engine = owned_engine_.get();
  }
}

AssessmentEngine& SweepEngine::engine() { return *options_.engine; }

SweepReport SweepEngine::run(
    const std::vector<top500::SystemRecord>& records, const SweepSpec& spec,
    SweepCellSink* sink) {
  return run_round(records, spec, /*round=*/0, sink);
}

SweepReport SweepEngine::run_round(
    const std::vector<top500::SystemRecord>& records, const SweepSpec& spec,
    size_t round, SweepCellSink* sink) {
  const SweepExpansion expansion(spec);
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);

  SweepReport report;
  report.base_name = spec.base.name;
  report.num_records = records.size();
  report.grid_cells = spec.grid_cells();
  report.mc_cells = spec.monte_carlo ? spec.monte_carlo->draws : 0;
  report.axis_cells =
      expansion.size() - 1 - report.grid_cells - report.mc_cells;
  report.total_cells = expansion.size();
  const bool streaming =
      options_.stats == SweepStatsMode::kStreaming ||
      (options_.stats == SweepStatsMode::kAuto &&
       expansion.size() >= kStreamingStatsThreshold);
  report.streaming_stats = streaming;

  // The tornado reduction needs full per-record series for every
  // endpoint; everything else is reduced to aggregates as its batch
  // completes, keeping peak memory at one batch.
  const std::vector<TornadoEndpoint> endpoints = tornado_endpoints(spec);
  std::map<std::string, ScenarioResults> retained;
  for (const auto& e : endpoints) {
    retained[e.low_name] = {};
    retained[e.high_name] = {};
  }

  // Grid-marginal accumulators, one per multi-valued axis. Buckets are
  // fed in expansion order, so sums (and the resulting means) are
  // bit-identical to the historical recomputation over report.cells.
  struct MarginalAcc {
    size_t axis_pos = 0;                 // index into spec.axes
    std::vector<double> sorted;          // axis values, ascending
    std::vector<size_t> decl_to_sorted;  // declaration idx -> sorted idx
    std::vector<double> sums;
    std::vector<size_t> counts;
  };
  std::vector<MarginalAcc> marginals;
  for (size_t a = 0; a < spec.axes.size(); ++a) {
    const auto& values = spec.axes[a].values;
    if (values.size() < 2) continue;
    MarginalAcc acc;
    acc.axis_pos = a;
    acc.sorted = values;
    std::sort(acc.sorted.begin(), acc.sorted.end());
    acc.decl_to_sorted.resize(values.size());
    for (size_t j = 0; j < values.size(); ++j) {
      acc.decl_to_sorted[j] = static_cast<size_t>(
          std::lower_bound(acc.sorted.begin(), acc.sorted.end(), values[j]) -
          acc.sorted.begin());
    }
    acc.sums.assign(acc.sorted.size(), 0.0);
    acc.counts.assign(acc.sorted.size(), 0);
    marginals.push_back(std::move(acc));
  }

  SweepReduction reduction(streaming);
  const par::CacheStats before = options_.engine->cache_stats();

  if (options_.retain_cells) report.cells.reserve(expansion.size());
  size_t cell_index = 0;
  for (size_t start = 0; start < expansion.size(); start += batch_size) {
    ScenarioSet batch;
    const size_t end = std::min(start + batch_size, expansion.size());
    for (size_t i = start; i < end; ++i) batch.add(expansion.cell(i));

    EditionAssessment assessed = options_.engine->assess(records, batch);
    ++report.batches;
    for (auto& r : assessed.scenarios) {
      SweepCell cell = make_sweep_cell(r);
      const size_t index = cell_index++;
      if (index == 0) report.base = cell;
      reduction.add(cell);
      if (cell.kind == SweepCellKind::kGrid) {
        const size_t g = index - expansion.grid_begin();
        for (auto& acc : marginals) {
          const size_t si =
              acc.decl_to_sorted[expansion.grid_value_index(g, acc.axis_pos)];
          acc.sums[si] += cell.annualized_mt;
          ++acc.counts[si];
        }
      }
      // Batches are ordered engine calls, so emission order is the
      // expansion order for every thread count / batch size.
      if (sink != nullptr) sink->cell(round, index, cell);
      if (auto it = retained.find(r.spec.name); it != retained.end()) {
        it->second = std::move(r);
      }
      if (options_.retain_cells) report.cells.push_back(std::move(cell));
    }
  }

  for (const auto& e : endpoints) {
    const ScenarioResults& low = retained.at(e.low_name);
    const ScenarioResults& high = retained.at(e.high_name);
    // The Fig.-9 kernel generalizes to any two scenarios over one list:
    // low plays Baseline, high plays Baseline+PublicInfo.
    const SensitivityReport s = sensitivity(records, low, high);

    TornadoRow row;
    row.axis = e.axis;
    row.low = e.low;
    row.high = e.high;
    row.low_annualized_mt = low.annualized_total_mt();
    row.high_annualized_mt = high.annualized_total_mt();
    row.swing_mt = row.high_annualized_mt - row.low_annualized_mt;
    row.swing_pct = report.base.annualized_mt == 0.0
                        ? 0.0
                        : row.swing_mt / report.base.annualized_mt * 100.0;
    row.op_total_pct = s.op_total_pct;
    row.emb_total_pct = s.emb_total_pct;
    row.op_max_abs_pct = s.op_max_abs_pct;
    row.emb_max_abs_pct = s.emb_max_abs_pct;
    report.tornado.push_back(row);
  }

  report.annualized_mt = reduction.annualized_mt();
  report.op_total_mt = reduction.op_total_mt();
  report.emb_total_mt = reduction.emb_total_mt();

  for (auto& acc : marginals) {
    AxisMarginal m;
    m.axis = spec.axes[acc.axis_pos].axis;
    m.values = std::move(acc.sorted);
    m.mean_annualized.assign(m.values.size(), 0.0);
    for (size_t i = 0; i < m.values.size(); ++i) {
      if (acc.counts[i] > 0) {
        m.mean_annualized[i] =
            acc.sums[i] / static_cast<double>(acc.counts[i]);
      }
    }
    report.grid_marginals.push_back(std::move(m));
  }

  report.cache = options_.engine->cache_stats().since(before);
  return report;
}

namespace {

// Pick and densify the top-K axes of `spec` (mutating it) from the last
// round's report. An axis's marginal response (SweepReport::
// grid_marginals, accumulated from the cell stream — so refinement
// works with cell retention off) is the mean annualized total over the
// grid cells pinned at each of its values; the steepest adjacent pair
// gets `points` new values strictly inside it, keeping every old value
// so the previous grid re-runs as pure cache lookups. Returns the
// per-axis trace; empty when nothing could be refined. Deterministic:
// ranking is stable-sorted (spec order breaks |swing| ties), segment
// ties resolve to the lower pair, and inputs are deterministic cell
// aggregates.
std::vector<RefinedAxis> refine_spec(SweepSpec& spec, const SweepReport& last,
                                     const RefineOptions& opt) {
  std::vector<const TornadoRow*> ranked;
  ranked.reserve(last.tornado.size());
  for (const auto& row : last.tornado) ranked.push_back(&row);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const TornadoRow* a, const TornadoRow* b) {
                     return std::abs(a->swing_mt) > std::abs(b->swing_mt);
                   });

  std::vector<RefinedAxis> out;
  for (const TornadoRow* row : ranked) {
    if (out.size() >= opt.top_axes) break;
    const auto axis_it =
        std::find_if(spec.axes.begin(), spec.axes.end(),
                     [&](const AxisValues& a) { return a.axis == row->axis; });
    if (axis_it == spec.axes.end()) continue;

    const auto marg_it =
        std::find_if(last.grid_marginals.begin(), last.grid_marginals.end(),
                     [&](const AxisMarginal& m) { return m.axis == row->axis; });
    if (marg_it == last.grid_marginals.end()) continue;
    const std::vector<double>& sorted = marg_it->values;
    const std::vector<double>& marginal = marg_it->mean_annualized;
    if (sorted.size() < 2) continue;

    size_t seg = 0;
    double steepest = -1.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double delta = std::abs(marginal[i + 1] - marginal[i]);
      if (delta > steepest) {
        steepest = delta;
        seg = i;
      }
    }

    RefinedAxis refined;
    refined.axis = row->axis;
    refined.seg_lo = sorted[seg];
    refined.seg_hi = sorted[seg + 1];
    refined.swing_mt = row->swing_mt;

    // New values that collide with an existing one at naming precision
    // are skipped: the axis is already as dense as names can express.
    std::set<std::string> existing;
    for (const double v : sorted) existing.insert(format_axis_value(v));
    std::vector<double> merged = sorted;
    for (size_t j = 1; j <= opt.points; ++j) {
      const double v = refined.seg_lo +
                       (refined.seg_hi - refined.seg_lo) *
                           static_cast<double>(j) /
                           static_cast<double>(opt.points + 1);
      if (existing.insert(format_axis_value(v)).second) {
        merged.push_back(v);
        ++refined.added;
      }
    }
    if (refined.added == 0) continue;
    std::sort(merged.begin(), merged.end());
    axis_it->values = std::move(merged);
    out.push_back(refined);
  }
  return out;
}

}  // namespace

SweepReport SweepEngine::run_adaptive(
    const std::vector<top500::SystemRecord>& records, const SweepSpec& spec,
    const RefineOptions& refine, SweepCellSink* sink) {
  const par::CacheStats before = options_.engine->cache_stats();

  SweepSpec current = spec;
  SweepReport report = run_round(records, current, 0, sink);
  report.refinement.push_back(
      RefinementRound{0, report.total_cells, {}, report.cache});

  for (size_t round = 1; round <= refine.rounds; ++round) {
    std::vector<RefinedAxis> refined = refine_spec(current, report, refine);
    if (refined.empty()) break;  // nothing left to densify

    std::vector<RefinementRound> trace = std::move(report.refinement);
    report = run_round(records, current, round, sink);
    trace.push_back(RefinementRound{round, report.total_cells,
                                    std::move(refined), report.cache});
    report.refinement = std::move(trace);
  }

  report.cache = options_.engine->cache_stats().since(before);
  return report;
}

std::string render_sweep_report(const SweepReport& r) {
  using util::format_double;
  std::string out = "Parameter sweep — " + std::to_string(r.total_cells) +
                    " derived scenarios over " +
                    std::to_string(r.num_records) + " systems\n";
  out += "  base: " + r.base_name + " — annualized " +
         format_double(r.base.annualized_mt, 0) +
         " MT CO2e/yr (operational " + format_double(r.base.op_total_mt, 0) +
         " MT/yr, embodied " + format_double(r.base.emb_total_mt, 0) +
         " MT)\n";
  out += "  cells: 1 base + " + std::to_string(r.axis_cells) +
         " axis endpoints + " + std::to_string(r.grid_cells) + " grid + " +
         std::to_string(r.mc_cells) + " monte-carlo\n\n";

  out += "Tornado — one axis swept, all others at base:\n";
  if (r.tornado.empty()) {
    out += "  (no multi-valued axes)\n";
  } else {
    util::TextTable t({"Axis", "Low", "High", "Ann@low MT", "Ann@high MT",
                       "Swing MT", "Swing %", "Max |op| %", "Max |emb| %"});
    for (const auto& row : r.tornado) {
      t.add_row({std::string(axis_name(row.axis)),
                 format_axis_value(row.low), format_axis_value(row.high),
                 format_double(row.low_annualized_mt, 0),
                 format_double(row.high_annualized_mt, 0),
                 format_double(row.swing_mt, 0),
                 format_double(row.swing_pct, 1),
                 format_double(row.op_max_abs_pct, 1),
                 format_double(row.emb_max_abs_pct, 1)});
    }
    out += t.render();
  }

  // The refinement trace renders only its deterministic fields (each
  // round's cache stats stay off stdout, like the sweep-level stats).
  if (r.refinement.size() > 1) {
    out += "\nAdaptive refinement — " +
           std::to_string(r.refinement.size() - 1) +
           " round(s) after the coarse grid:\n";
    for (const auto& round : r.refinement) {
      if (round.round == 0) {
        out += "  round 0 (coarse): " + std::to_string(round.cells) +
               " cells\n";
        continue;
      }
      std::string axes;
      for (const auto& ax : round.refined) {
        if (!axes.empty()) axes += ", ";
        axes += std::string(axis_name(ax.axis)) + " in [" +
                format_axis_value(ax.seg_lo) + ", " +
                format_axis_value(ax.seg_hi) + "] +" +
                std::to_string(ax.added) + " values";
      }
      out += "  round " + std::to_string(round.round) + ": " + axes + " — " +
             std::to_string(round.cells) + " cells\n";
    }
  }

  auto dist_line = [](const util::Summary& s) {
    return "min " + format_double(s.min, 0) + " | p05 " +
           format_double(s.p05, 0) + " | median " +
           format_double(s.median, 0) + " | mean " +
           format_double(s.mean, 0) + " | p95 " + format_double(s.p95, 0) +
           " | max " + format_double(s.max, 0);
  };
  out += "\nFleet totals across all " + std::to_string(r.total_cells) +
         " cells:\n";
  out += "  annualized (MT CO2e/yr):  " + dist_line(r.annualized_mt) + "\n";
  out += "  operational (MT CO2e/yr): " + dist_line(r.op_total_mt) + "\n";
  out += "  embodied (MT CO2e):       " + dist_line(r.emb_total_mt) + "\n";
  return out;
}

}  // namespace easyc::analysis
