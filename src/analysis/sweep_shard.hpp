// Deterministic multi-process sweep sharding: partition a sweep's
// expanded grid by cell index, run each contiguous shard in its own
// process, and merge the shipped partials into the same SweepReport a
// single process produces.
//
// The partition is the balanced contiguous split of [0, total_cells):
// shard i of N (1-based) owns a range whose length differs by at most
// one cell from any other shard's, and concatenating the shards'
// ranges in shard order reproduces the expansion order exactly. That
// ordering is the whole determinism story — every reduction the sweep
// layer runs is a fold over the expansion order, so a merge that
// replays shards in order feeds the same sequence a single process
// fed, and exact-mode summaries come out byte-identical (streaming
// mode merges its O(1) estimator states instead; see SweepReduction).
//
// A worker emits an `EZPART` partial: a checksummed, versioned,
// self-contained file (util/serialize.hpp primitives) carrying the
// shard's identity (spec + records fingerprints, shard ref, cell
// range), its cells as an embedded EZCELLS stream, the per-axis
// tornado endpoint series the shard owns, and its SweepReduction
// state. The merge step cross-checks every header field against the
// spec it was given and against the sibling partials — a partial from
// a different spec, records list, shard layout, or codec version is
// rejected, never silently blended (README.md documents the full
// layout and rejection matrix).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/sweep.hpp"

namespace easyc::analysis {

/// A 1-based shard reference "i/N": this worker runs shard `index` of
/// `count`. Parsing rejects zero or out-of-range indices ("0/4",
/// "5/4"), zero counts ("3/0"), and anything non-numeric; "N/N" is the
/// valid last shard.
struct ShardRef {
  uint32_t index = 1;  ///< 1-based, in [1, count]
  uint32_t count = 1;

  /// Parse "i/N". Throws util::ParseError with the offending text.
  static ShardRef parse(std::string_view text);
  std::string to_string() const;

  /// The balanced contiguous cell range [begin, end) this shard owns
  /// of an expansion with `total` cells. Ranges of shards 1..N
  /// partition [0, total); when N > total the tail shards are empty
  /// (begin == end), which is still a valid, mergeable shard.
  size_t begin(size_t total) const;
  size_t end(size_t total) const;

  friend bool operator==(const ShardRef&, const ShardRef&) = default;
};

/// EZPART file identity (README.md "Sweep partial file format").
inline constexpr std::string_view kPartMagic = "EZPART\n";
inline constexpr uint32_t kPartFormatVersion = 1;

/// Identity of the sweep a partial belongs to: the base scenario's
/// assessment fingerprint plus its presentation name and service
/// years (both reach rendered output), every axis with its exact
/// value bit patterns, and the Monte-Carlo arm. Two specs with equal
/// fingerprints expand to the same cells in the same order.
uint64_t sweep_spec_fingerprint(const SweepSpec& spec);

/// Order-sensitive fold of every record's content_fingerprint(): the
/// identity of the record list the shard assessed.
uint64_t records_fingerprint(
    const std::vector<top500::SystemRecord>& records);

/// Run shard `ref` of `spec` over `records` on `engine` and stream the
/// EZPART partial to `out`. Batch size and stats mode come from the
/// engine's options; the streaming decision uses the FULL expansion
/// size (not the shard's), so every worker picks the same mode a
/// single process would. When `extra` is non-null it receives the
/// shard's cells (round 0, global expansion indices) as they are
/// assessed. Returns the number of cells assessed (possibly 0).
size_t run_sweep_shard(SweepEngine& engine,
                       const std::vector<top500::SystemRecord>& records,
                       const SweepSpec& spec, ShardRef ref, std::ostream& out,
                       SweepCellSink* extra = nullptr);

struct MergeOptions {
  /// Receives every cell (round 0, expansion order) replayed from the
  /// partials' embedded EZCELLS streams — the merged run's --cells-out.
  SweepCellSink* sink = nullptr;
  /// Fill SweepReport::cells from the replay (off by default: a merge
  /// of million-cell shards should not materialize the grid).
  bool retain_cells = false;
};

/// Merge one complete set of EZPART partials — every shard of one
/// sweep, in any path order — into the SweepReport a single process
/// running `spec` over `records` produces. Exact-mode summaries, the
/// base cell, the tornado table, and everything a sink receives are
/// byte-identical to the single-process run; streaming-mode summaries
/// use the documented approximate P² merge. Throws util::CodecError
/// when any partial has a bad magic/version/checksum, is truncated,
/// or disagrees with `spec`/`records`/its siblings (fingerprints,
/// shard count, duplicate or missing shards, cell ranges, stats
/// mode); the merge rejects, it never blends suspect data.
SweepReport merge_sweep_partials(
    const std::vector<std::string>& paths,
    const std::vector<top500::SystemRecord>& records, const SweepSpec& spec,
    const MergeOptions& options = {});

}  // namespace easyc::analysis
