// End-to-end assessment pipeline: the computation behind every figure
// and table in the paper's evaluation section, run once and shared by
// the benchmark harness, examples, and integration tests.
#pragma once

#include <optional>
#include <vector>

#include "analysis/coverage.hpp"
#include "analysis/interpolate.hpp"
#include "analysis/projection.hpp"
#include "easyc/model.hpp"
#include "top500/generator.hpp"
#include "top500/record.hpp"

namespace easyc::analysis {

/// One model side of one scenario, as a rank-ordered optional series
/// (MT CO2e); nullopt = not covered.
using CarbonSeries = std::vector<std::optional<double>>;

struct ScenarioResults {
  top500::Scenario scenario;
  std::vector<model::SystemAssessment> assessments;
  CarbonSeries operational;  ///< MT CO2e, rank order
  CarbonSeries embodied;
  CoverageCounts coverage;

  double total(bool operational_side) const;   ///< sum of covered systems
  double average(bool operational_side) const; ///< mean over covered
};

struct PipelineResult {
  std::vector<top500::SystemRecord> records;
  std::vector<top500::AccessCategory> categories;

  ScenarioResults baseline;   ///< Top500.org data only
  ScenarioResults enhanced;   ///< + public info

  /// Full-500 series: enhanced coverage completed by interpolation.
  InterpolationResult op_interpolated;
  InterpolationResult emb_interpolated;

  double op_total_covered_mt = 0.0;   ///< paper: 1.37M over 490 systems
  double emb_total_covered_mt = 0.0;  ///< paper: 1.53M over 404 systems
  double op_total_full_mt = 0.0;      ///< paper: 1.39M over 500
  double emb_total_full_mt = 0.0;     ///< paper: 1.88M over 500

  std::vector<ProjectionPoint> projection;
};

struct PipelineConfig {
  top500::GeneratorConfig generator;
  InterpolationOptions interpolation;
  ProjectionConfig projection;
};

/// Run everything. Deterministic for a given config.
PipelineResult run_pipeline(const PipelineConfig& config = {});

/// Extract a CarbonSeries from assessments.
CarbonSeries operational_series(
    const std::vector<model::SystemAssessment>& assessments);
CarbonSeries embodied_series(
    const std::vector<model::SystemAssessment>& assessments);

}  // namespace easyc::analysis
