// End-to-end assessment pipeline: the computation behind every figure
// and table in the paper's evaluation section, run once and shared by
// the benchmark harness, examples, and integration tests.
//
// The pipeline is a thin orchestration over the edition-sharded
// AssessmentEngine (assessment_engine.hpp): it generates the record
// list, hands it to the engine as a single-edition run — every scenario
// registered in the config's ScenarioSet assessed concurrently over one
// thread pool, each (scenario, record) cell memoized under its content
// fingerprint — and then derives the figure stages (interpolation to
// the full 500, totals, projection) from the engine's enhanced-scenario
// output. Multi-edition consumers (analyze_turnover, the measured-growth
// projection) call the same engine over a ListEdition history instead,
// so surviving systems are assessed exactly once across the whole
// history and re-runs are served from the memo cache. The paper's two
// scenarios are always present; examples and benches register arbitrary
// what-if scenarios on top.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "analysis/assessment_engine.hpp"
#include "analysis/coverage.hpp"
#include "analysis/interpolate.hpp"
#include "analysis/projection.hpp"
#include "analysis/scenario.hpp"
#include "easyc/model.hpp"
#include "top500/generator.hpp"
#include "top500/record.hpp"

namespace easyc::analysis {

struct PipelineResult {
  std::vector<top500::SystemRecord> records;
  std::vector<top500::AccessCategory> categories;

  /// One entry per registered scenario, in registration order. The
  /// paper's pair is always present (see PipelineConfig::scenarios).
  std::vector<ScenarioResults> scenarios;

  /// Keyed access. `scenario` throws util::Error for an unknown name;
  /// `find_scenario` returns nullptr instead.
  const ScenarioResults& scenario(std::string_view name) const;
  const ScenarioResults* find_scenario(std::string_view name) const;

  /// The paper's figures: Top500.org data only / + public info.
  const ScenarioResults& baseline() const;
  const ScenarioResults& enhanced() const;

  /// Full-500 series: enhanced coverage completed by interpolation.
  InterpolationResult op_interpolated;
  InterpolationResult emb_interpolated;

  double op_total_covered_mt = 0.0;   ///< paper: 1.37M over 490 systems
  double emb_total_covered_mt = 0.0;  ///< paper: 1.53M over 404 systems
  double op_total_full_mt = 0.0;      ///< paper: 1.39M over 500
  double emb_total_full_mt = 0.0;     ///< paper: 1.88M over 500
  double perf_pflops = 0.0;           ///< aggregate Rmax of the list

  std::vector<ProjectionPoint> projection;
};

struct PipelineConfig {
  top500::GeneratorConfig generator;
  InterpolationOptions interpolation;
  ProjectionConfig projection;
  /// Scenarios to assess. An empty set means ScenarioSet::paper(); the
  /// paper's baseline/enhanced are appended if missing, because the
  /// interpolation, totals, and projection stages derive from enhanced.
  ScenarioSet scenarios;
  /// Pool the engine runs on; null = the process-global pool. Results
  /// are bit-identical for every pool size.
  par::ThreadPool* pool = nullptr;
  /// Engine to run on; null = a private engine on `pool`. Passing a
  /// shared engine keeps its memo cache warm across run_pipeline calls
  /// (an unchanged config re-runs without re-assessing anything).
  /// Results are bit-identical for any cache state.
  AssessmentEngine* engine = nullptr;
};

/// Run everything. Deterministic for a given config.
PipelineResult run_pipeline(const PipelineConfig& config = {});

/// Assess one scenario over a record list and finalize it the same way
/// the engine does (assessments + carbon series + coverage). For
/// callers outside run_pipeline, e.g. the CLI's --top500 mode.
ScenarioResults assess_one_scenario(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioSpec& spec, par::ThreadPool* pool = nullptr);

}  // namespace easyc::analysis
