// End-to-end assessment pipeline: the computation behind every figure
// and table in the paper's evaluation section, run once and shared by
// the benchmark harness, examples, and integration tests.
//
// The pipeline is a scenario engine: it generates the record list once,
// then assesses every scenario registered in the config's ScenarioSet
// concurrently over one thread pool (the per-visibility model inputs are
// computed once and shared read-only across scenarios). The paper's two
// scenarios are always present; examples and benches register arbitrary
// what-if scenarios on top.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "analysis/coverage.hpp"
#include "analysis/interpolate.hpp"
#include "analysis/projection.hpp"
#include "analysis/scenario.hpp"
#include "easyc/model.hpp"
#include "top500/generator.hpp"
#include "top500/record.hpp"

namespace easyc::analysis {

/// One model side of one scenario, as a rank-ordered optional series
/// (MT CO2e); nullopt = not covered.
using CarbonSeries = std::vector<std::optional<double>>;

struct ScenarioResults {
  ScenarioSpec spec;
  std::vector<model::SystemAssessment> assessments;
  CarbonSeries operational;  ///< MT CO2e, rank order
  CarbonSeries embodied;
  CoverageCounts coverage;

  double total(bool operational_side) const;   ///< sum of covered systems
  double average(bool operational_side) const; ///< mean over covered
  /// Covered operational total plus covered embodied total amortized
  /// over the spec's service life (MT CO2e per year).
  double annualized_total_mt() const;
};

struct PipelineResult {
  std::vector<top500::SystemRecord> records;
  std::vector<top500::AccessCategory> categories;

  /// One entry per registered scenario, in registration order. The
  /// paper's pair is always present (see PipelineConfig::scenarios).
  std::vector<ScenarioResults> scenarios;

  /// Keyed access. `scenario` throws util::Error for an unknown name;
  /// `find_scenario` returns nullptr instead.
  const ScenarioResults& scenario(std::string_view name) const;
  const ScenarioResults* find_scenario(std::string_view name) const;

  /// The paper's figures: Top500.org data only / + public info.
  const ScenarioResults& baseline() const;
  const ScenarioResults& enhanced() const;

  /// Full-500 series: enhanced coverage completed by interpolation.
  InterpolationResult op_interpolated;
  InterpolationResult emb_interpolated;

  double op_total_covered_mt = 0.0;   ///< paper: 1.37M over 490 systems
  double emb_total_covered_mt = 0.0;  ///< paper: 1.53M over 404 systems
  double op_total_full_mt = 0.0;      ///< paper: 1.39M over 500
  double emb_total_full_mt = 0.0;     ///< paper: 1.88M over 500

  std::vector<ProjectionPoint> projection;
};

struct PipelineConfig {
  top500::GeneratorConfig generator;
  InterpolationOptions interpolation;
  ProjectionConfig projection;
  /// Scenarios to assess. An empty set means ScenarioSet::paper(); the
  /// paper's baseline/enhanced are appended if missing, because the
  /// interpolation, totals, and projection stages derive from enhanced.
  ScenarioSet scenarios;
  /// Pool the engine runs on; null = the process-global pool. Results
  /// are bit-identical for every pool size.
  par::ThreadPool* pool = nullptr;
};

/// Run everything. Deterministic for a given config.
PipelineResult run_pipeline(const PipelineConfig& config = {});

/// Assess one scenario over a record list and finalize it the same way
/// the engine does (assessments + carbon series + coverage). For
/// callers outside run_pipeline, e.g. the CLI's --top500 mode.
ScenarioResults assess_one_scenario(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioSpec& spec, par::ThreadPool* pool = nullptr);

/// Extract a CarbonSeries from assessments.
CarbonSeries operational_series(
    const std::vector<model::SystemAssessment>& assessments);
CarbonSeries embodied_series(
    const std::vector<model::SystemAssessment>& assessments);

}  // namespace easyc::analysis
