#include "analysis/sensitivity.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace easyc::analysis {

namespace {

std::vector<SystemDelta> deltas(const std::vector<top500::SystemRecord>& recs,
                                const CarbonSeries& base,
                                const CarbonSeries& enh,
                                double* max_abs_pct) {
  std::vector<SystemDelta> out;
  for (size_t i = 0; i < base.size(); ++i) {
    if (!base[i] || !enh[i]) continue;
    SystemDelta d;
    d.rank = recs[i].rank;
    d.delta_mt = *enh[i] - *base[i];
    d.pct = *base[i] == 0.0 ? 0.0 : d.delta_mt / *base[i] * 100.0;
    if (std::fabs(d.pct) > *max_abs_pct) *max_abs_pct = std::fabs(d.pct);
    out.push_back(d);
  }
  return out;
}

}  // namespace

SensitivityReport sensitivity(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioResults& base, const ScenarioResults& enh) {
  SensitivityReport s;
  s.operational = deltas(records, base.operational, enh.operational,
                         &s.op_max_abs_pct);
  s.embodied =
      deltas(records, base.embodied, enh.embodied, &s.emb_max_abs_pct);

  s.op_total_baseline_mt = base.total(true);
  s.op_total_enhanced_mt = enh.total(true);
  s.emb_total_baseline_mt = base.total(false);
  s.emb_total_enhanced_mt = enh.total(false);
  s.op_total_pct =
      util::pct_change(s.op_total_baseline_mt, s.op_total_enhanced_mt);
  s.emb_total_pct =
      util::pct_change(s.emb_total_baseline_mt, s.emb_total_enhanced_mt);
  return s;
}

SensitivityReport sensitivity(const PipelineResult& r) {
  return sensitivity(r.records, r.baseline(), r.enhanced());
}

}  // namespace easyc::analysis
