// Projection of the Top500 carbon footprint through 2030 (paper Figs.
// 10-11).
//
// The paper derives growth rates from list turnover: ~48 new systems
// per cycle brought +5% operational and +1% embodied carbon per cycle,
// i.e. 10.3%/yr operational and 2%/yr embodied annualized.
#pragma once

#include <vector>

namespace easyc::analysis {

struct ProjectionConfig {
  int start_year = 2024;
  int end_year = 2030;
  double op_growth = 0.103;   ///< annualized operational growth
  double emb_growth = 0.02;   ///< annualized embodied growth
  /// Aggregate performance growth (total Rmax of the list), used for
  /// the perf-per-carbon ratio. 13.5%/yr keeps the projected ratio
  /// improving by ~0.2 PFlop/s per thousand MT per year, the rate the
  /// paper reports.
  double perf_growth = 0.135;
  /// "Ideal" scaling for comparison: 2x performance per unit power
  /// every 18 months (Dennard-era expectation).
  double ideal_doubling_months = 18.0;
};

struct ProjectionPoint {
  int year = 2024;
  double operational_kmt = 0.0;   ///< thousand MT CO2e
  double embodied_kmt = 0.0;
  double perf_pflops = 0.0;
  double op_ratio = 0.0;          ///< PFlop/s per thousand MT (operational)
  double emb_ratio = 0.0;         ///< PFlop/s per thousand MT (embodied)
  double ideal_ratio = 0.0;       ///< Dennard-scaling counterfactual
};

/// Project from the measured 2024 baselines.
std::vector<ProjectionPoint> project(double base_op_kmt, double base_emb_kmt,
                                     double base_perf_pflops,
                                     const ProjectionConfig& config = {});

/// Annualize a per-list-cycle growth rate (two cycles per year):
/// (1+per_cycle)^2 - 1. The paper's 5%/cycle -> 10.25%/yr ~ 10.3%.
double annualize_per_cycle_growth(double per_cycle);

}  // namespace easyc::analysis
