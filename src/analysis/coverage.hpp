// Coverage analysis: which systems can be assessed under which data
// scenario (paper Figs. 4-6) and which metrics are missing from which
// source (Table I, Fig. 2).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "easyc/model.hpp"
#include "top500/record.hpp"

namespace easyc::analysis {

/// The paper's rank buckets (Figs. 5/6), plus the 1-500 aggregate.
struct RankRange {
  int lo = 1;
  int hi = 500;
  std::string label() const;
};
const std::vector<RankRange>& rank_ranges();

struct CoverageCounts {
  int operational = 0;  ///< systems with an operational estimate
  int embodied = 0;
  int total = 0;
};

/// Overall coverage under a set of assessments.
CoverageCounts count_coverage(
    const std::vector<model::SystemAssessment>& assessments);

/// Per-rank-range coverage percentage for one model side.
struct RangeCoverage {
  RankRange range;
  double covered_pct = 0.0;
};
std::vector<RangeCoverage> coverage_by_range(
    const std::vector<top500::SystemRecord>& records,
    const std::vector<model::SystemAssessment>& assessments,
    bool operational_side);

/// Table I: per-metric incompleteness counts for a data-visibility
/// level, using each record's disclosure mask.
struct MetricGap {
  model::Metric metric;
  int systems_incomplete = 0;
};
std::vector<MetricGap> table1_gaps(
    const std::vector<top500::SystemRecord>& records,
    top500::DataVisibility visibility);

/// Fig. 2: histogram of systems by number of missing Top500.org data
/// items. Index 0 is the 'None' (complete) bucket; index k>0 counts
/// systems missing exactly k items.
std::array<int, top500::kNumTop500DataItems + 1> fig2_histogram(
    const std::vector<top500::SystemRecord>& records);

/// GHG-protocol coverage over the list: how many systems publish the
/// full inventory the protocol requires. (The paper: operational "few",
/// embodied none. We model the handful of sites with public CSR-style
/// energy disclosures as protocol-assessable for scope 2 only.)
struct GhgCoverage {
  int operational = 0;
  int embodied = 0;
};
GhgCoverage ghg_protocol_coverage(
    const std::vector<top500::SystemRecord>& records);

}  // namespace easyc::analysis
