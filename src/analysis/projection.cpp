#include "analysis/projection.hpp"

#include <cmath>

#include "util/error.hpp"

namespace easyc::analysis {

std::vector<ProjectionPoint> project(double base_op_kmt, double base_emb_kmt,
                                     double base_perf_pflops,
                                     const ProjectionConfig& cfg) {
  EASYC_REQUIRE(base_op_kmt > 0 && base_emb_kmt > 0 && base_perf_pflops > 0,
                "projection baselines must be positive");
  EASYC_REQUIRE(cfg.end_year >= cfg.start_year, "year range must be ordered");

  std::vector<ProjectionPoint> out;
  for (int year = cfg.start_year; year <= cfg.end_year; ++year) {
    const double t = static_cast<double>(year - cfg.start_year);
    ProjectionPoint p;
    p.year = year;
    p.operational_kmt = base_op_kmt * std::pow(1.0 + cfg.op_growth, t);
    p.embodied_kmt = base_emb_kmt * std::pow(1.0 + cfg.emb_growth, t);
    p.perf_pflops = base_perf_pflops * std::pow(1.0 + cfg.perf_growth, t);
    p.op_ratio = p.perf_pflops / p.operational_kmt;
    p.emb_ratio = p.perf_pflops / p.embodied_kmt;
    const double base_ratio = base_perf_pflops / base_op_kmt;
    p.ideal_ratio =
        base_ratio * std::pow(2.0, t * 12.0 / cfg.ideal_doubling_months);
    out.push_back(p);
  }
  return out;
}

double annualize_per_cycle_growth(double per_cycle) {
  return (1.0 + per_cycle) * (1.0 + per_cycle) - 1.0;
}

}  // namespace easyc::analysis
