// Everyday-equivalence statements for carbon totals (paper: the Top500's
// operational carbon equals one year of 325,000 gasoline vehicles or
// 3.5 billion vehicle-miles; embodied equals 439,000 vehicles).
#pragma once

#include <string>

namespace easyc::analysis {

struct Equivalence {
  double vehicles = 0.0;       ///< gasoline-vehicle-years
  double vehicle_miles = 0.0;  ///< passenger-vehicle miles
  double homes = 0.0;          ///< home-electricity-years
};

Equivalence equivalences(double mt_co2e);

/// "325,000 gasoline-powered vehicles / 3.5 billion vehicle miles".
std::string describe_equivalence(double mt_co2e);

}  // namespace easyc::analysis
