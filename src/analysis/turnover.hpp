// Turnover analysis: measure carbon growth from simulated list history.
//
// Reproduces the paper's growth-rate derivation (Section IV-C): assess
// every edition of a simulated list history, difference the full-500
// totals, and annualize the per-cycle growth. The measured rates feed
// the projection (Figs. 10-11) instead of being assumed.
//
// The per-edition assessment runs on the shared AssessmentEngine: all
// (edition, record) cells are sharded over one thread pool and memoized
// by content fingerprint, so the ~452 systems that survive each cycle
// are assessed once across the whole history instead of once per
// edition. The report carries the engine's cache statistics so the
// saving is visible, and results are bit-identical to a serial
// re-assessment loop for any pool size and any cache state.
#pragma once

#include <vector>

#include "analysis/assessment_engine.hpp"
#include "analysis/interpolate.hpp"
#include "analysis/projection.hpp"
#include "top500/history.hpp"

namespace easyc::analysis {

struct EditionFootprint {
  std::string label;
  int num_new = 0;
  double op_total_mt = 0.0;    ///< full 500, enhanced + interpolated
  double emb_total_mt = 0.0;
  double perf_pflops = 0.0;
};

struct TurnoverReport {
  std::vector<EditionFootprint> editions;
  double avg_new_per_cycle = 0.0;
  double op_growth_per_cycle = 0.0;   ///< geometric mean over cycles
  double emb_growth_per_cycle = 0.0;
  double perf_growth_per_cycle = 0.0;
  double op_growth_annualized = 0.0;  ///< (1+cycle)^2 - 1
  double emb_growth_annualized = 0.0;
  double perf_growth_annualized = 0.0;
  /// Engine cache activity during this analysis (hits = assessments
  /// served from the memo table instead of recomputed).
  par::CacheStats cache;
};

struct TurnoverOptions {
  InterpolationOptions interpolation;
  /// Engine to run on; null = a private engine per call. A shared
  /// engine keeps its cache warm across analyses (an unchanged history
  /// re-runs as pure lookups).
  AssessmentEngine* engine = nullptr;
  /// Pool for the private engine (ignored when `engine` is set).
  par::ThreadPool* pool = nullptr;
  /// false = the no-cache ablation arm: every edition re-assessed from
  /// scratch (ignored when `engine` is set). Results are identical.
  bool use_cache = true;
};

/// Assess every edition (enhanced scenario + interpolation to 500) on
/// the engine and compute growth rates.
TurnoverReport analyze_turnover(
    const std::vector<top500::ListEdition>& history,
    const TurnoverOptions& options = {});

/// Projection seeded by the measured history instead of assumed rates:
/// baselines from the first edition's footprint, growth from the
/// measured annualized rates. `base` supplies the year range and the
/// ideal-scaling counterfactual.
std::vector<ProjectionPoint> project_from_turnover(
    const TurnoverReport& report, const ProjectionConfig& base = {});

}  // namespace easyc::analysis
