// Turnover analysis: measure carbon growth from simulated list history.
//
// Reproduces the paper's growth-rate derivation (Section IV-C): assess
// every edition of a simulated list history, difference the full-500
// totals, and annualize the per-cycle growth. The measured rates feed
// the projection (Figs. 10-11) instead of being assumed.
#pragma once

#include <vector>

#include "top500/history.hpp"

namespace easyc::analysis {

struct EditionFootprint {
  std::string label;
  int num_new = 0;
  double op_total_mt = 0.0;    ///< full 500, enhanced + interpolated
  double emb_total_mt = 0.0;
  double perf_pflops = 0.0;
};

struct TurnoverReport {
  std::vector<EditionFootprint> editions;
  double avg_new_per_cycle = 0.0;
  double op_growth_per_cycle = 0.0;   ///< geometric mean over cycles
  double emb_growth_per_cycle = 0.0;
  double op_growth_annualized = 0.0;  ///< (1+cycle)^2 - 1
  double emb_growth_annualized = 0.0;
};

/// Assess every edition (enhanced scenario + interpolation to 500) and
/// compute growth rates.
TurnoverReport analyze_turnover(
    const std::vector<top500::ListEdition>& history);

}  // namespace easyc::analysis
