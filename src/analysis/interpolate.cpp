#include "analysis/interpolate.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace easyc::analysis {

InterpolationResult interpolate_gaps(
    const std::vector<std::optional<double>>& series,
    const InterpolationOptions& opt) {
  EASYC_REQUIRE(opt.peers_per_side > 0, "need at least one peer per side");
  const size_t n = series.size();
  bool any = false;
  for (const auto& v : series) {
    if (v) any = true;
  }
  EASYC_REQUIRE(any, "cannot interpolate an entirely empty series");

  InterpolationResult out;
  out.values.resize(n, 0.0);

  for (size_t i = 0; i < n; ++i) {
    if (series[i]) {
      out.values[i] = *series[i];
      continue;
    }
    out.interpolated_indices.push_back(i);

    // Collect nearest complete peers, skipping other gaps ("if the
    // peers are also incomplete, we use the next closest peers").
    std::vector<double> peer_values;
    std::vector<double> peer_dist;
    int found_below = 0;
    for (size_t j = i; j-- > 0 && found_below < opt.peers_per_side;) {
      if (series[j]) {
        peer_values.push_back(*series[j]);
        peer_dist.push_back(static_cast<double>(i - j));
        ++found_below;
      }
    }
    int found_above = 0;
    for (size_t j = i + 1; j < n && found_above < opt.peers_per_side; ++j) {
      if (series[j]) {
        peer_values.push_back(*series[j]);
        peer_dist.push_back(static_cast<double>(j - i));
        ++found_above;
      }
    }
    EASYC_REQUIRE(!peer_values.empty(), "gap with no complete peers");

    switch (opt.strategy) {
      case InterpolationStrategy::kMean:
        out.values[i] = util::mean(peer_values);
        break;
      case InterpolationStrategy::kMedian:
        out.values[i] = util::median(peer_values);
        break;
      case InterpolationStrategy::kRankWeighted: {
        double wsum = 0.0;
        double acc = 0.0;
        for (size_t k = 0; k < peer_values.size(); ++k) {
          const double w = 1.0 / peer_dist[k];
          wsum += w;
          acc += w * peer_values[k];
        }
        out.values[i] = acc / wsum;
        break;
      }
    }
  }
  return out;
}

FullListSeries interpolate_full_list(
    const std::vector<std::optional<double>>& operational,
    const std::vector<std::optional<double>>& embodied,
    const InterpolationOptions& opt) {
  FullListSeries out;
  out.operational = interpolate_gaps(operational, opt);
  out.embodied = interpolate_gaps(embodied, opt);
  out.op_total_mt = util::sum(out.operational.values);
  out.emb_total_mt = util::sum(out.embodied.values);
  return out;
}

}  // namespace easyc::analysis
