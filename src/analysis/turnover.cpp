#include "analysis/turnover.hpp"

#include <cmath>

#include "analysis/scenario.hpp"
#include "util/error.hpp"

namespace easyc::analysis {

TurnoverReport analyze_turnover(
    const std::vector<top500::ListEdition>& history,
    const TurnoverOptions& opts) {
  EASYC_REQUIRE(history.size() >= 2,
                "turnover analysis needs at least two editions");
  TurnoverReport report;

  AssessmentEngine local_engine(
      {.pool = opts.pool, .cache_enabled = opts.use_cache});
  AssessmentEngine& engine = opts.engine ? *opts.engine : local_engine;
  const par::CacheStats before = engine.cache_stats();

  ScenarioSet enhanced_only;
  enhanced_only.add(scenarios::enhanced());
  const auto assessed = engine.run(history, enhanced_only);

  for (const auto& edition : assessed) {
    const ScenarioResults& enhanced = edition.scenarios.front();
    const FullListSeries full = interpolate_full_list(
        enhanced.operational, enhanced.embodied, opts.interpolation);
    EditionFootprint fp;
    fp.label = edition.label;
    fp.num_new = edition.num_new;
    fp.op_total_mt = full.op_total_mt;
    fp.emb_total_mt = full.emb_total_mt;
    fp.perf_pflops = edition.perf_pflops;
    report.editions.push_back(std::move(fp));
  }
  report.cache = engine.cache_stats().since(before);

  const size_t cycles = report.editions.size() - 1;
  double new_sum = 0.0;
  double op_log = 0.0;
  double emb_log = 0.0;
  double perf_log = 0.0;
  for (size_t i = 1; i < report.editions.size(); ++i) {
    new_sum += report.editions[i].num_new;
    op_log += std::log(report.editions[i].op_total_mt /
                       report.editions[i - 1].op_total_mt);
    emb_log += std::log(report.editions[i].emb_total_mt /
                        report.editions[i - 1].emb_total_mt);
    perf_log += std::log(report.editions[i].perf_pflops /
                         report.editions[i - 1].perf_pflops);
  }
  report.avg_new_per_cycle = new_sum / static_cast<double>(cycles);
  report.op_growth_per_cycle =
      std::exp(op_log / static_cast<double>(cycles)) - 1.0;
  report.emb_growth_per_cycle =
      std::exp(emb_log / static_cast<double>(cycles)) - 1.0;
  report.perf_growth_per_cycle =
      std::exp(perf_log / static_cast<double>(cycles)) - 1.0;
  report.op_growth_annualized =
      annualize_per_cycle_growth(report.op_growth_per_cycle);
  report.emb_growth_annualized =
      annualize_per_cycle_growth(report.emb_growth_per_cycle);
  report.perf_growth_annualized =
      annualize_per_cycle_growth(report.perf_growth_per_cycle);
  return report;
}

std::vector<ProjectionPoint> project_from_turnover(
    const TurnoverReport& report, const ProjectionConfig& base) {
  EASYC_REQUIRE(!report.editions.empty(),
                "projection needs a measured history");
  ProjectionConfig cfg = base;
  cfg.op_growth = report.op_growth_annualized;
  cfg.emb_growth = report.emb_growth_annualized;
  cfg.perf_growth = report.perf_growth_annualized;
  const EditionFootprint& first = report.editions.front();
  return project(first.op_total_mt / 1000.0, first.emb_total_mt / 1000.0,
                 first.perf_pflops, cfg);
}

}  // namespace easyc::analysis
