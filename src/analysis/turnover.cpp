#include "analysis/turnover.hpp"

#include <cmath>

#include "analysis/interpolate.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/projection.hpp"
#include "analysis/scenario.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace easyc::analysis {

TurnoverReport analyze_turnover(
    const std::vector<top500::ListEdition>& history) {
  EASYC_REQUIRE(history.size() >= 2,
                "turnover analysis needs at least two editions");
  TurnoverReport report;

  for (const auto& edition : history) {
    EditionFootprint fp;
    fp.label = edition.label;
    fp.num_new = edition.num_new;

    const auto assessments =
        assess_scenario(edition.records, scenarios::enhanced());
    const auto op = interpolate_gaps(operational_series(assessments));
    const auto emb = interpolate_gaps(embodied_series(assessments));
    fp.op_total_mt = util::sum(op.values);
    fp.emb_total_mt = util::sum(emb.values);
    for (const auto& r : edition.records) {
      fp.perf_pflops += r.rmax_tflops / util::kTFlopsPerPFlop;
    }
    report.editions.push_back(fp);
  }

  const size_t cycles = report.editions.size() - 1;
  double new_sum = 0.0;
  double op_log = 0.0;
  double emb_log = 0.0;
  for (size_t i = 1; i < report.editions.size(); ++i) {
    new_sum += report.editions[i].num_new;
    op_log += std::log(report.editions[i].op_total_mt /
                       report.editions[i - 1].op_total_mt);
    emb_log += std::log(report.editions[i].emb_total_mt /
                        report.editions[i - 1].emb_total_mt);
  }
  report.avg_new_per_cycle = new_sum / static_cast<double>(cycles);
  report.op_growth_per_cycle =
      std::exp(op_log / static_cast<double>(cycles)) - 1.0;
  report.emb_growth_per_cycle =
      std::exp(emb_log / static_cast<double>(cycles)) - 1.0;
  report.op_growth_annualized =
      annualize_per_cycle_growth(report.op_growth_per_cycle);
  report.emb_growth_annualized =
      annualize_per_cycle_growth(report.emb_growth_per_cycle);
  return report;
}

}  // namespace easyc::analysis
