// Dataset auditor: physical- and structural-consistency checks over a
// Top500 record set before it enters the pipeline.
//
// The paper's methodology lives or dies on input quality ("exhaustive
// data collection ... invites the inclusion of inaccurate data"); this
// auditor catches the errors a scraped or hand-assembled list actually
// contains — rank gaps, Rmax above Rpeak, impossible efficiencies,
// unknown countries — and reports them without stopping the pipeline.
#pragma once

#include <string>
#include <vector>

#include "top500/record.hpp"

namespace easyc::analysis {

enum class AuditSeverity {
  kError,    ///< would corrupt pipeline results
  kWarning,  ///< suspicious but usable
};

struct AuditIssue {
  AuditSeverity severity = AuditSeverity::kWarning;
  int rank = 0;            ///< 0 for list-level issues
  std::string message;
};

struct AuditReport {
  std::vector<AuditIssue> issues;
  int errors = 0;
  int warnings = 0;
  bool clean() const { return issues.empty(); }
};

struct AuditOptions {
  /// HPL efficiency envelope, GFlops/W. Anything outside is flagged.
  double min_gflops_per_watt = 0.5;
  double max_gflops_per_watt = 100.0;
  int min_year = 1993;   ///< first Top500 list
  int max_year = 2026;
};

/// Audit a rank-ordered record set.
AuditReport audit_records(const std::vector<top500::SystemRecord>& records,
                          const AuditOptions& options = {});

/// Render the report for humans.
std::string render_audit(const AuditReport& report);

}  // namespace easyc::analysis
