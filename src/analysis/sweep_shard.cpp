#include "analysis/sweep_shard.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <utility>

#include "analysis/sensitivity.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/serialize.hpp"
#include "util/strings.hpp"

namespace easyc::analysis {

namespace {

// Sections (header, tail) are length-prefixed and checksummed
// independently of the embedded EZCELLS stream, so a file cut off or
// bit-flipped anywhere fails decoding as truncation or a checksum
// mismatch — never as silently wrong numbers.
void write_section(std::ostream& out, const util::BinaryWriter& payload,
                   const char* what) {
  util::BinaryWriter head;
  head.u64(payload.size());
  head.u64(util::checksum64(payload.bytes()));
  out.write(head.bytes().data(), static_cast<std::streamsize>(head.size()));
  out.write(payload.bytes().data(),
            static_cast<std::streamsize>(payload.size()));
  if (!out) {
    throw util::Error(std::string(what) +
                      ": output stream failed (disk full or closed?)");
  }
}

std::string read_section(std::istream& in, const char* what) {
  const std::string head = util::read_stream_exact(in, 16, what);
  util::BinaryReader hr(head);
  const uint64_t size = hr.u64();
  const uint64_t sum = hr.u64();
  if (size > (1ULL << 32)) {
    throw util::CodecError(std::string("implausible ") + what + " size " +
                           std::to_string(size));
  }
  const std::string payload =
      util::read_stream_exact(in, static_cast<size_t>(size), what);
  if (util::checksum64(payload) != sum) {
    throw util::CodecError(std::string(what) + " checksum mismatch");
  }
  return payload;
}

void encode_series(util::BinaryWriter& w, const CarbonSeries& s) {
  w.u64(s.size());
  for (const auto& v : s) {
    w.boolean(v.has_value());
    if (v) w.f64(*v);
  }
}

CarbonSeries decode_series(util::BinaryReader& r, size_t expected,
                           const char* what) {
  const uint64_t n = r.u64();
  if (n != expected) {
    throw util::CodecError(std::string(what) + " series holds " +
                           std::to_string(n) + " entries for " +
                           std::to_string(expected) + " records");
  }
  CarbonSeries out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    if (r.boolean()) {
      out.push_back(r.f64());
    } else {
      out.push_back(std::nullopt);
    }
  }
  return out;
}

// Everything merge_sweep_partials needs from one partial's header,
// decoded and checksum-verified but not yet cross-checked.
struct PartialHeader {
  uint64_t spec_fp = 0;
  uint64_t records_fp = 0;
  size_t num_records = 0;
  ShardRef ref;
  size_t cell_begin = 0;
  size_t cell_end = 0;
  size_t total_cells = 0;
  bool streaming = false;
  std::string base_name;
  size_t batches = 0;
};

// Read magic + version + the header section from an already-open
// stream, leaving it positioned at the embedded EZCELLS stream.
PartialHeader read_partial_header(std::istream& in, const std::string& path) {
  auto fail = [&](const std::string& why) {
    throw util::CodecError("partial '" + path + "': " + why);
  };
  if (util::read_stream_exact(in, kPartMagic.size(), "partial magic") !=
      kPartMagic) {
    fail("not an EZPART partial (bad magic)");
  }
  {
    const std::string bytes =
        util::read_stream_exact(in, 4, "partial format version");
    const uint32_t version = util::BinaryReader(bytes).u32();
    if (version != kPartFormatVersion) {
      fail("partial format version " + std::to_string(version) +
           ", expected " + std::to_string(kPartFormatVersion));
    }
  }
  const std::string payload = read_section(in, "partial header");
  util::BinaryReader r(payload);
  PartialHeader h;
  h.spec_fp = r.u64();
  h.records_fp = r.u64();
  h.num_records = static_cast<size_t>(r.u64());
  h.ref.index = r.u32();
  h.ref.count = r.u32();
  h.cell_begin = static_cast<size_t>(r.u64());
  h.cell_end = static_cast<size_t>(r.u64());
  h.total_cells = static_cast<size_t>(r.u64());
  h.streaming = r.boolean();
  h.base_name = r.str();
  h.batches = static_cast<size_t>(r.u64());
  if (!r.exhausted()) fail("trailing bytes in partial header");
  if (h.ref.count == 0 || h.ref.index == 0 || h.ref.index > h.ref.count) {
    fail("shard reference " + std::to_string(h.ref.index) + "/" +
         std::to_string(h.ref.count) + " is out of range");
  }
  return h;
}

// Replays one shard's embedded cell stream: validates the global cell
// indices are exactly the shard's contiguous range, captures the base
// cell, accumulates the grid marginals, and fans out to the caller's
// sink — the feed order across shards is the expansion order, so
// every accumulation is bit-identical to a single process's.
class ReplaySink : public SweepCellSink {
 public:
  struct MarginalAcc {
    size_t axis_pos = 0;                 // index into spec.axes
    std::vector<double> sorted;          // axis values, ascending
    std::vector<size_t> decl_to_sorted;  // declaration idx -> sorted idx
    std::vector<double> sums;
    std::vector<size_t> counts;
  };

  ReplaySink(const SweepExpansion& expansion, SweepReport& report,
             std::vector<MarginalAcc>& marginals, const MergeOptions& options)
      : expansion_(expansion),
        report_(report),
        marginals_(marginals),
        options_(options) {}

  void begin_shard(const std::string& path, size_t begin, size_t end) {
    path_ = path;
    next_ = begin;
    end_ = end;
  }

  void cell(size_t round, size_t index, const SweepCell& c) override {
    if (round != 0) {
      throw util::CodecError("partial '" + path_ + "': cell round " +
                             std::to_string(round) +
                             " (shard workers never refine)");
    }
    if (index != next_ || index >= end_) {
      throw util::CodecError(
          "partial '" + path_ + "': cell index " + std::to_string(index) +
          " where " + std::to_string(next_) + " was expected");
    }
    ++next_;
    if (index == 0) report_.base = c;
    if (c.kind == SweepCellKind::kGrid) {
      const size_t g = index - expansion_.grid_begin();
      for (auto& acc : marginals_) {
        const size_t si =
            acc.decl_to_sorted[expansion_.grid_value_index(g, acc.axis_pos)];
        acc.sums[si] += c.annualized_mt;
        ++acc.counts[si];
      }
    }
    if (options_.sink != nullptr) options_.sink->cell(round, index, c);
    if (options_.retain_cells) report_.cells.push_back(c);
  }

 private:
  const SweepExpansion& expansion_;
  SweepReport& report_;
  std::vector<MarginalAcc>& marginals_;
  const MergeOptions& options_;
  std::string path_;
  size_t next_ = 0;
  size_t end_ = 0;
};

}  // namespace

ShardRef ShardRef::parse(std::string_view text) {
  auto fail = [&] {
    throw util::ParseError("shard reference '" + std::string(text) +
                           "' is not i/N with 1 <= i <= N");
  };
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) fail();
  const auto index = util::parse_int(util::trim(text.substr(0, slash)));
  const auto count = util::parse_int(util::trim(text.substr(slash + 1)));
  if (!index || !count) fail();
  if (*index < 1 || *count < 1 || *index > *count) fail();
  ShardRef ref;
  ref.index = static_cast<uint32_t>(*index);
  ref.count = static_cast<uint32_t>(*count);
  return ref;
}

std::string ShardRef::to_string() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

size_t ShardRef::begin(size_t total) const {
  const size_t base = total / count;
  const size_t rem = total % count;
  const size_t zero = index - 1;
  return zero * base + std::min<size_t>(zero, rem);
}

size_t ShardRef::end(size_t total) const {
  const size_t base = total / count;
  const size_t rem = total % count;
  const size_t zero = index - 1;
  return begin(total) + base + (zero < rem ? 1 : 0);
}

uint64_t sweep_spec_fingerprint(const SweepSpec& spec) {
  util::Fingerprint fp;
  fp.mix_u64(spec.base.fingerprint());
  // The assessment fingerprint deliberately excludes presentation and
  // amortization; both reach a partial's rendered output, so the shard
  // identity must include them.
  fp.mix(std::string_view(spec.base.name));
  fp.mix(spec.base.service_years);
  fp.mix_u64(spec.axes.size());
  for (const auto& a : spec.axes) {
    fp.mix(static_cast<int>(a.axis));
    fp.mix_u64(a.values.size());
    for (const double v : a.values) fp.mix(v);
  }
  fp.mix(spec.monte_carlo.has_value());
  if (spec.monte_carlo) {
    fp.mix_u64(spec.monte_carlo->draws);
    fp.mix_u64(spec.monte_carlo->seed);
    fp.mix(spec.monte_carlo->ranges.utilization_rel);
    fp.mix(spec.monte_carlo->ranges.fab_aci_rel);
    fp.mix(spec.monte_carlo->ranges.node_platform_rel);
    fp.mix(spec.monte_carlo->ranges.ssd_default_rel);
    fp.mix(spec.monte_carlo->ranges.aci_rel);
  }
  return fp.value();
}

uint64_t records_fingerprint(
    const std::vector<top500::SystemRecord>& records) {
  util::Fingerprint fp;
  fp.mix_u64(records.size());
  for (const auto& r : records) fp.mix_u64(r.content_fingerprint());
  return fp.value();
}

size_t run_sweep_shard(SweepEngine& engine,
                       const std::vector<top500::SystemRecord>& records,
                       const SweepSpec& spec, ShardRef ref, std::ostream& out,
                       SweepCellSink* extra) {
  EASYC_REQUIRE(ref.count >= 1 && ref.index >= 1 && ref.index <= ref.count,
                "shard reference out of range");
  const SweepExpansion expansion(spec);
  const size_t total = expansion.size();
  const size_t begin = ref.begin(total);
  const size_t end = ref.end(total);

  const SweepEngine::Options& opts = engine.options();
  const size_t batch_size = std::max<size_t>(1, opts.batch_size);
  // The streaming decision looks at the FULL expansion, not this
  // shard's slice: every worker (and the eventual merge) must agree
  // with the mode a single process would pick.
  const bool streaming =
      opts.stats == SweepStatsMode::kStreaming ||
      (opts.stats == SweepStatsMode::kAuto &&
       total >= kStreamingStatsThreshold);

  {
    util::BinaryWriter magic;
    magic.raw(kPartMagic);
    magic.u32(kPartFormatVersion);
    out.write(magic.bytes().data(),
              static_cast<std::streamsize>(magic.size()));
  }
  {
    util::BinaryWriter h;
    h.u64(sweep_spec_fingerprint(spec));
    h.u64(records_fingerprint(records));
    h.u64(records.size());
    h.u32(ref.index);
    h.u32(ref.count);
    h.u64(begin);
    h.u64(end);
    h.u64(total);
    h.boolean(streaming);
    h.str(spec.base.name);
    h.u64(begin == end ? 0 : (end - begin + batch_size - 1) / batch_size);
    write_section(out, h, "partial header");
  }

  // The shard's cells ship as an embedded EZCELLS stream (round 0,
  // global expansion indices): the merge replays them to rebuild the
  // base cell and marginals and to serve the merged --cells-out.
  const size_t endpoint_end = 1 + 2 * tornado_endpoints(spec).size();
  std::map<size_t, ScenarioResults> retained;
  SweepReduction reduction(streaming);
  {
    BinaryCellSink cells(out);
    size_t index = begin;
    for (size_t start = begin; start < end; start += batch_size) {
      ScenarioSet batch;
      const size_t stop = std::min(start + batch_size, end);
      for (size_t i = start; i < stop; ++i) batch.add(expansion.cell(i));
      EditionAssessment assessed = engine.engine().assess(records, batch);
      for (auto& r : assessed.scenarios) {
        const SweepCell cell = make_sweep_cell(r);
        const size_t i = index++;
        reduction.add(cell);
        cells.cell(0, i, cell);
        if (extra != nullptr) extra->cell(0, i, cell);
        if (i >= 1 && i < endpoint_end) retained.emplace(i, std::move(r));
      }
    }
    cells.finish();
  }

  // Tail: the tornado endpoint series this shard owns (the merge
  // re-runs analysis::sensitivity over them) and the reduction state.
  util::BinaryWriter t;
  t.u64(retained.size());
  for (const auto& [i, r] : retained) {
    t.u64(i);
    t.str(r.spec.name);
    encode_series(t, r.operational);
    encode_series(t, r.embodied);
    t.u64(static_cast<uint64_t>(r.coverage.operational));
    t.u64(static_cast<uint64_t>(r.coverage.embodied));
    t.u64(static_cast<uint64_t>(r.coverage.total));
  }
  reduction.encode(t);
  write_section(out, t, "partial tail");
  out.flush();
  if (!out) {
    throw util::Error("partial: output stream failed (disk full or closed?)");
  }
  return end - begin;
}

SweepReport merge_sweep_partials(
    const std::vector<std::string>& paths,
    const std::vector<top500::SystemRecord>& records, const SweepSpec& spec,
    const MergeOptions& options) {
  if (paths.empty()) {
    throw util::CodecError("sweep merge: no partials given");
  }

  const SweepExpansion expansion(spec);
  const size_t total = expansion.size();
  const uint64_t spec_fp = sweep_spec_fingerprint(spec);
  const uint64_t records_fp = records_fingerprint(records);
  const std::vector<TornadoEndpoint> endpoints = tornado_endpoints(spec);
  const size_t endpoint_end = 1 + 2 * endpoints.size();

  // Pass 1: headers only. Every partial must name this spec, this
  // record list, and the same N = paths.size() shard layout; the set
  // must be exactly shards 1..N, each once.
  std::vector<PartialHeader> headers(paths.size());
  std::vector<size_t> order(paths.size(), paths.size());
  for (size_t p = 0; p < paths.size(); ++p) {
    std::ifstream in(paths[p], std::ios::binary);
    if (!in) {
      throw util::Error("cannot read sweep partial '" + paths[p] + "'");
    }
    PartialHeader h = read_partial_header(in, paths[p]);
    auto fail = [&](const std::string& why) {
      throw util::CodecError("partial '" + paths[p] + "': " + why);
    };
    if (h.spec_fp != spec_fp) {
      fail("spec fingerprint mismatch — produced by a different sweep");
    }
    if (h.records_fp != records_fp || h.num_records != records.size()) {
      fail("records fingerprint mismatch — assessed a different record list");
    }
    if (h.total_cells != total) {
      fail("expansion has " + std::to_string(h.total_cells) +
           " cells, expected " + std::to_string(total));
    }
    if (h.ref.count != paths.size()) {
      fail("shard count " + std::to_string(h.ref.count) + ", but " +
           std::to_string(paths.size()) + " partial(s) were given");
    }
    const ShardRef expect{h.ref.index, h.ref.count};
    if (h.cell_begin != expect.begin(total) ||
        h.cell_end != expect.end(total)) {
      fail("cell range [" + std::to_string(h.cell_begin) + ", " +
           std::to_string(h.cell_end) + ") is not shard " +
           expect.to_string() + "'s balanced partition");
    }
    if (h.streaming != headers[0].streaming && p != 0) {
      fail("stats mode mismatch across partials");
    }
    if (order[h.ref.index - 1] != paths.size()) {
      fail("duplicate shard " + h.ref.to_string());
    }
    order[h.ref.index - 1] = p;
    headers[p] = std::move(h);
  }

  const bool streaming = headers[0].streaming;

  SweepReport report;
  report.base_name = spec.base.name;
  report.num_records = records.size();
  report.grid_cells = spec.grid_cells();
  report.mc_cells = spec.monte_carlo ? spec.monte_carlo->draws : 0;
  report.axis_cells = total - 1 - report.grid_cells - report.mc_cells;
  report.total_cells = total;
  report.streaming_stats = streaming;
  if (options.retain_cells) report.cells.reserve(total);

  // Marginal accumulators, identical construction to the in-process
  // sweep loop; fed from the replay in expansion order, so the merged
  // marginals are bit-identical to a single process's.
  std::vector<ReplaySink::MarginalAcc> marginals;
  for (size_t a = 0; a < spec.axes.size(); ++a) {
    const auto& values = spec.axes[a].values;
    if (values.size() < 2) continue;
    ReplaySink::MarginalAcc acc;
    acc.axis_pos = a;
    acc.sorted = values;
    std::sort(acc.sorted.begin(), acc.sorted.end());
    acc.decl_to_sorted.resize(values.size());
    for (size_t j = 0; j < values.size(); ++j) {
      acc.decl_to_sorted[j] = static_cast<size_t>(
          std::lower_bound(acc.sorted.begin(), acc.sorted.end(), values[j]) -
          acc.sorted.begin());
    }
    acc.sums.assign(acc.sorted.size(), 0.0);
    acc.counts.assign(acc.sorted.size(), 0);
    marginals.push_back(std::move(acc));
  }

  // Pass 2: shards in shard order — the concatenated cell replay is
  // the expansion order, which is what makes every fold exact.
  ReplaySink replay(expansion, report, marginals, options);
  SweepReduction merged(streaming);
  std::map<size_t, ScenarioResults> endpoint_results;
  for (size_t s = 0; s < order.size(); ++s) {
    const PartialHeader& h = headers[order[s]];
    const std::string& path = paths[order[s]];
    auto fail = [&](const std::string& why) {
      throw util::CodecError("partial '" + path + "': " + why);
    };
    std::ifstream in(path, std::ios::binary);
    if (!in) throw util::Error("cannot read sweep partial '" + path + "'");
    read_partial_header(in, path);  // skip; validated in pass 1

    replay.begin_shard(path, h.cell_begin, h.cell_end);
    const size_t n = read_binary_cells(in, replay, /*expect_eof=*/false);
    if (n != h.cell_end - h.cell_begin) {
      fail("embedded cell stream holds " + std::to_string(n) +
           " cells for range [" + std::to_string(h.cell_begin) + ", " +
           std::to_string(h.cell_end) + ")");
    }

    const std::string tail = read_section(in, "partial tail");
    util::BinaryReader r(tail);
    const uint64_t n_endpoints = r.u64();
    if (n_endpoints > endpoint_end) {
      fail("implausible endpoint count " + std::to_string(n_endpoints));
    }
    for (uint64_t e = 0; e < n_endpoints; ++e) {
      const size_t idx = static_cast<size_t>(r.u64());
      if (idx < 1 || idx >= endpoint_end || idx < h.cell_begin ||
          idx >= h.cell_end) {
        fail("endpoint index " + std::to_string(idx) +
             " outside the shard's endpoint range");
      }
      ScenarioResults res;
      res.spec = expansion.cell(idx);
      const std::string name = r.str();
      if (name != res.spec.name) {
        fail("endpoint " + std::to_string(idx) + " is named '" + name +
             "', expected '" + res.spec.name + "'");
      }
      res.operational = decode_series(r, records.size(), "operational");
      res.embodied = decode_series(r, records.size(), "embodied");
      res.coverage.operational = static_cast<int>(r.u64());
      res.coverage.embodied = static_cast<int>(r.u64());
      res.coverage.total = static_cast<int>(r.u64());
      if (!endpoint_results.emplace(idx, std::move(res)).second) {
        fail("duplicate endpoint " + std::to_string(idx));
      }
    }

    SweepReduction part = SweepReduction::decode(r);
    if (part.streaming() != streaming) fail("stats mode mismatch");
    if (part.count() != n) {
      fail("reduction covers " + std::to_string(part.count()) +
           " cells, embedded stream holds " + std::to_string(n));
    }
    if (!r.exhausted()) fail("trailing bytes in partial tail");
    if (in.peek() != std::char_traits<char>::eof()) {
      fail("trailing bytes after partial tail");
    }
    merged.merge(part);
    report.batches += h.batches;
  }

  for (size_t k = 1; k < endpoint_end; ++k) {
    if (endpoint_results.find(k) == endpoint_results.end()) {
      throw util::CodecError("sweep merge: no partial carries endpoint " +
                             std::to_string(k) + " ('" +
                             expansion.cell(k).name + "')");
    }
  }

  // Tornado: the same sensitivity kernel over the same series a single
  // process retained — identical inputs, identical rows.
  for (size_t j = 0; j < endpoints.size(); ++j) {
    const TornadoEndpoint& e = endpoints[j];
    const ScenarioResults& low = endpoint_results.at(1 + 2 * j);
    const ScenarioResults& high = endpoint_results.at(2 + 2 * j);
    const SensitivityReport s = sensitivity(records, low, high);

    TornadoRow row;
    row.axis = e.axis;
    row.low = e.low;
    row.high = e.high;
    row.low_annualized_mt = low.annualized_total_mt();
    row.high_annualized_mt = high.annualized_total_mt();
    row.swing_mt = row.high_annualized_mt - row.low_annualized_mt;
    row.swing_pct = report.base.annualized_mt == 0.0
                        ? 0.0
                        : row.swing_mt / report.base.annualized_mt * 100.0;
    row.op_total_pct = s.op_total_pct;
    row.emb_total_pct = s.emb_total_pct;
    row.op_max_abs_pct = s.op_max_abs_pct;
    row.emb_max_abs_pct = s.emb_max_abs_pct;
    report.tornado.push_back(row);
  }

  report.annualized_mt = merged.annualized_mt();
  report.op_total_mt = merged.op_total_mt();
  report.emb_total_mt = merged.emb_total_mt();

  for (auto& acc : marginals) {
    AxisMarginal m;
    m.axis = spec.axes[acc.axis_pos].axis;
    m.values = std::move(acc.sorted);
    m.mean_annualized.assign(m.values.size(), 0.0);
    for (size_t i = 0; i < m.values.size(); ++i) {
      if (acc.counts[i] > 0) {
        m.mean_annualized[i] =
            acc.sums[i] / static_cast<double>(acc.counts[i]);
      }
    }
    report.grid_marginals.push_back(std::move(m));
  }

  return report;
}

}  // namespace easyc::analysis
