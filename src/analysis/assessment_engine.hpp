// The assessment engine: N list editions x M scenarios over one thread
// pool, with a memoized per-record assessment cache.
//
// The paper's growth-rate derivation (Section IV-C) and projections
// assess *many* TOP500 editions, but only ~48 of 500 systems change per
// cycle — the survivors are byte-identical apart from their rank. The
// engine therefore flattens (edition, scenario, record) cells into
// parallel shards and memoizes each SystemAssessment under the key
// (record content fingerprint, scenario fingerprint) in a lock-striped
// par::ShardedCache: a surviving system is assessed exactly once across
// the whole history, and repeated runs over unchanged inputs are served
// from cache entirely.
//
// Editions are processed as successive parallel wavefronts (all
// scenario x record cells of one edition run concurrently; editions
// are ordered, and fingerprint-equal scenario aliases within an
// edition run after their primary). The ordering is what makes the
// exactly-once guarantee and the hit-rate deterministic for every
// pool size — without it, cells of the same survivor in different
// editions could race to the same cold cache line and both compute.
//
// Determinism: assessments are pure functions of (record content,
// scenario), so results are bit-identical for any pool size and any
// cache state (cold, warm, disabled, mid-eviction). CacheStats makes
// the speedup measurable rather than asserted.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/coverage.hpp"
#include "analysis/scenario.hpp"
#include "easyc/batch.hpp"
#include "easyc/model.hpp"
#include "parallel/sharded_cache.hpp"
#include "top500/history.hpp"
#include "top500/record.hpp"

namespace easyc::analysis {

/// One model side of one scenario, as a rank-ordered optional series
/// (MT CO2e); nullopt = not covered.
using CarbonSeries = std::vector<std::optional<double>>;

struct ScenarioResults {
  ScenarioSpec spec;
  std::vector<model::SystemAssessment> assessments;
  CarbonSeries operational;  ///< MT CO2e, rank order
  CarbonSeries embodied;
  CoverageCounts coverage;

  double total(bool operational_side) const;   ///< sum of covered systems
  double average(bool operational_side) const; ///< mean over covered
  /// Covered operational total plus covered embodied total amortized
  /// over the spec's service life (MT CO2e per year).
  double annualized_total_mt() const;
};

/// Extract a CarbonSeries from assessments.
CarbonSeries operational_series(
    const std::vector<model::SystemAssessment>& assessments);
CarbonSeries embodied_series(
    const std::vector<model::SystemAssessment>& assessments);

/// Name lookup over a scenario-results list, shared by every type that
/// carries one (EditionAssessment, PipelineResult). `find_scenario_in`
/// returns nullptr for an unknown name; `scenario_in` throws
/// util::Error mentioning `owner` ("edition", "pipeline", ...).
const ScenarioResults* find_scenario_in(
    const std::vector<ScenarioResults>& scenarios, std::string_view name);
const ScenarioResults& scenario_in(
    const std::vector<ScenarioResults>& scenarios, std::string_view name,
    std::string_view owner);

/// One edition's engine output: every registered scenario assessed over
/// the edition's records, in registration order.
struct EditionAssessment {
  std::string label;       ///< ListEdition::label ("" for a bare list)
  int num_new = 0;         ///< systems that entered this cycle
  double perf_pflops = 0.0;  ///< aggregate Rmax of the edition
  std::vector<ScenarioResults> scenarios;

  /// Keyed access. `scenario` throws util::Error for an unknown name;
  /// `find_scenario` returns nullptr instead.
  const ScenarioResults& scenario(std::string_view name) const;
  const ScenarioResults* find_scenario(std::string_view name) const;
};

class AssessmentEngine {
 public:
  /// Which cache-miss fill path computes assessments. `kScalar` is the
  /// per-cell oracle (EasyCModel::assess); `kSoa` batches an edition's
  /// misses through model::BatchAssessor (resolve once per distinct
  /// record, vectorized arithmetic core); `kAuto` picks kSoa when the
  /// scenario set amortizes profile resolution across at least two
  /// lanes per distinct visibility, kScalar otherwise. The two
  /// kernels are byte-identical per cell (enforced by
  /// batch_kernel_test), so this knob only moves time.
  enum class BatchKernel { kScalar, kSoa, kAuto };

  struct Options {
    /// Pool the shards run on; null = the process-global pool.
    par::ThreadPool* pool = nullptr;
    /// false = always recompute (the no-cache ablation arm). Results
    /// are bit-identical either way.
    bool cache_enabled = true;
    /// Resident assessment bound (0 = unbounded). A full edition set
    /// is ~500 entries per scenario; the default never evicts in the
    /// paper workloads.
    size_t cache_capacity = 0;
    /// Stripes of the memo table.
    size_t cache_shards = 16;
    /// Cache-miss fill path (see BatchKernel).
    BatchKernel batch_kernel = BatchKernel::kAuto;
    /// SoA only: serve ACI lookups from a per-batch table instead of
    /// querying the database per lane. Off only for A/B measurement.
    bool batch_hoist_aci = true;
  };

  AssessmentEngine();  // default options
  explicit AssessmentEngine(Options options);

  /// Assess every edition under every registered scenario. The memo
  /// cache persists across calls: re-running an unchanged history is
  /// pure lookups, and an extended history only assesses the new tail.
  std::vector<EditionAssessment> run(
      const std::vector<top500::ListEdition>& editions,
      const ScenarioSet& scenarios);

  /// Single record list (run_pipeline's unit): one edition with no
  /// label/turnover bookkeeping.
  EditionAssessment assess(const std::vector<top500::SystemRecord>& records,
                           const ScenarioSet& scenarios);

  const Options& options() const { return options_; }
  par::CacheStats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

  /// Cumulative SoA-kernel counters (lanes batched, profiles resolved,
  /// validations, ACI lookups hoisted). All zero under kScalar. Safe
  /// to call while other threads run assess()/run() — the server's
  /// concurrent admission path does exactly that.
  model::BatchStats batch_stats() const;

  /// Persist the memo cache to `path` as a versioned, checksummed
  /// ShardedCache snapshot (see sharded_cache.hpp for the header
  /// layout) whose scheme tag is cache_scheme_tag(). Works whether the
  /// cache is cold, warm, or mid-eviction. Throws util::Error when the
  /// file cannot be written.
  void save_cache(const std::string& path) const;

  /// Warm-start the memo cache from a save_cache() file: a later
  /// process re-running unchanged inputs becomes pure lookups. Returns
  /// the number of entries the snapshot carried. Throws util::Error
  /// when the file cannot be read and util::CodecError when it is
  /// corrupt, truncated, or written under a different format version
  /// or fingerprint/codec scheme — a bad file is rejected, never
  /// partially trusted beyond the entries already decoded.
  size_t load_cache(const std::string& path);

  /// The scheme tag snapshot files are bound to: a fingerprint over a
  /// canary record fingerprint, a canary scenario fingerprint, and the
  /// assessment codec version. If the fingerprinting algorithm, the
  /// fingerprinted field set, or the value codec changes shape, the
  /// tag changes and older snapshots are rejected as stale.
  static uint64_t cache_scheme_tag();

 private:
  struct CellKey {
    uint64_t record_fp = 0;
    uint64_t scenario_fp = 0;
    friend bool operator==(const CellKey&, const CellKey&) = default;
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      // The fingerprints are already well-mixed 64-bit hashes; fold
      // them with the golden-ratio constant to decorrelate the pair.
      return static_cast<size_t>(k.record_fp ^
                                 (k.scenario_fp * 0x9e3779b97f4a7c15ULL));
    }
  };

  void assess_edition(const std::vector<top500::SystemRecord>& records,
                      const ScenarioSet& scenarios,
                      const std::vector<model::EasyCModel>& models,
                      const std::vector<uint64_t>& scenario_fps,
                      EditionAssessment& out);

  using Cache =
      par::ShardedCache<CellKey, model::SystemAssessment, CellKeyHash>;

  // The SoA kernel's win is amortization: one profile resolution per
  // distinct (visibility, record) shared by every scenario lane that
  // reads it. Under kAuto it is only engaged when the set averages at
  // least two lanes per profile; below that (e.g. the two-spec paper
  // pair, one visibility each) batching is pure overhead and the
  // scalar path wins. Explicit kScalar/kSoa always get what they ask.
  bool use_soa_kernel(const ScenarioSet& scenarios) const;

  void add_batch_stats(const model::BatchStats& stats);

  Options options_;
  Cache cache_;
  // The cache is lock-striped, but the kernel counters are one shared
  // accumulator; the mutex makes concurrent assess()/run() callers
  // (the server executors) race-free. Uncontended outside batch ends.
  mutable std::mutex batch_stats_mu_;
  model::BatchStats batch_stats_;
};

}  // namespace easyc::analysis
