#include "analysis/audit.hpp"

#include "grid/aci.hpp"
#include "util/strings.hpp"

namespace easyc::analysis {

namespace {

void add(AuditReport* report, AuditSeverity sev, int rank,
         std::string message) {
  report->issues.push_back({sev, rank, std::move(message)});
  if (sev == AuditSeverity::kError) ++report->errors;
  else ++report->warnings;
}

}  // namespace

AuditReport audit_records(const std::vector<top500::SystemRecord>& records,
                          const AuditOptions& opt) {
  AuditReport report;
  if (records.empty()) {
    add(&report, AuditSeverity::kError, 0, "record set is empty");
    return report;
  }

  double prev_rmax = 0.0;
  int prev_rank = 0;
  for (const auto& r : records) {
    // Structure.
    if (r.rank <= prev_rank) {
      add(&report, AuditSeverity::kError, r.rank,
          "rank not strictly increasing");
    }
    prev_rank = r.rank;
    if (prev_rmax > 0 && r.rmax_tflops > prev_rmax * (1 + 1e-9)) {
      add(&report, AuditSeverity::kError, r.rank,
          "Rmax exceeds the previous rank's (list must be sorted)");
    }
    prev_rmax = r.rmax_tflops;

    // Physics.
    if (r.rmax_tflops <= 0) {
      add(&report, AuditSeverity::kError, r.rank, "non-positive Rmax");
    }
    if (r.rpeak_tflops + 1e-9 < r.rmax_tflops) {
      add(&report, AuditSeverity::kError, r.rank,
          "Rmax exceeds Rpeak (HPL cannot beat peak)");
    }
    if (r.total_cores <= 0) {
      add(&report, AuditSeverity::kError, r.rank, "non-positive core count");
    }
    if (r.truth.power_kw > 0 && r.rmax_tflops > 0) {
      const double gfw = r.rmax_tflops / r.truth.power_kw;
      if (gfw < opt.min_gflops_per_watt || gfw > opt.max_gflops_per_watt) {
        add(&report, AuditSeverity::kWarning, r.rank,
            "efficiency " + util::format_double(gfw, 1) +
                " GFlops/W outside the plausible envelope");
      }
    }
    if (r.year < opt.min_year || r.year > opt.max_year) {
      add(&report, AuditSeverity::kWarning, r.rank,
          "installation year " + std::to_string(r.year) + " out of range");
    }

    // Consistency of configuration ground truth, when present.
    if (r.is_accelerated() && r.truth.nodes > 0 && r.truth.gpus > 0 &&
        r.truth.gpus % r.truth.nodes != 0) {
      add(&report, AuditSeverity::kWarning, r.rank,
          "GPU count not a multiple of node count");
    }
    if (!r.is_accelerated() && r.truth.gpus > 0) {
      add(&report, AuditSeverity::kError, r.rank,
          "CPU-only system carries a GPU count");
    }
    if (r.truth.cpus > 0 && r.total_cores > 0 &&
        r.truth.cpus > r.total_cores) {
      add(&report, AuditSeverity::kError, r.rank,
          "more CPU packages than cores");
    }

    // Lookups the pipeline will perform.
    if (!grid::AciDatabase::builtin().country_aci(r.country)) {
      add(&report, AuditSeverity::kWarning, r.rank,
          "country '" + r.country +
              "' has no grid-intensity entry (operational model will "
              "decline)");
    }
  }
  return report;
}

std::string render_audit(const AuditReport& report) {
  if (report.clean()) return "audit: clean\n";
  std::string out = "audit: " + std::to_string(report.errors) +
                    " error(s), " + std::to_string(report.warnings) +
                    " warning(s)\n";
  for (const auto& issue : report.issues) {
    out += std::string(
               issue.severity == AuditSeverity::kError ? "  ERROR " : "  warn  ") +
           (issue.rank > 0 ? "rank " + std::to_string(issue.rank) + ": "
                           : "") +
           issue.message + "\n";
  }
  return out;
}

}  // namespace easyc::analysis
