// Rank-neighbour interpolation for systems without an estimate.
//
// The paper: "we interpolate the carbon footprint for the systems
// missing data using the average of the nearest 10 peers (5 lower and 5
// higher) in the Top 500. If the peers are also incomplete, we use the
// next closest peers."
#pragma once

#include <optional>
#include <vector>

namespace easyc::analysis {

enum class InterpolationStrategy {
  kMean,          ///< paper's method
  kMedian,        ///< ablation: robust to outlier peers
  kRankWeighted,  ///< ablation: closer peers weigh more (1/distance)
};

struct InterpolationOptions {
  /// Peers taken on each side (paper: 5 + 5 = nearest 10).
  int peers_per_side = 5;
  InterpolationStrategy strategy = InterpolationStrategy::kMean;
};

struct InterpolationResult {
  /// Complete series, index-aligned with the input (rank order).
  std::vector<double> values;
  /// Indices that were filled by interpolation.
  std::vector<size_t> interpolated_indices;
};

/// Fill gaps in a rank-ordered series. Present entries pass through
/// unchanged. A gap takes the configured statistic over the nearest
/// `peers_per_side` *complete* entries on each side, skipping past other
/// gaps; near the list edges fewer peers may exist and whatever is found
/// is used. Requires at least one complete entry.
InterpolationResult interpolate_gaps(
    const std::vector<std::optional<double>>& series,
    const InterpolationOptions& options = {});

/// Both model sides of one list interpolated to full coverage, with the
/// full-list totals — the "complete the 500" step every figure stage
/// shares (run_pipeline's totals, each turnover edition's footprint).
struct FullListSeries {
  InterpolationResult operational;
  InterpolationResult embodied;
  double op_total_mt = 0.0;   ///< sum of the completed operational series
  double emb_total_mt = 0.0;  ///< sum of the completed embodied series
};

FullListSeries interpolate_full_list(
    const std::vector<std::optional<double>>& operational,
    const std::vector<std::optional<double>>& embodied,
    const InterpolationOptions& options = {});

}  // namespace easyc::analysis
