#include "analysis/coverage.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace easyc::analysis {

std::string RankRange::label() const {
  return std::to_string(lo) + "-" + std::to_string(hi);
}

const std::vector<RankRange>& rank_ranges() {
  static const std::vector<RankRange> kRanges = {
      {1, 10},    {11, 25},   {26, 50},   {51, 75},   {76, 100},
      {101, 150}, {151, 200}, {201, 250}, {251, 300}, {301, 350},
      {351, 400}, {401, 450}, {451, 500}, {1, 500},
  };
  return kRanges;
}

CoverageCounts count_coverage(
    const std::vector<model::SystemAssessment>& assessments) {
  CoverageCounts c;
  c.total = static_cast<int>(assessments.size());
  for (const auto& a : assessments) {
    if (a.operational.ok()) ++c.operational;
    if (a.embodied.ok()) ++c.embodied;
  }
  return c;
}

std::vector<RangeCoverage> coverage_by_range(
    const std::vector<top500::SystemRecord>& records,
    const std::vector<model::SystemAssessment>& assessments,
    bool operational_side) {
  EASYC_REQUIRE(records.size() == assessments.size(),
                "records/assessments size mismatch");
  std::vector<RangeCoverage> out;
  for (const auto& range : rank_ranges()) {
    int in_range = 0;
    int covered = 0;
    for (size_t i = 0; i < records.size(); ++i) {
      const int rank = records[i].rank;
      if (rank < range.lo || rank > range.hi) continue;
      ++in_range;
      const bool ok = operational_side ? assessments[i].operational.ok()
                                       : assessments[i].embodied.ok();
      if (ok) ++covered;
    }
    RangeCoverage rc;
    rc.range = range;
    rc.covered_pct =
        in_range == 0 ? 0.0 : 100.0 * covered / static_cast<double>(in_range);
    out.push_back(rc);
  }
  return out;
}

std::vector<MetricGap> table1_gaps(
    const std::vector<top500::SystemRecord>& records,
    top500::DataVisibility visibility) {
  using model::Metric;
  std::vector<MetricGap> out;
  for (Metric m : model::all_metrics()) {
    MetricGap gap;
    gap.metric = m;
    for (const auto& r : records) {
      const top500::Disclosure& d = top500::disclosure_for(r, visibility);
      bool present = true;
      switch (m) {
        case Metric::kOperationYear: present = true; break;
        case Metric::kNumComputeNodes: present = d.nodes; break;
        case Metric::kNumGpus: present = d.gpus; break;
        // Package counts are always derivable from total cores, for
        // every system on the list (paper Table I reports 0 missing).
        case Metric::kNumCpus: present = true; break;
        case Metric::kMemoryCapacity: present = d.memory; break;
        case Metric::kMemoryType: present = d.memory_type; break;
        case Metric::kSsdCapacity: present = d.ssd; break;
        case Metric::kSystemUtilization: present = d.utilization; break;
        case Metric::kAnnualPowerConsumed: present = d.annual_energy; break;
      }
      if (!present) ++gap.systems_incomplete;
    }
    out.push_back(gap);
  }
  return out;
}

std::array<int, top500::kNumTop500DataItems + 1> fig2_histogram(
    const std::vector<top500::SystemRecord>& records) {
  std::array<int, top500::kNumTop500DataItems + 1> hist{};
  for (const auto& r : records) {
    const int missing =
        std::clamp(r.num_items_missing(), 0, top500::kNumTop500DataItems);
    ++hist[static_cast<size_t>(missing)];
  }
  return hist;
}

GhgCoverage ghg_protocol_coverage(
    const std::vector<top500::SystemRecord>& records) {
  GhgCoverage c;
  for (const auto& r : records) {
    // A protocol-grade operational report needs metered facility energy
    // plus the site's fuel/refrigerant logs. Only the handful of sites
    // with public metered-energy disclosures even approach this.
    if (r.with_public.annual_energy) ++c.operational;
    // A protocol-grade embodied report needs the full per-component
    // inventory; no Top500 system publishes one (paper: "NONE report
    // embodied").
  }
  return c;
}

}  // namespace easyc::analysis
