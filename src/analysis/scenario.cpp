#include "analysis/scenario.hpp"

#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace easyc::analysis {

model::EasyCOptions ScenarioSpec::to_options() const {
  model::EasyCOptions opt;
  opt.embodied.accelerator_policy = accelerator_policy;
  if (fab_aci_kg_kwh) opt.embodied.fab_aci_kg_kwh = *fab_aci_kg_kwh;
  if (default_utilization) {
    opt.operational.default_utilization = *default_utilization;
  }
  opt.operational.aci_override_g_kwh = aci_override_g_kwh;
  opt.operational.pue_override = pue_override;
  return opt;
}

uint64_t ScenarioSpec::fingerprint() const {
  util::Fingerprint fp;
  fp.mix(static_cast<int>(visibility))
      .mix(static_cast<int>(accelerator_policy))
      .mix(aci_override_g_kwh)
      .mix(pue_override)
      .mix(fab_aci_kg_kwh)
      .mix(default_utilization);
  return fp.value();
}

namespace scenarios {

ScenarioSpec baseline() {
  ScenarioSpec s;
  s.name = std::string(kBaselineName);
  s.description = "Top500.org data only; unidentifiable accelerators "
                  "yield no estimate";
  s.visibility = top500::DataVisibility::kTop500Org;
  s.accelerator_policy = model::AcceleratorPolicy::kStrict;
  return s;
}

ScenarioSpec enhanced() {
  ScenarioSpec s;
  s.name = std::string(kEnhancedName);
  s.description = "Top500.org + public info; unknown accelerators "
                  "approximated with mainstream GPUs";
  s.visibility = top500::DataVisibility::kTop500PlusPublic;
  s.accelerator_policy = model::AcceleratorPolicy::kApproximateWithMainstreamGpu;
  return s;
}

ScenarioSpec full_knowledge() {
  ScenarioSpec s;
  s.name = "full-knowledge";
  s.description = "ground-truth upper bound (every field disclosed)";
  s.visibility = top500::DataVisibility::kFullKnowledge;
  s.accelerator_policy = model::AcceleratorPolicy::kApproximateWithMainstreamGpu;
  return s;
}

ScenarioSpec renewables_grid() {
  ScenarioSpec s = enhanced();
  s.name = "whatif/renewables-grid";
  s.description = "enhanced data with the whole fleet sited on a "
                  "renewables-heavy ~25 g/kWh grid";
  s.aci_override_g_kwh = 25.0;
  return s;
}

ScenarioSpec extended_lifetime() {
  ScenarioSpec s = enhanced();
  s.name = "whatif/extended-lifetime";
  s.description = "enhanced data with embodied carbon amortized over an "
                  "8-year service life";
  s.service_years = 8.0;
  return s;
}

ScenarioSpec strict_accelerators() {
  ScenarioSpec s = enhanced();
  s.name = "whatif/no-accelerator-approximation";
  s.description = "enhanced data but unknown accelerators decline an "
                  "estimate instead of proxying";
  s.accelerator_policy = model::AcceleratorPolicy::kStrict;
  return s;
}

}  // namespace scenarios

ScenarioSet ScenarioSet::paper() {
  ScenarioSet set;
  set.add(scenarios::baseline()).add(scenarios::enhanced());
  return set;
}

ScenarioSet ScenarioSet::paper_with_whatifs() {
  ScenarioSet set = paper();
  set.add(scenarios::renewables_grid())
      .add(scenarios::extended_lifetime())
      .add(scenarios::strict_accelerators());
  return set;
}

ScenarioSet& ScenarioSet::add(ScenarioSpec spec) {
  if (spec.name.empty()) {
    throw util::Error("scenario name must not be empty");
  }
  if (contains(spec.name)) {
    throw util::Error("scenario '" + spec.name + "' already registered");
  }
  auto reject = [&spec](const char* what) {
    throw util::Error("scenario '" + spec.name + "': " + what);
  };
  if (!(spec.service_years > 0.0)) reject("service_years must be positive");
  if (spec.aci_override_g_kwh && *spec.aci_override_g_kwh < 0.0) {
    reject("aci_override_g_kwh must be non-negative");
  }
  if (spec.pue_override && *spec.pue_override < 1.0) {
    reject("pue_override must be >= 1 (facility uses at least IT power)");
  }
  if (spec.fab_aci_kg_kwh && *spec.fab_aci_kg_kwh < 0.0) {
    reject("fab_aci_kg_kwh must be non-negative");
  }
  if (spec.default_utilization && (*spec.default_utilization <= 0.0 ||
                                   *spec.default_utilization > 1.0)) {
    reject("default_utilization must be in (0,1]");
  }
  specs_.push_back(std::move(spec));
  return *this;
}

const ScenarioSpec* ScenarioSet::find(std::string_view name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const ScenarioSpec& ScenarioSet::at(std::string_view name) const {
  if (const ScenarioSpec* s = find(name)) return *s;
  throw util::Error("no scenario named '" + std::string(name) + "'");
}

std::vector<std::string> ScenarioSet::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(s.name);
  return out;
}

namespace {

// The paper scenario that reads a visibility level: baseline policy for
// Top500.org-only data, enhanced policy (GPU approximation) otherwise.
ScenarioSpec paper_spec_for(top500::DataVisibility visibility) {
  ScenarioSpec s = visibility == top500::DataVisibility::kTop500Org
                       ? scenarios::baseline()
                       : scenarios::enhanced();
  s.visibility = visibility;
  return s;
}

}  // namespace

model::EasyCOptions options_for(top500::DataVisibility visibility) {
  return paper_spec_for(visibility).to_options();
}

std::vector<model::SystemAssessment> assess_scenario(
    const std::vector<top500::SystemRecord>& records,
    const ScenarioSpec& spec, par::ThreadPool* pool) {
  std::vector<model::Inputs> inputs;
  inputs.reserve(records.size());
  for (const auto& r : records) inputs.push_back(to_inputs(r, spec.visibility));
  return model::EasyCModel(spec.to_options()).assess_all(inputs, pool);
}

std::vector<model::SystemAssessment> assess_scenario(
    const std::vector<top500::SystemRecord>& records,
    top500::DataVisibility visibility) {
  return assess_scenario(records, paper_spec_for(visibility));
}

}  // namespace easyc::analysis
