#include "analysis/scenario.hpp"

namespace easyc::analysis {

model::EasyCOptions options_for(top500::Scenario scenario) {
  model::EasyCOptions opt;
  if (scenario != top500::Scenario::kTop500Org) {
    opt.embodied.accelerator_policy =
        model::AcceleratorPolicy::kApproximateWithMainstreamGpu;
  }
  return opt;
}

std::vector<model::SystemAssessment> assess_scenario(
    const std::vector<top500::SystemRecord>& records,
    top500::Scenario scenario) {
  std::vector<model::Inputs> inputs;
  inputs.reserve(records.size());
  for (const auto& r : records) inputs.push_back(to_inputs(r, scenario));
  return model::EasyCModel(options_for(scenario)).assess_all(inputs);
}

}  // namespace easyc::analysis
