// Average carbon intensity (ACI) of grid electricity, gCO2e/kWh.
//
// Two granularities, mirroring the paper's two data scenarios:
//   * country-level annual averages (always derivable from the Top500
//     "Country" field — the Baseline scenario), and
//   * named sub-national regions / grid operators (the "+ public info"
//     scenario; the paper reports region refinement changes per-system
//     operational carbon by as much as +/-77.5%).
//
// Values are 2024 annual averages in the style of Ember/IEA public data.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace easyc::grid {

struct GridRegion {
  std::string name;     ///< country or "Country/Region" key
  double aci_g_kwh;     ///< annual average carbon intensity
  bool subnational;     ///< true for region-level refinements
};

class AciDatabase {
 public:
  /// Database preloaded with the embedded country and region tables.
  static const AciDatabase& builtin();

  /// Empty database for tests / custom data.
  AciDatabase() = default;

  void add(GridRegion region);

  /// Country-level lookup (case-insensitive). nullopt if unknown.
  std::optional<double> country_aci(std::string_view country) const;

  /// Region-level lookup by "Country/Region" (e.g. "United States/TVA").
  /// nullopt if no refinement is known.
  std::optional<double> region_aci(std::string_view country,
                                   std::string_view region) const;

  /// Best available: region refinement when present, else country.
  std::optional<double> best_aci(std::string_view country,
                                 std::string_view region) const;

  /// World average, used only as an explicit last-resort default.
  static constexpr double kWorldAverage = 473.0;

  size_t size() const { return regions_.size(); }
  const std::vector<GridRegion>& regions() const { return regions_; }

 private:
  std::vector<GridRegion> regions_;
};

}  // namespace easyc::grid
