// Generation-mix decomposition of grid carbon intensity.
//
// The country-level ACI numbers in `aci.hpp` are annual outcomes; this
// module models *why* they are what they are: a generation mix times
// per-source lifecycle intensities (IPCC AR5 medians). It supports the
// what-if analyses sites actually run — "what does a 30% solar PPA do to
// our operational carbon?" — and sanity-anchors the ACI table.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace easyc::grid {

/// Generation shares; should sum to ~1 (validated on use).
struct EnergyMix {
  double coal = 0.0;
  double gas = 0.0;
  double oil = 0.0;
  double nuclear = 0.0;
  double hydro = 0.0;
  double wind = 0.0;
  double solar = 0.0;
  double biomass = 0.0;

  double total() const {
    return coal + gas + oil + nuclear + hydro + wind + solar + biomass;
  }

  /// Lifecycle carbon intensity of this mix, gCO2e/kWh. Requires the
  /// shares to sum to 1 within 1%.
  double aci_g_kwh() const;

  /// A new mix with `share` of generation replaced by `source`
  /// (proportional displacement of everything else). `source` is one of
  /// "coal","gas","oil","nuclear","hydro","wind","solar","biomass".
  EnergyMix with_added(std::string_view source, double share) const;
};

/// Per-source lifecycle intensities, gCO2e/kWh (IPCC AR5 medians).
struct SourceIntensities {
  static constexpr double kCoal = 820.0;
  static constexpr double kGas = 490.0;
  static constexpr double kOil = 650.0;
  static constexpr double kNuclear = 12.0;
  static constexpr double kHydro = 24.0;
  static constexpr double kWind = 11.0;
  static constexpr double kSolar = 41.0;
  static constexpr double kBiomass = 230.0;
};

/// Representative national generation mixes (2024-style). nullopt for
/// countries without an embedded mix.
std::optional<EnergyMix> national_mix(std::string_view country);

/// Countries with embedded mixes.
std::vector<std::string> mix_countries();

}  // namespace easyc::grid
