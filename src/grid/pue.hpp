// Power Usage Effectiveness model.
//
// PUE converts IT power into facility power (cooling, distribution
// losses). Few Top500 sites disclose PUE, so EasyC uses an era- and
// class-based prior: liquid-cooled leadership facilities run near 1.1,
// legacy air-cooled machine rooms near 1.5.
#pragma once

namespace easyc::grid {

enum class FacilityClass {
  kLeadershipLiquidCooled,  ///< purpose-built exascale-class facility
  kModernDataCenter,        ///< hyperscaler / recent university DC
  kLegacyMachineRoom,       ///< air-cooled legacy room
};

/// Default PUE prior for a facility class and installation year. Newer
/// facilities trend lower; clamped to [1.03, 2.0].
double default_pue(FacilityClass cls, int year);

/// Infer facility class from system size: multi-megawatt systems are
/// overwhelmingly liquid-cooled purpose-built sites.
FacilityClass infer_facility_class(double it_power_kw, int year);

}  // namespace easyc::grid
