#include "grid/mix.hpp"

#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace easyc::grid {

double EnergyMix::aci_g_kwh() const {
  EASYC_REQUIRE(std::abs(total() - 1.0) < 0.01,
                "generation shares must sum to 1");
  return coal * SourceIntensities::kCoal + gas * SourceIntensities::kGas +
         oil * SourceIntensities::kOil +
         nuclear * SourceIntensities::kNuclear +
         hydro * SourceIntensities::kHydro +
         wind * SourceIntensities::kWind +
         solar * SourceIntensities::kSolar +
         biomass * SourceIntensities::kBiomass;
}

EnergyMix EnergyMix::with_added(std::string_view source, double share) const {
  EASYC_REQUIRE(share >= 0.0 && share <= 1.0, "share must be in [0,1]");
  EnergyMix out = *this;
  const double keep = 1.0 - share;
  out.coal *= keep;
  out.gas *= keep;
  out.oil *= keep;
  out.nuclear *= keep;
  out.hydro *= keep;
  out.wind *= keep;
  out.solar *= keep;
  out.biomass *= keep;
  const std::string s = util::to_lower(source);
  if (s == "coal") out.coal += share;
  else if (s == "gas") out.gas += share;
  else if (s == "oil") out.oil += share;
  else if (s == "nuclear") out.nuclear += share;
  else if (s == "hydro") out.hydro += share;
  else if (s == "wind") out.wind += share;
  else if (s == "solar") out.solar += share;
  else if (s == "biomass") out.biomass += share;
  else EASYC_REQUIRE(false, "unknown generation source");
  return out;
}

namespace {

//                         coal   gas   oil  nucl  hydro wind  solar bio
const std::map<std::string, EnergyMix>& mixes() {
  static const std::map<std::string, EnergyMix> kMixes = {
      {"united states", {0.16, 0.42, 0.01, 0.18, 0.06, 0.10, 0.06, 0.01}},
      {"china",         {0.58, 0.03, 0.00, 0.05, 0.13, 0.10, 0.09, 0.02}},
      {"germany",       {0.22, 0.15, 0.01, 0.00, 0.05, 0.32, 0.14, 0.11}},
      {"france",        {0.00, 0.06, 0.01, 0.65, 0.12, 0.10, 0.05, 0.01}},
      {"japan",         {0.28, 0.33, 0.03, 0.09, 0.08, 0.01, 0.12, 0.06}},
      {"united kingdom",{0.01, 0.31, 0.00, 0.14, 0.02, 0.31, 0.05, 0.16}},
      {"italy",         {0.05, 0.45, 0.01, 0.00, 0.16, 0.08, 0.13, 0.12}},
      {"spain",         {0.01, 0.21, 0.01, 0.20, 0.12, 0.24, 0.19, 0.02}},
      {"finland",       {0.03, 0.04, 0.00, 0.42, 0.17, 0.20, 0.02, 0.12}},
      {"norway",        {0.00, 0.01, 0.00, 0.00, 0.88, 0.10, 0.00, 0.01}},
      {"sweden",        {0.00, 0.00, 0.00, 0.29, 0.40, 0.26, 0.02, 0.03}},
      {"india",         {0.72, 0.03, 0.00, 0.03, 0.08, 0.05, 0.08, 0.01}},
      {"australia",     {0.46, 0.18, 0.02, 0.00, 0.06, 0.13, 0.15, 0.00}},
      {"south korea",   {0.32, 0.27, 0.01, 0.30, 0.01, 0.01, 0.06, 0.02}},
      {"saudi arabia",  {0.00, 0.62, 0.37, 0.00, 0.00, 0.00, 0.01, 0.00}},
      {"switzerland",   {0.00, 0.01, 0.00, 0.36, 0.57, 0.01, 0.05, 0.00}},
      {"canada",        {0.05, 0.13, 0.00, 0.13, 0.60, 0.06, 0.01, 0.02}},
      {"brazil",        {0.03, 0.06, 0.01, 0.02, 0.62, 0.13, 0.10, 0.03}},
  };
  return kMixes;
}

}  // namespace

std::optional<EnergyMix> national_mix(std::string_view country) {
  auto it = mixes().find(util::to_lower(country));
  if (it == mixes().end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> mix_countries() {
  std::vector<std::string> out;
  for (const auto& [name, mix] : mixes()) out.push_back(name);
  return out;
}

}  // namespace easyc::grid
