#include "grid/temporal.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/units.hpp"

namespace easyc::grid {

namespace {
constexpr int kHoursPerDay = 24;
constexpr int kDaysPerYear = 365;
constexpr int kHoursPerYear = kHoursPerDay * kDaysPerYear;
}  // namespace

HourlyAciProfile::HourlyAciProfile(double annual_mean_g_kwh,
                                   const ProfileShape& shape) {
  EASYC_REQUIRE(annual_mean_g_kwh >= 0, "annual mean must be non-negative");
  hours_.resize(kHoursPerYear);
  for (int d = 0; d < kDaysPerYear; ++d) {
    // Seasonal: winter-high cosine peaking at day 15 (mid-January).
    const double seasonal =
        shape.seasonal_amp *
        std::cos(2.0 * M_PI * (d - 15) / static_cast<double>(kDaysPerYear));
    const bool weekend = (d % 7) >= 5;
    for (int h = 0; h < kHoursPerDay; ++h) {
      // Solar dip centred on 13:00 (sharper in summer).
      const double solar_season = 1.0 - 0.5 * seasonal / std::max(
          shape.seasonal_amp, 1e-12);
      const double solar =
          -shape.solar_depth * (shape.seasonal_amp > 0 ? solar_season : 1.0) *
          std::exp(-0.5 * std::pow((h - 13.0) / 2.5, 2.0));
      // Evening ramp centred on 19:00.
      const double evening =
          shape.evening_peak *
          std::exp(-0.5 * std::pow((h - 19.0) / 2.0, 2.0));
      double v = 1.0 + seasonal + solar + evening;
      if (weekend) v -= shape.weekend_drop;
      hours_[d * kHoursPerDay + h] = std::max(0.0, v);
    }
  }
  // Normalize so the arithmetic mean is exactly the annual mean.
  const double mean =
      std::accumulate(hours_.begin(), hours_.end(), 0.0) / hours_.size();
  EASYC_REQUIRE(mean > 0, "degenerate profile shape");
  for (double& v : hours_) v *= annual_mean_g_kwh / mean;
}

double HourlyAciProfile::annual_mean() const {
  return std::accumulate(hours_.begin(), hours_.end(), 0.0) / hours_.size();
}

double HourlyAciProfile::min() const {
  return *std::min_element(hours_.begin(), hours_.end());
}

double HourlyAciProfile::max() const {
  return *std::max_element(hours_.begin(), hours_.end());
}

double HourlyAciProfile::carbon_mt(const std::vector<double>& load_kw) const {
  EASYC_REQUIRE(!load_kw.empty(), "load series must not be empty");
  double grams = 0.0;
  for (int h = 0; h < kHoursPerYear; ++h) {
    const double kw = load_kw[h % load_kw.size()];
    EASYC_REQUIRE(kw >= 0, "load must be non-negative");
    grams += kw * hours_[h];  // 1 hour per sample: kW -> kWh
  }
  return util::g_to_mt(grams);
}

double HourlyAciProfile::carbon_mt_flat(double load_kw) const {
  return carbon_mt({load_kw});
}

double HourlyAciProfile::average_method_error(
    const std::vector<double>& load_kw) const {
  const double hourly = carbon_mt(load_kw);
  EASYC_REQUIRE(hourly > 0, "zero-carbon load");
  double kwh = 0.0;
  for (int h = 0; h < kHoursPerYear; ++h) kwh += load_kw[h % load_kw.size()];
  const double avg_method = util::g_to_mt(kwh * annual_mean());
  return (avg_method - hourly) / hourly;
}

double HourlyAciProfile::shifting_savings(double deferrable_share,
                                          int window_hours) const {
  EASYC_REQUIRE(deferrable_share >= 0.0 && deferrable_share <= 1.0,
                "deferrable share must be in [0,1]");
  EASYC_REQUIRE(window_hours >= 1 && window_hours <= kHoursPerDay,
                "window must be within a day");
  // Baseline: flat unit load. Shifted: move the deferrable share of each
  // day's energy into that day's cleanest `window_hours`.
  double base_g = 0.0;
  double shifted_g = 0.0;
  for (int d = 0; d < kDaysPerYear; ++d) {
    std::array<double, kHoursPerDay> day{};
    for (int h = 0; h < kHoursPerDay; ++h) {
      day[h] = hours_[d * kHoursPerDay + h];
      base_g += day[h];  // 1 kW flat
    }
    std::array<double, kHoursPerDay> sorted = day;
    std::sort(sorted.begin(), sorted.end());
    double clean_mean = 0.0;
    for (int h = 0; h < window_hours; ++h) clean_mean += sorted[h];
    clean_mean /= window_hours;
    const double day_mean =
        std::accumulate(day.begin(), day.end(), 0.0) / kHoursPerDay;
    // Non-deferrable stays flat; deferrable energy runs at clean-window
    // intensity.
    shifted_g += kHoursPerDay * ((1.0 - deferrable_share) * day_mean +
                                 deferrable_share * clean_mean);
  }
  return (base_g - shifted_g) / base_g;
}

std::vector<double> diurnal_load(double mean_kw, double day_night_swing) {
  EASYC_REQUIRE(mean_kw > 0, "mean load must be positive");
  EASYC_REQUIRE(day_night_swing >= 0.0 && day_night_swing <= 1.0,
                "swing must be in [0,1]");
  std::vector<double> load(kHoursPerDay);
  for (int h = 0; h < kHoursPerDay; ++h) {
    // Peak at 15:00, trough at 03:00.
    load[h] = mean_kw * (1.0 + day_night_swing *
                                   std::sin(2.0 * M_PI * (h - 9) / 24.0));
  }
  return load;
}

}  // namespace easyc::grid
