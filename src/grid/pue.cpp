#include "grid/pue.hpp"

#include <algorithm>

namespace easyc::grid {

double default_pue(FacilityClass cls, int year) {
  // Anchors: industry-average PUE fell from ~1.6 (2015) to ~1.45
  // (2024); leadership liquid-cooled sites report 1.03-1.2.
  double base = 1.5;
  switch (cls) {
    case FacilityClass::kLeadershipLiquidCooled: base = 1.06; break;
    case FacilityClass::kModernDataCenter: base = 1.20; break;
    case FacilityClass::kLegacyMachineRoom: base = 1.42; break;
  }
  // ~0.01/yr improvement after 2018 for non-leadership classes.
  if (cls != FacilityClass::kLeadershipLiquidCooled && year > 2018) {
    base -= 0.01 * (std::min(year, 2030) - 2018);
  }
  return std::clamp(base, 1.03, 2.0);
}

FacilityClass infer_facility_class(double it_power_kw, int year) {
  if (it_power_kw >= 4000.0) return FacilityClass::kLeadershipLiquidCooled;
  if (it_power_kw >= 800.0 || year >= 2021) {
    return FacilityClass::kModernDataCenter;
  }
  return FacilityClass::kLegacyMachineRoom;
}

}  // namespace easyc::grid
