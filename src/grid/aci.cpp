#include "grid/aci.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace easyc::grid {

void AciDatabase::add(GridRegion region) {
  EASYC_REQUIRE(region.aci_g_kwh >= 0.0, "ACI must be non-negative");
  regions_.push_back(std::move(region));
}

std::optional<double> AciDatabase::country_aci(
    std::string_view country) const {
  for (const auto& r : regions_) {
    if (!r.subnational && util::iequals(r.name, country)) return r.aci_g_kwh;
  }
  return std::nullopt;
}

std::optional<double> AciDatabase::region_aci(std::string_view country,
                                              std::string_view region) const {
  if (util::trim(region).empty()) return std::nullopt;
  const std::string key =
      std::string(country) + "/" + std::string(util::trim(region));
  for (const auto& r : regions_) {
    if (r.subnational && util::iequals(r.name, key)) return r.aci_g_kwh;
  }
  return std::nullopt;
}

std::optional<double> AciDatabase::best_aci(std::string_view country,
                                            std::string_view region) const {
  if (auto refined = region_aci(country, region)) return refined;
  return country_aci(country);
}

const AciDatabase& AciDatabase::builtin() {
  static const AciDatabase db = [] {
    AciDatabase d;
    // --- Country annual averages (gCO2e/kWh, 2024-style values) ---
    for (const auto& [name, aci] : std::initializer_list<
             std::pair<const char*, double>>{
             {"United States", 369},
             {"China", 554},
             {"Japan", 462},
             {"Germany", 344},
             {"France", 56},
             {"Finland", 79},
             {"Italy", 331},
             {"Switzerland", 46},
             {"Spain", 174},
             {"Netherlands", 268},
             {"United Kingdom", 211},
             {"South Korea", 427},
             {"Korea, South", 427},
             {"Saudi Arabia", 706},
             {"United Arab Emirates", 561},
             {"Australia", 549},
             {"Canada", 171},
             {"Brazil", 96},
             {"Russia", 441},
             {"India", 713},
             {"Taiwan", 644},
             {"Singapore", 471},
             {"Norway", 29},
             {"Sweden", 36},
             {"Denmark", 151},
             {"Iceland", 28},
             {"Ireland", 282},
             {"Poland", 662},
             {"Czech Republic", 415},
             {"Czechia", 415},
             {"Austria", 110},
             {"Belgium", 139},
             {"Luxembourg", 159},
             {"Portugal", 150},
             {"Slovenia", 231},
             {"Slovakia", 106},
             {"Hungary", 205},
             {"Bulgaria", 387},
             {"Croatia", 205},
             {"Greece", 336},
             {"Morocco", 624},
             {"Thailand", 471},
             {"Malaysia", 585},
             {"Indonesia", 675},
             {"Vietnam", 472},
             {"Israel", 537},
             {"Turkey", 414},
             {"Mexico", 408},
             {"Argentina", 354},
             {"Chile", 291},
             {"South Africa", 708},
             {"Egypt", 470},
             {"Qatar", 602},
             {"Kuwait", 649},
             {"Bahrain", 905},
             {"New Zealand", 112},
             {"Hong Kong", 610},
             {"Kazakhstan", 821},
             {"Ukraine", 259},
             {"Romania", 264},
             {"Serbia", 582},
             {"Estonia", 416},
             {"Lithuania", 160},
             {"Latvia", 120},
         }) {
      d.add({name, aci, false});
    }
    // --- Sub-national refinements (the "+ public info" scenario).
    // US balancing authorities / states hosting Top500 sites, plus a
    // few non-US regions with grids far from their national average.
    for (const auto& [name, aci] : std::initializer_list<
             std::pair<const char*, double>>{
             {"United States/California", 239},
             {"United States/TVA", 470},       // Oak Ridge (Frontier)
             {"United States/Tennessee", 470},
             {"United States/Illinois", 271},  // Argonne (Aurora)
             {"United States/New Mexico", 430},
             {"United States/Washington", 106},
             {"United States/Texas", 431},
             {"United States/Wyoming", 791},
             {"United States/Iowa", 339},
             {"United States/Virginia", 324},
             {"United States/Ohio", 522},
             {"United States/Florida", 417},
             {"United States/Colorado", 542},
             {"United States/Utah", 605},
             {"United States/New York", 211},
             {"United States/Massachusetts", 353},
             {"United States/Idaho", 137},
             {"United States/Mississippi", 434},
             {"Japan/Kyushu", 331},     // nuclear-heavy island grid
             {"Japan/Kansai", 360},     // Kobe (Fugaku)
             {"Japan/Hokuriku", 501},
             {"Germany/Bavaria", 256},
             {"China/Guangdong", 523},
             {"China/Wuxi", 560},       // Jiangsu grid, near national avg
             {"Canada/Quebec", 28},
             {"Canada/Ontario", 71},
             {"Canada/Alberta", 510},
             {"Australia/Western Australia", 504},
             {"Finland/Kajaani", 73},   // LUMI: hydro-heavy local mix
             {"Italy/Bologna", 285},
             {"Switzerland/Lugano", 39},
         }) {
      d.add({name, aci, true});
    }
    return d;
  }();
  return db;
}

}  // namespace easyc::grid
