// Time-resolved grid carbon intensity.
//
// The paper lists "inconsistent time granularity" of carbon-intensity
// data among the systematic errors of GHG-protocol accounting. This
// module models an hourly ACI profile around an annual average —
// diurnal solar displacement (the "duck curve"), a seasonal component,
// and weekday/weekend demand — and quantifies:
//   * the error made by using the annual average for a non-flat load,
//   * the savings available to carbon-aware schedulers that shift
//     deferrable load into clean hours.
#pragma once

#include <array>
#include <vector>

namespace easyc::grid {

/// Shape parameters for a synthetic hourly profile. All amplitudes are
/// relative to the annual mean (e.g. 0.2 = +/-20% swing).
struct ProfileShape {
  double solar_depth = 0.15;     ///< midday dip from solar generation
  double evening_peak = 0.12;    ///< evening ramp (gas peakers)
  double seasonal_amp = 0.10;    ///< winter-high seasonal swing
  double weekend_drop = 0.05;    ///< weekend demand reduction
};

/// One year of hourly intensities (8760 values, gCO2e/kWh).
class HourlyAciProfile {
 public:
  /// Build a profile whose arithmetic mean equals `annual_mean_g_kwh`.
  HourlyAciProfile(double annual_mean_g_kwh, const ProfileShape& shape = {});

  const std::vector<double>& hours() const { return hours_; }
  double annual_mean() const;
  double min() const;
  double max() const;

  /// Carbon (MT CO2e) of an hourly load series (kW per hour; shorter
  /// series wrap around the year).
  double carbon_mt(const std::vector<double>& load_kw) const;

  /// Carbon of a constant load, which by construction equals the
  /// annual-average computation (flat loads are insensitive to time
  /// granularity).
  double carbon_mt_flat(double load_kw) const;

  /// Relative error (fraction) of the annual-average method for a given
  /// load series: (avg-method - hourly-method) / hourly-method.
  double average_method_error(const std::vector<double>& load_kw) const;

  /// Carbon saving (fraction) from shifting a fraction
  /// `deferrable_share` of a flat load into the cleanest `window_hours`
  /// of each day.
  double shifting_savings(double deferrable_share, int window_hours) const;

 private:
  std::vector<double> hours_;
};

/// A daily load shape for a diurnally-varying HPC/AI facility: interactive
/// daytime load plus a batch trough at night. Mean equals `mean_kw`.
std::vector<double> diurnal_load(double mean_kw, double day_night_swing);

}  // namespace easyc::grid
