#include "report/experiments.hpp"

#include <cmath>

#include "analysis/coverage.hpp"
#include "analysis/equivalence.hpp"
#include "report/paper_reference.hpp"
#include "util/ascii.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace easyc::report {

namespace {

using util::format_double;
using util::with_commas;
using P = PaperReference;

std::string paper_vs(const std::string& what, double paper, double measured,
                     int digits = 0) {
  return "  [paper-vs-measured] " + what + ": paper=" +
         format_double(paper, digits) +
         " measured=" + format_double(measured, digits) + "\n";
}

std::vector<double> ranks_of(const analysis::PipelineResult& r) {
  std::vector<double> xs;
  xs.reserve(r.records.size());
  for (const auto& rec : r.records) xs.push_back(rec.rank);
  return xs;
}

// Sampled scatter of covered systems for series plots.
void covered_points(const analysis::CarbonSeries& s,
                    const std::vector<top500::SystemRecord>& recs,
                    std::vector<double>* xs, std::vector<double>* ys) {
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i]) {
      xs->push_back(recs[i].rank);
      ys->push_back(*s[i] / 1000.0);  // thousand MT
    }
  }
}

std::string coverage_range_report(const analysis::PipelineResult& r,
                                  bool operational_side,
                                  const char* figure_label) {
  std::string out;
  out += std::string(figure_label) + "\n";
  auto base = analysis::coverage_by_range(r.records, r.baseline().assessments,
                                          operational_side);
  auto enh = analysis::coverage_by_range(r.records, r.enhanced().assessments,
                                         operational_side);
  util::TextTable t({"Rank range", "Top500.org %", "+public %"});
  for (size_t i = 0; i < base.size(); ++i) {
    t.add_row({base[i].range.label(), format_double(base[i].covered_pct, 1),
               format_double(enh[i].covered_pct, 1)});
  }
  out += t.render();
  return out;
}

}  // namespace

std::string fig02_missingness(const analysis::PipelineResult& r) {
  std::string out =
      "Fig. 2 — Structural information reported for Top500 data items\n";
  const auto hist = analysis::fig2_histogram(r.records);
  std::vector<util::Bar> bars;
  for (int k = 1; k <= top500::kNumTop500DataItems; ++k) {
    bars.push_back({std::to_string(k), static_cast<double>(hist[k])});
  }
  bars.push_back({"None", static_cast<double>(hist[0])});
  out += util::bar_chart(bars, 50, "# of systems missing k data items");
  out += "  (every system misses at least the Memory item: Table I "
         "reports 499/500 without memory capacity)\n";
  return out;
}

std::string fig03_carbon_vs_rank_baseline(const analysis::PipelineResult& r) {
  std::string out =
      "Fig. 3 — Carbon vs rank, Top500.org data only (thousand MT CO2e)\n";
  std::vector<double> xs, ys;
  covered_points(r.baseline().operational, r.records, &xs, &ys);
  out += util::series_plot(xs, ys, 72, 14, "(a) Operational, covered " +
                                               std::to_string(xs.size()) +
                                               "/500");
  xs.clear();
  ys.clear();
  covered_points(r.baseline().embodied, r.records, &xs, &ys);
  out += util::series_plot(xs, ys, 72, 14, "(b) Embodied, covered " +
                                               std::to_string(xs.size()) +
                                               "/500");
  out += paper_vs("op covered (Top500.org)", P::kOpCoveredTop500,
                  r.baseline().coverage.operational);
  out += paper_vs("emb covered (Top500.org)", P::kEmbCoveredTop500,
                  r.baseline().coverage.embodied);
  return out;
}

std::string fig04_coverage_bars(const analysis::PipelineResult& r) {
  std::string out = "Fig. 4 — Carbon footprint reporting coverage\n";
  const auto ghg = analysis::ghg_protocol_coverage(r.records);
  const auto& base = r.baseline();
  const auto& enh = r.enhanced();
  out += util::bar_chart(
      {{"GHG protocol", static_cast<double>(ghg.operational)},
       {"EasyC (top500.org)",
        static_cast<double>(base.coverage.operational)},
       {"EasyC (+public)",
        static_cast<double>(enh.coverage.operational)}},
      50, "(a) Operational: number of systems");
  out += util::bar_chart(
      {{"GHG protocol", static_cast<double>(ghg.embodied)},
       {"EasyC (top500.org)",
        static_cast<double>(base.coverage.embodied)},
       {"EasyC (+public)",
        static_cast<double>(enh.coverage.embodied)}},
      50, "(b) Embodied: number of systems");
  out += paper_vs("op coverage +public", P::kOpCoveredPublic,
                  enh.coverage.operational);
  out += paper_vs("emb coverage +public", P::kEmbCoveredPublic,
                  enh.coverage.embodied);
  int both = 0;
  for (size_t i = 0; i < base.assessments.size(); ++i) {
    if (base.assessments[i].operational.ok() &&
        base.assessments[i].embodied.ok()) {
      ++both;
    }
  }
  out += paper_vs("% with both op+emb from Top500.org alone",
                  P::kBothCoveredTop500Pct, both / 5.0, 1);
  return out;
}

std::string fig05_op_coverage_ranges(const analysis::PipelineResult& r) {
  return coverage_range_report(
      r, true, "Fig. 5 — Operational coverage by rank range");
}

std::string fig06_emb_coverage_ranges(const analysis::PipelineResult& r) {
  return coverage_range_report(
      r, false, "Fig. 6 — Embodied coverage by rank range");
}

std::string fig07_totals(const analysis::PipelineResult& r) {
  std::string out = "Fig. 7 — Total and average carbon footprint\n";
  const int op_n = r.enhanced().coverage.operational;
  const int emb_n = r.enhanced().coverage.embodied;
  util::TextTable t({"Set", "Operational (kMT)", "Embodied (kMT)"});
  t.add_row({std::to_string(op_n) + "," + std::to_string(emb_n) + " (Total)",
             format_double(r.op_total_covered_mt / 1000.0, 1),
             format_double(r.emb_total_covered_mt / 1000.0, 1)});
  t.add_row({"500 (Total Interpolated)",
             format_double(r.op_total_full_mt / 1000.0, 1),
             format_double(r.emb_total_full_mt / 1000.0, 1)});
  t.add_row({std::to_string(op_n) + "," + std::to_string(emb_n) + " (Avg)",
             format_double(r.op_total_covered_mt / op_n / 1000.0, 3),
             format_double(r.emb_total_covered_mt / emb_n / 1000.0, 3)});
  t.add_row({"500 (Avg Interpolated)",
             format_double(r.op_total_full_mt / 500.0 / 1000.0, 3),
             format_double(r.emb_total_full_mt / 500.0 / 1000.0, 3)});
  out += t.render();
  out += paper_vs("op total covered (MT)", P::kOpTotalCoveredMt,
                  r.op_total_covered_mt);
  out += paper_vs("emb total covered (MT)", P::kEmbTotalCoveredMt,
                  r.emb_total_covered_mt);
  out += paper_vs("op total full 500 (MT)", P::kOpTotalFullMt,
                  r.op_total_full_mt);
  out += paper_vs("emb total full 500 (MT)", P::kEmbTotalFullMt,
                  r.emb_total_full_mt);
  const double op_pct = (r.op_total_full_mt - r.op_total_covered_mt) /
                        r.op_total_covered_mt * 100.0;
  const double emb_pct = (r.emb_total_full_mt - r.emb_total_covered_mt) /
                         r.emb_total_covered_mt * 100.0;
  out += paper_vs("interpolation adds to op total (%)",
                  P::kOpInterpolationPct, op_pct, 2);
  out += paper_vs("interpolation adds to emb total (%)",
                  P::kEmbInterpolationPct, emb_pct, 2);
  return out;
}

std::string fig08_full_assessment(const analysis::PipelineResult& r) {
  std::string out =
      "Fig. 8 — Full Top500 carbon vs rank (EasyC + public + interpolated, "
      "thousand MT CO2e)\n";
  const auto xs = ranks_of(r);
  std::vector<double> op, emb;
  for (double v : r.op_interpolated.values) op.push_back(v / 1000.0);
  for (double v : r.emb_interpolated.values) emb.push_back(v / 1000.0);
  out += util::series_plot(xs, op, 72, 14, "(a) Operational (all 500)");
  out += util::series_plot(xs, emb, 72, 14, "(b) Embodied (all 500)");
  out += "  interpolated systems: op " +
         std::to_string(r.op_interpolated.interpolated_indices.size()) +
         " (paper: 10), emb " +
         std::to_string(r.emb_interpolated.interpolated_indices.size()) +
         " (paper: 96)\n";
  return out;
}

std::string fig09_sensitivity_diff(const analysis::PipelineResult& r) {
  std::string out =
      "Fig. 9 — Baseline vs Baseline+PublicInfo per-system change "
      "(thousand MT CO2e)\n";
  const auto s = analysis::sensitivity(r);
  std::vector<double> xs, ys;
  for (const auto& d : s.operational) {
    xs.push_back(d.rank);
    ys.push_back(d.delta_mt / 1000.0);
  }
  out += util::series_plot(xs, ys, 72, 12, "(a) Operational diff");
  xs.clear();
  ys.clear();
  for (const auto& d : s.embodied) {
    xs.push_back(d.rank);
    ys.push_back(d.delta_mt / 1000.0);
  }
  out += util::series_plot(xs, ys, 72, 12, "(b) Embodied diff");
  out += paper_vs("max |op per-system change| (%)", P::kOpMaxPerSystemPct,
                  s.op_max_abs_pct, 1);
  out += paper_vs("op total change (%)", P::kOpTotalChangePct,
                  s.op_total_pct, 2);
  out += paper_vs("emb total change (MT)", P::kEmbTotalChangeMt,
                  s.emb_total_enhanced_mt - s.emb_total_baseline_mt);
  out += paper_vs("emb total change (%)", P::kEmbTotalChangePct,
                  s.emb_total_pct, 1);
  return out;
}

std::string fig10_projection(const analysis::PipelineResult& r) {
  std::string out =
      "Fig. 10 — Projected Top500 carbon, 2024-2030 (thousand MT CO2e)\n";
  util::TextTable t({"Year", "Operational (kMT)", "Embodied (kMT)"});
  for (const auto& p : r.projection) {
    t.add_row({std::to_string(p.year), format_double(p.operational_kmt, 0),
               format_double(p.embodied_kmt, 0)});
  }
  out += t.render();
  const auto& first = r.projection.front();
  const auto& last = r.projection.back();
  out += paper_vs("op 2030 / 2024 factor", P::kOp2030Factor,
                  last.operational_kmt / first.operational_kmt, 2);
  out += paper_vs("emb 2030 / 2024 factor", P::kEmb2030Factor,
                  last.embodied_kmt / first.embodied_kmt, 2);
  return out;
}

std::string fig11_perf_per_carbon(const analysis::PipelineResult& r) {
  std::string out =
      "Fig. 11 — Projected performance-to-carbon ratio (PFlop/s per "
      "thousand MT CO2e)\n";
  util::TextTable t({"Year", "Projected (op)", "Projected (emb)", "Ideal"});
  for (const auto& p : r.projection) {
    t.add_row({std::to_string(p.year), format_double(p.op_ratio, 2),
               format_double(p.emb_ratio, 2),
               format_double(p.ideal_ratio, 2)});
  }
  out += t.render();
  const auto& first = r.projection.front();
  const auto& second = r.projection[1];
  out += paper_vs("op ratio slope (PF/kMT per year)", P::kPerfPerCarbonSlope,
                  second.op_ratio - first.op_ratio, 2);
  out += "  ideal curve doubles every 18 months; projected improvement is "
         "dramatically slower (paper Section IV-C)\n";
  return out;
}

std::string table1_data_gaps(const analysis::PipelineResult& r) {
  std::string out =
      "Table I — EasyC-required data unavailable per source\n";
  const auto t500 =
      analysis::table1_gaps(r.records, top500::DataVisibility::kTop500Org);
  const auto pub =
      analysis::table1_gaps(r.records, top500::DataVisibility::kTop500PlusPublic);
  util::TextTable t({"Type", "# Incomplete [Top500.org]",
                     "# Incomplete [Other Public]"});
  for (size_t i = 0; i < t500.size(); ++i) {
    t.add_row({model::metric_name(t500[i].metric),
               std::to_string(t500[i].systems_incomplete),
               std::to_string(pub[i].systems_incomplete)});
  }
  out += t.render();
  out += paper_vs("nodes missing (Top500.org)", P::kNodesMissingTop500,
                  t500[1].systems_incomplete);
  out += paper_vs("nodes missing (+public)", P::kNodesMissingPublic,
                  pub[1].systems_incomplete);
  out += paper_vs("memory missing (Top500.org)", P::kMemMissingTop500,
                  t500[4].systems_incomplete);
  out += paper_vs("SSD missing (+public)", P::kSsdMissingPublic,
                  pub[6].systems_incomplete);
  return out;
}

std::string table2_per_system(const analysis::PipelineResult& r,
                              int max_rows) {
  const auto& base = r.baseline();
  const auto& enh = r.enhanced();
  std::string out =
      "Table II — Per-system carbon footprint (MT CO2e) under three data "
      "scenarios\n";
  util::TextTable t({"Rank", "System", "op t500", "op +pub", "op +interp",
                     "emb t500", "emb +pub", "emb +interp"});
  const int n = max_rows == 0
                    ? static_cast<int>(r.records.size())
                    : std::min<int>(max_rows, r.records.size());
  auto cell = [](const std::optional<double>& v) {
    return v ? format_double(*v, 0) : std::string("");
  };
  for (int i = 0; i < n; ++i) {
    t.add_row({std::to_string(r.records[i].rank),
               r.records[i].name.empty() ? "(unnamed)" : r.records[i].name,
               cell(base.operational[i]),
               cell(enh.operational[i]),
               format_double(r.op_interpolated.values[i], 0),
               cell(base.embodied[i]),
               cell(enh.embodied[i]),
               format_double(r.emb_interpolated.values[i], 0)});
  }
  out += t.render();

  // Appendix contrasts.
  auto find_rank = [&](int rank) -> int {
    for (size_t i = 0; i < r.records.size(); ++i) {
      if (r.records[i].rank == rank) return static_cast<int>(i);
    }
    return -1;
  };
  const int lumi = find_rank(8);
  const int leo = find_rank(9);
  if (lumi >= 0 && leo >= 0 && enh.operational[leo] &&
      enh.operational[lumi]) {
    out += paper_vs("Leonardo / LUMI operational factor",
                    P::kLumiVsLeonardoOpFactor,
                    *enh.operational[leo] /
                        *enh.operational[lumi],
                    2);
  }
  const int frontier = find_rank(2);
  const int elcap = find_rank(1);
  if (frontier >= 0 && elcap >= 0 && enh.embodied[frontier] &&
      enh.embodied[elcap]) {
    out += paper_vs("Frontier / El Capitan embodied factor",
                    P::kFrontierVsElCapitanEmbFactor,
                    *enh.embodied[frontier] /
                        *enh.embodied[elcap],
                    2);
  }
  return out;
}

std::string scenario_summary(const analysis::PipelineResult& r) {
  util::TextTable t({"Scenario", "Data visibility", "Op cov", "Emb cov",
                     "Op total (kMT)", "Emb total (kMT)",
                     "Annualized (kMT/yr)"});
  for (const auto& s : r.scenarios) {
    t.add_row({s.spec.name, top500::visibility_name(s.spec.visibility),
               std::to_string(s.coverage.operational),
               std::to_string(s.coverage.embodied),
               format_double(s.total(true) / 1000.0, 1),
               format_double(s.total(false) / 1000.0, 1),
               format_double(s.annualized_total_mt() / 1000.0, 1)});
  }
  return "Registered scenarios\n" + t.render() +
         "  (totals sum each scenario's own covered systems — compare the "
         "coverage columns\n  before comparing totals across scenarios)\n";
}

std::string turnover_summary(const analysis::TurnoverReport& r,
                             bool include_cache_stats) {
  std::string out = "Turnover across list editions (engine-sharded)\n";
  util::TextTable t({"Edition", "New systems", "Op total (kMT)",
                     "Emb total (kMT)", "Perf (PFlop/s)"});
  for (const auto& e : r.editions) {
    t.add_row({e.label, std::to_string(e.num_new),
               format_double(e.op_total_mt / 1000.0, 0),
               format_double(e.emb_total_mt / 1000.0, 0),
               format_double(e.perf_pflops, 0)});
  }
  out += t.render();
  out += "Measured growth (paper values in parentheses):\n";
  out += "  new systems per cycle: " +
         format_double(r.avg_new_per_cycle, 1) + " (48)\n";
  out += "  operational per cycle: " +
         format_double(r.op_growth_per_cycle * 100, 2) + "% (5%)\n";
  out += "  embodied per cycle:    " +
         format_double(r.emb_growth_per_cycle * 100, 2) + "% (1%)\n";
  out += "  operational per year:  " +
         format_double(r.op_growth_annualized * 100, 2) + "% (10.3%)\n";
  out += "  embodied per year:     " +
         format_double(r.emb_growth_annualized * 100, 2) + "% (2%)\n";
  out += "  performance per year:  " +
         format_double(r.perf_growth_annualized * 100, 2) + "%\n";
  if (include_cache_stats) {
    out += "Assessment cache: " + std::to_string(r.cache.hits) + " hits / " +
           std::to_string(r.cache.misses) + " misses (" +
           format_double(r.cache.hit_rate() * 100, 1) + "% hit rate), " +
           std::to_string(r.cache.evictions) + " evictions, " +
           std::to_string(r.cache.entries) + " resident\n";
  }
  return out;
}

std::string headline_numbers(const analysis::PipelineResult& r) {
  std::string out = "Headline assessment of the Top 500\n";
  out += "  Operational carbon (1 year, full 500): " +
         format_double(r.op_total_full_mt / 1.0e6, 3) +
         " million MT CO2e (paper: 1.39)\n";
  out += "    = " + analysis::describe_equivalence(r.op_total_full_mt) + "\n";
  out += "  Embodied carbon (full 500): " +
         format_double(r.emb_total_full_mt / 1.0e6, 3) +
         " million MT CO2e (paper: 1.88)\n";
  out += "    = " + analysis::describe_equivalence(r.emb_total_full_mt) +
         "\n";
  out += paper_vs("op vehicles-equivalent", P::kOpVehicles,
                  analysis::equivalences(r.op_total_full_mt).vehicles);
  out += paper_vs("emb vehicles-equivalent", P::kEmbVehicles,
                  analysis::equivalences(r.emb_total_full_mt).vehicles);
  return out;
}

std::vector<std::string> write_figure_csvs(const analysis::PipelineResult& r,
                                           const std::string& dir) {
  const auto& base = r.baseline();
  const auto& enh = r.enhanced();
  std::vector<std::string> written;
  auto emit = [&](const std::string& name, const util::CsvTable& t) {
    const std::string path = dir + "/" + name;
    t.write_file(path);
    written.push_back(path);
  };

  {
    util::CsvTable t({"missing_items", "num_systems"});
    const auto hist = analysis::fig2_histogram(r.records);
    for (int k = 1; k <= top500::kNumTop500DataItems; ++k) {
      t.add_row({std::to_string(k), std::to_string(hist[k])});
    }
    t.add_row({"none", std::to_string(hist[0])});
    emit("fig02_missingness.csv", t);
  }
  {
    util::CsvTable t({"rank", "op_t500_mt", "op_public_mt", "op_interp_mt",
                      "emb_t500_mt", "emb_public_mt", "emb_interp_mt"});
    auto cell = [](const std::optional<double>& v) {
      return v ? util::format_double(*v, 2) : std::string("");
    };
    for (size_t i = 0; i < r.records.size(); ++i) {
      t.add_row({std::to_string(r.records[i].rank),
                 cell(base.operational[i]),
                 cell(enh.operational[i]),
                 util::format_double(r.op_interpolated.values[i], 2),
                 cell(base.embodied[i]),
                 cell(enh.embodied[i]),
                 util::format_double(r.emb_interpolated.values[i], 2)});
    }
    emit("table2_per_system.csv", t);
  }
  {
    util::CsvTable t({"year", "operational_kmt", "embodied_kmt",
                      "perf_pflops", "op_ratio", "emb_ratio", "ideal_ratio"});
    for (const auto& p : r.projection) {
      t.add_row({std::to_string(p.year),
                 util::format_double(p.operational_kmt, 2),
                 util::format_double(p.embodied_kmt, 2),
                 util::format_double(p.perf_pflops, 2),
                 util::format_double(p.op_ratio, 4),
                 util::format_double(p.emb_ratio, 4),
                 util::format_double(p.ideal_ratio, 4)});
    }
    emit("fig10_fig11_projection.csv", t);
  }
  {
    const auto ghg = analysis::ghg_protocol_coverage(r.records);
    util::CsvTable t({"method", "operational_covered", "embodied_covered"});
    t.add_row({"ghg_protocol", std::to_string(ghg.operational),
               std::to_string(ghg.embodied)});
    t.add_row({"easyc_top500org",
               std::to_string(base.coverage.operational),
               std::to_string(base.coverage.embodied)});
    t.add_row({"easyc_plus_public",
               std::to_string(enh.coverage.operational),
               std::to_string(enh.coverage.embodied)});
    emit("fig04_coverage.csv", t);
  }
  {
    util::CsvTable t({"rank_range", "op_t500_pct", "op_public_pct",
                      "emb_t500_pct", "emb_public_pct"});
    const auto op_base =
        analysis::coverage_by_range(r.records, base.assessments, true);
    const auto op_enh =
        analysis::coverage_by_range(r.records, enh.assessments, true);
    const auto emb_base =
        analysis::coverage_by_range(r.records, base.assessments, false);
    const auto emb_enh =
        analysis::coverage_by_range(r.records, enh.assessments, false);
    for (size_t i = 0; i < op_base.size(); ++i) {
      t.add_row({op_base[i].range.label(),
                 util::format_double(op_base[i].covered_pct, 2),
                 util::format_double(op_enh[i].covered_pct, 2),
                 util::format_double(emb_base[i].covered_pct, 2),
                 util::format_double(emb_enh[i].covered_pct, 2)});
    }
    emit("fig05_fig06_range_coverage.csv", t);
  }
  {
    const auto s = analysis::sensitivity(r);
    util::CsvTable t({"side", "rank", "delta_mt", "pct"});
    for (const auto& d : s.operational) {
      t.add_row({"operational", std::to_string(d.rank),
                 util::format_double(d.delta_mt, 3),
                 util::format_double(d.pct, 3)});
    }
    for (const auto& d : s.embodied) {
      t.add_row({"embodied", std::to_string(d.rank),
                 util::format_double(d.delta_mt, 3),
                 util::format_double(d.pct, 3)});
    }
    emit("fig09_sensitivity.csv", t);
  }
  return written;
}

}  // namespace easyc::report
