// Report builders: one function per paper table/figure. Each renders a
// human-readable reproduction (ASCII table/chart + paper-vs-measured
// lines) from a PipelineResult; the bench harness prints them and
// EXPERIMENTS.md records the outcomes.
#pragma once

#include <string>

#include "analysis/pipeline.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/turnover.hpp"

namespace easyc::report {

std::string fig02_missingness(const analysis::PipelineResult& r);
std::string fig03_carbon_vs_rank_baseline(const analysis::PipelineResult& r);
std::string fig04_coverage_bars(const analysis::PipelineResult& r);
std::string fig05_op_coverage_ranges(const analysis::PipelineResult& r);
std::string fig06_emb_coverage_ranges(const analysis::PipelineResult& r);
std::string fig07_totals(const analysis::PipelineResult& r);
std::string fig08_full_assessment(const analysis::PipelineResult& r);
std::string fig09_sensitivity_diff(const analysis::PipelineResult& r);
std::string fig10_projection(const analysis::PipelineResult& r);
std::string fig11_perf_per_carbon(const analysis::PipelineResult& r);
std::string table1_data_gaps(const analysis::PipelineResult& r);
/// Per-system carbon under the three data scenarios (appendix Table II);
/// `max_rows` limits output (0 = all 500).
std::string table2_per_system(const analysis::PipelineResult& r,
                              int max_rows = 40);
std::string headline_numbers(const analysis::PipelineResult& r);
/// Per-scenario coverage/totals table over every registered scenario —
/// the part of the report the closed two-scenario pipeline could not
/// produce.
std::string scenario_summary(const analysis::PipelineResult& r);
/// Multi-edition turnover: per-edition footprints, measured growth
/// rates (paper values annotated), and the engine's cache statistics —
/// shared by the CLI's --turnover mode and the turnover ablation bench.
/// `include_cache_stats=false` drops the trailing cache line: the
/// counts legitimately differ between cold and warm-started runs, so
/// the server's deterministic reply payload excludes them (they travel
/// as a note instead).
std::string turnover_summary(const analysis::TurnoverReport& r,
                             bool include_cache_stats = true);

/// Dump machine-readable figure data as CSV files under `dir`
/// (created by the caller). Returns the list of files written.
std::vector<std::string> write_figure_csvs(const analysis::PipelineResult& r,
                                           const std::string& dir);

}  // namespace easyc::report
