// Published values from the paper, used to print paper-vs-measured
// comparisons in every benchmark (EXPERIMENTS.md records the outcomes).
// We reproduce *shape* (who wins, rough factors, crossovers), not the
// authors' exact figures: our substrate is a calibrated synthetic list,
// not the live November-2024 scrape.
#pragma once

namespace easyc::report {

struct PaperReference {
  // Coverage (Figs. 4-6, Section IV-A).
  static constexpr int kOpCoveredTop500 = 391;
  static constexpr int kEmbCoveredTop500 = 283;
  static constexpr int kOpCoveredPublic = 490;   // 98% of 500
  static constexpr int kEmbCoveredPublic = 404;  // 80.8% of 500
  static constexpr double kBothCoveredTop500Pct = 56.6;

  // Table I missingness (Top500.org / +public).
  static constexpr int kNodesMissingTop500 = 209;
  static constexpr int kNodesMissingPublic = 86;
  static constexpr int kGpusMissingTop500 = 209;
  static constexpr int kGpusMissingPublic = 86;
  static constexpr int kMemMissingTop500 = 499;
  static constexpr int kMemMissingPublic = 292;
  static constexpr int kMemTypeMissingTop500 = 500;
  static constexpr int kMemTypeMissingPublic = 292;
  static constexpr int kSsdMissingTop500 = 500;
  static constexpr int kSsdMissingPublic = 450;
  static constexpr int kUtilMissingTop500 = 500;
  static constexpr int kUtilMissingPublic = 497;
  static constexpr int kEnergyMissingTop500 = 500;
  static constexpr int kEnergyMissingPublic = 492;

  // Headline totals (Section IV-B, Fig. 7).
  static constexpr double kOpTotalCoveredMt = 1.37e6;   // 490 systems
  static constexpr double kEmbTotalCoveredMt = 1.53e6;  // 404 systems
  static constexpr double kOpTotalFullMt = 1.39e6;      // interpolated 500
  static constexpr double kEmbTotalFullMt = 1.88e6;
  static constexpr double kOpInterpolationPct = 1.74;   // +10 systems
  static constexpr double kEmbInterpolationPct = 23.18; // +96 systems

  // Equivalences.
  static constexpr double kOpVehicles = 325000;
  static constexpr double kOpVehicleMilesB = 3.5;  // billions
  static constexpr double kEmbVehicles = 439000;
  static constexpr double kEmbVehicleMilesB = 4.8;

  // Sensitivity (Fig. 9).
  static constexpr double kOpTotalChangePct = 2.85;
  static constexpr double kOpTotalChangeMt = 38000;
  static constexpr double kOpMaxPerSystemPct = 77.5;
  static constexpr double kEmbTotalChangeMt = 670480;
  static constexpr double kEmbTotalChangePct = 78.0;

  // Projection (Figs. 10-11).
  static constexpr double kOpGrowthPerYear = 0.103;
  static constexpr double kEmbGrowthPerYear = 0.02;
  static constexpr double kOp2030Factor = 1.8;   // ~1.8x 2024 by 2030
  static constexpr double kEmb2030Factor = 1.1;
  static constexpr double kPerfPerCarbonSlope = 0.2;  // PF per kMT per yr

  // Named-system contrasts (Appendix discussion).
  static constexpr double kLumiVsLeonardoOpFactor = 4.3;
  static constexpr double kFrontierVsElCapitanEmbFactor = 2.6;

  // EasyC tool facts (Fig. 1).
  static constexpr int kKeyMetrics = 7;
  static constexpr int kOptionalMetrics = 2;
};

}  // namespace easyc::report
