#include "util/ascii.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace easyc::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  size_t digits = 0;
  for (char c : s) {
    if ((c >= '0' && c <= '9')) ++digits;
    else if (c != '.' && c != '-' && c != '+' && c != ',' && c != '%' &&
             c != 'e' && c != 'E') {
      return false;
    }
  }
  return digits > 0;
}

std::string pad(const std::string& s, size_t width, bool right_align) {
  if (s.size() >= width) return s;
  std::string fill(width - s.size(), ' ');
  return right_align ? fill + s : s + fill;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  EASYC_REQUIRE(!header_.empty(), "table must have at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  EASYC_REQUIRE(row.size() == header_.size(),
                "table row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  const size_t ncols = header_.size();
  std::vector<size_t> width(ncols);
  std::vector<bool> numeric(ncols, true);
  for (size_t c = 0; c < ncols; ++c) {
    width[c] = header_[c].size();
    bool any_data = false;
    for (const auto& r : rows_) {
      width[c] = std::max(width[c], r[c].size());
      if (!r[c].empty()) {
        any_data = true;
        if (!looks_numeric(r[c])) numeric[c] = false;
      }
    }
    if (!any_data) numeric[c] = false;
  }

  std::string out;
  auto emit = [&](const std::vector<std::string>& r, bool align_numeric) {
    for (size_t c = 0; c < ncols; ++c) {
      if (c > 0) out += "  ";
      out += pad(r[c], width[c], align_numeric && numeric[c]);
    }
    // Trim trailing spaces for clean diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit(header_, false);
  std::string rule;
  for (size_t c = 0; c < ncols; ++c) {
    if (c > 0) rule += "  ";
    rule += std::string(width[c], '-');
  }
  out += rule + "\n";
  for (const auto& r : rows_) emit(r, true);
  return out;
}

std::string bar_chart(const std::vector<Bar>& bars, int width,
                      const std::string& title) {
  EASYC_REQUIRE(width > 0, "bar chart width must be positive");
  std::string out;
  if (!title.empty()) out += title + "\n";
  if (bars.empty()) return out + "(no data)\n";

  double maxabs = 0.0;
  size_t label_w = 0;
  for (const auto& b : bars) {
    maxabs = std::max(maxabs, std::fabs(b.value));
    label_w = std::max(label_w, b.label.size());
  }
  if (maxabs == 0.0) maxabs = 1.0;
  for (const auto& b : bars) {
    const int n = static_cast<int>(
        std::lround(std::fabs(b.value) / maxabs * width));
    out += pad(b.label, label_w, false);
    out += " |";
    out += std::string(static_cast<size_t>(n), b.value < 0 ? '-' : '#');
    out += ' ';
    out += format_double(b.value, 2);
    out += '\n';
  }
  return out;
}

namespace {

std::string render_grid(const std::vector<double>& xs,
                        const std::vector<std::vector<double>>& series,
                        const std::vector<char>& glyphs, int width, int height,
                        const std::string& title) {
  EASYC_REQUIRE(width > 8 && height > 2, "plot must be at least 9x3");
  std::string out;
  if (!title.empty()) out += title + "\n";
  if (xs.empty()) return out + "(no data)\n";

  double xmin = xs.front();
  double xmax = xs.front();
  for (double x : xs) {
    xmin = std::min(xmin, x);
    xmax = std::max(xmax, x);
  }
  double ymin = 0.0;  // carbon axes start at zero, matching the paper
  double ymax = 0.0;
  for (const auto& s : series) {
    for (double y : s) {
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  for (size_t si = 0; si < series.size(); ++si) {
    const auto& ys = series[si];
    for (size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
      const int col = static_cast<int>(
          std::lround((xs[i] - xmin) / (xmax - xmin) * (width - 1)));
      const int row = static_cast<int>(
          std::lround((ys[i] - ymin) / (ymax - ymin) * (height - 1)));
      const int r = height - 1 - std::clamp(row, 0, height - 1);
      grid[static_cast<size_t>(r)][static_cast<size_t>(std::clamp(
          col, 0, width - 1))] = glyphs[si];
    }
  }
  out += "  y: " + format_double(ymin, 1) + " .. " + format_double(ymax, 1) +
         "\n";
  for (const auto& line : grid) out += " |" + line + "\n";
  out += " +" + std::string(static_cast<size_t>(width), '-') + "\n";
  out += "  x: " + format_double(xmin, 1) + " .. " + format_double(xmax, 1) +
         "\n";
  return out;
}

}  // namespace

std::string series_plot(const std::vector<double>& xs,
                        const std::vector<double>& ys, int width, int height,
                        const std::string& title) {
  return render_grid(xs, {ys}, {'*'}, width, height, title);
}

std::string dual_series_plot(const std::vector<double>& xs,
                             const std::vector<double>& ys1,
                             const std::vector<double>& ys2, int width,
                             int height, const std::string& title) {
  return render_grid(xs, {ys1, ys2}, {'*', 'o'}, width, height, title);
}

}  // namespace easyc::util
