// Endian-stable binary serialization primitives.
//
// The assessment cache persists across processes (snapshot files the
// CLI warm-starts from), so the byte format must be stable across
// machines, compilers, and time — never memcpy a struct. Every integer
// is written little-endian byte by byte, doubles as their IEEE-754 bit
// pattern (bit-identity is the cache's contract, so -0.0, NaN payloads
// and all survive the round trip), strings as length + raw bytes.
// Readers bounds-check every access and throw CodecError instead of
// reading past the buffer, so truncated or corrupt files are rejected,
// not trusted.
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace easyc::util {

/// Raised when encoded bytes cannot be decoded: truncation, a value
/// outside its domain, a bad checksum, or a format/version mismatch.
class CodecError : public Error {
 public:
  explicit CodecError(const std::string& what)
      : Error("codec error: " + what) {}
};

/// Append-only little-endian byte buffer.
class BinaryWriter {
 public:
  BinaryWriter& u8(uint8_t v) {
    bytes_.push_back(static_cast<char>(v));
    return *this;
  }

  BinaryWriter& u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
    return *this;
  }

  BinaryWriter& u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
    return *this;
  }

  /// IEEE-754 bit pattern; the exact double round-trips, including
  /// -0.0 and every NaN payload.
  BinaryWriter& f64(double v) { return u64(std::bit_cast<uint64_t>(v)); }

  BinaryWriter& boolean(bool v) { return u8(v ? 1 : 0); }

  /// Length-prefixed raw bytes (embedded NULs survive).
  BinaryWriter& str(std::string_view s) {
    u64(s.size());
    bytes_.append(s.data(), s.size());
    return *this;
  }

  /// Unprefixed raw bytes (for fixed-size magic tags).
  BinaryWriter& raw(std::string_view s) {
    bytes_.append(s.data(), s.size());
    return *this;
  }

  const std::string& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

/// Bounds-checked cursor over an encoded buffer. The buffer is not
/// owned; keep it alive for the reader's lifetime.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes) : bytes_(bytes) {}

  uint8_t u8() {
    need(1, "u8");
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  uint32_t u32() {
    need(4, "u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  uint64_t u64() {
    need(8, "u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  bool boolean() {
    const uint8_t v = u8();
    if (v > 1) {
      throw CodecError("boolean byte is " + std::to_string(v) +
                       ", expected 0 or 1");
    }
    return v == 1;
  }

  std::string str() {
    const uint64_t n = u64();
    need(n, "string body");
    std::string out(bytes_.substr(pos_, static_cast<size_t>(n)));
    pos_ += static_cast<size_t>(n);
    return out;
  }

  /// Read exactly `n` unprefixed bytes (magic tags).
  std::string_view raw(size_t n) {
    need(n, "raw bytes");
    std::string_view out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

  /// Everything from the cursor to the end (checksum the payload
  /// before decoding it).
  std::string_view rest() const { return bytes_.substr(pos_); }

 private:
  void need(uint64_t n, const char* what) const {
    if (n > bytes_.size() - pos_) {
      throw CodecError(std::string("truncated input: need ") +
                       std::to_string(n) + " bytes for " + what + ", have " +
                       std::to_string(bytes_.size() - pos_));
    }
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Read exactly `n` bytes from a stream or throw CodecError naming
/// `what` — the shared truncation guard of every stream-backed codec
/// (the EZCELLS cell export and EZPART partial-reduction readers).
inline std::string read_stream_exact(std::istream& in, size_t n,
                                     const char* what) {
  std::string buf(n, '\0');
  in.read(buf.data(), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in.gcount()) != n) {
    throw CodecError(std::string("truncated input: need ") +
                     std::to_string(n) + " bytes for " + what);
  }
  return buf;
}

/// FNV-1a over the bytes: cheap, stable, and sensitive to any flipped
/// bit — integrity against corruption/truncation, not an authenticator.
inline uint64_t checksum64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace easyc::util
