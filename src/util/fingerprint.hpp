// Content fingerprinting: a small, order-sensitive 64-bit hash
// accumulator for building stable cache keys from value types.
//
// The assessment cache (parallel/sharded_cache.hpp, used by
// analysis::AssessmentEngine) keys memoized results on the fingerprint
// of everything the computation reads: a SystemRecord's content and a
// ScenarioSpec's policy knobs. Fingerprints must therefore be *stable*
// (same value -> same bits across runs and processes; no
// pointer/iteration-order dependence), *sensitive* (any field change
// flips the key), and cheap — every cache cell pays for one, so the
// accumulator chains whole 64-bit words through a splitmix64 round
// rather than walking bytes. They are not cryptographic — collisions
// are astronomically unlikely at the fleet sizes involved but not
// impossible, and the cache stores results, never secrets.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <string_view>

namespace easyc::util {

/// One word of avalanche: the splitmix64 finalizer. Every input bit
/// flips each output bit with ~50% probability.
inline constexpr uint64_t mix_bits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive accumulator. Feed fields in a fixed order; every
/// mix() is a fixed number of words (strings contribute their length),
/// so concatenation ambiguity ("ab"+"c" vs "a"+"bc") cannot alias two
/// different field sequences.
class Fingerprint {
 public:
  /// Chain one word: the state nests inside the round, so word order
  /// matters (unlike xor-folding independently hashed words).
  Fingerprint& mix_u64(uint64_t v) {
    state_ = mix_bits(state_ ^ v);
    return *this;
  }

  Fingerprint& mix(int64_t v) { return mix_u64(static_cast<uint64_t>(v)); }
  Fingerprint& mix(int v) { return mix(static_cast<int64_t>(v)); }
  Fingerprint& mix(bool v) { return mix_u64(v ? 1u : 0u); }

  /// Bit-pattern hash: distinguishes -0.0 from 0.0 and every NaN
  /// payload, which is exactly right for a bit-identity cache.
  Fingerprint& mix(double v) { return mix_u64(std::bit_cast<uint64_t>(v)); }

  Fingerprint& mix(std::string_view s) {
    mix_u64(s.size());
    uint64_t word = 0;
    int filled = 0;
    for (unsigned char c : s) {
      word = (word << 8) | c;
      if (++filled == 8) {
        mix_u64(word);
        word = 0;
        filled = 0;
      }
    }
    if (filled != 0) mix_u64(word);
    return *this;
  }

  /// Presence marker + value, so nullopt and 0.0 hash differently.
  Fingerprint& mix(const std::optional<double>& v) {
    mix(v.has_value());
    if (v) mix(*v);
    return *this;
  }

  uint64_t value() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ULL;
};

}  // namespace easyc::util
