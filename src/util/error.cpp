#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace easyc::util {

void require_failed(const char* expr, const char* file, int line,
                    std::string_view msg) {
  std::fprintf(stderr, "EASYC_REQUIRE failed: %s\n  at %s:%d\n  %.*s\n", expr,
               file, line, static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace easyc::util
