#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace easyc::util {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const std::string h = to_lower(haystack);
  const std::string n = to_lower(needle);
  return h.find(n) != std::string::npos;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string format_exact(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  if (out == "-0") out = "0";
  return out;
}

std::string with_commas(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace easyc::util
