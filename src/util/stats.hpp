// Descriptive statistics and small numeric helpers used by the
// coverage/interpolation analysis, the report layer, and the streaming
// sweep reductions (RunningStat / P2Quantile / StreamingSummary).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace easyc::util {

class BinaryReader;
class BinaryWriter;

/// Summary of a sample. Computed in one pass (Welford) plus a sort for
/// the order statistics.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1); 0 when count < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
  double total = 0.0;
};

double mean(std::span<const double> xs);
double sum(std::span<const double> xs);
double sample_stddev(std::span<const double> xs);
double median(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0,1]. Empty input -> 0.
double percentile(std::span<const double> xs, double q);

/// percentile() over a sample that is already sorted ascending — no
/// copy, no re-sort. The building block summarize() reads all its order
/// statistics from; callers holding a sorted sample (reductions over
/// thousands of sweep cells) should prefer it.
double percentile_sorted(std::span<const double> sorted, double q);

Summary summarize(std::span<const double> xs);

/// Single-pass running moments: Welford mean/variance plus exact
/// min/max and a Kahan-compensated total, in O(1) memory. Fed the same
/// sequence as summarize(), count/min/max/total (and mean derived as
/// total/count) match the store-all computation bit for bit; stddev
/// agrees to rounding (Welford's M2 vs the two-pass formula).
///
/// merge() is Chan et al.'s pairwise combination, so partial stats over
/// disjoint partitions combine into the whole-sample stats — the shape
/// a sharded (multi-thread / multi-process) reduction needs. Floating
/// point makes merge only *approximately* associative: a fixed merge
/// order over fixed partitions is deterministic (bit-stable across
/// runs and thread counts), but repartitioning moves the last few ulps
/// of mean/variance. count/min/max merge exactly.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  size_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Kahan-compensated sum, identical to util::sum over the same feed
  /// order (merge folds the partial's compensation term back in).
  double total() const { return total_; }
  /// total()/count(): matches summarize()'s mean bit for bit.
  double mean() const;
  /// Sample stddev (n-1); 0 when count < 2.
  double stddev() const;
  double variance() const;

  /// Bit-exact state round trip (little-endian via util/serialize.hpp):
  /// a decoded stat continues adding/merging exactly where the encoded
  /// one stopped. The EZPART partial-reduction codec ships these.
  void encode(BinaryWriter& w) const;
  static RunningStat decode(BinaryReader& r);

 private:
  size_t count_ = 0;
  double welford_mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double total_ = 0.0;
  double comp_ = 0.0;  // Kahan compensation for total_
};

/// P² (Jain–Chlamtac 1985) streaming quantile estimator: one quantile
/// tracked with five markers in O(1) memory, no stored sample. Exact
/// (matches percentile()) for the first five observations; beyond
/// that, a piecewise-parabolic approximation whose error shrinks with
/// sample size — the sweep reduction pins its tolerance in tests.
/// Deterministic: the estimate is a pure function of the observation
/// sequence, so a fixed feed order gives bit-stable results.
class P2Quantile {
 public:
  /// q in [0,1]; 0.5 tracks the median.
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate; 0 before any observation.
  double value() const;
  size_t count() const { return count_; }

  /// Fold another estimator over the same quantile into this one (shard
  /// order: `this` is the earlier partition). While either side is
  /// still in warm-up its stored observations replay exactly; two full
  /// estimators combine by count-weighted marker averaging (the
  /// "parallel P²" heuristic) — an approximation, like the estimator
  /// itself, but a deterministic one: a fixed partition and merge order
  /// gives bit-stable results. Throws Error when the quantiles differ.
  void merge(const P2Quantile& other);

  /// Bit-exact state round trip (markers, positions, warm-up sample).
  void encode(BinaryWriter& w) const;
  static P2Quantile decode(BinaryReader& r);

 private:
  double q_;
  size_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights (sorted)
  std::array<double, 5> positions_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increment_{}; // desired-position increments
};

/// Streaming replacement for summarize(): one RunningStat plus P²
/// estimators for p05/median/p95, filled from a single pass in O(1)
/// memory. count/mean/min/max/total in the produced Summary are
/// bit-identical to summarize() over the same feed order; stddev and
/// the order statistics are approximations with test-pinned tolerance.
class StreamingSummary {
 public:
  StreamingSummary();

  void add(double x);
  Summary summary() const;

  /// The mergeable moment core (what a sharded reduction combines
  /// exactly; the P² markers merge too, via the approximate
  /// count-weighted combine documented on P2Quantile::merge).
  const RunningStat& moments() const { return stat_; }

  /// Fold another summary over a later disjoint partition into this
  /// one. count/min/max merge exactly, total/mean via the Kahan fold,
  /// mean/variance via Chan; the quantile estimates are the P² merge
  /// approximation. Deterministic for a fixed partition + merge order.
  void merge(const StreamingSummary& other);

  /// Bit-exact state round trip (the moment core + all three P² states).
  void encode(BinaryWriter& w) const;
  static StreamingSummary decode(BinaryReader& r);

 private:
  RunningStat stat_;
  P2Quantile p05_;
  P2Quantile median_;
  P2Quantile p95_;
};

/// Least-squares fit y = a + b*x. Requires xs.size() == ys.size() >= 2
/// and non-degenerate xs.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Compound annual growth rate between first and last of a series with
/// `years` spacing 1: (last/first)^(1/(n-1)) - 1.
double cagr(std::span<const double> series);

/// Histogram with fixed integer-labelled bins [0, nbins). Values outside
/// are clamped into the edge bins.
std::vector<size_t> integer_histogram(std::span<const int> values, int nbins);

/// Relative difference (b-a)/a in percent; 0 if a == 0.
double pct_change(double a, double b);

}  // namespace easyc::util
