// Descriptive statistics and small numeric helpers used by the
// coverage/interpolation analysis and by the report layer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace easyc::util {

/// Summary of a sample. Computed in one pass (Welford) plus a sort for
/// the order statistics.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1); 0 when count < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
  double total = 0.0;
};

double mean(std::span<const double> xs);
double sum(std::span<const double> xs);
double sample_stddev(std::span<const double> xs);
double median(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0,1]. Empty input -> 0.
double percentile(std::span<const double> xs, double q);

/// percentile() over a sample that is already sorted ascending — no
/// copy, no re-sort. The building block summarize() reads all its order
/// statistics from; callers holding a sorted sample (reductions over
/// thousands of sweep cells) should prefer it.
double percentile_sorted(std::span<const double> sorted, double q);

Summary summarize(std::span<const double> xs);

/// Least-squares fit y = a + b*x. Requires xs.size() == ys.size() >= 2
/// and non-degenerate xs.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Compound annual growth rate between first and last of a series with
/// `years` spacing 1: (last/first)^(1/(n-1)) - 1.
double cagr(std::span<const double> series);

/// Histogram with fixed integer-labelled bins [0, nbins). Values outside
/// are clamped into the edge bins.
std::vector<size_t> integer_histogram(std::span<const int> values, int nbins);

/// Relative difference (b-a)/a in percent; 0 if a == 0.
double pct_change(double a, double b);

}  // namespace easyc::util
