// Small string utilities used by the CSV layer, the catalogs, and the
// report renderers. All functions are pure and allocation-conscious.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace easyc::util {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split `s` on `sep`, keeping empty fields. "a,,b" -> {"a","","b"}.
std::vector<std::string> split(std::string_view s, char sep);

/// Lower-case an ASCII string.
std::string to_lower(std::string_view s);

/// Upper-case an ASCII string.
std::string to_upper(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if the lower-cased forms match.
bool iequals(std::string_view a, std::string_view b);

/// Case-insensitive substring test.
bool icontains(std::string_view haystack, std::string_view needle);

/// Parse a double; empty/invalid input -> nullopt. Accepts surrounding
/// whitespace and thousands-free decimal notation only.
std::optional<double> parse_double(std::string_view s);

/// Parse a non-negative integer; empty/invalid input -> nullopt.
std::optional<long long> parse_int(std::string_view s);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Format a double with `digits` significant decimal places, no
/// scientific notation, trailing zeros trimmed ("12.50" -> "12.5").
std::string format_double(double v, int digits = 2);

/// Format a double losslessly (%.17g): round-tripping the decimal form
/// recovers the exact bits. This is THE pinned exact-precision helper —
/// every byte-diffed export (cell CSVs, shard partial renders) routes
/// float aggregates through it, and tools/easyc_lint.py rejects inline
/// "%.17g" anywhere else so the byte contract has exactly one owner.
std::string format_exact(double v);

/// Format an integer with thousands separators: 1234567 -> "1,234,567".
std::string with_commas(long long v);

}  // namespace easyc::util
