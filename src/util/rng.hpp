// Deterministic random number generation for the synthetic Top500
// generator and the Monte-Carlo uncertainty analysis.
//
// std::mt19937 distributions are not guaranteed bit-identical across
// standard libraries, so all sampling here is hand-rolled on top of
// xoshiro256** with a splitmix64 seeder. Every experiment in the repo is
// reproducible from a single 64-bit seed.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace easyc::util {

/// splitmix64: used to expand a single seed into xoshiro state.
constexpr uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), public-domain algorithm.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedc0defeedf00dULL) {
    uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    EASYC_REQUIRE(lo <= hi, "uniform() bounds must be ordered");
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    EASYC_REQUIRE(lo <= hi, "uniform_int() bounds must be ordered");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + static_cast<int64_t>(v % span);
  }

  /// Standard normal via Box-Muller (no cached spare: keeps the stream
  /// position deterministic regardless of call interleaving).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = next_double();
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * M_PI * u2);
  }

  /// Log-normal with the given parameters of the underlying normal.
  double log_normal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// True with probability p.
  bool bernoulli(double p) {
    EASYC_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli(p) needs p in [0,1]");
    return next_double() < p;
  }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  template <typename Container>
  size_t weighted_index(const Container& weights) {
    double total = 0.0;
    for (double w : weights) {
      EASYC_REQUIRE(w >= 0.0, "weights must be non-negative");
      total += w;
    }
    EASYC_REQUIRE(total > 0.0, "weighted_index needs a positive total");
    double x = next_double() * total;
    size_t i = 0;
    for (double w : weights) {
      if (x < w) return i;
      x -= w;
      ++i;
    }
    return weights.size() - 1;  // numeric edge: land on last bucket
  }

  /// Derive an independent stream for worker `k` (used by the parallel
  /// Monte-Carlo driver so thread count never changes the results of any
  /// individual stream).
  Rng fork(uint64_t k) const {
    uint64_t sm = state_[0] ^ (0x9e3779b97f4a7c15ULL * (k + 1));
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<uint64_t, 4> state_{};
};

}  // namespace easyc::util
