#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace easyc::util {

namespace {

// State machine over the raw text; handles CRLF and quoted fields with
// doubled-quote escapes.
std::vector<std::vector<std::string>> parse_rows(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field.push_back(c);  // stray quote inside unquoted field
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // swallow; the '\n' ends the row
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV field");
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  EASYC_REQUIRE(!header_.empty(), "CSV header must have at least one column");
}

CsvTable CsvTable::parse(std::string_view text, bool strict) {
  auto rows = parse_rows(text);
  if (rows.empty()) throw ParseError("CSV input has no header row");
  CsvTable t(std::move(rows.front()));
  for (size_t i = 1; i < rows.size(); ++i) {
    auto& r = rows[i];
    if (r.size() != t.header_.size()) {
      if (strict) {
        throw ParseError("row " + std::to_string(i) + " has " +
                         std::to_string(r.size()) + " fields, expected " +
                         std::to_string(t.header_.size()));
      }
      r.resize(t.header_.size());
    }
    t.rows_.push_back(std::move(r));
  }
  return t;
}

CsvTable CsvTable::read_file(const std::string& path, bool strict) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open CSV file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), strict);
}

std::optional<size_t> CsvTable::column(std::string_view name) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return std::nullopt;
}

size_t CsvTable::column_or_throw(std::string_view name) const {
  auto c = column(name);
  if (!c) throw LookupError("no CSV column named '" + std::string(name) + "'");
  return *c;
}

const std::vector<std::string>& CsvTable::row(size_t r) const {
  EASYC_REQUIRE(r < rows_.size(), "CSV row index out of range");
  return rows_[r];
}

const std::string& CsvTable::cell(size_t r, size_t c) const {
  EASYC_REQUIRE(r < rows_.size(), "CSV row index out of range");
  EASYC_REQUIRE(c < header_.size(), "CSV column index out of range");
  return rows_[r][c];
}

const std::string& CsvTable::cell(size_t r, std::string_view col) const {
  return cell(r, column_or_throw(col));
}

std::optional<double> CsvTable::cell_double(size_t r,
                                            std::string_view col) const {
  return parse_double(cell(r, col));
}

std::optional<long long> CsvTable::cell_int(size_t r,
                                            std::string_view col) const {
  return parse_int(cell(r, col));
}

void CsvTable::add_row(std::vector<std::string> row) {
  EASYC_REQUIRE(row.size() == header_.size(),
                "CSV row arity must match header");
  rows_.push_back(std::move(row));
}

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_format_row(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(csv_escape(fields[i]));
  }
  out.push_back('\n');
  return out;
}

std::string CsvTable::to_string() const {
  std::string out = csv_format_row(header_);
  for (const auto& r : rows_) out.append(csv_format_row(r));
  return out;
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open for writing: " + path);
  out << to_string();
  if (!out) throw Error("write failed: " + path);
}

}  // namespace easyc::util
