#include "util/args.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace easyc::util {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         bool takes_value) {
  EASYC_REQUIRE(!name.empty() && name[0] != '-',
                "declare flags without leading dashes");
  specs_[name] = {help, takes_value};
}

void ArgParser::parse(int argc, const char* const* argv) {
  values_.clear();
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      // "-flag" is a typo for "--flag", never a positional: silently
      // treating it as one made `tool -turnover` ignore the flag and
      // fall through to a default mode. Bare "-" and negative numbers
      // ("-3.5") stay positional.
      if (arg.size() > 1 && arg[0] == '-' &&
          !(std::isdigit(static_cast<unsigned char>(arg[1])) ||
            arg[1] == '.')) {
        throw ParseError("unknown flag " + arg + " (flags start with --)");
      }
      if (!allow_positional_) {
        throw ParseError("unexpected argument '" + arg +
                         "' (this tool takes only --flags)");
      }
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> inline_value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw ParseError("unknown flag --" + name);
    }
    if (!it->second.takes_value) {
      if (inline_value) {
        throw ParseError("flag --" + name + " takes no value");
      }
      values_[name] = "true";
      continue;
    }
    if (inline_value) {
      values_[name] = *inline_value;
    } else {
      if (i + 1 >= argc) throw ParseError("flag --" + name + " needs a value");
      values_[name] = argv[++i];
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::vector<std::string> ArgParser::given() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);
  return out;
}

std::optional<std::string> ArgParser::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> ArgParser::get_double(const std::string& name) const {
  auto v = get(name);
  if (!v) return std::nullopt;
  auto d = parse_double(*v);
  if (!d) throw ParseError("flag --" + name + " expects a number, got '" +
                           *v + "'");
  return d;
}

std::optional<long long> ArgParser::get_int(const std::string& name) const {
  auto v = get(name);
  if (!v) return std::nullopt;
  auto n = parse_int(*v);
  if (!n) throw ParseError("flag --" + name + " expects an integer, got '" +
                           *v + "'");
  return n;
}

std::string ArgParser::usage(const std::string& argv0) const {
  std::string out = description_ + "\n\nUsage: " + argv0 + " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    out += "  --" + name + (spec.takes_value ? " <value>" : "") + "\n      " +
           spec.help + "\n";
  }
  return out;
}

}  // namespace easyc::util
