// Unit conversions used throughout the carbon models.
//
// Internal convention (documented on every public API):
//   power            kW
//   energy           kWh
//   carbon intensity gCO2e / kWh
//   carbon mass      kgCO2e at component level, MT CO2e (metric tons) at
//                    system/fleet level
//   performance      TFlop/s (Top500 Rmax convention); PFlop/s in the
//                    perf-per-carbon projection, matching the paper's axes
#pragma once

namespace easyc::util {

inline constexpr double kHoursPerYear = 8760.0;
inline constexpr double kKgPerMetricTon = 1000.0;
inline constexpr double kGramsPerKg = 1000.0;
inline constexpr double kTFlopsPerPFlop = 1000.0;

/// grams -> metric tons
constexpr double g_to_mt(double grams) {
  return grams / (kGramsPerKg * kKgPerMetricTon);
}

/// kilograms -> metric tons
constexpr double kg_to_mt(double kg) { return kg / kKgPerMetricTon; }

/// kW drawn continuously for a year -> kWh
constexpr double kw_year_to_kwh(double kw) { return kw * kHoursPerYear; }

/// Energy (kWh) at a grid intensity (gCO2e/kWh) -> MT CO2e
constexpr double kwh_to_mtco2e(double kwh, double aci_g_per_kwh) {
  return g_to_mt(kwh * aci_g_per_kwh);
}

// --- Equivalence constants (US EPA GHG equivalences, 2024 revision) ---

/// Annual emissions of a typical gasoline-powered passenger vehicle.
/// The paper's own arithmetic implies ~4.28 MT/vehicle
/// (1.39e6 MT / 325k vehicles); we embed that derived constant so that
/// the equivalence figures reproduce the paper's rounding.
inline constexpr double kMtCo2ePerVehicleYear = 4.28;

/// Grams CO2e per vehicle-mile (paper: 1.39e6 MT == 3.5e9 miles).
inline constexpr double kGCo2ePerVehicleMile = 397.0;

/// Annual emissions of an average home's electricity use, MT CO2e.
inline constexpr double kMtCo2ePerHomeYear = 4.31;

constexpr double mtco2e_to_vehicle_years(double mt) {
  return mt / kMtCo2ePerVehicleYear;
}

constexpr double mtco2e_to_vehicle_miles(double mt) {
  return mt * 1.0e6 / kGCo2ePerVehicleMile;
}

constexpr double mtco2e_to_home_years(double mt) {
  return mt / kMtCo2ePerHomeYear;
}

}  // namespace easyc::util
