// Minimal command-line flag parser for the CLI tools.
//
// Supports --flag=value, --flag value, and boolean --flag forms, with
// typed accessors and an auto-generated usage string. Unknown flags are
// an error (catching typos beats silently ignoring them), and that
// includes single-dash spellings like "-turnover": anything that looks
// like a flag attempt must match a declared flag. Tools that take no
// positional operands can opt into rejecting those too
// (allow_positional), so a stray argument can never be silently
// dropped.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace easyc::util {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Declare a flag. `help` appears in usage(); flags are matched by
  /// their long name only ("--name").
  void add_flag(const std::string& name, const std::string& help,
                bool takes_value = true);

  /// Whether bare (non-flag) arguments are collected into positional()
  /// (the default) or rejected with ParseError — the right setting for
  /// tools whose every input is a named flag.
  void allow_positional(bool allowed) { allow_positional_ = allowed; }

  /// Parse argv. Throws ParseError on unknown flags, a missing value,
  /// single-dash flag lookalikes ("-flag"), or — when positional
  /// arguments are disallowed — any bare argument.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  /// Names of every flag present on the parsed command line, in
  /// lexicographic order. Lets mode dispatchers reject flags their
  /// mode would otherwise silently ignore.
  std::vector<std::string> given() const;
  std::optional<std::string> get(const std::string& name) const;
  std::optional<double> get_double(const std::string& name) const;
  std::optional<long long> get_int(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage(const std::string& argv0) const;

 private:
  struct Spec {
    std::string help;
    bool takes_value = true;
  };
  std::string description_;
  bool allow_positional_ = true;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace easyc::util
