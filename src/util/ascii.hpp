// Plain-text renderers for the report layer: aligned tables, horizontal
// bar charts, and rank-series sparkline plots. Every figure in the paper
// is emitted both as CSV (machine-readable) and through these renderers
// (human-readable benchmark output).
#pragma once

#include <string>
#include <vector>

namespace easyc::util {

/// Column-aligned text table. Numeric-looking cells are right-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  size_t num_rows() const { return rows_.size(); }

  /// Render with a header underline and 2-space column gaps.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One labelled bar.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Horizontal bar chart scaled to `width` characters; prints the value
/// after each bar. Negative values render leftward with '-' fill.
std::string bar_chart(const std::vector<Bar>& bars, int width = 50,
                      const std::string& title = "");

/// A y-vs-x line/scatter rendered into a character grid; used for the
/// carbon-vs-rank figures. `height` rows, `width` cols.
std::string series_plot(const std::vector<double>& xs,
                        const std::vector<double>& ys, int width = 72,
                        int height = 16, const std::string& title = "");

/// Two overlaid series sharing axes ('*' and 'o').
std::string dual_series_plot(const std::vector<double>& xs,
                             const std::vector<double>& ys1,
                             const std::vector<double>& ys2, int width = 72,
                             int height = 16, const std::string& title = "");

}  // namespace easyc::util
