// Minimal RFC-4180-style CSV reader/writer.
//
// The Top500 dataset and every figure/table emitted by the benchmark
// harness round-trips through this layer, so it supports quoted fields,
// embedded separators/quotes/newlines, and header-indexed access.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace easyc::util {

/// An in-memory CSV table: one header row plus data rows. All fields are
/// stored as strings; typed access goes through the accessors below.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  /// Parse CSV text. Throws ParseError on structural problems (unclosed
  /// quote, row arity mismatch when `strict` is true).
  static CsvTable parse(std::string_view text, bool strict = true);

  /// Read a file from disk. Throws ParseError if unreadable.
  static CsvTable read_file(const std::string& path, bool strict = true);

  const std::vector<std::string>& header() const { return header_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return header_.size(); }

  /// Column index for `name`; nullopt if absent. Case-sensitive.
  std::optional<size_t> column(std::string_view name) const;

  /// Column index for `name`; throws LookupError if absent.
  size_t column_or_throw(std::string_view name) const;

  const std::vector<std::string>& row(size_t r) const;

  /// Raw cell text ("" for empty).
  const std::string& cell(size_t r, size_t c) const;
  const std::string& cell(size_t r, std::string_view col) const;

  /// Typed accessors: empty or malformed cells yield nullopt.
  std::optional<double> cell_double(size_t r, std::string_view col) const;
  std::optional<long long> cell_int(size_t r, std::string_view col) const;

  /// Append a row; must match header arity.
  void add_row(std::vector<std::string> row);

  /// Serialize with proper quoting; ends with a trailing newline.
  std::string to_string() const;

  /// Write to disk. Throws Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a single field if it contains a separator, quote, or newline.
std::string csv_escape(std::string_view field);

/// One serialized CSV row: every field through csv_escape, joined with
/// commas, terminated with '\n'. The single writer CsvTable and every
/// streaming emitter share, so the dialect cannot diverge.
std::string csv_format_row(const std::vector<std::string>& fields);

}  // namespace easyc::util
