// Error handling primitives shared across the EasyC libraries.
//
// The library follows C++ Core Guidelines E.2/E.3: errors that a caller
// can reasonably be expected to handle are reported with exceptions
// derived from `easyc::util::Error`; programming errors (precondition
// violations) abort via EASYC_REQUIRE in all build types so that model
// results are never silently computed from invalid inputs.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace easyc::util {

/// Base class for all recoverable EasyC errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an input file (CSV, dataset) cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Raised when a carbon-model input fails validation (e.g. negative
/// power draw, unknown country code, zero node count).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validation error: " + what) {}
};

/// Raised when a lookup into one of the knowledge bases (hardware
/// catalog, grid-intensity table) does not match any entry.
class LookupError : public Error {
 public:
  explicit LookupError(const std::string& what) : Error("lookup error: " + what) {}
};

[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 std::string_view msg);

}  // namespace easyc::util

/// Precondition check: active in every build type. `msg` may use
/// stream-free plain strings only; prefer describing the violated
/// contract, not the call site.
#define EASYC_REQUIRE(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::easyc::util::require_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
