#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace easyc::util {

double sum(std::span<const double> xs) {
  // Kahan summation: aggregate totals span five orders of magnitude
  // (tiny DGX pods vs exascale systems), so naive accumulation loses
  // low-order mass.
  double s = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  EASYC_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.total = sum(xs);
  s.mean = s.total / static_cast<double>(xs.size());
  s.stddev = sample_stddev(xs);
  // One sorted copy serves every order statistic. The sweep reduction
  // summarizes thousands of cells three times per report; the earlier
  // per-percentile copy-and-sort (plus min/max scans) made that the
  // only superlinear step of the reduction. Same interpolation, same
  // results — only the redundant sorts are gone.
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile_sorted(sorted, 0.5);
  s.p05 = percentile_sorted(sorted, 0.05);
  s.p95 = percentile_sorted(sorted, 0.95);
  return s;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  EASYC_REQUIRE(xs.size() == ys.size(), "linear_fit needs equal lengths");
  EASYC_REQUIRE(xs.size() >= 2, "linear_fit needs at least 2 points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  EASYC_REQUIRE(sxx > 0.0, "linear_fit needs non-degenerate x values");
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return f;
}

double cagr(std::span<const double> series) {
  EASYC_REQUIRE(series.size() >= 2, "cagr needs at least 2 points");
  EASYC_REQUIRE(series.front() > 0.0, "cagr needs positive initial value");
  const double ratio = series.back() / series.front();
  const double years = static_cast<double>(series.size() - 1);
  return std::pow(ratio, 1.0 / years) - 1.0;
}

std::vector<size_t> integer_histogram(std::span<const int> values, int nbins) {
  EASYC_REQUIRE(nbins > 0, "histogram needs at least one bin");
  std::vector<size_t> bins(static_cast<size_t>(nbins), 0);
  for (int v : values) {
    int b = std::clamp(v, 0, nbins - 1);
    ++bins[static_cast<size_t>(b)];
  }
  return bins;
}

double pct_change(double a, double b) {
  if (a == 0.0) return 0.0;
  return (b - a) / a * 100.0;
}

}  // namespace easyc::util
