#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace easyc::util {

double sum(std::span<const double> xs) {
  // Kahan summation: aggregate totals span five orders of magnitude
  // (tiny DGX pods vs exascale systems), so naive accumulation loses
  // low-order mass.
  double s = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  EASYC_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.total = sum(xs);
  s.mean = s.total / static_cast<double>(xs.size());
  s.stddev = sample_stddev(xs);
  // One sorted copy serves every order statistic. The sweep reduction
  // summarizes thousands of cells three times per report; the earlier
  // per-percentile copy-and-sort (plus min/max scans) made that the
  // only superlinear step of the reduction. Same interpolation, same
  // results — only the redundant sorts are gone.
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile_sorted(sorted, 0.5);
  s.p05 = percentile_sorted(sorted, 0.05);
  s.p95 = percentile_sorted(sorted, 0.95);
  return s;
}

void RunningStat::add(double x) {
  ++count_;
  const double delta = x - welford_mean_;
  welford_mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - welford_mean_);
  if (count_ == 1) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Kahan step, identical to util::sum's loop body.
  const double y = x - comp_;
  const double t = total_ + y;
  comp_ = (t - total_) - y;
  total_ = t;
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;
  const double delta = other.welford_mean_ - welford_mean_;
  welford_mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  // Fold the partial sum and its outstanding compensation through the
  // same Kahan step add() uses.
  for (const double x : {other.total_, -other.comp_}) {
    const double y = x - comp_;
    const double t = total_ + y;
    comp_ = (t - total_) - y;
    total_ = t;
  }
}

double RunningStat::mean() const {
  if (count_ == 0) return 0.0;
  return total_ / static_cast<double>(count_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::encode(BinaryWriter& w) const {
  w.u64(count_);
  w.f64(welford_mean_);
  w.f64(m2_);
  w.f64(min_);
  w.f64(max_);
  w.f64(total_);
  w.f64(comp_);
}

RunningStat RunningStat::decode(BinaryReader& r) {
  RunningStat s;
  s.count_ = static_cast<size_t>(r.u64());
  s.welford_mean_ = r.f64();
  s.m2_ = r.f64();
  s.min_ = r.f64();
  s.max_ = r.f64();
  s.total_ = r.f64();
  s.comp_ = r.f64();
  if (s.count_ > 0 && s.min_ > s.max_) {
    throw CodecError("RunningStat state has min > max");
  }
  return s;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  EASYC_REQUIRE(q >= 0.0 && q <= 1.0, "P2Quantile q must be in [0,1]");
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    // Warm-up: keep the observations themselves, sorted, so the
    // estimate stays exact until the markers exist.
    size_t i = count_;
    while (i > 0 && heights_[i - 1] > x) {
      heights_[i] = heights_[i - 1];
      --i;
    }
    heights_[i] = x;
    ++count_;
    if (count_ == 5) {
      for (size_t m = 0; m < 5; ++m) {
        positions_[m] = static_cast<double>(m + 1);
      }
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
      increment_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
    }
    return;
  }

  // Locate the cell containing x, clamping the extreme markers.
  size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (size_t m = k + 1; m < 5; ++m) positions_[m] += 1.0;
  for (size_t m = 0; m < 5; ++m) desired_[m] += increment_[m];
  ++count_;

  // Nudge the three interior markers toward their desired positions.
  for (size_t m = 1; m <= 3; ++m) {
    const double d = desired_[m] - positions_[m];
    if ((d >= 1.0 && positions_[m + 1] - positions_[m] > 1.0) ||
        (d <= -1.0 && positions_[m - 1] - positions_[m] < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) height prediction.
      const double np = positions_[m + 1];
      const double nc = positions_[m];
      const double nm = positions_[m - 1];
      const double hp = heights_[m + 1];
      const double hc = heights_[m];
      const double hm = heights_[m - 1];
      double candidate =
          hc + sign / (np - nm) *
                   ((nc - nm + sign) * (hp - hc) / (np - nc) +
                    (np - nc - sign) * (hc - hm) / (nc - nm));
      if (candidate <= hm || candidate >= hp) {
        // Parabola left the bracket: fall back to linear interpolation
        // toward the neighbour in the move direction.
        const size_t nb = static_cast<size_t>(static_cast<long long>(m) +
                                              static_cast<long long>(sign));
        candidate = hc + sign * (heights_[nb] - hc) /
                             (positions_[nb] - nc) * 1.0;
      }
      heights_[m] = candidate;
      positions_[m] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ <= 5) {
    // Exact over the stored warm-up sample (same interpolation as
    // percentile_sorted; heights_[0..count_) is sorted).
    return percentile_sorted(
        std::span<const double>(heights_.data(), count_), q_);
  }
  return heights_[2];
}

void P2Quantile::merge(const P2Quantile& other) {
  if (q_ != other.q_) {
    throw Error("P2Quantile::merge across different quantiles");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // While either side is still in warm-up, its heights_ ARE the raw
  // (sorted) observations — replay them through the survivor and the
  // merge is exact, not heuristic. A warm-up `this` replays into a
  // copy of `other` so the full estimator's marker state survives.
  if (other.count_ <= 5) {
    for (size_t i = 0; i < other.count_; ++i) add(other.heights_[i]);
    return;
  }
  if (count_ <= 5) {
    const P2Quantile mine = *this;
    *this = other;
    for (size_t i = 0; i < mine.count_; ++i) add(mine.heights_[i]);
    return;
  }
  // Both estimators are past warm-up: count-weighted marker combine.
  // Heights average weighted by sample size (both sets are sorted, so
  // the result is sorted); interior positions add (each counts the
  // observations at or below its marker in its own partition); the
  // extreme positions and the desired positions are recomputed from
  // the combined count, exactly as a single estimator fed n points
  // would hold them.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;
  for (size_t m = 0; m < 5; ++m) {
    heights_[m] = (na * heights_[m] + nb * other.heights_[m]) / n;
  }
  for (size_t m = 1; m <= 3; ++m) positions_[m] += other.positions_[m];
  positions_[0] = 1.0;
  positions_[4] = n;
  count_ += other.count_;
  const std::array<double, 5> init = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_,
                                      3.0 + 2.0 * q_, 5.0};
  increment_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
  for (size_t m = 0; m < 5; ++m) {
    desired_[m] = init[m] + (n - 5.0) * increment_[m];
  }
}

void P2Quantile::encode(BinaryWriter& w) const {
  w.f64(q_);
  w.u64(count_);
  for (const double h : heights_) w.f64(h);
  for (const double p : positions_) w.f64(p);
  for (const double d : desired_) w.f64(d);
  for (const double i : increment_) w.f64(i);
}

P2Quantile P2Quantile::decode(BinaryReader& r) {
  const double q = r.f64();
  if (!(q >= 0.0 && q <= 1.0)) {
    throw CodecError("P2Quantile state has q outside [0,1]");
  }
  P2Quantile s(q);
  s.count_ = static_cast<size_t>(r.u64());
  for (double& h : s.heights_) h = r.f64();
  for (double& p : s.positions_) p = r.f64();
  for (double& d : s.desired_) d = r.f64();
  for (double& i : s.increment_) i = r.f64();
  return s;
}

StreamingSummary::StreamingSummary()
    : p05_(0.05), median_(0.5), p95_(0.95) {}

void StreamingSummary::merge(const StreamingSummary& other) {
  stat_.merge(other.stat_);
  p05_.merge(other.p05_);
  median_.merge(other.median_);
  p95_.merge(other.p95_);
}

void StreamingSummary::encode(BinaryWriter& w) const {
  stat_.encode(w);
  p05_.encode(w);
  median_.encode(w);
  p95_.encode(w);
}

StreamingSummary StreamingSummary::decode(BinaryReader& r) {
  StreamingSummary s;
  s.stat_ = RunningStat::decode(r);
  s.p05_ = P2Quantile::decode(r);
  s.median_ = P2Quantile::decode(r);
  s.p95_ = P2Quantile::decode(r);
  return s;
}

void StreamingSummary::add(double x) {
  stat_.add(x);
  p05_.add(x);
  median_.add(x);
  p95_.add(x);
}

Summary StreamingSummary::summary() const {
  Summary s;
  s.count = stat_.count();
  if (s.count == 0) return s;
  s.total = stat_.total();
  s.mean = stat_.mean();
  s.stddev = stat_.stddev();
  s.min = stat_.min();
  s.max = stat_.max();
  s.median = median_.value();
  s.p05 = p05_.value();
  s.p95 = p95_.value();
  return s;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  EASYC_REQUIRE(xs.size() == ys.size(), "linear_fit needs equal lengths");
  EASYC_REQUIRE(xs.size() >= 2, "linear_fit needs at least 2 points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  EASYC_REQUIRE(sxx > 0.0, "linear_fit needs non-degenerate x values");
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return f;
}

double cagr(std::span<const double> series) {
  EASYC_REQUIRE(series.size() >= 2, "cagr needs at least 2 points");
  EASYC_REQUIRE(series.front() > 0.0, "cagr needs positive initial value");
  const double ratio = series.back() / series.front();
  const double years = static_cast<double>(series.size() - 1);
  return std::pow(ratio, 1.0 / years) - 1.0;
}

std::vector<size_t> integer_histogram(std::span<const int> values, int nbins) {
  EASYC_REQUIRE(nbins > 0, "histogram needs at least one bin");
  std::vector<size_t> bins(static_cast<size_t>(nbins), 0);
  for (int v : values) {
    int b = std::clamp(v, 0, nbins - 1);
    ++bins[static_cast<size_t>(b)];
  }
  return bins;
}

double pct_change(double a, double b) {
  if (a == 0.0) return 0.0;
  return (b - a) / a * 100.0;
}

}  // namespace easyc::util
