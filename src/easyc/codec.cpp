#include "easyc/codec.hpp"

namespace easyc::model {

namespace {

void encode_operational(util::BinaryWriter& w, const OperationalResult& r) {
  w.f64(r.mt_co2e)
      .f64(r.annual_kwh)
      .f64(r.it_kw)
      .f64(r.pue)
      .f64(r.aci_g_kwh)
      .boolean(r.aci_region_refined)
      .u8(static_cast<uint8_t>(r.path))
      .f64(r.utilization);
}

OperationalResult decode_operational(util::BinaryReader& r) {
  OperationalResult out;
  out.mt_co2e = r.f64();
  out.annual_kwh = r.f64();
  out.it_kw = r.f64();
  out.pue = r.f64();
  out.aci_g_kwh = r.f64();
  out.aci_region_refined = r.boolean();
  const uint8_t path = r.u8();
  if (path > static_cast<uint8_t>(EnergyPath::kCoreCountEstimate)) {
    throw util::CodecError("energy path byte " + std::to_string(path) +
                           " is outside the EnergyPath enum");
  }
  out.path = static_cast<EnergyPath>(path);
  out.utilization = r.f64();
  return out;
}

void encode_embodied(util::BinaryWriter& w, const EmbodiedBreakdown& b) {
  w.f64(b.cpu_mt)
      .f64(b.gpu_mt)
      .f64(b.memory_mt)
      .f64(b.storage_mt)
      .f64(b.platform_mt)
      .f64(b.interconnect_mt)
      .f64(b.total_mt)
      .boolean(b.used_gpu_proxy)
      .boolean(b.used_memory_default)
      .boolean(b.used_storage_default);
}

EmbodiedBreakdown decode_embodied(util::BinaryReader& r) {
  EmbodiedBreakdown out;
  out.cpu_mt = r.f64();
  out.gpu_mt = r.f64();
  out.memory_mt = r.f64();
  out.storage_mt = r.f64();
  out.platform_mt = r.f64();
  out.interconnect_mt = r.f64();
  out.total_mt = r.f64();
  out.used_gpu_proxy = r.boolean();
  out.used_memory_default = r.boolean();
  out.used_storage_default = r.boolean();
  return out;
}

}  // namespace

void encode_assessment(util::BinaryWriter& w, const SystemAssessment& a) {
  w.str(a.name);
  encode_outcome(w, a.operational, encode_operational);
  encode_outcome(w, a.embodied, encode_embodied);
}

SystemAssessment decode_assessment(util::BinaryReader& r) {
  SystemAssessment out;
  out.name = r.str();
  out.operational =
      decode_outcome<OperationalResult>(r, decode_operational);
  out.embodied = decode_outcome<EmbodiedBreakdown>(r, decode_embodied);
  return out;
}

}  // namespace easyc::model
