#include "easyc/model.hpp"

#include "parallel/algorithms.hpp"

namespace easyc::model {

SystemAssessment EasyCModel::assess(const Inputs& inputs) const {
  SystemAssessment a;
  a.name = inputs.name;
  a.operational = assess_operational(inputs, options_.operational);
  a.embodied = assess_embodied(inputs, options_.embodied);
  return a;
}

std::vector<SystemAssessment> EasyCModel::assess_all(
    const std::vector<Inputs>& inputs, par::ThreadPool* pool) const {
  std::vector<SystemAssessment> out(inputs.size());
  par::parallel_for(pool ? *pool : par::ThreadPool::global(), 0,
                    inputs.size(),
                    [&](size_t i) { out[i] = assess(inputs[i]); });
  return out;
}

}  // namespace easyc::model
