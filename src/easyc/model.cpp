#include "easyc/model.hpp"

#include "parallel/algorithms.hpp"

namespace easyc::model {

SystemAssessment EasyCModel::assess(const Inputs& inputs) const {
  // One validate() covers both sub-models (they used to re-validate
  // independently; the batch kernel validates once per distinct record).
  inputs.validate();
  SystemAssessment a;
  a.name = inputs.name;
  a.operational = assess_operational_prevalidated(inputs, options_.operational);
  a.embodied = assess_embodied_prevalidated(inputs, options_.embodied);
  return a;
}

std::vector<SystemAssessment> EasyCModel::assess_all(
    const std::vector<Inputs>& inputs, par::ThreadPool* pool) const {
  std::vector<SystemAssessment> out(inputs.size());
  par::parallel_for(pool ? *pool : par::ThreadPool::global(), 0,
                    inputs.size(),
                    [&](size_t i) { out[i] = assess(inputs[i]); });
  return out;
}

}  // namespace easyc::model
