// EasyC embodied-carbon model (ACT-style bottom-up manufacturing carbon).
//
//   embodied MT CO2e =
//       CPUs  x (die area x carbon-per-area(node) + packaging)
//     + GPUs  x (die area x carbon-per-area(node) + HBM GB x kg/GB + pkg)
//     + DRAM capacity GB x kg/GB(type)
//     + SSD capacity TB x kg/TB
//     + nodes x platform overhead (mainboard, PSU, chassis, NIC)
//     + nodes x interconnect share (switch silicon + optics)
//
// The paper's coverage findings drive the failure modes implemented
// here: CPU-only systems are assessable from Top500 core counts alone,
// while accelerated systems need accelerator identity + count, which
// Top500.org does not adequately capture (paper Section IV-A, Fig. 6).
#pragma once

#include <string>

#include "easyc/inputs.hpp"
#include "easyc/outcome.hpp"

namespace easyc::model {

/// How unknown accelerator models are treated.
enum class AcceleratorPolicy {
  /// Decline to estimate (baseline coverage behaviour).
  kStrict,
  /// Substitute the era's mainstream datacenter GPU. The paper notes
  /// this "produces systematic underestimates of silicon size".
  kApproximateWithMainstreamGpu,
};

struct EmbodiedBreakdown {
  double cpu_mt = 0.0;
  double gpu_mt = 0.0;
  double memory_mt = 0.0;
  double storage_mt = 0.0;
  double platform_mt = 0.0;     ///< mainboard/PSU/chassis/NIC per node
  double interconnect_mt = 0.0;
  double total_mt = 0.0;

  bool used_gpu_proxy = false;      ///< mainstream-GPU substitution used
  bool used_memory_default = false; ///< per-node capacity prior used
  bool used_storage_default = false;
};

struct EmbodiedOptions {
  AcceleratorPolicy accelerator_policy = AcceleratorPolicy::kStrict;
  /// Fab electricity intensity, kgCO2e/kWh (ACT world-average default).
  double fab_aci_kg_kwh = 0.475;
  /// Per-package assembly/substrate carbon, kgCO2e (CoWoS-class
  /// substrates for accelerators are far heavier than CPU LGA parts).
  double cpu_packaging_kg = 12.0;
  double gpu_packaging_kg = 25.0;
  /// Node platform manufacturing carbon (mainboard PCB, PSUs, chassis
  /// sheet metal, NIC) scales with node composition: a 48-core blade is
  /// nothing like an 8-GPU DGX chassis. kgCO2e per node:
  ///   platform = base + per_core x CPU cores + per_gpu x GPUs  (capped)
  double platform_base_kg = 80.0;
  double platform_per_cpu_core_kg = 1.6;
  double platform_per_gpu_kg = 45.0;
  double platform_cap_kg = 650.0;
  /// Interconnect fabric share (switch silicon, optics, cables), same
  /// composition scaling.
  double interconnect_base_kg = 30.0;
  double interconnect_per_cpu_core_kg = 0.6;
  double interconnect_per_gpu_kg = 20.0;
  double interconnect_cap_kg = 280.0;
  /// Default node-local + parallel-FS share of flash when SSD capacity
  /// is unreported: TB per node, with a site-level cap (large node
  /// counts share a filesystem rather than replicating 12 TB each).
  double default_ssd_tb_per_node = 8.0;
  double default_ssd_cap_tb = 40000.0;
};

Outcome<EmbodiedBreakdown> assess_embodied(const Inputs& inputs,
                                           const EmbodiedOptions& options = {});

}  // namespace easyc::model
