// EasyC embodied-carbon model (ACT-style bottom-up manufacturing carbon).
//
//   embodied MT CO2e =
//       CPUs  x (die area x carbon-per-area(node) + packaging)
//     + GPUs  x (die area x carbon-per-area(node) + HBM GB x kg/GB + pkg)
//     + DRAM capacity GB x kg/GB(type)
//     + SSD capacity TB x kg/TB
//     + nodes x platform overhead (mainboard, PSU, chassis, NIC)
//     + nodes x interconnect share (switch silicon + optics)
//
// The paper's coverage findings drive the failure modes implemented
// here: CPU-only systems are assessable from Top500 core counts alone,
// while accelerated systems need accelerator identity + count, which
// Top500.org does not adequately capture (paper Section IV-A, Fig. 6).
#pragma once

#include <algorithm>
#include <string>

#include "easyc/inputs.hpp"
#include "easyc/outcome.hpp"
#include "hw/process.hpp"
#include "util/units.hpp"

namespace easyc::model {

/// Shared per-lane arithmetic of the embodied model (see the matching
/// namespace in operational.hpp): the scalar path and the SoA batch
/// kernel evaluate these exact expression trees, which is what makes
/// the two paths bit-identical by construction.
namespace lane {

/// One CPU package: die carbon at the scenario's fab intensity plus
/// substrate/assembly.
constexpr double cpu_package_kg(double die_area_cm2, double cpa_kg_cm2,
                                double packaging_kg) {
  return die_area_cm2 * cpa_kg_cm2 + packaging_kg;
}

/// One accelerator package: die carbon + HBM stack + CoWoS-class
/// substrate.
constexpr double gpu_package_kg(double die_area_cm2, double cpa_kg_cm2,
                                double hbm_kg, double packaging_kg) {
  return die_area_cm2 * cpa_kg_cm2 + hbm_kg + packaging_kg;
}

/// per-unit kg x unit count -> MT.
constexpr double component_mt(double per_unit_kg, double units) {
  return util::kg_to_mt(per_unit_kg * units);
}

/// Composition-scaled platform/interconnect carbon per node, capped.
constexpr double node_overhead_kg(double base_kg, double per_core_kg,
                                  double cores_per_node, double per_gpu_kg,
                                  double gpus_per_node, double cap_kg) {
  return std::min(cap_kg, base_kg + per_core_kg * cores_per_node +
                              per_gpu_kg * gpus_per_node);
}

/// Flash capacity prior when SSD TB is unreported.
constexpr double default_ssd_tb(double tb_per_node, double nodes,
                                double cap_tb) {
  return std::min(tb_per_node * nodes, cap_tb);
}

/// The six-component sum, in the scalar path's association order.
constexpr double embodied_total_mt(double cpu, double gpu, double memory,
                                   double storage, double platform,
                                   double interconnect) {
  return cpu + gpu + memory + storage + platform + interconnect;
}

}  // namespace lane

/// How unknown accelerator models are treated.
enum class AcceleratorPolicy {
  /// Decline to estimate (baseline coverage behaviour).
  kStrict,
  /// Substitute the era's mainstream datacenter GPU. The paper notes
  /// this "produces systematic underestimates of silicon size".
  kApproximateWithMainstreamGpu,
};

struct EmbodiedBreakdown {
  double cpu_mt = 0.0;
  double gpu_mt = 0.0;
  double memory_mt = 0.0;
  double storage_mt = 0.0;
  double platform_mt = 0.0;     ///< mainboard/PSU/chassis/NIC per node
  double interconnect_mt = 0.0;
  double total_mt = 0.0;

  bool used_gpu_proxy = false;      ///< mainstream-GPU substitution used
  bool used_memory_default = false; ///< per-node capacity prior used
  bool used_storage_default = false;
};

struct EmbodiedOptions {
  AcceleratorPolicy accelerator_policy = AcceleratorPolicy::kStrict;
  /// Fab electricity intensity, kgCO2e/kWh (ACT world-average default).
  double fab_aci_kg_kwh = 0.475;
  /// Per-package assembly/substrate carbon, kgCO2e (CoWoS-class
  /// substrates for accelerators are far heavier than CPU LGA parts).
  double cpu_packaging_kg = 12.0;
  double gpu_packaging_kg = 25.0;
  /// Node platform manufacturing carbon (mainboard PCB, PSUs, chassis
  /// sheet metal, NIC) scales with node composition: a 48-core blade is
  /// nothing like an 8-GPU DGX chassis. kgCO2e per node:
  ///   platform = base + per_core x CPU cores + per_gpu x GPUs  (capped)
  double platform_base_kg = 80.0;
  double platform_per_cpu_core_kg = 1.6;
  double platform_per_gpu_kg = 45.0;
  double platform_cap_kg = 650.0;
  /// Interconnect fabric share (switch silicon, optics, cables), same
  /// composition scaling.
  double interconnect_base_kg = 30.0;
  double interconnect_per_cpu_core_kg = 0.6;
  double interconnect_per_gpu_kg = 20.0;
  double interconnect_cap_kg = 280.0;
  /// Default node-local + parallel-FS share of flash when SSD capacity
  /// is unreported: TB per node, with a site-level cap (large node
  /// counts share a filesystem rather than replicating 12 TB each).
  double default_ssd_tb_per_node = 8.0;
  double default_ssd_cap_tb = 40000.0;
};

/// The options-independent half of one embodied assessment: catalog
/// matches, count resolution, era priors — every branchy step that
/// depends only on the inputs. Computed once per distinct record and
/// reused across scenarios; finish_embodied applies the per-scenario
/// knobs (fab ACI, packaging, platform coefficients, accelerator
/// policy) on top.
struct EmbodiedResolution {
  int year = 2020;

  bool has_cpu = false;            ///< catalog hit or mainstream-generic
  double cpu_die_area_cm2 = 0.0;
  hw::ProcessNode cpu_node{};
  std::string cpu_missing_reason;  ///< set when !has_cpu

  bool has_counts = false;         ///< node/package counts resolvable
  long long nodes = 0;
  long long cpus = 0;

  bool accelerated = false;        ///< Inputs::has_accelerator()
  bool acc_in_catalog = false;
  // Catalog-accelerator coefficients (meaningful when acc_in_catalog).
  double acc_die_area_cm2 = 0.0;
  hw::ProcessNode acc_node{};
  double acc_hbm_kg = 0.0;
  // Era-proxy coefficients (meaningful when accelerated and the model
  // is not in the catalog; whether they are used is the scenario's
  // AcceleratorPolicy, so both variants are resolved up front).
  double proxy_die_area_cm2 = 0.0;
  hw::ProcessNode proxy_node{};
  double proxy_hbm_kg = 0.0;
  std::string acc_unknown_reason;  ///< set when accelerated && !acc_in_catalog

  bool has_gpu_count = false;
  long long gpu_count = 0;

  bool has_memory_gb = false;
  double memory_gb = 0.0;          ///< reported, when has_memory_gb
  double default_memory_gb = 0.0;  ///< era prior (valid when has_cpu && has_counts)
  double mem_kg_per_gb = 0.0;

  bool has_ssd_tb = false;
  double ssd_tb = 0.0;             ///< reported, when has_ssd_tb

  // Derived doubles for the composition-scaled components (valid when
  // has_counts; cpu_cores_per_node additionally needs has_cpu).
  double nodes_d = 0.0;
  double cpu_cores_per_node = 0.0;
  double gpus_per_node = 0.0;
};

/// Resolve the options-independent half. `inputs` must already be
/// validated.
EmbodiedResolution resolve_embodied(const Inputs& inputs);

/// Apply scenario knobs to a resolution.
Outcome<EmbodiedBreakdown> finish_embodied(const EmbodiedResolution& resolution,
                                           const EmbodiedOptions& options);

Outcome<EmbodiedBreakdown> assess_embodied(const Inputs& inputs,
                                           const EmbodiedOptions& options = {});

/// assess_embodied for inputs already validated this batch.
Outcome<EmbodiedBreakdown> assess_embodied_prevalidated(
    const Inputs& inputs, const EmbodiedOptions& options);

}  // namespace easyc::model
