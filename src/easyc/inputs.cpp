#include "easyc/inputs.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace easyc::model {

const std::vector<Metric>& all_metrics() {
  static const std::vector<Metric> kAll = {
      Metric::kOperationYear,      Metric::kNumComputeNodes,
      Metric::kNumGpus,            Metric::kNumCpus,
      Metric::kMemoryCapacity,     Metric::kMemoryType,
      Metric::kSsdCapacity,        Metric::kSystemUtilization,
      Metric::kAnnualPowerConsumed,
  };
  return kAll;
}

std::string metric_name(Metric m) {
  switch (m) {
    case Metric::kOperationYear: return "Operation Year";
    case Metric::kNumComputeNodes: return "# of Compute Nodes";
    case Metric::kNumGpus: return "# of GPUs";
    case Metric::kNumCpus: return "# of CPUs";
    case Metric::kMemoryCapacity: return "Memory Capacity";
    case Metric::kMemoryType: return "Memory Type";
    case Metric::kSsdCapacity: return "SSD Capacity";
    case Metric::kSystemUtilization: return "System Util (opt.)";
    case Metric::kAnnualPowerConsumed: return "Annual Power Consumed (opt.)";
  }
  return "unknown";
}

bool metric_is_optional(Metric m) {
  return m == Metric::kSystemUtilization ||
         m == Metric::kAnnualPowerConsumed;
}

std::vector<Metric> Inputs::missing_metrics(bool include_optional) const {
  std::vector<Metric> out;
  auto check = [&](Metric m, bool present) {
    if (!present && (include_optional || !metric_is_optional(m))) {
      out.push_back(m);
    }
  };
  check(Metric::kOperationYear, operation_year.has_value());
  check(Metric::kNumComputeNodes, num_nodes.has_value());
  check(Metric::kNumGpus, num_gpus.has_value());
  check(Metric::kNumCpus, num_cpus.has_value());
  check(Metric::kMemoryCapacity, memory_gb.has_value());
  check(Metric::kMemoryType, memory_type.has_value());
  check(Metric::kSsdCapacity, ssd_tb.has_value());
  check(Metric::kSystemUtilization, utilization.has_value());
  check(Metric::kAnnualPowerConsumed, annual_energy_kwh.has_value());
  return out;
}

int Inputs::num_missing(bool include_optional) const {
  return static_cast<int>(missing_metrics(include_optional).size());
}

void Inputs::validate() const {
  using util::ValidationError;
  if (rmax_tflops < 0 || rpeak_tflops < 0) {
    throw ValidationError(name + ": performance must be non-negative");
  }
  if (power_kw && *power_kw <= 0) {
    throw ValidationError(name + ": reported power must be positive");
  }
  if (total_cores && *total_cores <= 0) {
    throw ValidationError(name + ": total cores must be positive");
  }
  if (operation_year && (*operation_year < 1993 || *operation_year > 2035)) {
    // 1993 is the first Top500 list; reject obviously bogus years.
    throw ValidationError(name + ": operation year out of range");
  }
  auto positive = [&](const auto& opt, const char* what) {
    if (opt && *opt <= 0) {
      throw ValidationError(name + std::string(": ") + what +
                            " must be positive");
    }
  };
  positive(num_nodes, "# compute nodes");
  positive(num_gpus, "# GPUs");  // 0 GPUs is expressed as accelerator==""
  positive(num_cpus, "# CPUs");
  positive(memory_gb, "memory capacity");
  positive(ssd_tb, "SSD capacity");
  if (utilization && (*utilization <= 0.0 || *utilization > 1.0)) {
    throw ValidationError(name + ": utilization must be in (0,1]");
  }
  if (annual_energy_kwh && *annual_energy_kwh <= 0.0) {
    throw ValidationError(name + ": annual energy must be positive");
  }
}

bool Inputs::has_accelerator() const {
  const auto a = util::to_lower(util::trim(accelerator));
  return !a.empty() && a != "none" && a != "n/a";
}

}  // namespace easyc::model
