// EasyC operational-carbon model.
//
//   operational MT CO2e / year =
//       annual energy (kWh) x PUE x grid carbon intensity (g/kWh) / 1e9
//
// Annual energy is resolved through a "gentle slope" of estimation
// paths, from best data to least (the paper's design requirement: use
// the few metrics available, allow more when present):
//
//   1. metered annual energy            (optional metric 9)
//   2. Top500-reported HPL power  x utilization x 8760h
//   3. component power roll-up: nodes x (CPU TDP + GPU TDP + DRAM + fan/
//      VRM overhead) x utilization     (needs node/CPU/GPU counts)
//   4. core-count power estimate       (CPU-only systems)
//
// If none of the paths has its inputs, the model reports no estimate —
// that is the uncovered population of paper Figs. 4-5.
#pragma once

#include <optional>
#include <string>

#include "easyc/inputs.hpp"
#include "easyc/outcome.hpp"
#include "grid/aci.hpp"
#include "util/units.hpp"

namespace easyc::model {

/// Shared per-lane arithmetic of the operational model. Both the scalar
/// path (finish_operational) and the SoA batch kernel's vector loops
/// call these exact functions, so the two paths are bit-identical by
/// construction: the same IEEE-754 expression trees, evaluated per
/// lane, whatever the loop structure around them.
namespace lane {

/// Path 2/3/4: component or core watts -> average IT kW including the
/// node overhead share.
constexpr double overhead_scaled_kw(double watts, double overhead_fraction) {
  return watts * (1.0 + overhead_fraction) / 1000.0;
}

/// Path 1: metered facility energy back to average IT power.
constexpr double metered_it_kw(double annual_kwh) {
  return annual_kwh / util::kHoursPerYear;
}

/// Non-metered paths: IT power x utilization over a year, facility-side.
constexpr double facility_annual_kwh(double it_kw, double utilization,
                                     double pue) {
  return util::kw_year_to_kwh(it_kw * utilization) * pue;
}

/// Facility energy at a grid intensity -> MT CO2e per year.
constexpr double operational_mt(double annual_kwh, double aci_g_kwh) {
  return util::kwh_to_mtco2e(annual_kwh, aci_g_kwh);
}

}  // namespace lane

/// Which estimation path produced the energy figure.
enum class EnergyPath {
  kMeteredAnnualEnergy,
  kReportedPower,
  kComponentRollup,
  kCoreCountEstimate,
};

std::string energy_path_name(EnergyPath path);

struct OperationalResult {
  double mt_co2e = 0.0;        ///< annual operational carbon
  double annual_kwh = 0.0;     ///< facility energy (post-PUE)
  double it_kw = 0.0;          ///< average IT power draw
  double pue = 1.0;
  double aci_g_kwh = 0.0;      ///< grid intensity used
  bool aci_region_refined = false;  ///< true when a sub-national ACI hit
  EnergyPath path = EnergyPath::kReportedPower;
  double utilization = 0.0;    ///< utilization actually applied
};

struct OperationalOptions {
  /// Prior for average utilization when the optional metric is absent.
  /// Leadership HPC systems run 70-90% busy; 0.75 is the default prior
  /// (annual average draw relative to the HPL power figure).
  double default_utilization = 0.75;
  /// Grid intensity database (defaults to the builtin snapshot).
  const grid::AciDatabase* aci = &grid::AciDatabase::builtin();
  /// Power drawn by node components other than CPU/GPU/DRAM (VRM loss,
  /// fans, NIC), as a fraction of compute power.
  double node_overhead_fraction = 0.18;
  /// What-if override: force this grid intensity (gCO2e/kWh) for every
  /// system instead of the database lookup (e.g. a renewables-heavy
  /// fleet-siting scenario). Also rescues systems whose country has no
  /// database entry.
  std::optional<double> aci_override_g_kwh;
  /// What-if override: force this PUE instead of the facility-class
  /// prior. Not applied on the metered-energy path, which is already
  /// facility-side.
  std::optional<double> pue_override;
};

/// The options-independent half of one operational assessment: energy
/// path selected, catalog strings matched, era priors applied — every
/// branchy, allocation-heavy step that depends only on the inputs. A
/// resolution is computed once per distinct input record and reused
/// across scenarios (the batch kernel's main win); finish_operational
/// applies the per-scenario knobs on top.
struct OperationalResolution {
  /// Which estimation path the inputs support (kNone = the uncovered
  /// population). Path choice never depends on options.
  enum class Path { kNone, kMetered, kReported, kRollup, kCores };
  Path path = Path::kNone;

  /// Path payload: metered annual kWh, reported kW, roll-up component
  /// watts (pre-overhead), or core-count watts (pre-overhead).
  double base = 0.0;

  int year = 2020;                ///< operation year (2020 prior applied)
  bool has_utilization = false;   ///< metric 8 reported
  double utilization = 0.0;       ///< meaningful when has_utilization

  /// Failure reason emitted when the scenario yields no grid intensity
  /// (precomputed: it only depends on the record's country).
  std::string aci_missing_reason;
};

/// Resolve the options-independent half. `inputs` must already be
/// validated (callers: assess_operational after validate(), the batch
/// kernel once per distinct record profile).
OperationalResolution resolve_operational(const Inputs& inputs);

/// Apply scenario knobs to a resolution. `aci`/`aci_region_refined`
/// must be exactly what the scalar lookup would produce: the override
/// when set, else AciDatabase::best_aci / region_aci — the batch kernel
/// serves them from a per-batch table instead.
Outcome<OperationalResult> finish_operational(
    const OperationalResolution& resolution, std::optional<double> aci,
    bool aci_region_refined, const OperationalOptions& options);

/// Assess one system. `inputs.validate()` is called; invalid inputs
/// throw ValidationError, *missing* inputs yield a failure Outcome.
Outcome<OperationalResult> assess_operational(
    const Inputs& inputs, const OperationalOptions& options = {});

/// assess_operational for inputs already validated this batch (the
/// engine validates once per distinct record, not once per scenario).
Outcome<OperationalResult> assess_operational_prevalidated(
    const Inputs& inputs, const OperationalOptions& options);

}  // namespace easyc::model
