// EasyC operational-carbon model.
//
//   operational MT CO2e / year =
//       annual energy (kWh) x PUE x grid carbon intensity (g/kWh) / 1e9
//
// Annual energy is resolved through a "gentle slope" of estimation
// paths, from best data to least (the paper's design requirement: use
// the few metrics available, allow more when present):
//
//   1. metered annual energy            (optional metric 9)
//   2. Top500-reported HPL power  x utilization x 8760h
//   3. component power roll-up: nodes x (CPU TDP + GPU TDP + DRAM + fan/
//      VRM overhead) x utilization     (needs node/CPU/GPU counts)
//   4. core-count power estimate       (CPU-only systems)
//
// If none of the paths has its inputs, the model reports no estimate —
// that is the uncovered population of paper Figs. 4-5.
#pragma once

#include <optional>
#include <string>

#include "easyc/inputs.hpp"
#include "easyc/outcome.hpp"
#include "grid/aci.hpp"

namespace easyc::model {

/// Which estimation path produced the energy figure.
enum class EnergyPath {
  kMeteredAnnualEnergy,
  kReportedPower,
  kComponentRollup,
  kCoreCountEstimate,
};

std::string energy_path_name(EnergyPath path);

struct OperationalResult {
  double mt_co2e = 0.0;        ///< annual operational carbon
  double annual_kwh = 0.0;     ///< facility energy (post-PUE)
  double it_kw = 0.0;          ///< average IT power draw
  double pue = 1.0;
  double aci_g_kwh = 0.0;      ///< grid intensity used
  bool aci_region_refined = false;  ///< true when a sub-national ACI hit
  EnergyPath path = EnergyPath::kReportedPower;
  double utilization = 0.0;    ///< utilization actually applied
};

struct OperationalOptions {
  /// Prior for average utilization when the optional metric is absent.
  /// Leadership HPC systems run 70-90% busy; 0.75 is the default prior
  /// (annual average draw relative to the HPL power figure).
  double default_utilization = 0.75;
  /// Grid intensity database (defaults to the builtin snapshot).
  const grid::AciDatabase* aci = &grid::AciDatabase::builtin();
  /// Power drawn by node components other than CPU/GPU/DRAM (VRM loss,
  /// fans, NIC), as a fraction of compute power.
  double node_overhead_fraction = 0.18;
  /// What-if override: force this grid intensity (gCO2e/kWh) for every
  /// system instead of the database lookup (e.g. a renewables-heavy
  /// fleet-siting scenario). Also rescues systems whose country has no
  /// database entry.
  std::optional<double> aci_override_g_kwh;
  /// What-if override: force this PUE instead of the facility-class
  /// prior. Not applied on the metered-energy path, which is already
  /// facility-side.
  std::optional<double> pue_override;
};

/// Assess one system. `inputs.validate()` is called; invalid inputs
/// throw ValidationError, *missing* inputs yield a failure Outcome.
Outcome<OperationalResult> assess_operational(
    const Inputs& inputs, const OperationalOptions& options = {});

}  // namespace easyc::model
