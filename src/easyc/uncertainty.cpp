#include "easyc/uncertainty.hpp"

#include <algorithm>

#include "parallel/algorithms.hpp"
#include "util/rng.hpp"

namespace easyc::model {

namespace {

struct TrialTotals {
  double op_mt = 0.0;
  double emb_mt = 0.0;
};

TrialTotals run_trial(const std::vector<Inputs>& inputs,
                      const EasyCOptions& base, const PriorRanges& ranges,
                      util::Rng rng) {
  double aci_scale = 1.0;
  EasyCModel model(perturb_options(base, ranges, rng, &aci_scale));
  TrialTotals t;
  for (const auto& in : inputs) {
    const auto a = model.assess(in);
    if (a.operational.ok()) t.op_mt += a.operational.value().mt_co2e;
    if (a.embodied.ok()) t.emb_mt += a.embodied.value().total_mt;
  }
  t.op_mt *= aci_scale;
  return t;
}

}  // namespace

EasyCOptions perturb_options(const EasyCOptions& base,
                             const PriorRanges& ranges, util::Rng& rng,
                             double* aci_scale) {
  auto jitter = [&rng](double center, double rel) {
    return center * rng.uniform(1.0 - rel, 1.0 + rel);
  };

  EasyCOptions opt = base;
  opt.operational.default_utilization = std::clamp(
      jitter(base.operational.default_utilization, ranges.utilization_rel),
      0.05, 1.0);
  opt.embodied.fab_aci_kg_kwh =
      jitter(base.embodied.fab_aci_kg_kwh, ranges.fab_aci_rel);
  opt.embodied.platform_base_kg =
      jitter(base.embodied.platform_base_kg, ranges.node_platform_rel);
  opt.embodied.platform_per_cpu_core_kg = jitter(
      base.embodied.platform_per_cpu_core_kg, ranges.node_platform_rel);
  opt.embodied.platform_per_gpu_kg =
      jitter(base.embodied.platform_per_gpu_kg, ranges.node_platform_rel);
  opt.embodied.default_ssd_tb_per_node =
      jitter(base.embodied.default_ssd_tb_per_node, ranges.ssd_default_rel);
  // ACI perturbation is applied as a post-scale on operational carbon:
  // intensity enters the model linearly, so scaling the result is exact
  // and avoids cloning the database per trial.
  const double scale = 1.0 + ranges.aci_rel * rng.uniform(-1.0, 1.0);
  if (aci_scale != nullptr) *aci_scale = scale;
  return opt;
}

UncertaintyResult run_uncertainty(const std::vector<Inputs>& inputs,
                                  const EasyCOptions& base_options,
                                  const PriorRanges& ranges, size_t trials,
                                  uint64_t seed, par::ThreadPool* pool) {
  std::vector<double> op(trials, 0.0);
  std::vector<double> emb(trials, 0.0);
  const util::Rng root(seed);

  auto body = [&](size_t i) {
    const auto t = run_trial(inputs, base_options, ranges, root.fork(i));
    op[i] = t.op_mt;
    emb[i] = t.emb_mt;
  };

  if (pool != nullptr) {
    par::parallel_for(*pool, 0, trials, body);
  } else {
    for (size_t i = 0; i < trials; ++i) body(i);
  }

  UncertaintyResult r;
  r.trials = trials;
  r.operational_mt = util::summarize(op);
  r.embodied_mt = util::summarize(emb);
  return r;
}

}  // namespace easyc::model
