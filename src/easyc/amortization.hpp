// Lifetime amortization of embodied carbon.
//
// The paper: "the embodied carbon is 1-time for the lifetime of the
// computer system so it would be smaller if annualized." This module
// does the annualization and answers the retire-or-keep question that
// falls out of it: an old machine carries zero marginal embodied carbon
// but a high operational rate; a replacement reverses the trade.
#pragma once

#include "easyc/embodied.hpp"
#include "easyc/operational.hpp"

namespace easyc::model {

struct AmortizationOptions {
  /// Service life over which manufacturing carbon is spread. Top500
  /// systems historically serve 5-7 years.
  double service_years = 6.0;
};

struct AnnualFootprint {
  double operational_mt = 0.0;       ///< per year
  double embodied_amortized_mt = 0.0;///< embodied / service life
  double total_mt = 0.0;
  double embodied_share = 0.0;       ///< fraction of total
};

/// Combine an operational result and an embodied breakdown into an
/// annualized footprint.
AnnualFootprint annualize(const OperationalResult& operational,
                          const EmbodiedBreakdown& embodied,
                          const AmortizationOptions& options = {});

/// Replacement analysis: payback time (years) until a replacement
/// system's embodied carbon is recovered by its operational savings.
/// Returns +infinity when the replacement never pays back (it saves no
/// operational carbon).
double replacement_payback_years(double old_operational_mt_per_year,
                                 double new_operational_mt_per_year,
                                 double new_embodied_mt);

}  // namespace easyc::model
