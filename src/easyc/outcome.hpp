// Outcome<T>: either a computed model result or the list of reasons the
// model declined to produce one.
//
// Coverage — which systems *can* be assessed under a data scenario — is
// itself a headline result of the paper (Figs. 4-6), so "no estimate" is
// a first-class value with machine-readable reasons, not an exception.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace easyc::model {

template <typename T>
class Outcome {
 public:
  static Outcome success(T value) {
    Outcome o;
    o.value_ = std::move(value);
    return o;
  }

  static Outcome failure(std::vector<std::string> reasons) {
    EASYC_REQUIRE(!reasons.empty(), "failure Outcome needs a reason");
    Outcome o;
    o.reasons_ = std::move(reasons);
    return o;
  }

  static Outcome failure(std::string reason) {
    return failure(std::vector<std::string>{std::move(reason)});
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const {
    EASYC_REQUIRE(value_.has_value(), "value() on failed Outcome");
    return *value_;
  }

  T& value() {
    EASYC_REQUIRE(value_.has_value(), "value() on failed Outcome");
    return *value_;
  }

  /// Why no estimate was possible (empty when ok()).
  const std::vector<std::string>& reasons() const { return reasons_; }

  std::string reasons_joined() const {
    std::string out;
    for (size_t i = 0; i < reasons_.size(); ++i) {
      if (i > 0) out += "; ";
      out += reasons_[i];
    }
    return out;
  }

 private:
  Outcome() = default;
  std::optional<T> value_;
  std::vector<std::string> reasons_;
};

}  // namespace easyc::model
