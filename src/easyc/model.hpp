// EasyCModel: the tool facade (paper Fig. 1).
//
// Bundles the operational and embodied models behind one call with one
// options block, and reports per-system assessments that the analysis
// layer aggregates into the paper's figures.
#pragma once

#include <string>
#include <vector>

#include "easyc/embodied.hpp"
#include "easyc/inputs.hpp"
#include "easyc/operational.hpp"

namespace easyc::par {
class ThreadPool;
}

namespace easyc::model {

struct EasyCOptions {
  OperationalOptions operational;
  EmbodiedOptions embodied;
};

/// Per-system assessment: either side may independently fail for lack
/// of data (the paper's operational and embodied coverages differ:
/// 391 vs 283 of 500 on Top500.org data).
struct SystemAssessment {
  std::string name;
  Outcome<OperationalResult> operational;
  Outcome<EmbodiedBreakdown> embodied;

  SystemAssessment()
      : operational(Outcome<OperationalResult>::failure("not assessed")),
        embodied(Outcome<EmbodiedBreakdown>::failure("not assessed")) {}
};

class EasyCModel {
 public:
  explicit EasyCModel(EasyCOptions options = {})
      : options_(std::move(options)) {}

  const EasyCOptions& options() const { return options_; }

  /// Assess one system.
  SystemAssessment assess(const Inputs& inputs) const;

  /// Assess a fleet. When `pool` is non-null the sweep is parallelized
  /// across it (otherwise across the process-global pool); results are
  /// index-stable and bit-identical either way.
  std::vector<SystemAssessment> assess_all(
      const std::vector<Inputs>& inputs,
      par::ThreadPool* pool = nullptr) const;

 private:
  EasyCOptions options_;
};

}  // namespace easyc::model
