#include "easyc/amortization.hpp"

#include <limits>

#include "util/error.hpp"

namespace easyc::model {

AnnualFootprint annualize(const OperationalResult& operational,
                          const EmbodiedBreakdown& embodied,
                          const AmortizationOptions& options) {
  EASYC_REQUIRE(options.service_years > 0, "service life must be positive");
  AnnualFootprint f;
  f.operational_mt = operational.mt_co2e;
  f.embodied_amortized_mt = embodied.total_mt / options.service_years;
  f.total_mt = f.operational_mt + f.embodied_amortized_mt;
  f.embodied_share =
      f.total_mt > 0 ? f.embodied_amortized_mt / f.total_mt : 0.0;
  return f;
}

double replacement_payback_years(double old_operational_mt_per_year,
                                 double new_operational_mt_per_year,
                                 double new_embodied_mt) {
  EASYC_REQUIRE(old_operational_mt_per_year >= 0 &&
                    new_operational_mt_per_year >= 0 &&
                    new_embodied_mt >= 0,
                "carbon figures must be non-negative");
  const double savings =
      old_operational_mt_per_year - new_operational_mt_per_year;
  if (savings <= 0.0) return std::numeric_limits<double>::infinity();
  return new_embodied_mt / savings;
}

}  // namespace easyc::model
