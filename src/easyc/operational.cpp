#include "easyc/operational.hpp"

#include <algorithm>

#include "grid/pue.hpp"
#include "hw/accelerator.hpp"
#include "hw/cpu.hpp"
#include "hw/memory.hpp"
#include "util/units.hpp"

namespace easyc::model {

std::string energy_path_name(EnergyPath path) {
  switch (path) {
    case EnergyPath::kMeteredAnnualEnergy: return "metered annual energy";
    case EnergyPath::kReportedPower: return "reported HPL power";
    case EnergyPath::kComponentRollup: return "component power roll-up";
    case EnergyPath::kCoreCountEstimate: return "core-count estimate";
  }
  return "unknown";
}

namespace {

// Per-node average DRAM capacity prior (GB) by era, used only inside the
// component roll-up when memory capacity is unreported.
double default_node_memory_gb(int year) {
  if (year >= 2023) return 768.0;
  if (year >= 2019) return 512.0;
  if (year >= 2016) return 256.0;
  return 128.0;
}

struct ItPowerEstimate {
  double kw = 0.0;
  EnergyPath path = EnergyPath::kComponentRollup;
};

// Estimation path 3: roll node component TDPs up to system IT power.
std::optional<ItPowerEstimate> component_rollup(const Inputs& in,
                                                double overhead_fraction) {
  if (!in.num_nodes || !in.num_cpus) return std::nullopt;
  // Accelerated system with no accelerator count: cannot roll up.
  if (in.has_accelerator() && !in.num_gpus) return std::nullopt;

  const int year = in.operation_year.value_or(2020);

  double cpu_tdp_w = 0.0;
  if (auto cpu = hw::find_cpu(in.processor)) {
    cpu_tdp_w = cpu->tdp_w;
  } else if (in.total_cores && in.num_cpus) {
    const auto cores_per_cpu = static_cast<int>(
        std::max<long long>(1, *in.total_cores / *in.num_cpus));
    cpu_tdp_w = hw::generic_server_cpu(year, cores_per_cpu).tdp_w;
  } else {
    return std::nullopt;
  }

  double gpu_w_total = 0.0;
  if (in.has_accelerator()) {
    double gpu_tdp = 0.0;
    if (auto acc = hw::find_accelerator(in.accelerator)) {
      gpu_tdp = acc->tdp_w;
    } else {
      gpu_tdp = hw::mainstream_gpu_proxy(year).tdp_w;
    }
    gpu_w_total = gpu_tdp * static_cast<double>(*in.num_gpus);
  }

  const double cpu_w_total =
      cpu_tdp_w * static_cast<double>(*in.num_cpus);

  const double mem_gb = in.memory_gb.value_or(
      default_node_memory_gb(year) * static_cast<double>(*in.num_nodes));
  const auto mem_type =
      in.memory_type ? hw::parse_memory_type(*in.memory_type)
                     : hw::MemoryType::kUnknown;
  const double mem_w_total = hw::memory_spec(mem_type).power_w_per_gb * mem_gb;

  const double compute_w = cpu_w_total + gpu_w_total + mem_w_total;
  ItPowerEstimate est;
  est.kw = compute_w * (1.0 + overhead_fraction) / 1000.0;
  est.path = EnergyPath::kComponentRollup;
  return est;
}

// Estimation path 4: CPU-only systems where only core counts are known.
std::optional<ItPowerEstimate> core_count_estimate(const Inputs& in,
                                                   double overhead_fraction) {
  if (in.has_accelerator()) return std::nullopt;  // cores alone say nothing
  if (!in.total_cores) return std::nullopt;
  const int year = in.operation_year.value_or(2020);
  // Era-typical average watts per core, including the core's share of
  // uncore and DRAM (calibrated against listed HPL power of CPU-only
  // systems of each era).
  double w_per_core = 3.4;
  if (year >= 2022) {
    w_per_core = 2.3;
  } else if (year >= 2019) {
    w_per_core = 2.7;
  }
  ItPowerEstimate est;
  est.kw = static_cast<double>(*in.total_cores) * w_per_core *
           (1.0 + overhead_fraction) / 1000.0;
  est.path = EnergyPath::kCoreCountEstimate;
  return est;
}

}  // namespace

Outcome<OperationalResult> assess_operational(
    const Inputs& in, const OperationalOptions& options) {
  in.validate();
  EASYC_REQUIRE(options.aci != nullptr, "options.aci must not be null");
  EASYC_REQUIRE(options.default_utilization > 0.0 &&
                    options.default_utilization <= 1.0,
                "default utilization must be in (0,1]");

  std::vector<std::string> reasons;

  // --- grid intensity ---
  const bool aci_overridden = options.aci_override_g_kwh.has_value();
  const auto aci = aci_overridden
                       ? options.aci_override_g_kwh
                       : options.aci->best_aci(in.country, in.region);
  if (!aci) {
    reasons.push_back("no grid carbon intensity for country '" + in.country +
                      "'");
  }

  // --- energy ---
  const double util = in.utilization.value_or(options.default_utilization);
  const int year = in.operation_year.value_or(2020);

  OperationalResult r;
  r.utilization = util;

  if (in.annual_energy_kwh) {
    // Path 1: metered energy is facility-side; no PUE re-application.
    r.path = EnergyPath::kMeteredAnnualEnergy;
    r.annual_kwh = *in.annual_energy_kwh;
    r.pue = 1.0;
    r.it_kw = r.annual_kwh / util::kHoursPerYear;
  } else {
    std::optional<ItPowerEstimate> it;
    if (in.power_kw) {
      // Path 2: Top500 power is measured during HPL, close to full
      // load; scale by utilization for the annual average.
      it = ItPowerEstimate{*in.power_kw, EnergyPath::kReportedPower};
    } else if (auto roll =
                   component_rollup(in, options.node_overhead_fraction)) {
      it = roll;
    } else if (auto cores =
                   core_count_estimate(in, options.node_overhead_fraction)) {
      it = cores;
    }
    if (!it) {
      reasons.push_back(
          "no energy path: power not reported and component counts "
          "insufficient for a roll-up");
    } else {
      r.path = it->path;
      r.it_kw = it->kw;
      r.pue = options.pue_override.value_or(grid::default_pue(
          grid::infer_facility_class(it->kw, year), year));
      r.annual_kwh = util::kw_year_to_kwh(it->kw * util) * r.pue;
    }
  }

  if (!reasons.empty()) {
    return Outcome<OperationalResult>::failure(std::move(reasons));
  }

  r.aci_g_kwh = *aci;
  r.aci_region_refined =
      !aci_overridden &&
      options.aci->region_aci(in.country, in.region).has_value();
  r.mt_co2e = util::kwh_to_mtco2e(r.annual_kwh, r.aci_g_kwh);
  return Outcome<OperationalResult>::success(r);
}

}  // namespace easyc::model
