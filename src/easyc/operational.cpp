#include "easyc/operational.hpp"

#include <algorithm>

#include "grid/pue.hpp"
#include "hw/accelerator.hpp"
#include "hw/cpu.hpp"
#include "hw/memory.hpp"
#include "util/units.hpp"

namespace easyc::model {

std::string energy_path_name(EnergyPath path) {
  switch (path) {
    case EnergyPath::kMeteredAnnualEnergy: return "metered annual energy";
    case EnergyPath::kReportedPower: return "reported HPL power";
    case EnergyPath::kComponentRollup: return "component power roll-up";
    case EnergyPath::kCoreCountEstimate: return "core-count estimate";
  }
  return "unknown";
}

namespace {

// Per-node average DRAM capacity prior (GB) by era, used only inside the
// component roll-up when memory capacity is unreported.
double default_node_memory_gb(int year) {
  if (year >= 2023) return 768.0;
  if (year >= 2019) return 512.0;
  if (year >= 2016) return 256.0;
  return 128.0;
}

// Estimation path 3: roll node component TDPs up to system compute
// power (watts, pre-overhead; finish_operational applies the node
// overhead share via lane::overhead_scaled_kw).
std::optional<double> component_rollup_watts(const Inputs& in) {
  if (!in.num_nodes || !in.num_cpus) return std::nullopt;
  // Accelerated system with no accelerator count: cannot roll up.
  if (in.has_accelerator() && !in.num_gpus) return std::nullopt;

  const int year = in.operation_year.value_or(2020);

  double cpu_tdp_w = 0.0;
  if (auto cpu = hw::find_cpu(in.processor)) {
    cpu_tdp_w = cpu->tdp_w;
  } else if (in.total_cores && in.num_cpus) {
    const auto cores_per_cpu = static_cast<int>(
        std::max<long long>(1, *in.total_cores / *in.num_cpus));
    cpu_tdp_w = hw::generic_server_cpu(year, cores_per_cpu).tdp_w;
  } else {
    return std::nullopt;
  }

  double gpu_w_total = 0.0;
  if (in.has_accelerator()) {
    double gpu_tdp = 0.0;
    if (auto acc = hw::find_accelerator(in.accelerator)) {
      gpu_tdp = acc->tdp_w;
    } else {
      gpu_tdp = hw::mainstream_gpu_proxy(year).tdp_w;
    }
    gpu_w_total = gpu_tdp * static_cast<double>(*in.num_gpus);
  }

  const double cpu_w_total =
      cpu_tdp_w * static_cast<double>(*in.num_cpus);

  const double mem_gb = in.memory_gb.value_or(
      default_node_memory_gb(year) * static_cast<double>(*in.num_nodes));
  const auto mem_type =
      in.memory_type ? hw::parse_memory_type(*in.memory_type)
                     : hw::MemoryType::kUnknown;
  const double mem_w_total = hw::memory_spec(mem_type).power_w_per_gb * mem_gb;

  return cpu_w_total + gpu_w_total + mem_w_total;
}

// Estimation path 4: CPU-only systems where only core counts are known.
// Returns watts, pre-overhead, like component_rollup_watts.
std::optional<double> core_count_watts(const Inputs& in) {
  if (in.has_accelerator()) return std::nullopt;  // cores alone say nothing
  if (!in.total_cores) return std::nullopt;
  const int year = in.operation_year.value_or(2020);
  // Era-typical average watts per core, including the core's share of
  // uncore and DRAM (calibrated against listed HPL power of CPU-only
  // systems of each era).
  double w_per_core = 3.4;
  if (year >= 2022) {
    w_per_core = 2.3;
  } else if (year >= 2019) {
    w_per_core = 2.7;
  }
  return static_cast<double>(*in.total_cores) * w_per_core;
}

}  // namespace

OperationalResolution resolve_operational(const Inputs& in) {
  OperationalResolution rz;
  rz.year = in.operation_year.value_or(2020);
  rz.has_utilization = in.utilization.has_value();
  if (rz.has_utilization) rz.utilization = *in.utilization;
  rz.aci_missing_reason =
      "no grid carbon intensity for country '" + in.country + "'";

  if (in.annual_energy_kwh) {
    // Path 1: metered energy is facility-side; no PUE re-application.
    rz.path = OperationalResolution::Path::kMetered;
    rz.base = *in.annual_energy_kwh;
  } else if (in.power_kw) {
    // Path 2: Top500 power is measured during HPL, close to full load;
    // scale by utilization for the annual average.
    rz.path = OperationalResolution::Path::kReported;
    rz.base = *in.power_kw;
  } else if (auto roll = component_rollup_watts(in)) {
    rz.path = OperationalResolution::Path::kRollup;
    rz.base = *roll;
  } else if (auto cores = core_count_watts(in)) {
    rz.path = OperationalResolution::Path::kCores;
    rz.base = *cores;
  }
  return rz;
}

Outcome<OperationalResult> finish_operational(
    const OperationalResolution& rz, std::optional<double> aci,
    bool aci_region_refined, const OperationalOptions& options) {
  std::vector<std::string> reasons;
  if (!aci) reasons.push_back(rz.aci_missing_reason);

  const double util =
      rz.has_utilization ? rz.utilization : options.default_utilization;

  OperationalResult r;
  r.utilization = util;

  using Path = OperationalResolution::Path;
  switch (rz.path) {
    case Path::kNone:
      reasons.push_back(
          "no energy path: power not reported and component counts "
          "insufficient for a roll-up");
      break;
    case Path::kMetered:
      r.path = EnergyPath::kMeteredAnnualEnergy;
      r.annual_kwh = rz.base;
      r.pue = 1.0;
      r.it_kw = lane::metered_it_kw(rz.base);
      break;
    case Path::kReported:
    case Path::kRollup:
    case Path::kCores:
      r.path = rz.path == Path::kReported ? EnergyPath::kReportedPower
               : rz.path == Path::kRollup ? EnergyPath::kComponentRollup
                                          : EnergyPath::kCoreCountEstimate;
      r.it_kw = rz.path == Path::kReported
                    ? rz.base
                    : lane::overhead_scaled_kw(rz.base,
                                               options.node_overhead_fraction);
      r.pue = options.pue_override.value_or(grid::default_pue(
          grid::infer_facility_class(r.it_kw, rz.year), rz.year));
      r.annual_kwh = lane::facility_annual_kwh(r.it_kw, util, r.pue);
      break;
  }

  if (!reasons.empty()) {
    return Outcome<OperationalResult>::failure(std::move(reasons));
  }

  r.aci_g_kwh = *aci;
  r.aci_region_refined = aci_region_refined;
  r.mt_co2e = lane::operational_mt(r.annual_kwh, r.aci_g_kwh);
  return Outcome<OperationalResult>::success(r);
}

Outcome<OperationalResult> assess_operational_prevalidated(
    const Inputs& in, const OperationalOptions& options) {
  EASYC_REQUIRE(options.aci != nullptr, "options.aci must not be null");
  EASYC_REQUIRE(options.default_utilization > 0.0 &&
                    options.default_utilization <= 1.0,
                "default utilization must be in (0,1]");
  const OperationalResolution rz = resolve_operational(in);
  const bool aci_overridden = options.aci_override_g_kwh.has_value();
  const auto aci = aci_overridden
                       ? options.aci_override_g_kwh
                       : options.aci->best_aci(in.country, in.region);
  const bool region_refined =
      !aci_overridden &&
      options.aci->region_aci(in.country, in.region).has_value();
  return finish_operational(rz, aci, region_refined, options);
}

Outcome<OperationalResult> assess_operational(
    const Inputs& in, const OperationalOptions& options) {
  in.validate();
  return assess_operational_prevalidated(in, options);
}

}  // namespace easyc::model
