#include "easyc/batch.hpp"

#include <algorithm>

#include "grid/pue.hpp"
#include "hw/memory.hpp"
#include "hw/process.hpp"
#include "parallel/algorithms.hpp"
#include "util/error.hpp"

namespace easyc::model {

namespace {

// Lanes per chunk: big enough that the vector loops amortize their
// setup, small enough that one chunk's SoA workspace stays cache-hot.
constexpr size_t kLanesPerChunk = 256;

EnergyPath to_energy_path(OperationalResolution::Path p) {
  using Path = OperationalResolution::Path;
  switch (p) {
    case Path::kMetered: return EnergyPath::kMeteredAnnualEnergy;
    case Path::kReported: return EnergyPath::kReportedPower;
    case Path::kRollup: return EnergyPath::kComponentRollup;
    case Path::kCores: return EnergyPath::kCoreCountEstimate;
    case Path::kNone: break;
  }
  return EnergyPath::kReportedPower;
}

// One chunk's structure-of-arrays workspace. Plain contiguous doubles
// and masks: the vector-core loops below index these linearly so the
// compiler can auto-vectorize them (verified with -fopt-info-vec).
// Masks the vector core blends on (metered/reported/gpu_active/
// ssd_default) are stored as 0.0/1.0 doubles: a uint8 mask in a double
// loop leaves GCC without a vector type for the mixed widths and the
// blend stays scalar. Select stays exact (compare + ternary), so the
// widening changes no bytes.
struct Workspace {
  // operational
  std::vector<uint8_t> op_ok, aci_valid, refined;
  std::vector<double> metered, reported;
  std::vector<double> base, util, aci, it_kw, pue, annual, op_mt;
  std::vector<int> year;
  // embodied
  std::vector<uint8_t> emb_ok, mem_default, used_proxy;
  std::vector<double> gpu_active, ssd_default;
  std::vector<double> cpu_area, cpu_epa, cpu_gpa, cpu_mpa, cpu_yield, cpus_d;
  std::vector<double> gpu_area, gpu_epa, gpu_gpa, gpu_mpa, gpu_yield, gpu_hbm,
      gpus_d;
  std::vector<double> mem_gb, mem_kg, ssd_tb, nodes_d, cores_pn, gpus_pn;
  std::vector<double> cpu_mt, gpu_mt, mem_mt, sto_mt, plat_mt, ic_mt, tot_mt;

  explicit Workspace(size_t n)
      : op_ok(n), aci_valid(n), refined(n), metered(n), reported(n), base(n),
        util(n), aci(n), it_kw(n), pue(n), annual(n), op_mt(n), year(n),
        emb_ok(n), mem_default(n), used_proxy(n), gpu_active(n),
        ssd_default(n), cpu_area(n), cpu_epa(n), cpu_gpa(n), cpu_mpa(n),
        cpu_yield(n), cpus_d(n), gpu_area(n), gpu_epa(n), gpu_gpa(n),
        gpu_mpa(n), gpu_yield(n), gpu_hbm(n), gpus_d(n), mem_gb(n), mem_kg(n),
        ssd_tb(n), nodes_d(n), cores_pn(n), gpus_pn(n), cpu_mt(n), gpu_mt(n),
        mem_mt(n), sto_mt(n), plat_mt(n), ic_mt(n), tot_mt(n) {}
};

}  // namespace

size_t BatchAssessor::add_profile(Inputs inputs) {
  Profile p;
  // Distinct (country, region) pairs share one ACI table slot; 0x1f is
  // a field separator no real country/region string contains.
  std::string key;
  key.reserve(inputs.country.size() + inputs.region.size() + 1);
  key += inputs.country;
  key += '\x1f';
  key += inputs.region;
  const auto [it, inserted] =
      aci_key_by_pair_.emplace(std::move(key),
                               static_cast<uint32_t>(aci_pairs_.size()));
  if (inserted) aci_pairs_.emplace_back(inputs.country, inputs.region);
  p.aci_key = it->second;
  p.inputs = std::move(inputs);
  profiles_.push_back(std::move(p));
  stats_.aci_keys = aci_pairs_.size();
  return profiles_.size() - 1;
}

void BatchAssessor::resolve_profiles(par::ThreadPool* pool) {
  const size_t begin = resolved_;
  const size_t end = profiles_.size();
  if (begin >= end) return;
  par::parallel_for(pool ? *pool : par::ThreadPool::global(), begin, end,
                    [&](size_t i) {
                      Profile& p = profiles_[i];
                      p.inputs.validate();
                      p.op = resolve_operational(p.inputs);
                      p.emb = resolve_embodied(p.inputs);
                    });
  stats_.profiles += end - begin;
  stats_.validations += end - begin;
  resolved_ = end;
}

void BatchAssessor::ensure_aci_table(const grid::AciDatabase* db) {
  if (aci_table_db_ != db) {
    aci_table_.clear();
    aci_table_db_ = db;
  }
  const size_t old = aci_table_.size();
  if (old >= aci_pairs_.size()) return;
  aci_table_.resize(aci_pairs_.size());
  for (size_t k = old; k < aci_pairs_.size(); ++k) {
    const auto& [country, region] = aci_pairs_[k];
    AciEntry e;
    const auto best = db->best_aci(country, region);
    e.valid = best.has_value();
    e.aci_g_kwh = best.value_or(0.0);
    e.region_refined = db->region_aci(country, region).has_value();
    aci_table_[k] = e;
    stats_.aci_db_queries += 2;
  }
}

void BatchAssessor::assess(const EasyCOptions& options, const Cell* cells,
                           size_t count, par::ThreadPool* pool) {
  if (count == 0) return;
  const auto& oo = options.operational;
  // Once per batch, not once per cell — same REQUIREs, same messages,
  // as the scalar path would raise on its first cell.
  EASYC_REQUIRE(oo.aci != nullptr, "options.aci must not be null");
  EASYC_REQUIRE(oo.default_utilization > 0.0 &&
                    oo.default_utilization <= 1.0,
                "default utilization must be in (0,1]");

  const bool aci_overridden = oo.aci_override_g_kwh.has_value();
  const double aci_override = oo.aci_override_g_kwh.value_or(0.0);
  if (!aci_overridden && tuning_.hoist_aci) ensure_aci_table(oo.aci);

  stats_.lanes += count;
  if (!aci_overridden) {
    if (tuning_.hoist_aci) {
      stats_.aci_hoisted += count;
    } else {
      stats_.aci_db_queries += 2 * count;  // best_aci + region_aci per lane
    }
  }

  const size_t nchunks = (count + kLanesPerChunk - 1) / kLanesPerChunk;
  par::parallel_for(pool ? *pool : par::ThreadPool::global(), 0, nchunks,
                    [&](size_t c) {
                      const size_t lo = c * kLanesPerChunk;
                      const size_t hi =
                          std::min(count, lo + kLanesPerChunk);
                      assess_chunk(options, cells, lo, hi, aci_overridden,
                                   aci_override);
                    });
}

void BatchAssessor::assess_chunk(const EasyCOptions& options,
                                 const Cell* cells, size_t begin, size_t end,
                                 bool aci_overridden,
                                 double aci_override) const {
  const size_t n = end - begin;
  Workspace w(n);
  const auto& oo = options.operational;
  const auto& eo = options.embodied;
  const bool approx = eo.accelerator_policy ==
                      AcceleratorPolicy::kApproximateWithMainstreamGpu;
  using Path = OperationalResolution::Path;

  // ---- gather: branchy per-lane resolution into the SoA buffers ----
  for (size_t l = 0; l < n; ++l) {
    const Profile& p = profiles_[cells[begin + l].profile];

    // operational
    w.metered[l] = p.op.path == Path::kMetered;
    w.reported[l] = p.op.path == Path::kReported;
    w.base[l] = p.op.base;
    w.year[l] = p.op.year;
    w.util[l] =
        p.op.has_utilization ? p.op.utilization : oo.default_utilization;
    if (aci_overridden) {
      w.aci_valid[l] = 1;
      w.aci[l] = aci_override;
      w.refined[l] = 0;
    } else if (tuning_.hoist_aci) {
      const AciEntry& e = aci_table_[p.aci_key];
      w.aci_valid[l] = e.valid;
      w.aci[l] = e.aci_g_kwh;
      w.refined[l] = e.region_refined;
    } else {
      const auto best = oo.aci->best_aci(p.inputs.country, p.inputs.region);
      w.aci_valid[l] = best.has_value();
      w.aci[l] = best.value_or(0.0);
      w.refined[l] =
          oo.aci->region_aci(p.inputs.country, p.inputs.region).has_value();
    }
    w.op_ok[l] = w.aci_valid[l] && p.op.path != Path::kNone;

    // embodied: validity mask + coefficients (benign values in failed
    // lanes so the vector loops stay exception- and NaN-free).
    const EmbodiedResolution& e = p.emb;
    bool ok = e.has_cpu && e.has_counts;
    uint8_t proxy = 0;
    if (e.accelerated) {
      if (!e.acc_in_catalog) {
        if (approx) {
          proxy = 1;
        } else {
          ok = false;
        }
      }
      if (!e.has_gpu_count) ok = false;
    }
    w.emb_ok[l] = ok;
    w.used_proxy[l] = proxy;
    if (ok) {
      // REQUIRE parity with ProcessNode::carbon_per_cm2, which the
      // scalar path calls per success lane.
      EASYC_REQUIRE(eo.fab_aci_kg_kwh >= 0.0, "fab ACI must be non-negative");
      EASYC_REQUIRE(e.cpu_node.yield > 0.0 && e.cpu_node.yield <= 1.0,
                    "yield must be in (0,1]");
      w.cpu_area[l] = e.cpu_die_area_cm2;
      w.cpu_epa[l] = e.cpu_node.epa_kwh_cm2;
      w.cpu_gpa[l] = e.cpu_node.gpa_kg_cm2;
      w.cpu_mpa[l] = e.cpu_node.mpa_kg_cm2;
      w.cpu_yield[l] = e.cpu_node.yield;
      w.cpus_d[l] = static_cast<double>(e.cpus);
      const bool gpu = e.accelerated && e.gpu_count > 0;
      w.gpu_active[l] = gpu;
      if (gpu) {
        const hw::ProcessNode& gn = e.acc_in_catalog ? e.acc_node
                                                     : e.proxy_node;
        EASYC_REQUIRE(gn.yield > 0.0 && gn.yield <= 1.0,
                      "yield must be in (0,1]");
        w.gpu_area[l] =
            e.acc_in_catalog ? e.acc_die_area_cm2 : e.proxy_die_area_cm2;
        w.gpu_epa[l] = gn.epa_kwh_cm2;
        w.gpu_gpa[l] = gn.gpa_kg_cm2;
        w.gpu_mpa[l] = gn.mpa_kg_cm2;
        w.gpu_yield[l] = gn.yield;
        w.gpu_hbm[l] = e.acc_in_catalog ? e.acc_hbm_kg : e.proxy_hbm_kg;
        w.gpus_d[l] = static_cast<double>(e.gpu_count);
      } else {
        w.gpu_yield[l] = 1.0;
      }
      w.mem_default[l] = !e.has_memory_gb;
      w.mem_gb[l] = e.has_memory_gb ? e.memory_gb : e.default_memory_gb;
      w.mem_kg[l] = e.mem_kg_per_gb;
      w.ssd_default[l] = !e.has_ssd_tb;
      w.ssd_tb[l] = e.ssd_tb;
      w.nodes_d[l] = e.nodes_d;
      w.cores_pn[l] = e.cpu_cores_per_node;
      w.gpus_pn[l] = e.gpus_per_node;
    } else {
      w.cpu_yield[l] = 1.0;
      w.gpu_yield[l] = 1.0;
      w.nodes_d[l] = 1.0;
    }
  }

  // ---- vector core: contiguous arithmetic over the lanes ----
  const double ov = oo.node_overhead_fraction;
  for (size_t l = 0; l < n; ++l) {
    w.it_kw[l] = w.metered[l] != 0.0  ? lane::metered_it_kw(w.base[l])
                 : w.reported[l] != 0.0 ? w.base[l]
                                 : lane::overhead_scaled_kw(w.base[l], ov);
  }
  // PUE: the facility-class inference is a branchy lookup, so it stays
  // lane-at-a-time; with a scenario override it collapses to a blend.
  if (oo.pue_override) {
    const double po = *oo.pue_override;
    for (size_t l = 0; l < n; ++l) {
      w.pue[l] = w.metered[l] != 0.0 ? 1.0 : po;
    }
  } else {
    for (size_t l = 0; l < n; ++l) {
      w.pue[l] = w.metered[l] != 0.0
                     ? 1.0
                     : grid::default_pue(
                           grid::infer_facility_class(w.it_kw[l], w.year[l]),
                           w.year[l]);
    }
  }
  for (size_t l = 0; l < n; ++l) {
    w.annual[l] = w.metered[l] != 0.0
                      ? w.base[l]
                      : lane::facility_annual_kwh(w.it_kw[l], w.util[l],
                                                  w.pue[l]);
  }
  for (size_t l = 0; l < n; ++l) {
    w.op_mt[l] = lane::operational_mt(w.annual[l], w.aci[l]);
  }

  const double fab = eo.fab_aci_kg_kwh;
  for (size_t l = 0; l < n; ++l) {
    const double cpa = hw::carbon_per_cm2_unchecked(
        w.cpu_epa[l], w.cpu_gpa[l], w.cpu_mpa[l], w.cpu_yield[l], fab);
    w.cpu_mt[l] = lane::component_mt(
        lane::cpu_package_kg(w.cpu_area[l], cpa, eo.cpu_packaging_kg),
        w.cpus_d[l]);
  }
  for (size_t l = 0; l < n; ++l) {
    const double cpa = hw::carbon_per_cm2_unchecked(
        w.gpu_epa[l], w.gpu_gpa[l], w.gpu_mpa[l], w.gpu_yield[l], fab);
    const double mt = lane::component_mt(
        lane::gpu_package_kg(w.gpu_area[l], cpa, w.gpu_hbm[l],
                             eo.gpu_packaging_kg),
        w.gpus_d[l]);
    w.gpu_mt[l] = w.gpu_active[l] != 0.0 ? mt : 0.0;
  }
  for (size_t l = 0; l < n; ++l) {
    w.mem_mt[l] = lane::component_mt(w.mem_gb[l], w.mem_kg[l]);
  }
  const double ssd_kg_per_tb =
      hw::storage_spec(hw::StorageClass::kNvmeSsd).embodied_kg_per_tb;
  const double ssd_tb_per_node = eo.default_ssd_tb_per_node;
  const double ssd_cap_tb = eo.default_ssd_cap_tb;
  for (size_t l = 0; l < n; ++l) {
    const double tb =
        w.ssd_default[l] != 0.0
            ? lane::default_ssd_tb(ssd_tb_per_node, w.nodes_d[l], ssd_cap_tb)
            : w.ssd_tb[l];
    w.sto_mt[l] = lane::component_mt(tb, ssd_kg_per_tb);
  }
  for (size_t l = 0; l < n; ++l) {
    w.plat_mt[l] = lane::component_mt(
        lane::node_overhead_kg(eo.platform_base_kg,
                               eo.platform_per_cpu_core_kg, w.cores_pn[l],
                               eo.platform_per_gpu_kg, w.gpus_pn[l],
                               eo.platform_cap_kg),
        w.nodes_d[l]);
    w.ic_mt[l] = lane::component_mt(
        lane::node_overhead_kg(eo.interconnect_base_kg,
                               eo.interconnect_per_cpu_core_kg, w.cores_pn[l],
                               eo.interconnect_per_gpu_kg, w.gpus_pn[l],
                               eo.interconnect_cap_kg),
        w.nodes_d[l]);
  }
  for (size_t l = 0; l < n; ++l) {
    w.tot_mt[l] =
        lane::embodied_total_mt(w.cpu_mt[l], w.gpu_mt[l], w.mem_mt[l],
                                w.sto_mt[l], w.plat_mt[l], w.ic_mt[l]);
  }

  // ---- scatter: masked lanes reproduce the scalar failure reasons in
  // the scalar order; success lanes copy the vector-core doubles ----
  for (size_t l = 0; l < n; ++l) {
    const Profile& p = profiles_[cells[begin + l].profile];
    SystemAssessment& out = *cells[begin + l].out;
    out.name = p.inputs.name;

    if (w.op_ok[l]) {
      OperationalResult r;
      r.mt_co2e = w.op_mt[l];
      r.annual_kwh = w.annual[l];
      r.it_kw = w.it_kw[l];
      r.pue = w.pue[l];
      r.aci_g_kwh = w.aci[l];
      r.aci_region_refined = w.refined[l];
      r.path = to_energy_path(p.op.path);
      r.utilization = w.util[l];
      out.operational = Outcome<OperationalResult>::success(r);
    } else {
      std::vector<std::string> reasons;
      if (!w.aci_valid[l]) reasons.push_back(p.op.aci_missing_reason);
      if (p.op.path == Path::kNone) {
        reasons.push_back(
            "no energy path: power not reported and component counts "
            "insufficient for a roll-up");
      }
      out.operational = Outcome<OperationalResult>::failure(std::move(reasons));
    }

    if (w.emb_ok[l]) {
      EmbodiedBreakdown b;
      b.cpu_mt = w.cpu_mt[l];
      b.gpu_mt = w.gpu_mt[l];
      b.memory_mt = w.mem_mt[l];
      b.storage_mt = w.sto_mt[l];
      b.platform_mt = w.plat_mt[l];
      b.interconnect_mt = w.ic_mt[l];
      b.total_mt = w.tot_mt[l];
      b.used_gpu_proxy = w.used_proxy[l];
      b.used_memory_default = w.mem_default[l];
      b.used_storage_default = w.ssd_default[l] != 0.0;
      out.embodied = Outcome<EmbodiedBreakdown>::success(b);
    } else {
      const EmbodiedResolution& e = p.emb;
      std::vector<std::string> reasons;
      if (!e.has_cpu) reasons.push_back(e.cpu_missing_reason);
      if (!e.has_counts) {
        reasons.push_back(
            "cannot resolve node/CPU counts (need # nodes, or total cores + "
            "known CPU model)");
      }
      if (e.accelerated) {
        if (!e.acc_in_catalog && !approx) {
          reasons.push_back(e.acc_unknown_reason);
        }
        if (!e.has_gpu_count) {
          reasons.push_back(
              "accelerated system without a GPU count: embodied carbon not "
              "estimable");
        }
      }
      out.embodied = Outcome<EmbodiedBreakdown>::failure(std::move(reasons));
    }
  }
}

void BatchAssessor::clear() {
  profiles_.clear();
  resolved_ = 0;
  aci_key_by_pair_.clear();
  aci_pairs_.clear();
  aci_table_db_ = nullptr;
  aci_table_.clear();
}

}  // namespace easyc::model
