#include "easyc/embodied.hpp"

#include <algorithm>
#include <cmath>

#include "hw/accelerator.hpp"
#include "hw/cpu.hpp"
#include "hw/memory.hpp"
#include "hw/process.hpp"
#include "util/units.hpp"

namespace easyc::model {

namespace {

// DRAM provisioning prior: GB per CPU core (a dual-64-core node of the
// 2020s typically carries 512 GB; dense many-core blades like Fugaku's
// carry proportionally less per node).
double default_memory_gb_per_core(int year) {
  if (year >= 2019) return 4.0;
  if (year >= 2016) return 2.5;
  return 1.5;
}

// Derive node and CPU counts from what is available. Top500 always has
// total cores; with a recognized CPU model the package count follows,
// and nodes from a dual-socket prior. This is why the paper finds
// CPU-only systems (ranks 151-500) assessable from Top500.org alone.
struct Counts {
  long long nodes = 0;
  long long cpus = 0;
};

std::optional<Counts> resolve_counts(const Inputs& in,
                                     const std::optional<hw::CpuSpec>& cpu) {
  Counts c;
  if (in.num_nodes && in.num_cpus) {
    c.nodes = *in.num_nodes;
    c.cpus = *in.num_cpus;
    return c;
  }
  if (in.num_nodes && !in.num_cpus) {
    c.nodes = *in.num_nodes;
    c.cpus = 2 * c.nodes;  // dual-socket prior
    return c;
  }
  if (!in.total_cores || !cpu || cpu->cores <= 0) return std::nullopt;
  c.cpus = std::max<long long>(
      1, (*in.total_cores + cpu->cores - 1) / cpu->cores);
  if (in.num_cpus) c.cpus = *in.num_cpus;
  // Sockets per node prior: accelerated nodes typically single-socket
  // hosts; CPU-only nodes dual-socket.
  const long long sockets_per_node = in.has_accelerator() ? 1 : 2;
  c.nodes = std::max<long long>(1, c.cpus / sockets_per_node);
  return c;
}

}  // namespace

Outcome<EmbodiedBreakdown> assess_embodied(const Inputs& in,
                                           const EmbodiedOptions& opt) {
  in.validate();
  std::vector<std::string> reasons;

  const int year = in.operation_year.value_or(2020);

  // --- CPU identity ---
  // The era-generic silicon model stands in for unlisted parts only
  // when the part is a mainstream server family; unique devices
  // (SW26010-class) are unmodelable without disclosure — the paper's
  // reason Sunway TaihuLight has no embodied estimate.
  std::optional<hw::CpuSpec> cpu = hw::find_cpu(in.processor);
  if (!cpu && hw::is_mainstream_server_cpu(in.processor) &&
      in.total_cores && (in.num_cpus || in.num_nodes)) {
    long long packages = in.num_cpus.value_or(
        in.num_nodes ? *in.num_nodes * 2 : 0);
    if (packages > 0) {
      const int cores_per_pkg = static_cast<int>(std::max<long long>(
          1, *in.total_cores / packages));
      cpu = hw::generic_server_cpu(year, cores_per_pkg);
    }
  }
  if (!cpu) {
    reasons.push_back("processor '" + in.processor +
                      "' not in catalog and not a mainstream family "
                      "derivable from counts");
  }

  // --- node / package counts ---
  const auto counts = resolve_counts(in, cpu);
  if (!counts) {
    reasons.push_back(
        "cannot resolve node/CPU counts (need # nodes, or total cores + "
        "known CPU model)");
  }

  // --- accelerator identity & count ---
  std::optional<hw::AcceleratorSpec> acc;
  bool used_proxy = false;
  long long gpu_count = 0;
  if (in.has_accelerator()) {
    acc = hw::find_accelerator(in.accelerator);
    if (!acc) {
      if (opt.accelerator_policy ==
          AcceleratorPolicy::kApproximateWithMainstreamGpu) {
        acc = hw::mainstream_gpu_proxy(year);
        used_proxy = true;
      } else {
        reasons.push_back("accelerator '" + in.accelerator +
                          "' not in catalog (strict policy declines)");
      }
    }
    if (in.num_gpus) {
      gpu_count = *in.num_gpus;
    } else {
      reasons.push_back(
          "accelerated system without a GPU count: embodied carbon not "
          "estimable");
    }
  }

  if (!reasons.empty()) {
    return Outcome<EmbodiedBreakdown>::failure(std::move(reasons));
  }

  EmbodiedBreakdown b;
  b.used_gpu_proxy = used_proxy;

  // --- CPUs ---
  {
    const auto node = hw::find_process_node(cpu->process_nm);
    const double per_pkg_kg =
        cpu->die_area_cm2 * node.carbon_per_cm2(opt.fab_aci_kg_kwh) +
        opt.cpu_packaging_kg;
    b.cpu_mt = util::kg_to_mt(per_pkg_kg * static_cast<double>(counts->cpus));
  }

  // --- GPUs ---
  if (acc && gpu_count > 0) {
    const auto node = hw::find_process_node(acc->process_nm);
    const double hbm_kg =
        acc->hbm_gb * hw::memory_spec(acc->hbm_type).embodied_kg_per_gb;
    const double per_pkg_kg =
        acc->die_area_cm2 * node.carbon_per_cm2(opt.fab_aci_kg_kwh) +
        hbm_kg + opt.gpu_packaging_kg;
    b.gpu_mt = util::kg_to_mt(per_pkg_kg * static_cast<double>(gpu_count));
  }

  // --- system DRAM ---
  {
    double mem_gb;
    if (in.memory_gb) {
      mem_gb = *in.memory_gb;
    } else {
      mem_gb = default_memory_gb_per_core(year) *
               static_cast<double>(counts->cpus) * cpu->cores;
      b.used_memory_default = true;
    }
    const auto mem_type =
        in.memory_type ? hw::parse_memory_type(*in.memory_type)
                       : hw::MemoryType::kUnknown;
    b.memory_mt =
        util::kg_to_mt(mem_gb * hw::memory_spec(mem_type).embodied_kg_per_gb);
  }

  // --- storage ---
  {
    double ssd_tb;
    if (in.ssd_tb) {
      ssd_tb = *in.ssd_tb;
    } else {
      ssd_tb = std::min(opt.default_ssd_tb_per_node *
                            static_cast<double>(counts->nodes),
                        opt.default_ssd_cap_tb);
      b.used_storage_default = true;
    }
    b.storage_mt = util::kg_to_mt(
        ssd_tb * hw::storage_spec(hw::StorageClass::kNvmeSsd).embodied_kg_per_tb);
  }

  // --- platform & interconnect (composition-scaled per node) ---
  {
    const double nodes_d = static_cast<double>(counts->nodes);
    const double cpu_cores_per_node =
        static_cast<double>(counts->cpus) * cpu->cores / nodes_d;
    const double gpus_per_node =
        static_cast<double>(gpu_count) / nodes_d;
    const double platform_kg = std::min(
        opt.platform_cap_kg,
        opt.platform_base_kg +
            opt.platform_per_cpu_core_kg * cpu_cores_per_node +
            opt.platform_per_gpu_kg * gpus_per_node);
    const double ic_kg = std::min(
        opt.interconnect_cap_kg,
        opt.interconnect_base_kg +
            opt.interconnect_per_cpu_core_kg * cpu_cores_per_node +
            opt.interconnect_per_gpu_kg * gpus_per_node);
    b.platform_mt = util::kg_to_mt(platform_kg * nodes_d);
    b.interconnect_mt = util::kg_to_mt(ic_kg * nodes_d);
  }

  b.total_mt = b.cpu_mt + b.gpu_mt + b.memory_mt + b.storage_mt +
               b.platform_mt + b.interconnect_mt;
  return Outcome<EmbodiedBreakdown>::success(b);
}

}  // namespace easyc::model
