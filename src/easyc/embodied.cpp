#include "easyc/embodied.hpp"

#include <algorithm>
#include <cmath>

#include "hw/accelerator.hpp"
#include "hw/cpu.hpp"
#include "hw/memory.hpp"
#include "hw/process.hpp"
#include "util/units.hpp"

namespace easyc::model {

namespace {

// DRAM provisioning prior: GB per CPU core (a dual-64-core node of the
// 2020s typically carries 512 GB; dense many-core blades like Fugaku's
// carry proportionally less per node).
double default_memory_gb_per_core(int year) {
  if (year >= 2019) return 4.0;
  if (year >= 2016) return 2.5;
  return 1.5;
}

// Derive node and CPU counts from what is available. Top500 always has
// total cores; with a recognized CPU model the package count follows,
// and nodes from a dual-socket prior. This is why the paper finds
// CPU-only systems (ranks 151-500) assessable from Top500.org alone.
struct Counts {
  long long nodes = 0;
  long long cpus = 0;
};

std::optional<Counts> resolve_counts(const Inputs& in,
                                     const std::optional<hw::CpuSpec>& cpu) {
  Counts c;
  if (in.num_nodes && in.num_cpus) {
    c.nodes = *in.num_nodes;
    c.cpus = *in.num_cpus;
    return c;
  }
  if (in.num_nodes && !in.num_cpus) {
    c.nodes = *in.num_nodes;
    c.cpus = 2 * c.nodes;  // dual-socket prior
    return c;
  }
  if (!in.total_cores || !cpu || cpu->cores <= 0) return std::nullopt;
  c.cpus = std::max<long long>(
      1, (*in.total_cores + cpu->cores - 1) / cpu->cores);
  if (in.num_cpus) c.cpus = *in.num_cpus;
  // Sockets per node prior: accelerated nodes typically single-socket
  // hosts; CPU-only nodes dual-socket.
  const long long sockets_per_node = in.has_accelerator() ? 1 : 2;
  c.nodes = std::max<long long>(1, c.cpus / sockets_per_node);
  return c;
}

}  // namespace

EmbodiedResolution resolve_embodied(const Inputs& in) {
  EmbodiedResolution rz;
  rz.year = in.operation_year.value_or(2020);

  // --- CPU identity ---
  // The era-generic silicon model stands in for unlisted parts only
  // when the part is a mainstream server family; unique devices
  // (SW26010-class) are unmodelable without disclosure — the paper's
  // reason Sunway TaihuLight has no embodied estimate.
  std::optional<hw::CpuSpec> cpu = hw::find_cpu(in.processor);
  if (!cpu && hw::is_mainstream_server_cpu(in.processor) &&
      in.total_cores && (in.num_cpus || in.num_nodes)) {
    long long packages = in.num_cpus.value_or(
        in.num_nodes ? *in.num_nodes * 2 : 0);
    if (packages > 0) {
      const int cores_per_pkg = static_cast<int>(std::max<long long>(
          1, *in.total_cores / packages));
      cpu = hw::generic_server_cpu(rz.year, cores_per_pkg);
    }
  }
  rz.has_cpu = cpu.has_value();
  if (rz.has_cpu) {
    rz.cpu_die_area_cm2 = cpu->die_area_cm2;
    rz.cpu_node = hw::find_process_node(cpu->process_nm);
  } else {
    rz.cpu_missing_reason = "processor '" + in.processor +
                            "' not in catalog and not a mainstream family "
                            "derivable from counts";
  }

  // --- node / package counts ---
  const auto counts = resolve_counts(in, cpu);
  rz.has_counts = counts.has_value();
  if (rz.has_counts) {
    rz.nodes = counts->nodes;
    rz.cpus = counts->cpus;
  }

  // --- accelerator identity & count ---
  rz.accelerated = in.has_accelerator();
  if (rz.accelerated) {
    if (auto acc = hw::find_accelerator(in.accelerator)) {
      rz.acc_in_catalog = true;
      rz.acc_die_area_cm2 = acc->die_area_cm2;
      rz.acc_node = hw::find_process_node(acc->process_nm);
      rz.acc_hbm_kg =
          acc->hbm_gb * hw::memory_spec(acc->hbm_type).embodied_kg_per_gb;
    } else {
      // Whether the proxy is used is the scenario's policy, so both the
      // proxy coefficients and the strict-policy reason are resolved.
      const auto proxy = hw::mainstream_gpu_proxy(rz.year);
      rz.proxy_die_area_cm2 = proxy.die_area_cm2;
      rz.proxy_node = hw::find_process_node(proxy.process_nm);
      rz.proxy_hbm_kg =
          proxy.hbm_gb * hw::memory_spec(proxy.hbm_type).embodied_kg_per_gb;
      rz.acc_unknown_reason = "accelerator '" + in.accelerator +
                              "' not in catalog (strict policy declines)";
    }
    rz.has_gpu_count = in.num_gpus.has_value();
    if (rz.has_gpu_count) rz.gpu_count = *in.num_gpus;
  }

  // --- DRAM / storage metrics ---
  rz.has_memory_gb = in.memory_gb.has_value();
  if (rz.has_memory_gb) rz.memory_gb = *in.memory_gb;
  const auto mem_type = in.memory_type
                            ? hw::parse_memory_type(*in.memory_type)
                            : hw::MemoryType::kUnknown;
  rz.mem_kg_per_gb = hw::memory_spec(mem_type).embodied_kg_per_gb;
  rz.has_ssd_tb = in.ssd_tb.has_value();
  if (rz.has_ssd_tb) rz.ssd_tb = *in.ssd_tb;

  // --- composition-derived doubles (success lanes only use these) ---
  if (rz.has_counts) {
    rz.nodes_d = static_cast<double>(counts->nodes);
    if (rz.has_cpu) {
      rz.default_memory_gb = default_memory_gb_per_core(rz.year) *
                             static_cast<double>(counts->cpus) * cpu->cores;
      rz.cpu_cores_per_node =
          static_cast<double>(counts->cpus) * cpu->cores / rz.nodes_d;
    }
    rz.gpus_per_node = static_cast<double>(rz.gpu_count) / rz.nodes_d;
  }
  return rz;
}

Outcome<EmbodiedBreakdown> finish_embodied(const EmbodiedResolution& rz,
                                           const EmbodiedOptions& opt) {
  std::vector<std::string> reasons;
  if (!rz.has_cpu) reasons.push_back(rz.cpu_missing_reason);
  if (!rz.has_counts) {
    reasons.push_back(
        "cannot resolve node/CPU counts (need # nodes, or total cores + "
        "known CPU model)");
  }
  bool used_proxy = false;
  if (rz.accelerated) {
    if (!rz.acc_in_catalog) {
      if (opt.accelerator_policy ==
          AcceleratorPolicy::kApproximateWithMainstreamGpu) {
        used_proxy = true;
      } else {
        reasons.push_back(rz.acc_unknown_reason);
      }
    }
    if (!rz.has_gpu_count) {
      reasons.push_back(
          "accelerated system without a GPU count: embodied carbon not "
          "estimable");
    }
  }

  if (!reasons.empty()) {
    return Outcome<EmbodiedBreakdown>::failure(std::move(reasons));
  }

  EmbodiedBreakdown b;
  b.used_gpu_proxy = used_proxy;

  // --- CPUs ---
  b.cpu_mt = lane::component_mt(
      lane::cpu_package_kg(rz.cpu_die_area_cm2,
                           rz.cpu_node.carbon_per_cm2(opt.fab_aci_kg_kwh),
                           opt.cpu_packaging_kg),
      static_cast<double>(rz.cpus));

  // --- GPUs ---
  if (rz.accelerated && rz.gpu_count > 0) {
    const bool cat = rz.acc_in_catalog;
    const auto& node = cat ? rz.acc_node : rz.proxy_node;
    b.gpu_mt = lane::component_mt(
        lane::gpu_package_kg(cat ? rz.acc_die_area_cm2 : rz.proxy_die_area_cm2,
                             node.carbon_per_cm2(opt.fab_aci_kg_kwh),
                             cat ? rz.acc_hbm_kg : rz.proxy_hbm_kg,
                             opt.gpu_packaging_kg),
        static_cast<double>(rz.gpu_count));
  }

  // --- system DRAM ---
  {
    double mem_gb;
    if (rz.has_memory_gb) {
      mem_gb = rz.memory_gb;
    } else {
      mem_gb = rz.default_memory_gb;
      b.used_memory_default = true;
    }
    b.memory_mt = lane::component_mt(mem_gb, rz.mem_kg_per_gb);
  }

  // --- storage ---
  {
    double ssd_tb;
    if (rz.has_ssd_tb) {
      ssd_tb = rz.ssd_tb;
    } else {
      ssd_tb = lane::default_ssd_tb(opt.default_ssd_tb_per_node, rz.nodes_d,
                                    opt.default_ssd_cap_tb);
      b.used_storage_default = true;
    }
    b.storage_mt = lane::component_mt(
        ssd_tb,
        hw::storage_spec(hw::StorageClass::kNvmeSsd).embodied_kg_per_tb);
  }

  // --- platform & interconnect (composition-scaled per node) ---
  b.platform_mt = lane::component_mt(
      lane::node_overhead_kg(opt.platform_base_kg, opt.platform_per_cpu_core_kg,
                             rz.cpu_cores_per_node, opt.platform_per_gpu_kg,
                             rz.gpus_per_node, opt.platform_cap_kg),
      rz.nodes_d);
  b.interconnect_mt = lane::component_mt(
      lane::node_overhead_kg(opt.interconnect_base_kg,
                             opt.interconnect_per_cpu_core_kg,
                             rz.cpu_cores_per_node, opt.interconnect_per_gpu_kg,
                             rz.gpus_per_node, opt.interconnect_cap_kg),
      rz.nodes_d);

  b.total_mt = lane::embodied_total_mt(b.cpu_mt, b.gpu_mt, b.memory_mt,
                                       b.storage_mt, b.platform_mt,
                                       b.interconnect_mt);
  return Outcome<EmbodiedBreakdown>::success(b);
}

Outcome<EmbodiedBreakdown> assess_embodied_prevalidated(
    const Inputs& in, const EmbodiedOptions& opt) {
  return finish_embodied(resolve_embodied(in), opt);
}

Outcome<EmbodiedBreakdown> assess_embodied(const Inputs& in,
                                           const EmbodiedOptions& opt) {
  in.validate();
  return assess_embodied_prevalidated(in, opt);
}

}  // namespace easyc::model
