// SoA batch assessment kernel.
//
// The scalar path assesses one (record, scenario) cell at a time:
// branchy energy-path resolution, catalog substring matches, and ACI
// database scans per cell. BatchAssessor restructures a block of cells
// into three stages:
//
//   1. resolve: once per distinct record profile, run every branchy,
//      allocation-heavy step (validate(), catalog matching, count
//      resolution, energy-path selection) into an options-independent
//      resolution (see OperationalResolution / EmbodiedResolution);
//   2. gather: per batch, flatten the lanes into structure-of-arrays
//      buffers — path/validity masks plus plain double coefficients,
//      with benign values (yield 1, node count 1) in failed lanes;
//   3. vector core + scatter: the arithmetic (energy roll-up,
//      operational CO2e, embodied amortization) runs as contiguous
//      plain indexed loops the compiler auto-vectorizes, then results
//      scatter back into per-cell Outcomes, masked lanes reproducing
//      the scalar failure reasons in the scalar order.
//
// Bit-identity guarantee: both paths call the exact inline lane
// functions in operational.hpp / embodied.hpp (namespace lane) and
// hw::carbon_per_cm2_unchecked, so the IEEE-754 expression trees are
// identical and a SoA result is byte-identical to the scalar oracle —
// same doubles, same failure reasons, same coverage. batch_kernel_test
// enforces this over the catalog x stock scenarios x sweep cells.
//
// The per-cell grid::AciDatabase lookup is hoisted: each distinct
// (country, region) pair resolves once per batch into a small table
// (scenario ACI overrides skip the database entirely, matching the
// scalar short-circuit).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "easyc/embodied.hpp"
#include "easyc/model.hpp"
#include "easyc/operational.hpp"

namespace easyc::par {
class ThreadPool;
}

namespace easyc::model {

/// Counters for the bench report (how much work the batch layout saved
/// relative to per-cell resolution).
struct BatchStats {
  size_t lanes = 0;            ///< cells assessed
  size_t profiles = 0;         ///< distinct record profiles resolved
  size_t validations = 0;      ///< Inputs::validate() calls (== profiles)
  size_t aci_keys = 0;         ///< distinct (country, region) pairs
  size_t aci_db_queries = 0;   ///< AciDatabase lookups actually issued
  size_t aci_hoisted = 0;      ///< lane lookups served from the table

  BatchStats& operator+=(const BatchStats& o) {
    lanes += o.lanes;
    profiles += o.profiles;
    validations += o.validations;
    aci_keys += o.aci_keys;
    aci_db_queries += o.aci_db_queries;
    aci_hoisted += o.aci_hoisted;
    return *this;
  }
};

class BatchAssessor {
 public:
  struct Tuning {
    /// Resolve each distinct (country, region) once per batch instead
    /// of querying the ACI database per lane. Off only for A/B
    /// measurement in the bench.
    bool hoist_aci = true;
  };

  /// One lane of a batch: which registered profile, and where the
  /// assessment lands. Each lane writes only its own slot, so any
  /// thread count produces identical bytes.
  struct Cell {
    size_t profile = 0;
    SystemAssessment* out = nullptr;
  };

  BatchAssessor() = default;
  explicit BatchAssessor(Tuning tuning) : tuning_(tuning) {}

  /// Register a distinct record's inputs; returns its profile id.
  /// Callers dedupe (the engine keys profiles by content fingerprint
  /// and visibility); the assessor resolves whatever it is given.
  size_t add_profile(Inputs inputs);

  /// Validate + resolve every profile registered since the last call —
  /// once per profile, not once per scenario. Throws ValidationError
  /// exactly as the scalar path would. Parallel across `pool` (null =
  /// process-global pool).
  void resolve_profiles(par::ThreadPool* pool = nullptr);

  /// Assess `count` cells under one scenario's options. Profiles must
  /// be resolved. Matches EasyCModel::assess byte-for-byte per lane.
  void assess(const EasyCOptions& options, const Cell* cells, size_t count,
              par::ThreadPool* pool = nullptr);

  size_t num_profiles() const { return profiles_.size(); }
  const Inputs& profile_inputs(size_t id) const {
    return profiles_[id].inputs;
  }

  const BatchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BatchStats{}; }

  /// Drop all profiles (and the ACI table) for a fresh batch.
  void clear();

 private:
  struct Profile {
    Inputs inputs;
    OperationalResolution op;
    EmbodiedResolution emb;
    uint32_t aci_key = 0;
  };

  struct AciEntry {
    bool valid = false;           ///< best_aci found a value
    double aci_g_kwh = 0.0;
    bool region_refined = false;  ///< region_aci had a refinement
  };

  void ensure_aci_table(const grid::AciDatabase* db);
  void assess_chunk(const EasyCOptions& options, const Cell* cells,
                    size_t begin, size_t end, bool aci_overridden,
                    double aci_override) const;

  Tuning tuning_;
  std::vector<Profile> profiles_;
  size_t resolved_ = 0;  ///< profiles_[0..resolved_) are resolved

  // Distinct (country, region) -> aci_key, and the per-batch table.
  std::unordered_map<std::string, uint32_t> aci_key_by_pair_;
  std::vector<std::pair<std::string, std::string>> aci_pairs_;
  const grid::AciDatabase* aci_table_db_ = nullptr;
  std::vector<AciEntry> aci_table_;

  BatchStats stats_;
};

}  // namespace easyc::model
