// Monte-Carlo uncertainty analysis over EasyC's model priors.
//
// EasyC substitutes priors for unreported metrics (utilization, PUE,
// per-node memory, fab intensity). This module quantifies how much those
// priors matter by sampling them from documented ranges and re-running
// the model, in parallel across a thread pool. Results are deterministic
// for a given seed and independent of thread count (each trial owns a
// forked RNG stream).
#pragma once

#include <cstdint>
#include <vector>

#include "easyc/model.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace easyc::model {

/// Relative half-widths of the sampled priors (uniform distributions
/// centred on the configured option values).
struct PriorRanges {
  double utilization_rel = 0.15;   ///< +/-15% around default utilization
  double fab_aci_rel = 0.30;       ///< fab grid mix varies widely by site
  double node_platform_rel = 0.30;
  double ssd_default_rel = 0.40;   ///< unreported storage is the loosest
  double aci_rel = 0.10;           ///< annual-average vs hourly intensity
};

struct UncertaintyResult {
  util::Summary operational_mt;  ///< distribution of fleet op carbon
  util::Summary embodied_mt;     ///< distribution of fleet embodied carbon
  size_t trials = 0;
};

/// One Monte-Carlo perturbation of the prior-backed options: every
/// sampled knob drawn uniformly within `ranges` around its value in
/// `base` (utilization clamped to the model's (0.05, 1] domain). This
/// is the sampling kernel of run_uncertainty, exposed so other drivers
/// — the sweep engine's seeded scenario draws — share one prior model
/// instead of re-inventing the distributions. ACI enters the model
/// linearly, so its perturbation is reported as a multiplicative scale
/// on operational carbon via `aci_scale` (pass nullptr to discard).
/// Consumes a fixed number of draws from `rng` per call, so forked
/// per-trial streams stay aligned across callers.
EasyCOptions perturb_options(const EasyCOptions& base,
                             const PriorRanges& ranges, util::Rng& rng,
                             double* aci_scale = nullptr);

/// Run `trials` Monte-Carlo samples of fleet totals for `inputs` under
/// perturbed options. Systems that fail coverage under a sample simply
/// contribute zero for that sample (matching how the paper's totals
/// only sum covered systems).
UncertaintyResult run_uncertainty(const std::vector<Inputs>& inputs,
                                  const EasyCOptions& base_options,
                                  const PriorRanges& ranges, size_t trials,
                                  uint64_t seed,
                                  par::ThreadPool* pool = nullptr);

}  // namespace easyc::model
