// Binary codec for assessment results (the cache-snapshot value type).
//
// The engine's memo cache persists SystemAssessments to disk so later
// processes warm-start instead of recomputing. The codec writes every
// field explicitly through util::BinaryWriter — no struct memcpy — so
// the bytes are stable across platforms, and it carries its own version
// (kAssessmentCodecVersion) that snapshot headers bind into their
// scheme tag: adding or reordering a field here must bump the version,
// which invalidates old snapshot files instead of misreading them.
//
// Outcome<T> is encoded as its ok flag followed by either the value or
// the non-empty reason list, so coverage failures — a first-class paper
// result — round-trip exactly like successes.
#pragma once

#include "easyc/model.hpp"
#include "util/serialize.hpp"

namespace easyc::model {

/// Bump whenever any encode_/decode_ pair below changes shape.
inline constexpr uint32_t kAssessmentCodecVersion = 1;

/// Bump whenever assessment *semantics* change — emission factors,
/// option defaults, estimation-path logic, anything that makes the
/// same inputs produce different numbers. The cache scheme tag mixes
/// this in, so snapshots computed by an older model are rejected as
/// stale instead of silently serving pre-change values (record and
/// scenario fingerprints only cover the *inputs*, not the model).
///
/// The SoA batch kernel (model::BatchAssessor) is NOT a semantics
/// change: it must stay byte-identical to the scalar path
/// (batch_kernel_test enforces this through these codec bytes). Any
/// kernel change that alters even one output bit is a model change
/// and must bump this version — never ship it as "just the kernel".
inline constexpr uint32_t kAssessmentSemanticsVersion = 1;

void encode_assessment(util::BinaryWriter& w, const SystemAssessment& a);
SystemAssessment decode_assessment(util::BinaryReader& r);

/// Generic Outcome<T> codec; `value` encodes/decodes the success type.
template <typename T, typename EncodeValue>
void encode_outcome(util::BinaryWriter& w, const Outcome<T>& o,
                    EncodeValue&& value) {
  w.boolean(o.ok());
  if (o.ok()) {
    value(w, o.value());
    return;
  }
  w.u64(o.reasons().size());
  for (const std::string& reason : o.reasons()) w.str(reason);
}

template <typename T, typename DecodeValue>
Outcome<T> decode_outcome(util::BinaryReader& r, DecodeValue&& value) {
  if (r.boolean()) return Outcome<T>::success(value(r));
  const uint64_t n = r.u64();
  if (n == 0) throw util::CodecError("failure Outcome with no reasons");
  // Bound the count by the bytes that could possibly back it (each
  // reason carries at least its u64 length prefix) before reserving,
  // so a corrupt count raises CodecError, not length_error/bad_alloc.
  if (n > r.remaining() / 8) {
    throw util::CodecError("failure Outcome claims " + std::to_string(n) +
                           " reasons but only " +
                           std::to_string(r.remaining()) + " bytes remain");
  }
  std::vector<std::string> reasons;
  reasons.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) reasons.push_back(r.str());
  return Outcome<T>::failure(std::move(reasons));
}

}  // namespace easyc::model
