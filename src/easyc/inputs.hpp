// EasyC model inputs.
//
// EasyC's central claim (Fig. 1 of the paper) is that carbon footprint
// can be modeled from *seven key data metrics* plus two optional ones,
// against the hundreds a GHG-protocol computation needs:
//
//   1. Operation year            5. Memory capacity
//   2. # of compute nodes        6. Memory type
//   3. # of GPUs                 7. SSD capacity
//   4. # of CPUs                 (opt.) system utilization
//                                (opt.) annual power consumed
//
// `Inputs` carries those metrics (each individually optional, because
// availability is exactly what the paper studies) plus the identity and
// performance context every Top500 entry has.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace easyc::model {

/// Identifier for each EasyC data metric; used by the coverage analysis
/// (paper Table I) to report which metrics are missing per system.
enum class Metric {
  kOperationYear,
  kNumComputeNodes,
  kNumGpus,
  kNumCpus,
  kMemoryCapacity,
  kMemoryType,
  kSsdCapacity,
  kSystemUtilization,   // optional
  kAnnualPowerConsumed, // optional
};

/// All nine metrics in paper Table I order.
const std::vector<Metric>& all_metrics();

/// Human-readable metric name matching the paper's Table I rows.
std::string metric_name(Metric m);

/// True for the two optional metrics.
bool metric_is_optional(Metric m);

struct Inputs {
  // --- identity & context (available for every Top500 entry) ---
  std::string name;
  std::string country;
  std::string region;            ///< sub-national grid region; "" = unknown
  double rmax_tflops = 0.0;
  double rpeak_tflops = 0.0;
  std::optional<double> power_kw;      ///< Top500-reported HPL power
  std::optional<long long> total_cores;
  std::string processor;         ///< Top500 processor string
  std::string accelerator;       ///< Top500 accelerator string; "" = none

  // --- the 7 key metrics ---
  std::optional<int> operation_year;          // 1
  std::optional<long long> num_nodes;         // 2
  std::optional<long long> num_gpus;          // 3
  std::optional<long long> num_cpus;          // 4
  std::optional<double> memory_gb;            // 5
  std::optional<std::string> memory_type;     // 6 ("DDR4", "HBM2e", ...)
  std::optional<double> ssd_tb;               // 7

  // --- the 2 optional metrics ---
  std::optional<double> utilization;          ///< average load in [0,1]
  std::optional<double> annual_energy_kwh;    ///< metered annual energy

  /// Which metrics are absent. Optional metrics are included only when
  /// `include_optional` is set (Table I lists them too).
  std::vector<Metric> missing_metrics(bool include_optional = true) const;

  /// Count of missing metrics (the x-axis of the paper's Fig. 2).
  int num_missing(bool include_optional = true) const;

  /// Throws ValidationError for physically impossible values (negative
  /// counts/capacities, utilization outside [0,1], year out of range).
  void validate() const;

  /// True if the system reports an accelerator.
  bool has_accelerator() const;
};

}  // namespace easyc::model
